//! Communication/computation overlap (the Fig. 7 experiment), plus a
//! real-OS-threads demonstration of the same idea with
//! `piom::BackgroundProgress`.
//!
//! ```sh
//! cargo run --release --example overlap_compute
//! ```

use std::sync::Arc;

use mpich2_nmad_repro::mpi_ch3::stack::{run_mpi, StackConfig};
use mpich2_nmad_repro::mpi_ch3::{MpiHandle, Src};
use mpich2_nmad_repro::piom::BackgroundProgress;
use mpich2_nmad_repro::simnet::{Cluster, Placement, SimDuration};
use parking_lot::Mutex;

/// isend + compute + wait, as in §4.1.2.
fn sending_time(stack: &StackConfig, bytes: usize, compute_us: u64) -> f64 {
    let cluster = Cluster::xeon_pair();
    let placement = Placement::one_per_node(2, &cluster);
    let out = Arc::new(Mutex::new(0.0));
    let o2 = Arc::clone(&out);
    run_mpi(
        &cluster,
        &placement,
        stack,
        2,
        Arc::new(move |mpi: MpiHandle| {
            let payload = vec![1u8; bytes];
            if mpi.rank() == 0 {
                mpi.send(1, 1, &payload);
                mpi.recv(Src::Rank(1), 2);
                let t0 = mpi.now();
                let r = mpi.isend(1, 1, &payload);
                mpi.compute(SimDuration::micros(compute_us));
                mpi.wait(r);
                mpi.recv(Src::Rank(1), 2);
                *o2.lock() = (mpi.now() - t0).as_micros_f64();
            } else {
                mpi.recv(Src::Rank(0), 1);
                mpi.send(0, 2, b"ack");
                mpi.recv(Src::Rank(0), 1);
                mpi.send(0, 2, b"ack");
            }
        }),
    );
    let v = *out.lock();
    v
}

fn main() {
    println!("== simulated (Fig. 7b): 1 MB rendezvous over IB, 400 us compute ==");
    let no_comp = sending_time(&StackConfig::mpich2_nmad_rail(0, false), 1 << 20, 0);
    let plain = sending_time(&StackConfig::mpich2_nmad_rail(0, false), 1 << 20, 400);
    let piom = sending_time(&StackConfig::mpich2_nmad_rail(0, true), 1 << 20, 400);
    println!("  reference (no computation): {no_comp:7.0} us");
    println!("  without PIOMan:             {plain:7.0} us  (~= compute + comm)");
    println!("  with PIOMan:                {piom:7.0} us  (~= max(compute, comm))");

    println!("\n== real threads: a background progress core drains work while");
    println!("   the main thread 'computes' (piom::BackgroundProgress) ==");
    let queue: Arc<crossbeam::queue::SegQueue<u64>> =
        Arc::new(crossbeam::queue::SegQueue::new());
    let q2 = Arc::clone(&queue);
    let drained = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let d2 = Arc::clone(&drained);
    let mut bg = BackgroundProgress::spawn(std::time::Duration::ZERO, move || {
        while q2.pop().is_some() {
            d2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    });
    let t0 = std::time::Instant::now();
    let mut acc = 0u64;
    for i in 0..500_000u64 {
        queue.push(i);
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i); // "compute"
    }
    while drained.load(std::sync::atomic::Ordering::Relaxed) < 500_000 {
        std::thread::yield_now();
    }
    let dt = t0.elapsed();
    bg.stop();
    println!(
        "   500000 items drained concurrently in {dt:?} \
         (progress iterations: {}) [checksum {acc}]",
        bg.iterations()
    );
}

