//! One-sided communication demo (the paper's future-work item): all ranks
//! accumulate partial histograms into rank 0's RMA window with
//! MPI_Accumulate semantics, then read the result back with MPI_Get —
//! no receiver-side receive calls anywhere.
//!
//! ```sh
//! cargo run --release --example rma_histogram
//! ```

use std::sync::Arc;

use mpich2_nmad_repro::mpi_ch3::collectives::bytes_to_f64s;
use mpich2_nmad_repro::mpi_ch3::rma::Window;
use mpich2_nmad_repro::mpi_ch3::stack::{run_mpi, StackConfig};
use mpich2_nmad_repro::mpi_ch3::MpiHandle;
use mpich2_nmad_repro::simnet::{Cluster, Placement};
use parking_lot::Mutex;

const BINS: usize = 8;
const RANKS: usize = 6;

fn main() {
    let cluster = Cluster::grid5000_opteron();
    let placement = Placement::round_robin(RANKS, &cluster);
    let stack = StackConfig::mpich2_nmad(false);
    let printed = Arc::new(Mutex::new(String::new()));
    let p2 = Arc::clone(&printed);

    run_mpi(
        &cluster,
        &placement,
        &stack,
        RANKS,
        Arc::new(move |mpi: MpiHandle| {
            let win = Window::create(&mpi, BINS * 8, &[]);
            // Each rank bins a deterministic pseudo-sample locally…
            let mut local = [0.0f64; BINS];
            for i in 0..1000 {
                let x = (mpi.rank() * 7919 + i * 104729) % BINS;
                local[x] += 1.0;
            }
            // …and accumulates it into rank 0's window, one-sidedly.
            win.accumulate_sum(0, 0, &local);
            win.fence(&mpi);
            // Everyone fetches the global histogram from rank 0.
            let h = win.get(0, 0, BINS * 8);
            win.fence(&mpi);
            let global = bytes_to_f64s(&win.get_result(&h));
            let total: f64 = global.iter().sum();
            assert_eq!(total as usize, 1000 * RANKS, "histogram mass conserved");
            if mpi.rank() == 0 {
                let mut s = String::from("global histogram (one-sided):\n");
                for (b, v) in global.iter().enumerate() {
                    s.push_str(&format!(
                        "  bin {b}: {v:5.0}  {}\n",
                        "#".repeat((*v / 40.0) as usize)
                    ));
                }
                *p2.lock() = s;
            }
        }),
    );
    println!("{}", printed.lock());
    println!(
        "All traffic was MPI_Put/Get/Accumulate between fences — the RMA\n\
         extension the paper leaves as future work, running over the same\n\
         NewMadeleine bypass (large puts take the rendezvous/multirail\n\
         path like any large message)."
    );
}
