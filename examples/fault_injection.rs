//! Seeded fault injection demo: run a full MPI job over a lossy simulated
//! network, watch the retry layer save it, and replay the exact same
//! execution from the seed.
//!
//! ```sh
//! cargo run --release --example fault_injection            # seed 42
//! cargo run --release --example fault_injection -- 1234    # pick a seed
//! ```

use mpich2_nmad_repro::sim_harness::{Scenario, Workload};
use mpich2_nmad_repro::simnet::FaultSpec;

fn main() {
    let seed: u64 = match std::env::args().nth(1) {
        Some(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("seed must be a u64, got {s:?}")),
        None => 42,
    };

    let sc = Scenario::new(seed, FaultSpec::drop_heavy(), Workload::SendRecv, false);
    println!("workload: bidirectional mixed-size send/recv (eager + rendezvous)");
    println!("schedule: drop-heavy (15% drop, 5% duplication), seed {seed}\n");

    let faulty = sc.run();
    let fc = faulty.fault_counters.expect("fault plan installed");
    println!("-- run under faults ------------------------------------------");
    println!(
        "   wire transfers {:5}   dropped {:3}   duplicated {:3}",
        fc.transfers_seen, fc.dropped, fc.duplicated
    );
    println!(
        "   retransmissions {}   (eager {}, RTS {}, CTS {}, data {})",
        faulty.total_retries(),
        faulty.nm_stats.iter().map(|s| s.eager_retries).sum::<u64>(),
        faulty.nm_stats.iter().map(|s| s.rts_retries).sum::<u64>(),
        faulty.nm_stats.iter().map(|s| s.cts_retries).sum::<u64>(),
        faulty.nm_stats.iter().map(|s| s.data_retries).sum::<u64>(),
    );
    println!(
        "   every payload byte-exact, exactly once, in order (asserted in-run)"
    );
    println!("   simulated time {:.1} µs, {} events", faulty.final_time_nanos as f64 / 1e3, faulty.events);

    let replay = sc.run();
    println!("\n-- replay from the same seed ---------------------------------");
    assert_eq!(faulty, replay, "replay must be bit-identical");
    println!("   bit-identical: end time, event count, all per-rank stats,");
    println!("   per-rail fabric counters, fault counters, payload hash");

    let clean = sc.run_clean();
    println!("\n-- control run, no fault plan --------------------------------");
    assert_eq!(clean.total_retries(), 0);
    assert_eq!(clean.fault_counters, None);
    println!(
        "   retransmissions 0, retry layer inert; simulated time {:.1} µs",
        clean.final_time_nanos as f64 / 1e3
    );
    println!(
        "\nfault recovery cost: {:.1} µs vs {:.1} µs clean ({:+.0}%)",
        faulty.final_time_nanos as f64 / 1e3,
        clean.final_time_nanos as f64 / 1e3,
        100.0 * (faulty.final_time_nanos as f64 / clean.final_time_nanos as f64 - 1.0)
    );
}
