//! E16 — eager-flood overload sweep: how the credit layer trades eager
//! throughput for a bounded unexpected queue.
//!
//! Eight senders (one per node) flood rank 0 with a seeded, skewed burst
//! schedule while the receiver drains slowly. The sweep runs the same
//! flood with flow control off and with progressively deeper credit
//! pools, printing the receiver's peak unexpected backlog, how much of
//! the flood degraded to rendezvous, and the completion time.
//!
//! ```sh
//! cargo run --release --example eager_flood
//! ```

use std::sync::Arc;

use mpich2_nmad_repro::mpi_ch3::stack::{run_mpi, StackConfig};
use mpich2_nmad_repro::mpi_ch3::{MpiHandle, Src};
use mpich2_nmad_repro::nmad::FlowConfig;
use mpich2_nmad_repro::simnet::{Cluster, OverloadPlan, Placement, SimDuration};

const SEED: u64 = 16;
const SENDERS: usize = 8;
const MSGS_PER_SENDER: usize = 40;
const LEN_RANGE: (usize, usize) = (4 * 1024, 8 * 1024);
const MEAN_GAP: SimDuration = SimDuration::micros(2);
const TAG: u32 = 7;
/// The sweep holds the cap fixed and varies pool depth. The cap is a hard
/// bound only while `peers × credits × max_len` stays under it (credits
/// ≤ 2 here) — deeper pools let the first burst overshoot before the
/// high-water throttle can bite, which the sweep shows deliberately.
const CAP: usize = 128 * 1024;

fn main() {
    let plan = OverloadPlan::new(SEED, SENDERS, MSGS_PER_SENDER, LEN_RANGE, MEAN_GAP);
    println!(
        "eager flood: {} senders x {} msgs, {}-{} B payloads, {} B total",
        SENDERS,
        MSGS_PER_SENDER,
        LEN_RANGE.0,
        LEN_RANGE.1,
        plan.total_bytes()
    );
    println!("unexpected-byte cap: {} B (high water {} B)\n", CAP, CAP / 2);
    println!(
        "{:>9} | {:>12} | {:>8} | {:>9} | {:>9} | {:>10}",
        "credits", "peak unex", "eager", "fallback", "withheld", "time"
    );
    println!("{:-<9}-+-{:-<12}-+-{:-<8}-+-{:-<9}-+-{:-<9}-+-{:-<10}", "", "", "", "", "", "");
    for credits in [0u32, 1, 2, 4, 8, 16] {
        let (label, flow) = if credits == 0 {
            ("off".to_string(), None)
        } else {
            (credits.to_string(), Some(FlowConfig::bounded(credits, CAP)))
        };
        let mut stack = StackConfig::mpich2_nmad(false).with_fabric_seed(SEED);
        if let Some(f) = flow {
            stack = stack.with_flow(f);
        }
        let cluster = Cluster::grid5000_opteron();
        let placement = Placement::one_per_node(1 + SENDERS, &cluster);
        let p = plan.clone();
        let outcome = run_mpi(
            &cluster,
            &placement,
            &stack,
            1 + SENDERS,
            Arc::new(move |mpi: MpiHandle| flood_rank(&mpi, &p)),
        );
        let ft = outcome.flow_totals();
        let total = plan.total_msgs() as u64;
        println!(
            "{:>9} | {:>10} B | {:>7}% | {:>8}% | {:>9} | {:>7.2} ms{}",
            label,
            ft.peak_unex_bytes,
            100 * ft.eager_admitted / total,
            100 * ft.fallback_sends / total,
            ft.credits_withheld,
            outcome.sim.final_time.as_nanos() as f64 / 1e6,
            if ft.peak_unex_bytes > CAP as u64 {
                "  <- cap blown"
            } else {
                ""
            }
        );
    }
    println!(
        "\nDeeper pools keep more of the flood eager but buffer more bytes \
         at the receiver;\nthe cap only binds once pools are shallow enough \
         that exhausted senders degrade to\nrendezvous (the payload then \
         waits on the sender until the receiver asks for it)."
    );
}

fn flood_rank(mpi: &MpiHandle, plan: &OverloadPlan) {
    let me = mpi.rank();
    if me == 0 {
        mpi.compute(SimDuration::micros(500));
        for _ in 0..plan.total_msgs() {
            let (data, st) = mpi.recv(Src::Any, TAG);
            assert!(!data.is_empty() && st.source >= 1);
            mpi.compute(SimDuration::micros(5));
        }
    } else {
        for &(gap, len) in plan.schedule(me - 1) {
            mpi.compute(gap);
            mpi.send(0, TAG, &vec![me as u8; len]);
        }
    }
}
