//! Multirail demo: move 32 MB across the heterogeneous IB + Myrinet pair
//! and watch NewMadeleine's sampling-based split aggregate both NICs'
//! bandwidth (the Fig. 5 behaviour).
//!
//! ```sh
//! cargo run --release --example multirail_transfer
//! ```

use std::sync::Arc;

use mpich2_nmad_repro::mpi_ch3::stack::{run_mpi, StackConfig};
use mpich2_nmad_repro::mpi_ch3::{MpiHandle, Src};
use mpich2_nmad_repro::simnet::{Cluster, Placement, SimTime};
use parking_lot::Mutex;

const SIZE: usize = 32 << 20;
const MB: f64 = (1 << 20) as f64;

fn transfer(stack: &StackConfig) -> (f64, u64) {
    let cluster = Cluster::xeon_pair();
    let placement = Placement::one_per_node(2, &cluster);
    let done = Arc::new(Mutex::new(SimTime::ZERO));
    let d2 = Arc::clone(&done);
    let out = run_mpi(
        &cluster,
        &placement,
        stack,
        2,
        Arc::new(move |mpi: MpiHandle| {
            if mpi.rank() == 0 {
                let payload = vec![0x42u8; SIZE];
                mpi.send(1, 1, &payload);
            } else {
                let (data, _) = mpi.recv(Src::Rank(0), 1);
                assert_eq!(data.len(), SIZE);
                *d2.lock() = mpi.now();
            }
        }),
    );
    let secs = done.lock().as_secs_f64();
    let chunks = out.nm_stats[0].data_chunks_sent;
    (SIZE as f64 / MB / secs, chunks)
}

fn main() {
    println!("transferring {} MB, one message:", SIZE >> 20);
    for (label, stack) in [
        ("IB only      ", StackConfig::mpich2_nmad_rail(0, false)),
        ("MX only      ", StackConfig::mpich2_nmad_rail(1, false)),
        ("multirail    ", StackConfig::mpich2_nmad(false)),
    ] {
        let (mbps, chunks) = transfer(&stack);
        println!("  {label} {mbps:7.0} MB/s  ({chunks} rendezvous chunks)");
    }
    println!(
        "\nThe multirail strategy samples each rail's latency/bandwidth at\n\
         startup and splits the payload so both NICs finish together —\n\
         the aggregated figure approaches the sum of the two rails\n\
         (paper, Fig. 5b: ~2250 MB/s from 1250 + 1100)."
    );
}
