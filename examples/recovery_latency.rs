//! E21: communicator-recovery latency — how long revoke, fault-tolerant
//! agreement, shrink/rebuild and the join-merge take on a 64-rank job
//! losing two nodes (one mid-agreement), in simulated time.
//!
//! Runs the `tests/recovery.rs` chaos scenario with per-phase simulated
//! timestamps on every rank and reports, per recovery step, the span from
//! the first rank entering to the last rank leaving (a collective is only
//! done when its slowest member is). Results are written to
//! `BENCH_9.json` (pass an output path as the first argument to
//! override).
//!
//! Run with `cargo run --release --example recovery_latency`.

use std::fmt::Write as _;
use std::time::Instant;

use mpich2_nmad_repro::mpi_ch3::comm::Comm;
use mpich2_nmad_repro::mpi_ch3::stack::{run_mpi_collect, StackConfig};
use mpich2_nmad_repro::mpi_ch3::{MpiHandle, Src};
use mpich2_nmad_repro::nmad::{MembershipConfig, RetryConfig};
use mpich2_nmad_repro::simnet::{
    Cluster, FaultPlan, FaultSpec, NicModel, NodeWindow, Placement, SimDuration, SimTime,
};

const RANKS: usize = 64;
const JOINER: usize = 63;
const DEAD1: usize = 9;
const DEAD2: usize = 23;

const T_CRASH1: u64 = 400; // µs
const T_REVOKE: u64 = 450;
const T_PHASE_C: u64 = 1_500;
const T_CRASH2: u64 = 1_510;
const T_JOIN: u64 = 2_000;
const T_JOIN_SAFE: u64 = 2_050;
const JOIN_SEQ: u32 = 777;
const TAG_CORPSE: u32 = 31;
const RDV_LEN: usize = 64 * 1024;

fn micros(t: u64) -> SimTime {
    SimTime::ZERO + SimDuration::micros(t)
}

fn wait_until(mpi: &MpiHandle, t: u64) {
    loop {
        let now = mpi.now().as_nanos();
        let target = t * 1_000;
        if now >= target {
            return;
        }
        let step = (target - now).min(5_000);
        mpi.compute(SimDuration::nanos(step));
        let _ = mpi.iprobe(Src::Any, u32::MAX);
    }
}

/// Per-rank simulated timestamps (ns) around each recovery step, plus
/// the death log for detection latencies.
#[derive(Default, Clone)]
struct Marks {
    revoke_at: u64,
    shrink1: Option<(u64, u64)>,
    shrink2: Option<(u64, u64)>,
    join: Option<(u64, u64)>,
    death_log: Vec<(usize, u64, u64)>,
}

fn rank_program(mpi: &MpiHandle) -> Marks {
    let me = mpi.rank();
    let initial: Vec<usize> = (0..RANKS - 1).collect();
    let mut marks = Marks::default();

    if me == JOINER {
        wait_until(mpi, T_JOIN);
        let t0 = mpi.now().as_nanos();
        let merged = mpi.comm_join(0, JOIN_SEQ);
        marks.join = Some((t0, mpi.now().as_nanos()));
        let _ = mpi.comm_allreduce_sum(&merged, &[me as f64]);
        marks.death_log = mpi.death_log();
        return marks;
    }

    let c0 = Comm::from_members(mpi, 0, initial);
    mpi.comm_barrier(&c0);
    let _ = mpi.comm_allreduce_sum(&c0, &[1.0]);

    if me == DEAD1 {
        wait_until(mpi, T_CRASH1);
        mpi.crash();
        return marks;
    }

    wait_until(mpi, T_REVOKE);
    if me == 0 {
        let s = mpi.isend(DEAD1, TAG_CORPSE, &vec![0xA5u8; RDV_LEN]);
        let _ = mpi.wait_result(s);
        mpi.comm_revoke(&c0);
        marks.revoke_at = mpi.now().as_nanos();
    }
    mpi.comm_barrier(&c0); // revoked: quiesces, never hangs

    let t0 = mpi.now().as_nanos();
    let c1 = mpi.comm_shrink(&c0);
    marks.shrink1 = Some((t0, mpi.now().as_nanos()));
    let _ = mpi.comm_allreduce_sum(&c1, &[(me + 1) as f64]);

    if me == DEAD2 {
        wait_until(mpi, T_CRASH2);
        mpi.crash();
        return marks;
    }

    wait_until(mpi, T_PHASE_C);
    let t0 = mpi.now().as_nanos();
    let c2 = mpi.comm_shrink(&c1);
    marks.shrink2 = Some((t0, mpi.now().as_nanos()));
    let _ = mpi.comm_allreduce_sum(&c2, &[(me * me) as f64]);

    wait_until(mpi, T_JOIN_SAFE);
    let t0 = mpi.now().as_nanos();
    let c3 = mpi.comm_accept(&c2, JOINER, JOIN_SEQ);
    marks.join = Some((t0, mpi.now().as_nanos()));
    let _ = mpi.comm_allreduce_sum(&c3, &[me as f64]);
    marks.death_log = mpi.death_log();
    marks
}

fn stack(seed: u64) -> StackConfig {
    let mut stack = StackConfig::mpich2_nmad(false);
    stack.nm.retry = Some(RetryConfig {
        timeout: SimDuration::micros(20),
        backoff: 2,
        max_timeout: SimDuration::micros(100),
        max_attempts: 6,
        ..RetryConfig::default()
    });
    let mut nodes: Vec<Vec<NodeWindow>> = vec![Vec::new(); RANKS];
    nodes[DEAD1] = vec![NodeWindow::crash(micros(T_CRASH1))];
    nodes[DEAD2] = vec![NodeWindow::crash(micros(T_CRASH2))];
    nodes[JOINER] = vec![NodeWindow::join(micros(T_JOIN))];
    stack
        .with_membership(MembershipConfig {
            suspect_after: 2,
            dead_after: 4,
            min_silence: SimDuration::micros(50),
            probe_interval: SimDuration::micros(25),
        })
        .with_faults(FaultPlan::with_nodes(
            seed,
            vec![FaultSpec::default()],
            Vec::new(),
            nodes,
        ))
}

/// First-entry → last-exit span (µs) of a step across ranks.
fn span_us(marks: &[Marks], f: impl Fn(&Marks) -> Option<(u64, u64)>) -> (f64, f64) {
    let mut start = u64::MAX;
    let mut end = 0u64;
    for m in marks {
        if let Some((s, e)) = f(m) {
            start = start.min(s);
            end = end.max(e);
        }
    }
    (start as f64 / 1_000.0, (end - start) as f64 / 1_000.0)
}

fn detection_us(marks: &[Marks], corpse: usize, crash_us: u64) -> (f64, f64, usize) {
    let lats: Vec<u64> = marks
        .iter()
        .flat_map(|m| m.death_log.iter())
        .filter(|&&(p, _, _)| p == corpse)
        .map(|&(_, t, _)| t - crash_us * 1_000)
        .collect();
    (
        *lats.iter().min().unwrap() as f64 / 1_000.0,
        *lats.iter().max().unwrap() as f64 / 1_000.0,
        lats.len(),
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_9.json".to_string());
    let seed = 0x9E10_0000u64;
    let cluster = Cluster::new(RANKS, 1, vec![NicModel::connectx_ib()]);
    let placement = Placement::one_per_node(RANKS, &cluster);
    let t0 = Instant::now();
    let (outcome, marks) = run_mpi_collect(&cluster, &placement, &stack(seed), RANKS, rank_program);
    let wall = t0.elapsed().as_secs_f64();

    let (d1_min, d1_max, d1_n) = detection_us(&marks, DEAD1, T_CRASH1);
    let (d2_min, d2_max, d2_n) = detection_us(&marks, DEAD2, T_CRASH2);
    let revoke_at = marks[0].revoke_at as f64 / 1_000.0;
    let (s1_at, s1_span) = span_us(&marks, |m| m.shrink1);
    let (s2_at, s2_span) = span_us(&marks, |m| m.shrink2);
    let (j_at, j_span) = span_us(&marks, |m| m.join);
    let m = outcome.membership_totals();

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"experiment\": \"E21-recovery-latency\",");
    let _ = writeln!(json, "  \"ranks\": {RANKS},");
    let _ = writeln!(json, "  \"wall_clock_s\": {wall:.3},");
    let _ = writeln!(
        json,
        "  \"detection_us\": {{\n    \"corpse_{DEAD1}\": {{\"min\": {d1_min:.1}, \"max\": {d1_max:.1}, \"observers\": {d1_n}}},\n    \"corpse_{DEAD2}\": {{\"min\": {d2_min:.1}, \"max\": {d2_max:.1}, \"observers\": {d2_n}}}\n  }},"
    );
    let _ = writeln!(
        json,
        "  \"revoke\": {{\"crash_us\": {T_CRASH1}, \"committed_at_us\": {revoke_at:.1}}},"
    );
    let _ = writeln!(
        json,
        "  \"shrink1\": {{\"first_entry_us\": {s1_at:.1}, \"agree_rebuild_seal_span_us\": {s1_span:.1}, \"survivors\": 62}},"
    );
    let _ = writeln!(
        json,
        "  \"shrink2_mid_agreement_death\": {{\"first_entry_us\": {s2_at:.1}, \"agree_rebuild_seal_span_us\": {s2_span:.1}, \"survivors\": 61}},"
    );
    let _ = writeln!(
        json,
        "  \"join_merge\": {{\"first_entry_us\": {j_at:.1}, \"span_us\": {j_span:.1}, \"members\": 62}},"
    );
    let _ = writeln!(
        json,
        "  \"epoch_hygiene\": {{\"revoked_epochs\": {}, \"revoked_ops\": {}, \"stale_epoch_frames\": {}, \"dead_peer_verdicts\": {}, \"drained_entries\": {}}}",
        m.revoked_epochs, m.revoked_ops, m.stale_epoch, m.dead_peers, m.drained_entries
    );
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, &json).expect("write bench output");
    println!("{json}");
    println!("wrote {out_path}");
}
