//! E15: degraded-mode multirail failover bandwidth.
//!
//! Runs the two-rank large-message round exchange on the two-rail Xeon
//! pair under four conditions — both rails healthy, survivor rail alone,
//! rail 1 killed mid-run forever, rail 1 killed then revived — and prints
//! a per-phase bandwidth table plus the rail-health counters.
//!
//! ```text
//! cargo run --release --example rail_failover
//! ```

use mpich2_nmad_repro::mpi_ch3::stack::{run_mpi_collect, RunOutcome, StackConfig};
use mpich2_nmad_repro::mpi_ch3::{MpiHandle, Src};
use mpich2_nmad_repro::simnet::{
    Cluster, FaultPlan, FaultSpec, LinkWindow, Placement, SimDuration, SimTime,
};

const LEN: usize = 256 * 1024;
const ROUNDS: usize = 24;
const TAG: u32 = 7;
const SEED: u64 = 0xFA11_0E55;
const KILL_AT: SimDuration = SimDuration::micros(700);

fn fill(rank: usize, round: usize) -> Vec<u8> {
    let mut x = SEED
        ^ ((rank as u64 + 1) << 32)
        ^ (round as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (0..LEN)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 56) as u8
        })
        .collect()
}

fn rounds_rank(mpi: &MpiHandle) -> Vec<u64> {
    let me = mpi.rank();
    let peer = 1 - me;
    let mut marks = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        let r = mpi.irecv(Src::Rank(peer), TAG);
        let s = mpi.isend(peer, TAG, &fill(me, round));
        let (data, _) = mpi.wait_data(r);
        assert_eq!(&data.unwrap()[..], &fill(peer, round)[..]);
        mpi.wait(s);
        marks.push(mpi.now().as_nanos());
    }
    marks
}

fn run(stack: &StackConfig) -> (RunOutcome, Vec<u64>) {
    let cluster = Cluster::xeon_pair();
    let placement = Placement::one_per_node(2, &cluster);
    let (outcome, mut marks) =
        run_mpi_collect(&cluster, &placement, stack, 2, rounds_rank);
    (outcome, marks.swap_remove(0))
}

fn kill_rail1(duration: SimDuration) -> StackConfig {
    StackConfig::mpich2_nmad(false).with_faults(FaultPlan::with_links(
        SEED,
        vec![FaultSpec::default(), FaultSpec::default()],
        vec![
            vec![],
            vec![LinkWindow::down(SimTime::ZERO + KILL_AT, duration)],
        ],
    ))
}

/// MB/s over rounds [from, to) of the marks; 2·LEN bytes per round.
fn bw(marks: &[u64], from: usize, to: usize) -> f64 {
    let t0 = if from == 0 { 0 } else { marks[from - 1] };
    let dt = (marks[to - 1] - t0) as f64 / 1e9;
    ((to - from) * 2 * LEN) as f64 / 1e6 / dt
}

fn report(name: &str, outcome: &RunOutcome, marks: &[u64]) {
    let (transitions, rerouted, degraded) = outcome.failover_totals();
    let (probes, acks) = outcome.probe_totals();
    let retries: u64 = outcome.nm_stats.iter().map(|s| s.total_retries()).sum();
    println!("== {name}");
    println!(
        "   rounds 0-4 {:7.1} MB/s | mid {:7.1} MB/s | last 4 {:7.1} MB/s",
        bw(marks, 0, 4),
        bw(marks, ROUNDS / 2 - 2, ROUNDS / 2 + 2),
        bw(marks, ROUNDS - 4, ROUNDS),
    );
    println!(
        "   transitions {transitions} rerouted {rerouted} B degraded {degraded} ns \
         probes {probes}/{acks} retries {retries}"
    );
    let sum = |f: fn(&mpich2_nmad_repro::nmad::core::NmStats) -> u64| -> u64 {
        outcome.nm_stats.iter().map(f).sum()
    };
    println!(
        "   retry breakdown: eager {} rts {} cts {} data {} fin-replays {}",
        sum(|s| s.eager_retries),
        sum(|s| s.rts_retries),
        sum(|s| s.cts_retries),
        sum(|s| s.data_retries),
        sum(|s| s.dup_data),
    );
    println!(
        "   rail bytes: {:?}  marks: {:?}",
        outcome.rail_counters, marks
    );
}

fn main() {
    let (o, m) = run(&StackConfig::mpich2_nmad(false).with_fabric_seed(SEED));
    report("healthy two-rail", &o, &m);

    let (o, m) = run(&StackConfig::mpich2_nmad_rail(0, false).with_fabric_seed(SEED));
    report("healthy single-rail (survivor alone)", &o, &m);

    let (o, m) = run(&kill_rail1(SimDuration::secs(3600)));
    report("rail 1 killed at 700us, never revived", &o, &m);

    let (o, m) = run(&kill_rail1(SimDuration::millis(2)));
    report("rail 1 killed at 700us, revived at 2.7ms", &o, &m);
}
