//! Observability quickstart: run one traced scenario, print the per-phase
//! latency breakdown and the metric counters, and write a Chrome
//! trace-event file.
//!
//! ```text
//! cargo run --release --example trace_demo
//! ```
//!
//! Open `target/trace.json` in Perfetto (https://ui.perfetto.dev) or
//! `about://tracing`: each message gets its own lane whose slices are the
//! lifecycle phases (posted → matched → eager/RTS → CTS → chunks → FIN →
//! completed), with retries and reroutes as instants.

use std::fs;

use mpich2_nmad_repro::sim_harness::{Scenario, Workload};
use mpich2_nmad_repro::simnet::FaultSpec;

fn main() {
    // A fault-armed multirail run makes the richest trace: rendezvous
    // handshakes, per-rail chunks, retries and reroutes all show up.
    let scenario = Scenario::new(42, FaultSpec::mixed(), Workload::Multirail, false);
    let (fp, report) = scenario.run_traced();

    println!(
        "ran '{:?}' under mixed faults: {} events, {} sim-ns, {} retries",
        scenario.workload,
        report.events.len(),
        fp.final_time_nanos,
        fp.total_retries(),
    );
    println!();
    println!("{}", report.breakdown());

    println!("counters:");
    for (name, v) in report.metrics.counters() {
        println!("  {name:<24} {v}");
    }
    println!("histograms:");
    for (name, h) in report.metrics.histograms() {
        let (lo, hi) = h.quantile_bounds(0.99).unwrap_or((0, 0));
        println!(
            "  {name:<24} n={} mean={:.0} max={} p99∈[{lo},{hi}]",
            h.count(),
            h.mean().unwrap_or(0.0),
            h.max().unwrap_or(0),
        );
    }

    fs::create_dir_all("target").expect("create target dir");
    fs::write("target/trace.json", report.to_chrome_trace()).expect("write trace");
    fs::write("target/trace.jsonl", report.to_jsonl()).expect("write jsonl");
    println!();
    println!("wrote target/trace.json (Chrome trace-event format — open in Perfetto)");
    println!("wrote target/trace.jsonl (one JSON object per recorded event)");
    println!("canonical trace hash: {:#018x}", report.hash());
}
