//! Run the NAS CG kernel (class A) on the simulated Grid'5000 cluster
//! with all four Fig. 8 stacks and print the extrapolated execution times.
//!
//! ```sh
//! cargo run --release --example nas_cg
//! ```

use mpich2_nmad_repro::mpi_ch3::stack::StackConfig;
use mpich2_nmad_repro::nasbench::{run_nas, Class, Kernel};
use mpich2_nmad_repro::simnet::Cluster;

fn main() {
    let cluster = Cluster::grid5000_opteron();
    let stacks = vec![
        baselines_mvapich(),
        baselines_openmpi(),
        StackConfig::mpich2_nmad(false),
        StackConfig::mpich2_nmad(true),
    ];
    println!("NAS CG class A on the simulated Grid'5000 cluster:");
    println!("{:>8}  {:>26}  {:>10}", "procs", "stack", "time (s)");
    for procs in [8usize, 16, 32] {
        for stack in &stacks {
            let r = run_nas(&cluster, stack, Kernel::CG, Class::A, procs, None);
            println!("{:>8}  {:>26}  {:>10.2}", r.nprocs, r.stack, r.time_s);
        }
    }
    println!(
        "\nAll stacks land within a few percent of each other — CG is\n\
         compute-bound at these scales, matching Fig. 8's observation that\n\
         MPICH2-NewMadeleine is 'globally on par with network-tailored MPI\n\
         implementations, while using a generic communication layer'."
    );
}

fn baselines_mvapich() -> StackConfig {
    mpich2_nmad_repro::baselines::mvapich2(0)
}

fn baselines_openmpi() -> StackConfig {
    mpich2_nmad_repro::baselines::openmpi(0)
}
