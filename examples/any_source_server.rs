//! MPI_ANY_SOURCE demo: a "server" rank collects requests from clients on
//! its own node (shared memory) and on remote nodes (NewMadeleine) with a
//! single ANY_SOURCE receive loop — exercising the §3.2 request-list
//! machinery end to end.
//!
//! ```sh
//! cargo run --release --example any_source_server
//! ```

use std::sync::Arc;

use mpich2_nmad_repro::mpi_ch3::stack::{run_mpi, StackConfig};
use mpich2_nmad_repro::mpi_ch3::{MpiHandle, Src};
use mpich2_nmad_repro::simnet::{Cluster, NodeId, Placement, SimDuration};
use parking_lot::Mutex;

const TAG_REQ: u32 = 1;
const TAG_REPLY: u32 = 2;
const CLIENTS: usize = 5;
const REQUESTS_PER_CLIENT: usize = 4;

/// (source rank, request body, arrival time in µs) per handled request.
type RequestLog = Vec<(usize, String, f64)>;

fn main() {
    // Rank 0 (server) and ranks 1–2 share node 0; ranks 3–5 sit on other
    // nodes — so requests arrive over BOTH paths the §3.2 lists unify.
    let cluster = Cluster::grid5000_opteron();
    let placement = Placement::explicit(vec![
        NodeId(0),
        NodeId(0),
        NodeId(0),
        NodeId(1),
        NodeId(2),
        NodeId(3),
    ]);
    let stack = StackConfig::mpich2_nmad(false);
    let log = Arc::new(Mutex::new(Vec::new()));
    let l2 = Arc::clone(&log);

    run_mpi(
        &cluster,
        &placement,
        &stack,
        CLIENTS + 1,
        Arc::new(move |mpi: MpiHandle| {
            if mpi.rank() == 0 {
                server(&mpi, &l2);
            } else {
                client(&mpi);
            }
        }),
    );

    let log = log.lock();
    println!("server handled {} requests:", log.len());
    let mut per_client = [0usize; CLIENTS + 1];
    for (source, body, at_us) in log.iter() {
        println!("  t={at_us:9.1}us  from rank {source}: {body}");
        per_client[*source] += 1;
    }
    assert!(per_client[1..].iter().all(|&n| n == REQUESTS_PER_CLIENT));
    println!("every client was served exactly {REQUESTS_PER_CLIENT} times.");
}

fn server(mpi: &MpiHandle, log: &Arc<Mutex<RequestLog>>) {
    for _ in 0..CLIENTS * REQUESTS_PER_CLIENT {
        // One ANY_SOURCE receive serves shared-memory and network clients
        // alike; under the hood the bypass stack probes NewMadeleine by
        // tag and keeps the CH3 queues for intra-node traffic (§3.2).
        let (req, status) = mpi.recv(Src::Any, TAG_REQ);
        log.lock().push((
            status.source,
            String::from_utf8_lossy(&req).into_owned(),
            mpi.now().as_micros_f64(),
        ));
        let reply = format!("ack:{}", String::from_utf8_lossy(&req));
        mpi.send(status.source, TAG_REPLY, reply.as_bytes());
    }
}

fn client(mpi: &MpiHandle) {
    for i in 0..REQUESTS_PER_CLIENT {
        // Stagger the clients so arrivals interleave across paths.
        mpi.compute(SimDuration::micros((mpi.rank() * 13 + i * 7) as u64));
        let body = format!("req{}-from-{}", i, mpi.rank());
        mpi.send(0, TAG_REQ, body.as_bytes());
        let (reply, status) = mpi.recv(Src::Rank(0), TAG_REPLY);
        assert_eq!(status.source, 0);
        assert_eq!(
            String::from_utf8_lossy(&reply),
            format!("ack:{body}"),
            "reply must echo the request"
        );
    }
}
