//! Pure engine token-handoff throughput: K ranks round-robin through
//! `advance`, so every event is a park/grant handoff. Reports wakes/sec
//! per rank count — the floor on what any simulated workload can hit.
//!
//! `cargo run --release --example handoff_bench [rank-counts]`

use std::time::Instant;

use mpich2_nmad_repro::simnet::{SimBuilder, SimDuration};

fn main() {
    let counts: Vec<usize> = std::env::args()
        .nth(1)
        .map(|s| s.split(',').map(|x| x.parse().unwrap()).collect())
        .unwrap_or_else(|| vec![2, 64, 256, 1024]);
    const TOTAL: usize = 200_000;
    for k in counts {
        let mut sim = SimBuilder::new().build();
        let per = TOTAL / k;
        for r in 0..k {
            sim.spawn_rank(format!("r{r}"), move |ctx| {
                for _ in 0..per {
                    ctx.advance(SimDuration::nanos(100));
                }
            });
        }
        let t0 = Instant::now();
        let out = sim.run().unwrap();
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "ranks {k:>5}: {:>8} wakes in {dt:.2}s = {:>8.0} wakes/s ({:.1} us/handoff)",
            out.wakes,
            out.wakes as f64 / dt,
            dt * 1e6 / out.wakes as f64
        );
    }
}
