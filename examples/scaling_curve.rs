//! E19: the scaling curve — collective sweeps at 64 / 256 / 1024 / 4096
//! ranks, plus a head-to-head of the old single-heap event queue against
//! the calendar queue.
//!
//! For each rank count the job runs a barrier, a hierarchical allreduce
//! and a Bruck alltoall, and reports wall-clock, dispatched events,
//! events/sec and peak RSS (VmHWM). Results are written to `BENCH_7.json`
//! (pass an output path as the first argument to override).
//!
//! Run with `cargo run --release --example scaling_curve` — debug builds
//! work but the headline numbers are meant to be measured in release.

use std::fmt::Write as _;
use std::time::Instant;

use bytes::Bytes;
use mpich2_nmad_repro::mpi_ch3::stack::{run_mpi_collect, StackConfig};
use mpich2_nmad_repro::simnet::event::{EventKind, EventQueue, HeapEventQueue};
use mpich2_nmad_repro::simnet::{Cluster, NicModel, Placement, SimTime};

/// Peak resident set size in kilobytes, from /proc/self/status (0 when
/// unavailable, e.g. non-Linux).
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

struct SweepPoint {
    ranks: usize,
    wall_s: f64,
    events: u64,
    wakes: u64,
    events_per_sec: f64,
    sim_time_us: f64,
    peak_rss_mb: f64,
}

/// One full collective sweep at `p` ranks: barrier + allreduce + alltoall.
///
/// Runs on the PIOMan stack: blocked ranks sleep on semaphores and are
/// woken by completions (§3.3.2), so the event count per collective is
/// O(messages), not O(sim-time / poll-granularity). The app-polling
/// stack burns one simulator event per 50ns-to-2µs poll step per waiting
/// rank, which at thousands of ranks multiplies into tens of millions of
/// events — the measured difference is roughly 7x fewer events and 10x
/// less wall-clock at 1024 ranks.
fn sweep(p: usize) -> SweepPoint {
    let nodes = p.div_ceil(16).max(2);
    let cluster = Cluster::new(nodes, 16, vec![NicModel::connectx_ib()]);
    let placement = Placement::block(p, &cluster);
    let stack = StackConfig::mpich2_nmad(true);
    let t0 = Instant::now();
    let (outcome, _) = run_mpi_collect(&cluster, &placement, &stack, p, move |mpi| {
        let me = mpi.rank();
        let n = mpi.size();
        mpi.barrier();
        let sum = mpi.allreduce_sum(&[me as f64]);
        assert_eq!(sum[0], (n * (n - 1) / 2) as f64);
        // Tiny blocks: the alltoall cost at scale is message count, which
        // is what the Bruck log-round algorithm is bounding. All P blocks
        // are slices of one per-rank buffer — P separate 4-byte
        // allocations per rank would be O(P²) allocator overhead job-wide,
        // swamping the payload itself.
        let backing: Vec<u8> = (0..n).flat_map(|d| [(me ^ d) as u8; 4]).collect();
        let backing = Bytes::from(backing);
        let blocks: Vec<Bytes> = (0..n).map(|d| backing.slice(4 * d..4 * d + 4)).collect();
        let got = mpi.alltoall(blocks);
        for (s, b) in got.iter().enumerate() {
            assert_eq!(b[0], (s ^ me) as u8);
        }
        mpi.barrier();
    });
    let wall = t0.elapsed().as_secs_f64();
    SweepPoint {
        ranks: p,
        wall_s: wall,
        events: outcome.sim.events,
        wakes: outcome.sim.wakes,
        events_per_sec: outcome.sim.events as f64 / wall,
        sim_time_us: outcome.sim.final_time.0 as f64 / 1000.0,
        peak_rss_mb: peak_rss_kb() as f64 / 1024.0,
    }
}

/// Queue throughput: a standing population of `pop` events, `total`
/// push+pop pairs, mimicking the dispatch loop's access pattern (mostly
/// near-future inserts, strictly ordered pops).
fn queue_bench(total: u64, pop: u64) -> (f64, f64) {
    fn run<Q>(mut push: impl FnMut(&mut Q, u64), mut popf: impl FnMut(&mut Q) -> u64, q: &mut Q, total: u64, popn: u64) -> f64 {
        let mut lcg = 0x2545F4914F6CDD1Du64;
        for i in 0..popn {
            push(q, i * 37 % 5_000);
        }
        let t0 = Instant::now();
        for _ in 0..total {
            let now = popf(q);
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // Mostly near-horizon inserts with an occasional far event —
            // the shape real runs produce (poll backoffs + retry timers).
            let dt = if lcg >> 61 == 0 { 3_000_000 } else { lcg >> 50 };
            push(q, now + dt + 1);
        }
        total as f64 / t0.elapsed().as_secs_f64()
    }
    let heap_eps = {
        let mut q = HeapEventQueue::new();
        run(
            |q: &mut HeapEventQueue, t| {
                q.push(SimTime(t), EventKind::Wake(mpich2_nmad_repro::simnet::RankId(0)));
            },
            |q: &mut HeapEventQueue| q.pop().map(|(t, _)| t.0).unwrap_or(0),
            &mut q,
            total,
            pop,
        )
    };
    let cal_eps = {
        let mut q = EventQueue::new();
        run(
            |q: &mut EventQueue, t| {
                q.push(SimTime(t), EventKind::Wake(mpich2_nmad_repro::simnet::RankId(0)));
            },
            |q: &mut EventQueue| q.pop().map(|(t, _)| t.0).unwrap_or(0),
            &mut q,
            total,
            pop,
        )
    };
    (heap_eps, cal_eps)
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_7.json".into());
    let rank_counts: Vec<usize> = std::env::args()
        .nth(2)
        .map(|s| s.split(',').map(|x| x.parse().unwrap()).collect())
        .unwrap_or_else(|| vec![64, 256, 1024, 4096]);

    eprintln!("== E19 scheduler queue throughput (1M ops, standing population 4096) ==");
    let (heap_eps, cal_eps) = queue_bench(1_000_000, 4096);
    eprintln!("  heap     : {:>12.0} events/s", heap_eps);
    eprintln!("  calendar : {:>12.0} events/s ({:.2}x)", cal_eps, cal_eps / heap_eps);

    let mut points = Vec::new();
    for &p in &rank_counts {
        eprintln!("== E19 sweep at {p} ranks ==");
        let pt = sweep(p);
        eprintln!(
            "  wall {:.2}s  events {}  wakes {}  {:.0} events/s  sim {:.0}us  peak RSS {:.1} MB",
            pt.wall_s, pt.events, pt.wakes, pt.events_per_sec, pt.sim_time_us, pt.peak_rss_mb
        );
        points.push(pt);
    }

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"experiment\": \"E19-scaling-curve\",").unwrap();
    writeln!(
        json,
        "  \"build\": \"{}\",",
        if cfg!(debug_assertions) { "debug" } else { "release" }
    )
    .unwrap();
    writeln!(json, "  \"scheduler_queue\": {{").unwrap();
    writeln!(json, "    \"ops\": 1000000,").unwrap();
    writeln!(json, "    \"standing_population\": 4096,").unwrap();
    writeln!(json, "    \"heap_events_per_sec\": {:.0},", heap_eps).unwrap();
    writeln!(json, "    \"calendar_events_per_sec\": {:.0},", cal_eps).unwrap();
    writeln!(json, "    \"speedup\": {:.3}", cal_eps / heap_eps).unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"collective_sweep\": [").unwrap();
    for (i, pt) in points.iter().enumerate() {
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"ranks\": {},", pt.ranks).unwrap();
        writeln!(json, "      \"wall_clock_s\": {:.3},", pt.wall_s).unwrap();
        writeln!(json, "      \"events\": {},", pt.events).unwrap();
        writeln!(json, "      \"wakes\": {},", pt.wakes).unwrap();
        writeln!(json, "      \"events_per_sec\": {:.0},", pt.events_per_sec).unwrap();
        writeln!(json, "      \"sim_time_us\": {:.1},", pt.sim_time_us).unwrap();
        writeln!(json, "      \"peak_rss_mb\": {:.1}", pt.peak_rss_mb).unwrap();
        writeln!(json, "    }}{}", if i + 1 < points.len() { "," } else { "" }).unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write(&out_path, &json).expect("write BENCH_7.json");
    eprintln!("wrote {out_path}");
}
