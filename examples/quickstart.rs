//! Quickstart: run a two-process MPI job on the simulated cluster and
//! measure a ping-pong with the MPICH2-NewMadeleine stack.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use mpich2_nmad_repro::mpi_ch3::stack::{run_mpi, StackConfig};
use mpich2_nmad_repro::mpi_ch3::{MpiHandle, Src};
use mpich2_nmad_repro::simnet::{Cluster, Placement};
use parking_lot::Mutex;

fn main() {
    // The paper's point-to-point testbed: two nodes, one ConnectX IB NIC
    // and one Myri-10G NIC each.
    let cluster = Cluster::xeon_pair();
    let placement = Placement::one_per_node(2, &cluster);

    // The paper's stack: CH3 bypassing Nemesis into NewMadeleine.
    let stack = StackConfig::mpich2_nmad(false);

    let report = Arc::new(Mutex::new(String::new()));
    let r2 = Arc::clone(&report);

    run_mpi(
        &cluster,
        &placement,
        &stack,
        2,
        Arc::new(move |mpi: MpiHandle| {
            const ITERS: usize = 100;
            if mpi.rank() == 0 {
                // Warmup.
                mpi.send(1, 7, b"hello");
                mpi.recv(Src::Rank(1), 7);
                let t0 = mpi.now();
                for _ in 0..ITERS {
                    mpi.send(1, 7, b"hello");
                    let (echo, status) = mpi.recv(Src::Rank(1), 7);
                    assert_eq!(&echo[..], b"hello");
                    assert_eq!(status.source, 1);
                }
                let one_way =
                    (mpi.now() - t0).as_micros_f64() / (2.0 * ITERS as f64);
                *r2.lock() = format!(
                    "ping-pong over simulated InfiniBand: {one_way:.2} us one-way \
                     (paper, Fig. 4a: 2.1 us)"
                );
            } else {
                mpi.recv(Src::Rank(0), 7);
                mpi.send(0, 7, b"hello");
                for _ in 0..ITERS {
                    mpi.recv(Src::Rank(0), 7);
                    mpi.send(0, 7, b"hello");
                }
            }
        }),
    );
    println!("{}", report.lock());
}
