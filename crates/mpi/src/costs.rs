//! Software-cost calibration — the single place every per-stack timing
//! constant lives.
//!
//! The constants are reverse-engineered from the paper's measured
//! latencies (§4.1.1, DESIGN.md §4): with a one-way wire latency `W` and
//! per-side software overheads `s` (sender) and `r` (receiver), a Netpipe
//! half-round-trip measures `W + s + r (+ polling granularity)`. Examples
//! over InfiniBand (`W` = 1.2 µs):
//!
//! | stack              | s + r   | one-way |
//! |--------------------|---------|---------|
//! | raw NewMadeleine   | 0.6 µs  | 1.8 µs  |
//! | MPICH2-NewMadeleine| 0.9 µs  | 2.1 µs  |
//! | MVAPICH2           | 0.3 µs  | 1.5 µs  |
//! | Open MPI           | 0.4 µs  | 1.6 µs  |
//!
//! MPI_ANY_SOURCE adds a constant ≈300 ns on the receive side (§4.1.1:
//! "this gap remains constant while message size grows").

use simnet::SimDuration;

/// Per-message software costs of one MPI stack.
#[derive(Clone, Copy, Debug)]
pub struct SoftwareCosts {
    /// Sender-side CPU cost per inter-node message (stack traversal,
    /// request allocation, NIC doorbell).
    pub net_send: SimDuration,
    /// Receiver-side CPU cost per inter-node message (poll processing,
    /// matching, completion).
    pub net_recv: SimDuration,
    /// Extra sender-side CPU cost per intra-node message (on top of the
    /// shared-memory channel's own per-cell costs).
    pub shm_send: SimDuration,
    /// Extra receiver-side CPU cost per intra-node message.
    pub shm_recv: SimDuration,
    /// Extra receive-side cost when the request was posted with
    /// MPI_ANY_SOURCE (the §3.2 list walk + dynamic request creation).
    pub anysource_extra: SimDuration,
    /// Busy-wait polling granularity of the progress loop.
    pub poll_gran: SimDuration,
}

impl SoftwareCosts {
    /// The full MPICH2-NewMadeleine stack: 2.1 µs over IB.
    pub fn mpich2_nmad() -> SoftwareCosts {
        SoftwareCosts {
            net_send: SimDuration::nanos(330),
            net_recv: SimDuration::nanos(400),
            shm_send: SimDuration::nanos(20),
            shm_recv: SimDuration::nanos(20),
            anysource_extra: SimDuration::nanos(300),
            poll_gran: SimDuration::nanos(50),
        }
    }

    /// Raw NewMadeleine (no MPI layer): 1.8 µs over IB — the E11 breakdown
    /// row.
    pub fn nmad_raw() -> SoftwareCosts {
        SoftwareCosts {
            net_send: SimDuration::nanos(180),
            net_recv: SimDuration::nanos(250),
            shm_send: SimDuration::ZERO,
            shm_recv: SimDuration::ZERO,
            anysource_extra: SimDuration::ZERO,
            poll_gran: SimDuration::nanos(50),
        }
    }

    /// MVAPICH2-like calibration: 1.5 µs over IB.
    pub fn mvapich2() -> SoftwareCosts {
        SoftwareCosts {
            net_send: SimDuration::nanos(30),
            net_recv: SimDuration::nanos(100),
            shm_send: SimDuration::nanos(30),
            shm_recv: SimDuration::nanos(30),
            anysource_extra: SimDuration::ZERO,
            poll_gran: SimDuration::nanos(50),
        }
    }

    /// Open MPI-like calibration: 1.6 µs over IB; its shared-memory path is
    /// measurably slower than Nemesis (Fig. 6a shows ~0.45 µs vs ~0.2 µs).
    pub fn openmpi() -> SoftwareCosts {
        SoftwareCosts {
            net_send: SimDuration::nanos(80),
            net_recv: SimDuration::nanos(150),
            shm_send: SimDuration::nanos(150),
            shm_recv: SimDuration::nanos(100),
            anysource_extra: SimDuration::ZERO,
            poll_gran: SimDuration::nanos(50),
        }
    }

    /// Legacy netmod path: the extra pass through the Nemesis queue system
    /// costs an additional copy and protocol hop per message (§2.1.3
    /// "unnecessary copies are performed, in and from the queue cells").
    pub fn nmad_netmod() -> SoftwareCosts {
        SoftwareCosts {
            net_send: SimDuration::nanos(480),
            net_recv: SimDuration::nanos(550),
            ..Self::mpich2_nmad()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One-way latency each preset should produce over the 1.2 µs IB wire
    /// (± the 50 ns polling granularity).
    #[test]
    fn presets_reproduce_paper_latencies() {
        // One-way = NIC per-packet handoff (120 ns, charged at the port) +
        // wire latency + software costs.
        let wire = 1200i64 + 120;
        let cases = [
            (SoftwareCosts::mpich2_nmad(), 2100i64),
            (SoftwareCosts::nmad_raw(), 1800),
            (SoftwareCosts::mvapich2(), 1500),
            (SoftwareCosts::openmpi(), 1600),
        ];
        for (c, target) in cases {
            let one_way = wire + c.net_send.as_nanos() as i64 + c.net_recv.as_nanos() as i64;
            let err = (one_way - target).abs();
            assert!(
                err <= c.poll_gran.as_nanos() as i64 * 2,
                "calibration off: got {one_way}, want {target}"
            );
        }
    }

    #[test]
    fn anysource_gap_is_300ns() {
        assert_eq!(
            SoftwareCosts::mpich2_nmad().anysource_extra,
            SimDuration::nanos(300)
        );
    }
}
