//! MPI datatypes.
//!
//! §4.2: "We gathered data for all NAS benchmarks, except for IS. Indeed,
//! IS needs datatypes support and MPICH2-NewMadeleine does not handle yet
//! this functionality" — and the conclusion lists non-contiguous datatypes
//! as future work.
//!
//! This module implements that future work at the level MPICH2's generic
//! path does: [`Datatype::Contiguous`] plus the strided
//! [`Datatype::Vector`] (MPI_Type_vector), with pack/unpack through a
//! contiguous staging buffer. The transport layers below stay
//! contiguous-only — packing at the MPI layer is exactly what stock
//! MPICH2 does for datatypes its device cannot stream (the paper's
//! unexplored optimization would be teaching NewMadeleine's strategies to
//! schedule the pieces themselves).
//!
//! With this in place the IS kernel runs (`nasbench::Kernel::IS` — an
//! extension beyond the published evaluation).

/// An MPI datatype descriptor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Datatype {
    /// `element_size`-byte contiguous elements.
    Contiguous { element_size: usize },
    /// MPI_Type_vector: `count` blocks of `blocklen` elements, the starts
    /// of consecutive blocks `stride` elements apart (stride ≥ blocklen).
    Vector {
        count: usize,
        blocklen: usize,
        stride: usize,
        element_size: usize,
    },
}

impl Datatype {
    /// Raw bytes for MPI_BYTE.
    pub const BYTE: Datatype = Datatype::Contiguous { element_size: 1 };
    /// 8-byte floating point, the NAS kernels' currency.
    pub const DOUBLE: Datatype = Datatype::Contiguous { element_size: 8 };
    /// 4-byte integer (IS keys).
    pub const INT: Datatype = Datatype::Contiguous { element_size: 4 };

    /// Bytes of actual data (what travels on the wire) for `count`
    /// instances of the type.
    pub fn packed_size(&self, count: usize) -> usize {
        match self {
            Datatype::Contiguous { element_size } => element_size * count,
            Datatype::Vector {
                count: blocks,
                blocklen,
                element_size,
                ..
            } => blocks * blocklen * element_size * count,
        }
    }

    /// Bytes the type spans in memory (its extent) per instance.
    pub fn extent(&self, count: usize) -> usize {
        match self {
            Datatype::Contiguous { element_size } => element_size * count,
            Datatype::Vector {
                count: blocks,
                blocklen,
                stride,
                element_size,
            } => {
                if *blocks == 0 || count == 0 {
                    return 0;
                }
                // Last block of the last instance ends at:
                let one = (blocks - 1) * stride + blocklen;
                // Instances are laid out back to back at full-stride pitch.
                ((count - 1) * blocks * stride + one) * element_size
            }
        }
    }

    /// Is the in-memory layout already contiguous?
    pub fn is_contiguous(&self) -> bool {
        match self {
            Datatype::Contiguous { .. } => true,
            Datatype::Vector {
                blocklen, stride, ..
            } => blocklen == stride,
        }
    }

    /// Gather `count` instances of the type from `src` into a contiguous
    /// buffer (MPI_Pack).
    ///
    /// # Panics
    /// Panics if `src` is shorter than the type's extent.
    pub fn pack(&self, src: &[u8], count: usize) -> Vec<u8> {
        assert!(
            src.len() >= self.extent(count),
            "source buffer shorter than the datatype extent"
        );
        match self {
            // Packing IS the copy (MPI_Pack semantics): the packed buffer
            // must be owned and contiguous, independent of `src`.
            Datatype::Contiguous { element_size } => src[..element_size * count].to_vec(),
            Datatype::Vector {
                count: blocks,
                blocklen,
                stride,
                element_size,
            } => {
                let block_bytes = blocklen * element_size;
                let stride_bytes = stride * element_size;
                let mut out = Vec::with_capacity(self.packed_size(count));
                for inst in 0..count {
                    let base = inst * blocks * stride_bytes;
                    for b in 0..*blocks {
                        let start = base + b * stride_bytes;
                        out.extend_from_slice(&src[start..start + block_bytes]);
                    }
                }
                out
            }
        }
    }

    /// Scatter a packed buffer back into the strided layout (MPI_Unpack).
    ///
    /// # Panics
    /// Panics if the buffers are inconsistent with the type.
    pub fn unpack(&self, packed: &[u8], dst: &mut [u8], count: usize) {
        assert_eq!(
            packed.len(),
            self.packed_size(count),
            "packed length mismatch"
        );
        assert!(
            dst.len() >= self.extent(count),
            "destination shorter than the datatype extent"
        );
        match self {
            Datatype::Contiguous { .. } => dst[..packed.len()].copy_from_slice(packed),
            Datatype::Vector {
                count: blocks,
                blocklen,
                stride,
                element_size,
            } => {
                let block_bytes = blocklen * element_size;
                let stride_bytes = stride * element_size;
                let mut off = 0;
                for inst in 0..count {
                    let base = inst * blocks * stride_bytes;
                    for b in 0..*blocks {
                        let start = base + b * stride_bytes;
                        dst[start..start + block_bytes]
                            .copy_from_slice(&packed[off..off + block_bytes]);
                        off += block_bytes;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_extents() {
        assert_eq!(Datatype::BYTE.extent(10), 10);
        assert_eq!(Datatype::DOUBLE.extent(10), 80);
        assert_eq!(Datatype::INT.packed_size(3), 12);
        assert!(Datatype::BYTE.is_contiguous());
    }

    #[test]
    fn vector_sizes() {
        // 3 blocks of 2 elements, stride 4, u32 elements.
        let v = Datatype::Vector {
            count: 3,
            blocklen: 2,
            stride: 4,
            element_size: 4,
        };
        assert_eq!(v.packed_size(1), 3 * 2 * 4);
        // extent: (3-1)*4 + 2 = 10 elements = 40 bytes.
        assert_eq!(v.extent(1), 40);
        assert!(!v.is_contiguous());
        let dense = Datatype::Vector {
            count: 3,
            blocklen: 4,
            stride: 4,
            element_size: 1,
        };
        assert!(dense.is_contiguous());
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let v = Datatype::Vector {
            count: 3,
            blocklen: 2,
            stride: 4,
            element_size: 1,
        };
        // Memory: blocks at offsets 0..2, 4..6, 8..10 (extent 10).
        let src: Vec<u8> = (0..10).collect();
        let packed = v.pack(&src, 1);
        assert_eq!(packed, vec![0, 1, 4, 5, 8, 9]);
        let mut dst = vec![0xFFu8; 10];
        v.unpack(&packed, &mut dst, 1);
        for (i, &b) in dst.iter().enumerate() {
            if matches!(i, 0 | 1 | 4 | 5 | 8 | 9) {
                assert_eq!(b, i as u8);
            } else {
                assert_eq!(b, 0xFF, "gap byte {i} must be untouched");
            }
        }
    }

    #[test]
    fn multi_instance_pack() {
        let v = Datatype::Vector {
            count: 2,
            blocklen: 1,
            stride: 2,
            element_size: 1,
        };
        // Instance pitch = blocks*stride = 4 bytes; two instances span
        // (2-1)*4 + ((2-1)*2 + 1) = 7 bytes.
        assert_eq!(v.extent(2), 7);
        let src: Vec<u8> = (0..8).collect();
        let packed = v.pack(&src, 2);
        assert_eq!(packed, vec![0, 2, 4, 6]);
        let mut dst = vec![0u8; 8];
        v.unpack(&packed, &mut dst, 2);
        assert_eq!(&dst[..7], &[0, 0, 2, 0, 4, 0, 6]);
    }

    #[test]
    #[should_panic(expected = "shorter than the datatype extent")]
    fn pack_checks_bounds() {
        let v = Datatype::Vector {
            count: 4,
            blocklen: 2,
            stride: 8,
            element_size: 4,
        };
        let src = vec![0u8; 16];
        v.pack(&src, 1);
    }
}
