//! MPI-2 one-sided communication (RMA) — the paper's second future-work
//! item ("Another challenge would be to efficiently support MPI2 RMA
//! operations without compromising the optimizations implemented",
//! conclusion).
//!
//! This is an **active-target, fence-synchronized** implementation built
//! over the existing point-to-point machinery, the way MPICH2's
//! over-CH3 RMA fallback works: `put`/`get`/`accumulate` between two
//! fences are buffered as messages; `fence` closes the epoch with an
//! all-to-all count exchange, drains exactly the expected operations
//! (using MPI_ANY_SOURCE — so RMA traffic exercises the §3.2 machinery on
//! the bypass stack), applies them to the window, and answers the `get`s.
//!
//! Because the transport is NewMadeleine underneath, large `put`s ride the
//! rendezvous/multirail path like any large message — which is precisely
//! the paper's hoped-for outcome: the optimizations apply unchanged.

use bytes::{Buf, Bytes, BytesMut};
use parking_lot::Mutex;

use crate::api::{MpiHandle, Src};

/// Reserved user-tag range for RMA traffic (kept clear of applications by
/// convention, as MPICH2 reserves context ids).
const TAG_RMA_OP: u32 = 0x00FF_FF00;
const TAG_RMA_REPLY: u32 = 0x00FF_FF01;

/// An RMA operation on the wire.
enum Op {
    Put { offset: usize, data: Bytes },
    Get { offset: usize, len: usize, get_id: u64 },
    /// Element-wise f64 sum into the window (MPI_Accumulate with MPI_SUM).
    AccSum { offset: usize, data: Bytes },
}

impl Op {
    fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        match self {
            Op::Put { offset, data } => {
                b.extend_from_slice(&[0u8]);
                b.extend_from_slice(&(*offset as u64).to_le_bytes());
                b.extend_from_slice(data);
            }
            Op::Get {
                offset,
                len,
                get_id,
            } => {
                b.extend_from_slice(&[1u8]);
                b.extend_from_slice(&(*offset as u64).to_le_bytes());
                b.extend_from_slice(&(*len as u64).to_le_bytes());
                b.extend_from_slice(&get_id.to_le_bytes());
            }
            Op::AccSum { offset, data } => {
                b.extend_from_slice(&[2u8]);
                b.extend_from_slice(&(*offset as u64).to_le_bytes());
                b.extend_from_slice(data);
            }
        }
        b.freeze()
    }

    fn decode(mut raw: Bytes) -> Op {
        match raw.get_u8() {
            0 => Op::Put {
                offset: raw.get_u64_le() as usize,
                data: raw,
            },
            1 => Op::Get {
                offset: raw.get_u64_le() as usize,
                len: raw.get_u64_le() as usize,
                get_id: raw.get_u64_le(),
            },
            2 => Op::AccSum {
                offset: raw.get_u64_le() as usize,
                data: raw,
            },
            v => panic!("unknown RMA op {v}"),
        }
    }
}

/// A pending local `get`, filled in at the closing fence.
pub struct GetHandle {
    id: u64,
}

/// An RMA window: every rank exposes `size` bytes.
pub struct Window {
    local: Mutex<Vec<u8>>,
    /// Ops issued this epoch, per target.
    outgoing: Mutex<Vec<Vec<Op>>>,
    /// Completed get results by id.
    gets: Mutex<std::collections::HashMap<u64, Bytes>>,
    next_get: Mutex<u64>,
    nranks: usize,
    my_rank: usize,
}

impl Window {
    /// Collective: create a window of `size` bytes on every rank,
    /// initialized from `init` (padded with zeros).
    pub fn create(mpi: &MpiHandle, size: usize, init: &[u8]) -> Window {
        assert!(init.len() <= size);
        let mut local = vec![0u8; size];
        local[..init.len()].copy_from_slice(init);
        mpi.barrier(); // window creation is collective
        Window {
            local: Mutex::new(local),
            outgoing: Mutex::new((0..mpi.size()).map(|_| Vec::new()).collect()),
            gets: Mutex::new(Default::default()),
            next_get: Mutex::new(0),
            nranks: mpi.size(),
            my_rank: mpi.rank(),
        }
    }

    /// Read this rank's exposed memory (outside an access epoch).
    pub fn local(&self) -> Vec<u8> {
        // Ownership constraint: the snapshot must outlive the window lock
        // (concurrent Puts keep mutating the exposed memory).
        self.local.lock().clone()
    }

    /// MPI_Put: write `data` into `target`'s window at `offset` (visible
    /// after the next fence).
    pub fn put(&self, target: usize, offset: usize, data: &[u8]) {
        assert!(target < self.nranks);
        self.outgoing.lock()[target].push(Op::Put {
            offset,
            data: Bytes::copy_from_slice(data),
        });
    }

    /// MPI_Get: read `len` bytes from `target`'s window at `offset`. The
    /// result is available through [`Window::get_result`] after the next
    /// fence.
    pub fn get(&self, target: usize, offset: usize, len: usize) -> GetHandle {
        let id = {
            let mut g = self.next_get.lock();
            let v = *g;
            *g += 1;
            // Ids are namespaced by origin rank when they travel.
            v
        };
        self.outgoing.lock()[target].push(Op::Get {
            offset,
            len,
            get_id: id,
        });
        GetHandle { id }
    }

    /// MPI_Accumulate(MPI_SUM) of f64s into `target` at byte `offset`.
    pub fn accumulate_sum(&self, target: usize, offset: usize, values: &[f64]) {
        self.outgoing.lock()[target].push(Op::AccSum {
            offset,
            data: crate::collectives::f64s_to_bytes(values),
        });
    }

    /// Fetch a completed get (after the fence that closed its epoch).
    pub fn get_result(&self, h: &GetHandle) -> Bytes {
        self.gets
            .lock()
            .remove(&h.id)
            .expect("get not completed — did you fence?")
    }

    /// MPI_Win_fence: close the access epoch. Collective. All puts and
    /// accumulates issued by any rank are applied to the target windows
    /// and all gets answered before the fence returns.
    ///
    /// Ops are shipped with *nonblocking* sends before any receive is
    /// drained — two ranks issuing large (rendezvous) puts at each other
    /// must not deadlock in their blocking sends.
    pub fn fence(&self, mpi: &MpiHandle) {
        assert_eq!(mpi.rank(), self.my_rank);
        assert_eq!(mpi.size(), self.nranks);
        let n = self.nranks;
        // 1. Everyone learns how many ops target it: all-to-all of counts.
        let taken: Vec<Vec<Op>> = {
            let mut out = self.outgoing.lock();
            let t = std::mem::take(&mut *out);
            *out = (0..n).map(|_| Vec::new()).collect();
            t
        };
        let counts: Vec<Bytes> = taken
            .iter()
            .map(|ops| Bytes::copy_from_slice(&(ops.len() as u64).to_le_bytes()))
            .collect();
        let incoming_counts = mpi.alltoallv(counts);
        let to_receive: u64 = incoming_counts
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != self.my_rank)
            .map(|(_, c)| u64::from_le_bytes(c[..8].try_into().unwrap()))
            .sum();
        // 2. Ship the ops (self-targets applied directly; self-gets land
        // in the result map immediately).
        let mut send_reqs = Vec::new();
        let mut remote_gets = 0usize;
        for (target, ops) in taken.into_iter().enumerate() {
            for op in ops {
                if target == self.my_rank {
                    let reply = self.apply(&op, self.my_rank);
                    debug_assert!(reply.is_none());
                } else {
                    if matches!(op, Op::Get { .. }) {
                        remote_gets += 1;
                    }
                    send_reqs.push(mpi.isend_bytes(target, TAG_RMA_OP, op.encode()));
                }
            }
        }
        // 3. Drain exactly the expected remote ops — with ANY_SOURCE, so
        // the §3.2 lists see one-sided traffic too. Get replies go out
        // nonblocking for the same no-deadlock reason.
        for _ in 0..to_receive {
            let (raw, st) = mpi.recv(Src::Any, TAG_RMA_OP);
            if let Some(reply) = self.apply(&Op::decode(raw), st.source) {
                send_reqs.push(mpi.isend_bytes(st.source, TAG_RMA_REPLY, reply));
            }
        }
        // 4. Collect replies for our remote gets.
        for _ in 0..remote_gets {
            let (mut raw, _) = mpi.recv(Src::Any, TAG_RMA_REPLY);
            let id = raw.get_u64_le();
            self.gets.lock().insert(id, raw);
        }
        mpi.waitall(&send_reqs);
        // 5. Everyone done before anyone proceeds.
        mpi.barrier();
    }

    /// Apply one op to the local window. A remote `get` returns the reply
    /// payload to transmit; everything else returns `None` (self-gets are
    /// stored directly).
    fn apply(&self, op: &Op, origin: usize) -> Option<Bytes> {
        match op {
            Op::Put { offset, data } => {
                let mut w = self.local.lock();
                w[*offset..offset + data.len()].copy_from_slice(data);
                None
            }
            Op::AccSum { offset, data } => {
                let mut w = self.local.lock();
                let incoming = crate::collectives::bytes_to_f64s(data);
                for (i, v) in incoming.iter().enumerate() {
                    let at = offset + i * 8;
                    let cur = f64::from_le_bytes(w[at..at + 8].try_into().unwrap());
                    w[at..at + 8].copy_from_slice(&(cur + v).to_le_bytes());
                }
                None
            }
            Op::Get {
                offset,
                len,
                get_id,
            } => {
                let chunk = {
                    let w = self.local.lock();
                    Bytes::copy_from_slice(&w[*offset..offset + len])
                };
                if origin == self.my_rank {
                    self.gets.lock().insert(*get_id, chunk);
                    None
                } else {
                    let mut b = BytesMut::with_capacity(8 + chunk.len());
                    b.extend_from_slice(&get_id.to_le_bytes());
                    b.extend_from_slice(&chunk);
                    Some(b.freeze())
                }
            }
        }
    }
}
