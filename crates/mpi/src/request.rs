//! ADI3 request objects.
//!
//! "In the MPICH2 implementation, each communication is managed with a
//! request object … we added a new field to the Nemesis-specific portion of
//! the MPICH2 request which points to the corresponding NewMadeleine
//! request" (§3.1.1). `Slot::nmad_req` is that field; conversely the
//! NewMadeleine request carries the MPI request index as its cookie, so the
//! two can always find each other.

use bytes::Bytes;
use parking_lot::Mutex;

use crate::api::Status;

/// An MPI request handle, as returned by `MPI_Isend`/`MPI_Irecv`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Req(pub u32);

/// What kind of operation a request tracks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReqKind {
    Send,
    Recv,
    /// Receive posted with MPI_ANY_SOURCE (drives the §3.2 machinery and
    /// the 300 ns completion surcharge).
    RecvAnySource,
}

/// Where the request's traffic flows (decides which completion costs the
/// wait loop charges).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReqPath {
    Shm,
    Net,
    SelfLoop,
    /// Not yet known (ANY_SOURCE before matching).
    Unknown,
}

/// The NewMadeleine request a CH3 request is bound to, if any.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NmadBinding {
    None,
    Send(nmad::SendReqId),
    Recv(nmad::RecvReqId),
}

pub(crate) struct Slot {
    pub kind: ReqKind,
    pub done: bool,
    /// Completion observed (and costs charged) by a wait/test on the rank
    /// thread.
    pub charged: bool,
    pub data: Option<Bytes>,
    pub status: Option<Status>,
    pub path: ReqPath,
    /// The §3.1.1 pointer to the NewMadeleine request.
    pub nmad_req: NmadBinding,
    /// `Some(peer)` when the request completed *with an error* because
    /// `peer` was declared dead (the §2.2.1 no-cancel rule: requests are
    /// never silently dropped, they finish — possibly unsuccessfully).
    pub failed_peer: Option<usize>,
    /// `Some(epoch)` when the request completed *with an error* because
    /// its communication epoch was revoked. Distinguishes "the comm was
    /// torn down" from "the peer died" so callers can react differently
    /// (rebuild vs. exclude). May coexist with `failed_peer`.
    pub revoked_epoch: Option<u8>,
}

/// The per-process request table.
#[derive(Default)]
pub struct RequestTable {
    slots: Mutex<Vec<Slot>>,
}

impl RequestTable {
    pub fn new() -> RequestTable {
        RequestTable::default()
    }

    pub fn create(&self, kind: ReqKind, path: ReqPath) -> Req {
        let mut slots = self.slots.lock();
        let id = Req(slots.len() as u32);
        slots.push(Slot {
            kind,
            done: false,
            charged: false,
            data: None,
            status: None,
            path,
            nmad_req: NmadBinding::None,
            failed_peer: None,
            revoked_epoch: None,
        });
        id
    }

    pub fn bind_nmad(&self, req: Req, binding: NmadBinding) {
        self.slots.lock()[req.0 as usize].nmad_req = binding;
    }

    pub fn nmad_binding(&self, req: Req) -> NmadBinding {
        self.slots.lock()[req.0 as usize].nmad_req
    }

    pub fn set_path(&self, req: Req, path: ReqPath) {
        self.slots.lock()[req.0 as usize].path = path;
    }

    /// Mark a send complete.
    pub fn complete_send(&self, req: Req) {
        let mut slots = self.slots.lock();
        let s = &mut slots[req.0 as usize];
        debug_assert_eq!(s.kind, ReqKind::Send);
        debug_assert!(!s.done, "double send completion");
        s.done = true;
    }

    /// Mark a receive complete with its payload and envelope.
    pub fn complete_recv(&self, req: Req, data: Bytes, status: Status) {
        let mut slots = self.slots.lock();
        let s = &mut slots[req.0 as usize];
        debug_assert!(matches!(s.kind, ReqKind::Recv | ReqKind::RecvAnySource));
        debug_assert!(!s.done, "double recv completion");
        s.done = true;
        s.data = Some(data);
        s.status = Some(status);
    }

    /// Complete a send *with an error*: its destination was declared dead
    /// before the transfer could finish. The request is done (waiters
    /// unblock) but carries no status; `failed_peer` names the corpse.
    pub fn complete_send_failed(&self, req: Req, peer: usize) {
        let mut slots = self.slots.lock();
        let s = &mut slots[req.0 as usize];
        debug_assert_eq!(s.kind, ReqKind::Send);
        debug_assert!(!s.done, "double send completion");
        s.done = true;
        s.failed_peer = Some(peer);
    }

    /// Complete a receive *with an error*: its (specific) source was
    /// declared dead and the membership drain aborted the operation. No
    /// data, no status — just a terminal, queryable failure.
    pub fn complete_recv_failed(&self, req: Req, peer: usize) {
        let mut slots = self.slots.lock();
        let s = &mut slots[req.0 as usize];
        debug_assert!(matches!(s.kind, ReqKind::Recv | ReqKind::RecvAnySource));
        debug_assert!(!s.done, "double recv completion");
        s.done = true;
        s.failed_peer = Some(peer);
    }

    /// Complete a send *with an error* because epoch `epoch` was revoked
    /// (ULFM-style comm teardown). `peer` names the destination so the
    /// generic dead-peer plumbing still unblocks waiters; `revoked_epoch`
    /// records the real cause.
    pub fn complete_send_revoked(&self, req: Req, peer: usize, epoch: u8) {
        let mut slots = self.slots.lock();
        let s = &mut slots[req.0 as usize];
        debug_assert_eq!(s.kind, ReqKind::Send);
        debug_assert!(!s.done, "double send completion");
        s.done = true;
        s.failed_peer = Some(peer);
        s.revoked_epoch = Some(epoch);
    }

    /// Complete a receive *with an error* because its epoch was revoked.
    pub fn complete_recv_revoked(&self, req: Req, peer: usize, epoch: u8) {
        let mut slots = self.slots.lock();
        let s = &mut slots[req.0 as usize];
        debug_assert!(matches!(s.kind, ReqKind::Recv | ReqKind::RecvAnySource));
        debug_assert!(!s.done, "double recv completion");
        s.done = true;
        s.failed_peer = Some(peer);
        s.revoked_epoch = Some(epoch);
    }

    /// Did the request complete with a dead-peer error? `Some(peer)` after
    /// a failed completion; `None` while pending or after success.
    pub fn failed_peer(&self, req: Req) -> Option<usize> {
        self.slots.lock()[req.0 as usize].failed_peer
    }

    /// Did the request fail because its epoch was revoked? `Some(epoch)`
    /// after a revoked completion; `None` while pending, after success, or
    /// after a plain dead-peer failure.
    pub fn revoked_epoch(&self, req: Req) -> Option<u8> {
        self.slots.lock()[req.0 as usize].revoked_epoch
    }

    pub fn is_done(&self, req: Req) -> bool {
        self.slots.lock()[req.0 as usize].done
    }

    pub fn kind(&self, req: Req) -> ReqKind {
        self.slots.lock()[req.0 as usize].kind
    }

    pub fn path(&self, req: Req) -> ReqPath {
        self.slots.lock()[req.0 as usize].path
    }

    /// First observation of a completion by the rank thread: returns the
    /// payload/status exactly once (the caller charges completion costs).
    /// Returns `None` if not done or already claimed.
    pub fn claim(&self, req: Req) -> Option<(Option<Bytes>, Option<Status>)> {
        let mut slots = self.slots.lock();
        let s = &mut slots[req.0 as usize];
        if !s.done || s.charged {
            return None;
        }
        s.charged = true;
        Some((s.data.take(), s.status))
    }

    /// Status of a completed request (after claim the data is gone but the
    /// status remains).
    pub fn status(&self, req: Req) -> Option<Status> {
        self.slots.lock()[req.0 as usize].status
    }

    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status(src: usize, tag: u32, len: usize) -> Status {
        Status {
            source: src,
            tag,
            len,
        }
    }

    #[test]
    fn lifecycle_send() {
        let t = RequestTable::new();
        let r = t.create(ReqKind::Send, ReqPath::Net);
        assert!(!t.is_done(r));
        t.complete_send(r);
        assert!(t.is_done(r));
        let (data, st) = t.claim(r).expect("first claim succeeds");
        assert!(data.is_none() && st.is_none());
        assert!(t.claim(r).is_none(), "claim is once-only");
    }

    #[test]
    fn lifecycle_recv_keeps_status() {
        let t = RequestTable::new();
        let r = t.create(ReqKind::Recv, ReqPath::Shm);
        t.complete_recv(r, Bytes::from_static(b"xy"), status(3, 7, 2));
        let (data, st) = t.claim(r).unwrap();
        assert_eq!(&data.unwrap()[..], b"xy");
        assert_eq!(st.unwrap().source, 3);
        // Status stays queryable after the claim.
        assert_eq!(t.status(r).unwrap().tag, 7);
    }

    #[test]
    fn failed_completions_unblock_without_data_and_keep_the_peer() {
        let t = RequestTable::new();
        let s = t.create(ReqKind::Send, ReqPath::Net);
        let r = t.create(ReqKind::Recv, ReqPath::Net);
        assert_eq!(t.failed_peer(s), None);
        t.complete_send_failed(s, 7);
        t.complete_recv_failed(r, 7);
        assert!(t.is_done(s) && t.is_done(r));
        let (data, st) = t.claim(s).expect("failed send still claimable");
        assert!(data.is_none() && st.is_none());
        let (data, st) = t.claim(r).expect("failed recv still claimable");
        assert!(data.is_none() && st.is_none());
        assert_eq!(t.failed_peer(s), Some(7), "error survives the claim");
        assert_eq!(t.failed_peer(r), Some(7));
    }

    #[test]
    fn revoked_completions_carry_epoch_and_peer() {
        let t = RequestTable::new();
        let s = t.create(ReqKind::Send, ReqPath::Net);
        let r = t.create(ReqKind::Recv, ReqPath::Net);
        assert_eq!(t.revoked_epoch(s), None);
        t.complete_send_revoked(s, 4, 2);
        t.complete_recv_revoked(r, 4, 2);
        assert!(t.is_done(s) && t.is_done(r));
        // The generic dead-peer plumbing still sees a failure...
        assert_eq!(t.failed_peer(s), Some(4));
        assert_eq!(t.failed_peer(r), Some(4));
        // ...but the real cause is queryable, and survives the claim.
        let _ = t.claim(s).unwrap();
        assert_eq!(t.revoked_epoch(s), Some(2));
        assert_eq!(t.revoked_epoch(r), Some(2));
        // A plain dead-peer failure does NOT look revoked.
        let p = t.create(ReqKind::Send, ReqPath::Net);
        t.complete_send_failed(p, 9);
        assert_eq!(t.revoked_epoch(p), None);
    }

    #[test]
    fn nmad_binding_roundtrip() {
        let t = RequestTable::new();
        let r = t.create(ReqKind::Recv, ReqPath::Net);
        assert_eq!(t.nmad_binding(r), NmadBinding::None);
        t.bind_nmad(r, NmadBinding::Recv(nmad::RecvReqId(5)));
        assert_eq!(t.nmad_binding(r), NmadBinding::Recv(nmad::RecvReqId(5)));
    }

    #[test]
    fn anysource_path_updates_on_match() {
        let t = RequestTable::new();
        let r = t.create(ReqKind::RecvAnySource, ReqPath::Unknown);
        assert_eq!(t.path(r), ReqPath::Unknown);
        t.set_path(r, ReqPath::Net);
        assert_eq!(t.path(r), ReqPath::Net);
        assert_eq!(t.kind(r), ReqKind::RecvAnySource);
    }
}
