//! Stack assembly and the MPI job runner.
//!
//! [`StackConfig`] describes one MPI implementation variant (which
//! inter-node path, PIOMan or not, calibration constants);
//! [`run_mpi`] builds the simulated cluster — fabric, shared-memory
//! domains, NewMadeleine cores, PIOMan servers — wires everything together
//! the way §3 describes, spawns one rank thread per process, and runs the
//! program to completion.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use simnet::{
    Cluster, CopyMeter, CopySnapshot, Fabric, FabricOpts, FaultCounters, FaultPlan,
    NodeId, Placement, RailId, SimBuilder, SimOutcome, TopoMap,
};

use nemesis::{ShmDomain, ShmModel};
use nmad::{
    FlowConfig, MembershipConfig, NmConfig, NmCore, NmNet, NmWire, RetryConfig, StrategyKind,
};
use piom::{PiomConfig, PiomServer};

use crate::api::MpiHandle;
use crate::ch3::Ch3Engine;
use crate::costs::SoftwareCosts;
use crate::progress::{NetPath, ProcState};
use crate::transport::{
    Ch3Transport, Ch3Wire, FabricTransport, Inbox, NmadNetmodTransport, ShmTransport,
};
use crate::vc::VcTable;

/// Calibration of a network-tailored comparator stack.
#[derive(Clone, Debug)]
pub struct TailoredProfile {
    pub name: &'static str,
    /// CH3 eager/rendezvous boundary.
    pub eager_threshold: usize,
    /// Rendezvous payload pipelining chunk (None = single DATA packet).
    pub rdv_chunk: Option<usize>,
    /// ACK-throttled (depth-1) fragment pipeline — Open MPI 1.2-era openib
    /// behaviour, the source of its bandwidth dip above the eager limit.
    pub rdv_ack: bool,
    /// Fixed pipeline-startup cost charged before the first rendezvous
    /// fragment leaves (protocol switch + initial registration round).
    pub rdv_setup: simnet::SimDuration,
    /// Registration cache: `true` skips the dynamic registration cost on
    /// zero-copy transfers (MVAPICH2's advantage at large sizes, §4.1.1).
    pub reg_cache: bool,
    pub costs: SoftwareCosts,
    /// Which cluster rail this single-rail stack drives.
    pub rail: usize,
}

/// The inter-node path of a stack.
#[derive(Clone, Debug)]
pub enum InterNode {
    /// §3.1: CH3 bypasses Nemesis and calls NewMadeleine directly.
    NmadDirect {
        strategy: StrategyKind,
        /// Cluster-rail indices NewMadeleine may use (None = all).
        rails: Option<Vec<usize>>,
    },
    /// §2.1.3: NewMadeleine behind the plain network-module interface,
    /// CH3 protocols on top (nested handshakes).
    NmadNetmod {
        strategy: StrategyKind,
        rails: Option<Vec<usize>>,
    },
    /// A network-tailored comparator (see the `baselines` crate).
    Tailored(TailoredProfile),
}

/// One MPI implementation variant.
#[derive(Clone, Debug)]
pub struct StackConfig {
    pub name: String,
    pub inter: InterNode,
    /// `Some` enables PIOMan: centralized progression, semaphore waits,
    /// background overlap.
    pub pioman: Option<PiomConfig>,
    /// Software costs for the NewMadeleine paths (tailored stacks carry
    /// their own in the profile).
    pub costs: SoftwareCosts,
    pub shm_model: ShmModel,
    pub cells_per_rank: usize,
    /// NewMadeleine protocol thresholds.
    pub nm: NmConfig,
    /// Application compute-time multiplier. 1.0 for every stack except the
    /// Open MPI-like baseline, whose measured EP/LU lag in Fig. 8 is not
    /// explained by communication costs — the paper observes it without
    /// attributing a cause, and we reproduce it as a small compute-side
    /// inefficiency (documented in DESIGN.md §6).
    pub compute_factor: f64,
    /// Explicit seed for the fabric's per-port jitter streams (0 keeps the
    /// legacy, purely model-derived streams). Every scenario that relies on
    /// replayability should name its seed here.
    pub fabric_seed: u64,
    /// Fault plan installed on the NewMadeleine fabric (ignored by tailored
    /// stacks — their CH3 wire protocol has no retransmission layer).
    pub faults: Option<Arc<FaultPlan>>,
    /// Structured observability: message-lifecycle spans and metric
    /// histograms across every layer of the stack. Off by default — a
    /// disabled config costs one branch per instrumentation site and
    /// allocates nothing.
    pub obs: obs::ObsConfig,
}

impl StackConfig {
    /// The paper's stack: MPICH2 with the NewMadeleine bypass over all
    /// available rails, multirail strategy.
    pub fn mpich2_nmad(pioman: bool) -> StackConfig {
        StackConfig {
            name: if pioman {
                "MPICH2-NMad with PIOMan".into()
            } else {
                "MPICH2-NMad".into()
            },
            inter: InterNode::NmadDirect {
                strategy: StrategyKind::SplitBalanced,
                rails: None,
            },
            pioman: pioman.then(PiomConfig::default),
            costs: SoftwareCosts::mpich2_nmad(),
            shm_model: ShmModel::xeon(),
            cells_per_rank: 64,
            nm: NmConfig::default(),
            compute_factor: 1.0,
            fabric_seed: 0,
            faults: None,
            obs: obs::ObsConfig::default(),
        }
    }

    /// Same but restricted to a single cluster rail (the "IB only" / "MX
    /// only" curves of Figs. 4–6).
    pub fn mpich2_nmad_rail(rail: usize, pioman: bool) -> StackConfig {
        let mut cfg = Self::mpich2_nmad(pioman);
        cfg.inter = InterNode::NmadDirect {
            strategy: StrategyKind::SplitBalanced,
            rails: Some(vec![rail]),
        };
        cfg
    }

    /// The legacy integration: NewMadeleine as a plain Nemesis network
    /// module, CH3 protocols (and their nested rendezvous) on top.
    pub fn mpich2_nmad_netmod(rail: usize) -> StackConfig {
        StackConfig {
            name: "MPICH2-NMad (netmod, nested handshake)".into(),
            inter: InterNode::NmadNetmod {
                strategy: StrategyKind::Default,
                rails: Some(vec![rail]),
            },
            pioman: None,
            costs: SoftwareCosts::nmad_netmod(),
            shm_model: ShmModel::xeon(),
            cells_per_rank: 64,
            nm: NmConfig::default(),
            compute_factor: 1.0,
            fabric_seed: 0,
            faults: None,
            obs: obs::ObsConfig::default(),
        }
    }

    /// Name the fabric seed explicitly (jitter streams + replay identity).
    pub fn with_fabric_seed(mut self, seed: u64) -> StackConfig {
        self.fabric_seed = seed;
        self
    }

    /// Install a fault plan. Seeds the fabric with the plan's seed and —
    /// if the plan can lose or duplicate packets, or kill whole nodes —
    /// turns on the transport retry layer, without which drops are
    /// unsurvivable. A plan with node-level faults (crash/hang/join
    /// windows) additionally arms the membership supervisor: node death is
    /// only survivable if somebody promotes the silence into a verdict.
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> StackConfig {
        self.fabric_seed = plan.seed();
        if (plan.lossy() || plan.has_node_faults()) && self.nm.retry.is_none() {
            self.nm.retry = Some(RetryConfig::default());
        }
        if plan.has_node_faults() && self.nm.membership.is_none() {
            self.nm.membership = Some(MembershipConfig::default());
        }
        self.faults = Some(plan);
        self
    }

    /// Arm (or tune) the elastic-membership supervisor explicitly. Implies
    /// the retry layer — verdicts are fed by retransmission timeouts.
    pub fn with_membership(mut self, m: MembershipConfig) -> StackConfig {
        if self.nm.retry.is_none() {
            self.nm.retry = Some(RetryConfig::default());
        }
        self.nm.membership = Some(m);
        self
    }

    /// Arm credit-based eager flow control on the NewMadeleine paths
    /// (overload protection; ignored by tailored stacks, whose CH3 wire
    /// protocol has no credit layer).
    pub fn with_flow(mut self, flow: FlowConfig) -> StackConfig {
        self.nm.flow = Some(flow);
        self
    }

    /// Arm structured observability: per-message lifecycle spans and/or
    /// metric histograms, surfaced on [`RunOutcome::obs`].
    pub fn with_obs(mut self, obs: obs::ObsConfig) -> StackConfig {
        self.obs = obs;
        self
    }

    /// Does this stack bypass CH3 for inter-node traffic?
    pub fn bypass(&self) -> bool {
        matches!(self.inter, InterNode::NmadDirect { .. })
    }
}

/// Result of a completed MPI job.
#[derive(Debug)]
pub struct RunOutcome {
    pub sim: SimOutcome,
    /// Per-rank NewMadeleine statistics (empty for tailored stacks).
    pub nm_stats: Vec<nmad::core::NmStats>,
    /// Injected-fault counters (when the stack carried a fault plan).
    pub fault_counters: Option<FaultCounters>,
    /// Per-rail `(messages, bytes)` seen by the NewMadeleine fabric —
    /// replay-identity fingerprint for the determinism tests.
    pub rail_counters: Vec<(u64, u64)>,
    /// Total PIOMan watchdog stall re-kicks across all ranks.
    pub piom_rekicks: u64,
    /// Job-wide copy accounting: every payload memcpy/allocation/share from
    /// MPI ingress down to the NIC, across all ranks (the Fig. 2 copy
    /// breakdown). Deterministic for a fixed seed.
    pub copy: CopySnapshot,
    /// Structured observability report: the job-wide span stream and
    /// metric registry (None unless the stack armed `ObsConfig`).
    pub obs: Option<obs::Report>,
}

/// Job-wide flow-control totals, summed across every rank's NewMadeleine
/// core (see [`RunOutcome::flow_totals`]). All zero when `NmConfig.flow`
/// is `None` — except `peak_unex_bytes`, which is tracked unconditionally
/// so an *unarmed* overload run can still report how far past a would-be
/// cap it went.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowTotals {
    /// Eager sends admitted by consuming a credit.
    pub eager_admitted: u64,
    /// Times a sender found an empty credit pool.
    pub credit_stalls: u64,
    /// Sends that degraded to the rendezvous path for lack of credits.
    pub fallback_sends: u64,
    /// Credits returned to senders (piggybacked or standalone).
    pub credits_returned: u64,
    /// Credit returns withheld by the high-water throttle.
    pub credits_withheld: u64,
    /// Largest per-rank unexpected-eager-byte backlog seen anywhere in the
    /// job (a max across ranks, not a sum — the cap is per receiver).
    pub peak_unex_bytes: u64,
}

/// Job-wide elastic-membership totals, summed across every rank's
/// NewMadeleine core (see [`RunOutcome::membership_totals`]). All zero when
/// `NmConfig.membership` is `None`. Part of the replay fingerprint: two
/// runs under one seed must agree on every field.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MembershipTotals {
    /// Liveness state-machine transitions (Up→Suspect, Suspect→Up, →Dead).
    pub transitions: u64,
    /// Dead verdicts issued (each peer counted once per observer).
    pub dead_peers: u64,
    /// In-flight sends aborted by the drain protocol.
    pub aborted_sends: u64,
    /// Posted receives failed by the drain protocol.
    pub aborted_recvs: u64,
    /// Per-peer protocol map entries reclaimed by drains.
    pub drained_entries: u64,
    /// Frames from already-dead peers dropped without reviving state.
    pub stray_frames: u64,
    /// Eager credits released back when their holder died.
    pub credits_released: u64,
    /// Collective frames dropped because their epoch predated the
    /// committed one, their epoch was revoked, or their instance was
    /// retired (stale cross-epoch traffic, counted not resurrected).
    pub stale_epoch: u64,
    /// Epoch revocations committed (first-time `revoke_epoch` calls,
    /// local or learned from a peer's poison frame).
    pub revoked_epochs: u64,
    /// In-flight operations quiesced with counted `Revoked` completions.
    pub revoked_ops: u64,
}

impl RunOutcome {
    /// Elastic-membership totals across all ranks (see
    /// [`MembershipTotals`]).
    pub fn membership_totals(&self) -> MembershipTotals {
        self.nm_stats
            .iter()
            .fold(MembershipTotals::default(), |acc, s| MembershipTotals {
                transitions: acc.transitions + s.membership_transitions,
                dead_peers: acc.dead_peers + s.membership_dead_peers,
                aborted_sends: acc.aborted_sends + s.membership_aborted_sends,
                aborted_recvs: acc.aborted_recvs + s.membership_aborted_recvs,
                drained_entries: acc.drained_entries + s.membership_drained_entries,
                stray_frames: acc.stray_frames + s.membership_stray_frames,
                credits_released: acc.credits_released + s.membership_credits_released,
                stale_epoch: acc.stale_epoch + s.membership_stale_epoch,
                revoked_epochs: acc.revoked_epochs + s.revoked_epochs,
                revoked_ops: acc.revoked_ops + s.revoked_ops,
            })
    }

    /// Flow-control totals across all ranks (see [`FlowTotals`]).
    pub fn flow_totals(&self) -> FlowTotals {
        self.nm_stats.iter().fold(FlowTotals::default(), |acc, s| {
            FlowTotals {
                eager_admitted: acc.eager_admitted + s.fc_eager_admitted,
                credit_stalls: acc.credit_stalls + s.fc_credit_stalls,
                fallback_sends: acc.fallback_sends + s.fc_fallback_sends,
                credits_returned: acc.credits_returned + s.fc_credits_returned,
                credits_withheld: acc.credits_withheld + s.fc_credits_withheld,
                peak_unex_bytes: acc.peak_unex_bytes.max(s.fc_peak_unex_bytes),
            }
        })
    }

    /// Failover totals across all ranks: `(rail state transitions,
    /// rerouted payload bytes, degraded rail-nanoseconds)`. All zero on a
    /// healthy run — the degraded-mode counters only move when the
    /// rail-health machine demotes a rail.
    pub fn failover_totals(&self) -> (u64, u64, u64) {
        self.nm_stats.iter().fold((0, 0, 0), |acc, s| {
            (
                acc.0 + s.rail_transitions,
                acc.1 + s.rerouted_bytes,
                acc.2 + s.degraded_nanos,
            )
        })
    }

    /// Probe totals across all ranks: `(probes sent, probe acks)`.
    pub fn probe_totals(&self) -> (u64, u64) {
        self.nm_stats
            .iter()
            .fold((0, 0), |acc, s| (acc.0 + s.probes_sent, acc.1 + s.probe_acks))
    }

    /// Per-phase latency breakdown reconstructed from the span stream
    /// (None unless the run armed span recording).
    pub fn phase_breakdown(&self) -> Option<obs::PhaseBreakdown> {
        self.obs.as_ref().map(|r| r.breakdown())
    }
}

/// Run `program` on `nranks` simulated processes over `cluster` with the
/// given placement and stack.
pub fn run_mpi(
    cluster: &Cluster,
    placement: &Placement,
    cfg: &StackConfig,
    nranks: usize,
    program: Arc<dyn Fn(MpiHandle) + Send + Sync>,
) -> RunOutcome {
    assert_eq!(placement.nranks(), nranks, "placement/nranks mismatch");
    let mut builder = SimBuilder::new();
    // Debug escape hatch: bound the event count so a livelocked job fails
    // loudly instead of spinning (`MPI_SIM_MAX_EVENTS=...`).
    if let Ok(limit) = std::env::var("MPI_SIM_MAX_EVENTS") {
        if let Ok(n) = limit.parse::<u64>() {
            builder = builder.max_events(n);
        }
    }
    // One job-wide span/metric recorder (None when observability is off:
    // every instrumentation site below degrades to a single branch).
    let recorder: Option<Arc<obs::Recorder>> =
        cfg.obs.enabled().then(|| obs::Recorder::new(cfg.obs));
    if let Some(rec) = &recorder {
        builder = builder.with_recorder(rec);
        // Conformance mode: every recorded span event is replayed through
        // the protocol transition table as it happens (no-op unless
        // `cfg.obs.conformance` is armed).
        nmad::protocol::conformance::install(rec, cfg.nm.retry.is_some());
    }
    let mut sim = builder.build();
    let sched = sim.scheduler();
    // One job-wide copy meter: MPI ingress, Nemesis cells, NewMadeleine and
    // the CH3 engines all charge the same tally (surfaced in `RunOutcome`).
    let meter = CopyMeter::new();
    // Job-wide topology indices, built once and shared by every rank's VC
    // table and the hierarchical collectives. All per-rank locality queries
    // below are O(1) against this map (the per-rank `ranks_on` scans they
    // replace were O(ranks²) job-wide).
    let topo: Arc<TopoMap> = Arc::new(TopoMap::new(placement));
    let rank_to_node: Arc<Vec<NodeId>> =
        Arc::new((0..nranks).map(|r| placement.node_of(r)).collect());

    // --- Shared-memory domains, one per populated node -----------------
    let mut domains: Vec<Option<Arc<ShmDomain>>> = vec![None; cluster.nodes];
    for (node, domain) in domains.iter_mut().enumerate() {
        let ranks = topo.ranks_on(NodeId(node));
        if ranks.is_empty() {
            continue;
        }
        *domain = Some(ShmDomain::with_instruments(
            ranks,
            cfg.cells_per_rank,
            cfg.shm_model,
            Arc::clone(&meter),
            recorder.as_ref(),
        ));
    }
    // --- Inter-node fabric + per-rank path ------------------------------
    enum NetSetup {
        Direct(Vec<Arc<NmCore>>),
        Netmod(Vec<Arc<NmCore>>),
        Tailored(Vec<Arc<Inbox>>, Arc<Fabric<Ch3Wire>>, TailoredProfile),
        None,
    }
    let any_remote = topo.multi_node();
    let mut nm_fabric: Option<Arc<Fabric<NmWire>>> = None;
    // The fabric takes ownership of its NIC models, so the cluster's rail
    // descriptions must be cloned out of the borrowed `Cluster`.
    let rail_models = |subset: &Option<Vec<usize>>| -> Vec<simnet::NicModel> {
        match subset {
            Some(idx) => idx.iter().map(|&i| cluster.rails[i].clone()).collect(),
            None => cluster.rails.clone(),
        }
    };
    let net_setup = if !any_remote {
        NetSetup::None
    } else {
        match &cfg.inter {
            InterNode::NmadDirect { strategy, rails }
            | InterNode::NmadNetmod { strategy, rails } => {
                let models = rail_models(rails);
                if let Some(plan) = &cfg.faults {
                    assert!(
                        !(plan.lossy() || plan.has_node_faults()) || cfg.nm.retry.is_some(),
                        "a lossy or node-fault plan needs NmConfig.retry (see StackConfig::with_faults)"
                    );
                    assert!(
                        !plan.has_node_faults() || cfg.nm.membership.is_some(),
                        "a node-fault plan needs NmConfig.membership (see StackConfig::with_faults)"
                    );
                }
                let fabric: Arc<Fabric<NmWire>> = Fabric::with_opts(
                    cluster.nodes,
                    models,
                    FabricOpts {
                        seed: cfg.fabric_seed,
                        fault: cfg.faults.as_ref().map(Arc::clone),
                        recorder: recorder.as_ref().map(Arc::clone),
                    },
                );
                let rail_ids: Vec<RailId> =
                    (0..fabric.num_rails()).map(RailId).collect();
                let mut nm_cfg = cfg.nm;
                nm_cfg.strategy = *strategy;
                let cores: Vec<Arc<NmCore>> = (0..nranks)
                    .map(|r| {
                        NmCore::with_instruments(
                            nm_cfg,
                            r,
                            NmNet {
                                fabric: Arc::clone(&fabric),
                                node: placement.node_of(r),
                                // Each core owns its rail list (Copy ids).
                                rails: rail_ids.clone(),
                                rank_to_node: Arc::clone(&rank_to_node),
                            },
                            Arc::clone(&meter),
                            recorder.as_ref(),
                        )
                    })
                    .collect();
                // Node sinks demultiplex on the destination rank (hashed —
                // a linear probe here is O(node ranks) per delivery).
                for node in 0..cluster.nodes {
                    let node_cores: HashMap<usize, Arc<NmCore>> = topo
                        .ranks_on(NodeId(node))
                        .iter()
                        .map(|&r| (r, Arc::clone(&cores[r])))
                        .collect();
                    if node_cores.is_empty() {
                        continue;
                    }
                    fabric.set_sink(
                        NodeId(node),
                        Box::new(move |s, d| {
                            let dst = d.msg.dst_rank;
                            let core = node_cores
                                .get(&dst)
                                .unwrap_or_else(|| panic!("no core for rank {dst}"));
                            // Cores index rails identically to the fabric
                            // (NmNet.rails is the full 0..n id list), so the
                            // fabric rail id doubles as the local index.
                            core.accept_delivery(s, d.msg, d.rail.0, d.corrupted);
                        }),
                    );
                }
                nm_fabric = Some(Arc::clone(&fabric));
                if matches!(cfg.inter, InterNode::NmadDirect { .. }) {
                    NetSetup::Direct(cores)
                } else {
                    NetSetup::Netmod(cores)
                }
            }
            InterNode::Tailored(profile) => {
                // The fabric owns its NIC model; cloned out of the
                // borrowed `Cluster` description.
                let models = vec![cluster.rails[profile.rail].clone()];
                let fabric: Arc<Fabric<Ch3Wire>> = Fabric::new(cluster.nodes, models);
                let inboxes: Vec<Arc<Inbox>> = (0..nranks).map(|_| Inbox::new()).collect();
                for node in 0..cluster.nodes {
                    let node_boxes: HashMap<usize, Arc<Inbox>> = topo
                        .ranks_on(NodeId(node))
                        .iter()
                        .map(|&r| (r, Arc::clone(&inboxes[r])))
                        .collect();
                    if node_boxes.is_empty() {
                        continue;
                    }
                    fabric.set_sink(
                        NodeId(node),
                        Box::new(move |s, d| {
                            let dst = d.msg.dst;
                            let inbox = node_boxes
                                .get(&dst)
                                .unwrap_or_else(|| panic!("no inbox for rank {dst}"));
                            inbox.push(s, d.msg.src, d.msg.pkt);
                        }),
                    );
                }
                // The profile is cloned out of the borrowed config: the
                // setup enum outlives the `cfg` borrow inside the loop.
                NetSetup::Tailored(inboxes, fabric, profile.clone())
            }
        }
    };
    // --- Per-rank process state -----------------------------------------
    let mut states: Vec<Arc<ProcState>> = Vec::with_capacity(nranks);
    let mut piom_servers: Vec<Option<Arc<PiomServer>>> = Vec::with_capacity(nranks);
    let mut cores_for_stats: Vec<Arc<NmCore>> = Vec::new();
    for r in 0..nranks {
        let vcs = VcTable::new(r, Arc::clone(&topo), cfg.bypass());
        let has_remote = vcs.has_remote();
        let (net, engine, costs, net_eager) = match &net_setup {
            NetSetup::Direct(cores) => {
                if cores_for_stats.len() <= r {
                    cores_for_stats.push(Arc::clone(&cores[r]));
                }
                (
                    if has_remote {
                        NetPath::Direct(Arc::clone(&cores[r]))
                    } else {
                        NetPath::None
                    },
                    Ch3Engine::new(r, cfg.nm.eager_threshold, None)
                        .with_copy_meter(&meter)
                        .with_recorder(obs::RankRec::new(recorder.as_ref(), r as u32)),
                    cfg.costs,
                    cfg.nm.eager_threshold,
                )
            }
            NetSetup::Netmod(cores) => {
                if cores_for_stats.len() <= r {
                    cores_for_stats.push(Arc::clone(&cores[r]));
                }
                let net = if has_remote {
                    let t = NmadNetmodTransport::new(
                        Arc::clone(&cores[r]),
                        vcs.remote_peers(),
                    );
                    NetPath::Ch3(Arc::new(t) as Arc<dyn Ch3Transport>)
                } else {
                    NetPath::None
                };
                (
                    net,
                    Ch3Engine::new(r, cfg.nm.eager_threshold, None)
                        .with_copy_meter(&meter)
                        .with_recorder(obs::RankRec::new(recorder.as_ref(), r as u32)),
                    cfg.costs,
                    cfg.nm.eager_threshold,
                )
            }
            NetSetup::Tailored(inboxes, fabric, profile) => {
                let net = if has_remote {
                    let t = FabricTransport::with_rdv_setup(
                        Arc::clone(fabric),
                        r,
                        placement.node_of(r),
                        RailId(0),
                        Arc::clone(&rank_to_node),
                        Arc::clone(&inboxes[r]),
                        profile.reg_cache,
                        profile.rdv_setup,
                    );
                    t.set_copy_meter(&meter);
                    NetPath::Ch3(Arc::new(t) as Arc<dyn Ch3Transport>)
                } else {
                    NetPath::None
                };
                (
                    net,
                    Ch3Engine::with_ack(
                        r,
                        profile.eager_threshold,
                        profile.rdv_chunk,
                        profile.rdv_ack,
                    )
                    .with_copy_meter(&meter)
                    .with_recorder(obs::RankRec::new(recorder.as_ref(), r as u32)),
                    profile.costs,
                    profile.eager_threshold,
                )
            }
            NetSetup::None => (
                NetPath::None,
                Ch3Engine::new(r, cfg.nm.eager_threshold, None)
                        .with_copy_meter(&meter)
                        .with_recorder(obs::RankRec::new(recorder.as_ref(), r as u32)),
                cfg.costs,
                cfg.nm.eager_threshold,
            ),
        };
        // Shared-memory transport (only when the node hosts >1 rank).
        let node = topo.node_of(r);
        let colocated = topo.node_ranks(r).len() > 1;
        let (shm, shm_model) = if colocated {
            let domain = Arc::clone(domains[node.0].as_ref().unwrap());
            let ti = Arc::clone(&topo);
            let local_of: Arc<dyn Fn(usize) -> usize + Send + Sync> =
                Arc::new(move |g| ti.local_index(g));
            let t = ShmTransport::new(domain, topo.local_index(r), local_of);
            (
                Some(Arc::new(t) as Arc<dyn Ch3Transport>),
                Some(cfg.shm_model),
            )
        } else {
            (None, Some(cfg.shm_model))
        };
        let piom_server = cfg.pioman.map(PiomServer::new);
        if let Some(server) = &piom_server {
            server.set_recorder(obs::RankRec::new(recorder.as_ref(), r as u32));
        }
        let state = ProcState::new(
            r,
            nranks,
            vcs,
            engine,
            shm,
            shm_model,
            net,
            net_eager,
            costs,
            Arc::clone(&meter),
            obs::RankRec::new(recorder.as_ref(), r as u32),
            piom_server.as_ref().map(Arc::clone),
        );
        // PIOMan wiring (part 1): the progress cycle becomes an ltask and
        // the shared-memory side kicks this rank's server on deliveries
        // (§3.3.1, the "global polling authority"). Network hooks are
        // wired in a second pass, per node.
        if let Some(server) = &piom_server {
            let st = Arc::clone(&state);
            server.register_fn(
                &format!("mpi-progress-{r}"),
                Arc::new(move |s| st.progress_cycle(s)),
            );
            if let Some(t) = &state.shm {
                let sv = Arc::clone(server);
                t.set_event_hook(Arc::new(move |s| sv.kick_shm(s)));
            }
            server.start(&sched);
        }
        piom_servers.push(piom_server);
        states.push(state);
    }

    // PIOMan wiring (part 2): a NIC event must wake EVERY co-located
    // rank's progress engine, not just the rank the event belongs to —
    // ranks on one node share the NIC, so one rank's send-completion is
    // another rank's "the rail is idle now, commit your window" signal.
    if cfg.pioman.is_some() {
        for (r, state) in states.iter().enumerate() {
            let node_servers: Vec<Arc<PiomServer>> = topo
                .node_ranks(r)
                .iter()
                .filter_map(|&peer| piom_servers[peer].as_ref().map(Arc::clone))
                .collect();
            let hook: Arc<dyn Fn(&simnet::Scheduler) + Send + Sync> =
                Arc::new(move |s| {
                    for sv in &node_servers {
                        sv.kick_net(s);
                    }
                });
            match &state.net {
                NetPath::Direct(core) => core.set_event_hook(hook),
                NetPath::Ch3(t) => t.set_event_hook(hook),
                NetPath::None => {}
            }
        }
    }

    // Retry transport + PIOMan: kicks are event-driven, and under fault
    // injection the event chain itself can die with a lost packet. The
    // watchdog re-runs stalled ltasks so the retransmission sweeps keep
    // running (the engine exits once every rank finished, so a perpetual
    // tick cannot hang the job).
    if let Some(rc) = cfg.nm.retry {
        if cfg.pioman.is_some() {
            for server in piom_servers.iter().flatten() {
                server.enable_watchdog(&sched, rc.timeout);
            }
        }
    }
    // --- Rank threads ----------------------------------------------------
    for (r, state) in states.iter().enumerate() {
        let program = Arc::clone(&program);
        let state = Arc::clone(state);
        sim.spawn_rank(format!("rank{r}"), move |ctx| {
            program(MpiHandle::new(ctx, state));
        });
    }
    let outcome = sim.run().unwrap_or_else(|e| {
        // Dump per-rank protocol state so deadlocks/livelocks are
        // diagnosable from the panic output.
        eprintln!("=== MPI job '{}' failed: {e} ===", cfg.name);
        for (r, st) in states.iter().enumerate() {
            let (posted, unexpected) =
                (st.engine.queues.posted_len(), st.engine.queues.unexpected_len());
            let (unex_bytes, unex_hwm) = (
                st.engine.queues.unexpected_bytes(),
                st.engine.queues.unexpected_hwm(),
            );
            let rdv = st.engine.rdv_in_flight();
            let proto_errs = st.engine.protocol_errors();
            let nm = match &st.net {
                NetPath::Direct(core) => format!(
                    "nm: posted={} unexpected={} quiescent={} {} {} stats={:?}",
                    core.posted_recvs(),
                    core.unexpected_msgs(),
                    core.quiescent(),
                    core.health_summary()
                        .unwrap_or_else(|| "failover[off: no retry layer]".into()),
                    core.flow_summary()
                        .unwrap_or_else(|| "flow[off: no credit layer]".into()),
                    core.stats()
                ),
                NetPath::Ch3(t) => format!("ch3-net {}", t.debug_state()),
                NetPath::None => "no-net".into(),
            };
            eprintln!(
                "  rank{r}: ch3 posted={posted} unexpected={unexpected} \
                 unex_bytes={unex_bytes}B (hwm {unex_hwm}B) rdv_in_flight={rdv} \
                 protocol_errors={proto_errs}; {nm}"
            );
        }
        panic!("MPI job '{}' failed: {e}", cfg.name);
    });
    // Conformance mode: a trace that stepped outside the protocol table is
    // a failure of the run, not a statistic to squint at.
    if let Some(rec) = &recorder {
        let violations = rec.violations();
        assert!(
            violations.is_empty(),
            "MPI job '{}': {} protocol-conformance violation(s):\n  {}",
            cfg.name,
            violations.len(),
            violations.join("\n  ")
        );
    }
    RunOutcome {
        sim: outcome,
        nm_stats: cores_for_stats.iter().map(|c| c.stats()).collect(),
        fault_counters: cfg.faults.as_ref().map(|p| p.counters()),
        rail_counters: nm_fabric
            .as_ref()
            .map(|f| f.rail_counters())
            .unwrap_or_default(),
        piom_rekicks: piom_servers
            .iter()
            .flatten()
            .map(|s| s.rekicks())
            .sum(),
        copy: meter.snapshot(),
        obs: recorder.as_ref().map(|r| r.report()),
    }
}

/// Convenience: run and collect a value from each rank.
pub fn run_mpi_collect<T: Send + 'static>(
    cluster: &Cluster,
    placement: &Placement,
    cfg: &StackConfig,
    nranks: usize,
    program: impl Fn(&MpiHandle) -> T + Send + Sync + 'static,
) -> (RunOutcome, Vec<T>) {
    let results: Arc<Mutex<Vec<Option<T>>>> =
        Arc::new(Mutex::new((0..nranks).map(|_| None).collect()));
    let r2 = Arc::clone(&results);
    let outcome = run_mpi(
        cluster,
        placement,
        cfg,
        nranks,
        Arc::new(move |mpi: MpiHandle| {
            let rank = mpi.rank();
            let v = program(&mpi);
            r2.lock()[rank] = Some(v);
        }),
    );
    let collected = Arc::try_unwrap(results)
        .unwrap_or_else(|_| panic!("results still shared"))
        .into_inner()
        .into_iter()
        .map(|v| v.expect("rank produced no result"))
        .collect();
    (outcome, collected)
}
