//! The real-thread hot path: producers → per-VC Nemesis queues → sharded
//! matcher, on actual OS threads.
//!
//! Everything else in this crate drives the stack from the simulator's
//! logically-single-threaded token protocol. This module composes the same
//! lock-free building blocks into a stack that runs under *real*
//! concurrency:
//!
//! * **Producers** (application threads) each own a private window of
//!   Nemesis cells. Per message they do the real sender-side work — fill
//!   the payload, seal it with the end-to-end [`NmWire`] CRC — then push
//!   the cell onto their virtual connection's [`NemQueue`] (multi-producer
//!   lock-free enqueue, model-checked in `tests/loom_queue.rs`).
//! * **Per-VC consumers** (progress threads) drain their queue — each
//!   queue has exactly one consumer, the Nemesis contract — verify the
//!   CRC, and run tag matching through the [`ShardedMatchEngine`]: even
//!   sequence numbers exercise the posted-first path, odd ones the
//!   unexpected-first path plus the ANY_SOURCE ticket arbitration
//!   (`probe_tag`). Cells are recycled to the owning producer's free queue,
//!   which is what bounds the in-flight window.
//! * **Eager flow control** runs through the shared [`CreditBank`]: a
//!   producer spins (yielding) until its gate has a credit; the consumer
//!   returns the credit at delivery. Credit conservation is checked after
//!   every run.
//! * **Rendezvous** models the two-phase protocol: the producer parks the
//!   payload in a shared rendezvous store and enqueues a small RTS cell;
//!   the consumer claims the payload directly (the CTS/DATA round-trip
//!   collapses to a handoff through the store, sealed by the DATA packet's
//!   CRC).
//! * **Statistics** go to a shared contended-write-free [`StatsCells`];
//!   the merged snapshot must equal a single-threaded oracle run
//!   ([`run_inline`]) executing the identical per-message logic.
//!
//! Latency is sampled per message (enqueue-to-delivery, monotonic clock)
//! and reported as exact percentiles — the numbers behind `BENCH_10.json`
//! and the CI perf gate.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use nemesis::cell::{CellPool, MsgKind};
use nemesis::queue::NemQueue;
use nmad::credit::CreditBank;
use nmad::matching::Unexpected;
use nmad::sharded::ShardedMatchEngine;
use nmad::stats::{stat, StatsCells};
use nmad::{GateId, NmStats, NmWire, RecvReqId, WirePayload};
use parking_lot::Mutex;
use piom::WorkerTeam;
use simnet::NmBuf;

/// CH3 packet type carried in the cell header: a whole eager message.
const PKT_EAGER: u32 = 1;
/// CH3 packet type carried in the cell header: a rendezvous RTS.
const PKT_RTS: u32 = 2;

/// Shape of a threaded run.
#[derive(Clone, Copy, Debug)]
pub struct ThreadedConfig {
    /// Application (sender) threads. Producer `p` is pinned to VC
    /// `p % vcs`, so all of a producer's traffic crosses one queue and
    /// per-sender FIFO is a global property.
    pub producers: usize,
    /// Virtual connections: one lock-free queue + one consumer thread each.
    pub vcs: usize,
    /// Cells in each producer's private window (its in-flight bound).
    pub window: usize,
    /// Messages each producer injects.
    pub msgs_per_producer: u64,
    /// Payload bytes per eager message (also the rendezvous payload size).
    pub payload_bytes: usize,
    /// Every `rdv_every`-th message goes rendezvous (0 = all eager).
    pub rdv_every: u64,
    /// Per-gate eager credits (0 = flow control off).
    pub eager_credits: u32,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            producers: 4,
            vcs: 2,
            window: 32,
            msgs_per_producer: 1_000,
            payload_bytes: 256,
            rdv_every: 8,
            eager_credits: 16,
        }
    }
}

impl ThreadedConfig {
    /// Producer `p`'s per-message tag (one flow per producer, so the
    /// ANY_SOURCE probe has a unique answer to get right).
    fn tag_of(&self, p: usize) -> u64 {
        1_000 + p as u64
    }

    /// The consumer rank owning VC `c` (consumers are ranked after
    /// producers, like a node's dedicated progress cores).
    fn consumer_rank(&self, c: usize) -> usize {
        self.producers + c
    }

    /// Messages VC `c` will deliver.
    fn expected_on_vc(&self, c: usize) -> u64 {
        let pinned = (0..self.producers).filter(|p| p % self.vcs == c).count() as u64;
        pinned * self.msgs_per_producer
    }
}

/// Everything the producer and consumer threads share.
struct Shared {
    cfg: ThreadedConfig,
    pool: Arc<CellPool>,
    /// One multi-producer queue per VC; VC `c`'s consumer is its single
    /// dequeuer.
    vc_queues: Vec<NemQueue>,
    /// One free-cell queue per producer; consumers enqueue recycled cells,
    /// the owning producer is the single dequeuer.
    free_queues: Vec<NemQueue>,
    credits: Arc<CreditBank>,
    matching: ShardedMatchEngine,
    stats: StatsCells,
    /// Rendezvous payload store: rdv_id → parked payload. Touched twice
    /// per rendezvous (park, claim), never on the eager path.
    rdv_store: Mutex<HashMap<u64, NmBuf>>,
    base: Instant,
}

impl Shared {
    fn new(cfg: ThreadedConfig) -> Shared {
        assert!(cfg.producers > 0 && cfg.vcs > 0 && cfg.window > 0);
        let (pool, handles) = CellPool::new(cfg.producers, cfg.window);
        let free_queues: Vec<NemQueue> = (0..cfg.producers).map(|_| NemQueue::new()).collect();
        for (p, hs) in handles.into_iter().enumerate() {
            for h in hs {
                free_queues[p].enqueue(h);
            }
        }
        let credits = Arc::new(CreditBank::new(cfg.eager_credits));
        if cfg.eager_credits > 0 {
            // Materialize every gate's pool up front so conservation can
            // be audited even for gates that never stall.
            for p in 0..cfg.producers {
                let _ = credits.pool(p);
            }
        }
        Shared {
            cfg,
            pool,
            vc_queues: (0..cfg.vcs).map(|_| NemQueue::new()).collect(),
            free_queues,
            credits,
            matching: ShardedMatchEngine::new(),
            stats: StatsCells::new(),
            rdv_store: Mutex::new(HashMap::new()),
            base: Instant::now(),
        }
    }

    fn now_ns(&self) -> u64 {
        self.base.elapsed().as_nanos() as u64
    }

    /// Producer `p` injects message `m`: claim a window cell, do the real
    /// sender-side work, enqueue on the pinned VC.
    fn produce_one(&self, p: usize, m: u64) {
        let cfg = &self.cfg;
        let vc = p % cfg.vcs;
        let dst = cfg.consumer_rank(vc);
        let tag = cfg.tag_of(p);
        let rdv = cfg.rdv_every > 0 && (m + 1).is_multiple_of(cfg.rdv_every);

        // Window backpressure: wait for one of our cells to come back.
        let mut cell = loop {
            match self.free_queues[p].dequeue(&self.pool) {
                Some(h) => break h,
                None => std::thread::yield_now(),
            }
        };

        // Deterministic payload: a function of (p, m) only, so the oracle
        // run produces byte-identical packets.
        let fill = (p as u8).wrapping_mul(31).wrapping_add(m as u8);
        let payload = NmBuf::from(vec![fill; cfg.payload_bytes]);

        cell.header.src_rank = p;
        cell.header.dst_rank = dst;
        cell.header.tag = tag;
        cell.header.seq = m;
        cell.header.total_len = cfg.payload_bytes;
        cell.kind = MsgKind::Only;

        if rdv {
            // Two-phase: park the payload, seal the DATA packet's CRC into
            // the header, send a small RTS. The queue's release/acquire
            // ordering makes the parked payload visible to the consumer.
            let rdv_id = ((p as u64) << 32) | m;
            let data_wire = NmWire::new(
                p,
                dst,
                WirePayload::Data {
                    rdv_id,
                    offset: 0,
                    // Ownership note: `share()` is a metered refcount bump,
                    // not a copy — the parked buffer and the CRC input are
                    // the same bytes.
                    data: payload.share(),
                },
            );
            self.rdv_store.lock().insert(rdv_id, payload);
            cell.header.packet_type = PKT_RTS;
            cell.header.aux = [self.now_ns(), data_wire.crc];
            cell.fill(&[]);
            self.stats.add(stat::rdv_sends, 1);
        } else {
            // Eager admission: one credit per message when flow control is
            // armed. The stall counter records messages that had to wait,
            // not spin iterations (spin counts are schedule noise).
            if cfg.eager_credits > 0 {
                let mut stalled = false;
                while !self.credits.try_acquire(p) {
                    stalled = true;
                    std::thread::yield_now();
                }
                if stalled {
                    self.stats.add(stat::fc_credit_stalls, 1);
                }
                self.stats.add(stat::fc_eager_admitted, 1);
            }
            let wire = NmWire::new(
                p,
                dst,
                WirePayload::Eager {
                    tag,
                    seq: m,
                    data: payload.share(),
                },
            );
            cell.header.packet_type = PKT_EAGER;
            cell.header.aux = [self.now_ns(), wire.crc];
            cell.fill(payload.as_slice());
            self.stats.add(stat::eager_sends, 1);
            // Eager completes at the sender once the bytes are copied out.
            self.stats.add(stat::send_completions, 1);
        }
        self.stats.add(stat::packets_sent, 1);
        self.vc_queues[vc].enqueue(cell);
    }

    /// VC `c`'s consumer processes at most one cell. Returns `false` when
    /// the queue was momentarily empty.
    fn consume_one(&self, c: usize, state: &mut ConsumerState) -> bool {
        let Some(cell) = self.vc_queues[c].dequeue(&self.pool) else {
            return false;
        };
        let cfg = &self.cfg;
        let src = cell.header.src_rank;
        let seq = cell.header.seq;
        let tag = cell.header.tag;
        let [t_inject, crc_expect] = cell.header.aux;

        // Per-sender FIFO: a producer's messages all cross this queue, so
        // its sequence numbers must arrive dense and in order.
        let expect = state.next_seq.entry(src).or_insert(0);
        if seq != *expect {
            state.fifo_violations += 1;
        }
        *expect = seq + 1;

        match cell.header.packet_type {
            PKT_EAGER => {
                // Receiver-side CRC: reseal from the delivered bytes and
                // compare against the sender's seal.
                let data = NmBuf::from(cell.payload().to_vec());
                let wire = NmWire::new(
                    src,
                    state.my_rank,
                    WirePayload::Eager {
                        tag,
                        seq,
                        data: data.share(),
                    },
                );
                if wire.crc != crc_expect {
                    self.stats.add(stat::crc_drops, 1);
                } else {
                    self.deliver(src, tag, seq, data, state);
                }
                if cfg.eager_credits > 0 {
                    self.credits.release(src, 1);
                    self.stats.add(stat::fc_credits_returned, 1);
                }
            }
            PKT_RTS => {
                // Claim the parked payload (the collapsed CTS/DATA round
                // trip) and verify the DATA packet's seal.
                let rdv_id = ((src as u64) << 32) | seq;
                let payload = self
                    .rdv_store
                    .lock()
                    .remove(&rdv_id)
                    .expect("RTS without a parked rendezvous payload");
                let data_wire = NmWire::new(
                    src,
                    state.my_rank,
                    WirePayload::Data {
                        rdv_id,
                        offset: 0,
                        data: payload.share(),
                    },
                );
                self.stats.add(stat::data_chunks_sent, 1);
                if data_wire.crc != crc_expect {
                    self.stats.add(stat::crc_drops, 1);
                } else {
                    self.deliver(src, tag, seq, payload, state);
                }
                self.stats.add(stat::send_completions, 1);
            }
            other => panic!("unknown threaded packet type {other}"),
        }

        let latency = self.now_ns().saturating_sub(t_inject);
        state.latencies_ns.push(latency);
        state.received += 1;
        self.free_queues[src].enqueue(cell);
        true
    }

    /// Run the delivered message through the sharded matcher. Even
    /// sequence numbers post the receive first (posted-queue hit); odd
    /// ones arrive first (unexpected-queue hit) and are then claimed via
    /// the ANY_SOURCE probe + a posted receive.
    fn deliver(&self, src: usize, tag: u64, seq: u64, data: NmBuf, state: &mut ConsumerState) {
        let gate = GateId(src);
        let payload_len = data.len();
        if seq.is_multiple_of(2) {
            let req = RecvReqId(state.next_req);
            state.next_req += 1;
            assert!(
                self.matching.post_recv(gate, tag, req).is_none(),
                "posted-first receive found a stale unexpected message"
            );
            let matched = self.matching.arrived(gate, tag, Unexpected::Eager { seq, data });
            assert_eq!(matched, Some(req), "arrival missed the posted receive");
            state.matched_posted += 1;
        } else {
            assert!(
                self.matching
                    .arrived(gate, tag, Unexpected::Eager { seq, data })
                    .is_none(),
                "unexpected-first arrival matched a phantom posted receive"
            );
            // Tags are per-producer, so the global-FIFO arbitration must
            // name this gate as the earliest (and only) holder.
            assert_eq!(
                self.matching.probe_tag_info(tag),
                Some((gate, payload_len)),
                "ANY_SOURCE ticket arbitration pointed at the wrong gate"
            );
            let req = RecvReqId(state.next_req);
            state.next_req += 1;
            let msg = self
                .matching
                .post_recv(gate, tag, req)
                .expect("stored unexpected message vanished");
            assert_eq!(msg.seq(), seq);
            state.matched_unexpected += 1;
        }
        self.stats.add(stat::recv_completions, 1);
    }

    /// Audit the credit bank: every pool back at capacity.
    fn credits_intact(&self) -> bool {
        self.cfg.eager_credits == 0
            || (0..self.cfg.producers)
                .all(|p| self.credits.pool(p).available() == self.cfg.eager_credits)
    }
}

/// Consumer-thread-local delivery state.
struct ConsumerState {
    my_rank: usize,
    next_seq: HashMap<usize, u64>,
    next_req: u32,
    received: u64,
    fifo_violations: u64,
    matched_posted: u64,
    matched_unexpected: u64,
    latencies_ns: Vec<u64>,
}

impl ConsumerState {
    fn new(my_rank: usize, expected: u64) -> ConsumerState {
        ConsumerState {
            my_rank,
            next_seq: HashMap::new(),
            next_req: 0,
            received: 0,
            fifo_violations: 0,
            matched_posted: 0,
            matched_unexpected: 0,
            latencies_ns: Vec::with_capacity(expected as usize),
        }
    }
}

/// Outcome of a threaded (or oracle) run.
pub struct ThreadedReport {
    pub elapsed: Duration,
    pub total_msgs: u64,
    /// End-to-end injection rate over the whole run.
    pub throughput_msgs_per_sec: f64,
    /// Enqueue-to-delivery latency samples, sorted ascending (exact, one
    /// per message).
    pub latencies_ns: Vec<u64>,
    /// Merged statistics snapshot (per-core stripes summed on read).
    pub stats: NmStats,
    pub fifo_violations: u64,
    pub matched_posted: u64,
    pub matched_unexpected: u64,
    /// Every credit pool returned to full capacity.
    pub credit_intact: bool,
}

impl ThreadedReport {
    /// Exact percentile (nearest-rank) over the collected samples.
    pub fn latency_ns_at(&self, q: f64) -> u64 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        let idx = ((self.latencies_ns.len() - 1) as f64 * q).round() as usize;
        self.latencies_ns[idx]
    }

    pub fn p50_ns(&self) -> u64 {
        self.latency_ns_at(0.50)
    }

    pub fn p99_ns(&self) -> u64 {
        self.latency_ns_at(0.99)
    }
}

fn finish(shared: &Shared, elapsed: Duration, consumers: Vec<ConsumerState>) -> ThreadedReport {
    let mut latencies: Vec<u64> = Vec::new();
    let mut fifo_violations = 0;
    let mut matched_posted = 0;
    let mut matched_unexpected = 0;
    let mut total = 0;
    for s in consumers {
        latencies.extend_from_slice(&s.latencies_ns);
        fifo_violations += s.fifo_violations;
        matched_posted += s.matched_posted;
        matched_unexpected += s.matched_unexpected;
        total += s.received;
    }
    latencies.sort_unstable();
    let secs = elapsed.as_secs_f64();
    ThreadedReport {
        elapsed,
        total_msgs: total,
        throughput_msgs_per_sec: if secs > 0.0 { total as f64 / secs } else { 0.0 },
        latencies_ns: latencies,
        stats: shared.stats.snapshot(),
        fifo_violations,
        matched_posted,
        matched_unexpected,
        credit_intact: shared.credits_intact(),
    }
}

/// Run the stack on real OS threads: one thread per producer, one per VC.
pub fn run_threaded(cfg: ThreadedConfig) -> ThreadedReport {
    let shared = Arc::new(Shared::new(cfg));
    let start = Instant::now();

    let consumers = WorkerTeam::spawn(cfg.vcs, "nm-vc", |c| {
        let shared = Arc::clone(&shared);
        move || {
            let expected = shared.cfg.expected_on_vc(c);
            let mut state = ConsumerState::new(shared.cfg.consumer_rank(c), expected);
            while state.received < expected {
                if !shared.consume_one(c, &mut state) {
                    std::thread::yield_now();
                }
            }
            state
        }
    });
    let producers = WorkerTeam::spawn(cfg.producers, "nm-prod", |p| {
        let shared = Arc::clone(&shared);
        move || {
            for m in 0..shared.cfg.msgs_per_producer {
                shared.produce_one(p, m);
            }
        }
    });

    producers.join();
    let states = consumers.join();
    let elapsed = start.elapsed();
    finish(&shared, elapsed, states)
}

/// Single-threaded oracle: the identical per-message logic, executed
/// sequentially (produce one, drain the VC). Deterministic counter totals
/// — the threaded run's merged [`NmStats`] must equal this run's, modulo
/// the schedule-dependent stall counter.
pub fn run_inline(cfg: ThreadedConfig) -> ThreadedReport {
    let shared = Shared::new(cfg);
    let start = Instant::now();
    let mut states: Vec<ConsumerState> = (0..cfg.vcs)
        .map(|c| ConsumerState::new(cfg.consumer_rank(c), cfg.expected_on_vc(c)))
        .collect();
    for m in 0..cfg.msgs_per_producer {
        for p in 0..cfg.producers {
            shared.produce_one(p, m);
            let vc = p % cfg.vcs;
            while shared.consume_one(vc, &mut states[vc]) {}
        }
    }
    let elapsed = start.elapsed();
    finish(&shared, elapsed, states)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_run_delivers_everything() {
        let cfg = ThreadedConfig {
            producers: 3,
            vcs: 2,
            window: 4,
            msgs_per_producer: 100,
            payload_bytes: 64,
            rdv_every: 5,
            eager_credits: 8,
        };
        let r = run_inline(cfg);
        assert_eq!(r.total_msgs, 300);
        assert_eq!(r.fifo_violations, 0);
        assert!(r.credit_intact);
        assert_eq!(r.stats.crc_drops, 0);
        assert_eq!(r.stats.rdv_sends, 3 * 20);
        assert_eq!(r.stats.eager_sends, 3 * 80);
        assert_eq!(r.stats.recv_completions, 300);
        assert_eq!(r.matched_posted + r.matched_unexpected, 300);
        assert_eq!(r.latencies_ns.len(), 300);
    }

    #[test]
    fn threaded_small_run_matches_inline_counters() {
        let cfg = ThreadedConfig {
            producers: 2,
            vcs: 2,
            window: 8,
            msgs_per_producer: 200,
            payload_bytes: 32,
            rdv_every: 4,
            eager_credits: 4,
        };
        let mut a = run_threaded(cfg).stats;
        let mut b = run_inline(cfg).stats;
        // Stall counts depend on the schedule; everything else must agree.
        a.fc_credit_stalls = 0;
        b.fc_credit_stalls = 0;
        assert_eq!(a, b);
    }

    #[test]
    fn flow_control_off_never_touches_the_bank() {
        let cfg = ThreadedConfig {
            producers: 2,
            vcs: 1,
            window: 4,
            msgs_per_producer: 50,
            payload_bytes: 16,
            rdv_every: 0,
            eager_credits: 0,
        };
        let r = run_inline(cfg);
        assert_eq!(r.stats.fc_eager_admitted, 0);
        assert_eq!(r.stats.fc_credits_returned, 0);
        assert!(r.credit_intact);
        assert_eq!(r.stats.rdv_sends, 0);
    }

    #[test]
    fn percentiles_are_exact_over_samples() {
        let r = ThreadedReport {
            elapsed: Duration::from_secs(1),
            total_msgs: 5,
            throughput_msgs_per_sec: 5.0,
            latencies_ns: vec![10, 20, 30, 40, 100],
            stats: NmStats::default(),
            fifo_violations: 0,
            matched_posted: 0,
            matched_unexpected: 0,
            credit_intact: true,
        };
        assert_eq!(r.p50_ns(), 30);
        assert_eq!(r.p99_ns(), 100);
        assert_eq!(r.latency_ns_at(0.0), 10);
    }
}
