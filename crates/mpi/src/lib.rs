//! # mpi-ch3 — the MPI layer (ADI3 / CH3) and the NewMadeleine integration
//!
//! This crate reimplements the slice of MPICH2 the paper modifies: request
//! objects, the CH3 posted/unexpected queues, the CH3 eager and rendezvous
//! protocols, virtual connections with per-destination send overrides, the
//! progress engine, and the MPI_ANY_SOURCE list machinery of §3.2 — plus
//! the runner that assembles a full simulated MPI job.
//!
//! ## The three inter-node paths
//!
//! * [`stack::InterNode::NmadDirect`] — **the paper's contribution** (§3.1):
//!   CH3 send functions are overridden per destination so inter-node
//!   messages call NewMadeleine directly; NewMadeleine performs tag
//!   matching and its own eager/rendezvous protocols; completions flow back
//!   through the mutual request pointers. Intra-node messages still use the
//!   Nemesis shared-memory queues.
//! * [`stack::InterNode::NmadNetmod`] — the *legacy* integration the paper
//!   argues against (§2.1.3): NewMadeleine squeezed behind the four-routine
//!   Nemesis network-module interface, with CH3 running its own protocols
//!   on top. Large messages pay the nested handshake of Fig. 2 (a CH3
//!   RTS/CTS around NewMadeleine's internal RTS/CTS) and every message pays
//!   an extra copy through the module queue.
//! * [`stack::InterNode::Tailored`] — network-tailored comparator stacks
//!   (MVAPICH2-like, Open MPI-like): CH3 protocols straight over the NIC
//!   with per-stack calibration (see the `baselines` crate).
//!
//! ## Progress modes
//!
//! Without PIOMan, progress happens only when the application calls MPI
//! (busy-wait polling). With PIOMan ([`piom`]), ranks block on semaphores
//! and progress runs in the background on event kicks — which is what makes
//! Fig. 7's communication/computation overlap possible.

// Data-path crate: every payload clone must be a metered zero-copy share
// (`NmBuf::share`/`slice`) or carry an ownership-constraint comment.
#![warn(clippy::redundant_clone)]

pub mod anysource;
pub mod api;
pub mod ch3;
pub mod collectives;
pub mod comm;
pub mod costs;
pub mod datatype;
pub mod progress;
pub mod queues;
pub mod request;
pub mod rma;
pub mod stack;
pub mod threaded;
pub mod transport;
pub mod vc;

pub use api::{FtError, MpiHandle, PeerDead, Src, Status};
pub use comm::Comm;
pub use costs::SoftwareCosts;
pub use request::Req;
pub use stack::{InterNode, MembershipTotals, RunOutcome, StackConfig, TailoredProfile};
pub use threaded::{run_inline, run_threaded, ThreadedConfig, ThreadedReport};
