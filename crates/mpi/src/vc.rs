//! Virtual connections (VCs) with per-destination send overrides.
//!
//! §3.1.2: "function pointers were added to MPICH2's per-connection virtual
//! connection (VC) structure to allow the various CH3 send functions to be
//! overridden on a per-destination basis. In this way, a call to
//! `MPID_Send()` will result in a call directly to the NewMadeleine send
//! function only when sending to a process on a different node."
//!
//! [`VcPath`] is the Rust rendition of that function pointer: an enum the
//! API layer dispatches on per destination. A stack chooses at `MPI_Init`
//! time whether remote destinations point at the NewMadeleine bypass or at
//! a CH3 transport.

use simnet::Placement;

/// Where traffic for one destination flows.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VcPath {
    /// Messages to self: matched locally, no transport.
    SelfLoop,
    /// Same node: Nemesis shared-memory channel (CH3 protocols).
    Shm,
    /// Different node, bypass stack: call NewMadeleine directly (§3.1) —
    /// no CH3 protocol, no CH3 matching.
    NmadDirect,
    /// Different node, non-bypass stack: CH3 protocols over the configured
    /// network transport (legacy netmod or tailored baseline).
    Ch3Net,
}

/// The per-process VC table.
pub struct VcTable {
    paths: Vec<VcPath>,
    my_rank: usize,
}

impl VcTable {
    /// Build the table for `my_rank` given the placement and whether the
    /// stack bypasses CH3 for inter-node traffic.
    pub fn new(my_rank: usize, placement: &Placement, bypass: bool) -> VcTable {
        let paths = (0..placement.nranks())
            .map(|dst| {
                if dst == my_rank {
                    VcPath::SelfLoop
                } else if placement.same_node(my_rank, dst) {
                    VcPath::Shm
                } else if bypass {
                    VcPath::NmadDirect
                } else {
                    VcPath::Ch3Net
                }
            })
            .collect();
        VcTable { paths, my_rank }
    }

    /// The send path for `dst` — the "function pointer" consulted by
    /// `MPID_Send`.
    #[inline]
    pub fn path(&self, dst: usize) -> VcPath {
        self.paths[dst]
    }

    pub fn my_rank(&self) -> usize {
        self.my_rank
    }

    /// Remote peers (everything not self and not same-node) — the gates a
    /// netmod pre-posts receives for.
    pub fn remote_peers(&self) -> Vec<usize> {
        self.paths
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p, VcPath::NmadDirect | VcPath::Ch3Net))
            .map(|(i, _)| i)
            .collect()
    }

    /// Any inter-node destinations at all?
    pub fn has_remote(&self) -> bool {
        !self.remote_peers().is_empty()
    }

    /// How many peers can hold eager credits against this rank — the
    /// `peers` term of the hard ceiling `peers × eager_credits ×
    /// eager_threshold` that sizes [`nmad::FlowConfig::unex_bytes_cap`].
    /// Intra-node peers never consume credits (the Nemesis cell pool is
    /// the shared-memory backpressure), so only remote VCs count.
    pub fn credit_peer_count(&self) -> usize {
        self.remote_peers().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::Cluster;

    #[test]
    fn bypass_table_routes_by_locality() {
        let cluster = Cluster::new(2, 2, vec![]);
        let p = Placement::block(4, &cluster); // 0,1 on node0; 2,3 on node1
        let vc = VcTable::new(1, &p, true);
        assert_eq!(vc.path(1), VcPath::SelfLoop);
        assert_eq!(vc.path(0), VcPath::Shm);
        assert_eq!(vc.path(2), VcPath::NmadDirect);
        assert_eq!(vc.path(3), VcPath::NmadDirect);
        assert_eq!(vc.remote_peers(), vec![2, 3]);
        assert!(vc.has_remote());
        assert_eq!(vc.credit_peer_count(), 2);
    }

    #[test]
    fn non_bypass_table_uses_ch3_net() {
        let cluster = Cluster::new(2, 1, vec![]);
        let p = Placement::block(2, &cluster);
        let vc = VcTable::new(0, &p, false);
        assert_eq!(vc.path(1), VcPath::Ch3Net);
    }

    #[test]
    fn single_node_has_no_remotes() {
        let cluster = Cluster::new(1, 4, vec![]);
        let p = Placement::block(4, &cluster);
        let vc = VcTable::new(2, &p, true);
        assert!(!vc.has_remote());
        assert_eq!(vc.path(0), VcPath::Shm);
        assert_eq!(vc.my_rank(), 2);
    }
}
