//! Virtual connections (VCs) with per-destination send overrides.
//!
//! §3.1.2: "function pointers were added to MPICH2's per-connection virtual
//! connection (VC) structure to allow the various CH3 send functions to be
//! overridden on a per-destination basis. In this way, a call to
//! `MPID_Send()` will result in a call directly to the NewMadeleine send
//! function only when sending to a process on a different node."
//!
//! [`VcPath`] is the Rust rendition of that function pointer: an enum the
//! API layer dispatches on per destination. A stack chooses at `MPI_Init`
//! time whether remote destinations point at the NewMadeleine bypass or at
//! a CH3 transport.
//!
//! ## Scale
//!
//! The table is *interned*: instead of a dense `Vec<VcPath>` per rank
//! (O(ranks) per rank, O(ranks²) job-wide — 128 MB of path entries alone at
//! 4096 ranks), each rank holds an `Arc` to the job-wide [`TopoMap`] and
//! computes `path(dst)` from node locality on demand. Per-rank footprint is
//! a pointer and two words regardless of job size.

use std::collections::HashSet;
use std::sync::Arc;

use parking_lot::Mutex;
use simnet::{Placement, TopoMap};

/// Where traffic for one destination flows.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VcPath {
    /// Messages to self: matched locally, no transport.
    SelfLoop,
    /// Same node: Nemesis shared-memory channel (CH3 protocols).
    Shm,
    /// Different node, bypass stack: call NewMadeleine directly (§3.1) —
    /// no CH3 protocol, no CH3 matching.
    NmadDirect,
    /// Different node, non-bypass stack: CH3 protocols over the configured
    /// network transport (legacy netmod or tailored baseline).
    Ch3Net,
}

/// The per-process VC table: a view over the shared topology map rather
/// than a materialised per-destination vector.
pub struct VcTable {
    topo: Arc<TopoMap>,
    my_rank: usize,
    bypass: bool,
    /// Dynamically torn-down connections: peers this rank's membership
    /// supervisor has declared dead. VC *establishment* is implicit and
    /// lazy (the interned table materialises nothing per destination until
    /// traffic flows — a late joiner needs no setup call); *teardown* is
    /// explicit and sticky, mirroring the one-way Up→Dead verdict.
    retired: Mutex<HashSet<usize>>,
}

impl VcTable {
    /// Build the table for `my_rank` over the job-wide topology map.
    /// `bypass` selects whether inter-node traffic goes straight to
    /// NewMadeleine or through CH3.
    pub fn new(my_rank: usize, topo: Arc<TopoMap>, bypass: bool) -> VcTable {
        VcTable {
            topo,
            my_rank,
            bypass,
            retired: Mutex::new(HashSet::new()),
        }
    }

    /// Convenience constructor for tests and one-off tables: builds a
    /// private [`TopoMap`] from the placement.
    pub fn from_placement(my_rank: usize, placement: &Placement, bypass: bool) -> VcTable {
        VcTable::new(my_rank, Arc::new(TopoMap::new(placement)), bypass)
    }

    /// The send path for `dst` — the "function pointer" consulted by
    /// `MPID_Send`. O(1), computed from node locality.
    #[inline]
    pub fn path(&self, dst: usize) -> VcPath {
        if dst == self.my_rank {
            VcPath::SelfLoop
        } else if self.topo.same_node(self.my_rank, dst) {
            VcPath::Shm
        } else if self.bypass {
            VcPath::NmadDirect
        } else {
            VcPath::Ch3Net
        }
    }

    pub fn my_rank(&self) -> usize {
        self.my_rank
    }

    /// Tear down the virtual connection to `dst` after a death verdict.
    /// Returns `true` on the first retirement, `false` if already retired.
    /// The path computation itself is untouched (the topology is immutable
    /// job-wide state); callers consult [`VcTable::is_retired`] before
    /// initiating new traffic.
    pub fn retire(&self, dst: usize) -> bool {
        self.retired.lock().insert(dst)
    }

    /// Has the connection to `dst` been torn down? Sticky, like the Dead
    /// verdict that drives it.
    pub fn is_retired(&self, dst: usize) -> bool {
        self.retired.lock().contains(&dst)
    }

    /// How many connections have been retired (dead peers seen by this
    /// rank's table).
    pub fn retired_count(&self) -> usize {
        self.retired.lock().len()
    }

    /// The shared topology map this table is a view over.
    pub fn topo(&self) -> &Arc<TopoMap> {
        &self.topo
    }

    /// Remote peers (everything not self and not same-node) — the gates a
    /// netmod pre-posts receives for. O(ranks) to materialise; only the
    /// legacy netmod path calls this, the bypass stack never does.
    pub fn remote_peers(&self) -> Vec<usize> {
        let my_node = self.topo.node_of(self.my_rank);
        (0..self.topo.nranks())
            .filter(|&dst| dst != self.my_rank && self.topo.node_of(dst) != my_node)
            .collect()
    }

    /// Any inter-node destinations at all? O(1): some rank lives on another
    /// node exactly when more than one node is populated.
    pub fn has_remote(&self) -> bool {
        self.topo.multi_node()
    }

    /// How many peers can hold eager credits against this rank — the
    /// `peers` term of the hard ceiling `peers × eager_credits ×
    /// eager_threshold` that sizes [`nmad::FlowConfig::unex_bytes_cap`].
    /// Intra-node peers never consume credits (the Nemesis cell pool is
    /// the shared-memory backpressure), so only remote VCs count.
    pub fn credit_peer_count(&self) -> usize {
        self.topo.nranks() - self.topo.node_ranks(self.my_rank).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::Cluster;

    #[test]
    fn bypass_table_routes_by_locality() {
        let cluster = Cluster::new(2, 2, vec![]);
        let p = Placement::block(4, &cluster); // 0,1 on node0; 2,3 on node1
        let vc = VcTable::from_placement(1, &p, true);
        assert_eq!(vc.path(1), VcPath::SelfLoop);
        assert_eq!(vc.path(0), VcPath::Shm);
        assert_eq!(vc.path(2), VcPath::NmadDirect);
        assert_eq!(vc.path(3), VcPath::NmadDirect);
        assert_eq!(vc.remote_peers(), vec![2, 3]);
        assert!(vc.has_remote());
        assert_eq!(vc.credit_peer_count(), 2);
    }

    #[test]
    fn non_bypass_table_uses_ch3_net() {
        let cluster = Cluster::new(2, 1, vec![]);
        let p = Placement::block(2, &cluster);
        let vc = VcTable::from_placement(0, &p, false);
        assert_eq!(vc.path(1), VcPath::Ch3Net);
    }

    #[test]
    fn single_node_has_no_remotes() {
        let cluster = Cluster::new(1, 4, vec![]);
        let p = Placement::block(4, &cluster);
        let vc = VcTable::from_placement(2, &p, true);
        assert!(!vc.has_remote());
        assert_eq!(vc.path(0), VcPath::Shm);
        assert_eq!(vc.my_rank(), 2);
    }

    #[test]
    fn retirement_is_sticky_and_per_destination() {
        let cluster = Cluster::new(2, 2, vec![]);
        let p = Placement::block(4, &cluster);
        let vc = VcTable::from_placement(0, &p, true);
        assert!(!vc.is_retired(2));
        assert!(vc.retire(2), "first retirement is fresh");
        assert!(!vc.retire(2), "second retirement is a no-op");
        assert!(vc.is_retired(2));
        assert!(!vc.is_retired(3), "other peers unaffected");
        assert_eq!(vc.retired_count(), 1);
        // Path computation is unchanged — teardown is a policy bit, not a
        // topology mutation.
        assert_eq!(vc.path(2), VcPath::NmadDirect);
    }

    #[test]
    fn tables_share_one_topo_map() {
        // The point of interning: N tables over one placement must not
        // materialise N path vectors. All views alias one TopoMap.
        let cluster = Cluster::new(4, 2, vec![]);
        let p = Placement::block(8, &cluster);
        let topo = Arc::new(TopoMap::new(&p));
        let tables: Vec<VcTable> = (0..8)
            .map(|r| VcTable::new(r, Arc::clone(&topo), true))
            .collect();
        assert_eq!(Arc::strong_count(&topo), 9);
        for (r, vc) in tables.iter().enumerate() {
            assert_eq!(vc.path(r), VcPath::SelfLoop);
            for dst in 0..8 {
                if dst != r {
                    let want = if p.same_node(r, dst) {
                        VcPath::Shm
                    } else {
                        VcPath::NmadDirect
                    };
                    assert_eq!(vc.path(dst), want);
                }
            }
        }
    }
}
