//! The CH3 posted-receive and unexpected queues.
//!
//! "This pair of queues forms the core of the message passing management in
//! MPICH2" (§3.1.1). In this integration they serve the traffic CH3 still
//! matches itself: intra-node (Nemesis) messages always, and inter-node
//! messages on the non-bypass paths (legacy netmod, tailored baselines).
//! On the bypass path, inter-node matching lives inside NewMadeleine and
//! never touches these queues.
//!
//! Posted entries may carry `src: None` (MPI_ANY_SOURCE) and an *active*
//! flag shared with the §3.2 any-source lists: once the list machinery
//! hands an any-source request to NewMadeleine, its CH3 entry is
//! deactivated (lazily skipped) because the NewMadeleine request cannot be
//! cancelled.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use simnet::NmBuf;

use crate::request::Req;

/// Shared liveness flag of a posted entry (see module docs).
pub type ActiveFlag = Arc<AtomicBool>;

/// One entry in the posted-receive queue.
pub struct PostedEntry {
    pub req: Req,
    /// `None` = MPI_ANY_SOURCE.
    pub src: Option<usize>,
    /// `None` = wildcard key (MPI_ANY_TAG over the packed key space).
    pub key: Option<u64>,
    pub active: ActiveFlag,
}

/// A message that arrived before its receive was posted. Cloning shares
/// the payload handle (refcount bump), it never copies the bytes.
#[derive(Clone, Debug)]
pub enum UnexMsg {
    /// A complete eager payload.
    Eager { src: usize, key: u64, data: NmBuf },
    /// A CH3 rendezvous announcement (payload still on the sender).
    Rts {
        src: usize,
        key: u64,
        rdv_id: u64,
        len: usize,
    },
}

impl UnexMsg {
    pub fn src(&self) -> usize {
        match self {
            UnexMsg::Eager { src, .. } | UnexMsg::Rts { src, .. } => *src,
        }
    }

    pub fn key(&self) -> u64 {
        match self {
            UnexMsg::Eager { key, .. } | UnexMsg::Rts { key, .. } => *key,
        }
    }

    /// Payload bytes this entry keeps alive in the receiver. Only eager
    /// entries buffer payload; an RTS is an announcement — its bytes still
    /// sit on the sender.
    fn buffered_bytes(&self) -> usize {
        match self {
            UnexMsg::Eager { data, .. } => data.len(),
            UnexMsg::Rts { .. } => 0,
        }
    }
}

/// The unexpected queue with incremental byte accounting: current
/// buffered payload bytes and their high-water mark are maintained on
/// every push/consume, never by scanning (the overload diagnostics read
/// them on hot failure-dump and debug paths).
#[derive(Default)]
struct UnexQueue {
    q: VecDeque<UnexMsg>,
    bytes: usize,
    hwm: usize,
}

impl UnexQueue {
    fn push(&mut self, msg: UnexMsg) {
        self.bytes += msg.buffered_bytes();
        self.hwm = self.hwm.max(self.bytes);
        self.q.push_back(msg);
    }

    fn take(&mut self, pos: usize) -> UnexMsg {
        let msg = self.q.remove(pos).expect("position just found");
        self.bytes -= msg.buffered_bytes();
        msg
    }
}

/// The queue pair.
#[derive(Default)]
pub struct Ch3Queues {
    posted: Mutex<VecDeque<PostedEntry>>,
    unexpected: Mutex<UnexQueue>,
}

impl Ch3Queues {
    pub fn new() -> Ch3Queues {
        Ch3Queues::default()
    }

    /// Post a receive. If an unexpected message already matches, it is
    /// consumed and returned instead (the caller completes the receive or
    /// starts the rendezvous). Returns the entry's active flag otherwise.
    pub fn post(&self, req: Req, src: Option<usize>, key: u64) -> Result<ActiveFlag, UnexMsg> {
        self.post_filtered(req, src, Some(key))
    }

    /// Post a receive whose key is a wildcard (MPI_ANY_TAG over the
    /// packed key space): any key from a matching source satisfies it.
    pub fn post_any_key(&self, req: Req, src: Option<usize>) -> Result<ActiveFlag, UnexMsg> {
        self.post_filtered(req, src, None)
    }

    fn post_filtered(
        &self,
        req: Req,
        src: Option<usize>,
        key: Option<u64>,
    ) -> Result<ActiveFlag, UnexMsg> {
        {
            let mut unexpected = self.unexpected.lock();
            if let Some(pos) = unexpected.q.iter().position(|m| {
                key.is_none_or(|k| k == m.key()) && src.is_none_or(|s| s == m.src())
            }) {
                return Err(unexpected.take(pos));
            }
        }
        let active: ActiveFlag = Arc::new(AtomicBool::new(true));
        self.posted.lock().push_back(PostedEntry {
            req,
            src,
            key,
            active: Arc::clone(&active),
        });
        Ok(active)
    }

    /// An envelope arrived from `src` with `key`: match it against the
    /// posted queue (in post order, skipping deactivated entries) or return
    /// `None` after the caller should store it unexpected.
    pub fn match_arrival(&self, src: usize, key: u64) -> Option<PostedEntry> {
        let mut posted = self.posted.lock();
        // Garbage-collect deactivated entries as we scan.
        let mut i = 0;
        while i < posted.len() {
            let e = &posted[i];
            if !e.active.load(Ordering::Acquire) {
                posted.remove(i);
                continue;
            }
            if e.key.is_none_or(|k| k == key) && e.src.is_none_or(|s| s == src) {
                return posted.remove(i);
            }
            i += 1;
        }
        None
    }

    /// Store an unmatched arrival.
    pub fn store_unexpected(&self, msg: UnexMsg) {
        self.unexpected.lock().push(msg);
    }

    /// Is any unexpected message with `key` queued (any source)? Returns
    /// the earliest one's source.
    pub fn probe_key(&self, key: u64) -> Option<usize> {
        self.probe(None, key).map(|(src, _)| src)
    }

    /// MPI_Iprobe over the unexpected queue: the earliest message matching
    /// `(src, key)` (src `None` = ANY_SOURCE), as `(source, payload_len)`.
    pub fn probe(&self, src: Option<usize>, key: u64) -> Option<(usize, usize)> {
        self.unexpected
            .lock()
            .q
            .iter()
            .find(|m| m.key() == key && src.is_none_or(|s| s == m.src()))
            .map(|m| {
                let len = match m {
                    UnexMsg::Eager { data, .. } => data.len(),
                    UnexMsg::Rts { len, .. } => *len,
                };
                (m.src(), len)
            })
    }

    pub fn posted_len(&self) -> usize {
        self.posted
            .lock()
            .iter()
            .filter(|e| e.active.load(Ordering::Acquire))
            .count()
    }

    pub fn unexpected_len(&self) -> usize {
        self.unexpected.lock().q.len()
    }

    /// Payload bytes the unexpected queue currently buffers (incremental,
    /// not a scan).
    pub fn unexpected_bytes(&self) -> usize {
        self.unexpected.lock().bytes
    }

    /// High-water mark of [`Ch3Queues::unexpected_bytes`] over this
    /// queue's lifetime.
    pub fn unexpected_hwm(&self) -> usize {
        self.unexpected.lock().hwm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{ReqKind, ReqPath, RequestTable};

    fn req(t: &RequestTable) -> Req {
        t.create(ReqKind::Recv, ReqPath::Shm)
    }

    fn eager(src: usize, key: u64) -> UnexMsg {
        UnexMsg::Eager {
            src,
            key,
            data: NmBuf::from(bytes::Bytes::from_static(b"m")),
        }
    }

    #[test]
    fn post_then_arrival() {
        let t = RequestTable::new();
        let q = Ch3Queues::new();
        let r = req(&t);
        q.post(r, Some(2), 7).expect("no unexpected yet");
        assert_eq!(q.posted_len(), 1);
        let hit = q.match_arrival(2, 7).expect("must match");
        assert_eq!(hit.req, r);
        assert_eq!(q.posted_len(), 0);
    }

    #[test]
    fn arrival_then_post() {
        let t = RequestTable::new();
        let q = Ch3Queues::new();
        q.store_unexpected(eager(2, 7));
        match q.post(req(&t), Some(2), 7) {
            Err(UnexMsg::Eager { src: 2, key: 7, .. }) => {}
            other => panic!("expected unexpected hit, got {:?}", other.is_ok()),
        }
        assert_eq!(q.unexpected_len(), 0);
    }

    #[test]
    fn any_source_posted_matches_any_arrival() {
        let t = RequestTable::new();
        let q = Ch3Queues::new();
        let r = req(&t);
        q.post(r, None, 7).unwrap();
        let hit = q.match_arrival(5, 7).unwrap();
        assert_eq!(hit.req, r);
        assert!(hit.src.is_none());
    }

    #[test]
    fn any_source_post_consumes_earliest_unexpected() {
        let t = RequestTable::new();
        let q = Ch3Queues::new();
        q.store_unexpected(eager(3, 7));
        q.store_unexpected(eager(1, 7));
        match q.post(req(&t), None, 7) {
            Err(m) => assert_eq!(m.src(), 3, "earliest arrival wins"),
            Ok(_) => panic!("should hit unexpected"),
        }
    }

    #[test]
    fn posted_order_determines_matching() {
        let t = RequestTable::new();
        let q = Ch3Queues::new();
        let r_any = req(&t);
        let r_spec = req(&t);
        q.post(r_any, None, 7).unwrap();
        q.post(r_spec, Some(4), 7).unwrap();
        // Arrival from 4 matches the EARLIER any-source post.
        assert_eq!(q.match_arrival(4, 7).unwrap().req, r_any);
        assert_eq!(q.match_arrival(4, 7).unwrap().req, r_spec);
    }

    #[test]
    fn deactivated_entries_are_skipped_and_collected() {
        let t = RequestTable::new();
        let q = Ch3Queues::new();
        let r1 = req(&t);
        let r2 = req(&t);
        let flag = q.post(r1, None, 7).unwrap();
        q.post(r2, Some(4), 7).unwrap();
        flag.store(false, Ordering::Release);
        assert_eq!(q.match_arrival(4, 7).unwrap().req, r2);
        assert_eq!(q.posted_len(), 0, "dead entry collected");
    }

    #[test]
    fn probe_key_sees_unexpected() {
        let q = Ch3Queues::new();
        assert_eq!(q.probe_key(7), None);
        q.store_unexpected(eager(9, 7));
        assert_eq!(q.probe_key(7), Some(9));
        assert_eq!(q.probe_key(8), None);
    }

    #[test]
    fn unexpected_bytes_track_pushes_and_consumes() {
        let t = RequestTable::new();
        let q = Ch3Queues::new();
        assert_eq!((q.unexpected_bytes(), q.unexpected_hwm()), (0, 0));
        let payload = |n: usize| UnexMsg::Eager {
            src: 1,
            key: 7,
            data: NmBuf::from(bytes::Bytes::from(vec![0u8; n])),
        };
        q.store_unexpected(payload(100));
        q.store_unexpected(payload(50));
        // An RTS announcement buffers no payload on the receiver.
        q.store_unexpected(UnexMsg::Rts {
            src: 1,
            key: 8,
            rdv_id: 1,
            len: 1 << 20,
        });
        assert_eq!(q.unexpected_bytes(), 150);
        assert_eq!(q.unexpected_hwm(), 150);
        q.post(req(&t), Some(1), 7).expect_err("consumes 100B eager");
        assert_eq!(q.unexpected_bytes(), 50);
        assert_eq!(q.unexpected_hwm(), 150, "high-water mark is sticky");
        q.post(req(&t), Some(1), 8).expect_err("consumes the RTS");
        assert_eq!(q.unexpected_bytes(), 50, "RTS consume moves no bytes");
    }

    #[test]
    fn key_isolation() {
        let t = RequestTable::new();
        let q = Ch3Queues::new();
        q.post(req(&t), Some(1), 7).unwrap();
        assert!(q.match_arrival(1, 8).is_none());
        q.store_unexpected(eager(1, 8));
        assert_eq!(q.unexpected_len(), 1);
    }
}
