//! The MPI-facing API: the handle a rank program drives.
//!
//! [`MpiHandle`] bundles the rank's simulation context with its process
//! state and exposes MPI-shaped operations (`send`/`recv`/`isend`/`irecv`/
//! `wait`/…, plus the collectives of [`crate::collectives`]). Rank
//! programs — Netpipe, the NAS kernels, the examples — are written against
//! this type and run unchanged on every stack configuration.

use bytes::Bytes;
use simnet::{BufOrigin, NmBuf, RankCtx, SimDuration, SimTime};

use crate::progress::{NetPath, ProcState};
use crate::request::Req;
use std::sync::Arc;

/// An operation failed because its peer was declared dead by the
/// membership supervisor (§2.2.1 no-cancel rule: the request completed,
/// with this error, rather than being silently dropped).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PeerDead {
    pub peer: usize,
}

impl std::fmt::Display for PeerDead {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "peer rank {} was declared dead", self.peer)
    }
}

impl std::error::Error for PeerDead {}

/// Why a fault-tolerance-aware operation failed (see
/// [`MpiHandle::wait_ft`]): the peer died, or the whole communication
/// epoch was revoked. Callers react differently — exclusion (shrink) vs.
/// teardown-and-rebuild.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FtError {
    PeerDead { peer: usize },
    Revoked { epoch: u8 },
}

impl std::fmt::Display for FtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtError::PeerDead { peer } => write!(f, "peer rank {peer} was declared dead"),
            FtError::Revoked { epoch } => write!(f, "communication epoch {epoch} was revoked"),
        }
    }
}

impl std::error::Error for FtError {}

/// Receive-source selector.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Src {
    Rank(usize),
    /// MPI_ANY_SOURCE.
    Any,
}

/// Completion envelope (MPI_Status).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Status {
    pub source: usize,
    pub tag: u32,
    pub len: usize,
}

/// The per-rank MPI handle.
pub struct MpiHandle {
    pub(crate) ctx: RankCtx,
    pub(crate) state: Arc<ProcState>,
}

impl Drop for MpiHandle {
    /// Implicit MPI_Finalize: when the rank program returns (dropping its
    /// handle), drain any protocol work this rank still owes the network
    /// (see [`ProcState::finalize`]). Skipped during a panic unwind so
    /// failure diagnostics aren't masked by a drain loop.
    fn drop(&mut self) {
        if !std::thread::panicking() {
            self.state.finalize(&self.ctx);
        }
    }
}

impl MpiHandle {
    pub(crate) fn new(ctx: RankCtx, state: Arc<ProcState>) -> MpiHandle {
        MpiHandle { ctx, state }
    }

    /// This process's rank in COMM_WORLD.
    #[inline]
    pub fn rank(&self) -> usize {
        self.state.rank
    }

    /// COMM_WORLD size.
    #[inline]
    pub fn size(&self) -> usize {
        self.state.size
    }

    /// Current simulated time (for harness measurements).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// Model a computation phase of `d` (Fig. 7's "computes for a while").
    pub fn compute(&self, d: SimDuration) {
        self.ctx.compute(d);
    }

    /// Direct access to the simulation context (harness utilities).
    pub fn ctx(&self) -> &RankCtx {
        &self.ctx
    }

    /// This rank's CH3 unexpected-queue backlog: `(current bytes, high-
    /// water mark)` — overload tests assert cap compliance through this.
    pub fn unexpected_backlog(&self) -> (usize, usize) {
        self.state.unexpected_backlog()
    }

    /// One-line flow/overload diagnostic (see [`ProcState::flow_state`]).
    pub fn flow_state(&self) -> String {
        self.state.flow_state()
    }

    /// Nonblocking send. The borrowed application buffer is copied once at
    /// the MPI boundary (metered: the only send-side copy of the bypass
    /// path); everything below shares that allocation.
    pub fn isend(&self, dst: usize, tag: u32, data: &[u8]) -> Req {
        let buf = NmBuf::copied_from_slice(data, BufOrigin::App, &self.state.meter);
        self.state.isend(&self.ctx, dst, tag, buf)
    }

    /// Nonblocking send of an owned buffer (avoids even the boundary copy).
    pub fn isend_bytes(&self, dst: usize, tag: u32, data: Bytes) -> Req {
        let buf = NmBuf::adopt(data, BufOrigin::App, &self.state.meter);
        self.state.isend(&self.ctx, dst, tag, buf)
    }

    /// Nonblocking receive.
    pub fn irecv(&self, src: Src, tag: u32) -> Req {
        self.state.irecv(&self.ctx, src, tag)
    }

    /// Blocking send.
    pub fn send(&self, dst: usize, tag: u32, data: &[u8]) {
        let r = self.isend(dst, tag, data);
        self.wait(r);
    }

    /// Blocking send of an owned buffer.
    pub fn send_bytes(&self, dst: usize, tag: u32, data: Bytes) {
        let r = self.isend_bytes(dst, tag, data);
        self.wait(r);
    }

    /// Blocking receive; returns payload and status.
    pub fn recv(&self, src: Src, tag: u32) -> (Bytes, Status) {
        let r = self.irecv(src, tag);
        let (data, status) = self.state.wait(&self.ctx, r);
        (
            data.expect("recv must produce data"),
            status.expect("recv must produce a status"),
        )
    }

    /// Block until `req` completes; returns payload (receives) and status.
    pub fn wait(&self, req: Req) -> Option<Status> {
        let (_data, status) = self.state.wait(&self.ctx, req);
        status
    }

    /// Block until `req` completes, returning the received payload.
    pub fn wait_data(&self, req: Req) -> (Option<Bytes>, Option<Status>) {
        self.state.wait(&self.ctx, req)
    }

    /// Membership-aware wait: like [`MpiHandle::wait_data`], but a request
    /// that completed *with an error* (its peer was declared dead while the
    /// operation was in flight) surfaces as `Err(PeerDead)` instead of a
    /// payload-less success.
    pub fn wait_result(&self, req: Req) -> Result<(Option<Bytes>, Option<Status>), PeerDead> {
        let (data, status) = self.state.wait(&self.ctx, req);
        match self.state.reqs.failed_peer(req) {
            Some(peer) => Err(PeerDead { peer }),
            None => Ok((data, status)),
        }
    }

    /// Fault-tolerance-aware wait: distinguishes *why* a request failed.
    /// `Err(FtError::Revoked)` when its epoch was revoked (comm teardown —
    /// rebuild and retry), `Err(FtError::PeerDead)` when its peer died
    /// (exclude the corpse), `Ok` otherwise.
    pub fn wait_ft(&self, req: Req) -> Result<(Option<Bytes>, Option<Status>), FtError> {
        let (data, status) = self.state.wait(&self.ctx, req);
        if let Some(epoch) = self.state.reqs.revoked_epoch(req) {
            return Err(FtError::Revoked { epoch });
        }
        match self.state.reqs.failed_peer(req) {
            Some(peer) => Err(FtError::PeerDead { peer }),
            None => Ok((data, status)),
        }
    }

    // ------------------------------------------------------------------
    // Elastic membership: crash injection and liveness queries
    // ------------------------------------------------------------------

    /// Simulate this rank dying right now: halt its NewMadeleine core
    /// (all queued protocol work is dropped on the floor, as a real crash
    /// would) and mark the process so the implicit finalize does not try
    /// to drain. The rank program should return immediately after calling
    /// this. Survivors detect the silence via their membership supervisors.
    pub fn crash(&self) {
        self.state
            .crashed
            .store(true, std::sync::atomic::Ordering::Relaxed);
        if let NetPath::Direct(core) = &self.state.net {
            core.halt();
        }
    }

    /// Liveness verdict for `rank` as seen by this rank's membership
    /// supervisor. `true` while Up or merely Suspect; `false` only after
    /// the sticky Dead verdict. Always `true` when membership is off.
    pub fn is_alive(&self, rank: usize) -> bool {
        match &self.state.net {
            NetPath::Direct(core) => !core.is_peer_dead(rank),
            _ => true,
        }
    }

    /// Is the membership supervisor armed on this rank's core?
    pub fn membership_enabled(&self) -> bool {
        matches!(&self.state.net, NetPath::Direct(core) if core.membership_enabled())
    }

    /// Death log as seen by this rank: `(peer, verdict time in ns, fail
    /// streak at the verdict)` — the raw material for detection-latency
    /// measurements.
    pub fn death_log(&self) -> Vec<(usize, u64, u64)> {
        match &self.state.net {
            NetPath::Direct(core) => core
                .death_log()
                .into_iter()
                .map(|(peer, t, streak)| (peer, t.as_nanos(), streak))
                .collect(),
            _ => Vec::new(),
        }
    }

    /// How many per-peer protocol entries this rank's core still holds for
    /// `rank` — must be 0 after the drain for a dead peer.
    pub fn peer_entries(&self, rank: usize) -> usize {
        match &self.state.net {
            NetPath::Direct(core) => core.peer_entry_count(rank),
            _ => 0,
        }
    }

    /// Collectives this rank aborted because a member died mid-protocol.
    pub fn coll_aborts(&self) -> u64 {
        self.state
            .coll_aborts
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Wait for all requests, in order.
    pub fn waitall(&self, reqs: &[Req]) {
        for &r in reqs {
            self.state.wait(&self.ctx, r);
        }
    }

    /// Nonblocking completion test (drives progress once, like MPICH2).
    pub fn test(&self, req: Req) -> bool {
        self.state.test(&self.ctx, req)
    }

    /// MPI_Iprobe: is a message matching `(src, tag)` available? Returns
    /// its envelope without receiving it.
    pub fn iprobe(&self, src: Src, tag: u32) -> Option<Status> {
        self.state.iprobe(&self.ctx, src, tag)
    }

    /// MPI_Probe: block until a matching message is available.
    pub fn probe(&self, src: Src, tag: u32) -> Status {
        self.state.probe(&self.ctx, src, tag)
    }

    /// MPI_Sendrecv: simultaneous send and receive (deadlock-free even for
    /// rendezvous-sized payloads in both directions).
    pub fn sendrecv(
        &self,
        dst: usize,
        send_tag: u32,
        data: &[u8],
        src: Src,
        recv_tag: u32,
    ) -> (Bytes, Status) {
        let r = self.irecv(src, recv_tag);
        let s = self.isend(dst, send_tag, data);
        let (payload, status) = self.state.wait(&self.ctx, r);
        self.state.wait(&self.ctx, s);
        (
            payload.expect("sendrecv must produce data"),
            status.expect("sendrecv must produce a status"),
        )
    }

    // Collectives (implemented over point-to-point in `collectives.rs`).

    /// Synchronize all ranks. Large multi-node jobs use the hierarchical
    /// (node-leader) barrier, small or single-node jobs flat dissemination.
    pub fn barrier(&self) {
        crate::collectives::barrier_auto(self);
    }

    /// Fault-tolerant barrier over an explicit member list (which must
    /// include this rank and be identical on every member). Completes
    /// `Ok(())` when every member reached it, or fails fast with
    /// `Err(PeerDead)` when a member died mid-protocol — it never
    /// deadlocks, and every member always finishes the full dissemination
    /// schedule (see `collectives::try_barrier_group`).
    pub fn try_barrier(&self, group: &[usize]) -> Result<(), PeerDead> {
        crate::collectives::try_barrier_group(self, group)
    }

    /// Barrier over the survivor group only: an explicit member list,
    /// identical on every member, all of whom must be alive.
    pub fn barrier_group(&self, group: &[usize]) {
        crate::collectives::barrier_group_of(self, group);
    }

    /// Allreduce (sum) over the survivor group only (recursive doubling
    /// over the member list; all members must be alive and call this with
    /// the same list).
    pub fn allreduce_sum_group(&self, group: &[usize], contrib: &[f64]) -> Vec<f64> {
        crate::collectives::allreduce_sum_group(self, group, contrib)
    }

    /// Broadcast from `root`. Every rank returns the data. Large
    /// multi-node jobs use the hierarchical (node-leader) algorithm, small
    /// ones the flat binomial tree (see `collectives::bcast_auto`).
    pub fn bcast(&self, root: usize, data: Option<Bytes>) -> Bytes {
        crate::collectives::bcast_auto(self, root, data)
    }

    /// Sum-reduce f64 vectors to `root`.
    pub fn reduce_sum(&self, root: usize, contrib: &[f64]) -> Option<Vec<f64>> {
        crate::collectives::reduce_sum(self, root, contrib)
    }

    /// Allreduce (sum) of f64 vectors. Large multi-node jobs use the
    /// hierarchical reduce + recursive-doubling algorithm.
    pub fn allreduce_sum(&self, contrib: &[f64]) -> Vec<f64> {
        crate::collectives::allreduce_sum_auto(self, contrib)
    }

    /// Personalized all-to-all: `blocks[i]` goes to rank i; returns the
    /// blocks received (one per rank). Large jobs use Bruck's log-round
    /// algorithm, small ones the flat pairwise exchange.
    pub fn alltoall(&self, blocks: Vec<Bytes>) -> Vec<Bytes> {
        crate::collectives::alltoall_auto(self, blocks)
    }

    /// All-gather: every rank contributes `mine`; returns all blocks,
    /// indexed by rank (ring algorithm).
    pub fn allgather(&self, mine: Bytes) -> Vec<Bytes> {
        crate::collectives::allgather(self, mine)
    }

    /// Personalized all-to-all with per-destination sizes
    /// (MPI_Alltoallv). Selects Bruck vs pairwise like [`MpiHandle::alltoall`].
    pub fn alltoallv(&self, blocks: Vec<Bytes>) -> Vec<Bytes> {
        crate::collectives::alltoallv_auto(self, blocks)
    }

    // Communicator recovery (revoke / agree / shrink / join — see
    // `crate::comm` and DESIGN.md §13).

    /// The world communicator: the committed epoch over all ranks.
    pub fn comm_world(&self) -> crate::comm::Comm {
        crate::comm::Comm::world(self)
    }

    /// Revoke the communicator's epoch: quiesce every in-flight operation
    /// keyed to it with counted errors and gossip the poison to all live
    /// peers. Sticky and idempotent; returns whether this call was the
    /// first local revocation.
    pub fn comm_revoke(&self, comm: &crate::comm::Comm) -> bool {
        crate::comm::comm_revoke(self, comm)
    }

    /// Fault-tolerant agreement over the communicator's members: every
    /// surviving member returns the *same* agreed-dead set (world ranks,
    /// ascending), even when members die mid-protocol.
    pub fn comm_agree(&self, comm: &crate::comm::Comm) -> Vec<usize> {
        crate::comm::comm_agree(self, comm)
    }

    /// Shrink: agree on survivors, advance to a fresh epoch, re-rank
    /// densely, seal with a barrier. Identical result on every survivor.
    pub fn comm_shrink(&self, comm: &crate::comm::Comm) -> crate::comm::Comm {
        crate::comm::comm_shrink(self, comm)
    }

    /// Admit `joiner` into the next epoch (run by every current member;
    /// the joiner runs [`MpiHandle::comm_join`] with the same `join_seq`).
    pub fn comm_accept(
        &self,
        comm: &crate::comm::Comm,
        joiner: usize,
        join_seq: u32,
    ) -> crate::comm::Comm {
        crate::comm::comm_accept(self, comm, joiner, join_seq)
    }

    /// Join an existing communicator as a late arrival via its leader.
    pub fn comm_join(&self, leader: usize, join_seq: u32) -> crate::comm::Comm {
        crate::comm::comm_join(self, leader, join_seq)
    }

    /// Barrier over the communicator (keys carry its epoch).
    pub fn comm_barrier(&self, comm: &crate::comm::Comm) {
        crate::comm::comm_barrier(self, comm)
    }

    /// Allreduce (sum) over the communicator.
    pub fn comm_allreduce_sum(&self, comm: &crate::comm::Comm, contrib: &[f64]) -> Vec<f64> {
        crate::comm::comm_allreduce_sum(self, comm, contrib)
    }

    /// Binomial broadcast over the communicator from dense position
    /// `root_pos`.
    pub fn comm_bcast(
        &self,
        comm: &crate::comm::Comm,
        root_pos: usize,
        data: Option<Bytes>,
    ) -> Bytes {
        crate::comm::comm_bcast(self, comm, root_pos, data)
    }

    // Datatype-aware operations (the paper's future-work extension; see
    // `datatype`). Non-contiguous layouts are packed at the MPI layer,
    // exactly as stock MPICH2 does on its generic path.

    /// Send `count` instances of `ty` gathered from `src`.
    pub fn send_typed(
        &self,
        dst: usize,
        tag: u32,
        ty: &crate::datatype::Datatype,
        src: &[u8],
        count: usize,
    ) {
        let packed = ty.pack(src, count);
        self.send_bytes(dst, tag, Bytes::from(packed));
    }

    /// Receive `count` instances of `ty`, scattered into `dst` (which must
    /// cover the type's extent). Returns the status.
    pub fn recv_typed(
        &self,
        src: Src,
        tag: u32,
        ty: &crate::datatype::Datatype,
        dst: &mut [u8],
        count: usize,
    ) -> Status {
        let (data, status) = self.recv(src, tag);
        assert_eq!(
            data.len(),
            ty.packed_size(count),
            "received size does not match the datatype signature"
        );
        ty.unpack(&data, dst, count);
        status
    }
}
