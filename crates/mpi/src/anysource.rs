//! Management of MPI_ANY_SOURCE on the bypass path — the request lists of
//! §3.2 (Fig. 3).
//!
//! The problem: inter-node matching lives inside NewMadeleine, per
//! `(gate, tag)`, and **a posted NewMadeleine request can never be
//! cancelled**. An ANY_SOURCE receive can therefore not be fanned out as
//! one NewMadeleine request per possible source; and while it is
//! outstanding, later same-tag receives must not overtake it.
//!
//! The paper's scheme, implemented here faithfully:
//!
//! * A *main list* keyed by tag holds a sublist per tag in use
//!   ([`AnySourceLists`]).
//! * Posting an ANY_SOURCE receive appends an `Any` entry to its tag's
//!   sublist ("we check the list and create a new entry if the MPI message
//!   tag hasn't already been used").
//! * Later *specific-source* inter-node receives with the same tag are
//!   **parked** behind it ("they are enqueued in the list of pending any
//!   sources and dequeued when the any source entry is removed") — posting
//!   them to NewMadeleine directly could match a message the ANY_SOURCE
//!   receive is entitled to.
//! * On every progress poll the head entry *probes* NewMadeleine by tag;
//!   if a matching message has arrived from some gate, a NewMadeleine
//!   request for exactly that gate is created on the spot ("a NewMadeleine
//!   request is dynamically created when a message is received that could
//!   match") — it completes immediately since the payload already sits in
//!   NewMadeleine's buffers. The entry's CH3 posted-queue twin is
//!   deactivated at that moment, because the NewMadeleine request is now
//!   unstoppable.
//! * If instead an intra-node message matches the ANY_SOURCE receive first
//!   (through the CH3 queues), "the entry … is simply removed and all
//!   requests that might have been posted after are created" — the parked
//!   specifics are released to NewMadeleine, up to the next `Any` entry,
//!   which "replaces the former request as list head".

use std::collections::{HashMap, VecDeque};

use parking_lot::Mutex;

use crate::queues::ActiveFlag;
use crate::request::Req;

enum Entry {
    Any {
        req: Req,
        /// The CH3 posted-queue twin's liveness flag.
        ch3_flag: ActiveFlag,
        /// Gate the dynamically-created NewMadeleine request targets, once
        /// probed.
        nm_gate: Option<usize>,
    },
    Specific {
        req: Req,
        src: usize,
    },
}

#[derive(Default)]
struct TagList {
    entries: VecDeque<Entry>,
}

/// A parked specific-source receive released for posting to NewMadeleine.
#[derive(Debug, PartialEq, Eq)]
pub struct Release {
    pub req: Req,
    pub src: usize,
    pub key: u64,
}

/// The main list: one sublist per tag in use.
#[derive(Default)]
pub struct AnySourceLists {
    lists: Mutex<HashMap<u64, TagList>>,
    /// Reverse map from request to its tag key.
    by_req: Mutex<HashMap<Req, u64>>,
}

impl AnySourceLists {
    pub fn new() -> AnySourceLists {
        AnySourceLists::default()
    }

    /// Register a newly posted ANY_SOURCE receive.
    pub fn register_any(&self, key: u64, req: Req, ch3_flag: ActiveFlag) {
        self.lists
            .lock()
            .entry(key)
            .or_default()
            .entries
            .push_back(Entry::Any {
                req,
                ch3_flag,
                nm_gate: None,
            });
        self.by_req.lock().insert(req, key);
    }

    /// A specific-source inter-node receive is being posted: if its tag has
    /// pending ANY_SOURCE entries it must be parked (returns `true`);
    /// otherwise the caller posts it to NewMadeleine directly.
    pub fn try_park_specific(&self, key: u64, req: Req, src: usize) -> bool {
        let mut lists = self.lists.lock();
        match lists.get_mut(&key) {
            Some(list) if !list.entries.is_empty() => {
                list.entries.push_back(Entry::Specific { req, src });
                self.by_req.lock().insert(req, key);
                true
            }
            _ => false,
        }
    }

    /// Heads awaiting a probe: every sublist whose head is an ANY_SOURCE
    /// entry without a NewMadeleine request yet. Called on every poll.
    pub fn heads_to_probe(&self) -> Vec<(u64, Req)> {
        let lists = self.lists.lock();
        let mut out: Vec<(u64, Req)> = lists
            .iter()
            .filter_map(|(&key, list)| match list.entries.front() {
                Some(Entry::Any {
                    req,
                    nm_gate: None,
                    ..
                }) => Some((key, *req)),
                _ => None,
            })
            .collect();
        out.sort_unstable_by_key(|&(k, _)| k); // deterministic probe order
        out
    }

    /// A probe found a matching message from `gate`: record the
    /// dynamically created NewMadeleine request and deactivate the CH3
    /// twin (the NewMadeleine request cannot be cancelled, so shared
    /// memory must no longer steal this receive).
    pub fn mark_posted(&self, key: u64, gate: usize) {
        let mut lists = self.lists.lock();
        let list = lists.get_mut(&key).expect("mark_posted on unknown tag");
        match list.entries.front_mut() {
            Some(Entry::Any {
                nm_gate, ch3_flag, ..
            }) => {
                debug_assert!(nm_gate.is_none(), "double mark_posted");
                *nm_gate = Some(gate);
                ch3_flag.store(false, std::sync::atomic::Ordering::Release);
            }
            _ => panic!("mark_posted: head is not an ANY_SOURCE entry"),
        }
    }

    /// The given ANY_SOURCE request completed (via NewMadeleine or via an
    /// intra-node CH3 match). Removes its entry; if it was the head, the
    /// parked specifics behind it are released (to be posted to
    /// NewMadeleine) up to the next ANY_SOURCE entry, which becomes the new
    /// head. Returns the releases. No-op (empty) if the request is not
    /// tracked.
    pub fn on_complete(&self, req: Req) -> Vec<Release> {
        let key = match self.by_req.lock().remove(&req) {
            Some(k) => k,
            None => return Vec::new(),
        };
        let mut lists = self.lists.lock();
        let list = match lists.get_mut(&key) {
            Some(l) => l,
            None => return Vec::new(),
        };
        let pos = list
            .entries
            .iter()
            .position(|e| match e {
                Entry::Any { req: r, .. } | Entry::Specific { req: r, .. } => *r == req,
            })
            .expect("completed request missing from its tag list");
        let was_head = pos == 0;
        list.entries.remove(pos);
        let mut released = Vec::new();
        if was_head {
            while let Some(Entry::Specific { .. }) = list.entries.front() {
                match list.entries.pop_front() {
                    Some(Entry::Specific { req, src }) => {
                        self.by_req.lock().remove(&req);
                        released.push(Release { req, src, key });
                    }
                    _ => unreachable!(),
                }
            }
        }
        if list.entries.is_empty() {
            lists.remove(&key);
        }
        released
    }

    /// Membership departure flush: `src` was declared dead, so every
    /// *parked specific* receive targeting it can never be served — release
    /// them for failure completion (the caller fails each request with a
    /// dead-peer error instead of posting it). ANY_SOURCE entries stay:
    /// they remain matchable by every surviving sender, and the heads keep
    /// their probe/park ordering role for the ranks that are still alive.
    pub fn purge_src(&self, src: usize) -> Vec<Release> {
        let mut lists = self.lists.lock();
        let mut by_req = self.by_req.lock();
        let mut purged = Vec::new();
        lists.retain(|&key, list| {
            let mut kept = VecDeque::with_capacity(list.entries.len());
            for e in list.entries.drain(..) {
                match e {
                    Entry::Specific { req, src: s } if s == src => {
                        by_req.remove(&req);
                        purged.push(Release { req, src: s, key });
                    }
                    other => kept.push_back(other),
                }
            }
            list.entries = kept;
            !list.entries.is_empty()
        });
        // Deterministic failure order regardless of hash-map iteration.
        purged.sort_unstable_by_key(|r| (r.key, r.req.0));
        purged
    }

    /// Is this request currently parked as a specific entry? (A parked
    /// request must not be posted to NewMadeleine by anyone else.)
    pub fn is_tracked(&self, req: Req) -> bool {
        self.by_req.lock().contains_key(&req)
    }

    /// Number of live sublists (diagnostics).
    pub fn tags_in_use(&self) -> usize {
        self.lists.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{ReqKind, ReqPath, RequestTable};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    fn flag() -> ActiveFlag {
        Arc::new(AtomicBool::new(true))
    }

    fn any_req(t: &RequestTable) -> Req {
        t.create(ReqKind::RecvAnySource, ReqPath::Unknown)
    }

    fn spec_req(t: &RequestTable) -> Req {
        t.create(ReqKind::Recv, ReqPath::Net)
    }

    #[test]
    fn head_is_probed_until_posted() {
        let t = RequestTable::new();
        let l = AnySourceLists::new();
        let r = any_req(&t);
        let f = flag();
        l.register_any(7, r, Arc::clone(&f));
        assert_eq!(l.heads_to_probe(), vec![(7, r)]);
        l.mark_posted(7, 3);
        assert!(l.heads_to_probe().is_empty(), "posted head stops probing");
        assert!(!f.load(Ordering::Acquire), "CH3 twin deactivated");
    }

    #[test]
    fn specifics_park_behind_any_and_release_on_completion() {
        let t = RequestTable::new();
        let l = AnySourceLists::new();
        let ra = any_req(&t);
        let r1 = spec_req(&t);
        let r2 = spec_req(&t);
        l.register_any(7, ra, flag());
        assert!(l.try_park_specific(7, r1, 4));
        assert!(l.try_park_specific(7, r2, 5));
        assert!(l.is_tracked(r1));
        // Different tag: not parked.
        assert!(!l.try_park_specific(8, spec_req(&t), 4));
        let released = l.on_complete(ra);
        assert_eq!(
            released,
            vec![Release { req: r1, src: 4, key: 7 }, Release { req: r2, src: 5, key: 7 }]
        );
        assert_eq!(l.tags_in_use(), 0);
        assert!(!l.is_tracked(r1));
    }

    #[test]
    fn next_any_becomes_head_and_blocks_later_specifics() {
        let t = RequestTable::new();
        let l = AnySourceLists::new();
        let ra1 = any_req(&t);
        let s1 = spec_req(&t);
        let ra2 = any_req(&t);
        let s2 = spec_req(&t);
        l.register_any(7, ra1, flag());
        assert!(l.try_park_specific(7, s1, 4));
        l.register_any(7, ra2, flag());
        assert!(l.try_park_specific(7, s2, 5));
        // Completing the head releases s1 but stops at ra2.
        let released = l.on_complete(ra1);
        assert_eq!(released, vec![Release { req: s1, src: 4, key: 7 }]);
        assert_eq!(l.heads_to_probe(), vec![(7, ra2)]);
        // Completing the new head releases s2.
        let released = l.on_complete(ra2);
        assert_eq!(released, vec![Release { req: s2, src: 5, key: 7 }]);
        assert_eq!(l.tags_in_use(), 0);
    }

    #[test]
    fn non_head_completion_releases_nothing() {
        // Head is nm-posted; the SECOND any-source entry is matched by an
        // intra-node message. Its removal must not release the specifics
        // parked behind the still-pending head.
        let t = RequestTable::new();
        let l = AnySourceLists::new();
        let ra1 = any_req(&t);
        let ra2 = any_req(&t);
        let s1 = spec_req(&t);
        l.register_any(7, ra1, flag());
        l.register_any(7, ra2, flag());
        assert!(l.try_park_specific(7, s1, 4));
        l.mark_posted(7, 2); // head now bound to gate 2
        let released = l.on_complete(ra2);
        assert!(released.is_empty());
        // Head completes: specifics flow.
        let released = l.on_complete(ra1);
        assert_eq!(released, vec![Release { req: s1, src: 4, key: 7 }]);
    }

    #[test]
    fn purge_src_releases_only_the_dead_peers_parked_specifics() {
        let t = RequestTable::new();
        let l = AnySourceLists::new();
        let ra = any_req(&t);
        let dead1 = spec_req(&t);
        let live = spec_req(&t);
        let dead2 = spec_req(&t);
        l.register_any(7, ra, flag());
        assert!(l.try_park_specific(7, dead1, 9));
        assert!(l.try_park_specific(7, live, 4));
        assert!(l.try_park_specific(7, dead2, 9));
        let purged = l.purge_src(9);
        assert_eq!(
            purged,
            vec![
                Release { req: dead1, src: 9, key: 7 },
                Release { req: dead2, src: 9, key: 7 }
            ]
        );
        assert!(!l.is_tracked(dead1) && !l.is_tracked(dead2));
        // The ANY head and the live specific keep their ordering roles.
        assert!(l.is_tracked(live));
        assert_eq!(l.heads_to_probe(), vec![(7, ra)]);
        let released = l.on_complete(ra);
        assert_eq!(released, vec![Release { req: live, src: 4, key: 7 }]);
        assert_eq!(l.tags_in_use(), 0);
    }

    #[test]
    fn untracked_completion_is_noop() {
        let t = RequestTable::new();
        let l = AnySourceLists::new();
        assert!(l.on_complete(spec_req(&t)).is_empty());
    }

    #[test]
    fn probe_order_is_deterministic_by_tag() {
        let t = RequestTable::new();
        let l = AnySourceLists::new();
        let r9 = any_req(&t);
        let r3 = any_req(&t);
        l.register_any(9, r9, flag());
        l.register_any(3, r3, flag());
        assert_eq!(l.heads_to_probe(), vec![(3, r3), (9, r9)]);
    }
}
