//! Communicator recovery: revoke, fault-tolerant agreement, shrink and
//! join-merge (DESIGN.md §13).
//!
//! A [`Comm`] is an epoch-stamped member list. The world starts as epoch 0
//! over all ranks; after a failure the application runs the ULFM-flavoured
//! recovery sequence:
//!
//! 1. [`comm_revoke`] — poison the epoch. The core stamps the epoch
//!    revoked, quiesces every in-flight operation keyed to it (counted
//!    `Err(Revoked)` completions, never silent drops), and the progress
//!    engine gossips a `Revoke` frame to every live peer. Learning is
//!    sticky, so the flood terminates and late frames of the dead epoch
//!    are counted stale and dropped.
//! 2. [`comm_agree`] / [`comm_shrink`] — fault-tolerant agreement over the
//!    members' liveness bitmaps (dissemination passes, tolerant of deaths
//!    *during* the protocol), then a new communicator epoch over the
//!    agreed survivors with dense re-ranking and a sealing barrier.
//! 3. [`comm_accept`] + [`comm_join`] — admit a late joiner into the next
//!    epoch: the leader hands it the roster and the collective sequence
//!    counter, everyone advances, and a sealing barrier over the merged
//!    group proves the joiner participates.
//!
//! ## The agreement protocol
//!
//! Each member keeps a death bitmap over the member positions, pre-seeded
//! from the membership supervisor's verdicts. The protocol runs passes of
//! ⌈log₂ n⌉ dissemination rounds (round j: position p sends to p+2ʲ,
//! receives from p−2ʲ, over the FULL static member list — exchanges aimed
//! at a corpse fail fast and feed the bitmap). The payload is
//! `[k_run: u32 LE][bitmap]`; `k_run` carries the *minimum* consecutive-
//! clean-pass count seen anywhere, the bitmap is OR-merged. A pass that
//! ends with the bitmap unchanged bumps the local count to `k_run + 1`;
//! any change resets it to 0. A member reaching k ≥ 2 — two globally
//! clean passes, so every live member has disseminated the same bitmap —
//! **decides**, broadcasts a `DECIDED` frame (reserved round 0xFFF), waits
//! for those envelopes to be acknowledged, and only then retires the
//! instance (retiring first would purge the unacknowledged DECIDED
//! retransmission state and strand laggards under loss). A member that
//! sees a `DECIDED` while still mid-pass adopts the decided bitmap,
//! echoes it to the other members (reliable broadcast: the verdict
//! survives the decider dying mid-announcement), and retires its own
//! instance — which fails its still-posted pass receive with a counted
//! revoked completion. Echoes landing on already-retired instances are
//! counted stale and dropped; their envelope acks still flow, so every
//! relay send terminates.
//!
//! Agreement keys (`OP_AGREE`) are epoch-exempt: the whole point is to run
//! *inside* a revoked epoch. Retired-instance filtering still applies, so
//! a finished agreement's stragglers can never revive per-peer state.

use std::sync::atomic::Ordering;

use bytes::Bytes;
use simnet::{NmBuf, SimDuration};

use nmad::keys::{coll_key, instance_of, OP_AGREE, OP_BCAST, OP_JOIN, OP_REDUCE, ROUND_DECIDED};

use crate::api::{MpiHandle, Src};
use crate::collectives::{allreduce_group_recdbl, barrier_group_ep, bcast_group, next_seq};
use crate::progress::NetPath;
use crate::request::Req;
use crate::vc::VcPath;

/// An epoch-stamped communicator: a sorted world-rank member list with a
/// dense re-ranking (`my_pos`).
#[derive(Clone, Debug)]
pub struct Comm {
    epoch: u8,
    members: Vec<usize>,
    my_pos: usize,
}

impl Comm {
    /// The initial world communicator: epoch 0 (or the committed epoch on
    /// a rank that already advanced), all ranks.
    pub fn world(mpi: &MpiHandle) -> Comm {
        let members: Vec<usize> = (0..mpi.size()).collect();
        Comm {
            epoch: crate::collectives::world_epoch(mpi),
            members,
            my_pos: mpi.rank(),
        }
    }

    /// Build a communicator from an explicit sorted member list.
    pub fn from_members(mpi: &MpiHandle, epoch: u8, members: Vec<usize>) -> Comm {
        debug_assert!(members.windows(2).all(|w| w[0] < w[1]), "members must be sorted");
        let my_pos = members
            .iter()
            .position(|&r| r == mpi.rank())
            .expect("caller must be a member");
        Comm {
            epoch,
            members,
            my_pos,
        }
    }

    pub fn epoch(&self) -> u8 {
        self.epoch
    }

    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// This rank's dense position within the communicator.
    pub fn rank(&self) -> usize {
        self.my_pos
    }

    pub fn size(&self) -> usize {
        self.members.len()
    }
}

// ---------------------------------------------------------------------
// Revoke
// ---------------------------------------------------------------------

/// Revoke the communicator's epoch: every in-flight operation keyed to it
/// completes with a counted error, and a poison frame is gossiped to every
/// live peer (sticky — re-revoking is a no-op). Returns whether this call
/// was the first local revocation of the epoch.
pub fn comm_revoke(mpi: &MpiHandle, comm: &Comm) -> bool {
    let sched = mpi.ctx.scheduler();
    let fresh = match &mpi.state.net {
        NetPath::Direct(core) => core.revoke_epoch(&sched, comm.epoch as u32),
        _ => false,
    };
    // Flush the gossip now instead of at the next wait: the poison should
    // race ahead of any further traffic the application produces.
    mpi.state.progress_cycle(&sched);
    fresh
}

// ---------------------------------------------------------------------
// Fault-tolerant agreement
// ---------------------------------------------------------------------

/// What a pass-round receive resolved to.
enum PassRecv {
    /// The partner's `[k_run][bitmap]` payload.
    Data(Bytes),
    /// The partner is dead / the op was revoked (the receive was posted
    /// from a specific rank, so the corpse is the round's `from`).
    Failed,
    /// A DECIDED frame is waiting from this gate; the receive stays posted
    /// (retiring the instance will fail it).
    Decided(usize),
}

const AGREE_FINE_POLLS: u32 = 100;
const AGREE_MAX_BACKOFF: SimDuration = SimDuration::micros(2);

/// Block until `req` completes or a DECIDED frame for this agreement
/// instance shows up in the unexpected queues, whichever happens first.
fn wait_recv_or_decided(mpi: &MpiHandle, req: Req, decided_key: u64) -> PassRecv {
    let sched = mpi.ctx.scheduler();
    let mut polls = 0u32;
    let mut step = mpi.state.costs.poll_gran;
    loop {
        mpi.state.progress_cycle(&sched);
        if mpi.state.reqs.is_done(req) {
            let (d, _) = mpi.state.wait(&mpi.ctx, req);
            return match mpi.state.reqs.failed_peer(req) {
                Some(_) => PassRecv::Failed,
                None => PassRecv::Data(d.expect("agreement payload")),
            };
        }
        if let Some(gate) = mpi.state.iprobe_key(decided_key) {
            return PassRecv::Decided(gate);
        }
        mpi.ctx.advance(step);
        polls += 1;
        if polls > AGREE_FINE_POLLS {
            step = SimDuration::nanos(
                (step.as_nanos() * 3 / 2).min(AGREE_MAX_BACKOFF.as_nanos()),
            );
        }
    }
}

fn bits_to_bytes(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

fn bytes_to_bits(bytes: &[u8], n: usize) -> Vec<bool> {
    (0..n).map(|i| bytes[i / 8] & (1 << (i % 8)) != 0).collect()
}

fn retire(mpi: &MpiHandle, instance: u64) {
    if let NetPath::Direct(core) = &mpi.state.net {
        core.retire_instance(&mpi.ctx.scheduler(), instance);
    }
}

/// Adopt a DECIDED bitmap arriving from `gate`, echo it to the other live
/// members, retire the instance, and consume the pass receive the
/// retirement failed.
fn adopt_decided(
    mpi: &MpiHandle,
    gate: usize,
    decided_key: u64,
    group: &[usize],
    my_pos: usize,
    instance: u64,
    pending: (Req, usize),
) -> Vec<bool> {
    let r = mpi.state.irecv_key(&mpi.ctx, Src::Rank(gate), decided_key);
    let (d, _) = mpi.state.wait(&mpi.ctx, r);
    let bits = bytes_to_bits(&d.expect("DECIDED payload"), group.len());
    // Reliable-broadcast echo: if the decider died mid-announcement, the
    // verdict still reaches everyone through the members it did reach.
    let payload = Bytes::from(bits_to_bytes(&bits));
    let mut sends = Vec::new();
    for (i, &m) in group.iter().enumerate() {
        if i == my_pos || bits[i] || m == gate {
            continue;
        }
        sends.push(
            mpi.state
                .isend_key(&mpi.ctx, m, decided_key, NmBuf::from(payload.clone())),
        );
    }
    for s in sends {
        mpi.state.wait(&mpi.ctx, s);
    }
    retire(mpi, instance);
    // The retirement failed our still-posted pass receive (counted revoked
    // completion) — consume it so the request does not dangle. Only the
    // bypass core retires posted receives; an intra-node receive is left
    // to complete on its own.
    let (req, from) = pending;
    if matches!(mpi.state.vcs.path(from), VcPath::NmadDirect) {
        mpi.state.wait(&mpi.ctx, req);
    }
    bits
}

/// Run fault-tolerant agreement over `group` (world ranks, identical on
/// every caller) and return the agreed-dead member set (world ranks,
/// ascending). All surviving callers return the *same* set, even when
/// members die mid-protocol. `seed_dead` adds locally known corpses to the
/// initial bitmap (e.g. a poison word observed by `try_barrier`).
pub(crate) fn agree_group(
    mpi: &MpiHandle,
    ep: u8,
    seq: u32,
    group: &[usize],
    my_pos: usize,
    seed_dead: &[usize],
) -> Vec<usize> {
    let n = group.len();
    debug_assert_eq!(group[my_pos], mpi.rank());
    let peer_dead = |r: usize| match &mpi.state.net {
        NetPath::Direct(core) => core.is_peer_dead(r),
        _ => false,
    };
    let mut bits = vec![false; n];
    for (i, &r) in group.iter().enumerate() {
        if i != my_pos && (seed_dead.contains(&r) || peer_dead(r) || mpi.state.vcs.is_retired(r))
        {
            bits[i] = true;
        }
    }
    if n <= 1 {
        return Vec::new();
    }
    let decided_key = coll_key(ep, OP_AGREE, ROUND_DECIDED, seq);
    let instance = instance_of(decided_key);
    let mut k: u32 = 0;
    let mut pass: u16 = 0;
    let decided_bits: Vec<bool> = 'outer: loop {
        assert!(pass < 128, "agreement exceeded its pass budget");
        let snapshot = bits.clone();
        let mut k_run = k;
        let mut dist = 1usize;
        let mut j = 0u16;
        while dist < n {
            let to_pos = (my_pos + dist) % n;
            let from_pos = (my_pos + n - dist) % n;
            let (to, from) = (group[to_pos], group[from_pos]);
            let key = coll_key(ep, OP_AGREE, (pass << 5) | j, seq);
            let mut payload = Vec::with_capacity(4 + n.div_ceil(8));
            payload.extend_from_slice(&k_run.to_le_bytes());
            payload.extend_from_slice(&bits_to_bytes(&bits));
            let r = mpi.state.irecv_key(&mpi.ctx, Src::Rank(from), key);
            let s = mpi
                .state
                .isend_key(&mpi.ctx, to, key, NmBuf::from(Bytes::from(payload)));
            mpi.state.wait(&mpi.ctx, s);
            if mpi.state.reqs.failed_peer(s).is_some() {
                bits[to_pos] = true;
            }
            match wait_recv_or_decided(mpi, r, decided_key) {
                PassRecv::Data(d) => {
                    let their_k = u32::from_le_bytes(d[..4].try_into().unwrap());
                    k_run = k_run.min(their_k);
                    for (i, b) in bytes_to_bits(&d[4..], n).into_iter().enumerate() {
                        bits[i] |= b;
                    }
                }
                PassRecv::Failed => {
                    bits[from_pos] = true;
                }
                PassRecv::Decided(gate) => {
                    break 'outer adopt_decided(
                        mpi,
                        gate,
                        decided_key,
                        group,
                        my_pos,
                        instance,
                        (r, from),
                    );
                }
            }
            dist <<= 1;
            j += 1;
        }
        k = if bits == snapshot { k_run + 1 } else { 0 };
        if k >= 2 {
            // Decide. Broadcast DECIDED, then WAIT for every envelope ack
            // BEFORE retiring: retiring first would purge the unacked
            // DECIDED retransmission state (same instance) and a lost
            // frame could never be repaired.
            let payload = Bytes::from(bits_to_bytes(&bits));
            let mut sends = Vec::new();
            for (i, &m) in group.iter().enumerate() {
                if i == my_pos || bits[i] {
                    continue;
                }
                sends.push(
                    mpi.state
                        .isend_key(&mpi.ctx, m, decided_key, NmBuf::from(payload.clone())),
                );
            }
            for s in sends {
                mpi.state.wait(&mpi.ctx, s);
            }
            retire(mpi, instance);
            break 'outer bits;
        }
        pass += 1;
    };
    group
        .iter()
        .enumerate()
        .filter(|&(i, _)| decided_bits[i])
        .map(|(_, &r)| r)
        .collect()
}

/// Fault-tolerant agreement over the communicator's members: returns the
/// agreed-dead set (world ranks, ascending), identical on every surviving
/// member.
pub fn comm_agree(mpi: &MpiHandle, comm: &Comm) -> Vec<usize> {
    let seq = next_seq(mpi);
    agree_group(mpi, comm.epoch, seq, &comm.members, comm.my_pos, &[])
}

// ---------------------------------------------------------------------
// Shrink and join
// ---------------------------------------------------------------------

/// Shrink: agree on the survivor set, advance to a fresh epoch, densely
/// re-rank, and seal the new communicator with its first barrier. Every
/// surviving member returns an identical communicator.
pub fn comm_shrink(mpi: &MpiHandle, comm: &Comm) -> Comm {
    let seq = next_seq(mpi);
    let dead = agree_group(mpi, comm.epoch, seq, &comm.members, comm.my_pos, &[]);
    let members: Vec<usize> = comm
        .members
        .iter()
        .copied()
        .filter(|r| !dead.contains(r))
        .collect();
    let new_epoch = comm.epoch.checked_add(1).expect("epoch space exhausted");
    if let NetPath::Direct(core) = &mpi.state.net {
        let sched = mpi.ctx.scheduler();
        // The agreement's verdict is authoritative: members that never
        // charged a timeout at the corpse themselves adopt it now, so the
        // drain reclaims their per-peer state too (sticky — a repeat on a
        // locally-detected corpse is a no-op).
        for &d in &dead {
            core.declare_peer_dead(&sched, d);
        }
        core.advance_epoch(&sched, new_epoch);
    }
    let my_pos = members
        .iter()
        .position(|&r| r == mpi.rank())
        .expect("a shrinking caller must be a survivor");
    let next = Comm {
        epoch: new_epoch,
        members,
        my_pos,
    };
    // Seal: the first collective of the new epoch. Frames of the old epoch
    // arriving after this point are counted stale and dropped.
    let seal = next_seq(mpi);
    barrier_group_ep(mpi, next.epoch, seal, &next.members, next.my_pos);
    next
}

/// Admit `joiner` into the next epoch (run by every *current* member with
/// identical arguments; the joiner runs [`comm_join`]). The leader
/// (position 0) hands the joiner the roster, the new epoch, and the
/// collective sequence counter; everyone advances and seals the merged
/// communicator with a barrier the joiner participates in.
pub fn comm_accept(mpi: &MpiHandle, comm: &Comm, joiner: usize, join_seq: u32) -> Comm {
    debug_assert!(!comm.members.contains(&joiner), "joiner already a member");
    // Pre-join sync: nobody may touch the joiner before everyone is here.
    let pre = next_seq(mpi);
    barrier_group_ep(mpi, comm.epoch, pre, &comm.members, comm.my_pos);
    let new_epoch = comm.epoch.checked_add(1).expect("epoch space exhausted");
    if comm.my_pos == 0 {
        // Roster payload: [new_epoch u8][coll_seq u32][n u32][member u32 …].
        // The counter synchronizes the joiner's collective sequence space
        // with the members' (they advance in lockstep from here on).
        let seqv = mpi.state.coll_seq.load(Ordering::Relaxed);
        let mut payload = vec![new_epoch];
        payload.extend_from_slice(&seqv.to_le_bytes());
        payload.extend_from_slice(&(comm.members.len() as u32).to_le_bytes());
        for &m in &comm.members {
            payload.extend_from_slice(&(m as u32).to_le_bytes());
        }
        let k0 = coll_key(0, OP_JOIN, 0, join_seq);
        let k1 = coll_key(0, OP_JOIN, 1, join_seq);
        let s = mpi
            .state
            .isend_key(&mpi.ctx, joiner, k0, NmBuf::from(Bytes::from(payload)));
        let r = mpi.state.irecv_key(&mpi.ctx, Src::Rank(joiner), k1);
        mpi.state.wait(&mpi.ctx, s);
        mpi.state.wait(&mpi.ctx, r);
    }
    if let NetPath::Direct(core) = &mpi.state.net {
        core.advance_epoch(&mpi.ctx.scheduler(), new_epoch);
    }
    let mut members = comm.members.clone();
    members.push(joiner);
    members.sort_unstable();
    let my_pos = members
        .iter()
        .position(|&r| r == mpi.rank())
        .expect("accepting member vanished from the merge");
    let next = Comm {
        epoch: new_epoch,
        members,
        my_pos,
    };
    let seal = next_seq(mpi);
    barrier_group_ep(mpi, next.epoch, seal, &next.members, next.my_pos);
    next
}

/// Join an existing communicator as a late arrival: receive the roster
/// from `leader`, acknowledge, adopt the members' collective sequence
/// counter and epoch, and participate in the sealing barrier.
pub fn comm_join(mpi: &MpiHandle, leader: usize, join_seq: u32) -> Comm {
    let k0 = coll_key(0, OP_JOIN, 0, join_seq);
    let k1 = coll_key(0, OP_JOIN, 1, join_seq);
    let r = mpi.state.irecv_key(&mpi.ctx, Src::Rank(leader), k0);
    let (d, _) = mpi.state.wait(&mpi.ctx, r);
    let d = d.expect("join roster");
    let new_epoch = d[0];
    let seqv = u32::from_le_bytes(d[1..5].try_into().unwrap());
    let n = u32::from_le_bytes(d[5..9].try_into().unwrap()) as usize;
    let mut members: Vec<usize> = (0..n)
        .map(|i| u32::from_le_bytes(d[9 + 4 * i..13 + 4 * i].try_into().unwrap()) as usize)
        .collect();
    mpi.state.coll_seq.store(seqv, Ordering::Relaxed);
    let s = mpi.state.isend_key(&mpi.ctx, leader, k1, NmBuf::default());
    mpi.state.wait(&mpi.ctx, s);
    if let NetPath::Direct(core) = &mpi.state.net {
        core.advance_epoch(&mpi.ctx.scheduler(), new_epoch);
    }
    members.push(mpi.rank());
    members.sort_unstable();
    let my_pos = members
        .iter()
        .position(|&r| r == mpi.rank())
        .expect("joiner vanished from its own merge");
    let next = Comm {
        epoch: new_epoch,
        members,
        my_pos,
    };
    let seal = next_seq(mpi);
    barrier_group_ep(mpi, next.epoch, seal, &next.members, next.my_pos);
    next
}

// ---------------------------------------------------------------------
// Communicator-scoped collectives
// ---------------------------------------------------------------------

/// Dissemination barrier over the communicator (keys carry its epoch).
pub fn comm_barrier(mpi: &MpiHandle, comm: &Comm) {
    let seq = next_seq(mpi);
    barrier_group_ep(mpi, comm.epoch, seq, &comm.members, comm.my_pos);
}

/// Sum-allreduce over the communicator (recursive doubling).
pub fn comm_allreduce_sum(mpi: &MpiHandle, comm: &Comm, contrib: &[f64]) -> Vec<f64> {
    let seq = next_seq(mpi);
    let mut acc = contrib.to_vec();
    allreduce_group_recdbl(
        mpi,
        comm.epoch,
        OP_REDUCE,
        seq,
        2,
        &comm.members,
        comm.my_pos,
        &mut acc,
    );
    acc
}

/// Binomial broadcast over the communicator from dense position
/// `root_pos`.
pub fn comm_bcast(mpi: &MpiHandle, comm: &Comm, root_pos: usize, data: Option<Bytes>) -> Bytes {
    let seq = next_seq(mpi);
    let key = coll_key(comm.epoch, OP_BCAST, 0, seq);
    let mut payload = if comm.my_pos == root_pos {
        NmBuf::from(data.expect("bcast root must supply data"))
    } else {
        NmBuf::default()
    };
    bcast_group(mpi, key, &comm.members, root_pos, comm.my_pos, &mut payload);
    payload.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_codec_roundtrip() {
        for n in [1usize, 7, 8, 9, 64, 65] {
            let bits: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            assert_eq!(bytes_to_bits(&bits_to_bytes(&bits), n), bits);
        }
    }

    #[test]
    fn decided_key_shares_the_pass_instance() {
        let pass_key = coll_key(2, OP_AGREE, (3 << 5) | 1, 42);
        let decided = coll_key(2, OP_AGREE, ROUND_DECIDED, 42);
        assert_eq!(instance_of(pass_key), instance_of(decided));
    }
}
