//! The per-rank process state and the progress engine.
//!
//! [`ProcState`] ties everything together for one MPI process: the request
//! table, the VC table, the CH3 engine + transports, the NewMadeleine core
//! (on bypass stacks), the ANY_SOURCE lists, and — when PIOMan is enabled —
//! the semaphore-based waiting of §3.3.2.
//!
//! One **progress cycle** ([`ProcState::progress_cycle`]) is the unit of
//! work both progress modes share:
//!
//! 1. drive NewMadeleine (`nm_schedule`) or the CH3 network transport and
//!    apply its completions,
//! 2. drain the shared-memory channel through the CH3 engine,
//! 3. run the ANY_SOURCE probes of §3.2.2.
//!
//! Without PIOMan, the cycle runs inside the application's wait loops
//! (busy-wait polling, `poll_gran` steps). With PIOMan, ranks block on a
//! semaphore and the cycle runs as a PIOMan ltask after each event kick —
//! with the measured synchronization costs as reaction latency, and
//! per-message completion costs applied as completion *delays* (the work
//! happens on another core, but the requester still observes it).

use std::collections::VecDeque;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use simnet::{CopyMeter, NmBuf, RankCtx, Scheduler, SimDuration, SimSemaphore};

use nemesis::ShmModel;
use nmad::sr::CompletionKind;
use nmad::NmCore;
use piom::PiomServer;

use crate::anysource::AnySourceLists;
use crate::api::{Src, Status};
use crate::ch3::{Ch3Engine, Ch3Event, Ch3Pkt};
use crate::costs::SoftwareCosts;
use crate::request::{NmadBinding, Req, ReqKind, ReqPath, RequestTable};
use crate::transport::Ch3Transport;
use crate::vc::{VcPath, VcTable};

/// Number of fine-grained polls before a waiting rank starts backing off.
/// Covers ~5 µs at the default 50 ns granularity — several times any
/// calibrated small-message latency.
const FINE_POLLS: u32 = 100;

/// Ceiling on the poll back-off step. Bounds the timing error of long
/// waits to ~2 µs (negligible against the millisecond transfers that
/// reach it) while keeping event counts tractable.
const MAX_POLL_BACKOFF: SimDuration = SimDuration::micros(2);

/// Waits that survive this many polls (≈ 2 ms of simulated spinning) are
/// bulk transfers; their step may grow to [`BULK_POLL_BACKOFF`] (0.1 %
/// error on a 10 ms transfer) so NAS-scale volumes stay cheap to simulate.
const BULK_POLLS: u32 = 1_000;
const BULK_POLL_BACKOFF: SimDuration = SimDuration::micros(10);

/// Self-wake period for PIOMan waiters while the retry transport is
/// active: if a lost packet killed the whole kick chain, the blocked rank
/// re-drives its own progress cycle (and thus the retransmission sweep)
/// at this cadence instead of sleeping forever.
const RETRY_WAKE: SimDuration = SimDuration::micros(100);

/// User-level communicator context (COMM_WORLD point-to-point).
/// Re-exported from the canonical key layout in `nmad::keys` — the core's
/// epoch hygiene (stale-frame filtering, revoke quiesce) decodes the same
/// bit layout the MPI layer encodes.
pub const USER_CTX: u16 = nmad::keys::USER_CTX;
/// Context reserved for the collectives in `collectives.rs`.
pub const COLL_CTX: u16 = nmad::keys::COLL_CTX;

/// Combine a context id and tag into the 64-bit matching key.
#[inline]
pub fn key_of(ctx: u16, tag: u32) -> u64 {
    ((ctx as u64) << 48) | tag as u64
}

/// Recover the user tag from a key.
#[inline]
pub fn tag_of(key: u64) -> u32 {
    (key & 0xffff_ffff) as u32
}

/// The inter-node path of this stack.
pub enum NetPath {
    /// No remote peers (single-node job).
    None,
    /// The bypass: CH3 calls NewMadeleine directly (§3.1).
    Direct(Arc<NmCore>),
    /// CH3 protocols over a packet transport (legacy netmod / baselines).
    Ch3(Arc<dyn Ch3Transport>),
}

/// Everything one rank's MPI library knows.
pub struct ProcState {
    pub rank: usize,
    pub size: usize,
    pub reqs: RequestTable,
    pub vcs: VcTable,
    pub engine: Ch3Engine,
    pub shm: Option<Arc<dyn Ch3Transport>>,
    pub shm_model: Option<ShmModel>,
    pub net: NetPath,
    /// Eager/rendezvous boundary on the CH3 network path.
    pub net_eager_limit: usize,
    pub anysource: AnySourceLists,
    pub costs: SoftwareCosts,
    /// Job-wide copy accounting: MPI-ingress copies are charged here and
    /// the meter rides along inside every payload handle.
    pub meter: Arc<CopyMeter>,
    /// Observability handle (inert unless the job armed `ObsConfig`):
    /// progress-engine counters land in the shared metrics registry.
    pub rec: obs::RankRec,
    pub piom: Option<Arc<PiomServer>>,
    /// Wake semaphore for blocked waiters (PIOMan mode).
    pub wake: SimSemaphore,
    /// Packets a rank sent to itself, pending local delivery.
    selfq: Mutex<VecDeque<Ch3Pkt>>,
    /// Collective-operation sequence number (all ranks call collectives in
    /// the same order, so the counters agree across the job).
    pub(crate) coll_seq: std::sync::atomic::AtomicU32,
    /// This rank simulated a crash: its NewMadeleine core is halted and
    /// finalize must not drain (a corpse owes the network nothing).
    pub(crate) crashed: std::sync::atomic::AtomicBool,
    /// Collectives aborted because a member died mid-protocol (the
    /// fail-fast outcome of `try_barrier_group` and friends).
    pub(crate) coll_aborts: std::sync::atomic::AtomicU64,
}

impl ProcState {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rank: usize,
        size: usize,
        vcs: VcTable,
        engine: Ch3Engine,
        shm: Option<Arc<dyn Ch3Transport>>,
        shm_model: Option<ShmModel>,
        net: NetPath,
        net_eager_limit: usize,
        costs: SoftwareCosts,
        meter: Arc<CopyMeter>,
        rec: obs::RankRec,
        piom: Option<Arc<PiomServer>>,
    ) -> Arc<ProcState> {
        Arc::new(ProcState {
            rank,
            size,
            reqs: RequestTable::new(),
            vcs,
            engine,
            shm,
            shm_model,
            net,
            net_eager_limit,
            anysource: AnySourceLists::new(),
            costs,
            meter,
            rec,
            piom,
            wake: SimSemaphore::new(format!("mpi-wake-{rank}")),
            selfq: Mutex::new(VecDeque::new()),
            coll_seq: std::sync::atomic::AtomicU32::new(0),
            crashed: std::sync::atomic::AtomicBool::new(false),
            coll_aborts: std::sync::atomic::AtomicU64::new(0),
        })
    }

    // ------------------------------------------------------------------
    // Posting operations
    // ------------------------------------------------------------------

    /// Nonblocking send (MPID_Isend). Charges the sender-side software
    /// cost on the caller's clock. The payload handle flows down the whole
    /// stack without further copies; unmetered handles pick up the job
    /// meter here.
    pub fn isend(
        self: &Arc<Self>,
        ctx: &RankCtx,
        dst: usize,
        tag: u32,
        data: impl Into<NmBuf>,
    ) -> Req {
        self.isend_key(ctx, dst, key_of(USER_CTX, tag), data.into())
    }

    pub(crate) fn isend_key(
        self: &Arc<Self>,
        ctx: &RankCtx,
        dst: usize,
        key: u64,
        data: impl Into<NmBuf>,
    ) -> Req {
        let data = data.into();
        let data = if data.meter().is_none() {
            data.with_meter(&self.meter)
        } else {
            data
        };
        assert!(dst < self.size, "send to rank {dst} of {}", self.size);
        let sched = ctx.scheduler();
        match self.vcs.path(dst) {
            VcPath::SelfLoop => {
                let req = self.reqs.create(ReqKind::Send, ReqPath::SelfLoop);
                self.selfq.lock().push_back(Ch3Pkt::Eager { key, data });
                self.reqs.complete_send(req);
                self.drain_selfq(&sched);
                req
            }
            VcPath::Shm => {
                let req = self.reqs.create(ReqKind::Send, ReqPath::Shm);
                let model = self.shm_model.expect("shm path without shm model");
                ctx.advance(self.costs.shm_send + model.send_cpu_cost(data.len()));
                let shm = Arc::clone(self.shm.as_ref().expect("shm path without channel"));
                let mut send =
                    |s: &Scheduler, d: usize, p: Ch3Pkt| shm.send_pkt(s, d, p);
                // The cell queues fragment + flow-control any size: always
                // eager on the shm path.
                let done =
                    self.engine
                        .send_msg(&sched, &mut send, req, dst, key, data, usize::MAX);
                debug_assert!(done);
                self.reqs.complete_send(req);
                req
            }
            VcPath::NmadDirect => {
                // §3.1.2: MPID_Send resolves directly to the NewMadeleine
                // send for remote destinations.
                let req = self.reqs.create(ReqKind::Send, ReqPath::Net);
                ctx.advance(self.costs.net_send);
                let core = match &self.net {
                    NetPath::Direct(c) => c,
                    _ => unreachable!("NmadDirect VC without a core"),
                };
                let nm = core.isend(&sched, dst, key, data, req.0 as u64);
                self.reqs.bind_nmad(req, NmadBinding::Send(nm));
                // With PIOMan the submission is offloaded: an idle core
                // will commit the window after the sync cost (§2.2.2,
                // "offloading eager messages submission").
                if let Some(p) = &self.piom {
                    p.kick_net(&sched);
                }
                req
            }
            VcPath::Ch3Net => {
                let req = self.reqs.create(ReqKind::Send, ReqPath::Net);
                ctx.advance(self.costs.net_send);
                let t = match &self.net {
                    NetPath::Ch3(t) => Arc::clone(t),
                    _ => unreachable!("Ch3Net VC without a transport"),
                };
                let mut send = |s: &Scheduler, d: usize, p: Ch3Pkt| t.send_pkt(s, d, p);
                let done = self.engine.send_msg(
                    &sched,
                    &mut send,
                    req,
                    dst,
                    key,
                    data,
                    self.net_eager_limit,
                );
                if done {
                    self.reqs.complete_send(req);
                }
                if let Some(p) = &self.piom {
                    p.kick_net(&sched);
                }
                req
            }
        }
    }

    /// Nonblocking receive (MPID_Irecv).
    pub fn irecv(self: &Arc<Self>, ctx: &RankCtx, src: Src, tag: u32) -> Req {
        self.irecv_key(ctx, src, key_of(USER_CTX, tag))
    }

    pub(crate) fn irecv_key(self: &Arc<Self>, ctx: &RankCtx, src: Src, key: u64) -> Req {
        let sched = ctx.scheduler();
        match src {
            Src::Rank(s) => {
                assert!(s < self.size, "recv from rank {s} of {}", self.size);
                match self.vcs.path(s) {
                    VcPath::SelfLoop => {
                        let req = self.reqs.create(ReqKind::Recv, ReqPath::SelfLoop);
                        self.post_ch3_recv(&sched, req, Some(s), key);
                        self.drain_selfq(&sched);
                        req
                    }
                    VcPath::Shm => {
                        let req = self.reqs.create(ReqKind::Recv, ReqPath::Shm);
                        self.post_ch3_recv(&sched, req, Some(s), key);
                        req
                    }
                    VcPath::NmadDirect => {
                        let req = self.reqs.create(ReqKind::Recv, ReqPath::Net);
                        // §3.2.2 ordering: while an ANY_SOURCE receive with
                        // this tag is pending, same-tag specific receives
                        // must queue behind it.
                        if !self.anysource.try_park_specific(key, req, s) {
                            let core = match &self.net {
                                NetPath::Direct(c) => c,
                                _ => unreachable!(),
                            };
                            let nm = core.irecv(&sched, s, key, req.0 as u64);
                            self.reqs.bind_nmad(req, NmadBinding::Recv(nm));
                        }
                        req
                    }
                    VcPath::Ch3Net => {
                        let req = self.reqs.create(ReqKind::Recv, ReqPath::Net);
                        self.post_ch3_recv(&sched, req, Some(s), key);
                        req
                    }
                }
            }
            Src::Any => {
                let req = self.reqs.create(ReqKind::RecvAnySource, ReqPath::Unknown);
                // The CH3 queues serve intra-node arrivals (and ALL
                // arrivals on non-bypass stacks).
                let flag = self.post_ch3_recv_flag(&sched, req, None, key);
                if let (NetPath::Direct(_), Some(flag)) = (&self.net, flag) {
                    if self.vcs.has_remote() {
                        // Bypass stack: inter-node ANY_SOURCE needs the
                        // §3.2 lists.
                        self.anysource.register_any(key, req, flag);
                    }
                }
                req
            }
        }
    }

    /// Post into the CH3 queues, applying any immediate completion.
    fn post_ch3_recv(self: &Arc<Self>, sched: &Scheduler, req: Req, src: Option<usize>, key: u64) {
        let _ = self.post_ch3_recv_flag(sched, req, src, key);
    }

    fn post_ch3_recv_flag(
        self: &Arc<Self>,
        sched: &Scheduler,
        req: Req,
        src: Option<usize>,
        key: u64,
    ) -> Option<crate::queues::ActiveFlag> {
        let mut events = Vec::new();
        let flag = {
            let this = Arc::clone(self);
            let mut send =
                move |s: &Scheduler, d: usize, p: Ch3Pkt| this.send_ch3_pkt(s, d, p);
            let (ev, flag) = self.engine.post_recv(sched, &mut send, req, src, key);
            if let Some(e) = ev {
                events.push(e);
            }
            flag
        };
        for e in events {
            self.apply_ch3_event(sched, e);
        }
        flag
    }

    // ------------------------------------------------------------------
    // The progress cycle
    // ------------------------------------------------------------------

    /// Run one progress cycle. Pure with respect to the caller's clock —
    /// timing costs are charged by waiters (app-polling) or as completion
    /// delays (PIOMan).
    pub fn progress_cycle(self: &Arc<Self>, sched: &Scheduler) {
        self.rec.inc("mpi.progress_cycles", 1);
        // 1. Inter-node.
        match &self.net {
            NetPath::Direct(core) => {
                let core = Arc::clone(core);
                core.schedule(sched);
                self.drain_nm(sched, &core);
                // Promote fresh death verdicts from the membership
                // supervisor into MPI-layer state: tear down the VC and
                // fail any ANY_SOURCE-parked specifics aimed at the corpse
                // (they would otherwise wait forever behind a head that can
                // never match them from that source).
                for peer in core.take_dead_peers() {
                    self.vcs.retire(peer);
                    self.rec.inc("mpi.peer_deaths", 1);
                    for rel in self.anysource.purge_src(peer) {
                        self.finish_recv_failed(sched, rel.req, peer);
                    }
                }
                // Revoke gossip (DESIGN.md §13): every epoch this rank just
                // learned is revoked — locally or from a peer's poison
                // frame — is forwarded once to every live remote peer.
                // `learn_revoke` is sticky, so the flood terminates after
                // each rank relays each epoch at most once.
                for epoch in core.take_revoked_epochs() {
                    self.rec.inc("mpi.revokes", 1);
                    for dst in self.vcs.remote_peers() {
                        if !self.vcs.is_retired(dst) && !core.is_peer_dead(dst) {
                            core.send_revoke(sched, dst, epoch);
                        }
                    }
                }
            }
            NetPath::Ch3(t) => {
                let t = Arc::clone(t);
                let pkts = t.progress(sched);
                self.feed_ch3(sched, pkts);
            }
            NetPath::None => {}
        }
        // 2. Intra-node.
        if let Some(t) = &self.shm {
            let t = Arc::clone(t);
            let pkts = t.progress(sched);
            self.feed_ch3(sched, pkts);
        }
        self.drain_selfq(sched);
        // 3. ANY_SOURCE probes (§3.2.2: "every time Nemesis polls for
        // incoming messages, we probe NewMadeleine").
        if let NetPath::Direct(core) = &self.net {
            let core = Arc::clone(core);
            let mut posted_any = false;
            for (key, req) in self.anysource.heads_to_probe() {
                if let Some(gate) = core.probe_tag(key) {
                    let nm = core.irecv(sched, gate.0, key, req.0 as u64);
                    self.reqs.bind_nmad(req, NmadBinding::Recv(nm));
                    self.reqs.set_path(req, ReqPath::Net);
                    self.anysource.mark_posted(key, gate.0);
                    posted_any = true;
                }
            }
            if posted_any {
                // The dynamically created request completes immediately
                // (the message already sits in NewMadeleine's buffers) —
                // surface it in this same cycle.
                self.drain_nm(sched, &core);
            }
        }
        // 4. Final flush: packets produced while processing inbound traffic
        // (CTS → DATA, forwarded collectives, …) must leave before the
        // application regains control — their senders' requests may already
        // read complete.
        match &self.net {
            NetPath::Ch3(t) => t.flush(sched),
            NetPath::Direct(core) => core.schedule(sched),
            NetPath::None => {}
        }
    }

    /// Apply NewMadeleine completions to the MPI request table.
    fn drain_nm(self: &Arc<Self>, sched: &Scheduler, core: &Arc<NmCore>) {
        for c in core.drain_completions() {
            let req = Req(c.cookie as u32);
            match c.kind {
                CompletionKind::Send => self.finish_send(sched, req),
                CompletionKind::Recv { data, gate, tag } => {
                    let status = Status {
                        source: gate.0,
                        tag: tag_of(tag),
                        len: data.len(),
                    };
                    // If this was an ANY_SOURCE head, its parked specifics
                    // can now flow to NewMadeleine.
                    let releases = self.anysource.on_complete(req);
                    for r in releases {
                        let nm = core.irecv(sched, r.src, r.key, r.req.0 as u64);
                        self.reqs.bind_nmad(r.req, NmadBinding::Recv(nm));
                    }
                    self.finish_recv(sched, req, data, status);
                }
                // Membership drain verdicts (§2.2.1 no-cancel rule): the
                // operation is over, but with an error instead of data.
                CompletionKind::SendFailed { peer } => {
                    self.rec.inc("mpi.send_failures", 1);
                    self.finish_send_failed(sched, req, peer);
                }
                CompletionKind::RecvFailed { gate, tag: _ } => {
                    self.rec.inc("mpi.recv_failures", 1);
                    // A failed ANY_SOURCE head still releases its parked
                    // specifics — those target other (possibly live) peers.
                    let releases = self.anysource.on_complete(req);
                    for r in releases {
                        let nm = core.irecv(sched, r.src, r.key, r.req.0 as u64);
                        self.reqs.bind_nmad(r.req, NmadBinding::Recv(nm));
                    }
                    self.finish_recv_failed(sched, req, gate.0);
                }
                // Revoke quiesce verdicts: the operation's epoch was torn
                // down. Like the membership drain, the request finishes —
                // with an error naming the revoked epoch instead of a
                // corpse.
                CompletionKind::SendRevoked { peer, epoch } => {
                    self.rec.inc("mpi.send_revocations", 1);
                    self.reqs.complete_send_revoked(req, peer, epoch);
                    if self.piom.is_some() {
                        self.wake.signal(sched);
                    }
                }
                CompletionKind::RecvRevoked { gate, tag: _, epoch } => {
                    self.rec.inc("mpi.recv_revocations", 1);
                    // Same release discipline as RecvFailed: a revoked
                    // ANY_SOURCE head must not strand its parked specifics.
                    let releases = self.anysource.on_complete(req);
                    for r in releases {
                        let nm = core.irecv(sched, r.src, r.key, r.req.0 as u64);
                        self.reqs.bind_nmad(r.req, NmadBinding::Recv(nm));
                    }
                    self.reqs.complete_recv_revoked(req, gate.0, epoch);
                    if self.piom.is_some() {
                        self.wake.signal(sched);
                    }
                }
            }
        }
    }

    /// Route CH3 packets produced by the engine toward their destination.
    fn send_ch3_pkt(self: &Arc<Self>, sched: &Scheduler, dst: usize, pkt: Ch3Pkt) {
        match self.vcs.path(dst) {
            VcPath::SelfLoop => self.selfq.lock().push_back(pkt),
            VcPath::Shm => self
                .shm
                .as_ref()
                .expect("shm packet without channel")
                .send_pkt(sched, dst, pkt),
            VcPath::Ch3Net => match &self.net {
                NetPath::Ch3(t) => t.send_pkt(sched, dst, pkt),
                _ => unreachable!("Ch3Net VC without transport"),
            },
            VcPath::NmadDirect => {
                unreachable!("CH3 protocol packet on the bypass path")
            }
        }
    }

    /// Feed inbound CH3 packets through the protocol engine.
    fn feed_ch3(self: &Arc<Self>, sched: &Scheduler, pkts: Vec<(usize, Ch3Pkt)>) {
        if pkts.is_empty() {
            return;
        }
        let mut events = Vec::new();
        {
            let this = Arc::clone(self);
            let mut send =
                move |s: &Scheduler, d: usize, p: Ch3Pkt| this.send_ch3_pkt(s, d, p);
            for (src, pkt) in pkts {
                self.engine.on_packet(sched, &mut send, src, pkt, &mut events);
            }
        }
        for e in events {
            self.apply_ch3_event(sched, e);
        }
    }

    /// Deliver packets this rank sent to itself.
    fn drain_selfq(self: &Arc<Self>, sched: &Scheduler) {
        loop {
            let pkt = match self.selfq.lock().pop_front() {
                Some(p) => p,
                None => return,
            };
            self.feed_ch3(sched, vec![(self.rank, pkt)]);
        }
    }

    fn apply_ch3_event(self: &Arc<Self>, sched: &Scheduler, e: Ch3Event) {
        match e {
            Ch3Event::SendDone { req } => self.finish_send(sched, req),
            Ch3Event::RecvDone {
                req,
                data,
                src,
                key,
                was_any,
            } => {
                let status = Status {
                    source: src,
                    tag: tag_of(key),
                    len: data.len(),
                };
                // Record which path actually served the request (drives
                // completion-cost selection for ANY_SOURCE).
                let path = match self.vcs.path(src) {
                    VcPath::SelfLoop => ReqPath::SelfLoop,
                    VcPath::Shm => ReqPath::Shm,
                    _ => ReqPath::Net,
                };
                if self.reqs.path(req) == ReqPath::Unknown {
                    self.reqs.set_path(req, path);
                }
                if was_any {
                    // Intra-node match of a listed ANY_SOURCE request:
                    // remove its entry and release parked specifics
                    // (§3.2.2, final paragraph).
                    let releases = self.anysource.on_complete(req);
                    if let NetPath::Direct(core) = &self.net {
                        for r in releases {
                            let nm = core.irecv(sched, r.src, r.key, r.req.0 as u64);
                            self.reqs.bind_nmad(r.req, NmadBinding::Recv(nm));
                        }
                    } else {
                        debug_assert!(releases.is_empty());
                    }
                }
                self.finish_recv(sched, req, data, status);
            }
        }
    }

    // ------------------------------------------------------------------
    // Completion, costs, waiting
    // ------------------------------------------------------------------

    /// The receiver-side software cost of observing this completion.
    pub fn completion_cost(&self, req: Req) -> SimDuration {
        let kind = self.reqs.kind(req);
        if kind == ReqKind::Send {
            return SimDuration::ZERO; // sender cost charged at isend
        }
        let base = match self.reqs.path(req) {
            ReqPath::Net | ReqPath::Unknown => self.costs.net_recv,
            ReqPath::Shm => {
                let model = self.shm_model.expect("shm completion without model");
                let len = self
                    .reqs
                    .status(req)
                    .map(|s| s.len)
                    .unwrap_or(0);
                self.costs.shm_recv + model.recv_cpu_cost(len)
            }
            ReqPath::SelfLoop => SimDuration::nanos(50),
        };
        if kind == ReqKind::RecvAnySource {
            base + self.costs.anysource_extra
        } else {
            base
        }
    }

    fn finish_send(self: &Arc<Self>, sched: &Scheduler, req: Req) {
        match &self.piom {
            Some(_) => {
                self.reqs.complete_send(req);
                self.wake.signal(sched);
            }
            None => self.reqs.complete_send(req),
        }
    }

    /// Terminal failure of a send: destination declared dead. No completion
    /// delay — there is no payload work, only the verdict.
    fn finish_send_failed(self: &Arc<Self>, sched: &Scheduler, req: Req, peer: usize) {
        self.reqs.complete_send_failed(req, peer);
        if self.piom.is_some() {
            self.wake.signal(sched);
        }
    }

    /// Terminal failure of a receive: its source was declared dead and the
    /// membership drain aborted the posted operation.
    fn finish_recv_failed(self: &Arc<Self>, sched: &Scheduler, req: Req, peer: usize) {
        self.reqs.complete_recv_failed(req, peer);
        if self.piom.is_some() {
            self.wake.signal(sched);
        }
    }

    fn finish_recv(self: &Arc<Self>, sched: &Scheduler, req: Req, data: Bytes, status: Status) {
        match &self.piom {
            Some(_) => {
                // The completion work runs on the progress core; the
                // requester observes it after that work's cost.
                let cost = self.completion_cost_precompute(req, status.len);
                let this = Arc::clone(self);
                sched.schedule_in(cost, move |s| {
                    this.reqs.complete_recv(req, data, status);
                    this.wake.signal(s);
                });
            }
            None => self.reqs.complete_recv(req, data, status),
        }
    }

    /// Like [`ProcState::completion_cost`] but before the status is stored.
    fn completion_cost_precompute(&self, req: Req, len: usize) -> SimDuration {
        let kind = self.reqs.kind(req);
        let base = match self.reqs.path(req) {
            ReqPath::Net | ReqPath::Unknown => self.costs.net_recv,
            ReqPath::Shm => {
                let model = self.shm_model.expect("shm completion without model");
                self.costs.shm_recv + model.recv_cpu_cost(len)
            }
            ReqPath::SelfLoop => SimDuration::nanos(50),
        };
        if kind == ReqKind::RecvAnySource {
            base + self.costs.anysource_extra
        } else {
            base
        }
    }

    /// MPI_Wait: block until `req` completes. Returns the payload (for
    /// receives) and the status.
    ///
    /// App-polling mode spins at `poll_gran` for the first stretch (so
    /// small-message latencies resolve at full precision) and then backs
    /// off exponentially to `MAX_POLL_BACKOFF` — long waits (bulk
    /// transfers, NAS iterations) would otherwise drown the simulator in
    /// poll events. The backoff only starts well past any calibrated
    /// latency, so it never perturbs the Netpipe figures.
    pub fn wait(self: &Arc<Self>, ctx: &RankCtx, req: Req) -> (Option<Bytes>, Option<Status>) {
        let sched = ctx.scheduler();
        let mut polls = 0u32;
        let mut step = self.costs.poll_gran;
        // Always drive progress at least once: buffered (eager) sends
        // complete immediately, but their packets still sit in the outbox /
        // submission window until a progress cycle flushes them — a
        // blocking send must leave the data on its way out before
        // returning, or a program whose last call is a send would strand
        // the message.
        self.progress_cycle(&sched);
        loop {
            if let Some((data, status)) = self.reqs.claim(req) {
                if self.piom.is_none() {
                    // App-polling: the observer pays the completion cost.
                    let c = self.completion_cost(req);
                    if c > SimDuration::ZERO {
                        ctx.advance(c);
                    }
                }
                return (data, status);
            }
            if self.reqs.is_done(req) {
                // Already claimed (e.g. re-wait): hand back the status.
                return (None, self.reqs.status(req));
            }
            self.progress_cycle(&sched);
            if self.reqs.is_done(req) {
                continue;
            }
            match &self.piom {
                None => {
                    ctx.advance(step);
                    polls += 1;
                    if polls > FINE_POLLS {
                        let cap = if polls > BULK_POLLS {
                            BULK_POLL_BACKOFF
                        } else {
                            MAX_POLL_BACKOFF
                        };
                        step = SimDuration::nanos(
                            (step.as_nanos() * 3 / 2).min(cap.as_nanos()),
                        );
                    }
                }
                Some(_) => {
                    // §3.3.2: block on the semaphore; PIOMan wakes us.
                    // Under the retry transport, also arm a timed self-wake
                    // — belt and braces next to the PIOMan watchdog.
                    if self.retry_net() {
                        self.wake.signal_in(&sched, RETRY_WAKE);
                    }
                    self.wake.wait(ctx);
                }
            }
        }
    }

    /// MPI_Test: nonblocking completion check (drives one progress cycle,
    /// like MPICH2's test).
    pub fn test(self: &Arc<Self>, ctx: &RankCtx, req: Req) -> bool {
        let sched = ctx.scheduler();
        self.progress_cycle(&sched);
        self.reqs.is_done(req)
    }

    /// MPI_Iprobe: nonblocking check for a matchable incoming message.
    /// Drives one progress cycle, then inspects the unexpected state of
    /// whichever layer(s) would match the receive: the CH3 queues
    /// (intra-node, and everything on non-bypass stacks) and NewMadeleine's
    /// internal matching (inter-node on the bypass — the same probe the
    /// §3.2 ANY_SOURCE lists use).
    pub fn iprobe(self: &Arc<Self>, ctx: &RankCtx, src: Src, tag: u32) -> Option<Status> {
        let sched = ctx.scheduler();
        self.progress_cycle(&sched);
        self.iprobe_inner(src, tag)
    }

    /// MPI_Probe: block until [`ProcState::iprobe`] succeeds.
    pub fn probe(self: &Arc<Self>, ctx: &RankCtx, src: Src, tag: u32) -> Status {
        let mut polls = 0u32;
        let mut step = self.costs.poll_gran;
        loop {
            if let Some(st) = self.iprobe(ctx, src, tag) {
                return st;
            }
            match &self.piom {
                None => {
                    ctx.advance(step);
                    polls += 1;
                    if polls > FINE_POLLS {
                        step = SimDuration::nanos(
                            (step.as_nanos() * 3 / 2).min(MAX_POLL_BACKOFF.as_nanos()),
                        );
                    }
                }
                Some(_) => {
                    // PIOMan raises completions, not unexpected arrivals;
                    // probing still needs a poll cadence.
                    ctx.advance(SimDuration::nanos(500));
                }
            }
        }
    }

    fn iprobe_inner(&self, src: Src, tag: u32) -> Option<Status> {
        let key = key_of(USER_CTX, tag);
        match src {
            Src::Rank(s) => match self.vcs.path(s) {
                VcPath::SelfLoop | VcPath::Shm | VcPath::Ch3Net => self
                    .engine
                    .queues
                    .probe(Some(s), key)
                    .map(|(source, len)| Status { source, tag, len }),
                VcPath::NmadDirect => match &self.net {
                    NetPath::Direct(core) => core
                        .probe_info(nmad::GateId(s), key)
                        .map(|len| Status {
                            source: s,
                            tag,
                            len,
                        }),
                    _ => None,
                },
            },
            Src::Any => {
                // CH3 first (intra-node + non-bypass), then NewMadeleine.
                if let Some((source, len)) = self.engine.queues.probe(None, key) {
                    return Some(Status { source, tag, len });
                }
                if let NetPath::Direct(core) = &self.net {
                    if let Some((gate, len)) = core.probe_tag_info(key) {
                        return Some(Status {
                            source: gate.0,
                            tag,
                            len,
                        });
                    }
                }
                None
            }
        }
    }

    /// Probe for an unexpected inter-node message on a *full* 64-bit key
    /// (any source). Used by the fault-tolerant agreement to poll for a
    /// DECIDED broadcast while blocked in a pass round — the user-facing
    /// `iprobe` only speaks plain tags. Does not drive progress; callers
    /// poll inside their own progress loops.
    pub(crate) fn iprobe_key(&self, key: u64) -> Option<usize> {
        match &self.net {
            NetPath::Direct(core) => core.probe_tag(key).map(|g| g.0),
            _ => None,
        }
    }

    /// Is the inter-node path running the retransmitting transport?
    fn retry_net(&self) -> bool {
        matches!(&self.net, NetPath::Direct(core) if core.retry_enabled())
    }

    /// CH3 unexpected-queue backlog of this rank: `(current buffered
    /// payload bytes, lifetime high-water mark)`. Incrementally maintained
    /// — cheap enough for per-iteration assertions in overload tests.
    pub fn unexpected_backlog(&self) -> (usize, usize) {
        (
            self.engine.queues.unexpected_bytes(),
            self.engine.queues.unexpected_hwm(),
        )
    }

    /// One-line flow/overload diagnostic for this rank: CH3 unexpected
    /// byte accounting, counted protocol errors, and — on the bypass path
    /// — the NewMadeleine credit state.
    pub fn flow_state(&self) -> String {
        let (cur, hwm) = self.unexpected_backlog();
        let nm = match &self.net {
            NetPath::Direct(core) => core
                .flow_summary()
                .unwrap_or_else(|| "flow[off: no credit layer]".into()),
            NetPath::Ch3(_) => "flow[see transport debug_state]".into(),
            NetPath::None => "flow[n/a: no network]".into(),
        };
        format!(
            "ch3-unex[cur={cur}B hwm={hwm}B] proto_errs={} {nm}",
            self.engine.protocol_errors()
        )
    }

    /// Is all outbound protocol work this rank is responsible for done?
    /// (Pending CH3 rendezvous halves, unsent submission-window packets.)
    pub fn quiescent(&self) -> bool {
        if self.engine.rdv_in_flight() != 0 {
            return false;
        }
        match &self.net {
            NetPath::Direct(core) => core.quiescent(),
            NetPath::Ch3(t) => t.quiescent(),
            NetPath::None => true,
        }
    }

    /// MPI_Finalize semantics for app-polling ranks: a rank whose program
    /// has returned may still owe the network work — e.g. the DATA half of
    /// a (possibly nested) rendezvous whose CTS arrives after the last
    /// user-level wait completed. Real MPI drains this in MPI_Finalize;
    /// so do we, driving progress until the local protocol state is
    /// quiescent. PIOMan ranks need no drain: their progress is
    /// event-driven and keeps running as long as the simulation has
    /// events.
    pub fn finalize(self: &Arc<Self>, ctx: &RankCtx) {
        if self.crashed.load(std::sync::atomic::Ordering::Relaxed) {
            // A crashed rank's program ends abruptly; it neither drains nor
            // owes protocol work (its core is halted).
            return;
        }
        if self.piom.is_some() {
            return;
        }
        let sched = ctx.scheduler();
        let mut step = self.costs.poll_gran;
        for polls in 0u32.. {
            self.progress_cycle(&sched);
            if self.quiescent() {
                return;
            }
            assert!(
                polls < 5_000_000,
                "MPI_Finalize drain did not quiesce (protocol leak?)"
            );
            ctx.advance(step);
            if polls > FINE_POLLS {
                step = SimDuration::nanos(
                    (step.as_nanos() * 3 / 2).min(MAX_POLL_BACKOFF.as_nanos()),
                );
            }
        }
    }
}
