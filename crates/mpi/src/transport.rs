//! CH3 packet transports.
//!
//! Three ways a CH3 packet reaches another rank:
//!
//! * [`ShmTransport`] — over the Nemesis shared-memory cell queues, for
//!   co-located ranks (always used, in every stack).
//! * [`FabricTransport`] — straight over one simulated NIC, for the
//!   network-tailored comparator stacks (MVAPICH2-like, Open MPI-like).
//! * [`NmadNetmodTransport`] — tunnelled through NewMadeleine messages via
//!   the four-routine module interface: the *legacy* integration whose
//!   nested rendezvous Fig. 2 criticizes. CH3 packets are byte-encoded,
//!   sent as NewMadeleine messages on a reserved tag, and — crucially — a
//!   CH3 `Data` packet larger than NewMadeleine's eager threshold triggers
//!   NewMadeleine's *own* internal RTS/CTS, producing the double handshake
//!   mechanically rather than by assumption.
//!
//! Outbound packets on the network transports sit in an outbox until
//! [`Ch3Transport::progress`] runs — progress only happens when the MPI
//! stack is driven (by the application or by PIOMan), which is what Fig. 7
//! measures.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;
use simnet::{BufOrigin, CopyMeter, Fabric, NmBuf, NodeId, RailId, Scheduler};

use nemesis::{MsgHeader, ShmDomain};
use nmad::sr::CompletionKind;
use nmad::NmCore;

use crate::ch3::Ch3Pkt;

/// Hook fired (on the engine thread) when inbound traffic lands — PIOMan's
/// wake-up signal.
pub type EventHook = Arc<dyn Fn(&Scheduler) + Send + Sync>;

/// A CH3 packet transport.
pub trait Ch3Transport: Send + Sync {
    /// Queue `pkt` for `dst`. Buffered: the wire is only touched by
    /// `progress`/`flush`.
    fn send_pkt(&self, sched: &Scheduler, dst: usize, pkt: Ch3Pkt);

    /// Flush the outbox and drain inbound packets.
    fn progress(&self, sched: &Scheduler) -> Vec<(usize, Ch3Pkt)>;

    /// Push any outboxed packets onto the wire without draining inbound.
    /// The progress engine calls this at the END of every cycle so packets
    /// produced while processing inbound traffic (CTS → DATA) leave before
    /// the application regains control.
    fn flush(&self, sched: &Scheduler);

    /// Install the inbound-event hook.
    fn set_event_hook(&self, hook: EventHook);

    /// One-line internal-state summary for failure diagnostics.
    fn debug_state(&self) -> String {
        String::new()
    }

    /// Is all outbound work this transport is responsible for finished?
    /// Drives the MPI_Finalize drain: a rank may not stop progressing
    /// while, e.g., the DATA half of a nested rendezvous still sits in its
    /// submission window.
    fn quiescent(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------
// Shared memory
// ---------------------------------------------------------------------

/// CH3 over the Nemesis shared-memory channel.
pub struct ShmTransport {
    domain: Arc<ShmDomain>,
    my_local: usize,
    /// Global rank → local index on this node.
    local_of: Arc<dyn Fn(usize) -> usize + Send + Sync>,
}

impl ShmTransport {
    pub fn new(
        domain: Arc<ShmDomain>,
        my_local: usize,
        local_of: Arc<dyn Fn(usize) -> usize + Send + Sync>,
    ) -> ShmTransport {
        ShmTransport {
            domain,
            my_local,
            local_of,
        }
    }

    fn header_of(&self, dst: usize, pkt: &Ch3Pkt) -> (MsgHeader, NmBuf) {
        let me = self.domain.global_rank(self.my_local);
        let mut h = MsgHeader {
            src_rank: me,
            dst_rank: dst,
            ..Default::default()
        };
        match pkt {
            Ch3Pkt::Eager { key, data } => {
                h.packet_type = 0;
                h.tag = *key;
                // Zero-copy hand-off: the cell queues copy-in from this
                // shared view, the packet keeps its own handle.
                (h, data.share())
            }
            Ch3Pkt::Rts { key, rdv_id, len } => {
                h.packet_type = 1;
                h.tag = *key;
                h.aux = [*rdv_id, *len as u64];
                (h, NmBuf::default())
            }
            Ch3Pkt::Cts { rdv_id } => {
                h.packet_type = 2;
                h.aux = [*rdv_id, 0];
                (h, NmBuf::default())
            }
            Ch3Pkt::Data {
                rdv_id,
                offset,
                data,
            } => {
                h.packet_type = 3;
                h.aux = [*rdv_id, *offset as u64];
                (h, data.share())
            }
            Ch3Pkt::DataAck { rdv_id } => {
                h.packet_type = 4;
                h.aux = [*rdv_id, 0];
                (h, NmBuf::default())
            }
        }
    }

    fn pkt_of(h: &MsgHeader, data: NmBuf) -> Ch3Pkt {
        match h.packet_type {
            0 => Ch3Pkt::Eager { key: h.tag, data },
            1 => Ch3Pkt::Rts {
                key: h.tag,
                rdv_id: h.aux[0],
                len: h.aux[1] as usize,
            },
            2 => Ch3Pkt::Cts { rdv_id: h.aux[0] },
            3 => Ch3Pkt::Data {
                rdv_id: h.aux[0],
                offset: h.aux[1] as usize,
                data,
            },
            4 => Ch3Pkt::DataAck { rdv_id: h.aux[0] },
            t => panic!("unknown shm packet type {t}"),
        }
    }
}

impl Ch3Transport for ShmTransport {
    fn send_pkt(&self, sched: &Scheduler, dst: usize, pkt: Ch3Pkt) {
        let (header, data) = self.header_of(dst, &pkt);
        let dst_local = (self.local_of)(dst);
        self.domain
            .send(sched, self.my_local, dst_local, header, data);
    }

    fn progress(&self, sched: &Scheduler) -> Vec<(usize, Ch3Pkt)> {
        let mut out = Vec::new();
        while let Some((h, data)) = self.domain.poll(sched, self.my_local) {
            out.push((h.src_rank, Self::pkt_of(&h, data)));
        }
        out
    }

    fn flush(&self, _sched: &Scheduler) {
        // Shared-memory sends go straight into the cell queues; nothing is
        // outboxed.
    }

    fn set_event_hook(&self, hook: EventHook) {
        let local = self.my_local;
        self.domain
            .set_delivery_hook(local, Arc::new(move |s, _l| hook(s)));
    }

    fn debug_state(&self) -> String {
        format!(
            "shm local={} outbox=0 pending_deliveries={} reasm[cur={}B hwm={}B] copy[{}] \
             failover[n/a: shared memory has no rails] flow[n/a: cell pool is the shm backpressure]",
            self.my_local,
            self.domain.mailbox(self.my_local).pending(),
            self.domain.reassembly_bytes(self.my_local),
            self.domain.reassembly_hwm(self.my_local),
            self.domain.meter().snapshot(),
        )
    }
}

// ---------------------------------------------------------------------
// Raw fabric (tailored baselines)
// ---------------------------------------------------------------------

/// Wire message of the tailored stacks.
pub struct Ch3Wire {
    pub src: usize,
    pub dst: usize,
    pub pkt: Ch3Pkt,
}

/// Shared inbox a fabric sink pushes into (one per rank).
pub struct Inbox {
    q: Mutex<VecDeque<(usize, Ch3Pkt)>>,
    hook: Mutex<Option<EventHook>>,
}

impl Default for Inbox {
    fn default() -> Self {
        Inbox {
            q: Mutex::new(VecDeque::new()),
            hook: Mutex::new(None),
        }
    }
}

impl Inbox {
    pub fn new() -> Arc<Inbox> {
        Arc::new(Inbox::default())
    }

    /// Deliver a packet (called by the node's fabric sink).
    pub fn push(&self, sched: &Scheduler, src: usize, pkt: Ch3Pkt) {
        self.q.lock().push_back((src, pkt));
        let hook = self.hook.lock().as_ref().map(Arc::clone);
        if let Some(h) = hook {
            h(sched);
        }
    }
}

/// CH3 straight over one NIC rail — the comparator-stack transport.
pub struct FabricTransport {
    fabric: Arc<Fabric<Ch3Wire>>,
    my_rank: usize,
    node: NodeId,
    rail: RailId,
    rank_to_node: Arc<Vec<NodeId>>,
    outbox: Mutex<VecDeque<(usize, Ch3Pkt)>>,
    inbox: Arc<Inbox>,
    /// Registration cache (MVAPICH2): hit ⇒ zero-copy DATA pays no
    /// registration cost.
    reg_cache: bool,
    /// Pipeline-startup delay before a CTS leaves (tailored stacks with a
    /// costly rendezvous protocol switch).
    rdv_setup: simnet::SimDuration,
    /// Job-wide copy meter, installed by the stack builder (diagnostics;
    /// the payload handles carry the charging meter themselves).
    meter: Mutex<Option<Arc<CopyMeter>>>,
}

impl FabricTransport {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        fabric: Arc<Fabric<Ch3Wire>>,
        my_rank: usize,
        node: NodeId,
        rail: RailId,
        rank_to_node: Arc<Vec<NodeId>>,
        inbox: Arc<Inbox>,
        reg_cache: bool,
    ) -> FabricTransport {
        Self::with_rdv_setup(
            fabric,
            my_rank,
            node,
            rail,
            rank_to_node,
            inbox,
            reg_cache,
            simnet::SimDuration::ZERO,
        )
    }

    #[allow(clippy::too_many_arguments)]
    pub fn with_rdv_setup(
        fabric: Arc<Fabric<Ch3Wire>>,
        my_rank: usize,
        node: NodeId,
        rail: RailId,
        rank_to_node: Arc<Vec<NodeId>>,
        inbox: Arc<Inbox>,
        reg_cache: bool,
        rdv_setup: simnet::SimDuration,
    ) -> FabricTransport {
        FabricTransport {
            fabric,
            my_rank,
            node,
            rail,
            rank_to_node,
            outbox: Mutex::new(VecDeque::new()),
            inbox,
            reg_cache,
            rdv_setup,
            meter: Mutex::new(None),
        }
    }

    /// Install the job-wide copy meter (shown by [`Ch3Transport::debug_state`]).
    pub fn set_copy_meter(&self, meter: &Arc<CopyMeter>) {
        *self.meter.lock() = Some(Arc::clone(meter));
    }
}

impl Ch3Transport for FabricTransport {
    fn send_pkt(&self, _sched: &Scheduler, dst: usize, pkt: Ch3Pkt) {
        self.outbox.lock().push_back((dst, pkt));
    }

    fn progress(&self, sched: &Scheduler) -> Vec<(usize, Ch3Pkt)> {
        self.flush(sched);
        let mut q = self.inbox.q.lock();
        q.drain(..).collect()
    }

    fn flush(&self, sched: &Scheduler) {
        loop {
            let (dst, pkt) = match self.outbox.lock().pop_front() {
                Some(x) => x,
                None => break,
            };
            let bytes = pkt.wire_bytes();
            let dst_node = self.rank_to_node[dst];
            let wire = Ch3Wire {
                src: self.my_rank,
                dst,
                pkt,
            };
            // Zero-copy DATA pays dynamic registration unless cached; the
            // rendezvous CTS pays the pipeline-startup cost.
            let reg = match &wire.pkt {
                Ch3Pkt::Data { .. } => self
                    .fabric
                    .model(self.rail)
                    .registration_cost(bytes, self.reg_cache),
                Ch3Pkt::Cts { .. } => self.rdv_setup,
                _ => simnet::SimDuration::ZERO,
            };
            if reg > simnet::SimDuration::ZERO {
                let fabric = Arc::clone(&self.fabric);
                let (rail, node) = (self.rail, self.node);
                sched.schedule_in(reg, move |s| {
                    fabric.send(s, rail, node, dst_node, bytes, wire, None);
                });
            } else {
                self.fabric
                    .send(sched, self.rail, self.node, dst_node, bytes, wire, None);
            }
        }
    }

    fn set_event_hook(&self, hook: EventHook) {
        *self.inbox.hook.lock() = Some(hook);
    }

    fn debug_state(&self) -> String {
        let copy = self
            .meter
            .lock()
            .as_ref()
            .map(|m| m.snapshot().to_string())
            .unwrap_or_else(|| "unmetered".into());
        format!(
            "fabric rank={} outbox={} inbox={} copy[{copy}] \
             failover[n/a: tailored stack is single-rail] flow[n/a: tailored stack has no credits]",
            self.my_rank,
            self.outbox.lock().len(),
            self.inbox.q.lock().len(),
        )
    }

    fn quiescent(&self) -> bool {
        self.outbox.lock().is_empty()
    }
}

// ---------------------------------------------------------------------
// NewMadeleine behind the module interface (legacy path)
// ---------------------------------------------------------------------

/// Reserved NewMadeleine tag carrying tunnelled CH3 packets.
pub const NETMOD_KEY: u64 = u64::MAX - 1;
/// Cookie marking netmod sends (completions ignored — CH3 is buffered).
const NETMOD_SEND_COOKIE: u64 = u64::MAX;
/// Cookie base for per-gate netmod receives: cookie = BASE + gate.
const NETMOD_RECV_BASE: u64 = u64::MAX / 2;

/// CH3 tunnelled through NewMadeleine messages (§2.1.3's baseline design).
pub struct NmadNetmodTransport {
    core: Arc<NmCore>,
    /// Remote peers (one pre-posted receive each, reposted on completion).
    peers: Vec<usize>,
    started: Mutex<bool>,
    /// The core's copy meter, re-attached to inbound frames (the completion
    /// boundary hands out plain `Bytes`, which drops the lineage).
    meter: Arc<CopyMeter>,
}

impl NmadNetmodTransport {
    pub fn new(core: Arc<NmCore>, peers: Vec<usize>) -> NmadNetmodTransport {
        let meter = core.meter();
        NmadNetmodTransport {
            core,
            peers,
            started: Mutex::new(false),
            meter,
        }
    }

    /// `net_module_init`: pre-post one receive per remote gate.
    fn ensure_started(&self, sched: &Scheduler) {
        let mut started = self.started.lock();
        if *started {
            return;
        }
        *started = true;
        for &p in &self.peers {
            self.core
                .irecv(sched, p, NETMOD_KEY, NETMOD_RECV_BASE + p as u64);
        }
    }
}

impl Ch3Transport for NmadNetmodTransport {
    fn send_pkt(&self, sched: &Scheduler, dst: usize, pkt: Ch3Pkt) {
        self.ensure_started(sched);
        // Tunnelled: the packet becomes an opaque NewMadeleine message —
        // the extra encode/copy is the module-queue copy of §2.1.3, and a
        // large DATA packet will cross NewMadeleine's own eager threshold
        // and trigger the *nested* internal rendezvous.
        self.core
            .isend(sched, dst, NETMOD_KEY, pkt.encode(), NETMOD_SEND_COOKIE);
    }

    fn progress(&self, sched: &Scheduler) -> Vec<(usize, Ch3Pkt)> {
        self.ensure_started(sched);
        self.core.schedule(sched);
        let mut out = Vec::new();
        for c in self.core.drain_completions() {
            match c.kind {
                CompletionKind::Send => {
                    debug_assert_eq!(c.cookie, NETMOD_SEND_COOKIE);
                }
                CompletionKind::Recv { data, gate, .. } => {
                    debug_assert_eq!(c.cookie, NETMOD_RECV_BASE + gate.0 as u64);
                    let frame = NmBuf::adopt(data, BufOrigin::Ch3, &self.meter);
                    out.push((gate.0, Ch3Pkt::decode(frame)));
                    // Repost — the module must always be ready to poll.
                    self.core
                        .irecv(sched, gate.0, NETMOD_KEY, NETMOD_RECV_BASE + gate.0 as u64);
                }
                CompletionKind::SendFailed { .. } | CompletionKind::RecvFailed { .. } => {
                    // The legacy netmod path predates elastic membership:
                    // CH3 runs its own protocols on top and has no drain
                    // story for a half-tunnelled packet.
                    panic!("membership drain verdict on the netmod path (unsupported)")
                }
                CompletionKind::SendRevoked { .. } | CompletionKind::RecvRevoked { .. } => {
                    // Likewise: epoch revocation is a bypass-path concept;
                    // the netmod tunnel never uses collective keys.
                    panic!("epoch revocation on the netmod path (unsupported)")
                }
            }
        }
        out
    }

    fn flush(&self, sched: &Scheduler) {
        // The "outbox" is NewMadeleine's submission window; a schedule pass
        // commits it.
        self.core.schedule(sched);
    }

    fn set_event_hook(&self, hook: EventHook) {
        self.core.set_event_hook(hook);
    }

    fn debug_state(&self) -> String {
        format!(
            "netmod nm: posted={} unexpected={} outbox={} quiescent={} copy[{}] {} {} stats={:?}",
            self.core.posted_recvs(),
            self.core.unexpected_msgs(),
            self.core.window_depth(),
            self.core.quiescent(),
            self.meter.snapshot(),
            self.core
                .health_summary()
                .unwrap_or_else(|| "failover[off: no retry layer]".into()),
            self.core
                .flow_summary()
                .unwrap_or_else(|| "flow[off: no credit layer]".into()),
            self.core.stats()
        )
    }

    fn quiescent(&self) -> bool {
        self.core.quiescent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemesis::ShmModel;
    use simnet::{SimBuilder, SimDuration};

    #[test]
    fn shm_transport_roundtrips_each_packet_kind() {
        let mut sim = SimBuilder::new().build();
        let domain = ShmDomain::new(&[0, 1], 16, ShmModel::xeon());
        let l0: Arc<dyn Fn(usize) -> usize + Send + Sync> = Arc::new(|g| g);
        let t0 = Arc::new(ShmTransport::new(Arc::clone(&domain), 0, Arc::clone(&l0)));
        let t1 = Arc::new(ShmTransport::new(Arc::clone(&domain), 1, l0));
        let pkts = vec![
            Ch3Pkt::Eager {
                key: 5,
                data: NmBuf::from(bytes::Bytes::from_static(b"e")),
            },
            Ch3Pkt::Rts {
                key: 6,
                rdv_id: 1,
                len: 999,
            },
            Ch3Pkt::Cts { rdv_id: 1 },
            Ch3Pkt::Data {
                rdv_id: 1,
                offset: 4,
                data: NmBuf::from(bytes::Bytes::from_static(b"dd")),
            },
        ];
        let n = pkts.len();
        let t0b = Arc::clone(&t0);
        sim.spawn_rank("sender", move |ctx| {
            let sched = ctx.scheduler();
            for p in pkts {
                t0b.send_pkt(&sched, 1, p);
            }
        });
        sim.spawn_rank("receiver", move |ctx| {
            let sched = ctx.scheduler();
            let mut got = Vec::new();
            while got.len() < n {
                got.extend(t1.progress(&sched));
                ctx.advance(SimDuration::nanos(100));
            }
            assert!(matches!(got[0].1, Ch3Pkt::Eager { key: 5, .. }));
            assert!(matches!(
                got[1].1,
                Ch3Pkt::Rts {
                    key: 6,
                    rdv_id: 1,
                    len: 999
                }
            ));
            assert!(matches!(got[2].1, Ch3Pkt::Cts { rdv_id: 1 }));
            match &got[3].1 {
                Ch3Pkt::Data {
                    rdv_id: 1,
                    offset: 4,
                    data,
                } => assert_eq!(&data[..], b"dd"),
                other => panic!("wrong packet {other:?}"),
            }
            assert!(got.iter().all(|(src, _)| *src == 0));
        });
        sim.run().unwrap();
    }

    #[test]
    fn fabric_transport_defers_until_progress() {
        let mut sim = SimBuilder::new().build();
        let fabric: Arc<Fabric<Ch3Wire>> =
            Fabric::new(2, vec![simnet::NicModel::connectx_ib()]);
        let rank_to_node = Arc::new(vec![NodeId(0), NodeId(1)]);
        let inboxes = [Inbox::new(), Inbox::new()];
        for (n, ib) in inboxes.iter().enumerate() {
            let inbox = Arc::clone(ib);
            fabric.set_sink(
                NodeId(n),
                Box::new(move |s, d| inbox.push(s, d.msg.src, d.msg.pkt)),
            );
        }
        let t0 = Arc::new(FabricTransport::new(
            Arc::clone(&fabric),
            0,
            NodeId(0),
            RailId(0),
            Arc::clone(&rank_to_node),
            Arc::clone(&inboxes[0]),
            false,
        ));
        let t1 = Arc::new(FabricTransport::new(
            fabric,
            1,
            NodeId(1),
            RailId(0),
            rank_to_node,
            Arc::clone(&inboxes[1]),
            false,
        ));
        let t0b = Arc::clone(&t0);
        let port0 = Arc::clone(t0.fabric.port(RailId(0), NodeId(0)));
        sim.spawn_rank("sender", move |ctx| {
            let sched = ctx.scheduler();
            t0b.send_pkt(
                &sched,
                1,
                Ch3Pkt::Eager {
                    key: 1,
                    data: NmBuf::from(bytes::Bytes::from_static(b"x")),
                },
            );
            // Outboxed: nothing on the wire yet.
            ctx.advance(SimDuration::micros(10));
            assert_eq!(port0.counters().0, 0, "send must be deferred");
            let state = t0b.debug_state();
            assert!(
                state.contains("outbox=1"),
                "deferred packet missing from debug_state: {state}"
            );
            t0b.progress(&sched); // flush
        });
        sim.spawn_rank("receiver", move |ctx| {
            let sched = ctx.scheduler();
            loop {
                let got = t1.progress(&sched);
                if !got.is_empty() {
                    assert_eq!(got.len(), 1);
                    assert_eq!(got[0].0, 0);
                    return;
                }
                ctx.advance(SimDuration::nanos(200));
            }
        });
        sim.run().unwrap();
    }

    /// Satellite check: every transport's `debug_state` reports its outbox
    /// depth and the copy-meter counters it is wired to.
    #[test]
    fn debug_state_reports_outbox_and_copy_meter() {
        let meter = CopyMeter::new();

        let domain =
            ShmDomain::with_meter(&[0, 1], 16, nemesis::ShmModel::xeon(), Arc::clone(&meter));
        let l: Arc<dyn Fn(usize) -> usize + Send + Sync> = Arc::new(|g| g);
        let shm = ShmTransport::new(domain, 0, l);
        let s = shm.debug_state();
        assert!(s.contains("copy["), "shm debug_state lacks copy meter: {s}");
        assert!(
            s.contains("reasm[") && s.contains("flow["),
            "shm debug_state lacks reassembly/flow state: {s}"
        );

        let fabric: Arc<Fabric<Ch3Wire>> =
            Fabric::new(2, vec![simnet::NicModel::connectx_ib()]);
        let rank_to_node = Arc::new(vec![NodeId(0), NodeId(1)]);
        let ft = FabricTransport::new(
            Arc::clone(&fabric),
            0,
            NodeId(0),
            RailId(0),
            Arc::clone(&rank_to_node),
            Inbox::new(),
            false,
        );
        ft.set_copy_meter(&meter);
        let s = ft.debug_state();
        assert!(
            s.contains("outbox=") && s.contains("copy[") && s.contains("flow["),
            "fabric debug_state incomplete: {s}"
        );

        let nm_fabric: Arc<Fabric<nmad::NmWire>> =
            Fabric::new(2, vec![simnet::NicModel::connectx_ib()]);
        let core = NmCore::new(
            nmad::NmConfig::default(),
            0,
            nmad::NmNet {
                fabric: nm_fabric,
                node: NodeId(0),
                rails: vec![RailId(0)],
                rank_to_node,
            },
        );
        let nt = NmadNetmodTransport::new(core, vec![1]);
        let s = nt.debug_state();
        assert!(
            s.contains("outbox=") && s.contains("copy[") && s.contains("flow[off"),
            "netmod debug_state incomplete: {s}"
        );
    }
}
