//! Collective operations, built over point-to-point.
//!
//! The NAS kernels (§4.2) need barrier, broadcast, (all)reduce and
//! all-to-all. MPICH2 implements its collectives over ADI3 point-to-point;
//! we do the same with the textbook algorithms MPICH2 1.0-era used:
//! dissemination barrier, binomial-tree broadcast/reduce, and pairwise
//! all-to-all exchange.
//!
//! Every collective draws a fresh sequence number from the process state —
//! legal because MPI requires all ranks to invoke collectives in the same
//! order — and tags its traffic in a reserved context, so collective
//! traffic can never match user point-to-point receives.

use std::sync::atomic::Ordering;

use bytes::Bytes;
use simnet::NmBuf;

use crate::api::{MpiHandle, Src};
use crate::progress::COLL_CTX;

const OP_BARRIER: u64 = 1;
const OP_BCAST: u64 = 2;
const OP_REDUCE: u64 = 3;
const OP_ALLTOALL: u64 = 4;
const OP_ALLGATHER: u64 = 5;
const OP_ALLTOALLV: u64 = 6;

fn coll_key(op: u64, round: u64, seq: u32) -> u64 {
    ((COLL_CTX as u64) << 48) | (op << 40) | (round << 32) | seq as u64
}

fn next_seq(mpi: &MpiHandle) -> u32 {
    mpi.state.coll_seq.fetch_add(1, Ordering::Relaxed)
}

/// Serialize f64s little-endian.
pub fn f64s_to_bytes(v: &[f64]) -> Bytes {
    let mut out = Vec::with_capacity(v.len() * 8);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    Bytes::from(out)
}

/// Deserialize f64s.
pub fn bytes_to_f64s(b: &[u8]) -> Vec<f64> {
    assert_eq!(b.len() % 8, 0, "not an f64 vector");
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Dissemination barrier: ⌈log₂ P⌉ rounds; in round k, rank r signals
/// r + 2ᵏ and hears from r − 2ᵏ (mod P).
pub fn barrier(mpi: &MpiHandle) {
    let (rank, size) = (mpi.rank(), mpi.size());
    if size == 1 {
        return;
    }
    let seq = next_seq(mpi);
    let mut round = 0u64;
    let mut dist = 1usize;
    while dist < size {
        let to = (rank + dist) % size;
        let from = (rank + size - dist) % size;
        let key = coll_key(OP_BARRIER, round, seq);
        let r = mpi
            .state
            .isend_key(&mpi.ctx, to, key, NmBuf::default());
        let rr = mpi.state.irecv_key(&mpi.ctx, Src::Rank(from), key);
        mpi.state.wait(&mpi.ctx, r);
        mpi.state.wait(&mpi.ctx, rr);
        dist <<= 1;
        round += 1;
    }
}

/// Binomial-tree broadcast. `data` must be `Some` on `root` (ignored
/// elsewhere); every rank returns the payload.
pub fn bcast(mpi: &MpiHandle, root: usize, data: Option<Bytes>) -> Bytes {
    let (rank, size) = (mpi.rank(), mpi.size());
    assert!(root < size);
    let seq = next_seq(mpi);
    let key = coll_key(OP_BCAST, 0, seq);
    let vrank = (rank + size - root) % size;
    // Internally the payload is an NmBuf handle: forwarding to several
    // children shares one allocation instead of cloning per child.
    let mut payload = if rank == root {
        NmBuf::from(data.expect("bcast root must supply data"))
    } else {
        NmBuf::default()
    };
    // Receive from parent.
    let mut mask = 1usize;
    while mask < size {
        if vrank & mask != 0 {
            let parent = ((vrank - mask) + root) % size;
            let r = mpi.state.irecv_key(&mpi.ctx, Src::Rank(parent), key);
            let (d, _) = mpi.state.wait(&mpi.ctx, r);
            payload = NmBuf::from(d.expect("bcast data"));
            break;
        }
        mask <<= 1;
    }
    // Forward to children.
    mask >>= 1;
    let mut sends = Vec::new();
    while mask > 0 {
        if vrank & mask == 0 && vrank + mask < size {
            let child = ((vrank + mask) + root) % size;
            sends.push(
                mpi.state
                    .isend_key(&mpi.ctx, child, key, payload.share()),
            );
        }
        mask >>= 1;
    }
    for s in sends {
        mpi.state.wait(&mpi.ctx, s);
    }
    payload.into_bytes()
}

/// Binomial-tree sum-reduction of equal-length f64 vectors to `root`.
pub fn reduce_sum(mpi: &MpiHandle, root: usize, contrib: &[f64]) -> Option<Vec<f64>> {
    let (rank, size) = (mpi.rank(), mpi.size());
    assert!(root < size);
    let seq = next_seq(mpi);
    let key = coll_key(OP_REDUCE, 0, seq);
    let vrank = (rank + size - root) % size;
    // The accumulator is mutated in place each round; it cannot alias the
    // caller's borrowed contribution.
    let mut acc = contrib.to_vec();
    let mut mask = 1usize;
    while mask < size {
        if vrank & mask == 0 {
            let src_v = vrank | mask;
            if src_v < size {
                let src = (src_v + root) % size;
                let r = mpi.state.irecv_key(&mpi.ctx, Src::Rank(src), key);
                let (d, _) = mpi.state.wait(&mpi.ctx, r);
                let theirs = bytes_to_f64s(&d.expect("reduce data"));
                assert_eq!(theirs.len(), acc.len(), "reduce length mismatch");
                for (a, b) in acc.iter_mut().zip(theirs) {
                    *a += b;
                }
            }
        } else {
            let parent_v = vrank & !mask;
            let parent = (parent_v + root) % size;
            let r = mpi
                .state
                .isend_key(&mpi.ctx, parent, key, f64s_to_bytes(&acc));
            mpi.state.wait(&mpi.ctx, r);
            return None;
        }
        mask <<= 1;
    }
    Some(acc)
}

/// Allreduce (sum) = reduce to rank 0, then broadcast.
pub fn allreduce_sum(mpi: &MpiHandle, contrib: &[f64]) -> Vec<f64> {
    match reduce_sum(mpi, 0, contrib) {
        Some(total) => {
            let b = bcast(mpi, 0, Some(f64s_to_bytes(&total)));
            bytes_to_f64s(&b)
        }
        None => {
            let b = bcast(mpi, 0, None);
            bytes_to_f64s(&b)
        }
    }
}

/// Personalized all-to-all (pairwise exchange): `blocks[i]` is sent to
/// rank i; the result's element i came from rank i. All receives are
/// posted before any send, so rendezvous transfers cannot deadlock.
pub fn alltoall(mpi: &MpiHandle, blocks: Vec<Bytes>) -> Vec<Bytes> {
    let (rank, size) = (mpi.rank(), mpi.size());
    assert_eq!(blocks.len(), size, "need one block per rank");
    let seq = next_seq(mpi);
    let key = coll_key(OP_ALLTOALL, 0, seq);
    // Share handles instead of cloning block storage per destination.
    let blocks: Vec<NmBuf> = blocks.into_iter().map(NmBuf::from).collect();
    let mut result: Vec<Option<Bytes>> = (0..size).map(|_| None).collect();
    let mut recvs = Vec::with_capacity(size - 1);
    for i in 1..size {
        let from = (rank + size - i) % size;
        recvs.push((from, mpi.state.irecv_key(&mpi.ctx, Src::Rank(from), key)));
    }
    result[rank] = Some(blocks[rank].share().into_bytes());
    let mut sends = Vec::with_capacity(size - 1);
    for i in 1..size {
        let to = (rank + i) % size;
        sends.push(
            mpi.state
                .isend_key(&mpi.ctx, to, key, blocks[to].share()),
        );
    }
    for (from, r) in recvs {
        let (d, _) = mpi.state.wait(&mpi.ctx, r);
        result[from] = Some(d.expect("alltoall data"));
    }
    for s in sends {
        mpi.state.wait(&mpi.ctx, s);
    }
    result.into_iter().map(|b| b.expect("missing block")).collect()
}

/// Allgather (ring algorithm): every rank contributes one block and
/// returns all blocks, indexed by rank.
pub fn allgather(mpi: &MpiHandle, mine: Bytes) -> Vec<Bytes> {
    let (rank, size) = (mpi.rank(), mpi.size());
    let seq = next_seq(mpi);
    let key = coll_key(OP_ALLGATHER, 0, seq);
    let mine = NmBuf::from(mine);
    let mut result: Vec<Option<Bytes>> = (0..size).map(|_| None).collect();
    result[rank] = Some(mine.share().into_bytes());
    if size == 1 {
        return result.into_iter().map(|b| b.unwrap()).collect();
    }
    // Ring: in step s, send the block received in step s-1 to the right
    // neighbour; after size-1 steps everyone has everything. Each block is
    // forwarded as a shared handle — one allocation travels the whole ring.
    let right = (rank + 1) % size;
    let left = (rank + size - 1) % size;
    let mut outgoing = mine;
    for step in 0..size - 1 {
        let r = mpi.state.irecv_key(&mpi.ctx, Src::Rank(left), key);
        let s = mpi.state.isend_key(&mpi.ctx, right, key, outgoing.share());
        let (d, _) = mpi.state.wait(&mpi.ctx, r);
        mpi.state.wait(&mpi.ctx, s);
        let block = NmBuf::from(d.expect("allgather block"));
        // The block received in step s originated at rank - s - 1.
        let origin = (rank + size - step - 1) % size;
        result[origin] = Some(block.share().into_bytes());
        outgoing = block;
    }
    result.into_iter().map(|b| b.expect("hole")).collect()
}

/// Personalized all-to-all with per-destination block sizes (MPI_Alltoallv;
/// needed by the IS kernel's bucket exchange). `blocks[i]` goes to rank i
/// (sizes may differ, including empty); the result's element i came from
/// rank i.
pub fn alltoallv(mpi: &MpiHandle, blocks: Vec<Bytes>) -> Vec<Bytes> {
    let (rank, size) = (mpi.rank(), mpi.size());
    assert_eq!(blocks.len(), size, "need one block per rank");
    let seq = next_seq(mpi);
    let key = coll_key(OP_ALLTOALLV, 0, seq);
    let blocks: Vec<NmBuf> = blocks.into_iter().map(NmBuf::from).collect();
    let mut result: Vec<Option<Bytes>> = (0..size).map(|_| None).collect();
    result[rank] = Some(blocks[rank].share().into_bytes());
    let mut recvs = Vec::with_capacity(size - 1);
    for i in 1..size {
        let from = (rank + size - i) % size;
        recvs.push((from, mpi.state.irecv_key(&mpi.ctx, Src::Rank(from), key)));
    }
    let mut sends = Vec::with_capacity(size - 1);
    for i in 1..size {
        let to = (rank + i) % size;
        sends.push(
            mpi.state
                .isend_key(&mpi.ctx, to, key, blocks[to].share()),
        );
    }
    for (from, r) in recvs {
        let (d, _) = mpi.state.wait(&mpi.ctx, r);
        result[from] = Some(d.expect("alltoallv data"));
    }
    for s in sends {
        mpi.state.wait(&mpi.ctx, s);
    }
    result.into_iter().map(|b| b.expect("missing block")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_codec_roundtrip() {
        let v = vec![1.5, -2.25, 0.0, f64::MAX];
        assert_eq!(bytes_to_f64s(&f64s_to_bytes(&v)), v);
    }

    #[test]
    #[should_panic(expected = "not an f64 vector")]
    fn f64_codec_rejects_ragged() {
        bytes_to_f64s(&[1, 2, 3]);
    }

    #[test]
    fn coll_keys_are_disjoint_from_user_keys() {
        let user = crate::progress::key_of(crate::progress::USER_CTX, u32::MAX);
        let coll = coll_key(OP_BARRIER, 0, 0);
        assert_ne!(user >> 48, coll >> 48);
    }
}
