//! Collective operations, built over point-to-point.
//!
//! The NAS kernels (§4.2) need barrier, broadcast, (all)reduce and
//! all-to-all. MPICH2 implements its collectives over ADI3 point-to-point;
//! we do the same with the textbook algorithms MPICH2 1.0-era used:
//! dissemination barrier, binomial-tree broadcast/reduce, and pairwise
//! all-to-all exchange.
//!
//! Every collective draws a fresh sequence number from the process state —
//! legal because MPI requires all ranks to invoke collectives in the same
//! order — and tags its traffic in a reserved context, so collective
//! traffic can never match user point-to-point receives.
//!
//! ## Scale: hierarchical and log-round algorithms
//!
//! The flat algorithms are O(P) messages per rank for alltoall and treat
//! the topology as flat. At thousands of ranks that drowns the simulator
//! (and a real fabric) in per-message overhead, so this module also
//! provides:
//!
//! * [`bcast_hier`] / [`allreduce_sum_hier`] — intra-node leader pattern:
//!   reduce/forward inside each node over shared memory, then a binomial
//!   tree (bcast) or recursive doubling with the MPICH non-power-of-two
//!   fold (allreduce) across node leaders only.
//! * [`alltoall_bruck`] / [`alltoallv_bruck`] — Bruck's algorithm:
//!   ⌈log₂ P⌉ rounds of packed exchanges (P log P messages job-wide
//!   instead of P²). Blocks are length-prefixed, so one implementation
//!   serves both the fixed and variable-size variants.
//! * [`alltoallv_windowed`] — pairwise exchange with a bounded number of
//!   in-flight request pairs, for when payload bytes (not message count)
//!   dominate.
//!
//! The `*_auto` selectors pick by job size and topology; below the
//! thresholds they return the flat algorithms byte-for-byte, so existing
//! small-run figures stay bit-identical.

use std::sync::atomic::Ordering;

use bytes::Bytes;
use simnet::{NmBuf, TopoMap};

use nmad::keys::{
    coll_key, OP_ALLGATHER, OP_ALLTOALL, OP_ALLTOALLV, OP_BARRIER, OP_BCAST, OP_REDUCE,
    OP_TRYBAR,
};

use crate::api::{MpiHandle, PeerDead, Src};
use crate::progress::NetPath;

pub(crate) fn next_seq(mpi: &MpiHandle) -> u32 {
    mpi.state.coll_seq.fetch_add(1, Ordering::Relaxed)
}

/// The committed world epoch: collective keys carry it so the core's epoch
/// hygiene can recognize (and count) stale cross-epoch frames after a
/// shrink. 0 before any revocation, and on stacks without the bypass core.
pub(crate) fn world_epoch(mpi: &MpiHandle) -> u8 {
    match &mpi.state.net {
        NetPath::Direct(core) => core.committed_epoch(),
        _ => 0,
    }
}

/// Serialize f64s little-endian.
pub fn f64s_to_bytes(v: &[f64]) -> Bytes {
    let mut out = Vec::with_capacity(v.len() * 8);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    Bytes::from(out)
}

/// Deserialize f64s.
pub fn bytes_to_f64s(b: &[u8]) -> Vec<f64> {
    assert_eq!(b.len() % 8, 0, "not an f64 vector");
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Dissemination barrier: ⌈log₂ P⌉ rounds; in round k, rank r signals
/// r + 2ᵏ and hears from r − 2ᵏ (mod P).
pub fn barrier(mpi: &MpiHandle) {
    let (rank, size) = (mpi.rank(), mpi.size());
    if size == 1 {
        return;
    }
    let seq = next_seq(mpi);
    let ep = world_epoch(mpi);
    let mut round = 0u16;
    let mut dist = 1usize;
    while dist < size {
        let to = (rank + dist) % size;
        let from = (rank + size - dist) % size;
        let key = coll_key(ep, OP_BARRIER, round, seq);
        let r = mpi
            .state
            .isend_key(&mpi.ctx, to, key, NmBuf::default());
        let rr = mpi.state.irecv_key(&mpi.ctx, Src::Rank(from), key);
        mpi.state.wait(&mpi.ctx, r);
        mpi.state.wait(&mpi.ctx, rr);
        dist <<= 1;
        round += 1;
    }
}

/// Binomial-tree broadcast. `data` must be `Some` on `root` (ignored
/// elsewhere); every rank returns the payload.
pub fn bcast(mpi: &MpiHandle, root: usize, data: Option<Bytes>) -> Bytes {
    let (rank, size) = (mpi.rank(), mpi.size());
    assert!(root < size);
    let seq = next_seq(mpi);
    let key = coll_key(world_epoch(mpi), OP_BCAST, 0, seq);
    let vrank = (rank + size - root) % size;
    // Internally the payload is an NmBuf handle: forwarding to several
    // children shares one allocation instead of cloning per child.
    let mut payload = if rank == root {
        NmBuf::from(data.expect("bcast root must supply data"))
    } else {
        NmBuf::default()
    };
    // Receive from parent.
    let mut mask = 1usize;
    while mask < size {
        if vrank & mask != 0 {
            let parent = ((vrank - mask) + root) % size;
            let r = mpi.state.irecv_key(&mpi.ctx, Src::Rank(parent), key);
            let (d, _) = mpi.state.wait(&mpi.ctx, r);
            payload = NmBuf::from(d.expect("bcast data"));
            break;
        }
        mask <<= 1;
    }
    // Forward to children.
    mask >>= 1;
    let mut sends = Vec::new();
    while mask > 0 {
        if vrank & mask == 0 && vrank + mask < size {
            let child = ((vrank + mask) + root) % size;
            sends.push(
                mpi.state
                    .isend_key(&mpi.ctx, child, key, payload.share()),
            );
        }
        mask >>= 1;
    }
    for s in sends {
        mpi.state.wait(&mpi.ctx, s);
    }
    payload.into_bytes()
}

/// Binomial-tree sum-reduction of equal-length f64 vectors to `root`.
pub fn reduce_sum(mpi: &MpiHandle, root: usize, contrib: &[f64]) -> Option<Vec<f64>> {
    let (rank, size) = (mpi.rank(), mpi.size());
    assert!(root < size);
    let seq = next_seq(mpi);
    let key = coll_key(world_epoch(mpi), OP_REDUCE, 0, seq);
    let vrank = (rank + size - root) % size;
    // The accumulator is mutated in place each round; it cannot alias the
    // caller's borrowed contribution.
    let mut acc = contrib.to_vec();
    let mut mask = 1usize;
    while mask < size {
        if vrank & mask == 0 {
            let src_v = vrank | mask;
            if src_v < size {
                let src = (src_v + root) % size;
                let r = mpi.state.irecv_key(&mpi.ctx, Src::Rank(src), key);
                let (d, _) = mpi.state.wait(&mpi.ctx, r);
                let theirs = bytes_to_f64s(&d.expect("reduce data"));
                assert_eq!(theirs.len(), acc.len(), "reduce length mismatch");
                for (a, b) in acc.iter_mut().zip(theirs) {
                    *a += b;
                }
            }
        } else {
            let parent_v = vrank & !mask;
            let parent = (parent_v + root) % size;
            let r = mpi
                .state
                .isend_key(&mpi.ctx, parent, key, f64s_to_bytes(&acc));
            mpi.state.wait(&mpi.ctx, r);
            return None;
        }
        mask <<= 1;
    }
    Some(acc)
}

/// Allreduce (sum) = reduce to rank 0, then broadcast.
pub fn allreduce_sum(mpi: &MpiHandle, contrib: &[f64]) -> Vec<f64> {
    match reduce_sum(mpi, 0, contrib) {
        Some(total) => {
            let b = bcast(mpi, 0, Some(f64s_to_bytes(&total)));
            bytes_to_f64s(&b)
        }
        None => {
            let b = bcast(mpi, 0, None);
            bytes_to_f64s(&b)
        }
    }
}

/// Personalized all-to-all (pairwise exchange): `blocks[i]` is sent to
/// rank i; the result's element i came from rank i. All receives are
/// posted before any send, so rendezvous transfers cannot deadlock.
pub fn alltoall(mpi: &MpiHandle, blocks: Vec<Bytes>) -> Vec<Bytes> {
    let (rank, size) = (mpi.rank(), mpi.size());
    assert_eq!(blocks.len(), size, "need one block per rank");
    let seq = next_seq(mpi);
    let key = coll_key(world_epoch(mpi), OP_ALLTOALL, 0, seq);
    // Share handles instead of cloning block storage per destination.
    let blocks: Vec<NmBuf> = blocks.into_iter().map(NmBuf::from).collect();
    let mut result: Vec<Option<Bytes>> = (0..size).map(|_| None).collect();
    let mut recvs = Vec::with_capacity(size - 1);
    for i in 1..size {
        let from = (rank + size - i) % size;
        recvs.push((from, mpi.state.irecv_key(&mpi.ctx, Src::Rank(from), key)));
    }
    result[rank] = Some(blocks[rank].share().into_bytes());
    let mut sends = Vec::with_capacity(size - 1);
    for i in 1..size {
        let to = (rank + i) % size;
        sends.push(
            mpi.state
                .isend_key(&mpi.ctx, to, key, blocks[to].share()),
        );
    }
    for (from, r) in recvs {
        let (d, _) = mpi.state.wait(&mpi.ctx, r);
        result[from] = Some(d.expect("alltoall data"));
    }
    for s in sends {
        mpi.state.wait(&mpi.ctx, s);
    }
    result.into_iter().map(|b| b.expect("missing block")).collect()
}

/// Allgather (ring algorithm): every rank contributes one block and
/// returns all blocks, indexed by rank.
pub fn allgather(mpi: &MpiHandle, mine: Bytes) -> Vec<Bytes> {
    let (rank, size) = (mpi.rank(), mpi.size());
    let seq = next_seq(mpi);
    let key = coll_key(world_epoch(mpi), OP_ALLGATHER, 0, seq);
    let mine = NmBuf::from(mine);
    let mut result: Vec<Option<Bytes>> = (0..size).map(|_| None).collect();
    result[rank] = Some(mine.share().into_bytes());
    if size == 1 {
        return result.into_iter().map(|b| b.unwrap()).collect();
    }
    // Ring: in step s, send the block received in step s-1 to the right
    // neighbour; after size-1 steps everyone has everything. Each block is
    // forwarded as a shared handle — one allocation travels the whole ring.
    let right = (rank + 1) % size;
    let left = (rank + size - 1) % size;
    let mut outgoing = mine;
    for step in 0..size - 1 {
        let r = mpi.state.irecv_key(&mpi.ctx, Src::Rank(left), key);
        let s = mpi.state.isend_key(&mpi.ctx, right, key, outgoing.share());
        let (d, _) = mpi.state.wait(&mpi.ctx, r);
        mpi.state.wait(&mpi.ctx, s);
        let block = NmBuf::from(d.expect("allgather block"));
        // The block received in step s originated at rank - s - 1.
        let origin = (rank + size - step - 1) % size;
        result[origin] = Some(block.share().into_bytes());
        outgoing = block;
    }
    result.into_iter().map(|b| b.expect("hole")).collect()
}

/// Personalized all-to-all with per-destination block sizes (MPI_Alltoallv;
/// needed by the IS kernel's bucket exchange). `blocks[i]` goes to rank i
/// (sizes may differ, including empty); the result's element i came from
/// rank i.
pub fn alltoallv(mpi: &MpiHandle, blocks: Vec<Bytes>) -> Vec<Bytes> {
    let (rank, size) = (mpi.rank(), mpi.size());
    assert_eq!(blocks.len(), size, "need one block per rank");
    let seq = next_seq(mpi);
    let key = coll_key(world_epoch(mpi), OP_ALLTOALLV, 0, seq);
    let blocks: Vec<NmBuf> = blocks.into_iter().map(NmBuf::from).collect();
    let mut result: Vec<Option<Bytes>> = (0..size).map(|_| None).collect();
    result[rank] = Some(blocks[rank].share().into_bytes());
    let mut recvs = Vec::with_capacity(size - 1);
    for i in 1..size {
        let from = (rank + size - i) % size;
        recvs.push((from, mpi.state.irecv_key(&mpi.ctx, Src::Rank(from), key)));
    }
    let mut sends = Vec::with_capacity(size - 1);
    for i in 1..size {
        let to = (rank + i) % size;
        sends.push(
            mpi.state
                .isend_key(&mpi.ctx, to, key, blocks[to].share()),
        );
    }
    for (from, r) in recvs {
        let (d, _) = mpi.state.wait(&mpi.ctx, r);
        result[from] = Some(d.expect("alltoallv data"));
    }
    for s in sends {
        mpi.state.wait(&mpi.ctx, s);
    }
    result.into_iter().map(|b| b.expect("missing block")).collect()
}

// --- Elastic membership: fault-tolerant and survivor-group collectives ----

/// Fault-tolerant dissemination barrier over an explicit member list
/// (ULFM-flavoured). Requires the membership supervisor to be armed —
/// receives from a dead member terminate only because the drain protocol
/// fails them.
///
/// The deadlock-freedom argument hinges on one rule: **every member
/// completes every dissemination round**, whether or not it has already
/// observed a failure. A member that bailed out early would leave its
/// round-k partners blocked on a live-but-absent peer — a hang the
/// membership layer rightly never resolves (the peer isn't dead). Instead,
/// failure is carried *in-band*: each round's payload is a little
/// ok/poison word (0 = clean, `dead+1` = "rank `dead` is gone"). A member
/// that sees a failure — its own send/recv failing fast against the corpse,
/// or a poisoned word from a neighbour — keeps exchanging, but poisons
/// everything it sends from then on.
///
/// By induction over rounds every live member finishes the full schedule,
/// so the barrier never deadlocks and leaves no unmatched traffic toward
/// live peers. The dissemination sweep alone has ULFM's documented
/// *inconsistent* outcomes — members that heard the poison see the corpse,
/// members whose exchanges all predated the verdict do not. The verdict is
/// therefore decided by a fault-tolerant agreement round
/// ([`crate::comm::agree_group`]) seeded with each member's local
/// observation: **all surviving members return the same result** — `Ok` if
/// the agreed-dead set is empty, `Err(PeerDead)` naming the lowest agreed
/// corpse otherwise.
pub fn try_barrier_group(mpi: &MpiHandle, group: &[usize]) -> Result<(), PeerDead> {
    let gsize = group.len();
    let my_pos = group
        .iter()
        .position(|&r| r == mpi.rank())
        .expect("caller must be a member of the group");
    if gsize <= 1 {
        return Ok(());
    }
    let seq = next_seq(mpi);
    let ep = world_epoch(mpi);
    // First corpse observed, directly (failed completion) or transitively
    // (poisoned payload).
    let mut dead: Option<usize> = None;
    let mut round = 0u16;
    let mut dist = 1usize;
    while dist < gsize {
        let to = group[(my_pos + dist) % gsize];
        let from = group[(my_pos + gsize - dist) % gsize];
        let key = coll_key(ep, OP_TRYBAR, round, seq);
        let word: u32 = match dead {
            Some(p) => p as u32 + 1,
            None => 0,
        };
        let payload = Bytes::copy_from_slice(&word.to_le_bytes());
        let r = mpi.state.irecv_key(&mpi.ctx, Src::Rank(from), key);
        let s = mpi.state.isend_key(&mpi.ctx, to, key, NmBuf::from(payload));
        mpi.state.wait(&mpi.ctx, s);
        if let Some(p) = mpi.state.reqs.failed_peer(s) {
            dead.get_or_insert(p);
        }
        let (d, _) = mpi.state.wait(&mpi.ctx, r);
        match mpi.state.reqs.failed_peer(r) {
            Some(p) => {
                dead.get_or_insert(p);
            }
            None => {
                let d = d.expect("try_barrier payload");
                let w = u32::from_le_bytes(d[..4].try_into().unwrap());
                if w != 0 {
                    dead.get_or_insert(w as usize - 1);
                }
            }
        }
        dist <<= 1;
        round += 1;
    }
    // Agreement round: the dissemination sweep's verdict can be split
    // (some members saw the poison, some didn't). Agree on the union of
    // everyone's observations so all survivors return the same answer.
    let agree_seq = next_seq(mpi);
    let seed: Vec<usize> = dead.into_iter().collect();
    let agreed = crate::comm::agree_group(mpi, ep, agree_seq, group, my_pos, &seed);
    match agreed.first() {
        Some(&peer) => {
            mpi.state.coll_aborts.fetch_add(1, Ordering::Relaxed);
            Err(PeerDead { peer })
        }
        None => Ok(()),
    }
}

/// Dissemination barrier over an explicit member list (all members alive,
/// all calling with the identical list). This is how survivors synchronize
/// after the dead have been drained: the group simply omits the corpses.
pub fn barrier_group_of(mpi: &MpiHandle, group: &[usize]) {
    let my_pos = group
        .iter()
        .position(|&r| r == mpi.rank())
        .expect("caller must be a member of the group");
    let seq = next_seq(mpi);
    barrier_group_ep(mpi, world_epoch(mpi), seq, group, my_pos);
}

/// Dissemination barrier over a group with an explicit epoch and sequence
/// number — the primitive behind both [`barrier_group_of`] and the
/// communicator-scoped barrier (whose keys carry the *communicator's*
/// epoch, not the world's).
pub(crate) fn barrier_group_ep(
    mpi: &MpiHandle,
    ep: u8,
    seq: u32,
    group: &[usize],
    my_pos: usize,
) {
    let gsize = group.len();
    debug_assert_eq!(group[my_pos], mpi.rank());
    if gsize <= 1 {
        return;
    }
    let mut round = 0u16;
    let mut dist = 1usize;
    while dist < gsize {
        let to = group[(my_pos + dist) % gsize];
        let from = group[(my_pos + gsize - dist) % gsize];
        let key = coll_key(ep, OP_BARRIER, round, seq);
        let s = mpi.state.isend_key(&mpi.ctx, to, key, NmBuf::default());
        let r = mpi.state.irecv_key(&mpi.ctx, Src::Rank(from), key);
        mpi.state.wait(&mpi.ctx, s);
        mpi.state.wait(&mpi.ctx, r);
        dist <<= 1;
        round += 1;
    }
}

/// Sum-allreduce over an explicit member list (recursive doubling with the
/// MPICH non-power-of-two fold). The survivor-group counterpart of
/// [`allreduce_sum`]: members must all be alive and pass the same list.
pub fn allreduce_sum_group(mpi: &MpiHandle, group: &[usize], contrib: &[f64]) -> Vec<f64> {
    let my_pos = group
        .iter()
        .position(|&r| r == mpi.rank())
        .expect("caller must be a member of the group");
    let seq = next_seq(mpi);
    let mut acc = contrib.to_vec();
    allreduce_group_recdbl(mpi, world_epoch(mpi), OP_REDUCE, seq, 2, group, my_pos, &mut acc);
    acc
}

// --- Hierarchical and log-round variants ---------------------------------

/// Jobs at or above this size route bcast/allreduce through the
/// hierarchical (node-leader) algorithms when they span multiple nodes.
pub const HIER_MIN_RANKS: usize = 16;
/// Jobs at or above this size route alltoall(v) through Bruck's algorithm.
pub const BRUCK_MIN_RANKS: usize = 64;

fn topo_of(mpi: &MpiHandle) -> std::sync::Arc<TopoMap> {
    std::sync::Arc::clone(mpi.state.vcs.topo())
}

fn hier_applicable(size: usize, topo: &TopoMap) -> bool {
    size >= HIER_MIN_RANKS && topo.multi_node()
}

/// Binomial-tree broadcast within an arbitrary rank group. `group` lists
/// the members (identical on every caller), `root_pos`/`my_pos` index into
/// it. On return every member's `payload` holds the root's bytes.
pub(crate) fn bcast_group(
    mpi: &MpiHandle,
    key: u64,
    group: &[usize],
    root_pos: usize,
    my_pos: usize,
    payload: &mut NmBuf,
) {
    let gsize = group.len();
    debug_assert_eq!(group[my_pos], mpi.rank());
    if gsize <= 1 {
        return;
    }
    let vrank = (my_pos + gsize - root_pos) % gsize;
    let mut mask = 1usize;
    while mask < gsize {
        if vrank & mask != 0 {
            let parent = group[((vrank - mask) + root_pos) % gsize];
            let r = mpi.state.irecv_key(&mpi.ctx, Src::Rank(parent), key);
            let (d, _) = mpi.state.wait(&mpi.ctx, r);
            *payload = NmBuf::from(d.expect("group bcast data"));
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    let mut sends = Vec::new();
    while mask > 0 {
        if vrank & mask == 0 && vrank + mask < gsize {
            let child = group[((vrank + mask) + root_pos) % gsize];
            sends.push(mpi.state.isend_key(&mpi.ctx, child, key, payload.share()));
        }
        mask >>= 1;
    }
    for s in sends {
        mpi.state.wait(&mpi.ctx, s);
    }
}

/// Binomial-tree sum-reduction within a group to `root_pos`. Returns true
/// on the member that holds the result (the root), false elsewhere.
fn reduce_group(
    mpi: &MpiHandle,
    key: u64,
    group: &[usize],
    root_pos: usize,
    my_pos: usize,
    acc: &mut [f64],
) -> bool {
    let gsize = group.len();
    debug_assert_eq!(group[my_pos], mpi.rank());
    if gsize <= 1 {
        return true;
    }
    let vrank = (my_pos + gsize - root_pos) % gsize;
    let mut mask = 1usize;
    while mask < gsize {
        if vrank & mask == 0 {
            let src_v = vrank | mask;
            if src_v < gsize {
                let src = group[(src_v + root_pos) % gsize];
                let r = mpi.state.irecv_key(&mpi.ctx, Src::Rank(src), key);
                let (d, _) = mpi.state.wait(&mpi.ctx, r);
                let theirs = bytes_to_f64s(&d.expect("group reduce data"));
                assert_eq!(theirs.len(), acc.len(), "reduce length mismatch");
                for (a, b) in acc.iter_mut().zip(theirs) {
                    *a += b;
                }
            }
        } else {
            let parent = group[((vrank & !mask) + root_pos) % gsize];
            let s = mpi.state.isend_key(&mpi.ctx, parent, key, f64s_to_bytes(acc));
            mpi.state.wait(&mpi.ctx, s);
            return false;
        }
        mask <<= 1;
    }
    true
}

/// Recursive-doubling sum-allreduce within a group, with MPICH's
/// non-power-of-two pre/post fold. Distinct rounds start at `round_base`
/// (uses rounds `round_base..round_base+1+log₂` plus `round_base + 30`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn allreduce_group_recdbl(
    mpi: &MpiHandle,
    ep: u8,
    op: u8,
    seq: u32,
    round_base: u16,
    group: &[usize],
    my_pos: usize,
    acc: &mut Vec<f64>,
) {
    let p = group.len();
    debug_assert_eq!(group[my_pos], mpi.rank());
    if p <= 1 {
        return;
    }
    let mut pof2 = 1usize;
    while pof2 * 2 <= p {
        pof2 *= 2;
    }
    let rem = p - pof2;
    // Pre-fold: the first 2·rem members pair up so a power of two remains.
    // Even positions hand their contribution to their odd neighbour and sit
    // out; odd positions absorb it and join with a compacted position.
    let fold_key = coll_key(ep, op, round_base, seq);
    let newpos: Option<usize> = if my_pos < 2 * rem {
        if my_pos.is_multiple_of(2) {
            let s = mpi
                .state
                .isend_key(&mpi.ctx, group[my_pos + 1], fold_key, f64s_to_bytes(acc));
            mpi.state.wait(&mpi.ctx, s);
            None
        } else {
            let r = mpi
                .state
                .irecv_key(&mpi.ctx, Src::Rank(group[my_pos - 1]), fold_key);
            let (d, _) = mpi.state.wait(&mpi.ctx, r);
            let theirs = bytes_to_f64s(&d.expect("fold data"));
            assert_eq!(theirs.len(), acc.len(), "reduce length mismatch");
            for (a, b) in acc.iter_mut().zip(theirs) {
                *a += b;
            }
            Some(my_pos / 2)
        }
    } else {
        Some(my_pos - rem)
    };
    if let Some(np) = newpos {
        let mut mask = 1usize;
        let mut round = round_base + 1;
        while mask < pof2 {
            let partner_np = np ^ mask;
            let partner_pos = if partner_np < rem {
                partner_np * 2 + 1
            } else {
                partner_np + rem
            };
            let partner = group[partner_pos];
            let key = coll_key(ep, op, round, seq);
            // Serialize before receiving: both sides exchange their
            // pre-round value.
            let s = mpi
                .state
                .isend_key(&mpi.ctx, partner, key, f64s_to_bytes(acc));
            let r = mpi.state.irecv_key(&mpi.ctx, Src::Rank(partner), key);
            let (d, _) = mpi.state.wait(&mpi.ctx, r);
            mpi.state.wait(&mpi.ctx, s);
            let theirs = bytes_to_f64s(&d.expect("recdbl data"));
            assert_eq!(theirs.len(), acc.len(), "reduce length mismatch");
            for (a, b) in acc.iter_mut().zip(theirs) {
                *a += b;
            }
            mask <<= 1;
            round += 1;
        }
    }
    // Post-fold: folded-out members get the finished result back.
    let unfold_key = coll_key(ep, op, round_base + 30, seq);
    if my_pos < 2 * rem {
        if my_pos.is_multiple_of(2) {
            let r = mpi
                .state
                .irecv_key(&mpi.ctx, Src::Rank(group[my_pos + 1]), unfold_key);
            let (d, _) = mpi.state.wait(&mpi.ctx, r);
            *acc = bytes_to_f64s(&d.expect("unfold data"));
        } else {
            let s = mpi
                .state
                .isend_key(&mpi.ctx, group[my_pos - 1], unfold_key, f64s_to_bytes(acc));
            mpi.state.wait(&mpi.ctx, s);
        }
    }
}

/// Hierarchical broadcast: root → its node leader (round 1), binomial over
/// node leaders (round 2), binomial inside each node (round 3, over shared
/// memory). Byte-identical result to [`bcast`].
pub fn bcast_hier(mpi: &MpiHandle, root: usize, data: Option<Bytes>) -> Bytes {
    let (rank, size) = (mpi.rank(), mpi.size());
    assert!(root < size);
    if size == 1 {
        return data.expect("bcast root must supply data");
    }
    let topo = topo_of(mpi);
    let seq = next_seq(mpi);
    let ep = world_epoch(mpi);
    let mut payload = if rank == root {
        NmBuf::from(data.expect("bcast root must supply data"))
    } else {
        NmBuf::default()
    };
    let root_node = topo.node_of(root);
    let lroot = topo.leader_of(root);
    // Round 1: seed the inter-node tree's root. Skipped when the job root
    // already leads its node.
    if root != lroot {
        let key = coll_key(ep, OP_BCAST, 1, seq);
        if rank == root {
            let s = mpi.state.isend_key(&mpi.ctx, lroot, key, payload.share());
            mpi.state.wait(&mpi.ctx, s);
        } else if rank == lroot {
            let r = mpi.state.irecv_key(&mpi.ctx, Src::Rank(root), key);
            let (d, _) = mpi.state.wait(&mpi.ctx, r);
            payload = NmBuf::from(d.expect("bcast data"));
        }
    }
    // Round 2: binomial over the leaders only — inter-node traffic.
    if let Some(my_lpos) = topo.leader_index(rank) {
        let root_lpos = topo.leader_index(lroot).expect("leader not indexed");
        bcast_group(
            mpi,
            coll_key(ep, OP_BCAST, 2, seq),
            topo.leaders(),
            root_lpos,
            my_lpos,
            &mut payload,
        );
    }
    // Round 3: fan out inside each node. On the root's own node the tree is
    // rooted at the job root (it has held the payload since the start).
    let node_group = topo.node_ranks(rank);
    if node_group.len() > 1 {
        let holder = if topo.node_of(rank) == root_node {
            root
        } else {
            topo.leader_of(rank)
        };
        bcast_group(
            mpi,
            coll_key(ep, OP_BCAST, 3, seq),
            node_group,
            topo.local_index(holder),
            topo.local_index(rank),
            &mut payload,
        );
    }
    payload.into_bytes()
}

/// Hierarchical sum-allreduce: binomial reduce to each node leader over
/// shared memory (round 1), recursive doubling across leaders (rounds
/// 2–32), binomial intra-node broadcast of the result (round 63).
/// Summation order differs from [`allreduce_sum`], so floating-point
/// results agree byte-exactly only when the additions are exact (e.g.
/// integer-valued contributions).
pub fn allreduce_sum_hier(mpi: &MpiHandle, contrib: &[f64]) -> Vec<f64> {
    let (rank, size) = (mpi.rank(), mpi.size());
    if size == 1 {
        return contrib.to_vec();
    }
    let topo = topo_of(mpi);
    let seq = next_seq(mpi);
    let ep = world_epoch(mpi);
    let mut acc = contrib.to_vec();
    let node_group = topo.node_ranks(rank);
    let my_li = topo.local_index(rank);
    let is_leader =
        reduce_group(mpi, coll_key(ep, OP_REDUCE, 1, seq), node_group, 0, my_li, &mut acc);
    if is_leader {
        let lpos = topo.leader_index(rank).expect("leader not indexed");
        allreduce_group_recdbl(mpi, ep, OP_REDUCE, seq, 2, topo.leaders(), lpos, &mut acc);
    }
    if node_group.len() > 1 {
        let mut buf = if is_leader {
            NmBuf::from(f64s_to_bytes(&acc))
        } else {
            NmBuf::default()
        };
        bcast_group(
            mpi,
            coll_key(ep, OP_REDUCE, 63, seq),
            node_group,
            0,
            my_li,
            &mut buf,
        );
        acc = bytes_to_f64s(&buf.into_bytes());
    }
    acc
}

/// Bruck all-to-all over length-prefixed blocks: ⌈log₂ P⌉ rounds; in round
/// j every rank packs the blocks whose (rotated) index has bit j set and
/// ships them 2ʲ ranks to the right. P·⌈log₂ P⌉ messages job-wide instead
/// of the pairwise exchange's P², at the cost of each byte travelling up to
/// ⌈log₂ P⌉ hops. Handles variable block sizes, so it backs both
/// [`alltoall_auto`] and [`alltoallv_auto`].
pub fn alltoallv_bruck(mpi: &MpiHandle, blocks: Vec<Bytes>) -> Vec<Bytes> {
    let (rank, size) = (mpi.rank(), mpi.size());
    assert_eq!(blocks.len(), size, "need one block per rank");
    if size == 1 {
        return blocks;
    }
    let seq = next_seq(mpi);
    let ep = world_epoch(mpi);
    // Local rotation: temp[i] holds the block destined to rank+i. Done in
    // place on the input vector — a handle array is 32 B × P per rank,
    // O(P²) job-wide, so this routine never materialises a second one.
    let mut temp = blocks;
    temp.rotate_left(rank);
    let mut pof = 1usize;
    let mut round = 1u16;
    while pof < size {
        let key = coll_key(ep, OP_ALLTOALLV, round, seq);
        let to = (rank + pof) % size;
        let from = (rank + size - pof) % size;
        let idxs: Vec<usize> = (0..size).filter(|i| i & pof != 0).collect();
        // u32 length prefixes: at thousands of ranks with small blocks the
        // prefix dominates wire size (a u64 one is 2/3 of the bytes for
        // 4-byte blocks) and can push the round message past the eager
        // threshold into rendezvous.
        let mut packed = Vec::new();
        for &i in &idxs {
            let blk = &temp[i];
            assert!(blk.len() <= u32::MAX as usize, "bruck block too large");
            packed.extend_from_slice(&(blk.len() as u32).to_le_bytes());
            packed.extend_from_slice(blk);
        }
        let r = mpi.state.irecv_key(&mpi.ctx, Src::Rank(from), key);
        let s = mpi
            .state
            .isend_key(&mpi.ctx, to, key, NmBuf::from(Bytes::from(packed)));
        let (d, _) = mpi.state.wait(&mpi.ctx, r);
        mpi.state.wait(&mpi.ctx, s);
        let d = d.expect("bruck data");
        let mut off = 0usize;
        // Zero-copy slices of the raw arrival buffer would pin the whole
        // buffer until the LAST of its blocks is overwritten — and every
        // round delivers some block that lives to the final round, so all
        // ⌈log₂P⌉ arrival buffers (mostly dead bytes) would stay resident
        // per rank at the peak: gigabytes job-wide at 4096 ranks. Instead,
        // group arriving blocks by the round that overwrites them — the
        // next set bit of the rotated index above this round's bit. All
        // blocks of a group die together, so a compact buffer per group
        // never holds dead data; the no-higher-bit group is final output.
        struct ArrivalGroup {
            /// Round whose arrival overwrites every block in this group
            /// (`u32::MAX`: never — the blocks are final output).
            death: u32,
            buf: Vec<u8>,
            /// (temp index, start, end) of each block within `buf`.
            bounds: Vec<(usize, usize, usize)>,
        }
        let shift = pof.trailing_zeros() + 1;
        let mut groups: Vec<ArrivalGroup> = Vec::new();
        for &i in &idxs {
            let len =
                u32::from_le_bytes(d[off..off + 4].try_into().unwrap()) as usize;
            off += 4;
            let death = match i >> shift {
                0 => u32::MAX,
                hi => hi.trailing_zeros(),
            };
            let g = match groups.iter().position(|g| g.death == death) {
                Some(g) => g,
                None => {
                    groups.push(ArrivalGroup {
                        death,
                        buf: Vec::new(),
                        bounds: Vec::new(),
                    });
                    groups.len() - 1
                }
            };
            let g = &mut groups[g];
            let start = g.buf.len();
            g.buf.extend_from_slice(&d[off..off + len]);
            g.bounds.push((i, start, g.buf.len()));
            off += len;
        }
        assert_eq!(off, d.len(), "bruck payload size mismatch");
        for g in groups {
            let shared = Bytes::from(g.buf);
            for (i, s, e) in g.bounds {
                temp[i] = shared.slice(s..e);
            }
        }
        pof <<= 1;
        round += 1;
    }
    // Inverse rotation: after the exchange rounds, temp[i] holds the block
    // that originated at rank−i, i.e. result[s] = temp[(rank−s) mod P] —
    // a reversal followed by a rotation, again in place.
    temp.reverse();
    temp.rotate_left(size - 1 - rank);
    temp
}

/// Bruck all-to-all with equal-size blocks (see [`alltoallv_bruck`]).
pub fn alltoall_bruck(mpi: &MpiHandle, blocks: Vec<Bytes>) -> Vec<Bytes> {
    alltoallv_bruck(mpi, blocks)
}

/// Pairwise-exchange alltoallv with at most `window` request pairs in
/// flight: the classic flat exchange's traffic pattern, bounded so P−1
/// outstanding requests (and their unexpected-queue footprint) never pile
/// up at once.
pub fn alltoallv_windowed(mpi: &MpiHandle, blocks: Vec<Bytes>, window: usize) -> Vec<Bytes> {
    let (rank, size) = (mpi.rank(), mpi.size());
    assert_eq!(blocks.len(), size, "need one block per rank");
    assert!(window > 0, "window must be positive");
    let seq = next_seq(mpi);
    let key = coll_key(world_epoch(mpi), OP_ALLTOALLV, 0, seq);
    let blocks: Vec<NmBuf> = blocks.into_iter().map(NmBuf::from).collect();
    let mut result: Vec<Option<Bytes>> = (0..size).map(|_| None).collect();
    result[rank] = Some(blocks[rank].share().into_bytes());
    let mut i = 1usize;
    while i < size {
        let end = (i + window).min(size);
        let mut recvs = Vec::with_capacity(end - i);
        for d in i..end {
            let from = (rank + size - d) % size;
            recvs.push((from, mpi.state.irecv_key(&mpi.ctx, Src::Rank(from), key)));
        }
        let mut sends = Vec::with_capacity(end - i);
        for d in i..end {
            let to = (rank + d) % size;
            sends.push(mpi.state.isend_key(&mpi.ctx, to, key, blocks[to].share()));
        }
        for (from, r) in recvs {
            let (data, _) = mpi.state.wait(&mpi.ctx, r);
            result[from] = Some(data.expect("alltoallv data"));
        }
        for s in sends {
            mpi.state.wait(&mpi.ctx, s);
        }
        i = end;
    }
    result.into_iter().map(|b| b.expect("missing block")).collect()
}

// --- Size/topology-based selection ----------------------------------------

/// Broadcast, selecting hierarchical vs flat by job size and topology.
/// Hierarchical barrier: an intra-node binomial gather raises each node
/// leader once all of its locals have arrived (round 1), a dissemination
/// exchange over the leaders synchronizes the nodes (rounds 8..), and an
/// intra-node binomial release lets everyone leave (round 63). Message
/// count is O(ranks + nodes·log nodes) against flat dissemination's
/// O(ranks·log ranks) — at 4096 ranks on 16-wide nodes that is ~10k
/// messages instead of ~49k.
pub fn barrier_hier(mpi: &MpiHandle) {
    let (rank, size) = (mpi.rank(), mpi.size());
    if size == 1 {
        return;
    }
    let topo = topo_of(mpi);
    let seq = next_seq(mpi);
    let ep = world_epoch(mpi);
    let node_group = topo.node_ranks(rank);
    let my_pos = topo.local_index(rank);
    // Phase 1: gather to the node leader (position 0) with empty payloads.
    reduce_group(
        mpi,
        coll_key(ep, OP_BARRIER, 1, seq),
        node_group,
        0,
        my_pos,
        &mut [],
    );
    // Phase 2: dissemination over the node leaders only.
    if let Some(lpos) = topo.leader_index(rank) {
        let leaders = topo.leaders();
        let nl = leaders.len();
        let mut dist = 1usize;
        let mut round = 8u16;
        while dist < nl {
            let key = coll_key(ep, OP_BARRIER, round, seq);
            let to = leaders[(lpos + dist) % nl];
            let from = leaders[(lpos + nl - dist) % nl];
            let s = mpi.state.isend_key(&mpi.ctx, to, key, NmBuf::default());
            let r = mpi.state.irecv_key(&mpi.ctx, Src::Rank(from), key);
            mpi.state.wait(&mpi.ctx, s);
            mpi.state.wait(&mpi.ctx, r);
            dist <<= 1;
            round += 1;
        }
    }
    // Phase 3: intra-node release from the leader.
    let mut empty = NmBuf::default();
    bcast_group(
        mpi,
        coll_key(ep, OP_BARRIER, 63, seq),
        node_group,
        0,
        my_pos,
        &mut empty,
    );
}

/// Barrier, selecting hierarchical vs flat dissemination by job size and
/// topology.
pub fn barrier_auto(mpi: &MpiHandle) {
    let topo = topo_of(mpi);
    if hier_applicable(mpi.size(), &topo) {
        barrier_hier(mpi)
    } else {
        barrier(mpi)
    }
}

pub fn bcast_auto(mpi: &MpiHandle, root: usize, data: Option<Bytes>) -> Bytes {
    let topo = topo_of(mpi);
    if hier_applicable(mpi.size(), &topo) {
        bcast_hier(mpi, root, data)
    } else {
        bcast(mpi, root, data)
    }
}

/// Allreduce (sum), selecting hierarchical vs flat by job size and
/// topology.
pub fn allreduce_sum_auto(mpi: &MpiHandle, contrib: &[f64]) -> Vec<f64> {
    let topo = topo_of(mpi);
    if hier_applicable(mpi.size(), &topo) {
        allreduce_sum_hier(mpi, contrib)
    } else {
        allreduce_sum(mpi, contrib)
    }
}

/// All-to-all, selecting Bruck vs flat pairwise by job size.
pub fn alltoall_auto(mpi: &MpiHandle, blocks: Vec<Bytes>) -> Vec<Bytes> {
    if mpi.size() >= BRUCK_MIN_RANKS {
        alltoall_bruck(mpi, blocks)
    } else {
        alltoall(mpi, blocks)
    }
}

/// Alltoallv, selecting Bruck vs flat pairwise by job size.
pub fn alltoallv_auto(mpi: &MpiHandle, blocks: Vec<Bytes>) -> Vec<Bytes> {
    if mpi.size() >= BRUCK_MIN_RANKS {
        alltoallv_bruck(mpi, blocks)
    } else {
        alltoallv(mpi, blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_codec_roundtrip() {
        let v = vec![1.5, -2.25, 0.0, f64::MAX];
        assert_eq!(bytes_to_f64s(&f64s_to_bytes(&v)), v);
    }

    #[test]
    #[should_panic(expected = "not an f64 vector")]
    fn f64_codec_rejects_ragged() {
        bytes_to_f64s(&[1, 2, 3]);
    }

    #[test]
    fn coll_keys_are_disjoint_from_user_keys() {
        let user = crate::progress::key_of(crate::progress::USER_CTX, u32::MAX);
        let coll = coll_key(0, OP_BARRIER, 0, 0);
        assert_ne!(user >> 48, coll >> 48);
        // Epoch-tagged keys stay in the collective context and never
        // collide across epochs.
        assert_ne!(coll_key(1, OP_BARRIER, 0, 0), coll);
        assert_eq!(coll_key(1, OP_BARRIER, 0, 0) >> 48, coll >> 48);
    }
}
