//! CH3 packets and the CH3 protocol engine.
//!
//! CH3 moves messages as typed packets: `Eager` for small messages, the
//! `Rts`/`Cts`/`Data` rendezvous for large ones (Fig. 2's outer
//! handshake). The engine is transport-agnostic: it receives inbound
//! packets and a `send` callback, and reports completions back to the
//! caller; the same engine therefore serves the Nemesis shared-memory
//! channel, the tailored baseline NICs, and the legacy NewMadeleine
//! netmod (where its rendezvous *nests* inside NewMadeleine's — the
//! pathology §2.1.3 describes).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::{Bytes, BytesMut};
use nmad::protocol::{self, Action, State, Verdict};
use parking_lot::Mutex;
use simnet::{BufOrigin, CopyMeter, NmBuf, Scheduler};

use crate::queues::{Ch3Queues, UnexMsg};
use crate::request::Req;

/// Modelled CH3 packet-header size on the wire.
pub const CH3_HEADER_BYTES: usize = 40;

/// A CH3 protocol packet. Payloads are [`NmBuf`] handles: cloning a packet
/// (retransmit queues, self-loops) bumps a refcount, it never copies the
/// payload bytes.
#[derive(Clone, Debug)]
pub enum Ch3Pkt {
    Eager { key: u64, data: NmBuf },
    Rts { key: u64, rdv_id: u64, len: usize },
    Cts { rdv_id: u64 },
    Data { rdv_id: u64, offset: usize, data: NmBuf },
    /// Per-fragment acknowledgement of an ACK-throttled rendezvous
    /// pipeline (Open MPI 1.2-era openib behaviour: the next fragment only
    /// leaves once the previous one is acknowledged).
    DataAck { rdv_id: u64 },
}

impl Ch3Pkt {
    /// Modelled wire size.
    pub fn wire_bytes(&self) -> usize {
        CH3_HEADER_BYTES
            + match self {
                Ch3Pkt::Eager { data, .. } => data.len(),
                Ch3Pkt::Rts { .. } => 16,
                Ch3Pkt::Cts { .. } => 8,
                Ch3Pkt::Data { data, .. } => 8 + data.len(),
                Ch3Pkt::DataAck { .. } => 8,
            }
    }

    /// Binary encoding — used where a transport can only carry opaque
    /// bytes (the legacy netmod path tunnels CH3 packets through
    /// NewMadeleine messages).
    ///
    /// This serialization is the *module-queue copy* of §2.1.3: the payload
    /// bytes are physically duplicated into the encoded frame. The copy is
    /// charged to the payload's [`CopyMeter`] so the copy-discipline tests
    /// can prove the bypass path skips it.
    pub fn encode(&self) -> NmBuf {
        let meter = match self {
            Ch3Pkt::Eager { data, .. } | Ch3Pkt::Data { data, .. } => {
                data.meter().map(Arc::clone)
            }
            _ => None,
        };
        let mut b = BytesMut::with_capacity(33 + 16);
        match self {
            Ch3Pkt::Eager { key, data } => {
                b.extend_from_slice(&[0u8]);
                b.extend_from_slice(&key.to_le_bytes());
                b.extend_from_slice(&(data.len() as u64).to_le_bytes());
                b.extend_from_slice(data);
            }
            Ch3Pkt::Rts { key, rdv_id, len } => {
                b.extend_from_slice(&[1u8]);
                b.extend_from_slice(&key.to_le_bytes());
                b.extend_from_slice(&rdv_id.to_le_bytes());
                b.extend_from_slice(&(*len as u64).to_le_bytes());
            }
            Ch3Pkt::Cts { rdv_id } => {
                b.extend_from_slice(&[2u8]);
                b.extend_from_slice(&rdv_id.to_le_bytes());
            }
            Ch3Pkt::Data {
                rdv_id,
                offset,
                data,
            } => {
                b.extend_from_slice(&[3u8]);
                b.extend_from_slice(&rdv_id.to_le_bytes());
                b.extend_from_slice(&(*offset as u64).to_le_bytes());
                b.extend_from_slice(&(data.len() as u64).to_le_bytes());
                b.extend_from_slice(data);
            }
            Ch3Pkt::DataAck { rdv_id } => {
                b.extend_from_slice(&[4u8]);
                b.extend_from_slice(&rdv_id.to_le_bytes());
            }
        }
        let frame = b.freeze();
        match meter {
            Some(m) => {
                // One fresh allocation plus a memcpy of the whole frame —
                // the tunnel's per-packet cost the bypass avoids.
                m.record_alloc();
                m.record_copy(frame.len());
                NmBuf::adopt(frame, BufOrigin::Ch3, &m)
            }
            None => NmBuf::from_bytes(frame, BufOrigin::Ch3),
        }
    }

    /// Decode [`Ch3Pkt::encode`]'s output. The decoded payload is a
    /// zero-copy view into the encoded frame (a slice-ref, not a memcpy),
    /// and it inherits the frame's meter.
    ///
    /// # Panics
    /// Panics on malformed input — transports are trusted in-process.
    pub fn decode(raw: NmBuf) -> Ch3Pkt {
        use bytes::Buf;
        let meter = raw.meter().map(Arc::clone);
        let mut raw = raw.into_bytes();
        let payload = |rest: Bytes| match &meter {
            Some(m) => {
                m.record_slice();
                NmBuf::adopt(rest, BufOrigin::Ch3, m)
            }
            None => NmBuf::from_bytes(rest, BufOrigin::Ch3),
        };
        let variant = raw.get_u8();
        match variant {
            0 => {
                let key = raw.get_u64_le();
                let len = raw.get_u64_le() as usize;
                assert_eq!(raw.len(), len, "eager length mismatch");
                Ch3Pkt::Eager {
                    key,
                    data: payload(raw),
                }
            }
            1 => Ch3Pkt::Rts {
                key: raw.get_u64_le(),
                rdv_id: raw.get_u64_le(),
                len: raw.get_u64_le() as usize,
            },
            2 => Ch3Pkt::Cts {
                rdv_id: raw.get_u64_le(),
            },
            3 => {
                let rdv_id = raw.get_u64_le();
                let offset = raw.get_u64_le() as usize;
                let len = raw.get_u64_le() as usize;
                assert_eq!(raw.len(), len, "data length mismatch");
                Ch3Pkt::Data {
                    rdv_id,
                    offset,
                    data: payload(raw),
                }
            }
            4 => Ch3Pkt::DataAck {
                rdv_id: raw.get_u64_le(),
            },
            v => panic!("unknown CH3 packet variant {v}"),
        }
    }
}

/// Callback the engine uses to transmit a packet toward `dst`.
pub type SendFn<'a> = dyn FnMut(&Scheduler, usize, Ch3Pkt) + 'a;

/// A completion the engine reports to its caller.
#[derive(Debug)]
pub enum Ch3Event {
    RecvDone {
        req: Req,
        data: Bytes,
        src: usize,
        key: u64,
        /// Was the matched posted entry an ANY_SOURCE one?
        was_any: bool,
    },
    SendDone {
        req: Req,
    },
}

struct RdvOut {
    req: Req,
    dst: usize,
    data: NmBuf,
    /// Bytes already handed to the transport (ACK-throttled mode).
    cursor: usize,
    /// Protocol-table state of the outbound side. The inbound side needs
    /// no field: a live [`RdvIn`] entry *is* `RWaitData`, its absence is
    /// `Gone` (CH3 never retries, so there is no tombstone).
    state: State,
}

struct RdvIn {
    req: Req,
    src: usize,
    key: u64,
    was_any: bool,
    buf: Vec<u8>,
    received: usize,
}

struct EngineInner {
    rdv_out: HashMap<u64, RdvOut>,
    rdv_in: HashMap<(usize, u64), RdvIn>,
    next_rdv: u64,
}

/// The per-rank CH3 protocol engine.
pub struct Ch3Engine {
    /// The CH3 queue pair (shared with the any-source machinery).
    pub queues: Ch3Queues,
    inner: Mutex<EngineInner>,
    my_rank: usize,
    eager_threshold: usize,
    /// Rendezvous payload pipelining: chunk size (None = single DATA).
    rdv_chunk: Option<usize>,
    /// ACK-throttled pipeline: the next fragment only leaves after the
    /// receiver acknowledges the previous one (depth-1, the Open MPI
    /// 1.2-era openib behaviour — the source of its medium-size bandwidth
    /// dip, Fig. 4b).
    rdv_ack: bool,
    /// Copy accounting for the engine's own buffer work (rendezvous
    /// landing buffers, the receive-side reassembly memcpy).
    meter: Option<Arc<CopyMeter>>,
    /// Observability handle: CH3 protocol counters (eager/RTS/CTS/DATA
    /// traffic). Inert — and allocation-free — unless the job armed
    /// `ObsConfig`.
    rec: obs::RankRec,
    /// Malformed or stray protocol packets tolerated and dropped (e.g. a
    /// duplicated DATA/CTS for a rendezvous that already finished —
    /// reachable with faults armed). A counter, not a crash: one bad
    /// frame must never take the rank down.
    protocol_errors: AtomicU64,
}

impl Ch3Engine {
    pub fn new(my_rank: usize, eager_threshold: usize, rdv_chunk: Option<usize>) -> Ch3Engine {
        Self::with_ack(my_rank, eager_threshold, rdv_chunk, false)
    }

    pub fn with_ack(
        my_rank: usize,
        eager_threshold: usize,
        rdv_chunk: Option<usize>,
        rdv_ack: bool,
    ) -> Ch3Engine {
        if let Some(c) = rdv_chunk {
            assert!(c > 0, "zero rendezvous chunk");
        }
        assert!(
            !rdv_ack || rdv_chunk.is_some(),
            "ACK throttling requires a chunk size"
        );
        Ch3Engine {
            queues: Ch3Queues::new(),
            inner: Mutex::new(EngineInner {
                rdv_out: HashMap::new(),
                rdv_in: HashMap::new(),
                next_rdv: 0,
            }),
            my_rank,
            eager_threshold,
            rdv_chunk,
            rdv_ack,
            meter: None,
            rec: obs::RankRec::off(),
            protocol_errors: AtomicU64::new(0),
        }
    }

    /// Stray/malformed packets dropped instead of crashing (diagnostics).
    pub fn protocol_errors(&self) -> u64 {
        self.protocol_errors.load(Ordering::Relaxed)
    }

    fn note_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Attach the job-wide copy meter (builder style — the stack assembles
    /// engines before handing them to `ProcState`).
    pub fn with_copy_meter(mut self, meter: &Arc<CopyMeter>) -> Ch3Engine {
        self.meter = Some(Arc::clone(meter));
        self
    }

    /// Attach the observability handle (builder style, like the meter).
    pub fn with_recorder(mut self, rec: obs::RankRec) -> Ch3Engine {
        self.rec = rec;
        self
    }

    pub fn eager_threshold(&self) -> usize {
        self.eager_threshold
    }

    /// Guard context for the shared protocol table. The CH3 engine is the
    /// *buffered* dialect (the send completes once the payload is handed
    /// to the transport), optionally ACK-throttled, never retried
    /// (transports are trusted in-process), and has no credit layer.
    fn pctx(&self, in_range: bool, last: bool) -> protocol::Ctx {
        protocol::Ctx {
            retry: false,
            ack_mode: self.rdv_ack,
            buffered: true,
            in_range,
            last,
            credit_fallback: false,
        }
    }

    /// Would the next fragment cut from `rdv` be the final one? Answers
    /// the `Last` guard of the throttled pipeline *before* the cursor
    /// moves.
    fn next_is_last(&self, rdv: &RdvOut) -> bool {
        match self.rdv_chunk {
            Some(chunk) => rdv.cursor + chunk >= rdv.data.len(),
            None => true,
        }
    }

    /// Send `data` to `dst` under `key`. Small messages are sent eagerly
    /// (buffered semantics: the send request completes immediately). Large
    /// messages start the CH3 rendezvous; the send completes once the CTS
    /// arrives and the payload is handed to the transport.
    ///
    /// `eager_limit` is per call because it depends on the destination's
    /// transport: the shared-memory channel takes any size eagerly (the
    /// cell queues fragment and flow-control), while network paths use the
    /// engine's configured threshold.
    ///
    /// Returns `true` if the send request `req` is already complete.
    #[allow(clippy::too_many_arguments)]
    pub fn send_msg(
        &self,
        sched: &Scheduler,
        send: &mut SendFn,
        req: Req,
        dst: usize,
        key: u64,
        data: NmBuf,
        eager_limit: usize,
    ) -> bool {
        if data.len() <= eager_limit {
            self.rec.inc("ch3.eager_tx", 1);
            self.rec.observe("ch3.eager.bytes", data.len() as u64);
            send(sched, dst, Ch3Pkt::Eager { key, data });
            true
        } else {
            // Table entry point: the CH3 engine has no credit layer, so
            // the size test alone forces the rendezvous path.
            let Verdict::Step { actions, next, .. } =
                protocol::step(State::Gone, protocol::Event::SendRdv, self.pctx(false, false))
            else {
                unreachable!("entry/size must be a table row");
            };
            debug_assert!(actions.contains(&Action::SendRts));
            let mut inner = self.inner.lock();
            let rdv_id = inner.next_rdv;
            inner.next_rdv += 1;
            let len = data.len();
            inner.rdv_out.insert(
                rdv_id,
                RdvOut {
                    req,
                    dst,
                    data,
                    cursor: 0,
                    state: next,
                },
            );
            drop(inner);
            self.rec.inc("ch3.rts_tx", 1);
            self.rec.observe("ch3.rdv.bytes", len as u64);
            send(sched, dst, Ch3Pkt::Rts { key, rdv_id, len });
            false
        }
    }

    /// Post a receive; consumes a matching unexpected message if present.
    /// Returns any immediate completion plus, for the pending case, the
    /// active flag of the posted entry.
    pub fn post_recv(
        &self,
        sched: &Scheduler,
        send: &mut SendFn,
        req: Req,
        src: Option<usize>,
        key: u64,
    ) -> (Option<Ch3Event>, Option<crate::queues::ActiveFlag>) {
        match self.queues.post(req, src, key) {
            Ok(flag) => (None, Some(flag)),
            Err(UnexMsg::Eager {
                src: s,
                key: k,
                data,
            }) => (
                Some(Ch3Event::RecvDone {
                    req,
                    // Lineage ends at the user-facing completion.
                    data: data.into_bytes(),
                    src: s,
                    key: k,
                    was_any: src.is_none(),
                }),
                None,
            ),
            Err(UnexMsg::Rts {
                src: s,
                key: k,
                rdv_id,
                len,
            }) => {
                self.begin_rdv_in(req, s, k, src.is_none(), rdv_id, len);
                send(sched, s, Ch3Pkt::Cts { rdv_id });
                (None, None)
            }
        }
    }

    fn begin_rdv_in(&self, req: Req, src: usize, key: u64, was_any: bool, rdv_id: u64, len: usize) {
        // Table entry point for the receive side; the live entry embodies
        // the `RWaitData` state the table hands back.
        let Verdict::Step { actions, next, .. } = protocol::step(
            State::Gone,
            protocol::Event::RtsMatched,
            self.pctx(false, false),
        ) else {
            unreachable!("entry/rts-matched must be a table row");
        };
        debug_assert!(actions.contains(&Action::AllocLanding));
        debug_assert!(actions.contains(&Action::SendCts));
        debug_assert_eq!(next, State::RWaitData);
        if let Some(m) = &self.meter {
            // The rendezvous landing buffer — one allocation, no copy yet.
            m.record_alloc();
        }
        let mut inner = self.inner.lock();
        let prev = inner.rdv_in.insert(
            (src, rdv_id),
            RdvIn {
                req,
                src,
                key,
                was_any,
                buf: vec![0u8; len],
                received: 0,
            },
        );
        debug_assert!(prev.is_none(), "duplicate CH3 rendezvous {rdv_id}");
    }

    /// Feed one inbound packet through the protocol; completions (and any
    /// reply packets via `send`) come out.
    pub fn on_packet(
        &self,
        sched: &Scheduler,
        send: &mut SendFn,
        src: usize,
        pkt: Ch3Pkt,
        events: &mut Vec<Ch3Event>,
    ) {
        self.rec.inc(
            match &pkt {
                Ch3Pkt::Eager { .. } => "ch3.eager_rx",
                Ch3Pkt::Rts { .. } => "ch3.rts_rx",
                Ch3Pkt::Cts { .. } => "ch3.cts_rx",
                Ch3Pkt::Data { .. } => "ch3.data_rx",
                Ch3Pkt::DataAck { .. } => "ch3.data_ack_rx",
            },
            1,
        );
        match pkt {
            Ch3Pkt::Eager { key, data } => match self.queues.match_arrival(src, key) {
                Some(entry) => events.push(Ch3Event::RecvDone {
                    req: entry.req,
                    // Zero-copy: the completion hands out the same storage
                    // the transport delivered.
                    data: data.into_bytes(),
                    src,
                    key,
                    was_any: entry.src.is_none(),
                }),
                None => self.queues.store_unexpected(UnexMsg::Eager { src, key, data }),
            },
            Ch3Pkt::Rts { key, rdv_id, len } => match self.queues.match_arrival(src, key) {
                Some(entry) => {
                    self.begin_rdv_in(entry.req, src, key, entry.src.is_none(), rdv_id, len);
                    send(sched, src, Ch3Pkt::Cts { rdv_id });
                }
                None => self.queues.store_unexpected(UnexMsg::Rts {
                    src,
                    key,
                    rdv_id,
                    len,
                }),
            },
            Ch3Pkt::Cts { rdv_id } => {
                // Table rows: `cts/buffered` streams everything and
                // completes; `cts/throttled` opens the depth-1 fragment
                // pipeline; `cts/throttled-single-fragment` does both at
                // once. A CTS for an unknown rendezvous (already finished)
                // or a duplicated CTS mid-pipeline has no row — counted
                // and dropped. (The latter used to advance the fragment
                // cursor a second time and double-complete the send.)
                let inner = self.inner.lock();
                let (state, last) = match inner.rdv_out.get(&rdv_id) {
                    Some(rdv) => (rdv.state, self.next_is_last(rdv)),
                    None => (State::Gone, false),
                };
                match protocol::step(state, protocol::Event::CtsRx, self.pctx(false, last)) {
                    Verdict::Step { actions, next, .. } => {
                        self.apply_sender_step(inner, sched, send, rdv_id, actions, next, events);
                    }
                    Verdict::Ignore { .. } => {}
                    Verdict::Error => {
                        drop(inner);
                        self.note_protocol_error();
                    }
                }
            }
            Ch3Pkt::DataAck { rdv_id } => {
                // Table rows: `ack/next-fragment` keeps the depth-1
                // pipeline moving, `ack/final-fragment` sends the last cut
                // and completes. A stray/duplicated ack (entry gone, or an
                // engine that never throttles) has no row.
                let inner = self.inner.lock();
                let (state, last) = match inner.rdv_out.get(&rdv_id) {
                    Some(rdv) => (rdv.state, self.next_is_last(rdv)),
                    None => (State::Gone, false),
                };
                match protocol::step(state, protocol::Event::DataAckRx, self.pctx(false, last)) {
                    Verdict::Step { actions, next, .. } => {
                        self.apply_sender_step(inner, sched, send, rdv_id, actions, next, events);
                    }
                    Verdict::Ignore { .. } => {}
                    Verdict::Error => {
                        drop(inner);
                        self.note_protocol_error();
                    }
                }
            }
            Ch3Pkt::Data {
                rdv_id,
                offset,
                data,
            } => {
                // Table rows: `data/chunk` (plain reassembly),
                // `data/chunk-acked` (reassembly + request the next
                // fragment), `data/last` (complete; the last fragment
                // needs no ack — the sender finished with it). A chunk
                // for an unknown rendezvous (already finished: duplicated
                // final chunk, reachable with faults armed) or one past
                // the announced length (would corrupt the landing buffer)
                // has no row — counted and dropped. One lock scope for
                // the whole update: the old copy / unlock / re-lock /
                // `remove().unwrap()` sequence crashed on a duplicated
                // final chunk (the entry was gone by the second lock).
                let mut inner = self.inner.lock();
                let (state, in_range, last) = match inner.rdv_in.get(&(src, rdv_id)) {
                    Some(rdv) => {
                        let end = offset.checked_add(data.len());
                        let in_range = end.is_some_and(|e| e <= rdv.buf.len());
                        let last = in_range && rdv.received + data.len() == rdv.buf.len();
                        (State::RWaitData, in_range, last)
                    }
                    None => (State::Gone, false, false),
                };
                match protocol::step(state, protocol::Event::DataRx, self.pctx(in_range, last)) {
                    Verdict::Step { actions, next, .. } => {
                        let rdv = inner
                            .rdv_in
                            .get_mut(&(src, rdv_id))
                            .expect("the table only steps live entries");
                        let mut ack_dst = None;
                        for a in actions {
                            match a {
                                Action::CopyChunk => {
                                    // The one receive-side reassembly
                                    // memcpy of the CH3 rendezvous (charged
                                    // to the payload's meter).
                                    data.copy_out(&mut rdv.buf[offset..offset + data.len()]);
                                    rdv.received += data.len();
                                }
                                Action::SendDataAck => ack_dst = Some(rdv.src),
                                // The table completes via `next == Gone`
                                // below; CH3 has no receive-side timer.
                                Action::CompleteRecv | Action::BumpRecvTimer => {}
                                other => unreachable!("CH3 receiver step emitted {other:?}"),
                            }
                        }
                        let finished = (next == State::Gone).then(|| {
                            inner
                                .rdv_in
                                .remove(&(src, rdv_id))
                                .expect("entry held under the same lock")
                        });
                        drop(inner);
                        if let Some(dst) = ack_dst {
                            send(sched, dst, Ch3Pkt::DataAck { rdv_id });
                        }
                        if let Some(rdv) = finished {
                            events.push(Ch3Event::RecvDone {
                                req: rdv.req,
                                data: Bytes::from(rdv.buf),
                                src: rdv.src,
                                key: rdv.key,
                                was_any: rdv.was_any,
                            });
                        }
                    }
                    Verdict::Ignore { .. } => {}
                    Verdict::Error => {
                        drop(inner);
                        self.note_protocol_error();
                    }
                }
            }
        }
    }

    /// Realize one sender-side table step against the outbound entry:
    /// actions become packets and completions, and the entry is dropped
    /// when the table lands back in `Gone`.
    #[allow(clippy::too_many_arguments)]
    fn apply_sender_step(
        &self,
        mut inner: parking_lot::MutexGuard<'_, EngineInner>,
        sched: &Scheduler,
        send: &mut SendFn,
        rdv_id: u64,
        actions: &'static [Action],
        next: State,
        events: &mut Vec<Ch3Event>,
    ) {
        let mut pkts = Vec::new();
        let mut done = None;
        {
            let rdv = inner
                .rdv_out
                .get_mut(&rdv_id)
                .expect("the table only steps live entries");
            rdv.state = next;
            for a in actions {
                match a {
                    Action::SendAllData => {
                        // Buffered semantics: hand the whole payload to
                        // the transport now (chunked if configured).
                        let chunk = self.rdv_chunk.unwrap_or(rdv.data.len().max(1));
                        let mut off = 0;
                        while off < rdv.data.len() {
                            let end = (off + chunk).min(rdv.data.len());
                            pkts.push((
                                rdv.dst,
                                Ch3Pkt::Data {
                                    rdv_id,
                                    offset: off,
                                    data: rdv.data.slice(off..end),
                                },
                            ));
                            off = end;
                        }
                    }
                    Action::SendNextFragment => {
                        pkts.push(Self::next_fragment(
                            rdv,
                            rdv_id,
                            self.rdv_chunk.expect("ack mode requires chunking"),
                        ));
                    }
                    Action::CompleteSend => done = Some(rdv.req),
                    other => unreachable!("CH3 sender step emitted {other:?}"),
                }
            }
        }
        if next == State::Gone {
            inner.rdv_out.remove(&rdv_id);
        }
        drop(inner);
        for (dst, pkt) in pkts {
            send(sched, dst, pkt);
        }
        if let Some(req) = done {
            events.push(Ch3Event::SendDone { req });
        }
    }

    /// Cut the next fragment of an ACK-throttled rendezvous. Returns
    /// `(dst, packet)`; whether it was the last cut is the table's call
    /// (the `Last` guard), not this helper's.
    fn next_fragment(rdv: &mut RdvOut, rdv_id: u64, chunk: usize) -> (usize, Ch3Pkt) {
        let off = rdv.cursor;
        let end = (off + chunk).min(rdv.data.len());
        debug_assert!(off < end, "fragment past the payload end");
        rdv.cursor = end;
        (
            rdv.dst,
            Ch3Pkt::Data {
                rdv_id,
                offset: off,
                data: rdv.data.slice(off..end),
            },
        )
    }

    /// In-flight rendezvous count (diagnostics).
    pub fn rdv_in_flight(&self) -> usize {
        let inner = self.inner.lock();
        inner.rdv_out.len() + inner.rdv_in.len()
    }

    /// The rank this engine belongs to.
    pub fn rank(&self) -> usize {
        self.my_rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{ReqKind, ReqPath, RequestTable};
    use simnet::SimBuilder;

    fn sched() -> Scheduler {
        SimBuilder::new().build().scheduler()
    }

    /// Wire two engines together with an in-memory packet queue and pump
    /// until quiescent.
    fn pump(
        s: &Scheduler,
        engines: &[&Ch3Engine],
        queue: &mut Vec<(usize, usize, Ch3Pkt)>,
        events: &mut Vec<(usize, Ch3Event)>,
    ) {
        while let Some((src, dst, pkt)) = queue.pop() {
            let mut replies: Vec<(usize, usize, Ch3Pkt)> = Vec::new();
            let mut evs = Vec::new();
            {
                let mut send = |_: &Scheduler, to: usize, p: Ch3Pkt| {
                    replies.push((dst, to, p));
                };
                engines[dst].on_packet(s, &mut send, src, pkt, &mut evs);
            }
            for e in evs {
                events.push((dst, e));
            }
            queue.extend(replies);
        }
    }

    #[test]
    fn codec_roundtrip() {
        let pkts = vec![
            Ch3Pkt::Eager {
                key: 7,
                data: NmBuf::from(Bytes::from_static(b"abc")),
            },
            Ch3Pkt::Rts {
                key: 9,
                rdv_id: 3,
                len: 1 << 20,
            },
            Ch3Pkt::Cts { rdv_id: 3 },
            Ch3Pkt::Data {
                rdv_id: 3,
                offset: 512,
                data: NmBuf::from(Bytes::from_static(b"payload")),
            },
        ];
        for p in pkts {
            let enc = p.encode();
            let dec = Ch3Pkt::decode(enc);
            match (&p, &dec) {
                (Ch3Pkt::Eager { key: a, data: d1 }, Ch3Pkt::Eager { key: b, data: d2 }) => {
                    assert_eq!(a, b);
                    assert_eq!(d1, d2);
                }
                (
                    Ch3Pkt::Rts {
                        key: a,
                        rdv_id: r1,
                        len: l1,
                    },
                    Ch3Pkt::Rts {
                        key: b,
                        rdv_id: r2,
                        len: l2,
                    },
                ) => {
                    assert_eq!((a, r1, l1), (b, r2, l2));
                }
                (Ch3Pkt::Cts { rdv_id: a }, Ch3Pkt::Cts { rdv_id: b }) => assert_eq!(a, b),
                (
                    Ch3Pkt::Data {
                        rdv_id: a,
                        offset: o1,
                        data: d1,
                    },
                    Ch3Pkt::Data {
                        rdv_id: b,
                        offset: o2,
                        data: d2,
                    },
                ) => {
                    assert_eq!((a, o1), (b, o2));
                    assert_eq!(d1, d2);
                }
                _ => panic!("variant changed in roundtrip"),
            }
        }
    }

    #[test]
    fn eager_send_completes_immediately() {
        let s = sched();
        let t = RequestTable::new();
        let e = Ch3Engine::new(0, 16 * 1024, None);
        let req = t.create(ReqKind::Send, ReqPath::Net);
        let mut sent = Vec::new();
        let mut send = |_: &Scheduler, dst: usize, p: Ch3Pkt| sent.push((dst, p));
        let done = e.send_msg(
            &s,
            &mut send,
            req,
            1,
            7,
            NmBuf::from(Bytes::from_static(b"small")),
            16 * 1024,
        );
        assert!(done);
        assert_eq!(sent.len(), 1);
        assert!(matches!(sent[0].1, Ch3Pkt::Eager { key: 7, .. }));
    }

    #[test]
    fn rendezvous_full_handshake() {
        let s = sched();
        let t = RequestTable::new();
        let e0 = Ch3Engine::new(0, 1024, None);
        let e1 = Ch3Engine::new(1, 1024, None);
        let sreq = t.create(ReqKind::Send, ReqPath::Net);
        let rreq = t.create(ReqKind::Recv, ReqPath::Net);
        let payload = NmBuf::from(vec![0x5A; 10_000]);

        let mut queue: Vec<(usize, usize, Ch3Pkt)> = Vec::new();
        let mut events = Vec::new();
        {
            let mut send0 = |_: &Scheduler, dst: usize, p: Ch3Pkt| queue.push((0, dst, p));
            assert!(!e0.send_msg(&s, &mut send0, sreq, 1, 7, payload.share(), 1024));
        }
        {
            let mut send1 = |_: &Scheduler, dst: usize, p: Ch3Pkt| queue.push((1, dst, p));
            let (ev, _flag) = e1.post_recv(&s, &mut send1, rreq, Some(0), 7);
            assert!(ev.is_none(), "nothing arrived yet");
        }
        pump(&s, &[&e0, &e1], &mut queue, &mut events);
        // Sender got SendDone, receiver got RecvDone with intact payload.
        let mut send_done = false;
        let mut recv_done = false;
        for (who, e) in events {
            match e {
                Ch3Event::SendDone { req } => {
                    assert_eq!((who, req), (0, sreq));
                    send_done = true;
                }
                Ch3Event::RecvDone { req, data, src, .. } => {
                    assert_eq!((who, req, src), (1, rreq, 0));
                    assert_eq!(&data[..], &payload[..]);
                    recv_done = true;
                }
            }
        }
        assert!(send_done && recv_done);
        assert_eq!(e0.rdv_in_flight(), 0);
        assert_eq!(e1.rdv_in_flight(), 0);
    }

    #[test]
    fn rendezvous_chunked_pipeline() {
        let s = sched();
        let t = RequestTable::new();
        // 4KB chunks.
        let e0 = Ch3Engine::new(0, 1024, Some(4096));
        let e1 = Ch3Engine::new(1, 1024, Some(4096));
        let sreq = t.create(ReqKind::Send, ReqPath::Net);
        let rreq = t.create(ReqKind::Recv, ReqPath::Net);
        let payload: Vec<u8> = (0..10_000).map(|i| (i % 256) as u8).collect();
        let mut queue = Vec::new();
        let mut events = Vec::new();
        let mut data_pkts = 0;
        {
            let mut send1 = |_: &Scheduler, dst: usize, p: Ch3Pkt| queue.push((1, dst, p));
            e1.post_recv(&s, &mut send1, rreq, Some(0), 7);
        }
        {
            let mut send0 = |_: &Scheduler, dst: usize, p: Ch3Pkt| queue.push((0, dst, p));
            e0.send_msg(
                &s,
                &mut send0,
                sreq,
                1,
                7,
                NmBuf::from(Bytes::copy_from_slice(&payload)),
                1024,
            );
        }
        // Manual pump to count DATA packets.
        while let Some((src, dst, pkt)) = queue.pop() {
            if matches!(pkt, Ch3Pkt::Data { .. }) {
                data_pkts += 1;
            }
            let engines = [&e0, &e1];
            let mut replies = Vec::new();
            let mut evs = Vec::new();
            {
                let mut send =
                    |_: &Scheduler, to: usize, p: Ch3Pkt| replies.push((dst, to, p));
                engines[dst].on_packet(&s, &mut send, src, pkt, &mut evs);
            }
            events.extend(evs);
            queue.extend(replies);
        }
        assert_eq!(data_pkts, 3, "10000 bytes in 4096-byte chunks");
        let got = events
            .into_iter()
            .find_map(|e| match e {
                Ch3Event::RecvDone { data, .. } => Some(data),
                _ => None,
            })
            .expect("recv completes");
        assert_eq!(&got[..], &payload[..]);
    }

    /// Regression: a duplicated final DATA chunk (the "dup'd FIN" of a
    /// fault-armed transport) used to hit `rdv_in.remove().unwrap()` on an
    /// entry the first copy already removed, crashing the rank. It must be
    /// a counted protocol error instead — and the same goes for a
    /// duplicated CTS replayed at the sender after the rendezvous is done.
    #[test]
    fn duplicated_final_data_is_counted_not_a_crash() {
        let s = sched();
        let t = RequestTable::new();
        let e0 = Ch3Engine::new(0, 1024, None);
        let e1 = Ch3Engine::new(1, 1024, None);
        let sreq = t.create(ReqKind::Send, ReqPath::Net);
        let rreq = t.create(ReqKind::Recv, ReqPath::Net);
        let payload = NmBuf::from(vec![0x7E; 5_000]);

        let mut queue: Vec<(usize, usize, Ch3Pkt)> = Vec::new();
        let mut events = Vec::new();
        {
            let mut send1 = |_: &Scheduler, dst: usize, p: Ch3Pkt| queue.push((1, dst, p));
            e1.post_recv(&s, &mut send1, rreq, Some(0), 7);
        }
        {
            let mut send0 = |_: &Scheduler, dst: usize, p: Ch3Pkt| queue.push((0, dst, p));
            e0.send_msg(&s, &mut send0, sreq, 1, 7, payload.share(), 1024);
        }
        // Pump by hand, duplicating every DATA and CTS frame — the lossy
        // transport's replay, concentrated on the packets that used to
        // kill the receiver (DATA after completion) and the sender (CTS
        // after the payload left).
        let engines = [&e0, &e1];
        while let Some((src, dst, pkt)) = queue.pop() {
            let dup = matches!(pkt, Ch3Pkt::Data { .. } | Ch3Pkt::Cts { .. })
                .then(|| pkt.clone());
            let mut replies = Vec::new();
            let mut evs = Vec::new();
            {
                let mut send =
                    |_: &Scheduler, to: usize, p: Ch3Pkt| replies.push((dst, to, p));
                engines[dst].on_packet(&s, &mut send, src, pkt, &mut evs);
                if let Some(p) = dup {
                    engines[dst].on_packet(&s, &mut send, src, p, &mut evs);
                }
            }
            events.extend(evs);
            queue.extend(replies);
        }
        // The transfer still completed exactly once, byte-exact…
        let recvs: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Ch3Event::RecvDone { data, .. } => Some(data),
                _ => None,
            })
            .collect();
        assert_eq!(recvs.len(), 1, "exactly one receive completion");
        assert_eq!(&recvs[0][..], &payload[..]);
        // …and the duplicates were tallied, not fatal: the replayed final
        // DATA at the receiver, the replayed CTS at the sender.
        assert!(e1.protocol_errors() >= 1, "dup final DATA counted");
        assert!(e0.protocol_errors() >= 1, "dup CTS counted");
        assert_eq!(e0.rdv_in_flight(), 0);
        assert_eq!(e1.rdv_in_flight(), 0);
    }

    /// An out-of-bounds DATA chunk (offset past the announced length) is
    /// dropped and counted, never written.
    #[test]
    fn out_of_bounds_data_chunk_is_dropped() {
        let s = sched();
        let t = RequestTable::new();
        let e1 = Ch3Engine::new(1, 64, None);
        let rreq = t.create(ReqKind::Recv, ReqPath::Net);
        let mut queue: Vec<(usize, usize, Ch3Pkt)> = Vec::new();
        let mut events = Vec::new();
        {
            let mut send1 = |_: &Scheduler, dst: usize, p: Ch3Pkt| queue.push((1, dst, p));
            e1.post_recv(&s, &mut send1, rreq, Some(0), 7);
            e1.on_packet(
                &s,
                &mut |_: &Scheduler, _: usize, _: Ch3Pkt| {},
                0,
                Ch3Pkt::Rts {
                    key: 7,
                    rdv_id: 0,
                    len: 100,
                },
                &mut events,
            );
            e1.on_packet(
                &s,
                &mut |_: &Scheduler, _: usize, _: Ch3Pkt| {},
                0,
                Ch3Pkt::Data {
                    rdv_id: 0,
                    offset: 90,
                    data: NmBuf::from(vec![0xFF; 50]),
                },
                &mut events,
            );
        }
        assert!(events.is_empty(), "no completion from the bad chunk");
        assert_eq!(e1.protocol_errors(), 1);
        assert_eq!(e1.rdv_in_flight(), 1, "the rendezvous stays live");
    }

    #[test]
    fn unexpected_rts_matched_by_late_any_source_post() {
        let s = sched();
        let t = RequestTable::new();
        let e1 = Ch3Engine::new(1, 64, None);
        let rreq = t.create(ReqKind::RecvAnySource, ReqPath::Unknown);
        let mut out = Vec::new();
        let mut events = Vec::new();
        {
            let mut send = |_: &Scheduler, dst: usize, p: Ch3Pkt| out.push((dst, p));
            e1.on_packet(
                &s,
                &mut send,
                0,
                Ch3Pkt::Rts {
                    key: 7,
                    rdv_id: 0,
                    len: 100,
                },
                &mut events,
            );
        }
        assert!(out.is_empty(), "no CTS before a receive is posted");
        assert_eq!(e1.queues.unexpected_len(), 1);
        {
            let mut send = |_: &Scheduler, dst: usize, p: Ch3Pkt| out.push((dst, p));
            let (ev, flag) = e1.post_recv(&s, &mut send, rreq, None, 7);
            assert!(ev.is_none());
            assert!(flag.is_none(), "matched immediately, no posted entry");
        }
        assert_eq!(out.len(), 1, "CTS sent on match");
        assert!(matches!(out[0].1, Ch3Pkt::Cts { rdv_id: 0 }));
    }
}
