//! Tests of the one-sided (RMA) extension: puts, gets, accumulates across
//! shared-memory and network paths, on polling and PIOMan stacks.

use mpich2_nmad_repro_shim::*;

/// Thin local alias module so the test reads like downstream code.
mod mpich2_nmad_repro_shim {
    pub use mpi_ch3::rma::Window;
    pub use mpi_ch3::stack::{run_mpi_collect, StackConfig};
    pub use simnet::{Cluster, NodeId, Placement};
}

#[test]
fn put_get_across_network_and_shm() {
    // 4 ranks: 0+1 on node 0, 2+3 on node 1 — puts cross both paths.
    let cluster = Cluster::xeon_pair();
    let placement = Placement::explicit(vec![
        NodeId(0),
        NodeId(0),
        NodeId(1),
        NodeId(1),
    ]);
    for stack in [
        StackConfig::mpich2_nmad(false),
        StackConfig::mpich2_nmad(true),
    ] {
        let name = stack.name.clone();
        let (_, oks) = run_mpi_collect(&cluster, &placement, &stack, 4, |mpi| {
            let me = mpi.rank();
            let n = mpi.size();
            let win = Window::create(mpi, 64 * n, &[]);
            // Epoch 1: everyone puts its rank byte into everyone's window
            // at slot 64*me.
            for t in 0..n {
                win.put(t, 64 * me, &[me as u8; 64]);
            }
            win.fence(mpi);
            let local = win.local();
            for src in 0..n {
                if local[64 * src..64 * (src + 1)].iter().any(|&b| b != src as u8) {
                    return false;
                }
            }
            // Epoch 2: read the left neighbour's slot of *their* window.
            let left = (me + n - 1) % n;
            let h = win.get(left, 64 * left, 64);
            win.fence(mpi);
            let got = win.get_result(&h);
            got.iter().all(|&b| b == left as u8)
        });
        assert!(oks.into_iter().all(|b| b), "RMA failed on {name}");
    }
}

#[test]
fn accumulate_sums_from_all_ranks() {
    let cluster = Cluster::xeon_pair();
    let placement = Placement::block(4, &cluster);
    let stack = StackConfig::mpich2_nmad(false);
    let (_, oks) = run_mpi_collect(&cluster, &placement, &stack, 4, |mpi| {
        let win = Window::create(mpi, 8 * 4, &[]);
        // All ranks accumulate [r, 2r, 3r, 4r] into rank 0's window.
        let r = mpi.rank() as f64;
        win.accumulate_sum(0, 0, &[r, 2.0 * r, 3.0 * r, 4.0 * r]);
        win.fence(mpi);
        if mpi.rank() == 0 {
            let w = win.local();
            let vals = mpi_ch3::collectives::bytes_to_f64s(&w);
            // Σr = 6 over ranks 0..4.
            vals == vec![6.0, 12.0, 18.0, 24.0]
        } else {
            true
        }
    });
    assert!(oks.into_iter().all(|b| b));
}

#[test]
fn large_puts_both_directions_do_not_deadlock() {
    // Two ranks fire 1 MB (rendezvous-sized) puts at each other in the
    // same epoch — the nonblocking-ship fence must survive it.
    let cluster = Cluster::xeon_pair();
    let placement = Placement::one_per_node(2, &cluster);
    let stack = StackConfig::mpich2_nmad(false);
    let (_, oks) = run_mpi_collect(&cluster, &placement, &stack, 2, |mpi| {
        let me = mpi.rank();
        let other = 1 - me;
        let win = Window::create(mpi, 1 << 20, &[]);
        let payload = vec![me as u8 + 1; 1 << 20];
        win.put(other, 0, &payload);
        win.fence(mpi);
        let local = win.local();
        local.iter().all(|&b| b == other as u8 + 1)
    });
    assert!(oks.into_iter().all(|b| b));
}

#[test]
fn empty_epochs_are_cheap_and_correct() {
    let cluster = Cluster::xeon_pair();
    let placement = Placement::one_per_node(2, &cluster);
    let stack = StackConfig::mpich2_nmad(false);
    let (_, oks) = run_mpi_collect(&cluster, &placement, &stack, 2, |mpi| {
        let win = Window::create(mpi, 16, b"initial contents");
        for _ in 0..5 {
            win.fence(mpi);
        }
        win.local() == b"initial contents"
    });
    assert!(oks.into_iter().all(|b| b));
}

#[test]
fn put_then_get_ordering_across_epochs() {
    // Rank 0 puts into rank 1's window in epoch 1; rank 1 gets its own
    // value back from rank 0's copy in epoch 2 — epochs order one-sided
    // accesses.
    let cluster = Cluster::xeon_pair();
    let placement = Placement::one_per_node(2, &cluster);
    let stack = StackConfig::mpich2_nmad(false);
    let (_, oks) = run_mpi_collect(&cluster, &placement, &stack, 2, |mpi| {
        let win = Window::create(mpi, 8, &[0; 8]);
        if mpi.rank() == 0 {
            win.put(1, 0, b"epoch-01");
        }
        win.fence(mpi);
        // Rank 1 copies what it received into rank 0's window.
        if mpi.rank() == 1 {
            let mine = win.local();
            win.put(0, 0, &mine);
        }
        win.fence(mpi);
        // Both ranks converge on the same window contents.
        win.local() == b"epoch-01"
    });
    assert!(oks.into_iter().all(|b| b));
}
