//! Property tests over the matching-key codec and the ANY_SOURCE list
//! machinery (§3.2) — checked against an executable reference model.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use mpi_ch3::anysource::AnySourceLists;
use mpi_ch3::progress::{key_of, tag_of, COLL_CTX, USER_CTX};
use mpi_ch3::queues::ActiveFlag;
use mpi_ch3::request::{Req, ReqKind, ReqPath, RequestTable};

fn flag() -> ActiveFlag {
    Arc::new(AtomicBool::new(true))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 256,
        .. ProptestConfig::default()
    })]

    /// `tag_of` inverts `key_of` for every context/tag pair.
    #[test]
    fn key_roundtrips_tag(ctx in 0u16..u16::MAX, tag in 0u32..u32::MAX) {
        prop_assert_eq!(tag_of(key_of(ctx, tag)), tag);
        prop_assert_eq!(tag_of(key_of(USER_CTX, tag)), tag);
        prop_assert_eq!(tag_of(key_of(COLL_CTX, tag)), tag);
    }

    /// The key is injective: distinct (context, tag) pairs never collide —
    /// a collision would cross-match messages between communicators.
    #[test]
    fn key_is_injective(
        c1 in 0u16..u16::MAX, t1 in 0u32..u32::MAX,
        c2 in 0u16..u16::MAX, t2 in 0u32..u32::MAX,
    ) {
        if (c1, t1) != (c2, t2) {
            prop_assert_ne!(key_of(c1, t1), key_of(c2, t2));
        }
        prop_assert_eq!(key_of(c1, t1), key_of(c1, t1));
    }
}

/// Reference model of one tag sublist entry.
#[derive(Clone, Debug, PartialEq, Eq)]
enum MEntry {
    Any { req: Req, posted: bool },
    Spec { req: Req, src: usize },
}

impl MEntry {
    fn req(&self) -> Req {
        match self {
            MEntry::Any { req, .. } | MEntry::Spec { req, .. } => *req,
        }
    }
}

/// One random operation against the lists. Tag indexes a small fixed tag
/// set; `pick` selects the completion target among live requests.
fn op_strategy() -> impl Strategy<Value = (u8, u8, u8, u8)> {
    (0u8..4, 0u8..3, 0u8..6, 0u8..255)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        .. ProptestConfig::default()
    })]

    /// Model-based check of [`AnySourceLists`]: random interleavings of
    /// register/park/post/complete always agree with a straightforward
    /// per-tag queue model — specifics park iff the sublist is non-empty,
    /// only a completed head releases (up to the next ANY entry), probe
    /// heads are exactly the unposted ANY heads in tag order, and no
    /// request is ever lost or duplicated.
    #[test]
    fn anysource_lists_match_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let tags: [u32; 3] = [5, 9, 1000];
        let table = RequestTable::new();
        let lists = AnySourceLists::new();
        let mut model: BTreeMap<u64, VecDeque<MEntry>> = BTreeMap::new();
        let mut flags: Vec<(Req, ActiveFlag)> = Vec::new();
        let mut retired: Vec<Req> = Vec::new();

        for (op, tag_i, src, pick) in ops {
            let key = key_of(USER_CTX, tags[tag_i as usize % tags.len()]);
            match op {
                0 => {
                    let req = table.create(ReqKind::RecvAnySource, ReqPath::Unknown);
                    let f = flag();
                    lists.register_any(key, req, Arc::clone(&f));
                    flags.push((req, f));
                    model
                        .entry(key)
                        .or_default()
                        .push_back(MEntry::Any { req, posted: false });
                }
                1 => {
                    let req = table.create(ReqKind::Recv, ReqPath::Net);
                    let parked = lists.try_park_specific(key, req, src as usize);
                    let should_park =
                        model.get(&key).is_some_and(|l| !l.is_empty());
                    prop_assert_eq!(parked, should_park, "park decision diverged");
                    if parked {
                        model
                            .get_mut(&key)
                            .unwrap()
                            .push_back(MEntry::Spec { req, src: src as usize });
                    }
                }
                2 => {
                    // mark_posted is only legal on an unposted ANY head.
                    let applicable = matches!(
                        model.get(&key).and_then(|l| l.front()),
                        Some(MEntry::Any { posted: false, .. })
                    );
                    if applicable {
                        lists.mark_posted(key, src as usize);
                        match model.get_mut(&key).unwrap().front_mut() {
                            Some(MEntry::Any { posted, req }) => {
                                *posted = true;
                                let r = *req;
                                let f = &flags.iter().find(|(q, _)| *q == r).unwrap().1;
                                prop_assert!(
                                    !f.load(Ordering::Acquire),
                                    "CH3 twin still active after nm-post"
                                );
                            }
                            _ => unreachable!(),
                        }
                    }
                }
                _ => {
                    // Complete a random live request.
                    let live: Vec<(u64, usize, Req)> = model
                        .iter()
                        .flat_map(|(&k, l)| {
                            l.iter().enumerate().map(move |(i, e)| (k, i, e.req()))
                        })
                        .collect();
                    if live.is_empty() {
                        continue;
                    }
                    let (k, pos, req) = live[pick as usize % live.len()];
                    let released = lists.on_complete(req);
                    let list = model.get_mut(&k).unwrap();
                    list.remove(pos);
                    let mut want = Vec::new();
                    if pos == 0 {
                        while let Some(MEntry::Spec { .. }) = list.front() {
                            match list.pop_front() {
                                Some(MEntry::Spec { req, src }) => want.push((req, src)),
                                _ => unreachable!(),
                            }
                        }
                    }
                    if list.is_empty() {
                        model.remove(&k);
                    }
                    let got: Vec<(Req, usize)> =
                        released.iter().map(|r| (r.req, r.src)).collect();
                    prop_assert_eq!(&got, &want, "release set diverged");
                    for r in released {
                        prop_assert_eq!(r.key, k);
                        retired.push(r.req);
                    }
                    retired.push(req);
                }
            }

            // Invariants after every step --------------------------------
            let want_heads: Vec<(u64, Req)> = model
                .iter()
                .filter_map(|(&k, l)| match l.front() {
                    Some(MEntry::Any { req, posted: false }) => Some((k, *req)),
                    _ => None,
                })
                .collect();
            prop_assert_eq!(lists.heads_to_probe(), want_heads, "probe heads diverged");
            prop_assert_eq!(lists.tags_in_use(), model.len(), "live tag count diverged");
            for (_, l) in model.iter() {
                for e in l {
                    prop_assert!(lists.is_tracked(e.req()), "live request untracked");
                }
            }
            for r in &retired {
                prop_assert!(!lists.is_tracked(*r), "retired request still tracked");
            }
        }
    }
}
