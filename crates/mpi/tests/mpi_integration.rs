//! End-to-end tests of complete MPI jobs on the simulated cluster, pinning
//! down the paper's mechanisms: bypass latency calibration, ANY_SOURCE
//! semantics across shared memory and the network, PIOMan's overlap, and
//! the nested-handshake penalty of the legacy netmod path.

use std::sync::Arc;

use parking_lot::Mutex;
use simnet::{Cluster, Placement, SimDuration, SimTime};

use mpi_ch3::stack::{run_mpi, run_mpi_collect, StackConfig};
use mpi_ch3::{MpiHandle, Src};

fn pair() -> (Cluster, Placement) {
    let c = Cluster::xeon_pair();
    let p = Placement::one_per_node(2, &c);
    (c, p)
}

/// One-way small-message latency via a long ping-pong.
fn pingpong_one_way_us(cfg: &StackConfig, bytes: usize, iters: usize) -> f64 {
    let (c, p) = pair();
    let elapsed = Arc::new(Mutex::new(None));
    let e2 = Arc::clone(&elapsed);
    run_mpi(
        &c,
        &p,
        cfg,
        2,
        Arc::new(move |mpi: MpiHandle| {
            let payload = vec![7u8; bytes];
            if mpi.rank() == 0 {
                // Warmup round.
                mpi.send(1, 1, &payload);
                mpi.recv(Src::Rank(1), 1);
                let t0 = mpi.now();
                for _ in 0..iters {
                    mpi.send(1, 1, &payload);
                    mpi.recv(Src::Rank(1), 1);
                }
                let dt = mpi.now() - t0;
                *e2.lock() = Some(dt.as_micros_f64() / (2.0 * iters as f64));
            } else {
                mpi.recv(Src::Rank(0), 1);
                mpi.send(0, 1, &payload);
                for _ in 0..iters {
                    mpi.recv(Src::Rank(0), 1);
                    mpi.send(0, 1, &payload);
                }
            }
        }),
    );
    let v = elapsed.lock().take().expect("rank 0 measured");
    v
}

#[test]
fn nmad_ib_latency_matches_paper() {
    // §4.1.1: MPICH2-NewMadeleine over IB = 2.1 µs one-way.
    let cfg = StackConfig::mpich2_nmad_rail(0, false);
    let lat = pingpong_one_way_us(&cfg, 4, 50);
    assert!(
        (lat - 2.1).abs() < 0.15,
        "IB one-way latency {lat:.3}us, want ~2.1us"
    );
}

#[test]
fn large_messages_use_rendezvous_and_arrive_intact() {
    let (c, p) = pair();
    let cfg = StackConfig::mpich2_nmad_rail(0, false);
    let payload: Vec<u8> = (0..(1 << 20)).map(|i| (i % 249) as u8).collect();
    let expect = payload.clone();
    let out = run_mpi(
        &c,
        &p,
        &cfg,
        2,
        Arc::new(move |mpi: MpiHandle| {
            if mpi.rank() == 0 {
                mpi.send(1, 9, &payload);
            } else {
                let (data, st) = mpi.recv(Src::Rank(0), 9);
                assert_eq!(st.source, 0);
                assert_eq!(st.len, expect.len());
                assert_eq!(&data[..], &expect[..]);
            }
        }),
    );
    assert_eq!(out.nm_stats[0].rdv_sends, 1, "1MB must go rendezvous");
    assert_eq!(out.nm_stats[0].eager_sends, 0);
}

#[test]
fn multirail_beats_single_rail_bandwidth() {
    let (c, p) = pair();
    let size = 16 << 20;
    let time_for = |cfg: &StackConfig| -> SimTime {
        let done = Arc::new(Mutex::new(SimTime::ZERO));
        let d2 = Arc::clone(&done);
        let payload = vec![3u8; size];
        run_mpi(
            &c,
            &p,
            cfg,
            2,
            Arc::new(move |mpi: MpiHandle| {
                if mpi.rank() == 0 {
                    mpi.send(1, 1, &payload);
                } else {
                    mpi.recv(Src::Rank(0), 1);
                    *d2.lock() = mpi.now();
                }
            }),
        );
        let t = *done.lock();
        t
    };
    let single = time_for(&StackConfig::mpich2_nmad_rail(0, false));
    let multi = time_for(&StackConfig::mpich2_nmad(false));
    let speedup = single.as_nanos() as f64 / multi.as_nanos() as f64;
    assert!(
        speedup > 1.5,
        "multirail speedup {speedup:.2} (single {single}, multi {multi})"
    );
}

#[test]
fn any_source_matches_network_and_shm_sources() {
    // 3 ranks: 0+1 share node 0, rank 2 on node 1. Rank 0 posts two
    // ANY_SOURCE receives and must get both messages regardless of path.
    let c = Cluster::xeon_pair();
    let p = Placement::explicit(vec![
        simnet::NodeId(0),
        simnet::NodeId(0),
        simnet::NodeId(1),
    ]);
    let cfg = StackConfig::mpich2_nmad(false);
    let (_, results) = run_mpi_collect(&c, &p, &cfg, 3, |mpi| {
        match mpi.rank() {
            0 => {
                let (d1, s1) = mpi.recv(Src::Any, 5);
                let (d2, s2) = mpi.recv(Src::Any, 5);
                let mut got = [(s1.source, d1), (s2.source, d2)];
                got.sort_by_key(|(s, _)| *s);
                assert_eq!(got[0].0, 1);
                assert_eq!(&got[0].1[..], b"from shm");
                assert_eq!(got[1].0, 2);
                assert_eq!(&got[1].1[..], b"from net");
                true
            }
            1 => {
                mpi.send(0, 5, b"from shm");
                true
            }
            2 => {
                mpi.send(0, 5, b"from net");
                true
            }
            _ => unreachable!(),
        }
    });
    assert!(results.into_iter().all(|b| b));
}

#[test]
fn any_source_costs_a_constant_300ns() {
    // §4.1.1: the ANY_SOURCE latency gap is ~300 ns, constant in size.
    let cfg = StackConfig::mpich2_nmad_rail(0, false);
    let (c, p) = pair();
    let one_way = |any: bool, bytes: usize| -> f64 {
        let elapsed = Arc::new(Mutex::new(0.0));
        let e2 = Arc::clone(&elapsed);
        run_mpi(
            &c,
            &p,
            &cfg,
            2,
            Arc::new(move |mpi: MpiHandle| {
                let src = if any { Src::Any } else { Src::Rank(1) };
                let payload = vec![1u8; bytes];
                if mpi.rank() == 0 {
                    mpi.send(1, 1, &payload);
                    mpi.recv(src, 1);
                    let t0 = mpi.now();
                    for _ in 0..20 {
                        mpi.send(1, 1, &payload);
                        mpi.recv(src, 1);
                    }
                    *e2.lock() = (mpi.now() - t0).as_micros_f64() / 40.0;
                } else {
                    let back = vec![2u8; bytes];
                    mpi.recv(Src::Rank(0), 1);
                    mpi.send(0, 1, &back);
                    for _ in 0..20 {
                        mpi.recv(Src::Rank(0), 1);
                        mpi.send(0, 1, &back);
                    }
                }
            }),
        );
        let v = *elapsed.lock();
        v
    };
    for &bytes in &[4usize, 512] {
        let known = one_way(false, bytes);
        let any = one_way(true, bytes);
        let gap_ns = (any - known) * 1000.0;
        // Half the 300 ns shows per one-way (only rank 0 uses ANY_SOURCE,
        // gap measured on round trips averaged over both directions).
        assert!(
            gap_ns > 80.0 && gap_ns < 260.0,
            "ANY_SOURCE gap at {bytes}B = {gap_ns:.0}ns/one-way (want ~150)"
        );
    }
}

#[test]
fn any_source_ordering_with_interposed_specific_recv() {
    // An ANY_SOURCE recv posted before a specific same-tag recv must match
    // the first message (§3.2.2's parked-request rule).
    let (c, p) = pair();
    let cfg = StackConfig::mpich2_nmad_rail(0, false);
    let (_, results) = run_mpi_collect(&c, &p, &cfg, 2, |mpi| {
        if mpi.rank() == 0 {
            let r_any = mpi.irecv(Src::Any, 7);
            let r_spec = mpi.irecv(Src::Rank(1), 7);
            let (d_any, s_any) = mpi.wait_data(r_any);
            let (d_spec, _) = mpi.wait_data(r_spec);
            assert_eq!(&d_any.unwrap()[..], b"first");
            assert_eq!(s_any.unwrap().source, 1);
            assert_eq!(&d_spec.unwrap()[..], b"second");
            true
        } else {
            mpi.send(0, 7, b"first");
            mpi.send(0, 7, b"second");
            true
        }
    });
    assert!(results.into_iter().all(|b| b));
}

#[test]
fn pioman_adds_2us_network_latency() {
    // Fig. 6(b): PIOMan costs ~2 µs of network latency, constant in size.
    let base = pingpong_one_way_us(&StackConfig::mpich2_nmad_rail(0, false), 4, 30);
    let piom = pingpong_one_way_us(&StackConfig::mpich2_nmad_rail(0, true), 4, 30);
    let gap = piom - base;
    assert!(
        gap > 1.6 && gap < 2.8,
        "PIOMan network latency overhead {gap:.2}us (want ~2.0-2.4)"
    );
}

#[test]
fn pioman_overlaps_eager_send_with_computation() {
    // Fig. 7(a): isend + compute(20us) + wait. Without PIOMan the time is
    // sum(comm, compute); with PIOMan it is ~max(comm, compute).
    let (c, p) = pair();
    let compute = SimDuration::micros(20);
    let bytes = 16 * 1024; // eager boundary
    let sending_time = |pioman: bool| -> f64 {
        let cfg = StackConfig::mpich2_nmad_rail(0, pioman);
        let elapsed = Arc::new(Mutex::new(0.0));
        let e2 = Arc::clone(&elapsed);
        run_mpi(
            &c,
            &p,
            &cfg,
            2,
            Arc::new(move |mpi: MpiHandle| {
                let payload = vec![1u8; bytes];
                if mpi.rank() == 0 {
                    // Warmup.
                    mpi.send(1, 1, &payload);
                    mpi.recv(Src::Rank(1), 2);
                    let t0 = mpi.now();
                    let r = mpi.isend(1, 1, &payload);
                    mpi.compute(compute);
                    mpi.wait(r);
                    // Wait for the ack so both sides stay in step.
                    mpi.recv(Src::Rank(1), 2);
                    *e2.lock() = (mpi.now() - t0).as_micros_f64();
                } else {
                    mpi.recv(Src::Rank(0), 1);
                    mpi.send(0, 2, b"ack");
                    mpi.recv(Src::Rank(0), 1);
                    mpi.send(0, 2, b"ack");
                }
            }),
        );
        let v = *elapsed.lock();
        v
    };
    let no_piom = sending_time(false);
    let piom = sending_time(true);
    // 16KB over IB ~ 13.5us757 trx + stack: comm ~ 15us; compute = 20us.
    // sum ~ 35us+, max ~ 20us+overheads.
    assert!(
        no_piom > 30.0,
        "without PIOMan the send must serialize after compute: {no_piom:.1}us"
    );
    assert!(
        piom < no_piom - 8.0,
        "PIOMan must overlap: {piom:.1}us vs {no_piom:.1}us"
    );
}

#[test]
fn pioman_progresses_rendezvous_during_computation() {
    // Fig. 7(b): the sender computes 400us after isend of a large message;
    // only with PIOMan does the CTS get answered during the computation.
    let (c, p) = pair();
    let compute = SimDuration::micros(400);
    let bytes = 1 << 20;
    let sending_time = |pioman: bool| -> f64 {
        let cfg = StackConfig::mpich2_nmad_rail(0, pioman);
        let elapsed = Arc::new(Mutex::new(0.0));
        let e2 = Arc::clone(&elapsed);
        run_mpi(
            &c,
            &p,
            &cfg,
            2,
            Arc::new(move |mpi: MpiHandle| {
                let payload = vec![1u8; bytes];
                if mpi.rank() == 0 {
                    mpi.send(1, 1, b"warm");
                    mpi.recv(Src::Rank(1), 2);
                    let t0 = mpi.now();
                    let r = mpi.isend(1, 1, &payload);
                    mpi.compute(compute);
                    mpi.wait(r);
                    mpi.recv(Src::Rank(1), 2);
                    *e2.lock() = (mpi.now() - t0).as_micros_f64();
                } else {
                    mpi.recv(Src::Rank(0), 1);
                    mpi.send(0, 2, b"ack");
                    mpi.recv(Src::Rank(0), 1);
                    mpi.send(0, 2, b"ack");
                }
            }),
        );
        let v = *elapsed.lock();
        v
    };
    let no_piom = sending_time(false);
    let piom = sending_time(true);
    // 1MB at 1250MB/s ~ 800us of wire time; without progression the
    // rendezvous doesn't even start until the 400us compute ends.
    assert!(
        no_piom > 1150.0,
        "no overlap without PIOMan: {no_piom:.0}us"
    );
    assert!(
        piom < no_piom - 300.0,
        "PIOMan must overlap the rendezvous: {piom:.0}us vs {no_piom:.0}us"
    );
}

#[test]
fn netmod_path_pays_nested_handshake() {
    // Fig. 2: the legacy netmod path runs a CH3 rendezvous around
    // NewMadeleine's internal one. For a large message the bypass saves a
    // full handshake round trip (and the netmod's extra copies).
    let (c, p) = pair();
    let size = 256 * 1024;
    let one_transfer = |cfg: &StackConfig| -> f64 {
        let elapsed = Arc::new(Mutex::new(0.0));
        let e2 = Arc::clone(&elapsed);
        let payload = vec![9u8; size];
        run_mpi(
            &c,
            &p,
            cfg,
            2,
            Arc::new(move |mpi: MpiHandle| {
                if mpi.rank() == 0 {
                    mpi.send(1, 1, b"warm");
                    mpi.recv(Src::Rank(1), 2);
                    let t0 = mpi.now();
                    mpi.send(1, 1, &payload);
                    mpi.recv(Src::Rank(1), 2);
                    *e2.lock() = (mpi.now() - t0).as_micros_f64();
                } else {
                    mpi.recv(Src::Rank(0), 1);
                    mpi.send(0, 2, b"a");
                    mpi.recv(Src::Rank(0), 1);
                    mpi.send(0, 2, b"a");
                }
            }),
        );
        let v = *elapsed.lock();
        v
    };
    let direct = one_transfer(&StackConfig::mpich2_nmad_rail(0, false));
    let netmod = one_transfer(&StackConfig::mpich2_nmad_netmod(0));
    assert!(
        netmod > direct + 2.0,
        "nested handshake must cost measurably more: netmod {netmod:.1}us vs direct {direct:.1}us"
    );
}

#[test]
fn collectives_work_on_mixed_intra_inter_cluster() {
    // 8 ranks over 2 nodes (4+4): barrier, bcast, allreduce, alltoall all
    // cross both the shm and network paths.
    let c = Cluster::xeon_pair();
    let p = Placement::block(8, &c);
    let cfg = StackConfig::mpich2_nmad(false);
    let (_, results) = run_mpi_collect(&c, &p, &cfg, 8, |mpi| {
        let me = mpi.rank() as f64;
        let n = mpi.size();
        mpi.barrier();
        // bcast from 3.
        let data = if mpi.rank() == 3 {
            Some(bytes::Bytes::from_static(b"broadcast-payload"))
        } else {
            None
        };
        let got = mpi.bcast(3, data);
        assert_eq!(&got[..], b"broadcast-payload");
        // allreduce: sum of ranks = n(n-1)/2.
        let total = mpi.allreduce_sum(&[me, 2.0 * me]);
        assert_eq!(total[0], (n * (n - 1) / 2) as f64);
        assert_eq!(total[1], (n * (n - 1)) as f64);
        // alltoall: block (i -> j) = [i, j].
        let blocks: Vec<bytes::Bytes> = (0..n)
            .map(|j| bytes::Bytes::from(vec![mpi.rank() as u8, j as u8]))
            .collect();
        let got = mpi.alltoall(blocks);
        for (i, b) in got.iter().enumerate() {
            assert_eq!(&b[..], &[i as u8, mpi.rank() as u8]);
        }
        mpi.barrier();
        true
    });
    assert!(results.into_iter().all(|b| b));
}

#[test]
fn collectives_work_with_pioman() {
    let c = Cluster::xeon_pair();
    let p = Placement::block(4, &c); // all on node 0: pure shm
    let cfg = StackConfig::mpich2_nmad(true);
    let (_, sums) = run_mpi_collect(&c, &p, &cfg, 4, |mpi| {
        mpi.barrier();
        let s = mpi.allreduce_sum(&[1.0])[0];
        mpi.barrier();
        s
    });
    assert!(sums.into_iter().all(|s| s == 4.0));
}

#[test]
fn self_send_and_waitall() {
    let c = Cluster::xeon_pair();
    let p = Placement::one_per_node(1, &c);
    let cfg = StackConfig::mpich2_nmad(false);
    let (_, results) = run_mpi_collect(&c, &p, &cfg, 1, |mpi| {
        let r1 = mpi.isend(0, 1, b"self");
        let r2 = mpi.irecv(Src::Rank(0), 1);
        mpi.waitall(&[r1, r2]);
        let (d, st) = mpi.wait_data(r2);
        // waitall already claimed it; status must survive.
        assert!(d.is_none());
        assert_eq!(st.unwrap().len, 4);
        true
    });
    assert!(results.into_iter().all(|b| b));
}

#[test]
fn probe_and_iprobe_report_envelopes_without_receiving() {
    // Probe must see both shm and nmad unexpected messages, report the
    // right envelope, and leave the message receivable.
    let c = Cluster::xeon_pair();
    let p = Placement::explicit(vec![
        simnet::NodeId(0),
        simnet::NodeId(0), // rank 1: shm neighbour of 0
        simnet::NodeId(1), // rank 2: remote
    ]);
    let cfg = StackConfig::mpich2_nmad(false);
    let (_, oks) = run_mpi_collect(&c, &p, &cfg, 3, |mpi| {
        match mpi.rank() {
            0 => {
                // Nothing has been sent yet with tag 9.
                assert!(mpi.iprobe(Src::Any, 99).is_none());
                // Blocking probe for the remote sender.
                let st = mpi.probe(Src::Rank(2), 7);
                assert_eq!(st.source, 2);
                assert_eq!(st.len, 64 * 1024);
                // Probing does not consume: a second probe still sees it.
                assert!(mpi.iprobe(Src::Rank(2), 7).is_some());
                let (d, _) = mpi.recv(Src::Rank(2), 7);
                assert_eq!(d.len(), 64 * 1024);
                // And the shm message, via ANY_SOURCE probe.
                let st = mpi.probe(Src::Any, 8);
                assert_eq!(st.source, 1);
                assert_eq!(st.len, 5);
                let (d, _) = mpi.recv(Src::Rank(1), 8);
                assert_eq!(&d[..], b"hello");
                true
            }
            1 => {
                mpi.send(0, 8, b"hello");
                true
            }
            2 => {
                // Rendezvous-sized: the probe must see the RTS length.
                mpi.send(0, 7, &vec![1u8; 64 * 1024]);
                true
            }
            _ => unreachable!(),
        }
    });
    assert!(oks.into_iter().all(|b| b));
}

#[test]
fn sendrecv_exchanges_rendezvous_payloads_without_deadlock() {
    let (c, p) = pair();
    let cfg = StackConfig::mpich2_nmad(false);
    let (_, oks) = run_mpi_collect(&c, &p, &cfg, 2, |mpi| {
        let me = mpi.rank();
        let other = 1 - me;
        let mine = vec![me as u8; 300 * 1024]; // rendezvous both ways
        let (theirs, st) = mpi.sendrecv(other, 3, &mine, Src::Rank(other), 3);
        st.source == other
            && theirs.len() == 300 * 1024
            && theirs.iter().all(|&b| b == other as u8)
    });
    assert!(oks.into_iter().all(|b| b));
}

#[test]
fn shm_latency_matches_nemesis_calibration() {
    // Fig. 6(a): Nemesis shm latency ~0.2-0.35us for small messages.
    let c = Cluster::xeon_pair();
    let p = Placement::block(2, &c); // both on node 0
    let cfg = StackConfig::mpich2_nmad(false);
    let elapsed = Arc::new(Mutex::new(0.0));
    let e2 = Arc::clone(&elapsed);
    run_mpi(
        &c,
        &p,
        &cfg,
        2,
        Arc::new(move |mpi: MpiHandle| {
            if mpi.rank() == 0 {
                mpi.send(1, 1, b"x");
                mpi.recv(Src::Rank(1), 1);
                let t0 = mpi.now();
                for _ in 0..50 {
                    mpi.send(1, 1, b"x");
                    mpi.recv(Src::Rank(1), 1);
                }
                *e2.lock() = (mpi.now() - t0).as_micros_f64() / 100.0;
            } else {
                mpi.recv(Src::Rank(0), 1);
                mpi.send(0, 1, b"x");
                for _ in 0..50 {
                    mpi.recv(Src::Rank(0), 1);
                    mpi.send(0, 1, b"x");
                }
            }
        }),
    );
    let lat = *elapsed.lock();
    assert!(
        lat > 0.12 && lat < 0.45,
        "shm one-way latency {lat:.3}us (want ~0.2-0.35)"
    );
}

#[test]
fn pioman_shm_overhead_is_sub_microsecond() {
    // Fig. 6(a): PIOMan adds ~450ns on the shm path.
    let c = Cluster::xeon_pair();
    let p = Placement::block(2, &c);
    let one_way = |pioman: bool| -> f64 {
        let cfg = StackConfig::mpich2_nmad(pioman);
        let elapsed = Arc::new(Mutex::new(0.0));
        let e2 = Arc::clone(&elapsed);
        run_mpi(
            &c,
            &p,
            &cfg,
            2,
            Arc::new(move |mpi: MpiHandle| {
                if mpi.rank() == 0 {
                    mpi.send(1, 1, b"x");
                    mpi.recv(Src::Rank(1), 1);
                    let t0 = mpi.now();
                    for _ in 0..30 {
                        mpi.send(1, 1, b"x");
                        mpi.recv(Src::Rank(1), 1);
                    }
                    *e2.lock() = (mpi.now() - t0).as_micros_f64() / 60.0;
                } else {
                    mpi.recv(Src::Rank(0), 1);
                    mpi.send(0, 1, b"x");
                    for _ in 0..30 {
                        mpi.recv(Src::Rank(0), 1);
                        mpi.send(0, 1, b"x");
                    }
                }
            }),
        );
        let v = *elapsed.lock();
        v
    };
    let base = one_way(false);
    let piom = one_way(true);
    let gap_us = piom - base;
    assert!(
        gap_us > 0.3 && gap_us < 0.8,
        "PIOMan shm overhead {gap_us:.3}us (want ~0.45)"
    );
}
