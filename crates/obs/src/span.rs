//! The lifecycle span recorder: typed, SimTime-stamped phase events keyed
//! by `(src, dst, tag, seq)`.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::export::Report;
use crate::metrics::MetricsRegistry;
use crate::ObsConfig;

/// `rank` value used for events recorded by the simulation engine itself
/// (dispatch loop) rather than by a rank's protocol stack.
pub const ENGINE_RANK: u32 = u32::MAX;

/// Identity of one MPI message on the bypass path. `seq` is the sender's
/// per-`(dst, tag)` sequence number — the same number the receive-side
/// reorder buffer matches on, so sender- and receiver-side events of one
/// message carry the same key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgKey {
    pub src: u32,
    pub dst: u32,
    pub tag: u64,
    pub seq: u64,
}

/// Which request a `Completed` phase closes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Side {
    Send,
    Recv,
}

/// Which protocol leg a retransmission sweep re-armed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RetryKind {
    Eager,
    Rts,
    Cts,
    Data,
}

/// One phase transition in a message's lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Sender posted the send (isend admission), payload length attached.
    SendPosted { len: u64 },
    /// Receiver posted the receive.
    RecvPosted,
    /// Receive matched an arrival (`unexpected`: the message got there
    /// before the receive was posted).
    Matched { unexpected: bool },
    /// Eager payload handed to the wire on `rail`.
    EagerTx { rail: u8 },
    /// Eager payload delivered to the receiver's core.
    EagerRx,
    /// Rendezvous request-to-send on the wire.
    RtsTx { rail: u8, len: u64 },
    RtsRx,
    /// Clear-to-send on the wire (recorded at the receiver).
    CtsTx { rail: u8 },
    CtsRx,
    /// One rendezvous DATA chunk on the wire.
    DataChunkTx { rail: u8, offset: u64, len: u64 },
    DataChunkRx { offset: u64, len: u64 },
    /// Rendezvous FIN (receiver → sender).
    FinTx,
    FinRx,
    /// The request completed at the MPI level.
    Completed { side: Side },
    /// A retransmission sweep re-sent this message's `kind` leg.
    Retry { kind: RetryKind },
    /// Failover moved this message's bytes onto another rail.
    Reroute { to_rail: u8, bytes: u64 },
    /// Eager admission stalled on an empty credit pool (the send either
    /// waits or degrades to rendezvous).
    CreditStall,
    /// The request completed *with an error*: its peer was declared dead
    /// and the drain protocol aborted it (the no-cancel rule means an
    /// abort IS a completion — exactly one of `Completed`/`Aborted`
    /// closes each side).
    Aborted { side: Side },
    /// The request completed *with an error*: its communicator epoch was
    /// revoked and the quiesce failed it. Distinct from `Aborted` because
    /// the revoke tombstones an in-flight inbound rendezvous (a straggling
    /// DATA chunk still earns a FIN replay) where a peer death drops it.
    Revoked { side: Side },
}

impl Phase {
    /// Stable label used by exporters and the breakdown table.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::SendPosted { .. } => "send_posted",
            Phase::RecvPosted => "recv_posted",
            Phase::Matched { .. } => "matched",
            Phase::EagerTx { .. } => "eager_tx",
            Phase::EagerRx => "eager_rx",
            Phase::RtsTx { .. } => "rts_tx",
            Phase::RtsRx => "rts_rx",
            Phase::CtsTx { .. } => "cts_tx",
            Phase::CtsRx => "cts_rx",
            Phase::DataChunkTx { .. } => "chunk_tx",
            Phase::DataChunkRx { .. } => "chunk_rx",
            Phase::FinTx => "fin_tx",
            Phase::FinRx => "fin_rx",
            Phase::Completed { side: Side::Send } => "completed_send",
            Phase::Completed { side: Side::Recv } => "completed_recv",
            Phase::Retry { .. } => "retry",
            Phase::Reroute { .. } => "reroute",
            Phase::CreditStall => "credit_stall",
            Phase::Aborted { side: Side::Send } => "aborted_send",
            Phase::Aborted { side: Side::Recv } => "aborted_recv",
            Phase::Revoked { side: Side::Send } => "revoked_send",
            Phase::Revoked { side: Side::Recv } => "revoked_recv",
        }
    }
}

/// An event of the machinery rather than of one message: NIC transfers,
/// PIOMan activity, shared-memory fragment copies, credit movements, the
/// simulator's dispatch loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EngineEvent {
    /// The simulator dispatched a scheduled callback.
    DispatchCall,
    /// The simulator woke a rank thread.
    DispatchWake,
    /// A NIC port started a transfer (`rank` = source node).
    NicTx {
        rail: u8,
        bytes: u64,
        occupancy_ns: u64,
    },
    /// One shared-memory fragment copied into a cell.
    ShmFragCopy { bytes: u64 },
    /// A cell landed in a shared-memory receive queue.
    ShmDeliver { src_local: u32 },
    /// PIOMan was kicked (`net`: by the network; else shared memory).
    PiomKick { net: bool },
    /// PIOMan ran its ltask list.
    PiomLtaskPass { tasks: u32 },
    /// The PIOMan watchdog re-kicked a stagnant server.
    PiomRekick,
    /// One eager credit consumed toward `peer`.
    CreditDebit { peer: u32 },
    /// `credits` eager credits returned by `peer`.
    CreditRefill { peer: u32, credits: u32 },
    /// The membership supervisor moved `peer` to a new liveness state
    /// (0 = Up, 1 = Suspect, 2 = Dead).
    MemberState { peer: u32, state: u8 },
    /// The drain protocol reclaimed `entries` per-peer state entries of a
    /// dead peer.
    MemberDrain { peer: u32, entries: u32 },
    /// A communicator epoch was revoked on this rank (locally initiated or
    /// learned from a peer's poison frame — recorded once either way).
    Revoke { epoch: u32 },
    /// This rank committed a new communicator epoch (shrink/rebuild or
    /// join-merge); older-epoch collective frames are stale from here on.
    EpochCommit { epoch: u32 },
}

impl EngineEvent {
    pub fn label(&self) -> &'static str {
        match self {
            EngineEvent::DispatchCall => "dispatch_call",
            EngineEvent::DispatchWake => "dispatch_wake",
            EngineEvent::NicTx { .. } => "nic_tx",
            EngineEvent::ShmFragCopy { .. } => "shm_frag_copy",
            EngineEvent::ShmDeliver { .. } => "shm_deliver",
            EngineEvent::PiomKick { .. } => "piom_kick",
            EngineEvent::PiomLtaskPass { .. } => "piom_ltask_pass",
            EngineEvent::PiomRekick => "piom_rekick",
            EngineEvent::CreditDebit { .. } => "credit_debit",
            EngineEvent::CreditRefill { .. } => "credit_refill",
            EngineEvent::MemberState { .. } => "member_state",
            EngineEvent::MemberDrain { .. } => "member_drain",
            EngineEvent::Revoke { .. } => "revoke",
            EngineEvent::EpochCommit { .. } => "epoch_commit",
        }
    }
}

/// What an [`Event`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scope {
    /// A phase transition of one message.
    Msg { key: MsgKey, phase: Phase },
    /// Machinery activity.
    Engine { ev: EngineEvent },
}

/// One recorded event. Plain `Copy` data — no heap — so constructing one
/// on a guarded path costs nothing when recording is off.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Event {
    /// Simulated time, nanoseconds.
    pub t_ns: u64,
    /// Recording rank ([`ENGINE_RANK`] for the dispatch loop; the source
    /// *node* for NIC events).
    pub rank: u32,
    pub scope: Scope,
}

/// The job-wide event sink. One per run, shared by every layer; append
/// order is deterministic because the simulation is logically
/// single-threaded.
pub struct Recorder {
    cfg: ObsConfig,
    events: Mutex<Vec<Event>>,
    metrics: Mutex<MetricsRegistry>,
    /// Conformance mode: every recorded event is fed through this hook,
    /// which checks the transition against the protocol state table. The
    /// recorder cannot depend on the protocol crate, so the validator is
    /// injected (see `core::protocol::conformance::install`).
    validator: Mutex<Option<Validator>>,
    /// Violations the validator reported, in record order (capped).
    violations: Mutex<Vec<String>>,
}

/// A conformance hook: inspects one recorded event against a protocol
/// model and reports a violation as `Err`.
pub type Validator = Box<dyn FnMut(&Event) -> Result<(), String> + Send>;

/// Cap on collected conformance violations — enough to diagnose, bounded
/// so a systematically broken run cannot balloon memory.
const MAX_VIOLATIONS: usize = 64;

impl Recorder {
    pub fn new(cfg: ObsConfig) -> Arc<Recorder> {
        Arc::new(Recorder {
            cfg,
            events: Mutex::new(Vec::new()),
            metrics: Mutex::new(MetricsRegistry::new()),
            validator: Mutex::new(None),
            violations: Mutex::new(Vec::new()),
        })
    }

    /// Install the conformance validator (replaces any previous one).
    /// Only meaningful when `cfg.conformance` is set; calls are accepted
    /// regardless so installers need not branch.
    pub fn set_validator(&self, v: Validator) {
        *self.validator.lock() = Some(v);
    }

    /// Conformance violations collected so far (empty when no validator
    /// is installed or every transition matched the table).
    pub fn violations(&self) -> Vec<String> {
        self.violations.lock().clone()
    }

    pub fn cfg(&self) -> ObsConfig {
        self.cfg
    }

    /// Are span events being kept?
    #[inline]
    pub fn spans_on(&self) -> bool {
        self.cfg.spans
    }

    /// Append one event (no-op unless spans are on). In conformance mode
    /// the event is also run through the installed validator; violations
    /// are collected, never raised here — recording must stay strictly
    /// observational.
    #[inline]
    pub fn record(&self, ev: Event) {
        if !self.cfg.spans {
            return;
        }
        self.events.lock().push(ev);
        if self.cfg.conformance {
            if let Some(v) = self.validator.lock().as_mut() {
                if let Err(e) = v(&ev) {
                    let mut viol = self.violations.lock();
                    if viol.len() < MAX_VIOLATIONS {
                        viol.push(e);
                    }
                }
            }
        }
    }

    /// Bump a named counter (no-op unless metrics are on).
    #[inline]
    pub fn inc(&self, name: &'static str, by: u64) {
        if !self.cfg.metrics {
            return;
        }
        self.metrics.lock().inc(name, by);
    }

    /// Record one observation into a named histogram (no-op unless
    /// metrics are on).
    #[inline]
    pub fn observe(&self, name: &'static str, v: u64) {
        if !self.cfg.metrics {
            return;
        }
        self.metrics.lock().observe(name, v);
    }

    /// Snapshot of the event stream, in append order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Snapshot of the metrics registry.
    pub fn metrics(&self) -> MetricsRegistry {
        self.metrics.lock().clone()
    }

    /// Freeze everything recorded so far into a [`Report`].
    pub fn report(&self) -> Report {
        Report {
            events: self.events(),
            metrics: self.metrics(),
        }
    }
}

/// A per-layer recording handle: the shared [`Recorder`] plus the rank (or
/// node) identity the layer stamps on its events. `RankRec::off()` is the
/// disabled handle — every call through it is a branch on a `None` and
/// nothing more.
#[derive(Clone, Default)]
pub struct RankRec {
    rec: Option<Arc<Recorder>>,
    rank: u32,
}

impl RankRec {
    /// The disabled handle.
    pub fn off() -> RankRec {
        RankRec::default()
    }

    pub fn new(rec: Option<&Arc<Recorder>>, rank: u32) -> RankRec {
        RankRec {
            rec: rec.map(Arc::clone),
            rank,
        }
    }

    /// Are span events being recorded through this handle?
    #[inline]
    pub fn on(&self) -> bool {
        matches!(&self.rec, Some(r) if r.spans_on())
    }

    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Record a phase transition of message `key` at `t_ns`.
    #[inline]
    pub fn phase(&self, t_ns: u64, key: MsgKey, phase: Phase) {
        if let Some(r) = &self.rec {
            r.record(Event {
                t_ns,
                rank: self.rank,
                scope: Scope::Msg { key, phase },
            });
        }
    }

    /// Record a machinery event at `t_ns`.
    #[inline]
    pub fn engine(&self, t_ns: u64, ev: EngineEvent) {
        if let Some(r) = &self.rec {
            r.record(Event {
                t_ns,
                rank: self.rank,
                scope: Scope::Engine { ev },
            });
        }
    }

    #[inline]
    pub fn inc(&self, name: &'static str, by: u64) {
        if let Some(r) = &self.rec {
            r.inc(name, by);
        }
    }

    #[inline]
    pub fn observe(&self, name: &'static str, v: u64) {
        if let Some(r) = &self.rec {
            r.observe(name, v);
        }
    }

    /// The underlying recorder, if any.
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.rec.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> MsgKey {
        MsgKey {
            src: 0,
            dst: 1,
            tag: 7,
            seq: 0,
        }
    }

    #[test]
    fn disabled_recorder_keeps_nothing() {
        let rec = Recorder::new(ObsConfig::default());
        rec.record(Event {
            t_ns: 1,
            rank: 0,
            scope: Scope::Msg {
                key: key(),
                phase: Phase::RecvPosted,
            },
        });
        rec.inc("x", 1);
        rec.observe("y", 5);
        assert!(rec.events().is_empty());
        assert!(rec.metrics().is_empty());
    }

    #[test]
    fn off_handle_is_inert() {
        let rr = RankRec::off();
        assert!(!rr.on());
        rr.phase(1, key(), Phase::RecvPosted);
        rr.engine(2, EngineEvent::PiomRekick);
        rr.inc("x", 1);
    }

    #[test]
    fn events_keep_append_order() {
        let rec = Recorder::new(ObsConfig::full());
        let rr = RankRec::new(Some(&rec), 3);
        assert!(rr.on());
        rr.phase(10, key(), Phase::SendPosted { len: 4 });
        rr.engine(5, EngineEvent::DispatchCall);
        let evs = rec.events();
        assert_eq!(evs.len(), 2);
        // Append order, not time order: the canonicalization is the
        // exporter's job.
        assert_eq!(evs[0].t_ns, 10);
        assert_eq!(evs[1].t_ns, 5);
        assert_eq!(evs[0].rank, 3);
    }

    #[test]
    fn metrics_flow_through_handles() {
        let rec = Recorder::new(ObsConfig::full());
        let rr = RankRec::new(Some(&rec), 0);
        rr.inc("pkts", 2);
        rr.inc("pkts", 3);
        rr.observe("lat", 100);
        let m = rec.metrics();
        assert_eq!(m.counter("pkts"), 5);
        assert_eq!(m.histogram("lat").unwrap().count(), 1);
    }
}
