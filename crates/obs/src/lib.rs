//! # obs — structured message-lifecycle observability
//!
//! The observability substrate of the stack: typed per-message lifecycle
//! **spans**, a deterministic **metrics registry** (counters + log2
//! histograms), and **exporters** (JSONL, Chrome trace-event format, a
//! per-phase latency breakdown). It replaces the simulator's ad-hoc string
//! [`Tracer`](../simnet/trace/index.html) entries with typed events that
//! trace-driven invariant tests can assert on.
//!
//! ## Span model
//!
//! Every MPI message on the NewMadeleine bypass path is identified by a
//! [`MsgKey`] — `(src, dst, tag, seq)`, where `seq` is the sender-assigned
//! per-`(dst, tag)` sequence number (the same number the reorder buffer
//! matches on, so both ends agree on it). A message's *span* is the set of
//! [`Event`]s carrying its key, ordered by simulated time:
//!
//! ```text
//! posted → matched → eager_tx → eager_rx → completed            (eager)
//! posted → matched → rts_tx → rts_rx → cts_tx → cts_rx
//!        → chunk_tx[rail]* → chunk_rx* → fin_tx → fin_rx → completed  (rdv)
//! ```
//!
//! plus retry / reroute / credit-stall annotations. Events that belong to
//! the machinery rather than one message — NIC transfers, PIOMan kicks,
//! shared-memory fragment copies, credit debits/refills, engine dispatch —
//! are [`EngineEvent`]s in the same stream.
//!
//! ## Determinism rules
//!
//! The simulation is logically single-threaded (one execution token), so
//! the recorder's append order is itself deterministic: the same seed must
//! produce a bit-identical event stream. Exporters additionally sort
//! canonically (by `(time, rank, scope)`) before hashing so the golden-
//! trace tests do not depend on incidental append order. Recording is
//! strictly observational: enabling or disabling the recorder must never
//! change protocol behaviour, and every instrumentation site is guarded so
//! the disabled path allocates nothing.
//!
//! This crate sits at the bottom of the dependency stack (below `simnet`)
//! and therefore speaks raw `u64` nanoseconds rather than `SimTime`.

pub mod export;
pub mod metrics;
pub mod span;
pub mod striped;

pub use export::{trace_hash, PhaseBreakdown, Report};
pub use metrics::{Histogram, MetricsRegistry, HIST_BUCKETS};
pub use striped::{stripe_id, AtomicHistogram, StripedCells, STRIPES};
pub use span::{
    EngineEvent, Event, MsgKey, Phase, RankRec, Recorder, RetryKind, Scope, Side, Validator,
    ENGINE_RANK,
};

/// Observability configuration — off by default, zero-allocation when off.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObsConfig {
    /// Record per-message lifecycle spans and engine events.
    pub spans: bool,
    /// Maintain the metrics registry (counters + histograms).
    pub metrics: bool,
    /// Conformance mode: feed every recorded span event through an
    /// installed validator (see [`Recorder::set_validator`]) that checks
    /// the transition against the protocol state table. Requires `spans`.
    /// Validation is strictly observational — it never changes protocol
    /// behaviour — but a violation is collected and surfaced at the end
    /// of the run, so every traced seed sweep doubles as a conformance
    /// test of the table the model explorer proves.
    pub conformance: bool,
}

impl ObsConfig {
    /// Everything on, including table-conformance validation.
    pub fn full() -> ObsConfig {
        ObsConfig {
            spans: true,
            metrics: true,
            conformance: true,
        }
    }

    /// Spans and metrics without conformance validation.
    pub fn recording_only() -> ObsConfig {
        ObsConfig {
            spans: true,
            metrics: true,
            conformance: false,
        }
    }

    /// Is any recording requested at all?
    pub fn enabled(&self) -> bool {
        self.spans || self.metrics
    }
}
