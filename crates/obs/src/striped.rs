//! Per-core (striped) counters and histograms: contended-write-free on the
//! hot path, merged on read.
//!
//! A [`StripedCells`] is `N` logical `u64` counters materialized as one
//! *slab* of `N` atomics **per writing thread** (lazily allocated on the
//! thread's first write, like per-core counter pages in scalable kernels).
//! Writers only ever touch their own slab — a plain `Relaxed` `fetch_add`
//! with no cross-core cache-line bouncing — and a read sums the slabs.
//! Reads are therefore O(threads) and *eventually exact*: a read
//! concurrent with writers may miss in-flight increments, but a read that
//! happens-after all writes (e.g. after joining the producer threads, or
//! under the single-threaded simulator) is exact. Merging is plain
//! addition, so the single-threaded path produces bit-identical totals to
//! the old non-atomic fields — the property the same-seed replay tests pin.
//!
//! [`AtomicHistogram`] applies the same discipline to the log2 histogram
//! of [`crate::metrics::Histogram`]: per-thread bucket slabs merged into a
//! plain `Histogram` on read.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::metrics::{Histogram, HIST_BUCKETS};

/// Number of slab slots. Thread stripe ids are assigned round-robin, so
/// more than `STRIPES` concurrent writers start sharing slabs (still
/// correct — the slots are atomics — just with some contention again).
pub const STRIPES: usize = 16;

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

std::thread_local! {
    static STRIPE_ID: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

/// The calling thread's stripe slot (stable for the thread's lifetime).
pub fn stripe_id() -> usize {
    STRIPE_ID.with(|s| *s)
}

/// `N` logical counters, striped per writing thread.
pub struct StripedCells<const N: usize> {
    slabs: [OnceLock<Box<[AtomicU64; N]>>; STRIPES],
}

impl<const N: usize> Default for StripedCells<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const N: usize> StripedCells<N> {
    pub fn new() -> StripedCells<N> {
        StripedCells {
            slabs: std::array::from_fn(|_| OnceLock::new()),
        }
    }

    /// The calling thread's slab, allocated on first use.
    fn my_slab(&self) -> &[AtomicU64; N] {
        self.slabs[stripe_id()].get_or_init(|| Box::new(std::array::from_fn(|_| AtomicU64::new(0))))
    }

    /// Add `n` to counter `i` (contended-write-free: own slab only).
    #[inline]
    pub fn add(&self, i: usize, n: u64) {
        self.my_slab()[i].fetch_add(n, Ordering::Relaxed);
    }

    /// Raise counter `i` to at least `v` (per-slab max; the merged read
    /// takes the max across slabs).
    #[inline]
    pub fn raise(&self, i: usize, v: u64) {
        self.my_slab()[i].fetch_max(v, Ordering::Relaxed);
    }

    /// Sum of counter `i` across all slabs.
    pub fn sum(&self, i: usize) -> u64 {
        self.slabs
            .iter()
            .filter_map(|s| s.get())
            .map(|s| s[i].load(Ordering::Relaxed))
            .sum()
    }

    /// Max of counter `i` across all slabs (pairs with [`Self::raise`]).
    pub fn max(&self, i: usize) -> u64 {
        self.slabs
            .iter()
            .filter_map(|s| s.get())
            .map(|s| s[i].load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }

    /// Number of slabs that have been touched (diagnostics: how many
    /// distinct writer stripes this instance has seen).
    pub fn active_slabs(&self) -> usize {
        self.slabs.iter().filter(|s| s.get().is_some()).count()
    }
}

/// A log2 histogram with contended-write-free `record`: per-thread bucket
/// slabs (plus sum/min/max cells), merged into a plain [`Histogram`] on
/// read. Bucket layout is identical to [`Histogram`], so merged snapshots
/// interoperate with every existing consumer (quantiles, exporters,
/// registry merges).
pub struct AtomicHistogram {
    /// Per-stripe: HIST_BUCKETS bucket counts, then sum, then min (stored
    /// negated as `u64::MAX - min` so `fetch_max` implements min), then max.
    cells: StripedCells<{ HIST_BUCKETS + 3 }>,
}

const H_SUM: usize = HIST_BUCKETS;
const H_NEG_MIN: usize = HIST_BUCKETS + 1;
const H_MAX: usize = HIST_BUCKETS + 2;

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    pub fn new() -> AtomicHistogram {
        AtomicHistogram {
            cells: StripedCells::new(),
        }
    }

    /// Record an observation (own slab only — no cross-thread contention).
    pub fn record(&self, v: u64) {
        self.cells.add(Histogram::bucket_of(v), 1);
        self.cells.add(H_SUM, v);
        self.cells.raise(H_NEG_MIN, u64::MAX - v);
        self.cells.raise(H_MAX, v);
    }

    /// Merge every stripe into a plain mergeable [`Histogram`] snapshot.
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        let mut bucket_counts = [0u64; HIST_BUCKETS];
        let mut any = false;
        for (b, c) in bucket_counts.iter_mut().enumerate() {
            *c = self.cells.sum(b);
            any |= *c > 0;
        }
        if !any {
            return h;
        }
        let min = u64::MAX - self.cells.max(H_NEG_MIN);
        let max = self.cells.max(H_MAX);
        let sum = self.cells.sum(H_SUM);
        h.absorb_shard(&bucket_counts, sum as u128, min, max);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_thread_sums_are_exact() {
        let c: StripedCells<3> = StripedCells::new();
        c.add(0, 5);
        c.add(0, 7);
        c.add(2, 1);
        assert_eq!(c.sum(0), 12);
        assert_eq!(c.sum(1), 0);
        assert_eq!(c.sum(2), 1);
        assert_eq!(c.active_slabs(), 1);
    }

    #[test]
    fn concurrent_adds_merge_to_the_exact_total() {
        let c: Arc<StripedCells<1>> = Arc::new(StripedCells::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.add(0, 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.sum(0), 80_000);
    }

    #[test]
    fn raise_merges_as_max() {
        let c: Arc<StripedCells<1>> = Arc::new(StripedCells::new());
        let threads: Vec<_> = (0..4)
            .map(|k| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || c.raise(0, 10 * (k + 1)))
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.max(0), 40);
    }

    #[test]
    fn atomic_histogram_matches_sequential_histogram() {
        let ah = Arc::new(AtomicHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|k| {
                let ah = Arc::clone(&ah);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        ah.record(k * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let merged = ah.snapshot();
        let mut seq = Histogram::new();
        for k in 0..4u64 {
            for i in 0..1000 {
                seq.record(k * 1000 + i);
            }
        }
        assert_eq!(merged, seq);
    }

    #[test]
    fn empty_histogram_snapshot_is_empty() {
        let ah = AtomicHistogram::new();
        assert_eq!(ah.snapshot().count(), 0);
        assert_eq!(ah.snapshot().min(), None);
    }
}
