//! Deterministic metrics: named counters and log2-bucketed histograms.
//!
//! Everything here is plain integer arithmetic over `BTreeMap`s keyed by
//! `&'static str`, so snapshots iterate in a stable order and merging two
//! registries (e.g. per-rank shards) is associative and commutative —
//! the properties the proptests in `tests/properties.rs` pin down.

use std::collections::BTreeMap;

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `k`
/// (1 ≤ k ≤ 64) holds values in `[2^(k-1), 2^k - 1]`.
pub const HIST_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` observations (latencies in
/// nanoseconds, sizes in bytes). Fixed memory, O(1) record, exact
/// count/sum/min/max, quantiles answered as bucket bounds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            counts: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index of a value: 0 for 0, else `64 - leading_zeros(v)`.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive lower edge of bucket `b`.
    pub fn lower_edge(b: usize) -> u64 {
        assert!(b < HIST_BUCKETS);
        if b == 0 {
            0
        } else {
            1u64 << (b - 1)
        }
    }

    /// Inclusive upper edge of bucket `b`.
    pub fn upper_edge(b: usize) -> u64 {
        assert!(b < HIST_BUCKETS);
        match b {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << b) - 1,
        }
    }

    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold `other` in. Field-wise addition (min/max take the extremum),
    /// so merging is associative and commutative, and merging shards
    /// equals recording the concatenated observation stream.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Fold in a pre-aggregated shard: bucket counts plus exact
    /// sum/min/max, as produced by [`crate::striped::AtomicHistogram`]'s
    /// merged read. Same semantics as [`Histogram::merge`] with the shard
    /// expressed as raw parts. `min`/`max` are ignored when the shard is
    /// empty (all bucket counts zero).
    pub fn absorb_shard(
        &mut self,
        bucket_counts: &[u64; HIST_BUCKETS],
        sum: u128,
        min: u64,
        max: u64,
    ) {
        let shard_count: u64 = bucket_counts.iter().sum();
        if shard_count == 0 {
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(bucket_counts.iter()) {
            *a += b;
        }
        self.count += shard_count;
        self.sum += sum;
        self.min = self.min.min(min);
        self.max = self.max.max(max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.counts
    }

    /// Mean of the recorded values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Bounds of the bucket holding the `q`-quantile (0 ≤ q ≤ 1) of the
    /// recorded values: the true quantile value lies within the returned
    /// inclusive `(lower, upper)` edges. `None` when empty.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some((Self::lower_edge(b), Self::upper_edge(b)));
            }
        }
        unreachable!("rank {rank} beyond count {}", self.count)
    }
}

/// Named counters and histograms with deterministic iteration order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    pub fn inc(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    pub fn observe(&mut self, name: &'static str, v: u64) {
        self.hists.entry(name).or_default().record(v);
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.hists.iter().map(|(&k, v)| (k, v))
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.hists.is_empty()
    }

    /// Fold another registry in (field-wise; associative + commutative).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in other.counters() {
            self.inc(k, v);
        }
        for (k, h) in other.histograms() {
            self.hists.entry(k).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_bracket_their_values() {
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX - 1, u64::MAX] {
            let b = Histogram::bucket_of(v);
            assert!(Histogram::lower_edge(b) <= v, "v={v} b={b}");
            assert!(v <= Histogram::upper_edge(b), "v={v} b={b}");
        }
    }

    #[test]
    fn edges_are_contiguous() {
        for b in 0..HIST_BUCKETS - 1 {
            assert_eq!(
                Histogram::upper_edge(b).wrapping_add(1),
                Histogram::lower_edge(b + 1),
                "gap after bucket {b}"
            );
        }
        assert_eq!(Histogram::upper_edge(64), u64::MAX);
    }

    #[test]
    fn record_tracks_exact_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.quantile_bounds(0.5), None);
        for v in [5u64, 0, 1000, 5] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1010);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        let (lo, hi) = h.quantile_bounds(1.0).unwrap();
        assert!(lo <= 1000 && 1000 <= hi);
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [1u64, 2, 3] {
            a.record(v);
            all.record(v);
        }
        for v in [100u64, 0] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn registry_merges_and_reads_back() {
        let mut a = MetricsRegistry::new();
        a.inc("pkts", 3);
        a.observe("lat", 10);
        let mut b = MetricsRegistry::new();
        b.inc("pkts", 4);
        b.inc("drops", 1);
        b.observe("lat", 20);
        a.merge(&b);
        assert_eq!(a.counter("pkts"), 7);
        assert_eq!(a.counter("drops"), 1);
        assert_eq!(a.counter("absent"), 0);
        assert_eq!(a.histogram("lat").unwrap().count(), 2);
    }
}
