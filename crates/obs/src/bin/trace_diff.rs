//! trace_diff — compare two span streams (JSONL dumps of `obs::Report`)
//! for replay debugging.
//!
//! ```text
//! trace_diff a.jsonl b.jsonl [--context N]
//! ```
//!
//! Exit code 0 when the traces are identical, 1 on divergence (the first
//! diverging event is printed with surrounding context), 2 on usage or
//! I/O errors. Because replays of one seed are bit-identical in append
//! order, a plain positional comparison pinpoints the first simulated
//! event where two runs disagree — usually far upstream of the final
//! state divergence one would otherwise debug from.

use std::process::ExitCode;

/// Pull the integer value of `"key":<n>` out of one JSONL line.
fn int_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn show(idx: usize, line: &str) {
    let t = int_field(line, "t")
        .map(|t| format!("{t} ns"))
        .unwrap_or_else(|| "?".into());
    eprintln!("  [{idx}] t={t}  {line}");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut context = 3usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--context" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => context = n,
                None => {
                    eprintln!("--context needs a number");
                    return ExitCode::from(2);
                }
            },
            _ => files.push(a.clone()),
        }
    }
    if files.len() != 2 {
        eprintln!("usage: trace_diff <a.jsonl> <b.jsonl> [--context N]");
        return ExitCode::from(2);
    }
    let read = |p: &str| -> Result<Vec<String>, String> {
        std::fs::read_to_string(p)
            .map(|s| s.lines().map(str::to_owned).collect())
            .map_err(|e| format!("{p}: {e}"))
    };
    let (a, b) = match (read(&files[0]), read(&files[1])) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("trace_diff: {e}");
            return ExitCode::from(2);
        }
    };
    let common = a.len().min(b.len());
    for i in 0..common {
        if a[i] != b[i] {
            eprintln!(
                "traces diverge at event {i} ({} vs {} events total)",
                a.len(),
                b.len()
            );
            let from = i.saturating_sub(context);
            eprintln!("--- {} (context)", files[0]);
            for (j, line) in a.iter().enumerate().take(i).skip(from) {
                show(j, line);
            }
            eprintln!("--- {} first divergence", files[0]);
            show(i, &a[i]);
            eprintln!("--- {} first divergence", files[1]);
            show(i, &b[i]);
            return ExitCode::from(1);
        }
    }
    if a.len() != b.len() {
        eprintln!(
            "traces agree on the first {common} events but lengths differ: {} vs {}",
            a.len(),
            b.len()
        );
        let longer = if a.len() > b.len() { &a } else { &b };
        let name = if a.len() > b.len() { &files[0] } else { &files[1] };
        eprintln!("--- first extra event in {name}");
        show(common, &longer[common]);
        return ExitCode::from(1);
    }
    println!("traces identical: {} events", a.len());
    ExitCode::SUCCESS
}
