//! Exporters over the recorded event stream: JSONL, Chrome trace-event
//! format (loadable in Perfetto / `about://tracing`), the canonical trace
//! hash the golden-replay tests compare, and the per-phase latency
//! breakdown surfaced on `RunOutcome`.
//!
//! All JSON is hand-rolled: the build container vendors no serde, and the
//! emitted values are integers and fixed label strings only.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use crate::metrics::MetricsRegistry;
use crate::span::{EngineEvent, Event, MsgKey, Phase, Scope};

/// Everything one run recorded, frozen.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Event stream in append order (deterministic per seed).
    pub events: Vec<Event>,
    /// Counter / histogram snapshot.
    pub metrics: MetricsRegistry,
}

impl Report {
    /// One JSON object per line, append order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            event_json(&mut out, e);
            out.push('\n');
        }
        out
    }

    /// A Chrome trace-event file: open in Perfetto (`ui.perfetto.dev`) or
    /// `about://tracing`. Each message gets its own lane (pid = source
    /// rank, tid = per-message lane) whose slices are the lifecycle
    /// phases; machinery events appear as instants on lane 0.
    pub fn to_chrome_trace(&self) -> String {
        to_chrome_trace(&self.events)
    }

    /// Canonical FNV-1a hash of the (sorted) event stream.
    pub fn hash(&self) -> u64 {
        trace_hash(&self.events)
    }

    /// Per-phase latency attribution.
    pub fn breakdown(&self) -> PhaseBreakdown {
        PhaseBreakdown::from_events(&self.events)
    }
}

fn push_key(out: &mut String, key: &MsgKey) {
    let _ = write!(
        out,
        r#""src":{},"dst":{},"tag":{},"seq":{}"#,
        key.src, key.dst, key.tag, key.seq
    );
}

/// Append one event as a JSON object (no trailing newline).
fn event_json(out: &mut String, e: &Event) {
    let _ = write!(out, r#"{{"t":{},"rank":{}"#, e.t_ns, e.rank);
    match &e.scope {
        Scope::Msg { key, phase } => {
            let _ = write!(out, r#","kind":"msg","phase":"{}","#, phase.label());
            push_key(out, key);
            match phase {
                Phase::SendPosted { len } => {
                    let _ = write!(out, r#","len":{len}"#);
                }
                Phase::Matched { unexpected } => {
                    let _ = write!(out, r#","unexpected":{unexpected}"#);
                }
                Phase::EagerTx { rail } | Phase::CtsTx { rail } => {
                    let _ = write!(out, r#","rail":{rail}"#);
                }
                Phase::RtsTx { rail, len } => {
                    let _ = write!(out, r#","rail":{rail},"len":{len}"#);
                }
                Phase::DataChunkTx { rail, offset, len } => {
                    let _ = write!(out, r#","rail":{rail},"offset":{offset},"len":{len}"#);
                }
                Phase::DataChunkRx { offset, len } => {
                    let _ = write!(out, r#","offset":{offset},"len":{len}"#);
                }
                Phase::Retry { kind } => {
                    let _ = write!(out, r#","leg":"{kind:?}""#);
                }
                Phase::Reroute { to_rail, bytes } => {
                    let _ = write!(out, r#","to_rail":{to_rail},"bytes":{bytes}"#);
                }
                Phase::RecvPosted
                | Phase::EagerRx
                | Phase::RtsRx
                | Phase::CtsRx
                | Phase::FinTx
                | Phase::FinRx
                | Phase::Completed { .. }
                | Phase::Aborted { .. }
                | Phase::Revoked { .. }
                | Phase::CreditStall => {}
            }
        }
        Scope::Engine { ev } => {
            let _ = write!(out, r#","kind":"engine","ev":"{}""#, ev.label());
            match ev {
                EngineEvent::NicTx {
                    rail,
                    bytes,
                    occupancy_ns,
                } => {
                    let _ = write!(
                        out,
                        r#","rail":{rail},"bytes":{bytes},"occupancy_ns":{occupancy_ns}"#
                    );
                }
                EngineEvent::ShmFragCopy { bytes } => {
                    let _ = write!(out, r#","bytes":{bytes}"#);
                }
                EngineEvent::ShmDeliver { src_local } => {
                    let _ = write!(out, r#","src_local":{src_local}"#);
                }
                EngineEvent::PiomKick { net } => {
                    let _ = write!(out, r#","net":{net}"#);
                }
                EngineEvent::PiomLtaskPass { tasks } => {
                    let _ = write!(out, r#","tasks":{tasks}"#);
                }
                EngineEvent::CreditDebit { peer } => {
                    let _ = write!(out, r#","peer":{peer}"#);
                }
                EngineEvent::CreditRefill { peer, credits } => {
                    let _ = write!(out, r#","peer":{peer},"credits":{credits}"#);
                }
                EngineEvent::MemberState { peer, state } => {
                    let _ = write!(out, r#","peer":{peer},"state":{state}"#);
                }
                EngineEvent::MemberDrain { peer, entries } => {
                    let _ = write!(out, r#","peer":{peer},"entries":{entries}"#);
                }
                EngineEvent::Revoke { epoch } | EngineEvent::EpochCommit { epoch } => {
                    let _ = write!(out, r#","epoch":{epoch}"#);
                }
                EngineEvent::DispatchCall
                | EngineEvent::DispatchWake
                | EngineEvent::PiomRekick => {}
            }
        }
    }
    out.push('}');
}

/// Canonical FNV-1a hash of an event stream. The events are sorted by
/// `(time, rank, scope)` first, so the hash is a function of *what*
/// happened *when*, not of incidental append interleaving — two replays
/// of one seed must produce equal hashes, and any protocol divergence
/// (one extra retry, one rerouted chunk) changes it.
pub fn trace_hash(events: &[Event]) -> u64 {
    let mut sorted: Vec<&Event> = events.iter().collect();
    sorted.sort();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut line = String::new();
    for e in sorted {
        line.clear();
        event_json(&mut line, e);
        for b in line.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        h ^= b'\n' as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Chrome trace-event JSON for an event stream.
pub fn to_chrome_trace(events: &[Event]) -> String {
    // Assign each message a lane in first-appearance order.
    let mut lanes: BTreeMap<MsgKey, u64> = BTreeMap::new();
    let mut per_msg: BTreeMap<MsgKey, Vec<(u64, Phase)>> = BTreeMap::new();
    for e in events {
        if let Scope::Msg { key, phase } = &e.scope {
            let next = lanes.len() as u64 + 1;
            lanes.entry(*key).or_insert(next);
            per_msg.entry(*key).or_default().push((e.t_ns, *phase));
        }
    }
    let us = |t_ns: u64| t_ns as f64 / 1000.0;
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let emit = |out: &mut String, first: &mut bool, obj: &str| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(obj);
    };
    let mut obj = String::new();
    // Lane names.
    for (key, lane) in &lanes {
        obj.clear();
        let _ = write!(
            obj,
            r#"{{"name":"thread_name","ph":"M","pid":{},"tid":{lane},"args":{{"name":"msg dst={} tag={} seq={}"}}}}"#,
            key.src, key.dst, key.tag, key.seq
        );
        emit(&mut out, &mut first, &obj);
    }
    // Per-message phase slices + instants.
    for (key, evs) in &per_msg {
        let lane = lanes[key];
        let mut evs = evs.clone();
        evs.sort_by_key(|(t, _)| *t);
        for (i, (t, phase)) in evs.iter().enumerate() {
            obj.clear();
            let _ = write!(
                obj,
                r#"{{"name":"{}","cat":"msg","ph":"i","s":"t","ts":{:.3},"pid":{},"tid":{lane}}}"#,
                phase.label(),
                us(*t),
                key.src
            );
            emit(&mut out, &mut first, &obj);
            if i + 1 < evs.len() {
                let (t2, phase2) = evs[i + 1];
                obj.clear();
                let _ = write!(
                    obj,
                    r#"{{"name":"→{}","cat":"msg","ph":"X","ts":{:.3},"dur":{:.3},"pid":{},"tid":{lane}}}"#,
                    phase2.label(),
                    us(*t),
                    us(t2 - t),
                    key.src
                );
                emit(&mut out, &mut first, &obj);
            }
        }
    }
    // Machinery instants on lane 0 of the recording rank.
    for e in events {
        if let Scope::Engine { ev } = &e.scope {
            obj.clear();
            let _ = write!(
                obj,
                r#"{{"name":"{}","cat":"engine","ph":"i","s":"t","ts":{:.3},"pid":{},"tid":0}}"#,
                ev.label(),
                us(e.t_ns),
                e.rank
            );
            emit(&mut out, &mut first, &obj);
        }
    }
    out.push_str("\n]}\n");
    out
}

/// One row of the per-phase latency breakdown.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseRow {
    pub label: &'static str,
    /// Total nanoseconds attributed to intervals *ending* in this phase.
    pub total_ns: u64,
    /// Number of such intervals.
    pub intervals: u64,
}

/// Latency attribution over message spans: each interval between two
/// consecutive events of one message is attributed to the phase the
/// interval *leads to*, so the rows partition every message's end-to-end
/// latency exactly (coverage is 1.0 by construction — the acceptance
/// check asserts ≥ 0.95 to leave room for future sampling exporters).
#[derive(Clone, Debug, Default)]
pub struct PhaseBreakdown {
    pub phases: Vec<PhaseRow>,
    /// Messages with at least one recorded event.
    pub messages: u64,
    /// Σ per message of (last event time − first event time).
    pub end_to_end_ns: u64,
    /// Σ of all attributed intervals.
    pub attributed_ns: u64,
}

impl PhaseBreakdown {
    pub fn from_events(events: &[Event]) -> PhaseBreakdown {
        let mut per_msg: BTreeMap<MsgKey, Vec<(u64, Phase)>> = BTreeMap::new();
        for e in events {
            if let Scope::Msg { key, phase } = &e.scope {
                per_msg.entry(*key).or_default().push((e.t_ns, *phase));
            }
        }
        let mut rows: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        let mut end_to_end = 0u64;
        let mut attributed = 0u64;
        for evs in per_msg.values_mut() {
            evs.sort_by_key(|(t, _)| *t);
            end_to_end += evs.last().unwrap().0 - evs.first().unwrap().0;
            for w in evs.windows(2) {
                let dt = w[1].0 - w[0].0;
                let row = rows.entry(w[1].1.label()).or_insert((0, 0));
                row.0 += dt;
                row.1 += 1;
                attributed += dt;
            }
        }
        let mut phases: Vec<PhaseRow> = rows
            .into_iter()
            .map(|(label, (total_ns, intervals))| PhaseRow {
                label,
                total_ns,
                intervals,
            })
            .collect();
        phases.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.label.cmp(b.label)));
        PhaseBreakdown {
            phases,
            messages: per_msg.len() as u64,
            end_to_end_ns: end_to_end,
            attributed_ns: attributed,
        }
    }

    /// Fraction of end-to-end message latency the phase rows account for.
    pub fn coverage(&self) -> f64 {
        if self.end_to_end_ns == 0 {
            1.0
        } else {
            self.attributed_ns as f64 / self.end_to_end_ns as f64
        }
    }

    /// Nanoseconds attributed to one phase label.
    pub fn total_for(&self, label: &str) -> u64 {
        self.phases
            .iter()
            .find(|r| r.label == label)
            .map(|r| r.total_ns)
            .unwrap_or(0)
    }
}

impl fmt::Display for PhaseBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "phase breakdown: {} messages, {} ns end-to-end, {:.1}% attributed",
            self.messages,
            self.end_to_end_ns,
            self.coverage() * 100.0
        )?;
        writeln!(f, "{:<16} {:>14} {:>10} {:>6}", "phase", "total ns", "ivals", "%")?;
        for r in &self.phases {
            let pct = if self.end_to_end_ns == 0 {
                0.0
            } else {
                r.total_ns as f64 * 100.0 / self.end_to_end_ns as f64
            };
            writeln!(
                f,
                "{:<16} {:>14} {:>10} {:>5.1}%",
                r.label, r.total_ns, r.intervals, pct
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{RetryKind, Side};

    fn key(seq: u64) -> MsgKey {
        MsgKey {
            src: 0,
            dst: 1,
            tag: 7,
            seq,
        }
    }

    fn msg(t: u64, rank: u32, k: MsgKey, phase: Phase) -> Event {
        Event {
            t_ns: t,
            rank,
            scope: Scope::Msg { key: k, phase },
        }
    }

    fn sample() -> Vec<Event> {
        vec![
            msg(100, 0, key(0), Phase::SendPosted { len: 4 }),
            msg(110, 0, key(0), Phase::EagerTx { rail: 0 }),
            Event {
                t_ns: 115,
                rank: 0,
                scope: Scope::Engine {
                    ev: EngineEvent::NicTx {
                        rail: 0,
                        bytes: 36,
                        occupancy_ns: 29,
                    },
                },
            },
            msg(1400, 1, key(0), Phase::EagerRx),
            msg(1450, 1, key(0), Phase::Matched { unexpected: true }),
            msg(1500, 1, key(0), Phase::Completed { side: Side::Recv }),
        ]
    }

    #[test]
    fn jsonl_emits_one_line_per_event() {
        let r = Report {
            events: sample(),
            metrics: MetricsRegistry::new(),
        };
        let j = r.to_jsonl();
        assert_eq!(j.lines().count(), 6);
        assert!(j.contains(r#""phase":"eager_tx","src":0,"dst":1,"tag":7,"seq":0,"rail":0"#));
        assert!(j.contains(r#""ev":"nic_tx","rail":0,"bytes":36,"occupancy_ns":29"#));
        for line in j.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn hash_is_order_insensitive_but_content_sensitive() {
        let evs = sample();
        let mut shuffled = evs.clone();
        shuffled.reverse();
        assert_eq!(trace_hash(&evs), trace_hash(&shuffled));
        let mut tweaked = evs.clone();
        tweaked[0].t_ns += 1;
        assert_ne!(trace_hash(&evs), trace_hash(&tweaked));
        let mut extra = evs.clone();
        extra.push(msg(2000, 0, key(0), Phase::Retry { kind: RetryKind::Eager }));
        assert_ne!(trace_hash(&evs), trace_hash(&extra));
    }

    #[test]
    fn chrome_trace_is_wellformed_enough() {
        let r = Report {
            events: sample(),
            metrics: MetricsRegistry::new(),
        };
        let c = r.to_chrome_trace();
        assert!(c.starts_with("{\"traceEvents\":["));
        assert!(c.trim_end().ends_with("]}"));
        assert!(c.contains(r#""ph":"M""#), "lane metadata present");
        assert!(c.contains(r#""ph":"X""#), "phase slices present");
        assert!(c.contains(r#""name":"→completed_recv""#));
        // Balanced braces (cheap well-formedness proxy without a parser).
        let open = c.matches('{').count();
        let close = c.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn breakdown_partitions_end_to_end_exactly() {
        let mut evs = sample();
        // Second message to exercise aggregation.
        evs.push(msg(200, 0, key(1), Phase::SendPosted { len: 4 }));
        evs.push(msg(260, 0, key(1), Phase::EagerTx { rail: 0 }));
        evs.push(msg(900, 1, key(1), Phase::Completed { side: Side::Recv }));
        let b = PhaseBreakdown::from_events(&evs);
        assert_eq!(b.messages, 2);
        assert_eq!(b.end_to_end_ns, (1500 - 100) + (900 - 200));
        assert_eq!(b.attributed_ns, b.end_to_end_ns);
        assert!((b.coverage() - 1.0).abs() < 1e-12);
        assert_eq!(b.total_for("eager_tx"), 10 + 60);
        let shown = format!("{b}");
        assert!(shown.contains("eager_tx"));
        assert!(shown.contains("100.0% attributed"));
    }

    #[test]
    fn empty_breakdown_is_fully_covered() {
        let b = PhaseBreakdown::from_events(&[]);
        assert_eq!(b.messages, 0);
        assert_eq!(b.coverage(), 1.0);
    }
}
