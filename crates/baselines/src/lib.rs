//! # baselines — the comparator MPI stacks of §4
//!
//! The paper evaluates MPICH2-NewMadeleine against **MVAPICH2 1.0.3** and
//! **Open MPI 1.2.7**. Both are "finely-tuned, specialized" stacks we only
//! know through their measured behaviour, so they are modelled as
//! [`mpi_ch3::stack::InterNode::Tailored`] configurations of the same CH3
//! machinery, calibrated to the paper's numbers (DESIGN.md §4):
//!
//! | stack            | IB latency | large-message behaviour |
//! |------------------|------------|--------------------------|
//! | MVAPICH2         | 1.5 µs     | registration cache ⇒ highest bandwidth |
//! | Open MPI (BTL)   | 1.6 µs     | no cache + 128 KB pipelined rendezvous ⇒ lower medium-size bandwidth |
//! | Open MPI (PML)   | 1.6 µs     | MTL-style tag-matching offload: slightly lower latency than the BTL (Fig. 6b) |
//!
//! Open MPI's `compute_factor` of 1.06 reproduces its otherwise-unexplained
//! EP/LU lag in Fig. 8 (see DESIGN.md §6). Neither baseline overlaps
//! communication with computation (Fig. 7) and neither has functional
//! multirail ("to the extent of our knowledge, this functionality is not
//! fully operational in the release we tested", §4.1.1) — both fall out of
//! the tailored path's design rather than being special-cased.

use mpi_ch3::stack::{InterNode, StackConfig, TailoredProfile};
use mpi_ch3::SoftwareCosts;
use nemesis::ShmModel;
use nmad::NmConfig;
use simnet::SimDuration;

/// MVAPICH2 1.0.3-like stack (single IB rail).
pub fn mvapich2(rail: usize) -> StackConfig {
    StackConfig {
        name: "MVAPICH2".into(),
        inter: InterNode::Tailored(TailoredProfile {
            name: "mvapich2",
            eager_threshold: 16 * 1024,
            // RDMA write of the whole buffer in one go.
            rdv_chunk: None,
            rdv_ack: false,
            rdv_setup: SimDuration::ZERO,
            reg_cache: true,
            costs: SoftwareCosts::mvapich2(),
            rail,
        }),
        pioman: None,
        costs: SoftwareCosts::mvapich2(),
        shm_model: ShmModel::xeon(),
        cells_per_rank: 64,
        nm: NmConfig::default(),
        compute_factor: 1.0,
        fabric_seed: 0,
        faults: None,
        obs: Default::default(),
    }
}

/// Open MPI 1.2.7-like stack, openib BTL flavour.
pub fn openmpi_btl(rail: usize) -> StackConfig {
    StackConfig {
        name: "Open MPI (BTL)".into(),
        inter: InterNode::Tailored(TailoredProfile {
            name: "openmpi-btl",
            // The openib BTL's default eager limit is 12 KB.
            eager_threshold: 12 * 1024,
            // Depth-1 pipelined rendezvous in 128 KB fragments with a
            // protocol-switch startup cost: the source of Open MPI's
            // medium-size bandwidth dip in Fig. 4(b).
            rdv_chunk: Some(128 * 1024),
            rdv_ack: true,
            rdv_setup: SimDuration::micros(10),
            reg_cache: false,
            costs: btl_costs(),
            rail,
        }),
        pioman: None,
        costs: btl_costs(),
        shm_model: ShmModel::xeon(),
        cells_per_rank: 64,
        nm: NmConfig::default(),
        compute_factor: 1.06,
        fabric_seed: 0,
        faults: None,
        obs: Default::default(),
    }
}

/// Open MPI 1.2.7-like stack, PML/MTL flavour (tag matching offloaded to
/// the interface — slightly lower latency than the BTL, Fig. 6b).
pub fn openmpi_pml(rail: usize) -> StackConfig {
    StackConfig {
        name: "Open MPI (PML)".into(),
        inter: InterNode::Tailored(TailoredProfile {
            name: "openmpi-pml",
            eager_threshold: 16 * 1024,
            rdv_chunk: Some(128 * 1024),
            rdv_ack: true,
            rdv_setup: SimDuration::micros(10),
            reg_cache: false,
            costs: SoftwareCosts::openmpi(),
            rail,
        }),
        pioman: None,
        costs: SoftwareCosts::openmpi(),
        shm_model: ShmModel::xeon(),
        cells_per_rank: 64,
        nm: NmConfig::default(),
        compute_factor: 1.06,
        fabric_seed: 0,
        faults: None,
        obs: Default::default(),
    }
}

/// Generic "Open MPI" (the PML flavour — what the paper's Fig. 4/7/8
/// curves labelled just "Open MPI" use).
pub fn openmpi(rail: usize) -> StackConfig {
    openmpi_pml(rail)
}

/// BTL per-message costs: ~0.5 µs more than the PML path on small
/// messages (Fig. 6b shows the BTL above the PML).
fn btl_costs() -> SoftwareCosts {
    let base = SoftwareCosts::openmpi();
    SoftwareCosts {
        net_send: base.net_send + SimDuration::nanos(250),
        net_recv: base.net_recv + SimDuration::nanos(250),
        ..base
    }
}

/// Extra per-side cost of Open MPI's Myrinet path relative to its IB path.
/// Fig. 6(b) puts Open MPI's PML over MX around 2.9 µs and the BTL around
/// 3.4 µs while MPICH2-NewMadeleine sits at 2.4 µs — Open MPI 1.2.7's MX
/// support was simply less tuned than MPICH2's; we calibrate the gap
/// rather than explain it (same policy as every baseline constant).
const MX_PATH_EXTRA: SimDuration = SimDuration::nanos(525);

fn add_mx_extra(c: SoftwareCosts) -> SoftwareCosts {
    SoftwareCosts {
        net_send: c.net_send + MX_PATH_EXTRA,
        net_recv: c.net_recv + MX_PATH_EXTRA,
        ..c
    }
}

/// Open MPI over Myrinet MX, PML (CM) flavour — Fig. 6(b)/7(a).
pub fn openmpi_pml_mx(rail: usize) -> StackConfig {
    let mut cfg = openmpi_pml(rail);
    cfg.name = "Open MPI (PML, MX)".into();
    if let InterNode::Tailored(p) = &mut cfg.inter {
        p.name = "openmpi-pml-mx";
        p.costs = add_mx_extra(p.costs);
        cfg.costs = p.costs;
    }
    cfg
}

/// Open MPI over Myrinet MX, openib-style BTL flavour.
pub fn openmpi_btl_mx(rail: usize) -> StackConfig {
    let mut cfg = openmpi_btl(rail);
    cfg.name = "Open MPI (BTL, MX)".into();
    if let InterNode::Tailored(p) = &mut cfg.inter {
        p.name = "openmpi-btl-mx";
        p.costs = add_mx_extra(p.costs);
        cfg.costs = p.costs;
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_ch3::{MpiHandle, Src};
    use parking_lot::Mutex;
    use simnet::{Cluster, Placement};
    use std::sync::Arc;

    fn one_way_us(cfg: &StackConfig, bytes: usize) -> f64 {
        let c = Cluster::xeon_pair();
        let p = Placement::one_per_node(2, &c);
        let out = Arc::new(Mutex::new(0.0));
        let o2 = Arc::clone(&out);
        mpi_ch3::stack::run_mpi(
            &c,
            &p,
            cfg,
            2,
            Arc::new(move |mpi: MpiHandle| {
                let payload = vec![0u8; bytes];
                if mpi.rank() == 0 {
                    mpi.send(1, 1, &payload);
                    mpi.recv(Src::Rank(1), 1);
                    let t0 = mpi.now();
                    for _ in 0..20 {
                        mpi.send(1, 1, &payload);
                        mpi.recv(Src::Rank(1), 1);
                    }
                    *o2.lock() = (mpi.now() - t0).as_micros_f64() / 40.0;
                } else {
                    mpi.recv(Src::Rank(0), 1);
                    mpi.send(0, 1, &payload);
                    for _ in 0..20 {
                        mpi.recv(Src::Rank(0), 1);
                        mpi.send(0, 1, &payload);
                    }
                }
            }),
        );
        let v = *out.lock();
        v
    }

    #[test]
    fn mvapich2_latency_is_1_5us() {
        let lat = one_way_us(&mvapich2(0), 4);
        assert!((lat - 1.5).abs() < 0.15, "MVAPICH2 latency {lat:.2}us");
    }

    #[test]
    fn openmpi_latency_is_1_6us() {
        let lat = one_way_us(&openmpi(0), 4);
        assert!((lat - 1.6).abs() < 0.15, "Open MPI latency {lat:.2}us");
    }

    #[test]
    fn btl_is_slower_than_pml() {
        // Fig. 6(b): the BTL path sits above the PML path.
        let pml = one_way_us(&openmpi_pml(0), 4);
        let btl = one_way_us(&openmpi_btl(0), 4);
        assert!(
            btl > pml + 0.3,
            "BTL ({btl:.2}us) must exceed PML ({pml:.2}us)"
        );
    }

    #[test]
    fn paper_latency_ordering_holds() {
        // Fig. 4(a): MVAPICH2 < Open MPI < MPICH2-NewMadeleine.
        let mva = one_way_us(&mvapich2(0), 4);
        let omp = one_way_us(&openmpi(0), 4);
        let nmad = one_way_us(&StackConfig::mpich2_nmad_rail(0, false), 4);
        assert!(mva < omp, "MVAPICH2 {mva:.2} !< OpenMPI {omp:.2}");
        assert!(omp < nmad, "OpenMPI {omp:.2} !< nmad {nmad:.2}");
    }

    #[test]
    fn large_message_bandwidth_ordering() {
        // Fig. 4(b): MVAPICH2 (registration cache) has the highest
        // large-message bandwidth; MPICH2-NewMadeleine beats Open MPI at
        // medium sizes.
        let t_mva = one_way_us(&mvapich2(0), 4 << 20);
        let t_nmad = one_way_us(&StackConfig::mpich2_nmad_rail(0, false), 4 << 20);
        let t_omp = one_way_us(&openmpi(0), 4 << 20);
        assert!(
            t_mva < t_nmad,
            "MVAPICH2 4MB {t_mva:.0}us !< nmad {t_nmad:.0}us"
        );
        // Medium size: 64 KB.
        let m_nmad = one_way_us(&StackConfig::mpich2_nmad_rail(0, false), 64 << 10);
        let m_omp = one_way_us(&openmpi(0), 64 << 10);
        assert!(
            m_nmad < m_omp,
            "nmad 64KB {m_nmad:.1}us !< OpenMPI {m_omp:.1}us"
        );
        let _ = t_omp;
    }

    #[test]
    fn baselines_run_nas_style_collectives() {
        let c = Cluster::xeon_pair();
        let p = Placement::block(4, &c);
        for cfg in [mvapich2(0), openmpi_btl(0), openmpi_pml(0)] {
            let (_, sums) = mpi_ch3::stack::run_mpi_collect(&c, &p, &cfg, 4, |mpi| {
                mpi.barrier();
                mpi.allreduce_sum(&[mpi.rank() as f64])[0]
            });
            assert!(sums.into_iter().all(|s| s == 6.0), "{}", cfg.name);
        }
    }
}
