//! End-to-end tests of the NewMadeleine core over the simulated fabric:
//! two (or more) cores exchanging real bytes through eager and rendezvous
//! protocols, with single- and multirail configurations.

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use simnet::{
    Fabric, NicModel, NodeId, RailId, RankCtx, Sim, SimBuilder, SimDuration,
};

use nmad::{GateId, NmConfig, NmCore, NmNet, NmWire, StrategyKind};

/// Build `n` cores on `n` single-rank nodes over the given rails.
fn fixture(n: usize, rails: Vec<NicModel>, cfg: NmConfig) -> (Sim, Vec<Arc<NmCore>>) {
    let sim = SimBuilder::new().build();
    let fabric: Arc<Fabric<NmWire>> = Fabric::new(n, rails);
    let rank_to_node = Arc::new((0..n).map(NodeId).collect::<Vec<_>>());
    let rail_ids: Vec<RailId> = (0..fabric.num_rails()).map(RailId).collect();
    let cores: Vec<Arc<NmCore>> = (0..n)
        .map(|r| {
            NmCore::new(
                cfg,
                r,
                NmNet {
                    fabric: Arc::clone(&fabric),
                    node: NodeId(r),
                    rails: rail_ids.clone(),
                    rank_to_node: Arc::clone(&rank_to_node),
                },
            )
        })
        .collect();
    for (r, c) in cores.iter().enumerate() {
        let core = Arc::clone(c);
        fabric.set_sink(
            NodeId(r),
            Box::new(move |s, d| core.accept(s, d.msg)),
        );
    }
    (sim, cores)
}

/// Drive progress until the completion with `cookie` appears; returns any
/// receive payload. Polls like an MPI wait loop.
fn wait_cookie(ctx: &RankCtx, core: &Arc<NmCore>, cookie: u64) -> Option<Bytes> {
    let sched = ctx.scheduler();
    let mut spins = 0u32;
    loop {
        core.schedule(&sched);
        if let Some(c) = core.drain_completions().into_iter().next() {
            // Other completions in a single-purpose test are unexpected.
            assert_eq!(c.cookie, cookie, "unexpected completion cookie");
            return match c.kind {
                nmad::sr::CompletionKind::Recv { data, .. } => Some(data),
                nmad::sr::CompletionKind::Send => None,
                other => panic!("unexpected failed completion: {other:?}"),
            };
        }
        ctx.advance(SimDuration::nanos(100));
        spins += 1;
        assert!(spins < 10_000_000, "wait_cookie never completed");
    }
}

/// Like `wait_cookie` but collects every completion until `want` cookies
/// have been seen; returns (cookie, recv payload if any) pairs in order.
fn wait_n(ctx: &RankCtx, core: &Arc<NmCore>, want: usize) -> Vec<(u64, Option<Bytes>)> {
    let sched = ctx.scheduler();
    let mut got = Vec::new();
    let mut spins = 0u32;
    while got.len() < want {
        core.schedule(&sched);
        for c in core.drain_completions() {
            let payload = match c.kind {
                nmad::sr::CompletionKind::Recv { data, .. } => Some(data),
                nmad::sr::CompletionKind::Send => None,
                other => panic!("unexpected failed completion: {other:?}"),
            };
            got.push((c.cookie, payload));
        }
        ctx.advance(SimDuration::nanos(100));
        spins += 1;
        assert!(spins < 10_000_000, "wait_n starved");
    }
    got
}

#[test]
fn eager_roundtrip_delivers_bytes() {
    let (mut sim, cores) = fixture(
        2,
        vec![NicModel::connectx_ib()],
        NmConfig::with_strategy(StrategyKind::Default),
    );
    let c0 = Arc::clone(&cores[0]);
    let c1 = Arc::clone(&cores[1]);
    sim.spawn_rank("sender", move |ctx| {
        let sched = ctx.scheduler();
        c0.isend(&sched, 1, 7, Bytes::from_static(b"hello nmad"), 100);
        assert!(wait_cookie(&ctx, &c0, 100).is_none());
        let stats = c0.stats();
        assert_eq!(stats.eager_sends, 1);
        assert_eq!(stats.send_completions, 1);
    });
    sim.spawn_rank("receiver", move |ctx| {
        let sched = ctx.scheduler();
        c1.irecv(&sched, 0, 7, 200);
        let data = wait_cookie(&ctx, &c1, 200).expect("recv payload");
        assert_eq!(&data[..], b"hello nmad");
        assert!(c1.quiescent());
    });
    sim.run().unwrap();
}

#[test]
fn unexpected_eager_completes_on_late_post() {
    let (mut sim, cores) = fixture(
        2,
        vec![NicModel::connectx_ib()],
        NmConfig::with_strategy(StrategyKind::Default),
    );
    let c0 = Arc::clone(&cores[0]);
    let c1 = Arc::clone(&cores[1]);
    sim.spawn_rank("sender", move |ctx| {
        let sched = ctx.scheduler();
        c0.isend(&sched, 1, 3, Bytes::from_static(b"early bird"), 1);
        wait_cookie(&ctx, &c0, 1);
    });
    sim.spawn_rank("receiver", move |ctx| {
        let sched = ctx.scheduler();
        // Let the message arrive unexpectedly first.
        while c1.unexpected_msgs() == 0 {
            c1.schedule(&sched);
            ctx.advance(SimDuration::nanos(200));
        }
        assert!(c1.probe(GateId(0), 3));
        assert_eq!(c1.probe_tag(3), Some(GateId(0)));
        c1.irecv(&sched, 0, 3, 2);
        let data = wait_cookie(&ctx, &c1, 2).expect("recv payload");
        assert_eq!(&data[..], b"early bird");
        assert_eq!(c1.unexpected_msgs(), 0);
    });
    sim.run().unwrap();
}

#[test]
fn rendezvous_moves_megabyte_intact() {
    let (mut sim, cores) = fixture(
        2,
        vec![NicModel::connectx_ib()],
        NmConfig::with_strategy(StrategyKind::Default),
    );
    let payload: Vec<u8> = (0..(1 << 20)).map(|i| (i * 31 % 251) as u8).collect();
    let expect = payload.clone();
    let c0 = Arc::clone(&cores[0]);
    let c1 = Arc::clone(&cores[1]);
    sim.spawn_rank("sender", move |ctx| {
        let sched = ctx.scheduler();
        c0.isend(&sched, 1, 11, Bytes::from(payload), 1);
        wait_cookie(&ctx, &c0, 1);
        let stats = c0.stats();
        assert_eq!(stats.rdv_sends, 1);
        assert_eq!(stats.eager_sends, 0);
        assert!(stats.data_chunks_sent >= 1);
    });
    sim.spawn_rank("receiver", move |ctx| {
        let sched = ctx.scheduler();
        c1.irecv(&sched, 0, 11, 2);
        let data = wait_cookie(&ctx, &c1, 2).expect("recv payload");
        assert_eq!(data.len(), expect.len());
        assert_eq!(&data[..], &expect[..]);
    });
    sim.run().unwrap();
}

#[test]
fn rendezvous_rts_before_recv_is_probeable_then_completes() {
    let (mut sim, cores) = fixture(
        2,
        vec![NicModel::connectx_ib()],
        NmConfig::with_strategy(StrategyKind::Default),
    );
    let payload = vec![0xAB; 256 * 1024];
    let len = payload.len();
    let c0 = Arc::clone(&cores[0]);
    let c1 = Arc::clone(&cores[1]);
    sim.spawn_rank("sender", move |ctx| {
        let sched = ctx.scheduler();
        c0.isend(&sched, 1, 4, Bytes::from(payload), 1);
        wait_cookie(&ctx, &c0, 1);
    });
    sim.spawn_rank("receiver", move |ctx| {
        let sched = ctx.scheduler();
        // RTS lands as unexpected; probe sees it although no payload moved.
        while c1.probe_tag(4).is_none() {
            c1.schedule(&sched);
            ctx.advance(SimDuration::nanos(200));
        }
        assert_eq!(c1.probe_tag(4), Some(GateId(0)));
        c1.irecv(&sched, 0, 4, 2);
        let data = wait_cookie(&ctx, &c1, 2).expect("recv payload");
        assert_eq!(data.len(), len);
        assert!(data.iter().all(|&b| b == 0xAB));
    });
    sim.run().unwrap();
}

#[test]
fn multirail_splits_large_transfer_across_both_nics() {
    let (mut sim, cores) = fixture(
        2,
        vec![NicModel::connectx_ib(), NicModel::myri10g_mx()],
        NmConfig::with_strategy(StrategyKind::SplitBalanced),
    );
    let size = 8 << 20;
    let payload: Vec<u8> = (0..size).map(|i| (i % 253) as u8).collect();
    let expect = payload.clone();
    let c0 = Arc::clone(&cores[0]);
    let c1 = Arc::clone(&cores[1]);
    let done_at = Arc::new(Mutex::new(None));
    let done_at2 = Arc::clone(&done_at);
    sim.spawn_rank("sender", move |ctx| {
        let sched = ctx.scheduler();
        c0.isend(&sched, 1, 1, Bytes::from(payload), 1);
        wait_cookie(&ctx, &c0, 1);
        assert!(
            c0.stats().data_chunks_sent >= 2,
            "large transfer should split into >=2 chunks: {:?}",
            c0.stats()
        );
    });
    sim.spawn_rank("receiver", move |ctx| {
        let sched = ctx.scheduler();
        c1.irecv(&sched, 0, 1, 2);
        let data = wait_cookie(&ctx, &c1, 2).expect("payload");
        assert_eq!(&data[..], &expect[..]);
        *done_at2.lock() = Some(ctx.now());
    });
    sim.run().unwrap();
    // Aggregated bandwidth check: both rails together must beat the best
    // single rail. IB alone would need >= size/1250MBps ~ 6.55ms for the
    // data; the split should finish in ~64% of that (sum of 1250+1100).
    let t = done_at.lock().unwrap();
    let single_rail_floor_us = (size as f64) / (1250.0 * 1024.0 * 1024.0) * 1e6;
    assert!(
        (t.as_micros_f64()) < single_rail_floor_us,
        "multirail transfer ({}us) should beat the single-rail floor ({}us)",
        t.as_micros_f64(),
        single_rail_floor_us
    );
}

#[test]
fn aggregation_coalesces_bursts() {
    // Burst of 10 small sends: the first goes out alone; while the NIC is
    // busy the rest accumulate and coalesce.
    let run = |kind: StrategyKind| -> (u64, u64) {
        let (mut sim, cores) = fixture(
            2,
            vec![NicModel::connectx_ib()],
            NmConfig::with_strategy(kind),
        );
        let c0 = Arc::clone(&cores[0]);
        let c1 = Arc::clone(&cores[1]);
        sim.spawn_rank("sender", move |ctx| {
            let sched = ctx.scheduler();
            for i in 0..10u64 {
                c0.isend(&sched, 1, 1, Bytes::from(vec![i as u8; 64]), i);
            }
            let done = wait_n(&ctx, &c0, 10);
            assert_eq!(done.len(), 10);
        });
        let c1b = Arc::clone(&c1);
        sim.spawn_rank("receiver", move |ctx| {
            let sched = ctx.scheduler();
            for i in 0..10u64 {
                c1b.irecv(&sched, 0, 1, 100 + i);
            }
            let got = wait_n(&ctx, &c1b, 10);
            // Messages complete in posted order (FIFO matching).
            let cookies: Vec<u64> = got.iter().map(|(c, _)| *c).collect();
            assert_eq!(cookies, (100..110).collect::<Vec<_>>());
            for (k, (_, data)) in got.iter().enumerate() {
                let d = data.as_ref().expect("recv data");
                assert!(d.iter().all(|&b| b == k as u8));
            }
        });
        sim.run().unwrap();
        let s = cores[0].stats();
        (s.packets_sent, s.aggregates_sent)
    };
    let (packets_default, agg_default) = run(StrategyKind::Default);
    let (packets_aggreg, agg_aggreg) = run(StrategyKind::Aggreg);
    assert_eq!(agg_default, 0);
    assert_eq!(packets_default, 10);
    assert!(agg_aggreg >= 1, "aggregation must kick in on a burst");
    assert!(
        packets_aggreg < packets_default,
        "aggregation must reduce packet count ({packets_aggreg} vs {packets_default})"
    );
}

#[test]
fn cross_rail_arrivals_are_reordered_for_matching() {
    // split_balanced sends message A (big eager) on rail 0, then message B
    // (small) on rail 1 while rail 0 is still serializing. B arrives first
    // on the wire; matching must still complete A before B.
    let (mut sim, cores) = fixture(
        2,
        vec![NicModel::connectx_ib(), NicModel::myri10g_mx()],
        NmConfig::with_strategy(StrategyKind::SplitBalanced),
    );
    let c0 = Arc::clone(&cores[0]);
    let c1 = Arc::clone(&cores[1]);
    sim.spawn_rank("sender", move |ctx| {
        let sched = ctx.scheduler();
        // 16KB on IB: ~13us serialization. Small message right behind it
        // will prefer the *idle* MX rail.
        c0.isend(&sched, 1, 5, Bytes::from(vec![1u8; 16 * 1024]), 1);
        c0.schedule(&sched); // commit A now so rail 0 is busy
        c0.isend(&sched, 1, 5, Bytes::from(vec![2u8; 16]), 2);
        c0.schedule(&sched); // commits B on rail 1
        wait_n(&ctx, &c0, 2);
    });
    sim.spawn_rank("receiver", move |ctx| {
        let sched = ctx.scheduler();
        c1.irecv(&sched, 0, 5, 10);
        c1.irecv(&sched, 0, 5, 11);
        let got = wait_n(&ctx, &c1, 2);
        assert_eq!(got[0].0, 10, "first posted recv matches first send");
        assert_eq!(got[0].1.as_ref().unwrap().len(), 16 * 1024);
        assert_eq!(got[1].0, 11);
        assert_eq!(got[1].1.as_ref().unwrap().len(), 16);
    });
    sim.run().unwrap();
}

#[test]
fn probe_tag_sees_earliest_gate_across_sources() {
    let (mut sim, cores) = fixture(
        3,
        vec![NicModel::connectx_ib()],
        NmConfig::with_strategy(StrategyKind::Default),
    );
    let c0 = Arc::clone(&cores[0]);
    let c1 = Arc::clone(&cores[1]);
    let c2 = Arc::clone(&cores[2]);
    // Rank 1 sends first, rank 2 a bit later; rank 0 probes by tag only.
    sim.spawn_rank("s1", move |ctx| {
        let sched = ctx.scheduler();
        c1.isend(&sched, 0, 9, Bytes::from_static(b"from1"), 1);
        wait_cookie(&ctx, &c1, 1);
    });
    sim.spawn_rank("s2", move |ctx| {
        ctx.advance(SimDuration::micros(50));
        let sched = ctx.scheduler();
        c2.isend(&sched, 0, 9, Bytes::from_static(b"from2"), 1);
        wait_cookie(&ctx, &c2, 1);
    });
    sim.spawn_rank("r0", move |ctx| {
        let sched = ctx.scheduler();
        while c0.unexpected_msgs() < 2 {
            c0.schedule(&sched);
            ctx.advance(SimDuration::nanos(500));
        }
        // Earliest arrival is rank 1's message.
        assert_eq!(c0.probe_tag(9), Some(GateId(1)));
        c0.irecv(&sched, 1, 9, 10);
        let d1 = wait_cookie(&ctx, &c0, 10).unwrap();
        assert_eq!(&d1[..], b"from1");
        assert_eq!(c0.probe_tag(9), Some(GateId(2)));
        c0.irecv(&sched, 2, 9, 11);
        let d2 = wait_cookie(&ctx, &c0, 11).unwrap();
        assert_eq!(&d2[..], b"from2");
        assert_eq!(c0.probe_tag(9), None);
    });
    sim.run().unwrap();
}

#[test]
fn event_hook_fires_on_acceptance() {
    let (mut sim, cores) = fixture(
        2,
        vec![NicModel::connectx_ib()],
        NmConfig::with_strategy(StrategyKind::Default),
    );
    let hits = Arc::new(Mutex::new(0u32));
    let h2 = Arc::clone(&hits);
    cores[1].set_event_hook(Arc::new(move |_s| {
        *h2.lock() += 1;
    }));
    let c0 = Arc::clone(&cores[0]);
    let c1 = Arc::clone(&cores[1]);
    sim.spawn_rank("sender", move |ctx| {
        let sched = ctx.scheduler();
        c0.isend(&sched, 1, 1, Bytes::from_static(b"x"), 1);
        wait_cookie(&ctx, &c0, 1);
    });
    sim.spawn_rank("receiver", move |ctx| {
        let sched = ctx.scheduler();
        c1.irecv(&sched, 0, 1, 2);
        wait_cookie(&ctx, &c1, 2);
    });
    sim.run().unwrap();
    assert!(*hits.lock() >= 1, "hook must fire when a packet arrives");
}

#[test]
fn posted_requests_have_no_cancellation_path() {
    // §2.2.1: a posted request must eventually complete; there is no cancel
    // API. This test pins down that a posted-but-unmatched receive remains
    // pending (and is the reason the §3.2 ANY_SOURCE lists exist).
    let (mut sim, cores) = fixture(
        2,
        vec![NicModel::connectx_ib()],
        NmConfig::with_strategy(StrategyKind::Default),
    );
    let c1 = Arc::clone(&cores[1]);
    sim.spawn_rank("receiver", move |ctx| {
        let sched = ctx.scheduler();
        c1.irecv(&sched, 0, 1, 2);
        assert_eq!(c1.posted_recvs(), 1);
        ctx.advance(SimDuration::micros(100));
        c1.schedule(&sched);
        // Still posted: nothing can remove it.
        assert_eq!(c1.posted_recvs(), 1);
    });
    sim.run().unwrap();
}

#[test]
fn window_holds_until_schedule_runs() {
    // The Fig. 7 mechanism: isend alone must not touch the NIC.
    let (mut sim, cores) = fixture(
        2,
        vec![NicModel::connectx_ib()],
        NmConfig::with_strategy(StrategyKind::Default),
    );
    let c0 = Arc::clone(&cores[0]);
    let c1 = Arc::clone(&cores[1]);
    sim.spawn_rank("sender", move |ctx| {
        let sched = ctx.scheduler();
        c0.isend(&sched, 1, 1, Bytes::from_static(b"deferred"), 1);
        // Compute for a while WITHOUT calling schedule: nothing is sent.
        ctx.advance(SimDuration::micros(50));
        assert_eq!(c0.stats().packets_sent, 0, "window must hold");
        // First schedule commits.
        c0.schedule(&sched);
        assert_eq!(c0.stats().packets_sent, 1);
        wait_cookie(&ctx, &c0, 1);
    });
    sim.spawn_rank("receiver", move |ctx| {
        let sched = ctx.scheduler();
        c1.irecv(&sched, 0, 1, 2);
        let d = wait_cookie(&ctx, &c1, 2).unwrap();
        assert_eq!(&d[..], b"deferred");
    });
    sim.run().unwrap();
}

// ---------------------------------------------------------------------
// Credit-based eager flow control
// ---------------------------------------------------------------------

fn flow_cfg(credits: u32) -> NmConfig {
    NmConfig {
        strategy: StrategyKind::Default,
        flow: Some(nmad::FlowConfig::bounded(credits, 64 * 1024)),
        ..Default::default()
    }
}

#[test]
fn credit_exhaustion_degrades_to_rendezvous() {
    // 2 credits, 6 eager-sized sends before the receiver posts anything:
    // the first two consume the pool, the remaining four must degrade to
    // the rendezvous path (never block, never drop). A trailing
    // zero-length message bypasses credits entirely.
    let (mut sim, cores) = fixture(2, vec![NicModel::connectx_ib()], flow_cfg(2));
    let c0 = Arc::clone(&cores[0]);
    let c1 = Arc::clone(&cores[1]);
    sim.spawn_rank("sender", move |ctx| {
        let sched = ctx.scheduler();
        for i in 0..6u64 {
            c0.isend(&sched, 1, 7, Bytes::from(vec![i as u8; 1024]), 100 + i);
        }
        c0.isend(&sched, 1, 7, Bytes::new(), 106);
        wait_n(&ctx, &c0, 7);
        let st = c0.stats();
        assert_eq!(st.fc_eager_admitted, 2, "pool of 2 admits 2");
        assert_eq!(st.fc_credit_stalls, 4);
        assert_eq!(st.fc_fallback_sends, 4);
        assert_eq!(st.rdv_sends, 4, "stalled sends took the rendezvous path");
        assert_eq!(st.eager_sends, 3, "2 credited + 1 zero-length bypass");
    });
    sim.spawn_rank("receiver", move |ctx| {
        let sched = ctx.scheduler();
        // Let everything arrive, then pump once *before* posting any
        // receive: `accept` only queues inbound wires, so without this
        // schedule the arrivals would be processed after the posts below
        // and match directly instead of sitting unexpected.
        ctx.advance(SimDuration::micros(200));
        c1.schedule(&sched);
        for i in 0..7u64 {
            c1.irecv(&sched, 0, 7, 200 + i);
        }
        let mut got = wait_n(&ctx, &c1, 7);
        // Matching is posted-order == send-order (seq-ordered delivery):
        // receive i must carry message i's bytes, whichever protocol it
        // took. (Completion order may interleave — rendezvous finishes
        // after the zero-length eager behind it.)
        got.sort_by_key(|(cookie, _)| *cookie);
        for (i, (cookie, data)) in got.iter().enumerate() {
            assert_eq!(*cookie, 200 + i as u64, "a receive never completed");
            let data = data.as_ref().expect("recv payload");
            if i < 6 {
                assert_eq!(data.len(), 1024);
                assert!(data.iter().all(|&b| b == i as u8), "payload {i} corrupt");
            } else {
                assert!(data.is_empty());
            }
        }
        let st = c1.stats();
        assert!(
            st.fc_peak_unex_bytes >= 2 * 1024,
            "both credited eagers sat unexpected (peak {}B)",
            st.fc_peak_unex_bytes
        );
        assert_eq!(
            st.fc_credits_returned, 2,
            "consuming the unexpected eagers returns their credits"
        );
    });
    sim.run().unwrap();
}

#[test]
fn paced_sends_recycle_credits_without_stalls() {
    // Pre-posted receiver + paced sender: every credit comes back before
    // the pool empties, so a 2-credit pool carries 8 messages with zero
    // stalls — the armed happy path stays all-eager.
    let (mut sim, cores) = fixture(2, vec![NicModel::connectx_ib()], flow_cfg(2));
    let c0 = Arc::clone(&cores[0]);
    let c1 = Arc::clone(&cores[1]);
    sim.spawn_rank("sender", move |ctx| {
        let sched = ctx.scheduler();
        for i in 0..8u64 {
            c0.isend(&sched, 1, 7, Bytes::from(vec![i as u8; 512]), 100 + i);
            wait_cookie(&ctx, &c0, 100 + i);
            // Pace: leave time for the standalone Credit frame to return.
            ctx.advance(SimDuration::micros(20));
        }
        let st = c0.stats();
        assert_eq!(st.fc_eager_admitted, 8);
        assert_eq!(st.fc_credit_stalls, 0, "paced flow must never stall");
        assert_eq!(st.rdv_sends, 0);
    });
    sim.spawn_rank("receiver", move |ctx| {
        let sched = ctx.scheduler();
        for i in 0..8u64 {
            c1.irecv(&sched, 0, 7, 200 + i);
        }
        wait_n(&ctx, &c1, 8);
        // Credits flow back as messages are consumed (the last return may
        // still sit in ctrl_out when the job ends).
        let st = c1.stats();
        assert!(
            st.fc_credits_returned >= 7,
            "credits must recycle (returned {})",
            st.fc_credits_returned
        );
        assert_eq!(st.fc_credits_withheld, 0, "512B << high water: no throttle");
    });
    sim.run().unwrap();
}
