//! Allocation-aliasing proofs for the eager path: the payload `Bytes`
//! delivered by a receive completion must be a refcounted view of the
//! *sender's* allocation — same backing storage, strong count > 1 while
//! the source handle lives — never a copy. This pins the zero-copy claim
//! at the pointer level, below what the CopyMeter counters can show.

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use proptest::prelude::*;
use simnet::{
    Fabric, NicModel, NodeId, RailId, RankCtx, Sim, SimBuilder, SimDuration,
};

use nmad::{NmConfig, NmCore, NmNet, NmWire, StrategyKind};

/// Two cores on two single-rank nodes over one IB rail (the
/// core_integration fixture, trimmed to the pair this test needs).
fn fixture(cfg: NmConfig) -> (Sim, Vec<Arc<NmCore>>) {
    let sim = SimBuilder::new().build();
    let fabric: Arc<Fabric<NmWire>> = Fabric::new(2, vec![NicModel::connectx_ib()]);
    let rank_to_node = Arc::new(vec![NodeId(0), NodeId(1)]);
    let rail_ids: Vec<RailId> = (0..fabric.num_rails()).map(RailId).collect();
    let cores: Vec<Arc<NmCore>> = (0..2)
        .map(|r| {
            NmCore::new(
                cfg,
                r,
                NmNet {
                    fabric: Arc::clone(&fabric),
                    node: NodeId(r),
                    rails: rail_ids.clone(),
                    rank_to_node: Arc::clone(&rank_to_node),
                },
            )
        })
        .collect();
    for (r, c) in cores.iter().enumerate() {
        let core = Arc::clone(c);
        fabric.set_sink(NodeId(r), Box::new(move |s, d| core.accept(s, d.msg)));
    }
    (sim, cores)
}

/// Drive progress until one completion appears; returns its payload.
fn wait_one(ctx: &RankCtx, core: &Arc<NmCore>, cookie: u64) -> Option<Bytes> {
    let sched = ctx.scheduler();
    let mut spins = 0u32;
    loop {
        core.schedule(&sched);
        if let Some(c) = core.drain_completions().into_iter().next() {
            assert_eq!(c.cookie, cookie, "unexpected completion cookie");
            return match c.kind {
                nmad::sr::CompletionKind::Recv { data, .. } => Some(data),
                nmad::sr::CompletionKind::Send => None,
                other => panic!("unexpected failed completion: {other:?}"),
            };
        }
        ctx.advance(SimDuration::nanos(100));
        spins += 1;
        assert!(spins < 10_000_000, "wait_one never completed");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// For any eager-sized payload, on either scheduling strategy, the
    /// delivered `Bytes` aliases the source allocation: equal
    /// `storage_ptr`, and a backing refcount that still sees the anchor
    /// handle held outside the stack.
    #[test]
    fn eager_delivery_aliases_source_allocation(
        len in 1usize..4096,
        fill in any::<u8>(),
        aggregate in any::<bool>(),
    ) {
        let strategy = if aggregate {
            StrategyKind::Aggreg
        } else {
            StrategyKind::Default
        };
        let (mut sim, cores) = fixture(NmConfig::with_strategy(strategy));

        let source = Bytes::from(vec![fill; len]);
        // Anchor handle: keeps the allocation's refcount observable from
        // the receiver even after the sender's stack dropped its views.
        let anchor = source.clone();
        let src_ptr = source.storage_ptr() as usize;

        let delivered: Arc<Mutex<Option<Bytes>>> = Arc::new(Mutex::new(None));
        let out = Arc::clone(&delivered);

        let c0 = Arc::clone(&cores[0]);
        let c1 = Arc::clone(&cores[1]);
        sim.spawn_rank("sender", move |ctx| {
            let sched = ctx.scheduler();
            c0.isend(&sched, 1, 9, source, 100);
            assert!(wait_one(&ctx, &c0, 100).is_none());
        });
        sim.spawn_rank("receiver", move |ctx| {
            let sched = ctx.scheduler();
            c1.irecv(&sched, 0, 9, 200);
            let data = wait_one(&ctx, &c1, 200).expect("recv payload");
            *out.lock() = Some(data);
        });
        sim.run().unwrap();

        let data = delivered.lock().take().expect("receiver stored payload");
        prop_assert_eq!(data.len(), len);
        prop_assert!(data.iter().all(|&b| b == fill));
        prop_assert_eq!(
            data.storage_ptr() as usize,
            src_ptr,
            "delivered bytes live in a different allocation: the eager \
             path copied instead of sharing"
        );
        let rc = data.ref_count().expect("heap-backed payload is refcounted");
        prop_assert!(
            rc >= 2,
            "refcount {} < 2: the anchor handle and the delivered view \
             must share one allocation",
            rc
        );
        drop(anchor);
        let rc_after = data.ref_count().unwrap();
        prop_assert!(rc_after < rc, "dropping the anchor must release a reference");
    }
}
