//! Property-based tests of the scheduling strategies: whatever a strategy
//! decides, no payload byte may be lost, duplicated, or (for matchable
//! envelope packets on a single rail) reordered.

use std::collections::VecDeque;

use proptest::prelude::*;
use simnet::{NmBuf, SimDuration, SimTime};

use nmad::config::{NmConfig, StrategyKind};
use nmad::pack::{PacketWrapper, PwBody, PwId};
use nmad::railhealth::RailHealth;
use nmad::sampling::LinkProfile;
use nmad::sr::SendReqId;
use nmad::strategy::{self, RailState, Submission};

#[derive(Clone, Debug)]
enum PwSpec {
    Eager { len: usize },
    Data { len: usize },
    Rts,
    Cts,
}

fn pw_strategy() -> impl Strategy<Value = PwSpec> {
    prop_oneof![
        4 => (1usize..4096).prop_map(|len| PwSpec::Eager { len }),
        2 => (32_768usize..(2 << 20)).prop_map(|len| PwSpec::Data { len }),
        1 => Just(PwSpec::Rts),
        1 => Just(PwSpec::Cts),
    ]
}

fn build(specs: &[PwSpec]) -> VecDeque<PacketWrapper> {
    specs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let id = PwId(i as u64);
            match s {
                PwSpec::Eager { len } => PacketWrapper {
                    id,
                    dst: 1,
                    body: PwBody::Eager {
                        tag: 1,
                        seq: i as u64,
                        send_req: SendReqId(i as u32),
                    },
                    data: NmBuf::from(vec![i as u8; *len]),
                    enqueued_at: SimTime::ZERO,
                },
                PwSpec::Data { len } => PacketWrapper {
                    id,
                    dst: 1,
                    body: PwBody::Data {
                        rdv_id: i as u64,
                        offset: 0,
                    },
                    data: NmBuf::from(vec![i as u8; *len]),
                    enqueued_at: SimTime::ZERO,
                },
                PwSpec::Rts => PacketWrapper {
                    id,
                    dst: 1,
                    body: PwBody::Rts {
                        tag: 1,
                        seq: i as u64,
                        rdv_id: i as u64,
                        len: 1 << 20,
                    },
                    data: NmBuf::default(),
                    enqueued_at: SimTime::ZERO,
                },
                PwSpec::Cts => PacketWrapper {
                    id,
                    dst: 1,
                    body: PwBody::Cts { rdv_id: i as u64 },
                    data: NmBuf::default(),
                    enqueued_at: SimTime::ZERO,
                },
            }
        })
        .collect()
}

fn rails(n: usize, all_idle: bool) -> Vec<RailState> {
    (0..n)
        .map(|i| RailState {
            idle: all_idle || i % 2 == 0,
            profile: LinkProfile {
                latency: SimDuration::nanos(1_000 + 250 * i as u64),
                bandwidth_bps: (1250.0 - 100.0 * i as f64) * 1024.0 * 1024.0,
            },
            health: RailHealth::Up,
            weight: 1.0,
        })
        .collect()
}

/// Drive the strategy to exhaustion (marking rails idle again between
/// passes) and collect everything it emits.
fn drain(
    kind: StrategyKind,
    mut pending: VecDeque<PacketWrapper>,
    nrails: usize,
) -> Vec<Submission> {
    let cfg = NmConfig::with_strategy(kind);
    let mut s = strategy::make(kind);
    let mut out = Vec::new();
    let mut guard = 0;
    while !pending.is_empty() {
        let mut rs = rails(nrails, true);
        let subs = s.try_and_commit(&cfg, &mut pending, &mut rs);
        assert!(
            !subs.is_empty() || pending.is_empty(),
            "strategy made no progress with idle rails"
        );
        out.extend(subs);
        guard += 1;
        assert!(guard < 10_000, "strategy livelock");
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every byte of every wrapper is emitted exactly once (splitting may
    /// repartition Data payloads; nothing may vanish or duplicate).
    #[test]
    fn no_loss_no_duplication(
        specs in proptest::collection::vec(pw_strategy(), 1..24),
        kind in prop_oneof![
            Just(StrategyKind::Default),
            Just(StrategyKind::Aggreg),
            Just(StrategyKind::SplitBalanced)
        ],
        nrails in 1usize..3,
    ) {
        let pending = build(&specs);
        let expected_bytes: usize = pending.iter().map(|p| p.len()).sum();
        let expected_count = pending.len();
        let subs = drain(kind, pending, nrails);
        let mut got_bytes = 0usize;
        let mut envelope_ids = Vec::new();
        let mut data_seen: std::collections::HashMap<u64, usize> = Default::default();
        for sub in &subs {
            for pw in &sub.pws {
                got_bytes += pw.len();
                match pw.body {
                    PwBody::Eager { seq, .. } | PwBody::Rts { seq, .. } => {
                        envelope_ids.push(seq);
                    }
                    PwBody::Data { rdv_id, .. } => {
                        *data_seen.entry(rdv_id).or_default() += pw.len();
                    }
                    PwBody::Cts { .. } => {}
                }
            }
        }
        prop_assert_eq!(got_bytes, expected_bytes, "byte loss/duplication");
        // Each original Data wrapper's bytes fully covered.
        for (i, s) in specs.iter().enumerate() {
            if let PwSpec::Data { len } = s {
                prop_assert_eq!(data_seen.get(&(i as u64)).copied().unwrap_or(0), *len);
            }
        }
        // Every envelope emitted exactly once.
        let expected_envelopes = specs
            .iter()
            .filter(|s| matches!(s, PwSpec::Eager { .. } | PwSpec::Rts))
            .count();
        prop_assert_eq!(envelope_ids.len(), expected_envelopes);
        let mut sorted = envelope_ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), envelope_ids.len(), "duplicate envelope");
        let _ = expected_count;
    }

    /// On a single rail, envelope order on the wire equals window order
    /// (no reorder buffer needed for single-rail configurations).
    #[test]
    fn single_rail_preserves_envelope_order(
        specs in proptest::collection::vec(pw_strategy(), 1..24),
        kind in prop_oneof![
            Just(StrategyKind::Default),
            Just(StrategyKind::Aggreg),
            Just(StrategyKind::SplitBalanced)
        ],
    ) {
        let pending = build(&specs);
        let subs = drain(kind, pending, 1);
        let mut seqs = Vec::new();
        for sub in &subs {
            prop_assert_eq!(sub.rail, 0);
            for pw in &sub.pws {
                if let PwBody::Eager { seq, .. } | PwBody::Rts { seq, .. } = pw.body {
                    seqs.push(seq);
                }
            }
        }
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        prop_assert_eq!(seqs, sorted, "single-rail envelope reorder");
    }

    /// Split chunks partition their payload contiguously from offset 0.
    #[test]
    fn split_chunks_partition_contiguously(len in 65_536usize..(8 << 20)) {
        let pending = build(&[PwSpec::Data { len }]);
        let subs = drain(StrategyKind::SplitBalanced, pending, 2);
        let mut chunks: Vec<(usize, usize)> = subs
            .iter()
            .flat_map(|s| &s.pws)
            .map(|pw| match pw.body {
                PwBody::Data { offset, .. } => (offset, pw.len()),
                _ => panic!("non-data chunk"),
            })
            .collect();
        chunks.sort_unstable();
        let mut expect = 0usize;
        for (off, l) in chunks {
            prop_assert_eq!(off, expect, "gap or overlap at {}", expect);
            expect = off + l;
        }
        prop_assert_eq!(expect, len);
    }

    /// Weighted split invariants: the chunks sum to the request, a
    /// zero-weight rail gets nothing (unless *every* weight is zero — the
    /// all-dead fallback ignores weights), and no nonzero chunk is a
    /// sliver below the min-chunk floor.
    #[test]
    fn weighted_split_invariants(
        size in 4_096usize..(16 << 20),
        weights in proptest::collection::vec(
            prop_oneof![Just(0.0f64), 0.05f64..1.0],
            2..5
        ),
        min_chunk in prop_oneof![Just(1usize), Just(4_096usize), Just(65_536usize)],
    ) {
        let n = weights.len();
        let profiles: Vec<LinkProfile> = (0..n)
            .map(|i| LinkProfile {
                latency: SimDuration::nanos(1_000 + 400 * i as u64),
                bandwidth_bps: (1250.0 - 120.0 * i as f64) * 1024.0 * 1024.0,
            })
            .collect();
        let chunks = nmad::sampling::split_sizes_weighted(size, &profiles, &weights, min_chunk);
        prop_assert_eq!(chunks.len(), n);
        prop_assert_eq!(chunks.iter().sum::<usize>(), size, "split must cover the request");
        let any_alive = weights.iter().any(|&w| w > 0.0);
        for (i, &c) in chunks.iter().enumerate() {
            if any_alive && weights[i] == 0.0 {
                prop_assert_eq!(c, 0, "zero-weight rail {} got bytes", i);
            }
            if c > 0 {
                prop_assert!(
                    c >= min_chunk.min(size),
                    "rail {} got a {}-byte sliver below the {}-byte floor",
                    i, c, min_chunk
                );
            }
        }
    }

    /// The split strategy never schedules payload onto a Down rail and
    /// still covers the whole request via the survivors.
    #[test]
    fn down_rails_get_zero_bytes_from_strategy(
        len in 65_536usize..(4 << 20),
        down in 0usize..2,
        kind in prop_oneof![
            Just(StrategyKind::SplitBalanced),
            Just(StrategyKind::SplitEqual)
        ],
    ) {
        let mut pending = build(&[PwSpec::Data { len }]);
        let cfg = NmConfig::with_strategy(kind);
        let mut s = strategy::make(kind);
        let mut rs = rails(2, true);
        rs[down].health = RailHealth::Down;
        rs[down].weight = 0.0;
        let subs = s.try_and_commit(&cfg, &mut pending, &mut rs);
        let mut total = 0usize;
        for sub in &subs {
            prop_assert_ne!(sub.rail, down, "Down rail was scheduled");
            total += sub.pws.iter().map(|p| p.len()).sum::<usize>();
        }
        prop_assert_eq!(total, len, "survivors must carry every byte");
    }
}
