//! Integration tests for elastic membership: node-death detection,
//! the drain protocol, and per-peer state reclamation.
//!
//! Every scenario drives two real cores over the simulated fabric. A
//! "crash" is `halt()` on the victim — its core empties and stops
//! accepting frames, so the silence its peers observe is real, exactly
//! like a node whose process died. Detection must then happen
//! organically (retransmission timeouts + silence probes), or the test
//! uses `declare_peer_dead` to pin the drain at one precise protocol
//! state (RTS sent, CTS sent, mid-DATA...).
//!
//! The invariants under test, from the membership design (§12):
//! - a dead peer's `peer_entry_count` ends at exactly 0 after drain;
//! - every request completes exactly once — success or a counted
//!   `SendFailed`/`RecvFailed`, never both, never neither;
//! - a merely slow peer (intact inbound within `min_silence`) is never
//!   declared dead no matter how many timeouts it causes;
//! - frames from a drained peer are counted stray, not state-reviving;
//! - the same seed replays to bit-identical stats, membership counters
//!   included.

use std::sync::Arc;

use bytes::Bytes;
use simnet::{
    Fabric, NicModel, NodeId, RailId, RankCtx, Sim, SimBuilder, SimDuration,
};

use nmad::sr::CompletionKind;
use nmad::{
    MembershipConfig, NmCompletion, NmConfig, NmCore, NmNet, NmWire, PeerLiveness,
    RetryConfig, StrategyKind, WirePayload,
};

/// Retry + membership tuned for fast tests: a dead verdict needs 4
/// attributed failures and 50µs of inbound silence.
fn fast_cfg() -> NmConfig {
    let mut cfg = NmConfig::with_strategy(StrategyKind::Default);
    cfg.retry = Some(RetryConfig {
        timeout: SimDuration::micros(20),
        backoff: 2,
        max_timeout: SimDuration::micros(100),
        max_attempts: 6,
        ..RetryConfig::default()
    });
    cfg.membership = Some(MembershipConfig {
        suspect_after: 2,
        dead_after: 4,
        min_silence: SimDuration::micros(50),
        probe_interval: SimDuration::micros(25),
    });
    cfg
}

/// Two cores on two single-rank nodes over one rail.
fn pair(cfg: NmConfig) -> (Sim, Arc<NmCore>, Arc<NmCore>) {
    let sim = SimBuilder::new().build();
    let fabric: Arc<Fabric<NmWire>> = Fabric::new(2, vec![NicModel::connectx_ib()]);
    let rank_to_node = Arc::new((0..2).map(NodeId).collect::<Vec<_>>());
    let rail_ids: Vec<RailId> = (0..fabric.num_rails()).map(RailId).collect();
    let cores: Vec<Arc<NmCore>> = (0..2)
        .map(|r| {
            NmCore::new(
                cfg,
                r,
                NmNet {
                    fabric: Arc::clone(&fabric),
                    node: NodeId(r),
                    rails: rail_ids.clone(),
                    rank_to_node: Arc::clone(&rank_to_node),
                },
            )
        })
        .collect();
    for (r, c) in cores.iter().enumerate() {
        let core = Arc::clone(c);
        fabric.set_sink(NodeId(r), Box::new(move |s, d| core.accept(s, d.msg)));
    }
    let mut it = cores.into_iter();
    (sim, it.next().unwrap(), it.next().unwrap())
}

/// Drive both cores for `dur` of simulated time, collecting completions.
fn run_for(
    ctx: &RankCtx,
    cores: &[&Arc<NmCore>],
    sink: &mut Vec<(usize, NmCompletion)>,
    dur: SimDuration,
) {
    let sched = ctx.scheduler();
    let deadline = sched.now() + dur;
    while sched.now() < deadline {
        for (i, c) in cores.iter().enumerate() {
            c.schedule(&sched);
            for comp in c.drain_completions() {
                sink.push((i, comp));
            }
        }
        ctx.advance(SimDuration::nanos(200));
    }
}

/// Drive until `pred` holds (or panic after `max` of simulated time).
fn run_until(
    ctx: &RankCtx,
    cores: &[&Arc<NmCore>],
    sink: &mut Vec<(usize, NmCompletion)>,
    max: SimDuration,
    what: &str,
    mut pred: impl FnMut() -> bool,
) {
    let sched = ctx.scheduler();
    let deadline = sched.now() + max;
    while !pred() {
        assert!(sched.now() < deadline, "timed out waiting for {what}");
        for (i, c) in cores.iter().enumerate() {
            c.schedule(&sched);
            for comp in c.drain_completions() {
                sink.push((i, comp));
            }
        }
        ctx.advance(SimDuration::nanos(200));
    }
}

/// A crashed peer that stops acking eager envelopes is detected through
/// retransmission-timeout attribution alone, and its state drains to 0.
#[test]
fn organic_death_of_halted_peer() {
    let (mut sim, c0, c1) = pair(fast_cfg());
    sim.spawn_rank("driver", move |ctx| {
        let sched = ctx.scheduler();
        let mut comps = Vec::new();
        // One eager message; c1 dies before it can ack.
        c1.halt();
        c0.isend(&sched, 1, 7, Bytes::from_static(b"into the void"), 100);
        run_until(
            &ctx,
            &[&c0],
            &mut comps,
            SimDuration::millis(10),
            "organic dead verdict",
            || c0.is_peer_dead(1),
        );
        let st = c0.stats();
        assert_eq!(st.membership_dead_peers, 1);
        assert!(st.membership_transitions >= 2, "Up→Suspect→Dead at least");
        assert_eq!(c0.peer_state(1), PeerLiveness::Dead);
        assert_eq!(c0.peer_entry_count(1), 0, "drain must reclaim every entry");
        assert_eq!(c0.take_dead_peers(), vec![1]);
        assert!(c0.take_dead_peers().is_empty(), "event consumed exactly once");
        assert_eq!(c0.death_log().len(), 1);
        // The eager send completed locally at the NIC before the death —
        // exactly one successful completion, no failure on top of it.
        assert_eq!(comps.len(), 1);
        assert!(matches!(comps[0].1.kind, CompletionKind::Send));
    });
    sim.run().unwrap();
}

/// A posted receive is an inbound *expectation*: no outbound retries
/// exist to attribute failures from, so the silence prober must carry
/// the verdict, and the posted receive must fail cleanly.
#[test]
fn silence_prober_detects_dead_sender() {
    let (mut sim, c0, c1) = pair(fast_cfg());
    sim.spawn_rank("driver", move |ctx| {
        let sched = ctx.scheduler();
        let mut comps = Vec::new();
        c0.halt();
        c1.irecv(&sched, 0, 3, 70);
        run_until(
            &ctx,
            &[&c1],
            &mut comps,
            SimDuration::millis(10),
            "prober-driven dead verdict",
            || c1.is_peer_dead(0),
        );
        // The drain failed the receive that can now never match.
        let sched = ctx.scheduler();
        c1.schedule(&sched);
        for c in c1.drain_completions() {
            comps.push((0, c));
        }
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].1.cookie, 70);
        assert!(
            matches!(comps[0].1.kind, CompletionKind::RecvFailed { tag: 3, .. }),
            "posted receive must complete with an error, got {:?}",
            comps[0].1.kind
        );
        assert_eq!(c1.stats().membership_aborted_recvs, 1);
        assert_eq!(c1.peer_entry_count(0), 0);
    });
    sim.run().unwrap();
}

/// The inbound-credited hysteresis: a peer that times out over and over
/// (unmatched rendezvous — no CTS ever comes) but keeps *sending* within
/// `min_silence` must stay alive, and the flow must finish once the
/// receiver gets around to posting.
#[test]
fn slow_peer_is_never_declared_dead() {
    let (mut sim, c0, c1) = pair(fast_cfg());
    sim.spawn_rank("driver", move |ctx| {
        let sched = ctx.scheduler();
        let mut comps = Vec::new();
        let payload = vec![0x5Au8; 64 * 1024]; // rendezvous
        c0.isend(&sched, 1, 5, Bytes::from(payload.clone()), 500);
        // c1 never posts the matching receive for a long time, so c0
        // accumulates RTS retransmission timeouts against it — but c1
        // keeps chattering on another tag, crediting c0's inbound.
        for i in 0..40u64 {
            c1.isend(&ctx.scheduler(), 0, 9, Bytes::from_static(b"hb"), 900 + i);
            run_for(&ctx, &[&c0, &c1], &mut comps, SimDuration::micros(25));
            assert!(
                !c0.is_peer_dead(1),
                "slow-but-alive peer declared dead after {i} heartbeats"
            );
        }
        // 1ms of timeouts later: suspect at most, never dead.
        assert_ne!(c0.peer_state(1), PeerLiveness::Dead);
        // The receiver finally posts; the rendezvous completes byte-exact.
        c1.irecv(&ctx.scheduler(), 0, 5, 501);
        let mut spins = 0u32;
        while !comps
            .iter()
            .any(|(_, c)| matches!(&c.kind, CompletionKind::Recv { .. } if c.cookie == 501))
        {
            run_for(&ctx, &[&c0, &c1], &mut comps, SimDuration::micros(10));
            spins += 1;
            assert!(spins < 1_000, "late-posted rendezvous never completed");
        }
        let (_, recv) = comps
            .iter()
            .find(|(_, c)| c.cookie == 501)
            .expect("recv completion");
        let CompletionKind::Recv { data, .. } = &recv.kind else {
            panic!("expected successful receive");
        };
        assert_eq!(&data[..], &payload[..], "payload must survive the suspicion");
        assert_eq!(c0.stats().membership_dead_peers, 0);
        assert_eq!(c0.stats().membership_aborted_sends, 0);
    });
    sim.run().unwrap();
}

/// Drain with the sender parked in `SWaitCts` (RTS sent, CTS never
/// came): the `dead/swaitcts` row aborts the send.
#[test]
fn drain_at_rts_sent_aborts_send() {
    let (mut sim, c0, c1) = pair(fast_cfg());
    sim.spawn_rank("driver", move |ctx| {
        let sched = ctx.scheduler();
        let mut comps = Vec::new();
        c1.halt();
        c0.isend(&sched, 1, 2, Bytes::from(vec![1u8; 256 * 1024]), 11);
        // Let the RTS (and a retransmission or two) hit the void.
        run_for(&ctx, &[&c0], &mut comps, SimDuration::micros(60));
        assert!(comps.is_empty(), "nothing may complete before the verdict");
        assert!(c0.declare_peer_dead(&ctx.scheduler(), 1), "fresh verdict");
        assert!(
            !c0.declare_peer_dead(&ctx.scheduler(), 1),
            "Dead is sticky — second declaration is a no-op"
        );
        for c in c0.drain_completions() {
            comps.push((0, c));
        }
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].1.cookie, 11);
        assert!(matches!(
            comps[0].1.kind,
            CompletionKind::SendFailed { peer: 1 }
        ));
        let st = c0.stats();
        assert_eq!(st.membership_aborted_sends, 1);
        assert_eq!(st.membership_dead_peers, 1);
        assert!(st.membership_drained_entries >= 2, "rdv_out + rdv_dst at least");
        assert_eq!(c0.peer_entry_count(1), 0);
        // Post-mortem traffic fails fast, one error completion each.
        c0.isend(&ctx.scheduler(), 1, 2, Bytes::from_static(b"late"), 12);
        c0.irecv(&ctx.scheduler(), 1, 4, 13);
        let post: Vec<NmCompletion> = c0.drain_completions();
        assert_eq!(post.len(), 2);
        assert!(matches!(post[0].kind, CompletionKind::SendFailed { peer: 1 }));
        assert!(matches!(post[1].kind, CompletionKind::RecvFailed { .. }));
        assert_eq!(c0.peer_entry_count(1), 0, "fail-fast leaves no state behind");
    });
    sim.run().unwrap();
}

/// Drain with the receiver parked in `RWaitData` (CTS sent, sender died
/// before streaming): the `dead/rwaitdata` row aborts the receive.
#[test]
fn drain_at_cts_sent_aborts_recv() {
    let (mut sim, c0, c1) = pair(fast_cfg());
    sim.spawn_rank("driver", move |ctx| {
        let sched = ctx.scheduler();
        let mut comps = Vec::new();
        c1.irecv(&sched, 0, 2, 21);
        c0.isend(&sched, 1, 2, Bytes::from(vec![2u8; 256 * 1024]), 20);
        // Stop c0 the instant its RTS is on the wire: the frame is
        // already in flight (fabric delivery is scheduled), but the CTS
        // answer will land on a halted core, freezing c1 in RWaitData.
        run_until(
            &ctx,
            &[&c0],
            &mut comps,
            SimDuration::millis(1),
            "RTS on the wire",
            || c0.stats().packets_sent >= 1,
        );
        c0.halt();
        // c1 receives the RTS, matches, answers CTS into the void.
        run_for(&ctx, &[&c1], &mut comps, SimDuration::micros(30));
        assert!(comps.is_empty());
        assert!(c1.declare_peer_dead(&ctx.scheduler(), 0));
        for c in c1.drain_completions() {
            comps.push((1, c));
        }
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].1.cookie, 21);
        assert!(matches!(
            comps[0].1.kind,
            CompletionKind::RecvFailed { tag: 2, .. }
        ));
        assert_eq!(c1.stats().membership_aborted_recvs, 1);
        assert_eq!(c1.peer_entry_count(0), 0);
        assert_eq!(c1.take_dead_peers(), vec![0]);
    });
    sim.run().unwrap();
}

/// Cut a live 512KB rendezvous at many different instants — parked
/// before RTS, mid-DATA, FIN pending, already finished — by having both
/// sides declare each other dead. At every cut point: no panic, both
/// requests complete exactly once (success or counted abort), both
/// peers' entry counts drain to 0, and late in-flight frames from the
/// "dead" peer are counted stray.
#[test]
fn drain_mid_stream_at_any_cut_point() {
    for cut_us in [2u64, 10, 25, 60, 150, 400] {
        let (mut sim, c0, c1) = pair(fast_cfg());
        sim.spawn_rank("driver", move |ctx| {
            let sched = ctx.scheduler();
            let mut comps = Vec::new();
            c1.irecv(&sched, 0, 6, 31);
            c0.isend(&sched, 1, 6, Bytes::from(vec![3u8; 512 * 1024]), 30);
            run_for(&ctx, &[&c0, &c1], &mut comps, SimDuration::micros(cut_us));
            c0.declare_peer_dead(&ctx.scheduler(), 1);
            c1.declare_peer_dead(&ctx.scheduler(), 0);
            // Let in-flight frames land on the post-verdict cores.
            run_for(&ctx, &[&c0, &c1], &mut comps, SimDuration::micros(100));
            let sends: Vec<_> = comps
                .iter()
                .filter(|(i, c)| *i == 0 && c.cookie == 30)
                .collect();
            let recvs: Vec<_> = comps
                .iter()
                .filter(|(i, c)| *i == 1 && c.cookie == 31)
                .collect();
            assert_eq!(
                sends.len(),
                1,
                "cut@{cut_us}µs: send must complete exactly once, got {sends:?}"
            );
            assert_eq!(
                recvs.len(),
                1,
                "cut@{cut_us}µs: recv must complete exactly once, got {recvs:?}"
            );
            if let CompletionKind::Recv { data, .. } = &recvs[0].1.kind {
                assert_eq!(data.len(), 512 * 1024, "cut@{cut_us}µs: short delivery");
            }
            assert_eq!(c0.peer_entry_count(1), 0, "cut@{cut_us}µs: sender leaked");
            assert_eq!(c1.peer_entry_count(0), 0, "cut@{cut_us}µs: receiver leaked");
            // Counters conserved: every abort surfaced exactly one
            // failed completion on the side that owns the request.
            let st0 = c0.stats();
            let st1 = c1.stats();
            let failed_sends = sends
                .iter()
                .filter(|(_, c)| matches!(c.kind, CompletionKind::SendFailed { .. }))
                .count() as u64;
            let failed_recvs = recvs
                .iter()
                .filter(|(_, c)| matches!(c.kind, CompletionKind::RecvFailed { .. }))
                .count() as u64;
            assert_eq!(st0.membership_aborted_sends, failed_sends, "cut@{cut_us}µs");
            assert_eq!(st1.membership_aborted_recvs, failed_recvs, "cut@{cut_us}µs");
        });
        sim.run().unwrap();
    }
}

/// Satellite: frames from a dead, drained peer are counted
/// (`membership_stray_frames`) and must not revive any per-peer state.
#[test]
fn stray_frames_from_dead_peer_do_not_revive_state() {
    let (mut sim, c0, c1) = pair(fast_cfg());
    sim.spawn_rank("driver", move |ctx| {
        let sched = ctx.scheduler();
        let mut comps = Vec::new();
        c1.halt();
        c0.isend(&sched, 1, 7, Bytes::from_static(b"x"), 100);
        run_until(
            &ctx,
            &[&c0],
            &mut comps,
            SimDuration::millis(10),
            "dead verdict",
            || c0.is_peer_dead(1),
        );
        assert_eq!(c0.peer_entry_count(1), 0);
        let strays_before = c0.stats().membership_stray_frames;
        // The corpse "speaks": an eager envelope, a data chunk, a credit
        // return. Each must be counted and dropped on the floor.
        let sched = ctx.scheduler();
        for payload in [
            WirePayload::Cts { rdv_id: 9 },
            WirePayload::Ack {
                tag: 7,
                next: 1,
                credits: 0,
            },
            WirePayload::Probe { rail: 0, seq: 1 },
        ] {
            c0.accept(&sched, NmWire::new(1, 0, payload));
            c0.schedule(&sched);
        }
        let st = c0.stats();
        assert_eq!(
            st.membership_stray_frames,
            strays_before + 3,
            "every post-mortem frame counted"
        );
        assert_eq!(c0.peer_entry_count(1), 0, "stray frames revived state");
        assert_eq!(c0.peer_state(1), PeerLiveness::Dead, "Dead is sticky");
        assert!(c0.drain_completions().is_empty());
    });
    sim.run().unwrap();
}

/// The whole death-and-drain sequence is part of the deterministic
/// replay surface: two identical runs produce bit-identical stats,
/// membership counters included.
#[test]
fn death_and_drain_replay_bit_identically() {
    let run = || {
        let (mut sim, c0, c1) = pair(fast_cfg());
        let stats = Arc::new(parking_lot::Mutex::new(None));
        let out = Arc::clone(&stats);
        sim.spawn_rank("driver", move |ctx| {
            let sched = ctx.scheduler();
            let mut comps = Vec::new();
            c1.irecv(&sched, 0, 6, 41);
            c0.isend(&sched, 1, 6, Bytes::from(vec![4u8; 128 * 1024]), 40);
            run_for(&ctx, &[&c0, &c1], &mut comps, SimDuration::micros(15));
            c1.halt();
            run_until(
                &ctx,
                &[&c0],
                &mut comps,
                SimDuration::millis(20),
                "dead verdict",
                || c0.is_peer_dead(1),
            );
            run_for(&ctx, &[&c0], &mut comps, SimDuration::micros(200));
            *out.lock() = Some((c0.stats(), comps.len()));
        });
        sim.run().unwrap();
        Arc::try_unwrap(stats).unwrap().into_inner().unwrap()
    };
    let (a, n_a) = run();
    let (b, n_b) = run();
    assert_eq!(a, b, "stats (membership counters included) must replay");
    assert_eq!(n_a, n_b);
    assert!(a.membership_dead_peers >= 1);
}
