//! Regression tests for the counted protocol-error paths.
//!
//! Every arm that used to be a `panic!`/`unreachable!` in the envelope and
//! rendezvous handlers is now a table miss (`Verdict::Error`) counted in
//! `NmStats::protocol_errors`. Each test here injects one crafted stray
//! frame straight into a core's `accept` path — the fabric never produces
//! these without faults, which is exactly why they must not be panics —
//! and asserts the error is counted once while the engine keeps serving
//! real traffic afterwards.
//!
//! All tests run without a retry layer: the declared ignores are all
//! guarded on `Retry` (retransmission is the only legal source of stray
//! frames), so without it every injection must land on `Verdict::Error`.

use std::sync::Arc;

use bytes::Bytes;
use simnet::{
    Fabric, NicModel, NmBuf, NodeId, RailId, RankCtx, Sim, SimBuilder, SimDuration,
};

use nmad::{NmConfig, NmCore, NmNet, NmWire, StrategyKind, WirePayload};

/// Two cores on two single-rank nodes over one rail, no retry layer.
fn pair() -> (Sim, Arc<NmCore>, Arc<NmCore>) {
    let sim = SimBuilder::new().build();
    let fabric: Arc<Fabric<NmWire>> = Fabric::new(2, vec![NicModel::connectx_ib()]);
    let rank_to_node = Arc::new((0..2).map(NodeId).collect::<Vec<_>>());
    let rail_ids: Vec<RailId> = (0..fabric.num_rails()).map(RailId).collect();
    let cores: Vec<Arc<NmCore>> = (0..2)
        .map(|r| {
            NmCore::new(
                NmConfig::with_strategy(StrategyKind::Default),
                r,
                NmNet {
                    fabric: Arc::clone(&fabric),
                    node: NodeId(r),
                    rails: rail_ids.clone(),
                    rank_to_node: Arc::clone(&rank_to_node),
                },
            )
        })
        .collect();
    for (r, c) in cores.iter().enumerate() {
        let core = Arc::clone(c);
        fabric.set_sink(NodeId(r), Box::new(move |s, d| core.accept(s, d.msg)));
    }
    let mut it = cores.into_iter();
    (sim, it.next().unwrap(), it.next().unwrap())
}

/// Poll until the completion with `cookie` shows up; returns recv payload.
fn wait_cookie(ctx: &RankCtx, core: &Arc<NmCore>, cookie: u64) -> Option<Bytes> {
    let sched = ctx.scheduler();
    let mut spins = 0u32;
    loop {
        core.schedule(&sched);
        if let Some(c) = core.drain_completions().into_iter().next() {
            assert_eq!(c.cookie, cookie, "unexpected completion cookie");
            return match c.kind {
                nmad::sr::CompletionKind::Recv { data, .. } => Some(data),
                nmad::sr::CompletionKind::Send => None,
                other => panic!("unexpected failed completion: {other:?}"),
            };
        }
        ctx.advance(SimDuration::nanos(100));
        spins += 1;
        assert!(spins < 10_000_000, "wait_cookie never completed");
    }
}

/// Inject a crafted frame from rank 0 into `core` (rank 1) and let the
/// deferred accept queue drain.
fn inject(ctx: &RankCtx, core: &Arc<NmCore>, payload: WirePayload) {
    let sched = ctx.scheduler();
    core.accept(&sched, NmWire::new(0, 1, payload));
    core.schedule(&sched);
}

/// After the stray frame, prove the engine still moves real bytes.
/// Both cores need progress calls: the sender only puts its packet on
/// the wire from its own `schedule`.
fn eager_still_works(ctx: &RankCtx, c0: &Arc<NmCore>, c1: &Arc<NmCore>) {
    let sched = ctx.scheduler();
    c1.irecv(&sched, 0, 7, 200);
    c0.isend(&sched, 1, 7, Bytes::from_static(b"still alive"), 100);
    let mut spins = 0u32;
    loop {
        c0.schedule(&sched);
        c1.schedule(&sched);
        if let Some(c) = c1.drain_completions().into_iter().next() {
            assert_eq!(c.cookie, 200);
            let nmad::sr::CompletionKind::Recv { data, .. } = c.kind else {
                panic!("expected a receive completion");
            };
            assert_eq!(&data[..], b"still alive");
            return;
        }
        ctx.advance(SimDuration::nanos(100));
        spins += 1;
        assert!(spins < 1_000_000, "eager after stray frame never completed");
    }
}

/// One stray-frame scenario: inject, count, verify liveness.
fn stray_frame_case(payload: WirePayload) {
    let (mut sim, c0, c1) = pair();
    sim.spawn_rank("driver", move |ctx| {
        assert_eq!(c1.stats().protocol_errors, 0);
        inject(&ctx, &c1, payload);
        assert_eq!(
            c1.stats().protocol_errors, 1,
            "stray frame must be counted exactly once"
        );
        eager_still_works(&ctx, &c0, &c1);
        assert_eq!(c1.stats().protocol_errors, 1, "real traffic adds no errors");
    });
    sim.run().unwrap();
}

#[test]
fn stray_cts_is_counted_not_fatal() {
    // `Gone × CtsRx` without retry: the `ignore/straggler-cts` row is
    // retry-guarded, so this must fall through to the counted error.
    stray_frame_case(WirePayload::Cts { rdv_id: 99 });
}

#[test]
fn stray_data_is_counted_not_fatal() {
    // `Gone × DataRx` without retry: `ignore/data-before-reentry` is a
    // retry-guarded defensive row; without retry the chunk is an error.
    stray_frame_case(WirePayload::Data {
        rdv_id: 99,
        offset: 0,
        data: NmBuf::from(vec![0xAAu8; 32]),
    });
}

#[test]
fn stray_fin_is_counted_not_fatal() {
    // `Gone × FinRx` without retry (FIN is a retry-mode frame; a core
    // that never armed retry should never see one).
    stray_frame_case(WirePayload::RdvFin { rdv_id: 99 });
}

#[test]
fn duplicate_eager_envelope_is_counted_not_fatal() {
    // Same (src, tag, seq) eager frame twice: the second arrives below
    // the expected sequence number. With a retry layer that is routine
    // bookkeeping; without one nothing retransmits, so it is an error.
    let (mut sim, c0, c1) = pair();
    sim.spawn_rank("driver", move |ctx| {
        let frame = || WirePayload::Eager {
            tag: 7,
            seq: 0,
            data: NmBuf::from(Bytes::from_static(b"twice")),
        };
        inject(&ctx, &c1, frame());
        assert_eq!(c1.stats().protocol_errors, 0, "first copy is legitimate");
        inject(&ctx, &c1, frame());
        assert_eq!(c1.stats().protocol_errors, 1, "wire duplicate is counted");
        // The first copy sits unexpected and still completes a late post.
        let sched = ctx.scheduler();
        c1.irecv(&sched, 0, 7, 200);
        assert_eq!(
            wait_cookie(&ctx, &c1, 200).as_deref(),
            Some(b"twice".as_slice())
        );
        assert_eq!(c1.stats().protocol_errors, 1);
        drop(c0);
    });
    sim.run().unwrap();
}

#[test]
fn duplicate_rts_without_retry_is_counted_not_fatal() {
    // A duplicate RTS is a protocol event (the table replays the CTS
    // under retry), but `replay/cts-on-rts` is retry-guarded: without a
    // retry layer the duplicate must be counted, not replayed.
    let (mut sim, c0, c1) = pair();
    sim.spawn_rank("driver", move |ctx| {
        let sched = ctx.scheduler();
        c1.irecv(&sched, 0, 7, 200);
        let rts = || WirePayload::Rts {
            tag: 7,
            seq: 0,
            rdv_id: 5,
            len: 64,
        };
        inject(&ctx, &c1, rts());
        assert_eq!(c1.stats().protocol_errors, 0, "first RTS opens the rendezvous");
        inject(&ctx, &c1, rts());
        assert_eq!(c1.stats().protocol_errors, 1, "duplicate RTS is counted");
        // The live rendezvous is untouched: the full payload completes it.
        inject(
            &ctx,
            &c1,
            WirePayload::Data {
                rdv_id: 5,
                offset: 0,
                data: NmBuf::from(vec![0x5Au8; 64]),
            },
        );
        let data = wait_cookie(&ctx, &c1, 200).expect("recv payload");
        assert_eq!(&data[..], &[0x5Au8; 64][..]);
        assert_eq!(c1.stats().protocol_errors, 1);
        drop(c0);
    });
    sim.run().unwrap();
}

#[test]
fn out_of_range_chunk_is_counted_and_flow_survives() {
    // A chunk overrunning the announced payload used to be a wild slice
    // waiting to happen; the `InRange` guard turns it into a counted
    // error on `RWaitData × DataRx` while the rendezvous stays live.
    let (mut sim, c0, c1) = pair();
    sim.spawn_rank("driver", move |ctx| {
        let sched = ctx.scheduler();
        c1.irecv(&sched, 0, 7, 200);
        inject(
            &ctx,
            &c1,
            WirePayload::Rts {
                tag: 7,
                seq: 0,
                rdv_id: 5,
                len: 64,
            },
        );
        // offset 60 + 16 bytes = 76 > the announced 64: out of range.
        inject(
            &ctx,
            &c1,
            WirePayload::Data {
                rdv_id: 5,
                offset: 60,
                data: NmBuf::from(vec![0xEEu8; 16]),
            },
        );
        assert_eq!(c1.stats().protocol_errors, 1, "overrun chunk is counted");
        // An offset that wraps `usize` must not panic on overflow either.
        inject(
            &ctx,
            &c1,
            WirePayload::Data {
                rdv_id: 5,
                offset: usize::MAX - 4,
                data: NmBuf::from(vec![0xEEu8; 16]),
            },
        );
        assert_eq!(c1.stats().protocol_errors, 2, "wrapping chunk is counted");
        // The rendezvous still completes once the real payload lands.
        inject(
            &ctx,
            &c1,
            WirePayload::Data {
                rdv_id: 5,
                offset: 0,
                data: NmBuf::from(vec![0x5Au8; 64]),
            },
        );
        let data = wait_cookie(&ctx, &c1, 200).expect("recv payload");
        assert_eq!(&data[..], &[0x5Au8; 64][..]);
        assert_eq!(c1.stats().protocol_errors, 2);
        // The injected RTS made rank 1 send a CTS for a rendezvous rank 0
        // never opened — rank 0 counts it as its own stray-CTS error.
        let mut spins = 0;
        while c0.stats().protocol_errors == 0 && spins < 10_000 {
            c0.schedule(&sched);
            ctx.advance(SimDuration::nanos(100));
            spins += 1;
        }
        assert_eq!(c0.stats().protocol_errors, 1, "peer counts the stray CTS");
    });
    sim.run().unwrap();
}
