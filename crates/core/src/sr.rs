//! The send/receive interface types.
//!
//! NewMadeleine's public interface is "generic and message-passing
//! oriented" (§2.2.1) — `nm_sr_isend` / `nm_sr_irecv` return opaque request
//! objects the user polls for completion. The integration work of §3.1.1
//! attaches each NewMadeleine request to its MPICH2 (ADI3) counterpart; the
//! `cookie` on every request models that back-pointer: the MPI layer stores
//! its own request identifier there and learns about completions by
//! draining [`NmCompletion`]s.
//!
//! There is deliberately **no cancel operation** (§2.2.1: "NewMadeleine,
//! however, does not yet support the cancellation of a posted request") —
//! the design constraint that drives the entire MPI_ANY_SOURCE machinery
//! (§3.2).

use bytes::Bytes;

use crate::matching::GateId;

/// Handle of a send request (index into the core's send table).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SendReqId(pub u32);

/// Handle of a receive request (index into the core's receive table).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RecvReqId(pub u32);

/// What completed.
#[derive(Debug)]
pub enum CompletionKind {
    /// The send's payload has fully left this host (buffer reusable).
    Send,
    /// A receive matched and its payload is fully assembled.
    Recv {
        data: Bytes,
        gate: GateId,
        tag: u64,
    },
    /// The send completed *with an error*: `peer` was declared dead
    /// before delivery could be confirmed. Cancellation stays unsupported
    /// (§2.2.1) — the request still completes, the error is the result.
    SendFailed { peer: usize },
    /// The receive completed *with an error*: the gate it was posted
    /// against was declared dead, so nothing can ever match it.
    RecvFailed { gate: GateId, tag: u64 },
    /// The send completed *with an error*: its communicator epoch was
    /// revoked while it was in flight. The peer may be perfectly alive —
    /// the epoch, not the link, is dead.
    SendRevoked { peer: usize, epoch: u8 },
    /// The receive completed *with an error*: its communicator epoch was
    /// revoked, so no frame of that epoch will ever be matched to it.
    RecvRevoked { gate: GateId, tag: u64, epoch: u8 },
}

/// A completion event surfaced to the upper layer.
///
/// "The NewMadeleine network module periodically polls a new NewMadeleine
/// function which returns a pointer to the CH3 request of any received
/// message" (§3.1.3) — `cookie` is that pointer.
#[derive(Debug)]
pub struct NmCompletion {
    pub cookie: u64,
    pub kind: CompletionKind,
}

impl NmCompletion {
    /// True for send completions (successful or failed).
    pub fn is_send(&self) -> bool {
        matches!(
            self.kind,
            CompletionKind::Send
                | CompletionKind::SendFailed { .. }
                | CompletionKind::SendRevoked { .. }
        )
    }

    /// True for completions that report a dead-peer or revoked-epoch error.
    pub fn is_failed(&self) -> bool {
        matches!(
            self.kind,
            CompletionKind::SendFailed { .. }
                | CompletionKind::RecvFailed { .. }
                | CompletionKind::SendRevoked { .. }
                | CompletionKind::RecvRevoked { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_kind_predicates() {
        let s = NmCompletion {
            cookie: 1,
            kind: CompletionKind::Send,
        };
        assert!(s.is_send());
        let r = NmCompletion {
            cookie: 2,
            kind: CompletionKind::Recv {
                data: Bytes::new(),
                gate: GateId(0),
                tag: 0,
            },
        };
        assert!(!r.is_send());
    }
}
