//! The NewMadeleine core: gates, submission windows, protocol state
//! machines, and progress.
//!
//! One [`NmCore`] exists per process. Sends enter per-gate submission
//! windows ([`crate::pack`]); the configured [`crate::strategy`] moves them
//! onto rails whenever [`NmCore::schedule`] runs or a NIC completes a
//! transfer. Inbound packets are accepted by the node's fabric sink via
//! [`NmCore::accept`] and processed — matching, rendezvous transitions,
//! completions — on the next `schedule`.
//!
//! ## Protocols
//!
//! * **Eager** (≤ `eager_threshold`): the payload rides in the packet.
//! * **Rendezvous**: `RTS` announces the message; the receiver matches it
//!   and answers `CTS`; the sender then queues the payload as a splittable
//!   `DATA` wrapper (this is where the multirail split happens). Both
//!   handshake halves run *inside* NewMadeleine — the reason the MPICH2
//!   integration must bypass the CH3 rendezvous (§2.1.3, Fig. 2).
//!
//! ## Ordering
//!
//! Envelope packets (eager/RTS) carry per-(gate, tag) sequence numbers.
//! Because strategies may put consecutive messages on different rails,
//! arrivals can be out of order; a receiver-side reorder buffer parks early
//! arrivals and feeds the matching engine strictly in sequence — the
//! "reordering techniques" of §2.2.
//!
//! ## Progress discipline
//!
//! `isend`/`irecv` never touch the NIC; only `schedule` (called by the MPI
//! progress engine or by PIOMan) commits the window and processes inbound
//! packets. NIC send-completions continue an already-committed pipeline
//! (chaining the next window packet) but never process inbound traffic.
//! This is what makes communication/computation overlap an explicit
//! property of *who drives progress* — the subject of Fig. 7.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use simnet::{
    BufOrigin, CopyMeter, CopySnapshot, Fabric, NmBuf, NodeId, RailId, Scheduler, SimDuration,
    SimTime,
};

use crate::config::{NmConfig, RetryConfig};
use crate::credit::CreditBank;
use crate::keys;
use crate::matching::{GateId, Unexpected};
use crate::sharded::ShardedMatchEngine;
use crate::membership::{MembershipTable, PeerLiveness};
use crate::pack::{PacketWrapper, PwBody, PwId};
use crate::protocol::{self, Action, Verdict};
use crate::railhealth::{RailHealth, RailHealthTable};
use crate::sampling::LinkProfile;
use crate::sr::{CompletionKind, NmCompletion, RecvReqId, SendReqId};
use crate::stats::{stat, StatsCells};
use crate::strategy::{self, RailState, Strategy, Submission};
use crate::wire::{EagerFrag, NmWire, WirePayload};

/// Hook invoked (on the engine thread) when something happened that a
/// background progress engine would want to react to: an inbound packet was
/// accepted or a NIC completed a transfer. PIOMan installs this.
pub type EventHook = Arc<dyn Fn(&Scheduler) + Send + Sync>;

/// Binding of a core to the simulated network: which fabric, which node it
/// sits in, which rails it may use, and where every rank lives.
#[derive(Clone)]
pub struct NmNet {
    pub fabric: Arc<Fabric<NmWire>>,
    pub node: NodeId,
    pub rails: Vec<RailId>,
    pub rank_to_node: Arc<Vec<NodeId>>,
}

/// Counters exposed for tests and the benchmark harnesses.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct NmStats {
    pub eager_sends: u64,
    pub rdv_sends: u64,
    pub packets_sent: u64,
    pub aggregates_sent: u64,
    pub frags_aggregated: u64,
    pub data_chunks_sent: u64,
    pub recv_completions: u64,
    pub send_completions: u64,
    /// Retry mode: eager envelopes retransmitted after an ack timeout.
    pub eager_retries: u64,
    /// Retry mode: RTS packets retransmitted (no CTS within the timeout).
    pub rts_retries: u64,
    /// Retry mode: CTS packets retransmitted (receiver-side, no DATA
    /// progress within the timeout) or replayed for a duplicate RTS.
    pub cts_retries: u64,
    /// Retry mode: whole rendezvous payloads replayed (no FIN in time).
    pub data_retries: u64,
    /// Retry mode: cumulative envelope acks emitted.
    pub acks_sent: u64,
    /// Retry mode: rendezvous FIN packets emitted (including replays).
    pub fins_sent: u64,
    /// Retry mode: duplicate envelopes discarded by the sequence check.
    pub dup_envelopes: u64,
    /// Retry mode: duplicate DATA bytes discarded by range tracking.
    pub dup_data: u64,
    /// Malformed or stale frames the protocol table classified as errors
    /// (CTS/DATA/FIN for an unknown rendezvous without a retry layer to
    /// explain them, DATA chunks outside the announced payload range):
    /// counted and dropped — never a panic.
    pub protocol_errors: u64,
    /// Frames discarded at delivery because the end-to-end CRC failed
    /// (wire corruption); the retry layer replays them like drops.
    pub crc_drops: u64,
    /// Rail-health state machine transitions (any edge of
    /// `Up/Suspect/Down/Probing`).
    pub rail_transitions: u64,
    /// Payload bytes whose retransmission was moved off the rail that
    /// failed them onto a survivor.
    pub rerouted_bytes: u64,
    /// Cumulative rail-nanoseconds spent in a non-`Up` health state
    /// (time-in-degraded-mode, summed over rails).
    pub degraded_nanos: u64,
    /// Health probes emitted on `Probing` rails.
    pub probes_sent: u64,
    /// Probe acknowledgements accepted (stale ones are not counted).
    pub probe_acks: u64,
    /// Flow control: eager sends admitted by consuming a credit.
    pub fc_eager_admitted: u64,
    /// Flow control: sends that found the per-gate credit pool empty (each
    /// one also counts as a fallback below).
    pub fc_credit_stalls: u64,
    /// Flow control: eager-sized sends demoted to the rendezvous path
    /// because the destination gate was out of credits.
    pub fc_fallback_sends: u64,
    /// Flow control: eager credits returned to peers (receiver side,
    /// piggybacked on acks or sent as standalone `Credit` frames).
    pub fc_credits_returned: u64,
    /// Flow control: credit returns deferred by the high-water hysteresis
    /// (each credit counts once, when it is first withheld).
    pub fc_credits_withheld: u64,
    /// Peak bytes of unexpected eager payload buffered by this receiver.
    /// Tracked whether or not flow control is armed, so a flow-off run can
    /// report how far past the cap it went.
    pub fc_peak_unex_bytes: u64,
    /// Membership: liveness state-machine transitions (any edge of
    /// `Up/Suspect/Dead`, across all tracked peers).
    pub membership_transitions: u64,
    /// Membership: peers this rank has declared `Dead` (sticky).
    pub membership_dead_peers: u64,
    /// Membership: send requests completed *with an error* by the drain
    /// protocol (in-flight rendezvous aborted, queued eager sends failed,
    /// fail-fast sends toward a known-dead peer).
    pub membership_aborted_sends: u64,
    /// Membership: receive requests completed *with an error* (posted
    /// against a peer that died, or fail-fast toward a known-dead peer).
    pub membership_aborted_recvs: u64,
    /// Membership: per-peer state entries reclaimed by drains (map
    /// entries, rendezvous records, queued wrappers, parked envelopes).
    pub membership_drained_entries: u64,
    /// Membership: frames from an already-drained peer dropped at
    /// acceptance instead of reviving per-peer state.
    pub membership_stray_frames: u64,
    /// Membership: eager credits released back to full pools by drains
    /// (in-flight credits toward the dead peer plus owed/withheld returns
    /// it will never collect).
    pub membership_credits_released: u64,
    /// Epoch hygiene: collective frames from a revoked or superseded
    /// epoch — or a retired agreement instance — counted and dropped at
    /// delivery without touching matching or per-peer protocol state
    /// (their transport sequence still advances, so the sender's ack
    /// arrives and a live peer is never indicted over a dead epoch).
    pub membership_stale_epoch: u64,
    /// Communicator epochs revoked on this rank (locally initiated or
    /// learned from a peer's poison frame; sticky, so counted once each).
    pub revoked_epochs: u64,
    /// Requests completed *with a revoked-epoch error* by a quiesce
    /// (sends and receives of the poisoned epoch).
    pub revoked_ops: u64,
    /// Live per-peer state entries across every lazily-populated map in
    /// this core (gates, seq/dedup windows, credit pools, rail affinity,
    /// retry bookkeeping) at snapshot time. The O(active-flows) claim made
    /// measurable: an idle core reports 0 no matter how many ranks the job
    /// has, and a core that only ever talked to k peers reports O(k).
    pub peer_entries: u64,
    /// Copy accounting for the whole stack this core belongs to (memcpys,
    /// allocations, zero-copy shares) — the measured side of the Fig. 2
    /// bypass argument.
    pub copy: CopySnapshot,
}

impl NmStats {
    /// Total retransmissions across all packet classes.
    pub fn total_retries(&self) -> u64 {
        self.eager_retries + self.rts_retries + self.cts_retries + self.data_retries
    }
}

struct SendReq {
    cookie: u64,
    done: bool,
    /// Message identity for lifecycle spans (dst, tag, per-(dst,tag) seq).
    dst: usize,
    tag: u64,
    seq: u64,
}

struct RecvReq {
    cookie: u64,
    done: bool,
    /// Message identity for lifecycle spans. `seq` starts as the posted
    /// counter value and is pinned to the matched envelope's sequence at
    /// match time (the two agree under in-order matching).
    src: usize,
    tag: u64,
    seq: u64,
}

struct RdvOut {
    send_req: SendReqId,
    data: NmBuf,
    /// Bytes not yet handed to a rail.
    bytes_remaining: usize,
    /// Chunks handed to a rail whose send-completion hasn't fired.
    chunks_in_flight: usize,
    /// Protocol-table state of this outbound rendezvous. Every decision
    /// about an arriving frame or firing timer is a [`protocol::step`]
    /// lookup against this; the handlers only execute the emitted
    /// actions. (Inbound rendezvous state is derived: a live `rdv_in`
    /// entry is `RWaitData`, a `rdv_done` tombstone is `RDone`, anything
    /// else is `Gone`.)
    state: protocol::State,
    /// Bitmask of local rail indices the outstanding RTS/DATA packets of
    /// this rendezvous last went out on — the set of rails a timeout is
    /// attributed to, and the set a reroute moves away from.
    last_rails: u64,
    /// Matching envelope identity, kept for RTS retransmission.
    tag: u64,
    seq: u64,
    /// Retry mode: armed retransmission timer. `None` while nothing is
    /// outstanding on the wire (RTS not yet committed, or DATA chunks in
    /// flight on the local NIC).
    deadline: Option<SimTime>,
    timeout: SimDuration,
    attempts: u32,
}

struct RdvIn {
    recv_req: RecvReqId,
    gate: usize,
    tag: u64,
    /// Envelope sequence of the matched RTS (lifecycle-span identity).
    seq: u64,
    buf: Vec<u8>,
    received: usize,
    /// Retry mode: disjoint, sorted byte ranges already landed — makes
    /// replayed DATA idempotent.
    ranges: Vec<(usize, usize)>,
    /// Retry mode: CTS retransmission timer, re-armed on DATA progress.
    deadline: Option<SimTime>,
    timeout: SimDuration,
    attempts: u32,
}

/// Retry mode: one unacked eager envelope awaiting a cumulative ack.
struct EnvRetx {
    payload: WirePayload,
    deadline: SimTime,
    timeout: SimDuration,
    attempts: u32,
    /// Local rail index the envelope last went out on (health attribution
    /// and reroute target).
    rail: usize,
}

/// An envelope (matchable) message after transport reordering.
enum Envelope {
    Eager(NmBuf),
    Rts { rdv_id: u64, len: usize },
}

struct Inner {
    cfg: NmConfig,
    strategy: Box<dyn Strategy>,
    /// Submission windows, keyed by destination rank. BTreeMap for
    /// deterministic iteration.
    gates: BTreeMap<usize, VecDeque<PacketWrapper>>,
    /// Tag matching, sharded per source gate so injector threads and the
    /// progress engine match traffic from different peers concurrently
    /// (the single-queue `MatchEngine` remains as the differential
    /// oracle — see `tests/matcher_differential.rs`).
    matching: ShardedMatchEngine,
    send_reqs: Vec<SendReq>,
    recv_reqs: Vec<RecvReq>,
    rdv_out: HashMap<u64, RdvOut>,
    /// Destination rank of each outbound rendezvous (kept separate so the
    /// hot chunk-accounting path borrows `rdv_out` alone).
    rdv_dst: HashMap<u64, usize>,
    rdv_in: HashMap<(usize, u64), RdvIn>,
    /// Sender-side per-(dst, tag) sequence numbers.
    send_seq: HashMap<(usize, u64), u64>,
    /// Receiver-side next expected sequence per (src, tag).
    recv_expected: HashMap<(usize, u64), u64>,
    /// Early (out-of-order) envelope arrivals, parked until their turn.
    parked: HashMap<(usize, u64), BTreeMap<u64, Envelope>>,
    /// Packets accepted from the fabric, pending processing.
    inbound: VecDeque<NmWire>,
    completions: VecDeque<NmCompletion>,
    /// Retry mode: unacked eager envelopes per (dst, tag), keyed by seq.
    /// BTreeMap so retransmission sweeps are deterministic.
    env_unacked: BTreeMap<(usize, u64), BTreeMap<u64, EnvRetx>>,
    /// Retry mode: receiver-side tombstones of finished rendezvous — a
    /// replayed RTS/DATA for one of these gets a FIN, not a new transfer.
    rdv_done: HashSet<(usize, u64)>,
    /// Retry mode: acks/FINs/probe replies to put on the wire after the
    /// current inbound batch (sent outside the inner lock). The third
    /// element pins the packet to a specific local rail; `None` lets
    /// [`NmCore::send_direct`] pick the healthiest one.
    ctrl_out: VecDeque<(usize, WirePayload, Option<usize>)>,
    /// Retry mode: per-rail health state machine (`None` without retry —
    /// the happy path has no failure signals to drive it).
    health: Option<RailHealthTable>,
    /// Rail each peer's most recent inbound packet arrived on — control
    /// replies are routed back the same way, so an ack never chases a
    /// peer into a rail that just died.
    last_in_rail: HashMap<usize, usize>,
    /// Flow control, sender side: remaining eager credits per destination
    /// gate (lazily seeded from `FlowConfig::eager_credits`). Lock-free
    /// pools shared by `Arc` so real-thread injectors can admit eager
    /// sends without taking the core mutex (see [`crate::credit`]).
    send_credits: Arc<CreditBank>,
    /// Bytes of unexpected eager payload currently buffered (receiver
    /// side; always tracked — it feeds `fc_peak_unex_bytes`).
    unex_eager_bytes: usize,
    /// Flow control, receiver side: credits earned per gate (an eager
    /// message was consumed) awaiting return on the next ctrl flush.
    credit_owed: BTreeMap<usize, u32>,
    /// Flow control, receiver side: credits whose return the high-water
    /// hysteresis is withholding until the unexpected queue drains.
    credit_withheld: BTreeMap<usize, u32>,
    /// Hysteresis latch: set when `unex_eager_bytes` climbs past
    /// `high_water`, cleared when it falls back to `low_water`.
    fc_throttled: bool,
    next_pw: u64,
    next_rdv: u64,
    stats: StatsCells,
    /// The stack-wide copy meter; attached to every payload entering this
    /// core so downstream shares/copies keep charging the same counters.
    meter: Arc<CopyMeter>,
    /// Lifecycle-span recording handle, stamped with this core's rank.
    /// Lives inside `Inner` so the lock-free static helpers
    /// (`complete_send`, `handle_data`, …) can record through it.
    rec: obs::RankRec,
    /// Receiver-side posted-receive counter per (src, tag): the sequence a
    /// newly posted receive will match under in-order delivery, used to
    /// key its `recv_posted` span event.
    recv_posted: HashMap<(usize, u64), u64>,
    /// Per-peer liveness supervisor (`None` without
    /// [`crate::config::MembershipConfig`] — node death then keeps the
    /// PR-3 link-presumed-dead panic).
    membership: Option<MembershipTable>,
    /// Fresh `Dead` verdicts not yet consumed by the upper layer (the MPI
    /// progress engine retargets ANY_SOURCE and retires the VC on these).
    dead_events: VecDeque<usize>,
    /// Monotonic sequence for membership silence probes (kept disjoint
    /// from rail-health probe sequences via [`MEMBER_PROBE_BIT`]).
    member_probe_seq: u64,
    /// This rank crashed (or finalized under churn): drop all traffic,
    /// report quiescent, never panic on behalf of a dead process.
    halted: bool,
    /// Highest committed communicator epoch. Collective frames whose
    /// epoch field is below this (agreement/join excepted) are stale.
    committed_epoch: u8,
    /// Sticky set of revoked epochs: a replayed poison frame is a counted
    /// no-op, exactly like a replayed death verdict.
    revoked_epochs: BTreeSet<u32>,
    /// Fresh revoke verdicts not yet consumed by the upper layer (the MPI
    /// progress engine re-broadcasts the poison peer-to-peer and fails
    /// its collective state on these).
    revoked_events: VecDeque<u32>,
    /// Retired agreement instances (collective keys with the round bits
    /// masked): frames for these are counted stale and dropped. Never
    /// GC'd — agreement keys are epoch-exempt so the epoch filter can't
    /// cover them, and the set grows by one tiny entry per agreement.
    retired: BTreeSet<u64>,
}

/// Membership silence probes share [`WirePayload::Probe`] with the
/// rail-health prober; this bit keeps their sequence spaces disjoint so a
/// membership probe's ack can never be mistaken for a rail-recovery ack.
const MEMBER_PROBE_BIT: u64 = 1 << 63;

/// Span-key sequence space for fail-fast requests toward a dead peer:
/// they never claim a wire sequence number (nothing will carry them) and
/// must not create per-peer map entries, so their lifecycle spans draw a
/// unique key from the request id in this disjoint high-bit space.
const DEAD_LETTER_SEQ: u64 = 1 << 62;

/// Span key for a message `src → dst` under `tag` with envelope `seq`.
fn mkey(src: usize, dst: usize, tag: u64, seq: u64) -> obs::MsgKey {
    obs::MsgKey {
        src: src as u32,
        dst: dst as u32,
        tag,
        seq,
    }
}

/// Guard context for a [`protocol::step`] lookup in this adapter. The
/// core always speaks the pipelined dialect (CH3's buffered/ack modes
/// answer those guards in `mpi-ch3`).
fn pctx(retry: bool, in_range: bool, last: bool, credit_fallback: bool) -> protocol::Ctx {
    protocol::Ctx {
        retry,
        ack_mode: false,
        buffered: false,
        in_range,
        last,
        credit_fallback,
    }
}

/// How many bytes of `[start, end)` are *not* already covered by the
/// sorted, disjoint range set — computed without mutating, so the
/// protocol table's `Last` guard can be answered before the copy runs.
fn fresh_len(ranges: &[(usize, usize)], start: usize, end: usize) -> usize {
    let mut fresh = end - start;
    for &(rs, re) in ranges {
        let os = start.max(rs);
        let oe = end.min(re);
        if os < oe {
            fresh -= oe - os;
        }
    }
    fresh
}

/// Merge `[start, end)` into a sorted, disjoint range set; returns how many
/// bytes of the new range were not already covered.
fn insert_range(ranges: &mut Vec<(usize, usize)>, start: usize, end: usize) -> usize {
    let mut fresh = end - start;
    for &(rs, re) in ranges.iter() {
        let os = start.max(rs);
        let oe = end.min(re);
        if os < oe {
            fresh -= oe - os;
        }
    }
    ranges.push((start, end));
    ranges.sort_unstable();
    let mut merged: Vec<(usize, usize)> = Vec::with_capacity(ranges.len());
    for &(rs, re) in ranges.iter() {
        if let Some(last) = merged.last_mut() {
            if rs <= last.1 {
                last.1 = last.1.max(re);
                continue;
            }
        }
        merged.push((rs, re));
    }
    *ranges = merged;
    fresh
}

/// Payload bytes (not wire framing) carried by one retransmittable packet —
/// what `rerouted_bytes` counts when a replay moves rails.
fn payload_data_len(p: &WirePayload) -> usize {
    match p {
        WirePayload::Eager { data, .. } | WirePayload::Data { data, .. } => data.len(),
        WirePayload::Aggregate(frags) => frags.iter().map(|f| f.data.len()).sum(),
        _ => 0,
    }
}

/// One NewMadeleine instance (per process).
pub struct NmCore {
    rank: usize,
    net: NmNet,
    profiles: Vec<LinkProfile>,
    /// Lowest rank on a different node — the peer health probes are
    /// aimed at (`None` in single-peer-less topologies).
    probe_peer: Option<usize>,
    inner: Mutex<Inner>,
    hook: Mutex<Option<EventHook>>,
}

/// Everything needed to put one packet on the wire, extracted under the
/// inner lock and executed outside it.
struct Outgoing {
    rail: RailId,
    dst_node: NodeId,
    wire: NmWire,
    bytes: usize,
    eager_reqs: Vec<SendReqId>,
    data_chunk_rdv: Option<u64>,
}

impl NmCore {
    pub fn new(cfg: NmConfig, rank: usize, net: NmNet) -> Arc<NmCore> {
        Self::with_meter(cfg, rank, net, CopyMeter::new())
    }

    /// Like [`NmCore::new`] but sharing a caller-provided [`CopyMeter`] —
    /// the MPI stack builder passes one job-wide meter so MPI-ingress,
    /// Nemesis and nmad copies all land in the same tally.
    pub fn with_meter(
        cfg: NmConfig,
        rank: usize,
        net: NmNet,
        meter: Arc<CopyMeter>,
    ) -> Arc<NmCore> {
        Self::with_instruments(cfg, rank, net, meter, None)
    }

    /// Like [`NmCore::with_meter`], additionally recording typed lifecycle
    /// span events (message phases, retries, credit movements) through
    /// `recorder`.
    pub fn with_instruments(
        cfg: NmConfig,
        rank: usize,
        net: NmNet,
        meter: Arc<CopyMeter>,
        recorder: Option<&Arc<obs::Recorder>>,
    ) -> Arc<NmCore> {
        assert!(!net.rails.is_empty(), "a core needs at least one rail");
        // Startup sampling: fit each rail's latency/bandwidth profile
        // (§2.2, the adaptive split ratio input).
        let profiles: Vec<LinkProfile> = net
            .rails
            .iter()
            .map(|&rid| LinkProfile::sample(net.fabric.model(rid)))
            .collect();
        let health = cfg
            .retry
            .map(|rc| RailHealthTable::new(rc, net.rails.len()));
        assert!(
            cfg.membership.is_none() || cfg.retry.is_some(),
            "membership verdicts are fed by retransmission timeouts; arm `retry` first"
        );
        let membership = cfg.membership.map(MembershipTable::new);
        let probe_peer = net
            .rank_to_node
            .iter()
            .enumerate()
            .find(|&(r, &n)| r != rank && n != net.node)
            .map(|(r, _)| r);
        // Pools are only consulted when flow control is armed; a 0-capacity
        // bank is inert (and never reached) otherwise.
        let send_credits = Arc::new(CreditBank::new(
            cfg.flow.map(|fc| fc.eager_credits).unwrap_or(0),
        ));
        Arc::new(NmCore {
            rank,
            net,
            profiles,
            probe_peer,
            inner: Mutex::new(Inner {
                strategy: strategy::make(cfg.strategy),
                cfg,
                gates: BTreeMap::new(),
                matching: ShardedMatchEngine::new(),
                send_reqs: Vec::new(),
                recv_reqs: Vec::new(),
                rdv_out: HashMap::new(),
                rdv_dst: HashMap::new(),
                rdv_in: HashMap::new(),
                send_seq: HashMap::new(),
                recv_expected: HashMap::new(),
                parked: HashMap::new(),
                inbound: VecDeque::new(),
                completions: VecDeque::new(),
                env_unacked: BTreeMap::new(),
                rdv_done: HashSet::new(),
                ctrl_out: VecDeque::new(),
                health,
                last_in_rail: HashMap::new(),
                send_credits,
                unex_eager_bytes: 0,
                credit_owed: BTreeMap::new(),
                credit_withheld: BTreeMap::new(),
                fc_throttled: false,
                next_pw: 0,
                next_rdv: 0,
                stats: StatsCells::new(),
                meter,
                rec: obs::RankRec::new(recorder, rank as u32),
                recv_posted: HashMap::new(),
                membership,
                dead_events: VecDeque::new(),
                member_probe_seq: 0,
                halted: false,
                committed_epoch: 0,
                revoked_epochs: BTreeSet::new(),
                revoked_events: VecDeque::new(),
                retired: BTreeSet::new(),
            }),
            hook: Mutex::new(None),
        })
    }

    /// This core's global rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The lock-free eager credit bank, shared with real-thread injectors
    /// so admission control never takes the core mutex.
    pub fn credit_bank(&self) -> Arc<CreditBank> {
        Arc::clone(&self.inner.lock().send_credits)
    }

    /// Sampled rail profiles (for diagnostics and the harnesses).
    pub fn profiles(&self) -> &[LinkProfile] {
        &self.profiles
    }

    /// Install the background-progress hook (PIOMan).
    pub fn set_event_hook(&self, hook: EventHook) {
        *self.hook.lock() = Some(hook);
    }

    /// Remove the hook.
    pub fn clear_event_hook(&self) {
        *self.hook.lock() = None;
    }

    /// The stack-wide copy meter this core charges.
    pub fn meter(&self) -> Arc<CopyMeter> {
        Arc::clone(&self.inner.lock().meter)
    }

    fn fire_hook(&self, sched: &Scheduler) {
        let hook = self.hook.lock().as_ref().map(Arc::clone);
        if let Some(h) = hook {
            h(sched);
        }
    }

    /// `nm_sr_isend`: queue `data` for `dst` under `tag`. Returns the
    /// request handle; the upper layer's `cookie` comes back in the
    /// completion. **Does not touch the NIC** — submission happens on the
    /// next [`NmCore::schedule`].
    pub fn isend(
        self: &Arc<Self>,
        sched: &Scheduler,
        dst: usize,
        tag: u64,
        data: impl Into<NmBuf>,
        cookie: u64,
    ) -> SendReqId {
        assert_ne!(dst, self.rank, "nmad is inter-node only; intra-node goes via Nemesis");
        let mut inner = self.inner.lock();
        // Attach the stack meter unless the buffer already carries one
        // (i.e. it was metered at a higher layer, MPI ingress or CH3).
        let mut data = data.into();
        if data.meter().is_none() {
            data = data.with_meter(&inner.meter);
        }
        let req = SendReqId(inner.send_reqs.len() as u32);
        let now = sched.now();
        // Fail fast toward a known-dead peer: the request still completes
        // (no-cancel rule) — with an error, immediately, instead of
        // burning a full retransmission ladder against a corpse. It
        // claims no wire sequence number and no per-peer map entry (a
        // drained peer keeps exactly zero).
        if inner.membership.as_ref().is_some_and(|m| m.is_dead(dst)) {
            let seq = DEAD_LETTER_SEQ | req.0 as u64;
            inner.send_reqs.push(SendReq {
                cookie,
                done: false,
                dst,
                tag,
                seq,
            });
            inner.rec.phase(
                now.0,
                mkey(self.rank, dst, tag, seq),
                obs::Phase::SendPosted {
                    len: data.len() as u64,
                },
            );
            inner.rec.inc("nmad.isend", 1);
            inner.rec.observe("nmad.send.bytes", data.len() as u64);
            Self::complete_send_failed(&mut inner, now.0, req, dst);
            drop(inner);
            self.fire_hook(sched);
            return req;
        }
        // Fail fast on a revoked/superseded epoch: the receiver would
        // ack-and-drop every frame of this key, so a rendezvous here
        // would retransmit its RTS forever against a receiver that will
        // never answer — and eventually indict a perfectly live peer.
        if Self::tag_is_stale(&inner, tag) {
            let seq = DEAD_LETTER_SEQ | req.0 as u64;
            inner.send_reqs.push(SendReq {
                cookie,
                done: false,
                dst,
                tag,
                seq,
            });
            inner.rec.phase(
                now.0,
                mkey(self.rank, dst, tag, seq),
                obs::Phase::SendPosted {
                    len: data.len() as u64,
                },
            );
            inner.rec.inc("nmad.isend", 1);
            Self::complete_send_revoked(&mut inner, now.0, req, dst, keys::epoch_of(tag));
            drop(inner);
            self.fire_hook(sched);
            return req;
        }
        let seq = {
            let c = inner.send_seq.entry((dst, tag)).or_insert(0);
            let v = *c;
            *c += 1;
            v
        };
        inner.send_reqs.push(SendReq {
            cookie,
            done: false,
            dst,
            tag,
            seq,
        });
        let pw_id = PwId(inner.next_pw);
        inner.next_pw += 1;
        inner.rec.phase(
            now.0,
            mkey(self.rank, dst, tag, seq),
            obs::Phase::SendPosted {
                len: data.len() as u64,
            },
        );
        inner.rec.inc("nmad.isend", 1);
        inner.rec.observe("nmad.send.bytes", data.len() as u64);
        // Flow-control admission: an eager-sized message needs a credit
        // from the destination gate's pool; with the pool empty it degrades
        // to the rendezvous path (RTS/CTS is natural backpressure — the
        // payload only moves once the receiver posted) instead of blocking
        // or dropping. Zero-length messages bypass the pool on both sides:
        // credits protect receiver payload memory, which they cannot use.
        let eager = data.len() <= inner.cfg.eager_threshold
            && match inner.cfg.flow {
                Some(_fc) if !data.as_slice().is_empty() => {
                    if inner.send_credits.try_acquire(dst) {
                        inner.stats.add(stat::fc_eager_admitted, 1);
                        inner
                            .rec
                            .engine(now.0, obs::EngineEvent::CreditDebit { peer: dst as u32 });
                        true
                    } else {
                        inner.stats.add(stat::fc_credit_stalls, 1);
                        inner.stats.add(stat::fc_fallback_sends, 1);
                        inner
                            .rec
                            .phase(now.0, mkey(self.rank, dst, tag, seq), obs::Phase::CreditStall);
                        false
                    }
                }
                _ => true,
            };
        if eager {
            inner.stats.add(stat::eager_sends, 1);
            let pw = PacketWrapper {
                id: pw_id,
                dst,
                body: PwBody::Eager {
                    tag,
                    seq,
                    send_req: req,
                },
                data,
                enqueued_at: now,
            };
            inner.gates.entry(dst).or_default().push_back(pw);
        } else {
            // Rendezvous entry: `entry/size` (payload above the eager
            // threshold) or `entry/credit-fallback` (eager-sized send
            // demoted because the credit pool ran dry). Same actions,
            // distinct table rows so the explorer proves both entries
            // live.
            let retry = inner.cfg.retry.is_some();
            let credit_fallback = data.len() <= inner.cfg.eager_threshold;
            let verdict = protocol::step(
                protocol::State::Gone,
                protocol::Event::SendRdv,
                pctx(retry, false, false, credit_fallback),
            );
            let Verdict::Step { actions, next, .. } = verdict else {
                unreachable!("rendezvous entry must be a table row");
            };
            debug_assert!(actions.contains(&Action::SendRts));
            inner.stats.add(stat::rdv_sends, 1);
            let rdv_id = inner.next_rdv;
            inner.next_rdv += 1;
            let len = data.len();
            let timeout = inner
                .cfg
                .retry
                .map(|rc| rc.timeout)
                .unwrap_or(SimDuration::ZERO);
            inner.rdv_dst.insert(rdv_id, dst);
            // `ArmRtsTimer` is realized lazily: the deadline is armed in
            // `build_outgoing` when the RTS actually leaves the node (a
            // queued-but-uncommitted RTS cannot time out).
            inner.rdv_out.insert(
                rdv_id,
                RdvOut {
                    send_req: req,
                    data,
                    bytes_remaining: len,
                    chunks_in_flight: 0,
                    state: next,
                    last_rails: 0,
                    tag,
                    seq,
                    deadline: None,
                    timeout,
                    attempts: 0,
                },
            );
            let pw = PacketWrapper {
                id: pw_id,
                dst,
                body: PwBody::Rts {
                    tag,
                    seq,
                    rdv_id,
                    len,
                },
                data: NmBuf::default(),
                enqueued_at: now,
            };
            inner.gates.entry(dst).or_default().push_back(pw);
        }
        req
    }

    /// `nm_sr_irecv`: post a receive for `(src, tag)`. If a matching
    /// unexpected message is queued it completes immediately (eager) or
    /// starts the rendezvous (RTS → a CTS is queued for the next
    /// `schedule`).
    pub fn irecv(
        self: &Arc<Self>,
        sched: &Scheduler,
        src: usize,
        tag: u64,
        cookie: u64,
    ) -> RecvReqId {
        assert_ne!(src, self.rank, "nmad is inter-node only");
        let mut inner = self.inner.lock();
        let now = sched.now();
        let req = RecvReqId(inner.recv_reqs.len() as u32);
        let my_rank = self.rank;
        // Fail fast: a receive posted against a drained peer can never
        // match (its unexpected queue was purged, its frames are strays).
        // Like the send side, it claims no per-peer map entry.
        if inner.membership.as_ref().is_some_and(|m| m.is_dead(src)) {
            let seq = DEAD_LETTER_SEQ | req.0 as u64;
            inner.recv_reqs.push(RecvReq {
                cookie,
                done: false,
                src,
                tag,
                seq,
            });
            inner
                .rec
                .phase(now.0, mkey(src, my_rank, tag, seq), obs::Phase::RecvPosted);
            inner.rec.inc("nmad.irecv", 1);
            Self::complete_recv_failed(&mut inner, now.0, req, src);
            drop(inner);
            self.fire_hook(sched);
            return req;
        }
        // Fail fast on a revoked/superseded epoch: every frame of this
        // key is dropped at delivery, so the receive could never match.
        if Self::tag_is_stale(&inner, tag) {
            let seq = DEAD_LETTER_SEQ | req.0 as u64;
            inner.recv_reqs.push(RecvReq {
                cookie,
                done: false,
                src,
                tag,
                seq,
            });
            inner
                .rec
                .phase(now.0, mkey(src, my_rank, tag, seq), obs::Phase::RecvPosted);
            inner.rec.inc("nmad.irecv", 1);
            Self::complete_recv_revoked(&mut inner, now.0, req, src, keys::epoch_of(tag));
            drop(inner);
            self.fire_hook(sched);
            return req;
        }
        let posted_seq = {
            let c = inner.recv_posted.entry((src, tag)).or_insert(0);
            let v = *c;
            *c += 1;
            v
        };
        inner.recv_reqs.push(RecvReq {
            cookie,
            done: false,
            src,
            tag,
            seq: posted_seq,
        });
        inner.rec.phase(
            now.0,
            mkey(src, my_rank, tag, posted_seq),
            obs::Phase::RecvPosted,
        );
        inner.rec.inc("nmad.irecv", 1);
        let gate = GateId(src);
        match inner.matching.post_recv(gate, tag, req) {
            None => {}
            Some(Unexpected::Eager { seq, data }) => {
                inner.recv_reqs[req.0 as usize].seq = seq;
                inner.rec.phase(
                    now.0,
                    mkey(src, my_rank, tag, seq),
                    obs::Phase::Matched { unexpected: true },
                );
                Self::consume_unexpected_eager(&mut inner, src, data.len());
                Self::complete_recv(&mut inner, now.0, req, data, gate, tag);
            }
            Some(Unexpected::Rts { seq, rdv_id, len }) => {
                inner.recv_reqs[req.0 as usize].seq = seq;
                inner.rec.phase(
                    now.0,
                    mkey(src, my_rank, tag, seq),
                    obs::Phase::Matched { unexpected: true },
                );
                Self::start_rdv_in(&mut inner, sched, req, src, tag, seq, rdv_id, len);
            }
        }
        let had_completion = !inner.completions.is_empty();
        drop(inner);
        if had_completion {
            self.fire_hook(sched);
        }
        req
    }

    /// Accept an inbound wire packet from the fabric sink. Processing is
    /// deferred to the next `schedule`; the event hook lets a background
    /// progress engine run one promptly.
    pub fn accept(self: &Arc<Self>, sched: &Scheduler, wire: NmWire) {
        self.accept_delivery(sched, wire, 0, false);
    }

    /// [`NmCore::accept`] with delivery metadata from the fabric: the
    /// local rail index the packet arrived on and whether the wire flagged
    /// it as corrupted. A corrupted frame fails the end-to-end CRC and is
    /// dropped here — the retry layer replays it like a lost packet.
    pub fn accept_delivery(
        self: &Arc<Self>,
        sched: &Scheduler,
        mut wire: NmWire,
        rail: usize,
        corrupted: bool,
    ) {
        debug_assert_eq!(wire.dst_rank, self.rank, "misrouted packet");
        if corrupted {
            // Model bit-rot without touching payload bytes: the sender's
            // retransmit queue shares this very storage, so the damage is
            // recorded in the (owned) header CRC instead.
            wire.crc ^= 1;
        }
        let retry = {
            let mut inner = self.inner.lock();
            if inner.halted {
                return;
            }
            if !wire.crc_ok() {
                inner.stats.add(stat::crc_drops, 1);
                return;
            }
            // A frame from a peer this rank already drained must not
            // revive any per-peer state (`Dead` is sticky): count it and
            // drop it before it can touch a map.
            if inner
                .membership
                .as_ref()
                .is_some_and(|m| m.is_dead(wire.src_rank))
            {
                inner.stats.add(stat::membership_stray_frames, 1);
                inner.rec.inc("nmad.membership.stray_frames", 1);
                return;
            }
            // An intact inbound frame is the only way a peer earns
            // liveness credit (outbound attempts can be fooled; arrivals
            // cannot).
            if let Some(m) = inner.membership.as_mut() {
                m.record_inbound(wire.src_rank, sched.now());
            }
            Self::emit_member_events(&mut inner, sched.now());
            inner.last_in_rail.insert(wire.src_rank, rail);
            // An intact arrival is live proof of this rail: inbound credit
            // is the only success signal that cannot be fooled by a
            // multi-rail attempt mask (a rendezvous whose dead-rail chunks
            // were rerouted still *finishes*, but only the survivor ever
            // lands a frame here).
            if let Some(h) = inner.health.as_mut() {
                h.record_success(rail, sched.now());
            }
            inner.inbound.push_back(wire);
            inner.cfg.retry.is_some()
        };
        // In retry mode the transport must stay responsive (ack and FIN
        // replays) even after the local rank has stopped polling — e.g. a
        // receiver that already completed while the sender retransmits.
        // `accept` runs on the engine thread, so processing inline is safe.
        if retry {
            self.schedule(sched);
        }
        self.fire_hook(sched);
    }

    /// `nm_schedule`: process inbound packets, sweep retransmission timers
    /// (retry mode), then commit the submission windows. The MPI progress
    /// engine (or PIOMan) calls this.
    pub fn schedule(self: &Arc<Self>, sched: &Scheduler) {
        if self.inner.lock().halted {
            return;
        }
        self.process_inbound(sched);
        self.sweep_retries(sched);
        self.sweep_probes(sched);
        self.sweep_membership(sched);
        self.try_commit(sched);
    }

    /// Crash/teardown: empty every queue and go permanently quiescent.
    /// Models the process dying — nothing is flushed, nothing is acked,
    /// and the simulated fabric (node-fault windows) makes the silence
    /// real on the wire. Peers detect the death via their own membership
    /// supervision; this rank simply stops participating.
    pub fn halt(&self) {
        let mut inner = self.inner.lock();
        inner.halted = true;
        inner.gates.clear();
        inner.inbound.clear();
        inner.completions.clear();
        inner.rdv_out.clear();
        inner.rdv_dst.clear();
        inner.rdv_in.clear();
        inner.env_unacked.clear();
        inner.ctrl_out.clear();
        inner.rec.inc("nmad.halt", 1);
    }

    /// Did [`NmCore::halt`] run?
    pub fn halted(&self) -> bool {
        self.inner.lock().halted
    }

    /// Is transport-level retransmission configured?
    pub fn retry_enabled(&self) -> bool {
        self.inner.lock().cfg.retry.is_some()
    }

    /// Drain all surfaced completions (cookies of finished requests).
    pub fn drain_completions(&self) -> Vec<NmCompletion> {
        let mut inner = self.inner.lock();
        inner.completions.drain(..).collect()
    }

    /// Is there an unexpected message from `(gate, tag)`?
    pub fn probe(&self, gate: GateId, tag: u64) -> bool {
        self.inner.lock().matching.probe(gate, tag)
    }

    /// Earliest-arrived unexpected message with `tag` from any gate — the
    /// ANY_SOURCE probe (§3.2.2).
    pub fn probe_tag(&self, tag: u64) -> Option<GateId> {
        self.inner.lock().matching.probe_tag(tag)
    }

    /// Probe with payload length, for MPI_Iprobe's status.
    pub fn probe_info(&self, gate: GateId, tag: u64) -> Option<usize> {
        self.inner.lock().matching.probe_info(gate, tag)
    }

    /// ANY_SOURCE probe with gate and payload length.
    pub fn probe_tag_info(&self, tag: u64) -> Option<(GateId, usize)> {
        self.inner.lock().matching.probe_tag_info(tag)
    }

    /// Posted receives not yet matched (diagnostics).
    pub fn posted_recvs(&self) -> usize {
        self.inner.lock().matching.posted_len()
    }

    /// Unexpected messages queued (diagnostics).
    pub fn unexpected_msgs(&self) -> usize {
        self.inner.lock().matching.unexpected_len()
    }

    /// Packet wrappers sitting in the submission windows — the library's
    /// "outbox" depth (diagnostics).
    pub fn window_depth(&self) -> usize {
        self.inner.lock().gates.values().map(|g| g.len()).sum()
    }

    /// Nothing in flight, nothing pending?
    pub fn quiescent(&self) -> bool {
        let inner = self.inner.lock();
        inner.inbound.is_empty()
            && inner.gates.values().all(|g| g.is_empty())
            && inner.rdv_out.is_empty()
            && inner.rdv_in.is_empty()
            && inner.completions.is_empty()
            && inner.env_unacked.is_empty()
            && inner.ctrl_out.is_empty()
    }

    /// Counter snapshot (includes the live copy-meter tally and the
    /// rail-health table's failover counters).
    pub fn stats(&self) -> NmStats {
        let inner = self.inner.lock();
        let mut s = inner.stats.snapshot();
        s.copy = inner.meter.snapshot();
        s.peer_entries = (inner.gates.len()
            + inner.send_seq.len()
            + inner.recv_expected.len()
            + inner.parked.len()
            + inner.env_unacked.len()
            + inner.rdv_done.len()
            + inner.last_in_rail.len()
            + inner.send_credits.len()
            + inner.credit_owed.len()
            + inner.credit_withheld.len()
            + inner.recv_posted.len()) as u64;
        if let Some(h) = inner.health.as_ref() {
            s.rail_transitions = h.transitions();
            s.degraded_nanos = h.degraded_nanos();
            let (sent, acked) = h.probe_counts();
            s.probes_sent = sent;
            s.probe_acks = acked;
        }
        if let Some(m) = inner.membership.as_ref() {
            s.membership_transitions = m.transitions();
        }
        s
    }

    /// Current health state of one local rail (`Up` when health tracking
    /// is off — the happy path treats every rail as healthy).
    pub fn rail_state(&self, rail: usize) -> RailHealth {
        self.inner
            .lock()
            .health
            .as_ref()
            .map(|h| h.state(rail))
            .unwrap_or(RailHealth::Up)
    }

    /// One-line failover summary for transport `debug_state` strings, e.g.
    /// `failover[rails=Up,Down transitions=2 probes=4/2 degraded=…ns]`.
    /// `None` when health tracking is off.
    pub fn health_summary(&self) -> Option<String> {
        self.inner.lock().health.as_ref().map(|h| h.summary())
    }

    /// Is the membership supervisor armed?
    pub fn membership_enabled(&self) -> bool {
        self.inner.lock().membership.is_some()
    }

    /// Liveness verdict for one peer (`Up` when membership is off — the
    /// happy path treats every peer as alive).
    pub fn peer_state(&self, peer: usize) -> PeerLiveness {
        self.inner
            .lock()
            .membership
            .as_ref()
            .map(|m| m.state(peer))
            .unwrap_or(PeerLiveness::Up)
    }

    /// Declare `peer` dead out-of-band (an upper layer learned of the
    /// death through a side channel — a resource manager, a test harness)
    /// and run the drain immediately. Returns `false` when membership is
    /// off or the peer was already dead.
    pub fn declare_peer_dead(&self, sched: &Scheduler, peer: usize) -> bool {
        let (fresh, fire) = {
            let mut guard = self.inner.lock();
            let inner = &mut *guard;
            let now = sched.now();
            let fresh = inner
                .membership
                .as_mut()
                .is_some_and(|m| m.declare_dead(peer, now));
            if fresh {
                Self::emit_member_events(inner, now);
                Self::drain_peer(inner, now, peer);
            }
            (fresh, fresh && !inner.completions.is_empty())
        };
        if fire {
            self.fire_hook(sched);
        }
        fresh
    }

    /// True when membership is armed and `peer` has been declared dead.
    pub fn is_peer_dead(&self, peer: usize) -> bool {
        self.inner
            .lock()
            .membership
            .as_ref()
            .is_some_and(|m| m.is_dead(peer))
    }

    /// Drain the queue of freshly-dead peers (each peer appears exactly
    /// once, in verdict order). The MPI layer polls this to retire VCs,
    /// flush ANY_SOURCE windows and shrink collective groups.
    pub fn take_dead_peers(&self) -> Vec<usize> {
        self.inner.lock().dead_events.drain(..).collect()
    }

    /// Revoke a communicator epoch locally (the MPI layer calls this both
    /// for a user-initiated `comm_revoke` and when a liveness verdict
    /// forces one). Sticky and idempotent like a death verdict: the first
    /// call quiesces every pending operation of the epoch — posted
    /// receives, in-flight rendezvous, queued and unacked eager sends —
    /// each completing with a counted revoked-epoch error; a repeat call
    /// returns `false` and changes nothing. The fresh verdict is also
    /// queued for [`NmCore::take_revoked_epochs`] so the upper layer
    /// re-broadcasts the poison peer-to-peer.
    pub fn revoke_epoch(&self, sched: &Scheduler, epoch: u32) -> bool {
        let (fresh, fire) = {
            let mut guard = self.inner.lock();
            let inner = &mut *guard;
            let fresh = Self::learn_revoke(inner, sched.now(), epoch);
            (fresh, fresh && !inner.completions.is_empty())
        };
        if fire {
            self.fire_hook(sched);
        }
        fresh
    }

    /// Has `epoch` been revoked on this rank?
    pub fn is_epoch_revoked(&self, epoch: u32) -> bool {
        self.inner.lock().revoked_epochs.contains(&epoch)
    }

    /// Drain the queue of freshly-revoked epochs (each appears exactly
    /// once, in verdict order). The MPI progress engine polls this to
    /// fail collective state and forward the poison frame to every
    /// communicator member it hasn't provably reached.
    pub fn take_revoked_epochs(&self) -> Vec<u32> {
        self.inner.lock().revoked_events.drain(..).collect()
    }

    /// Put one revoke poison frame for `epoch` on the wire toward `dst`
    /// (express lane — the poison must not queue behind the very bulk
    /// traffic it is cancelling).
    pub fn send_revoke(self: &Arc<Self>, sched: &Scheduler, dst: usize, epoch: u32) {
        self.send_direct(sched, dst, WirePayload::Revoke { epoch }, None);
    }

    /// Commit a new communicator epoch after a shrink/rebuild or a
    /// join-merge. Frames of every earlier epoch (agreement and join keys
    /// excepted) are stale from here on; any still-pending operation of a
    /// superseded epoch is quiesced now with a revoked-epoch error.
    /// Epochs only move forward — a stale commit is a no-op.
    pub fn advance_epoch(&self, sched: &Scheduler, new_epoch: u8) {
        let fire = {
            let mut guard = self.inner.lock();
            let inner = &mut *guard;
            if new_epoch <= inner.committed_epoch {
                return;
            }
            inner.committed_epoch = new_epoch;
            let now = sched.now();
            inner
                .rec
                .engine(now.0, obs::EngineEvent::EpochCommit { epoch: new_epoch as u32 });
            inner.rec.inc("nmad.epoch_commit", 1);
            Self::quiesce_keys(inner, now, |tag| {
                keys::is_coll(tag)
                    && !keys::epoch_exempt(tag)
                    && keys::epoch_of(tag) < new_epoch
            });
            !inner.completions.is_empty()
        };
        if fire {
            self.fire_hook(sched);
        }
    }

    /// The highest committed communicator epoch on this rank.
    pub fn committed_epoch(&self) -> u8 {
        self.inner.lock().committed_epoch
    }

    /// Retire one agreement instance (a collective key with its round
    /// bits masked, see [`keys::instance_of`]): every still-buffered or
    /// late frame of that instance — pass rounds and the DECIDED
    /// broadcast alike — is counted stale and dropped, and its abandoned
    /// posted receives complete with a revoked-epoch error. The MPI layer
    /// calls this as each agreement returns, so epoch-exempt keys cannot
    /// leak state the epoch filter will never cover.
    pub fn retire_instance(&self, sched: &Scheduler, instance: u64) {
        let fire = {
            let mut guard = self.inner.lock();
            let inner = &mut *guard;
            if !inner.retired.insert(instance) {
                return;
            }
            let now = sched.now();
            Self::quiesce_keys(inner, now, |tag| keys::instance_of(tag) == instance);
            !inner.completions.is_empty()
        };
        if fire {
            self.fire_hook(sched);
        }
    }

    /// Death log: `(peer, verdict time, fail streak at verdict)` — the
    /// raw material for detection-latency histograms.
    pub fn death_log(&self) -> Vec<(usize, SimTime, u64)> {
        self.inner
            .lock()
            .membership
            .as_ref()
            .map(|m| m.deaths().to_vec())
            .unwrap_or_default()
    }

    /// Per-peer state entries still held for `peer` across every
    /// lazily-populated map. The drain's acceptance gate: 0 for a dead
    /// peer once `drain_peer` has run.
    pub fn peer_entry_count(&self, peer: usize) -> usize {
        let inner = self.inner.lock();
        let mut n = 0usize;
        n += usize::from(inner.gates.contains_key(&peer));
        n += inner.send_seq.keys().filter(|k| k.0 == peer).count();
        n += inner.recv_expected.keys().filter(|k| k.0 == peer).count();
        n += inner.parked.keys().filter(|k| k.0 == peer).count();
        n += inner.env_unacked.keys().filter(|k| k.0 == peer).count();
        n += inner.rdv_done.iter().filter(|k| k.0 == peer).count();
        n += usize::from(inner.last_in_rail.contains_key(&peer));
        n += usize::from(inner.send_credits.contains(peer));
        n += usize::from(inner.credit_owed.contains_key(&peer));
        n += usize::from(inner.credit_withheld.contains_key(&peer));
        n += inner.recv_posted.keys().filter(|k| k.0 == peer).count();
        n += inner.rdv_dst.values().filter(|&&d| d == peer).count();
        n += inner.rdv_in.keys().filter(|k| k.0 == peer).count();
        n
    }

    /// One-line membership summary for transport `debug_state` strings,
    /// e.g. `member[up=6 suspect=1 dead=1 transitions=4]`. `None` when
    /// membership is off.
    pub fn membership_summary(&self) -> Option<String> {
        self.inner.lock().membership.as_ref().map(|m| m.summary())
    }

    /// Is credit-based eager flow control armed?
    pub fn flow_enabled(&self) -> bool {
        self.inner.lock().cfg.flow.is_some()
    }

    /// Bytes of unexpected eager payload currently buffered (tracked
    /// whether or not flow control is armed).
    pub fn unexpected_eager_bytes(&self) -> usize {
        self.inner.lock().unex_eager_bytes
    }

    /// One-line flow-control summary for transport `debug_state` strings,
    /// e.g. `flow[unex=0B/peak=12KB stalls=3 fallback=3 ret=40 held=8]`.
    /// `None` when flow control is off.
    pub fn flow_summary(&self) -> Option<String> {
        let inner = self.inner.lock();
        inner.cfg.flow.map(|_| {
            let s = &inner.stats;
            format!(
                "flow[unex={}B/peak={}B stalls={} fallback={} ret={} held={}{}]",
                inner.unex_eager_bytes,
                s.max_of(stat::fc_peak_unex_bytes),
                s.get(stat::fc_credit_stalls),
                s.get(stat::fc_fallback_sends),
                s.get(stat::fc_credits_returned),
                s.get(stat::fc_credits_withheld),
                if inner.fc_throttled { " throttled" } else { "" },
            )
        })
    }

    /// A peer returned eager credits for our gate to it: refill the pool.
    /// The pool can never legitimately exceed its initial size (credits
    /// are only minted by our own sends), but stay clamped regardless.
    fn apply_credits(inner: &mut Inner, t_ns: u64, src: usize, credits: u32) {
        if credits == 0 {
            return;
        }
        if inner.cfg.flow.is_none() {
            return;
        }
        inner.rec.engine(
            t_ns,
            obs::EngineEvent::CreditRefill {
                peer: src as u32,
                credits,
            },
        );
        // Overflow debug-asserted and clamped inside the pool.
        inner.send_credits.release(src, credits);
    }

    // ------------------------------------------------------------------
    // Inbound path
    // ------------------------------------------------------------------

    fn process_inbound(self: &Arc<Self>, sched: &Scheduler) {
        let now = sched.now();
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        // Retry mode: (src, tag) envelope flows touched by this batch — each
        // gets one cumulative ack afterwards (BTreeSet: deterministic order).
        let mut touched: BTreeSet<(usize, u64)> = BTreeSet::new();
        let retry = inner.cfg.retry.is_some();
        while let Some(wire) = inner.inbound.pop_front() {
            let src = wire.src_rank;
            match wire.payload {
                WirePayload::Eager { tag, seq, data } => {
                    if retry {
                        touched.insert((src, tag));
                    }
                    Self::deliver_envelope(inner, sched, src, tag, seq, Envelope::Eager(data));
                }
                WirePayload::Aggregate(frags) => {
                    for EagerFrag { tag, seq, data } in frags {
                        if retry {
                            touched.insert((src, tag));
                        }
                        Self::deliver_envelope(inner, sched, src, tag, seq, Envelope::Eager(data));
                    }
                }
                WirePayload::Rts {
                    tag,
                    seq,
                    rdv_id,
                    len,
                } => {
                    if retry {
                        touched.insert((src, tag));
                    }
                    Self::deliver_envelope(inner, sched, src, tag, seq, Envelope::Rts {
                        rdv_id,
                        len,
                    });
                }
                WirePayload::Cts { rdv_id } => {
                    // No rail credit from the handshake: `last_rails` is an
                    // attempt mask, and crediting attempts would resurrect a
                    // dead rail every time its rerouted rendezvous completes.
                    // Arrival credit in `accept_delivery` covers the rail the
                    // CTS actually used.
                    Self::handle_cts(inner, sched, rdv_id);
                }
                WirePayload::Data {
                    rdv_id,
                    offset,
                    data,
                } => {
                    Self::handle_data(inner, now, src, rdv_id, offset, data);
                }
                WirePayload::Credit { credits } => {
                    Self::apply_credits(inner, now.0, src, credits);
                }
                WirePayload::Ack { tag, next, credits } => {
                    Self::apply_credits(inner, now.0, src, credits);
                    let mut credited: Vec<usize> = Vec::new();
                    if let Some(map) = inner.env_unacked.get_mut(&(src, tag)) {
                        map.retain(|&seq, rx| {
                            if seq >= next {
                                true
                            } else {
                                credited.push(rx.rail);
                                false
                            }
                        });
                        if map.is_empty() {
                            inner.env_unacked.remove(&(src, tag));
                        }
                    }
                    if let Some(h) = inner.health.as_mut() {
                        for rail in credited {
                            h.record_success(rail, now);
                        }
                    }
                }
                WirePayload::RdvFin { rdv_id } => {
                    // Receiver finished: `fin/early` (chunks still on the
                    // local NIC) or `fin/confirmed` (FIN-wait) release the
                    // payload and complete the send; a replayed FIN finds
                    // `Gone` and is a declared ignore. Without retry no
                    // FIN is ever legal — a protocol error, not a panic.
                    let retry = inner.cfg.retry.is_some();
                    let state = inner
                        .rdv_out
                        .get(&rdv_id)
                        .map_or(protocol::State::Gone, |r| r.state);
                    match protocol::step(
                        state,
                        protocol::Event::FinRx,
                        pctx(retry, false, false, false),
                    ) {
                        Verdict::Step { actions, .. } => {
                            let rdv = inner.rdv_out.remove(&rdv_id).unwrap();
                            let dst = inner.rdv_dst.remove(&rdv_id).unwrap_or(src);
                            inner.rec.phase(
                                now.0,
                                mkey(inner.rec.rank() as usize, dst, rdv.tag, rdv.seq),
                                obs::Phase::FinRx,
                            );
                            if actions.contains(&Action::CompleteSend) {
                                Self::complete_send(inner, now.0, rdv.send_req);
                            } else {
                                // `fin/tombstone`: the FIN came from a
                                // revoke-tombstoned receiver before our own
                                // copy of the revoke arrived — no data ever
                                // moved, so the send fails, not completes.
                                debug_assert!(actions.contains(&Action::AbortSend));
                                Self::complete_send_revoked(
                                    inner,
                                    now.0,
                                    rdv.send_req,
                                    dst,
                                    keys::epoch_of(rdv.tag),
                                );
                            }
                        }
                        Verdict::Ignore { .. } => {}
                        Verdict::Error => {
                            Self::protocol_error(inner, "nmad.protocol_errors.fin");
                        }
                    }
                }
                WirePayload::Probe { rail, seq } => {
                    // Reply on the probed rail itself — a probe answered on
                    // a different rail would re-admit a link it never used.
                    inner
                        .ctrl_out
                        .push_back((src, WirePayload::ProbeAck { rail, seq }, Some(rail)));
                }
                WirePayload::ProbeAck { rail, seq } => {
                    // Membership probes share the wire format but live in
                    // a disjoint (high-bit) sequence space: their ack is
                    // just the inbound credit already recorded above, not
                    // a rail-health sample.
                    if seq & MEMBER_PROBE_BIT == 0 {
                        if let Some(h) = inner.health.as_mut() {
                            h.record_probe_ack(rail, seq, now);
                        }
                    }
                }
                WirePayload::Revoke { epoch } => {
                    // Epoch poison: sticky and idempotent — the first
                    // sighting quiesces the epoch and queues the verdict
                    // for the MPI layer to re-broadcast; replays are
                    // counted no-ops.
                    Self::learn_revoke(inner, now, epoch);
                }
            }
        }
        for (src, tag) in touched {
            let next = *inner.recv_expected.get(&(src, tag)).unwrap_or(&0);
            inner.stats.add(stat::acks_sent, 1);
            // Route the ack back the way the peer's traffic came in — never
            // into a rail the peer may have already abandoned.
            let via = inner.last_in_rail.get(&src).copied();
            inner
                .ctrl_out
                .push_back((src, WirePayload::Ack { tag, next, credits: 0 }, via));
        }
        // Earned credit returns ride out with this batch (piggybacked on
        // the acks above when one targets the same gate).
        Self::flush_credits(inner);
        let had_completion = !inner.completions.is_empty();
        drop(guard);
        self.flush_ctrl(sched);
        if had_completion {
            self.fire_hook(sched);
        }
    }

    /// Send queued acks/FINs (control traffic bypasses the gates — it must
    /// not be rescheduled or aggregated by the machinery it repairs).
    fn flush_ctrl(self: &Arc<Self>, sched: &Scheduler) {
        loop {
            let next = self.inner.lock().ctrl_out.pop_front();
            match next {
                Some((dst, payload, via)) => self.send_direct(sched, dst, payload, via),
                None => break,
            }
        }
    }

    /// Healthiest local rail for control traffic: the lowest-latency `Up`
    /// rail, else the lowest-latency still-usable (`Suspect`) one, else
    /// rail 0 (with everything down, any choice is a guess — keep it
    /// deterministic).
    fn preferred_rail(health: Option<&RailHealthTable>, profiles: &[LinkProfile]) -> usize {
        let Some(h) = health else { return 0 };
        let best = |want_up: bool| -> Option<usize> {
            (0..profiles.len())
                .filter(|&i| {
                    let st = h.state(i);
                    if want_up {
                        st == RailHealth::Up
                    } else {
                        st.usable()
                    }
                })
                .min_by_key(|&i| (profiles[i].latency, i))
        };
        best(true).or_else(|| best(false)).unwrap_or(0)
    }

    fn pick_ctrl_rail(&self) -> usize {
        let inner = self.inner.lock();
        Self::preferred_rail(inner.health.as_ref(), &self.profiles)
    }

    /// Put one control/retransmission packet directly on the wire, on the
    /// pinned rail `via` (health probes, rail-pinned replies) or on the
    /// healthiest rail otherwise.
    fn send_direct(
        self: &Arc<Self>,
        sched: &Scheduler,
        dst: usize,
        payload: WirePayload,
        via: Option<usize>,
    ) {
        let rail_idx = via
            .filter(|&r| r < self.net.rails.len())
            .unwrap_or_else(|| self.pick_ctrl_rail());
        let wire = NmWire::new(self.rank, dst, payload);
        let bytes = wire.wire_bytes();
        // Express lane: acks, handshake replays and probes must not sit
        // FIFO behind a queued rendezvous payload, or every control round
        // trip inflates past the retransmission timeout and the retry
        // layer starts indicting healthy rails.
        self.net.fabric.send_express(
            sched,
            self.net.rails[rail_idx],
            self.net.node,
            self.net.rank_to_node[dst],
            bytes,
            wire,
            None,
        );
    }

    /// Retry mode: let the health table emit due recovery probes (`Down →
    /// Probing` transitions and follow-ups) and put them on their pinned
    /// rails, aimed at the closest off-node peer.
    fn sweep_probes(self: &Arc<Self>, sched: &Scheduler) {
        let Some(peer) = self.probe_peer else { return };
        let probes = {
            let mut inner = self.inner.lock();
            match inner.health.as_mut() {
                Some(h) => h.tick(sched.now()),
                None => return,
            }
        };
        for (rail, seq) in probes {
            self.send_direct(sched, peer, WirePayload::Probe { rail, seq }, Some(rail));
        }
    }

    /// Membership silence prober. Peers this rank currently *expects
    /// inbound from* (posted receives, in-flight inbound rendezvous)
    /// generate no retransmission timeouts to attribute failures from, so
    /// the supervisor probes them while they are silent — each unanswered
    /// probe interval counts as one failure toward the `Dead` verdict,
    /// and any intact arrival (including the probe ack) resets the streak
    /// via `accept_delivery`.
    fn sweep_membership(self: &Arc<Self>, sched: &Scheduler) {
        let now = sched.now();
        let mut probes_out: Vec<(usize, WirePayload, Option<usize>)> = Vec::new();
        {
            let mut guard = self.inner.lock();
            let inner = &mut *guard;
            if inner.membership.is_none() {
                return;
            }
            let mut expected: Vec<usize> = inner
                .matching
                .posted_gates()
                .into_iter()
                .map(|g| g.0)
                .collect();
            expected.extend(inner.rdv_in.keys().map(|&(src, _)| src));
            expected.sort_unstable();
            expected.dedup();
            let (probes, dead) = inner
                .membership
                .as_mut()
                .expect("checked above")
                .tick(now, expected);
            Self::emit_member_events(inner, now);
            let rail = Self::preferred_rail(inner.health.as_ref(), &self.profiles);
            for peer in probes {
                let seq = MEMBER_PROBE_BIT | inner.member_probe_seq;
                inner.member_probe_seq += 1;
                inner.rec.inc("nmad.membership.probes", 1);
                probes_out.push((peer, WirePayload::Probe { rail, seq }, Some(rail)));
            }
            for peer in dead {
                Self::drain_peer(inner, now, peer);
            }
            let had_completion = !inner.completions.is_empty();
            drop(guard);
            if had_completion {
                self.fire_hook(sched);
            }
        }
        for (dst, payload, via) in probes_out {
            self.send_direct(sched, dst, payload, via);
        }
    }

    /// The drain protocol: `peer` was declared `Dead` — cancel every
    /// in-flight rendezvous with it through the protocol table's
    /// `Event::PeerDead` rows (table entries, not ad-hoc surgery), fail
    /// its posted receives, release its eager credits, and reclaim every
    /// lazily-populated per-peer map entry, so `peer_entry_count(peer)`
    /// ends at exactly 0 and not one surviving-pair byte is disturbed.
    fn drain_peer(inner: &mut Inner, now: SimTime, peer: usize) {
        let t_ns = now.0;
        let mut entries: u64 = 0;
        inner.stats.add(stat::membership_dead_peers, 1);
        inner.dead_events.push_back(peer);
        let ctx = pctx(true, false, false, false);
        // Outbound rendezvous toward the peer: `dead/swaitcts`,
        // `dead/sstreaming`, `dead/swaitfin` — DisarmTimer + AbortSend.
        let mut out_ids: Vec<u64> = inner
            .rdv_dst
            .iter()
            .filter(|&(_, &dst)| dst == peer)
            .map(|(&id, _)| id)
            .collect();
        out_ids.sort_unstable();
        for rdv_id in out_ids {
            let state = inner.rdv_out[&rdv_id].state;
            match protocol::step(state, protocol::Event::PeerDead, ctx) {
                Verdict::Step { actions, .. } => {
                    let rdv = inner.rdv_out.remove(&rdv_id).unwrap();
                    inner.rdv_dst.remove(&rdv_id);
                    entries += 2;
                    // `DisarmTimer` is realized by dropping the entry
                    // (its deadline dies with it).
                    if actions.contains(&Action::AbortSend) {
                        Self::complete_send_failed(inner, t_ns, rdv.send_req, peer);
                    }
                }
                Verdict::Ignore { .. } => {}
                Verdict::Error => Self::protocol_error(inner, "nmad.protocol_errors.dead"),
            }
        }
        // Inbound rendezvous from the peer: `dead/rwaitdata` — AbortRecv.
        let mut in_ids: Vec<(usize, u64)> = inner
            .rdv_in
            .keys()
            .filter(|&&(src, _)| src == peer)
            .copied()
            .collect();
        in_ids.sort_unstable();
        for key in in_ids {
            match protocol::step(protocol::State::RWaitData, protocol::Event::PeerDead, ctx) {
                Verdict::Step { actions, .. } => {
                    let rdv = inner.rdv_in.remove(&key).unwrap();
                    entries += 1;
                    if actions.contains(&Action::AbortRecv) {
                        Self::complete_recv_failed(inner, t_ns, rdv.recv_req, peer);
                    }
                }
                Verdict::Ignore { .. } => {}
                Verdict::Error => Self::protocol_error(inner, "nmad.protocol_errors.dead"),
            }
        }
        // Finished-rendezvous tombstones: `dead/rdone` drops them with no
        // further action (nobody is left to replay the FIN for).
        let mut tombs: Vec<(usize, u64)> = inner
            .rdv_done
            .iter()
            .filter(|&&(src, _)| src == peer)
            .copied()
            .collect();
        tombs.sort_unstable();
        for key in tombs {
            match protocol::step(protocol::State::RDone, protocol::Event::PeerDead, ctx) {
                Verdict::Step { actions, .. } => {
                    debug_assert!(actions.is_empty(), "tombstone drain emits no action");
                    inner.rdv_done.remove(&key);
                    entries += 1;
                }
                Verdict::Ignore { .. } => {}
                Verdict::Error => Self::protocol_error(inner, "nmad.protocol_errors.dead"),
            }
        }
        // Queued-but-uncommitted wrappers toward the peer. Eager bodies
        // still own live send requests (rendezvous ones were aborted
        // above); fail them — their payload will never leave this node.
        if let Some(queue) = inner.gates.remove(&peer) {
            entries += 1 + queue.len() as u64;
            for pw in queue {
                if let PwBody::Eager { send_req, .. } = pw.body {
                    if !inner.send_reqs[send_req.0 as usize].done {
                        Self::complete_send_failed(inner, t_ns, send_req, peer);
                    }
                }
            }
        }
        // Unacked eager envelopes toward the peer: their sends completed
        // locally long ago — stop retransmitting into the void.
        let env_keys: Vec<(usize, u64)> = inner
            .env_unacked
            .keys()
            .filter(|&&(dst, _)| dst == peer)
            .copied()
            .collect();
        for key in env_keys {
            let flow = inner.env_unacked.remove(&key).unwrap();
            entries += 1 + flow.len() as u64;
        }
        // Posted receives against the peer fail cleanly; its buffered
        // unexpected messages are dropped (no credit is owed to a corpse).
        let (orphans, dropped_bytes) = inner.matching.purge_gate(GateId(peer));
        entries += orphans.len() as u64;
        debug_assert!(inner.unex_eager_bytes >= dropped_bytes);
        inner.unex_eager_bytes -= dropped_bytes;
        for (req, _tag) in orphans {
            if !inner.recv_reqs[req.0 as usize].done {
                Self::complete_recv_failed(inner, t_ns, req, peer);
            }
        }
        // Release the peer's eager credits: in-flight ones it will never
        // ack, owed/withheld ones it will never collect.
        let mut released: u64 = 0;
        if let Some(fc) = inner.cfg.flow {
            if let Some(pool) = inner.send_credits.remove(peer) {
                entries += 1;
                released += (fc.eager_credits - pool) as u64;
            }
        }
        if let Some(owed) = inner.credit_owed.remove(&peer) {
            entries += 1;
            released += owed as u64;
        }
        if let Some(withheld) = inner.credit_withheld.remove(&peer) {
            entries += 1;
            released += withheld as u64;
        }
        inner.stats.add(stat::membership_credits_released, released);
        // Remaining per-(peer, tag) bookkeeping maps.
        let mut retain_count = |removed: usize| entries += removed as u64;
        let before = inner.send_seq.len();
        inner.send_seq.retain(|&(dst, _), _| dst != peer);
        retain_count(before - inner.send_seq.len());
        let before = inner.recv_expected.len();
        inner.recv_expected.retain(|&(src, _), _| src != peer);
        retain_count(before - inner.recv_expected.len());
        let before = inner.recv_posted.len();
        inner.recv_posted.retain(|&(src, _), _| src != peer);
        retain_count(before - inner.recv_posted.len());
        let parked_keys: Vec<(usize, u64)> = inner
            .parked
            .keys()
            .filter(|&&(src, _)| src == peer)
            .copied()
            .collect();
        for key in parked_keys {
            let map = inner.parked.remove(&key).unwrap();
            entries += 1 + map.len() as u64;
        }
        if inner.last_in_rail.remove(&peer).is_some() {
            entries += 1;
        }
        // Control frames queued toward the peer, and inbound frames from
        // it that arrived before the verdict: both are dead letters.
        let before = inner.ctrl_out.len();
        inner.ctrl_out.retain(|&(dst, _, _)| dst != peer);
        entries += (before - inner.ctrl_out.len()) as u64;
        let before = inner.inbound.len();
        inner.inbound.retain(|w| w.src_rank != peer);
        let strays = (before - inner.inbound.len()) as u64;
        inner.stats.add(stat::membership_stray_frames, strays);
        inner.stats.add(stat::membership_drained_entries, entries);
        inner.rec.engine(
            t_ns,
            obs::EngineEvent::MemberDrain {
                peer: peer as u32,
                entries: entries as u32,
            },
        );
        inner.rec.inc("nmad.membership.drained_entries", entries);
    }

    /// A stale collective frame (revoked/superseded epoch or retired
    /// agreement instance) was dropped: bump the hygiene counter.
    fn count_stale_epoch(inner: &mut Inner, n: u64) {
        inner.stats.add(stat::membership_stale_epoch, n);
        inner.rec.inc("nmad.membership.stale_epoch", n);
    }

    /// Is `tag` a collective key whose frames must be dropped — revoked or
    /// superseded epoch, or a retired agreement instance? Agreement and
    /// join keys are epoch-exempt (they run inside poisoned epochs by
    /// design) but still honour instance retirement.
    fn tag_is_stale(inner: &Inner, tag: u64) -> bool {
        if !keys::is_coll(tag) {
            return false;
        }
        if inner.retired.contains(&keys::instance_of(tag)) {
            return true;
        }
        if keys::epoch_exempt(tag) {
            return false;
        }
        let epoch = keys::epoch_of(tag);
        epoch < inner.committed_epoch || inner.revoked_epochs.contains(&(epoch as u32))
    }

    /// A revoke verdict for `epoch` reached this rank — locally initiated
    /// or learned from a peer's poison frame. Sticky: only the first
    /// sighting quiesces the epoch and is queued for the upper layer;
    /// a replayed poison frame is a counted no-op.
    fn learn_revoke(inner: &mut Inner, now: SimTime, epoch: u32) -> bool {
        if !inner.revoked_epochs.insert(epoch) {
            Self::count_stale_epoch(inner, 1);
            return false;
        }
        inner.stats.add(stat::revoked_epochs, 1);
        inner.revoked_events.push_back(epoch);
        inner.rec.engine(now.0, obs::EngineEvent::Revoke { epoch });
        inner.rec.inc("nmad.revoke", 1);
        Self::quiesce_keys(inner, now, |tag| {
            keys::is_coll(tag)
                && !keys::epoch_exempt(tag)
                && keys::epoch_of(tag) as u32 == epoch
        });
        true
    }

    /// The epoch quiesce: fail every pending operation whose tag satisfies
    /// `pred` — in-flight rendezvous through the protocol table's
    /// `Event::Revoked` rows, posted receives and buffered unexpected
    /// frames through the matching purge, queued and unacked eager sends
    /// directly. The peers stay alive; only the keys die, so unlike
    /// [`NmCore::drain_peer`] no per-peer map (sequence windows, credits,
    /// rail affinity) is touched — their stale frames are counted and
    /// acked at delivery instead.
    fn quiesce_keys<F: Fn(u64) -> bool>(inner: &mut Inner, now: SimTime, pred: F) {
        let t_ns = now.0;
        let ctx = pctx(inner.cfg.retry.is_some(), false, false, false);
        // Outbound rendezvous on poisoned keys: `revoked/swaitcts`,
        // `revoked/sstreaming`, `revoked/swaitfin` — DisarmTimer +
        // AbortSend (the deadline dies with the entry).
        let mut out_ids: Vec<u64> = inner
            .rdv_out
            .iter()
            .filter(|(_, r)| pred(r.tag))
            .map(|(&id, _)| id)
            .collect();
        out_ids.sort_unstable();
        for rdv_id in &out_ids {
            let state = inner.rdv_out[rdv_id].state;
            match protocol::step(state, protocol::Event::Revoked, ctx) {
                Verdict::Step { actions, .. } => {
                    let rdv = inner.rdv_out.remove(rdv_id).unwrap();
                    let dst = inner
                        .rdv_dst
                        .remove(rdv_id)
                        .expect("rendezvous destination missing");
                    if actions.contains(&Action::AbortSend) {
                        Self::complete_send_revoked(
                            inner,
                            t_ns,
                            rdv.send_req,
                            dst,
                            keys::epoch_of(rdv.tag),
                        );
                    }
                }
                Verdict::Ignore { .. } => {}
                Verdict::Error => Self::protocol_error(inner, "nmad.protocol_errors.revoked"),
            }
        }
        let removed_out: HashSet<u64> = out_ids.into_iter().collect();
        // Inbound rendezvous on poisoned keys: `revoked/rwaitdata` —
        // DisarmTimer + AbortRecv + Tombstone → RDone. The tombstone (not
        // plain removal) keeps a straggling DATA chunk on the FIN-replay
        // path instead of tripping the defensive data-before-reentry
        // ignore; peer death reclaims it like any finished rendezvous.
        let mut in_ids: Vec<(usize, u64)> = inner
            .rdv_in
            .iter()
            .filter(|(_, r)| pred(r.tag))
            .map(|(&k, _)| k)
            .collect();
        in_ids.sort_unstable();
        for key in &in_ids {
            match protocol::step(protocol::State::RWaitData, protocol::Event::Revoked, ctx) {
                Verdict::Step { actions, next, .. } => {
                    let rdv = inner.rdv_in.remove(key).unwrap();
                    debug_assert_eq!(next, protocol::State::RDone);
                    if actions.contains(&Action::Tombstone) {
                        inner.rdv_done.insert(*key);
                    }
                    if actions.contains(&Action::AbortRecv) {
                        Self::complete_recv_revoked(
                            inner,
                            t_ns,
                            rdv.recv_req,
                            key.0,
                            keys::epoch_of(rdv.tag),
                        );
                    }
                }
                Verdict::Ignore { .. } => {}
                Verdict::Error => Self::protocol_error(inner, "nmad.protocol_errors.revoked"),
            }
        }
        let removed_in: HashSet<(usize, u64)> = in_ids.into_iter().collect();
        // Unacked eager envelopes on poisoned keys: their sends completed
        // locally long ago — stop retransmitting into a dead epoch (the
        // receivers ack-and-drop stale frames, but why keep sending).
        let env_keys: Vec<(usize, u64)> = inner
            .env_unacked
            .keys()
            .filter(|&&(_, tag)| pred(tag))
            .copied()
            .collect();
        for key in env_keys {
            inner.env_unacked.remove(&key);
        }
        // Queued-but-uncommitted wrappers on poisoned keys, plus DATA/CTS
        // wrappers of the rendezvous cancelled above — committing one of
        // those would index a removed entry.
        let mut failed_eager: Vec<(SendReqId, usize, u8)> = Vec::new();
        let gate_keys: Vec<usize> = inner.gates.keys().copied().collect();
        for dst in gate_keys {
            let queue = inner.gates.get_mut(&dst).unwrap();
            let mut kept: VecDeque<PacketWrapper> = VecDeque::with_capacity(queue.len());
            for pw in queue.drain(..) {
                match &pw.body {
                    PwBody::Eager { tag, send_req, .. } if pred(*tag) => {
                        failed_eager.push((*send_req, dst, keys::epoch_of(*tag)));
                    }
                    // The RTS's send request already failed with its
                    // rendezvous entry above.
                    PwBody::Rts { tag, .. } if pred(*tag) => {}
                    PwBody::Cts { rdv_id } if removed_in.contains(&(dst, *rdv_id)) => {}
                    PwBody::Data { rdv_id, .. } if removed_out.contains(rdv_id) => {}
                    _ => kept.push_back(pw),
                }
            }
            *queue = kept;
        }
        for (req, dst, epoch) in failed_eager {
            if !inner.send_reqs[req.0 as usize].done {
                Self::complete_send_revoked(inner, t_ns, req, dst, epoch);
            }
        }
        // Posted receives fail; buffered unexpected frames of the epoch
        // are counted stale and dropped (no matching state survives).
        let (orphans, dropped_unex, dropped_bytes) = inner.matching.purge_keys(&pred);
        debug_assert!(inner.unex_eager_bytes >= dropped_bytes);
        inner.unex_eager_bytes -= dropped_bytes;
        Self::count_stale_epoch(inner, dropped_unex as u64);
        for (req, gate, tag) in orphans {
            if !inner.recv_reqs[req.0 as usize].done {
                Self::complete_recv_revoked(inner, t_ns, req, gate.0, keys::epoch_of(tag));
            }
        }
        // Parked early arrivals on poisoned keys: the predecessor that
        // would let them deliver may never be retransmitted (the sender
        // quiesced too) — drop and count them now rather than leak.
        let parked_keys: Vec<(usize, u64)> = inner
            .parked
            .keys()
            .filter(|&&(_, tag)| pred(tag))
            .copied()
            .collect();
        for key in parked_keys {
            let map = inner.parked.remove(&key).unwrap();
            Self::count_stale_epoch(inner, map.len() as u64);
        }
    }

    /// Transport-level reordering: envelopes are fed to matching strictly
    /// in per-(src, tag) sequence order; early arrivals park.
    fn deliver_envelope(
        inner: &mut Inner,
        sched: &Scheduler,
        src: usize,
        tag: u64,
        seq: u64,
        env: Envelope,
    ) {
        let expected = *inner.recv_expected.get(&(src, tag)).unwrap_or(&0);
        if seq < expected {
            // Already delivered: a retransmission or a wire duplicate. A
            // duplicated eager envelope is plain transport bookkeeping; a
            // duplicated RTS is a protocol event — the handshake reply
            // may have been lost, and the table decides the replay:
            // `replay/fin-on-rts` (tombstone → FIN again),
            // `replay/cts-on-rts` (live → CTS again), or
            // `replay/rts-unmatched` (count only). A duplicate without a
            // retry layer to explain it is a counted protocol error.
            let retry = inner.cfg.retry.is_some();
            let Envelope::Rts { rdv_id, .. } = env else {
                if retry {
                    inner.stats.add(stat::dup_envelopes, 1);
                } else {
                    Self::protocol_error(inner, "nmad.protocol_errors.dup_envelope");
                }
                return;
            };
            let key = (src, rdv_id);
            let state = if inner.rdv_done.contains(&key) {
                protocol::State::RDone
            } else if inner.rdv_in.contains_key(&key) {
                protocol::State::RWaitData
            } else {
                protocol::State::Gone
            };
            let actions = match protocol::step(
                state,
                protocol::Event::DupRts,
                pctx(retry, false, false, false),
            ) {
                Verdict::Step { actions, .. } => actions,
                Verdict::Ignore { .. } => return,
                Verdict::Error => {
                    Self::protocol_error(inner, "nmad.protocol_errors.dup_envelope");
                    return;
                }
            };
            let via = inner.last_in_rail.get(&src).copied();
            let mk = mkey(src, inner.rec.rank() as usize, tag, seq);
            for &action in actions {
                match action {
                    Action::CountDupEnvelope => inner.stats.add(stat::dup_envelopes, 1),
                    Action::ReplayFin => {
                        inner.stats.add(stat::fins_sent, 1);
                        inner.rec.phase(sched.now().0, mk, obs::Phase::FinTx);
                        inner
                            .ctrl_out
                            .push_back((src, WirePayload::RdvFin { rdv_id }, via));
                    }
                    Action::ReplayCts => {
                        inner.stats.add(stat::cts_retries, 1);
                        inner.rec.phase(
                            sched.now().0,
                            mk,
                            obs::Phase::Retry {
                                kind: obs::RetryKind::Cts,
                            },
                        );
                        inner.rec.phase(
                            sched.now().0,
                            mk,
                            obs::Phase::CtsTx {
                                rail: via.unwrap_or(0) as u8,
                            },
                        );
                        inner
                            .ctrl_out
                            .push_back((src, WirePayload::Cts { rdv_id }, via));
                    }
                    _ => unreachable!("DupRts rows emit no other action"),
                }
            }
            return;
        }
        if seq != expected {
            let map = inner.parked.entry((src, tag)).or_default();
            if map.insert(seq, env).is_some() {
                inner.stats.add(stat::dup_envelopes, 1);
            }
            return;
        }
        Self::deliver_now(inner, sched, src, tag, seq, env);
        let mut next = seq + 1;
        // Drain any parked successors that are now in order.
        while let Some(env) = inner
            .parked
            .get_mut(&(src, tag))
            .and_then(|map| map.remove(&next))
        {
            Self::deliver_now(inner, sched, src, tag, next, env);
            next += 1;
        }
        if let Some(map) = inner.parked.get(&(src, tag)) {
            if map.is_empty() {
                inner.parked.remove(&(src, tag));
            }
        }
    }

    fn deliver_now(
        inner: &mut Inner,
        sched: &Scheduler,
        src: usize,
        tag: u64,
        seq: u64,
        env: Envelope,
    ) {
        inner.recv_expected.insert((src, tag), seq + 1);
        // Epoch hygiene: a collective frame of a revoked or superseded
        // epoch (or a retired agreement instance) is dropped here — after
        // the sequence advance, so the cumulative ack still covers it and
        // the sender stops retransmitting (a live peer must never be
        // indicted over a dead epoch), but before any receiver-machine
        // span or matching state records it.
        if Self::tag_is_stale(inner, tag) {
            match protocol::step(
                protocol::State::Gone,
                protocol::Event::StaleEpoch,
                pctx(inner.cfg.retry.is_some(), false, false, false),
            ) {
                Verdict::Step { actions, .. } => {
                    debug_assert!(actions.contains(&Action::CountStaleEpoch));
                    Self::count_stale_epoch(inner, 1);
                }
                Verdict::Ignore { .. } => {}
                Verdict::Error => {
                    Self::protocol_error(inner, "nmad.protocol_errors.stale_epoch")
                }
            }
            return;
        }
        let now = sched.now();
        let key = mkey(src, inner.rec.rank() as usize, tag, seq);
        match &env {
            Envelope::Eager(_) => inner.rec.phase(now.0, key, obs::Phase::EagerRx),
            Envelope::Rts { .. } => inner.rec.phase(now.0, key, obs::Phase::RtsRx),
        }
        let gate = GateId(src);
        match inner.matching.try_match_arrival(gate, tag, seq) {
            Some(req) => {
                inner.recv_reqs[req.0 as usize].seq = seq;
                inner
                    .rec
                    .phase(now.0, key, obs::Phase::Matched { unexpected: false });
                match env {
                    Envelope::Eager(data) => {
                        // Matched on arrival: the credit cycle completes without
                        // the message ever occupying the unexpected queue.
                        Self::owe_credit(inner, src, data.len());
                        Self::complete_recv(inner, now.0, req, data, gate, tag)
                    }
                    Envelope::Rts { rdv_id, len } => {
                        Self::start_rdv_in(inner, sched, req, src, tag, seq, rdv_id, len)
                    }
                }
            }
            None => {
                let msg = match env {
                    Envelope::Eager(data) => {
                        inner.unex_eager_bytes += data.len();
                        inner
                            .stats
                            .raise(stat::fc_peak_unex_bytes, inner.unex_eager_bytes as u64);
                        Unexpected::Eager { seq, data }
                    }
                    Envelope::Rts { rdv_id, len } => Unexpected::Rts { seq, rdv_id, len },
                };
                inner.matching.store_unexpected(gate, tag, msg);
            }
        }
    }

    /// A buffered unexpected eager message was consumed by a receive:
    /// shrink the byte account and owe the sender its credit back.
    fn consume_unexpected_eager(inner: &mut Inner, src: usize, len: usize) {
        debug_assert!(inner.unex_eager_bytes >= len, "unexpected-byte underflow");
        inner.unex_eager_bytes -= len;
        Self::owe_credit(inner, src, len);
    }

    /// Flow control: one eager message from `src` was consumed; queue the
    /// credit for return on the next ctrl flush. Zero-length messages never
    /// consumed a credit (see `isend`), so none is owed.
    fn owe_credit(inner: &mut Inner, src: usize, len: usize) {
        if inner.cfg.flow.is_some() && len > 0 {
            *inner.credit_owed.entry(src).or_insert(0) += 1;
        }
    }

    /// Flow control: move owed credits onto the ctrl queue, honouring the
    /// high/low-water hysteresis — while the unexpected queue sits above
    /// `high_water` the returns are withheld (the senders drain their
    /// pools and fall back to rendezvous), and they are released in a
    /// batch once consumption pulls the queue below `low_water`. Returns
    /// piggyback on an ack already queued for the same gate when one is
    /// there (retry mode), else ride a standalone `Credit` frame — either
    /// way on the express channel, never behind bulk frames.
    fn flush_credits(inner: &mut Inner) {
        let Some(fc) = inner.cfg.flow else { return };
        if inner.fc_throttled {
            if inner.unex_eager_bytes <= fc.low_water {
                inner.fc_throttled = false;
            }
        } else if inner.unex_eager_bytes > fc.high_water {
            inner.fc_throttled = true;
        }
        if inner.fc_throttled {
            // Defer every owed credit; each is counted once, as it moves
            // into the withheld pool.
            while let Some((src, n)) = inner.credit_owed.pop_first() {
                inner.stats.add(stat::fc_credits_withheld, n as u64);
                *inner.credit_withheld.entry(src).or_insert(0) += n;
            }
            return;
        }
        while let Some((src, mut n)) = inner.credit_withheld.pop_first() {
            n += inner.credit_owed.remove(&src).unwrap_or(0);
            inner.credit_owed.insert(src, n);
        }
        while let Some((src, n)) = inner.credit_owed.pop_first() {
            inner.stats.add(stat::fc_credits_returned, n as u64);
            let piggyback = inner.ctrl_out.iter_mut().find_map(|(dst, p, _)| {
                match p {
                    WirePayload::Ack { credits, .. } if *dst == src => Some(credits),
                    _ => None,
                }
            });
            match piggyback {
                Some(credits) => *credits += n,
                None => {
                    let via = inner.last_in_rail.get(&src).copied();
                    inner
                        .ctrl_out
                        .push_back((src, WirePayload::Credit { credits: n }, via));
                }
            }
        }
    }

    fn complete_recv(
        inner: &mut Inner,
        t_ns: u64,
        req: RecvReqId,
        data: NmBuf,
        gate: GateId,
        tag: u64,
    ) {
        let r = &mut inner.recv_reqs[req.0 as usize];
        debug_assert!(!r.done, "double completion of recv request");
        r.done = true;
        inner.stats.add(stat::recv_completions, 1);
        let cookie = r.cookie;
        let key = mkey(r.src, inner.rec.rank() as usize, r.tag, r.seq);
        inner.rec.phase(
            t_ns,
            key,
            obs::Phase::Completed {
                side: obs::Side::Recv,
            },
        );
        inner.rec.inc("nmad.recv_completions", 1);
        inner.completions.push_back(NmCompletion {
            cookie,
            // Lineage ends at the user-facing completion: surrender the
            // underlying Bytes view (zero-copy, storage still aliased).
            kind: CompletionKind::Recv {
                data: data.into_bytes(),
                gate,
                tag,
            },
        });
    }

    /// The protocol table classified a frame as malformed or stale
    /// ([`Verdict::Error`]): count it — overall and per frame class — and
    /// drop it. The one thing this must never do is panic.
    fn protocol_error(inner: &mut Inner, counter: &'static str) {
        inner.stats.add(stat::protocol_errors, 1);
        inner.rec.inc("nmad.protocol_errors", 1);
        inner.rec.inc(counter, 1);
    }

    fn complete_send(inner: &mut Inner, t_ns: u64, req: SendReqId) {
        let r = &mut inner.send_reqs[req.0 as usize];
        debug_assert!(!r.done, "double completion of send request");
        r.done = true;
        inner.stats.add(stat::send_completions, 1);
        let cookie = r.cookie;
        let key = mkey(inner.rec.rank() as usize, r.dst, r.tag, r.seq);
        inner.rec.phase(
            t_ns,
            key,
            obs::Phase::Completed {
                side: obs::Side::Send,
            },
        );
        inner.rec.inc("nmad.send_completions", 1);
        inner.completions.push_back(NmCompletion {
            cookie,
            kind: CompletionKind::Send,
        });
    }

    /// Complete a send request *with an error* (its peer is dead). The
    /// no-cancel rule (§2.2.1) is honoured: the request does complete —
    /// the abort is the completion.
    fn complete_send_failed(inner: &mut Inner, t_ns: u64, req: SendReqId, peer: usize) {
        let r = &mut inner.send_reqs[req.0 as usize];
        debug_assert!(!r.done, "double completion of send request");
        r.done = true;
        inner.stats.add(stat::membership_aborted_sends, 1);
        let cookie = r.cookie;
        let key = mkey(inner.rec.rank() as usize, r.dst, r.tag, r.seq);
        inner.rec.phase(
            t_ns,
            key,
            obs::Phase::Aborted {
                side: obs::Side::Send,
            },
        );
        inner.rec.inc("nmad.membership.aborted_sends", 1);
        inner.completions.push_back(NmCompletion {
            cookie,
            kind: CompletionKind::SendFailed { peer },
        });
    }

    /// Complete a receive request *with an error* (its gate is dead).
    fn complete_recv_failed(inner: &mut Inner, t_ns: u64, req: RecvReqId, peer: usize) {
        let r = &mut inner.recv_reqs[req.0 as usize];
        debug_assert!(!r.done, "double completion of recv request");
        r.done = true;
        inner.stats.add(stat::membership_aborted_recvs, 1);
        let cookie = r.cookie;
        let tag = r.tag;
        let key = mkey(r.src, inner.rec.rank() as usize, r.tag, r.seq);
        inner.rec.phase(
            t_ns,
            key,
            obs::Phase::Aborted {
                side: obs::Side::Recv,
            },
        );
        inner.rec.inc("nmad.membership.aborted_recvs", 1);
        inner.completions.push_back(NmCompletion {
            cookie,
            kind: CompletionKind::RecvFailed {
                gate: GateId(peer),
                tag,
            },
        });
    }

    /// Complete a send request *with an error*: its communicator epoch
    /// was revoked while it was pending. The peer may be perfectly alive.
    fn complete_send_revoked(inner: &mut Inner, t_ns: u64, req: SendReqId, peer: usize, epoch: u8) {
        let r = &mut inner.send_reqs[req.0 as usize];
        debug_assert!(!r.done, "double completion of send request");
        r.done = true;
        inner.stats.add(stat::revoked_ops, 1);
        let cookie = r.cookie;
        let key = mkey(inner.rec.rank() as usize, r.dst, r.tag, r.seq);
        inner.rec.phase(
            t_ns,
            key,
            obs::Phase::Revoked {
                side: obs::Side::Send,
            },
        );
        inner.rec.inc("nmad.revoked_sends", 1);
        inner.completions.push_back(NmCompletion {
            cookie,
            kind: CompletionKind::SendRevoked { peer, epoch },
        });
    }

    /// Complete a receive request *with an error*: its communicator epoch
    /// was revoked, so no frame of that epoch will ever match it.
    fn complete_recv_revoked(inner: &mut Inner, t_ns: u64, req: RecvReqId, peer: usize, epoch: u8) {
        let r = &mut inner.recv_reqs[req.0 as usize];
        debug_assert!(!r.done, "double completion of recv request");
        r.done = true;
        inner.stats.add(stat::revoked_ops, 1);
        let cookie = r.cookie;
        let tag = r.tag;
        let key = mkey(r.src, inner.rec.rank() as usize, r.tag, r.seq);
        inner.rec.phase(
            t_ns,
            key,
            obs::Phase::Revoked {
                side: obs::Side::Recv,
            },
        );
        inner.rec.inc("nmad.revoked_recvs", 1);
        inner.completions.push_back(NmCompletion {
            cookie,
            kind: CompletionKind::RecvRevoked {
                gate: GateId(peer),
                tag,
                epoch,
            },
        });
    }

    /// Turn membership transition edges into obs spans and mirror the
    /// transition counter into the stats snapshot.
    fn emit_member_events(inner: &mut Inner, now: SimTime) {
        let Some(m) = inner.membership.as_mut() else {
            return;
        };
        let events = m.take_transition_events();
        // The transition total is a gauge recomputed in `stats()` from the
        // membership table itself; no mirror copy to keep in sync here.
        for (peer, state) in events {
            let code = match state {
                PeerLiveness::Up => 0,
                PeerLiveness::Suspect => 1,
                PeerLiveness::Dead => 2,
            };
            inner.rec.engine(
                now.0,
                obs::EngineEvent::MemberState {
                    peer: peer as u32,
                    state: code,
                },
            );
            inner.rec.inc("nmad.membership.transitions", 1);
        }
    }

    /// The receiver matched an RTS: allocate the landing buffer and queue a
    /// CTS control packet back to the sender.
    #[allow(clippy::too_many_arguments)]
    fn start_rdv_in(
        inner: &mut Inner,
        sched: &Scheduler,
        req: RecvReqId,
        src: usize,
        tag: u64,
        seq: u64,
        rdv_id: u64,
        len: usize,
    ) {
        // `entry/rts-matched`: allocate the landing buffer, answer with
        // the CTS, arm the progress timer (`ArmRecvTimer` is a no-op
        // without retry).
        let verdict = protocol::step(
            protocol::State::Gone,
            protocol::Event::RtsMatched,
            pctx(inner.cfg.retry.is_some(), false, false, false),
        );
        let Verdict::Step { actions, .. } = verdict else {
            unreachable!("rts-matched entry must be a table row");
        };
        debug_assert!(actions.contains(&Action::AllocLanding));
        debug_assert!(actions.contains(&Action::SendCts));
        let timeout = inner
            .cfg
            .retry
            .map(|rc| rc.timeout)
            .unwrap_or(SimDuration::ZERO);
        let deadline = inner.cfg.retry.map(|rc| sched.now() + rc.timeout);
        // The rendezvous landing buffer is a fresh payload allocation; the
        // chunk memcpys into it are charged as each DATA lands.
        inner.meter.record_alloc();
        let prev = inner.rdv_in.insert(
            (src, rdv_id),
            RdvIn {
                recv_req: req,
                gate: src,
                tag,
                seq,
                buf: vec![0u8; len],
                received: 0,
                ranges: Vec::new(),
                deadline,
                timeout,
                attempts: 0,
            },
        );
        debug_assert!(prev.is_none(), "duplicate rendezvous id from rank {src}");
        let pw_id = PwId(inner.next_pw);
        inner.next_pw += 1;
        let pw = PacketWrapper {
            id: pw_id,
            dst: src,
            body: PwBody::Cts { rdv_id },
            data: NmBuf::default(),
            enqueued_at: sched.now(),
        };
        inner.gates.entry(src).or_default().push_back(pw);
    }

    /// The sender got clear-to-send. Table lookup: `cts/pipelined` queues
    /// the payload as splittable DATA; a duplicated or straggling CTS in
    /// retry mode is a declared ignore; a CTS the table cannot place
    /// (unknown rendezvous without retry) is a counted protocol error —
    /// never a panic.
    fn handle_cts(inner: &mut Inner, sched: &Scheduler, rdv_id: u64) {
        let retry = inner.cfg.retry.is_some();
        let my_rank = inner.rec.rank() as usize;
        let state = inner
            .rdv_out
            .get(&rdv_id)
            .map_or(protocol::State::Gone, |r| r.state);
        let (actions, next) =
            match protocol::step(state, protocol::Event::CtsRx, pctx(retry, false, false, false)) {
                Verdict::Step { actions, next, .. } => (actions, next),
                Verdict::Ignore { .. } => return,
                Verdict::Error => {
                    Self::protocol_error(inner, "nmad.protocol_errors.cts");
                    return;
                }
            };
        let rdv = inner.rdv_out.get_mut(&rdv_id).unwrap();
        rdv.state = next;
        let dst = *inner
            .rdv_dst
            .get(&rdv_id)
            .expect("rendezvous destination missing");
        inner.rec.phase(
            sched.now().0,
            mkey(my_rank, dst, inner.rdv_out[&rdv_id].tag, inner.rdv_out[&rdv_id].seq),
            obs::Phase::CtsRx,
        );
        for &action in actions {
            match action {
                Action::DisarmTimer => {
                    // The RTS timer re-arms as a FIN timer once every DATA
                    // chunk has left the local NIC (`sent/await-fin`).
                    inner.rdv_out.get_mut(&rdv_id).unwrap().deadline = None;
                }
                Action::QueueData => {
                    // Zero-copy: the DATA wrapper shares the sender's
                    // payload storage.
                    let data = inner.rdv_out[&rdv_id].data.share();
                    let pw_id = PwId(inner.next_pw);
                    inner.next_pw += 1;
                    let pw = PacketWrapper {
                        id: pw_id,
                        dst,
                        body: PwBody::Data { rdv_id, offset: 0 },
                        data,
                        enqueued_at: sched.now(),
                    };
                    inner.gates.entry(dst).or_default().push_back(pw);
                }
                _ => unreachable!("cts/pipelined emits no other action"),
            }
        }
    }

    /// A DATA chunk landed. Table lookup against the derived receiver
    /// state (live entry = `RWaitData`, tombstone = `RDone`, neither =
    /// `Gone`): `data/chunk` copies and bumps the progress timer,
    /// `data/last*` completes the receive (and in retry mode sends the
    /// FIN and tombstones), `replay/fin-on-data` answers a replayed
    /// payload at a tombstone with the FIN again. Chunks outside the
    /// announced payload range — or for an unknown rendezvous without
    /// retry — are counted protocol errors, never a panic or a wild
    /// slice.
    fn handle_data(
        inner: &mut Inner,
        now: SimTime,
        src: usize,
        rdv_id: u64,
        offset: usize,
        data: NmBuf,
    ) {
        let key = (src, rdv_id);
        let retry = inner.cfg.retry.is_some();
        let state = if inner.rdv_done.contains(&key) {
            protocol::State::RDone
        } else if inner.rdv_in.contains_key(&key) {
            protocol::State::RWaitData
        } else {
            protocol::State::Gone
        };
        // Answer the `InRange` / `Last` guards before anything mutates:
        // the chunk must lie inside the landing buffer, and `last` means
        // it completes the payload (under retry, counting only bytes not
        // already covered by a replay).
        let (in_range, last) = match inner.rdv_in.get(&key) {
            Some(rdv) => {
                let end = offset.checked_add(data.len());
                let in_range = end.is_some_and(|e| e <= rdv.buf.len());
                let last = in_range && {
                    let end = end.unwrap();
                    let fresh = if retry {
                        fresh_len(&rdv.ranges, offset, end)
                    } else {
                        data.len()
                    };
                    rdv.received + fresh == rdv.buf.len()
                };
                (in_range, last)
            }
            None => (true, false),
        };
        let actions = match protocol::step(
            state,
            protocol::Event::DataRx,
            pctx(retry, in_range, last, false),
        ) {
            Verdict::Step { actions, .. } => actions,
            // `ignore/data-before-reentry` (defensive): drop the chunk;
            // the sender's FIN timer replays it.
            Verdict::Ignore { .. } => return,
            Verdict::Error => {
                Self::protocol_error(inner, "nmad.protocol_errors.data");
                return;
            }
        };
        let my_rank = inner.rec.rank() as usize;
        let mut done = false;
        for &action in actions {
            match action {
                Action::CopyChunk => {
                    let rdv = inner.rdv_in.get_mut(&key).unwrap();
                    inner.rec.phase(
                        now.0,
                        mkey(src, my_rank, rdv.tag, rdv.seq),
                        obs::Phase::DataChunkRx {
                            offset: offset as u64,
                            len: data.len() as u64,
                        },
                    );
                    inner.rec.observe("nmad.chunk.bytes", data.len() as u64);
                    // The one unavoidable receive-side memcpy of the
                    // rendezvous path: gather the chunk into the
                    // contiguous landing buffer.
                    data.copy_out(&mut rdv.buf[offset..offset + data.len()]);
                    let dup_bytes = if retry {
                        let fresh = insert_range(&mut rdv.ranges, offset, offset + data.len());
                        rdv.received += fresh;
                        (data.len() - fresh) as u64
                    } else {
                        rdv.received += data.len();
                        0
                    };
                    debug_assert!(rdv.received <= rdv.buf.len());
                    if dup_bytes > 0 {
                        inner.stats.add(stat::dup_data, 1);
                    }
                }
                Action::BumpRecvTimer => {
                    // Progress arrived: push the CTS retransmission timer
                    // out (a no-op without retry, where no timer is armed).
                    let rdv = inner.rdv_in.get_mut(&key).unwrap();
                    let timeout = rdv.timeout;
                    if let Some(dl) = rdv.deadline.as_mut() {
                        *dl = now + timeout;
                    }
                }
                Action::Tombstone => {
                    inner.rdv_done.insert(key);
                }
                Action::SendFin => {
                    let rdv = &inner.rdv_in[&key];
                    inner.stats.add(stat::fins_sent, 1);
                    inner.rec.phase(
                        now.0,
                        mkey(src, my_rank, rdv.tag, rdv.seq),
                        obs::Phase::FinTx,
                    );
                    let via = inner.last_in_rail.get(&src).copied();
                    inner
                        .ctrl_out
                        .push_back((src, WirePayload::RdvFin { rdv_id }, via));
                }
                Action::CompleteRecv => {
                    done = true;
                }
                Action::CountDupData => {
                    // Replayed payload at a tombstone: the sender's FIN
                    // was lost.
                    inner.stats.add(stat::dup_data, 1);
                }
                Action::ReplayFin => {
                    inner.stats.add(stat::fins_sent, 1);
                    let via = inner.last_in_rail.get(&src).copied();
                    inner
                        .ctrl_out
                        .push_back((src, WirePayload::RdvFin { rdv_id }, via));
                }
                _ => unreachable!("DataRx rows emit no other action"),
            }
        }
        if done {
            let rdv = inner.rdv_in.remove(&key).unwrap();
            debug_assert_eq!(rdv.received, rdv.buf.len());
            // Freeze the landing buffer without a copy (the allocation was
            // charged in start_rdv_in, the fills as each chunk landed).
            let buf = NmBuf::adopt(Bytes::from(rdv.buf), BufOrigin::Nmad, &inner.meter);
            Self::complete_recv(inner, now.0, rdv.recv_req, buf, GateId(rdv.gate), rdv.tag);
        }
    }

    // ------------------------------------------------------------------
    // Retransmission (retry mode)
    // ------------------------------------------------------------------

    /// Walk every armed retransmission timer and replay what timed out:
    /// unacked eager envelopes, RTS without a CTS, CTS without DATA
    /// progress, and finished DATA transfers without a FIN. Timeouts back
    /// off exponentially up to `max_timeout`; `max_attempts` consecutive
    /// replays without progress declare the link dead. No-op unless
    /// `NmConfig.retry` is set.
    fn sweep_retries(self: &Arc<Self>, sched: &Scheduler) {
        let now = sched.now();
        let mut resend: Vec<(usize, WirePayload, Option<usize>)> = Vec::new();
        {
            let mut inner = self.inner.lock();
            let inner = &mut *inner;
            let Some(rc) = inner.cfg.retry else { return };
            // With membership armed, exhausting `max_attempts` is no
            // longer a panic: every timeout is attributed to its peer and
            // the supervisor decides between Suspect, Dead and patience.
            let armed = inner.membership.is_some();
            // `(peer, armed_at)` per fired timeout: the supervisor only
            // charges the peer if it stayed inbound-silent for the whole
            // armed window (see `MembershipTable::record_timeout`).
            let mut failed_peers: Vec<(usize, SimTime)> = Vec::new();
            let arm_time = |deadline: SimTime, timeout: SimDuration| {
                SimTime::from_nanos(deadline.as_nanos().saturating_sub(timeout.as_nanos()))
            };
            let bump = move |timeout: &mut SimDuration, attempts: &mut u32, what: &str| {
                *attempts += 1;
                assert!(
                    armed || *attempts <= rc.max_attempts,
                    "{what}: {} retransmissions without progress — link presumed dead",
                    rc.max_attempts
                );
                let t = timeout
                    .as_nanos()
                    .saturating_mul(rc.backoff as u64)
                    .min(rc.max_timeout.as_nanos());
                *timeout = SimDuration::nanos(t);
            };
            for (&(dst, tag), flow) in inner.env_unacked.iter_mut() {
                for (&seq, rx) in flow.iter_mut() {
                    if now < rx.deadline {
                        continue;
                    }
                    let armed_at = arm_time(rx.deadline, rx.timeout);
                    bump(&mut rx.timeout, &mut rx.attempts, "eager envelope");
                    if armed {
                        failed_peers.push((dst, armed_at));
                    }
                    rx.deadline = now + rx.timeout;
                    inner.stats.add(stat::eager_retries, 1);
                    let key = mkey(self.rank, dst, tag, seq);
                    inner.rec.phase(
                        now.0,
                        key,
                        obs::Phase::Retry {
                            kind: obs::RetryKind::Eager,
                        },
                    );
                    // The timeout indicts the rail the envelope went out on;
                    // the replay moves to the current healthiest rail.
                    if let Some(h) = inner.health.as_mut() {
                        h.record_failure(rx.rail, now);
                    }
                    let new_rail = Self::preferred_rail(inner.health.as_ref(), &self.profiles);
                    if new_rail != rx.rail {
                        let moved = payload_data_len(&rx.payload) as u64;
                        inner.stats.add(stat::rerouted_bytes, moved);
                        inner.rec.phase(
                            now.0,
                            key,
                            obs::Phase::Reroute {
                                to_rail: new_rail as u8,
                                bytes: moved,
                            },
                        );
                        rx.rail = new_rail;
                    }
                    // Retransmissions bypass the strategy queue, so the
                    // wire event is recorded here, not in build_outgoing.
                    inner
                        .rec
                        .phase(now.0, key, obs::Phase::EagerTx { rail: rx.rail as u8 });
                    // share(): the replayed envelope reuses the queued
                    // payload storage — retransmission never copies bytes.
                    resend.push((dst, rx.payload.share(), Some(rx.rail)));
                }
            }
            // rdv_out / rdv_in are HashMaps: collect + sort so the replay
            // order (and thus the fault RNG stream) stays deterministic.
            let mut out_ids: Vec<u64> = inner
                .rdv_out
                .iter()
                .filter(|(_, r)| r.deadline.is_some_and(|dl| now >= dl))
                .map(|(&id, _)| id)
                .collect();
            out_ids.sort_unstable();
            for rdv_id in out_ids {
                let dst = inner.rdv_dst[&rdv_id];
                // Table lookup: `timer/rts` (waiting for the CTS — replay
                // the RTS) or `timer/data` (waiting for the FIN — replay
                // the payload). The timer is only armed in those two
                // states, so anything else is a protocol error: disarm
                // and count rather than replaying garbage.
                let state = inner.rdv_out[&rdv_id].state;
                let verdict = protocol::step(
                    state,
                    protocol::Event::SendTimeout,
                    pctx(true, false, false, false),
                );
                let Verdict::Step { actions, .. } = verdict else {
                    Self::protocol_error(inner, "nmad.protocol_errors.timer");
                    inner.rdv_out.get_mut(&rdv_id).unwrap().deadline = None;
                    continue;
                };
                // `Backoff`: bump the attempt count and re-arm with the
                // backed-off timeout.
                debug_assert!(actions.contains(&Action::Backoff));
                let (mask, armed_at) = {
                    let rdv = inner.rdv_out.get_mut(&rdv_id).unwrap();
                    let armed_at = arm_time(rdv.deadline.expect("fired timer"), rdv.timeout);
                    bump(&mut rdv.timeout, &mut rdv.attempts, "rendezvous (sender)");
                    rdv.deadline = Some(now + rdv.timeout);
                    (rdv.last_rails, armed_at)
                };
                if armed {
                    failed_peers.push((dst, armed_at));
                }
                // Every rail the outstanding packets used shares the blame
                // (a multi-rail split can't name the guilty one — that's
                // why demotion needs `suspect_after` repeats).
                if let Some(h) = inner.health.as_mut() {
                    for rail in 0..h.num_rails() {
                        if mask & (1 << rail) != 0 {
                            h.record_failure(rail, now);
                        }
                    }
                }
                let new_rail = Self::preferred_rail(inner.health.as_ref(), &self.profiles);
                // A replay reroutes whenever it abandons any rail of the
                // attempt mask — a split that covered {0,1} and replays on
                // {0} moved the dead rail's share even though rail 0 was
                // already in the mask.
                let rerouted = mask != 0 && mask != 1 << new_rail;
                let rdv = inner.rdv_out.get_mut(&rdv_id).unwrap();
                rdv.last_rails = 1 << new_rail;
                let key = mkey(self.rank, dst, rdv.tag, rdv.seq);
                if actions.contains(&Action::ReplayRts) {
                    inner.stats.add(stat::rts_retries, 1);
                    inner.rec.phase(
                        now.0,
                        key,
                        obs::Phase::Retry {
                            kind: obs::RetryKind::Rts,
                        },
                    );
                    if rerouted {
                        inner.rec.phase(
                            now.0,
                            key,
                            obs::Phase::Reroute {
                                to_rail: new_rail as u8,
                                bytes: 0,
                            },
                        );
                    }
                    // Replayed wire event (bypasses build_outgoing).
                    inner.rec.phase(
                        now.0,
                        key,
                        obs::Phase::RtsTx {
                            rail: new_rail as u8,
                            len: rdv.data.len() as u64,
                        },
                    );
                    resend.push((
                        dst,
                        WirePayload::Rts {
                            tag: rdv.tag,
                            seq: rdv.seq,
                            rdv_id,
                            len: rdv.data.len(),
                        },
                        Some(new_rail),
                    ));
                } else {
                    // `timer/data` — FIN wait: the receiver never
                    // confirmed. Replay the whole payload — range tracking
                    // dedups whatever did arrive, and a tombstoned
                    // receiver replays the FIN.
                    debug_assert!(actions.contains(&Action::ReplayData));
                    inner.stats.add(stat::data_retries, 1);
                    inner.rec.phase(
                        now.0,
                        key,
                        obs::Phase::Retry {
                            kind: obs::RetryKind::Data,
                        },
                    );
                    if rerouted {
                        inner.stats.add(stat::rerouted_bytes, rdv.data.len() as u64);
                        inner.rec.phase(
                            now.0,
                            key,
                            obs::Phase::Reroute {
                                to_rail: new_rail as u8,
                                bytes: rdv.data.len() as u64,
                            },
                        );
                    }
                    // Replayed wire event (bypasses build_outgoing).
                    inner.rec.phase(
                        now.0,
                        key,
                        obs::Phase::DataChunkTx {
                            rail: new_rail as u8,
                            offset: 0,
                            len: rdv.data.len() as u64,
                        },
                    );
                    resend.push((
                        dst,
                        WirePayload::Data {
                            rdv_id,
                            offset: 0,
                            // Zero-copy replay of the held payload.
                            data: rdv.data.share(),
                        },
                        Some(new_rail),
                    ));
                }
            }
            let mut in_ids: Vec<(usize, u64)> = inner
                .rdv_in
                .iter()
                .filter(|(_, r)| r.deadline.is_some_and(|dl| now >= dl))
                .map(|(&k, _)| k)
                .collect();
            in_ids.sort_unstable();
            for key in in_ids {
                // A live inbound entry is `RWaitData` by construction;
                // `timer/cts` backs off and replays the CTS.
                let verdict = protocol::step(
                    protocol::State::RWaitData,
                    protocol::Event::RecvTimeout,
                    pctx(true, false, false, false),
                );
                let Verdict::Step { actions, .. } = verdict else {
                    unreachable!("timer/cts must be a table row");
                };
                debug_assert!(actions.contains(&Action::Backoff));
                debug_assert!(actions.contains(&Action::ReplayCts));
                let rdv = inner.rdv_in.get_mut(&key).unwrap();
                let armed_at = arm_time(rdv.deadline.expect("fired timer"), rdv.timeout);
                bump(&mut rdv.timeout, &mut rdv.attempts, "rendezvous (receiver)");
                if armed {
                    failed_peers.push((key.0, armed_at));
                }
                rdv.deadline = Some(now + rdv.timeout);
                inner.stats.add(stat::cts_retries, 1);
                let mk = mkey(key.0, self.rank, rdv.tag, rdv.seq);
                inner.rec.phase(
                    now.0,
                    mk,
                    obs::Phase::Retry {
                        kind: obs::RetryKind::Cts,
                    },
                );
                // Receiver-side timeout: could be the lost CTS or the
                // sender going quiet — no rail to indict. Route the replay
                // along the sender's last inbound rail.
                let via = inner.last_in_rail.get(&key.0).copied();
                // Replayed wire event (bypasses build_outgoing).
                inner.rec.phase(
                    now.0,
                    mk,
                    obs::Phase::CtsTx {
                        rail: via.unwrap_or(0) as u8,
                    },
                );
                resend.push((key.0, WirePayload::Cts { rdv_id: key.1 }, via));
            }
            // Promote this sweep's timeouts into per-peer liveness
            // verdicts; a fresh `Dead` runs the drain before the lock
            // drops, and replays toward a drained peer are dead letters.
            if !failed_peers.is_empty() {
                let mut newly_dead: Vec<usize> = Vec::new();
                if let Some(m) = inner.membership.as_mut() {
                    for (peer, armed_at) in failed_peers {
                        if m.record_timeout(peer, armed_at, now) {
                            newly_dead.push(peer);
                        }
                    }
                }
                Self::emit_member_events(inner, now);
                for peer in newly_dead {
                    Self::drain_peer(inner, now, peer);
                }
                if let Some(m) = inner.membership.as_ref() {
                    resend.retain(|&(dst, _, _)| !m.is_dead(dst));
                }
            }
        }
        for (dst, payload, via) in resend {
            self.send_direct(sched, dst, payload, via);
        }
    }

    // ------------------------------------------------------------------
    // Outbound path
    // ------------------------------------------------------------------

    /// Run the strategy over every gate and put the resulting packets on
    /// the wire.
    fn try_commit(self: &Arc<Self>, sched: &Scheduler) {
        let now = sched.now();
        let mut outgoing: Vec<Outgoing> = Vec::new();
        {
            let mut inner = self.inner.lock();
            let inner = &mut *inner;
            let mut rails: Vec<RailState> = self
                .net
                .rails
                .iter()
                .enumerate()
                .zip(&self.profiles)
                .map(|((i, &rid), &profile)| RailState {
                    idle: !self.net.fabric.rail_busy(rid, self.net.node, now),
                    profile,
                    health: inner
                        .health
                        .as_ref()
                        .map(|h| h.state(i))
                        .unwrap_or(RailHealth::Up),
                    weight: inner
                        .health
                        .as_ref()
                        .map(|h| h.weight(i, now))
                        .unwrap_or(1.0),
                })
                .collect();
            for (&dst, pending) in inner.gates.iter_mut() {
                if pending.is_empty() {
                    continue;
                }
                let subs = inner
                    .strategy
                    .try_and_commit(&inner.cfg, pending, &mut rails);
                for sub in subs {
                    outgoing.push(Self::build_outgoing(
                        self.rank,
                        &self.net,
                        &inner.stats,
                        &mut inner.rdv_out,
                        &inner.rdv_in,
                        &mut inner.env_unacked,
                        &inner.rec,
                        inner.cfg.retry,
                        now,
                        dst,
                        sub,
                    ));
                }
            }
        }
        for out in outgoing {
            let core = Arc::clone(self);
            let eager_reqs = out.eager_reqs;
            let data_chunk_rdv = out.data_chunk_rdv;
            let on_sent: Box<dyn FnOnce(&Scheduler) + Send> = Box::new(move |s| {
                core.handle_sent(s, &eager_reqs, data_chunk_rdv);
            });
            // NewMadeleine "does not use any caching mechanism for large
            // messages and registers dynamically and on-the-fly the needed
            // memory" (§4.1.1): rendezvous data pays the registration cost
            // before the NIC sees the buffer.
            let reg = if data_chunk_rdv.is_some() {
                let r = self
                    .net
                    .fabric
                    .model(out.rail)
                    .registration_cost(out.bytes, false);
                // Injected registration-cache miss: pay a second
                // (re-)registration round before the NIC sees the buffer.
                if self.net.fabric.reg_cache_miss(out.rail) {
                    r + r
                } else {
                    r
                }
            } else {
                simnet::SimDuration::ZERO
            };
            if reg > simnet::SimDuration::ZERO {
                let fabric = Arc::clone(&self.net.fabric);
                let (rail, src, dst, bytes, wire) =
                    (out.rail, self.net.node, out.dst_node, out.bytes, out.wire);
                sched.schedule_in(reg, move |s| {
                    fabric.send(s, rail, src, dst, bytes, wire, Some(on_sent));
                });
            } else {
                self.net.fabric.send(
                    sched,
                    out.rail,
                    self.net.node,
                    out.dst_node,
                    out.bytes,
                    out.wire,
                    Some(on_sent),
                );
            }
        }
    }

    /// Turn one strategy submission into a wire packet + bookkeeping.
    #[allow(clippy::too_many_arguments)]
    fn build_outgoing(
        my_rank: usize,
        net: &NmNet,
        stats: &StatsCells,
        rdv_out: &mut HashMap<u64, RdvOut>,
        rdv_in: &HashMap<(usize, u64), RdvIn>,
        env_unacked: &mut BTreeMap<(usize, u64), BTreeMap<u64, EnvRetx>>,
        rec: &obs::RankRec,
        retry: Option<RetryConfig>,
        now: SimTime,
        dst: usize,
        sub: Submission,
    ) -> Outgoing {
        let rail_idx = sub.rail;
        let rail = net.rails[rail_idx];
        let dst_node = net.rank_to_node[dst];
        stats.add(stat::packets_sent, 1);
        let mut eager_reqs = Vec::new();
        let mut data_chunk_rdv = None;
        // Retry mode: an eager envelope going on the wire starts its ack
        // timer and keeps a copy for retransmission.
        let track_eager = |env_unacked: &mut BTreeMap<(usize, u64), BTreeMap<u64, EnvRetx>>,
                               tag: u64,
                               seq: u64,
                               data: &NmBuf| {
            if let Some(rc) = retry {
                env_unacked.entry((dst, tag)).or_default().insert(
                    seq,
                    EnvRetx {
                        payload: WirePayload::Eager {
                            tag,
                            seq,
                            // The retransmit queue holds a share of the
                            // wire payload, not a copy.
                            data: data.share(),
                        },
                        deadline: now + rc.timeout,
                        timeout: rc.timeout,
                        attempts: 0,
                        rail: rail_idx,
                    },
                );
            }
        };
        let payload = if sub.pws.len() > 1 {
            stats.add(stat::aggregates_sent, 1);
            stats.add(stat::frags_aggregated, sub.pws.len() as u64);
            let frags = sub
                .pws
                .into_iter()
                .map(|pw| match pw.body {
                    PwBody::Eager {
                        tag,
                        seq,
                        send_req,
                    } => {
                        eager_reqs.push(send_req);
                        track_eager(env_unacked, tag, seq, &pw.data);
                        rec.phase(
                            now.0,
                            mkey(my_rank, dst, tag, seq),
                            obs::Phase::EagerTx {
                                rail: rail_idx as u8,
                            },
                        );
                        EagerFrag {
                            tag,
                            seq,
                            data: pw.data,
                        }
                    }
                    other => panic!("non-eager body {other:?} in aggregate"),
                })
                .collect();
            WirePayload::Aggregate(frags)
        } else {
            let pw = sub.pws.into_iter().next().expect("empty submission");
            match pw.body {
                PwBody::Eager {
                    tag,
                    seq,
                    send_req,
                } => {
                    eager_reqs.push(send_req);
                    track_eager(env_unacked, tag, seq, &pw.data);
                    rec.phase(
                        now.0,
                        mkey(my_rank, dst, tag, seq),
                        obs::Phase::EagerTx {
                            rail: rail_idx as u8,
                        },
                    );
                    WirePayload::Eager {
                        tag,
                        seq,
                        data: pw.data,
                    }
                }
                PwBody::Rts {
                    tag,
                    seq,
                    rdv_id,
                    len,
                } => {
                    // Retry mode: arm the RTS→CTS timer now that the RTS is
                    // actually leaving the node.
                    if let Some(rc) = retry {
                        let rdv = rdv_out
                            .get_mut(&rdv_id)
                            .expect("RTS for unknown rendezvous");
                        rdv.deadline = Some(now + rc.timeout);
                        rdv.timeout = rc.timeout;
                        rdv.last_rails = 1 << rail_idx;
                    }
                    rec.phase(
                        now.0,
                        mkey(my_rank, dst, tag, seq),
                        obs::Phase::RtsTx {
                            rail: rail_idx as u8,
                            len: len as u64,
                        },
                    );
                    WirePayload::Rts {
                        tag,
                        seq,
                        rdv_id,
                        len,
                    }
                }
                PwBody::Cts { rdv_id } => {
                    // The CTS answers `dst`'s rendezvous: the span key is
                    // the *sender's* message identity, looked up in the
                    // inbound rendezvous table.
                    if let Some(rdv) = rdv_in.get(&(dst, rdv_id)) {
                        rec.phase(
                            now.0,
                            mkey(dst, my_rank, rdv.tag, rdv.seq),
                            obs::Phase::CtsTx {
                                rail: rail_idx as u8,
                            },
                        );
                    }
                    WirePayload::Cts { rdv_id }
                }
                PwBody::Data { rdv_id, offset } => {
                    stats.add(stat::data_chunks_sent, 1);
                    let rdv = rdv_out
                        .get_mut(&rdv_id)
                        .expect("DATA chunk for unknown rendezvous");
                    rdv.bytes_remaining = rdv
                        .bytes_remaining
                        .checked_sub(pw.data.len())
                        .expect("chunk exceeds remaining bytes");
                    rdv.chunks_in_flight += 1;
                    rdv.last_rails |= 1 << rail_idx;
                    data_chunk_rdv = Some(rdv_id);
                    rec.phase(
                        now.0,
                        mkey(my_rank, dst, rdv.tag, rdv.seq),
                        obs::Phase::DataChunkTx {
                            rail: rail_idx as u8,
                            offset: offset as u64,
                            len: pw.data.len() as u64,
                        },
                    );
                    WirePayload::Data {
                        rdv_id,
                        offset,
                        data: pw.data,
                    }
                }
            }
        };
        let wire = NmWire::new(my_rank, dst, payload);
        let bytes = wire.wire_bytes();
        rec.inc("nmad.packets", 1);
        rec.observe("nmad.wire.bytes", bytes as u64);
        Outgoing {
            rail,
            dst_node,
            wire,
            bytes,
            eager_reqs,
            data_chunk_rdv,
        }
    }

    /// NIC send-completion: finish eager sends, account rendezvous chunks,
    /// and keep the pipeline moving.
    fn handle_sent(
        self: &Arc<Self>,
        sched: &Scheduler,
        eager_reqs: &[SendReqId],
        data_chunk_rdv: Option<u64>,
    ) {
        let mut fired = false;
        let t_ns = sched.now().0;
        {
            let mut inner = self.inner.lock();
            for &req in eager_reqs {
                Self::complete_send(&mut inner, t_ns, req);
                fired = true;
            }
            if let Some(rdv_id) = data_chunk_rdv {
                let retry = inner.cfg.retry;
                let finished = match inner.rdv_out.get_mut(&rdv_id) {
                    Some(rdv) => {
                        rdv.chunks_in_flight -= 1;
                        rdv.chunks_in_flight == 0 && rdv.bytes_remaining == 0
                    }
                    None => false,
                };
                if finished {
                    // The final DATA chunk cleared the local NIC — the
                    // `LastChunkSent` event: `sent/await-fin` (retry mode
                    // arms the FIN timer and holds the payload — local
                    // completion isn't delivery) or `sent/complete`.
                    let state = inner.rdv_out[&rdv_id].state;
                    match protocol::step(
                        state,
                        protocol::Event::LastChunkSent,
                        pctx(retry.is_some(), false, false, false),
                    ) {
                        Verdict::Step { actions, next, .. } => {
                            if actions.contains(&Action::ArmFinTimer) {
                                let rc = retry.expect("FIN timer implies retry");
                                let rdv = inner.rdv_out.get_mut(&rdv_id).unwrap();
                                rdv.state = next;
                                rdv.attempts = 0;
                                rdv.timeout = rc.timeout;
                                rdv.deadline = Some(sched.now() + rc.timeout);
                            } else {
                                debug_assert!(actions.contains(&Action::CompleteSend));
                                let rdv = inner.rdv_out.remove(&rdv_id).unwrap();
                                inner.rdv_dst.remove(&rdv_id);
                                Self::complete_send(&mut inner, t_ns, rdv.send_req);
                                fired = true;
                            }
                        }
                        Verdict::Ignore { .. } => {}
                        Verdict::Error => {
                            Self::protocol_error(&mut inner, "nmad.protocol_errors.sent");
                        }
                    }
                } else if !inner.rdv_out.contains_key(&rdv_id) {
                    // The entry is gone: in retry mode the receiver's FIN
                    // (driven by a retransmitted chunk) legally beat this
                    // NIC completion (`ignore/fin-beat-nic-completion`);
                    // otherwise it is a protocol error.
                    match protocol::step(
                        protocol::State::Gone,
                        protocol::Event::LastChunkSent,
                        pctx(retry.is_some(), false, false, false),
                    ) {
                        Verdict::Ignore { .. } => {}
                        _ => Self::protocol_error(&mut inner, "nmad.protocol_errors.sent"),
                    }
                }
            }
        }
        // Continue the committed pipeline (e.g. remaining window packets).
        self.try_commit(sched);
        if fired {
            self.fire_hook(sched);
        }
    }
}
