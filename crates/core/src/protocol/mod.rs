//! # The CH3 rendezvous protocol as data
//!
//! Every rendezvous variant this repo implements — the NewMadeleine core's
//! pipelined RTS → CTS → chunked DATA → FIN exchange with retransmission
//! and duplicate-RTS replay, the CH3 engine's buffered rendezvous, and the
//! CH3 DataAck-throttled depth-1 pipeline — is one state machine whose
//! transitions live in a single static table: `States × Events → (Guards,
//! Actions, NextState)`. The handlers in `core.rs` and `ch3.rs` are thin
//! adapters: they translate wire frames and local happenings into
//! [`Event`]s, look the transition up with [`step`], and execute the
//! emitted [`Action`]s against their concrete bookkeeping.
//!
//! Three consumers read the same table:
//!
//! * the **adapters** (runtime behaviour),
//! * the **small-model explorer** ([`explore`]) that walks every reachable
//!   interleaving of a bounded configuration and proves the table free of
//!   unreachable entries, invariant violations and incomplete terminals,
//! * the **conformance checker** ([`conformance`]) that replays recorded
//!   obs span streams through the table, turning every traced seed sweep
//!   into a conformance test of the artifact the explorer proved.
//!
//! ## Classification of (state, event) pairs
//!
//! [`step`] resolves a pair to exactly one of:
//!
//! * a [`Transition`] from [`TABLE`] — the protocol moves;
//! * a declared [`Ignore`] — legal no-op (e.g. a duplicated CTS while
//!   streaming). Ignores marked `defensive` are *believed unreachable*
//!   and exist only as tolerance; the explorer asserts they never fire.
//! * [`Verdict::Error`] — a malformed or stale frame. Adapters count
//!   these in `protocol_errors` and drop the frame; nothing panics.
//!
//! Adding a protocol (RDMA rendezvous, pipelined chunk scheduling) means
//! adding rows, not surgery: see DESIGN.md §10.

pub mod conformance;
pub mod explore;

/// Rendezvous protocol states. One enum covers both ends: a live
/// rendezvous id is in exactly one of these at each peer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum State {
    /// No entry for this rendezvous id — never started, or finished and
    /// forgotten. (The receiver's *tombstoned* finish is [`State::RDone`],
    /// which still replays FINs; `Gone` replays nothing.)
    Gone,
    /// Sender: RTS queued/sent, waiting for the clear-to-send.
    SWaitCts,
    /// Sender: payload handed to the transport; chunks (or throttled
    /// fragments) still moving.
    SStreaming,
    /// Sender, retry mode: every chunk left the local NIC; holding the
    /// payload until the receiver's FIN confirms delivery.
    SWaitFin,
    /// Receiver: CTS sent, assembling DATA chunks into the landing buffer.
    RWaitData,
    /// Receiver, retry mode: transfer complete, FIN sent, entry
    /// tombstoned — stragglers and replays get the FIN again.
    RDone,
}

/// Everything that can happen to a rendezvous: wire frames arriving,
/// local decisions, and retransmission timers firing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Event {
    /// Local: a send chose (or was forced onto) the rendezvous path.
    SendRdv,
    /// Wire: clear-to-send arrived at the sender.
    CtsRx,
    /// Wire: DataAck arrived (CH3 depth-1 throttled pipeline only).
    DataAckRx,
    /// Local: the final DATA chunk finished on the sender's NIC.
    LastChunkSent,
    /// Wire: the receiver's FIN arrived at the sender.
    FinRx,
    /// Timer: the sender's RTS (in `SWaitCts`) or FIN-wait (in
    /// `SWaitFin`) retransmission deadline passed.
    SendTimeout,
    /// Local: an inbound RTS met a posted receive.
    RtsMatched,
    /// Wire: a DATA chunk arrived at the receiver.
    DataRx,
    /// Wire: a *duplicate* RTS arrived (transport seq already delivered)
    /// — the handshake reply may have been lost.
    DupRts,
    /// Timer: the receiver saw no DATA progress before its deadline.
    RecvTimeout,
    /// Local: the membership supervisor declared the remote peer of this
    /// rendezvous dead. Fired once per in-flight entry by the drain
    /// protocol (never by a wire frame — a dead peer sends nothing).
    PeerDead,
    /// Local: the communicator epoch this rendezvous belongs to was
    /// revoked (DESIGN.md §13). Fired once per in-flight entry by the
    /// revoke quiesce — like [`Event::PeerDead`], never by a wire frame.
    Revoked,
    /// Wire: a collective frame arrived whose epoch predates the
    /// committed epoch (or whose agreement instance was retired). Always
    /// finds `Gone` — stale frames never reach live entries — and must
    /// be counted and dropped without reviving state.
    StaleEpoch,
}

/// Guard atoms. A transition fires when *all* its guards hold in the
/// adapter-supplied [`Ctx`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Guard {
    /// The retransmission layer is armed (core retry mode).
    Retry,
    NoRetry,
    /// CH3 `rdv_ack`: depth-1 DataAck-throttled fragment pipeline.
    AckMode,
    NoAckMode,
    /// CH3 buffered semantics: the send completes when the payload is
    /// handed to the transport, with no FIN or local-completion wait.
    Buffered,
    /// Core semantics: the transport chunks the payload and the sender
    /// tracks NIC completions (and, with [`Guard::Retry`], the FIN).
    Pipelined,
    /// The chunk lies inside the announced payload length.
    InRange,
    /// The chunk/fragment at hand completes the payload.
    Last,
    NotLast,
    /// The rendezvous path was entered because the eager credit pool ran
    /// dry (flow-control degradation), not because of message size.
    CreditFallback,
    /// The ordinary entry reason: payload above the eager threshold.
    OverThreshold,
}

/// The adapter's answers to the guard atoms for one event.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Ctx {
    pub retry: bool,
    pub ack_mode: bool,
    /// `true` = CH3 buffered semantics, `false` = core pipelined.
    pub buffered: bool,
    pub in_range: bool,
    pub last: bool,
    pub credit_fallback: bool,
}

impl Guard {
    /// Does this atom hold under `ctx`?
    pub fn holds(self, ctx: Ctx) -> bool {
        match self {
            Guard::Retry => ctx.retry,
            Guard::NoRetry => !ctx.retry,
            Guard::AckMode => ctx.ack_mode,
            Guard::NoAckMode => !ctx.ack_mode,
            Guard::Buffered => ctx.buffered,
            Guard::Pipelined => !ctx.buffered,
            Guard::InRange => ctx.in_range,
            Guard::Last => ctx.last,
            Guard::NotLast => !ctx.last,
            Guard::CreditFallback => ctx.credit_fallback,
            Guard::OverThreshold => !ctx.credit_fallback,
        }
    }
}

/// Effects a transition emits. Adapters execute them against their
/// concrete state (queues, buffers, timers, stats); the model executes
/// them against the abstract net. An action an implementation has no
/// concept of (e.g. [`Action::BumpRecvTimer`] in timer-less CH3) is a
/// documented no-op there.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    // -- sender ------------------------------------------------------
    /// Put the RTS on the wire (and create the outbound entry).
    SendRts,
    /// Arm the RTS→CTS retransmission timer (no-op without retry).
    ArmRtsTimer,
    /// Disarm the sender's running timer.
    DisarmTimer,
    /// Pipelined: hand the whole payload to the transport as chunkable
    /// DATA.
    QueueData,
    /// Buffered, unthrottled: stream every chunk now.
    SendAllData,
    /// Throttled: cut and send the next fragment.
    SendNextFragment,
    /// Arm the FIN-wait retransmission timer.
    ArmFinTimer,
    /// Surface the send completion.
    CompleteSend,
    /// Replay the RTS (timer fired before the CTS).
    ReplayRts,
    /// Replay the payload as one DATA covering every byte (timer fired
    /// before the FIN; receiver-side range tracking dedups).
    ReplayData,
    // -- receiver ----------------------------------------------------
    /// Allocate the landing buffer.
    AllocLanding,
    /// Put the CTS on the wire (and create the inbound entry).
    SendCts,
    /// Arm the CTS→DATA retransmission timer (no-op without retry).
    ArmRecvTimer,
    /// Copy the chunk into the landing buffer (range-tracked dedup under
    /// retry).
    CopyChunk,
    /// DATA progress arrived: push the receiver's timer out.
    BumpRecvTimer,
    /// Throttled: ask for the next fragment.
    SendDataAck,
    /// Put the FIN on the wire.
    SendFin,
    /// Tombstone the finished rendezvous (stragglers replay the FIN).
    Tombstone,
    /// Surface the receive completion.
    CompleteRecv,
    /// Replay the CTS (duplicate RTS or receiver timeout — the original
    /// may have been lost).
    ReplayCts,
    /// Replay the FIN (the sender clearly never saw it).
    ReplayFin,
    // -- membership drain --------------------------------------------
    /// Surface the send as *failed* (peer died before the rendezvous
    /// completed); release the payload and per-flow bookkeeping. The
    /// no-cancel rule (§2.2.1) still holds: the request completes — with
    /// an error, not silently.
    AbortSend,
    /// Surface the receive as failed and release the landing buffer.
    AbortRecv,
    // -- accounting --------------------------------------------------
    /// Count a stale cross-epoch collective frame
    /// (`membership_stale_epoch`) and drop it.
    CountStaleEpoch,
    /// Count a duplicated DATA chunk.
    CountDupData,
    /// Count a duplicated envelope (replayed RTS).
    CountDupEnvelope,
    /// Exponential backoff of the firing timer.
    Backoff,
}

/// One row of the transition table.
#[derive(Debug)]
pub struct Transition {
    pub state: State,
    pub event: Event,
    pub guards: &'static [Guard],
    pub actions: &'static [Action],
    pub next: State,
    /// Human-readable row name (explorer coverage reports, errors).
    pub name: &'static str,
}

/// One declared ignore: a (state, event, guards) combination that is a
/// legal no-op. `defensive` rows are believed unreachable and exist as
/// tolerance only — the explorer asserts they never fire.
#[derive(Debug)]
pub struct Ignore {
    pub state: State,
    pub event: Event,
    pub guards: &'static [Guard],
    pub defensive: bool,
    pub name: &'static str,
}

use Action as A;
use Event as E;
use Guard as G;
use State as S;

/// The rendezvous protocol. Row order is documentation (entry, sender
/// data path, receiver data path, replay, timers); lookup is by
/// (state, event, guards), not position.
pub static TABLE: &[Transition] = &[
    // -- entry ---------------------------------------------------------
    Transition {
        state: S::Gone,
        event: E::SendRdv,
        guards: &[G::OverThreshold],
        actions: &[A::SendRts, A::ArmRtsTimer],
        next: S::SWaitCts,
        name: "entry/size",
    },
    Transition {
        state: S::Gone,
        event: E::SendRdv,
        guards: &[G::CreditFallback],
        actions: &[A::SendRts, A::ArmRtsTimer],
        next: S::SWaitCts,
        name: "entry/credit-fallback",
    },
    Transition {
        state: S::Gone,
        event: E::RtsMatched,
        guards: &[],
        actions: &[A::AllocLanding, A::SendCts, A::ArmRecvTimer],
        next: S::RWaitData,
        name: "entry/rts-matched",
    },
    // -- sender: clear-to-send -----------------------------------------
    Transition {
        state: S::SWaitCts,
        event: E::CtsRx,
        guards: &[G::Pipelined],
        actions: &[A::DisarmTimer, A::QueueData],
        next: S::SStreaming,
        name: "cts/pipelined",
    },
    Transition {
        state: S::SWaitCts,
        event: E::CtsRx,
        guards: &[G::Buffered, G::NoAckMode],
        actions: &[A::SendAllData, A::CompleteSend],
        next: S::Gone,
        name: "cts/buffered",
    },
    Transition {
        state: S::SWaitCts,
        event: E::CtsRx,
        guards: &[G::Buffered, G::AckMode, G::NotLast],
        actions: &[A::SendNextFragment],
        next: S::SStreaming,
        name: "cts/throttled",
    },
    Transition {
        state: S::SWaitCts,
        event: E::CtsRx,
        guards: &[G::Buffered, G::AckMode, G::Last],
        actions: &[A::SendNextFragment, A::CompleteSend],
        next: S::Gone,
        name: "cts/throttled-single-fragment",
    },
    // -- sender: throttled fragment pipeline ---------------------------
    Transition {
        state: S::SStreaming,
        event: E::DataAckRx,
        guards: &[G::AckMode, G::NotLast],
        actions: &[A::SendNextFragment],
        next: S::SStreaming,
        name: "ack/next-fragment",
    },
    Transition {
        state: S::SStreaming,
        event: E::DataAckRx,
        guards: &[G::AckMode, G::Last],
        actions: &[A::SendNextFragment, A::CompleteSend],
        next: S::Gone,
        name: "ack/final-fragment",
    },
    // -- sender: local NIC completion of the last chunk ----------------
    Transition {
        state: S::SStreaming,
        event: E::LastChunkSent,
        guards: &[G::Retry],
        actions: &[A::ArmFinTimer],
        next: S::SWaitFin,
        name: "sent/await-fin",
    },
    Transition {
        state: S::SStreaming,
        event: E::LastChunkSent,
        guards: &[G::NoRetry],
        actions: &[A::CompleteSend],
        next: S::Gone,
        name: "sent/complete",
    },
    // -- sender: FIN ---------------------------------------------------
    Transition {
        state: S::SStreaming,
        event: E::FinRx,
        guards: &[G::Retry],
        actions: &[A::CompleteSend],
        next: S::Gone,
        name: "fin/early",
    },
    Transition {
        state: S::SWaitFin,
        event: E::FinRx,
        guards: &[G::Retry],
        actions: &[A::CompleteSend],
        next: S::Gone,
        name: "fin/confirmed",
    },
    // A FIN reaching a sender that never saw a CTS can only come from a
    // revoke-tombstoned receiver (an honest receiver reaches `RDone` only
    // after all the data, which requires the CTS to have arrived first).
    // The receiver has declared the message over without taking a byte,
    // so the send aborts rather than completing.
    Transition {
        state: S::SWaitCts,
        event: E::FinRx,
        guards: &[G::Retry],
        actions: &[A::DisarmTimer, A::AbortSend],
        next: S::Gone,
        name: "fin/tombstone",
    },
    // -- receiver: DATA ------------------------------------------------
    Transition {
        state: S::RWaitData,
        event: E::DataRx,
        guards: &[G::InRange, G::NotLast, G::NoAckMode],
        actions: &[A::CopyChunk, A::BumpRecvTimer],
        next: S::RWaitData,
        name: "data/chunk",
    },
    Transition {
        state: S::RWaitData,
        event: E::DataRx,
        guards: &[G::InRange, G::NotLast, G::AckMode],
        actions: &[A::CopyChunk, A::SendDataAck],
        next: S::RWaitData,
        name: "data/chunk-acked",
    },
    Transition {
        state: S::RWaitData,
        event: E::DataRx,
        guards: &[G::InRange, G::Last, G::Retry],
        actions: &[A::CopyChunk, A::SendFin, A::Tombstone, A::CompleteRecv],
        next: S::RDone,
        name: "data/last-retry",
    },
    Transition {
        state: S::RWaitData,
        event: E::DataRx,
        guards: &[G::InRange, G::Last, G::NoRetry],
        actions: &[A::CopyChunk, A::CompleteRecv],
        next: S::Gone,
        name: "data/last",
    },
    // -- receiver: replay on stale frames ------------------------------
    Transition {
        state: S::RDone,
        event: E::DataRx,
        guards: &[G::Retry],
        actions: &[A::CountDupData, A::ReplayFin],
        next: S::RDone,
        name: "replay/fin-on-data",
    },
    Transition {
        state: S::RDone,
        event: E::DupRts,
        guards: &[G::Retry],
        actions: &[A::CountDupEnvelope, A::ReplayFin],
        next: S::RDone,
        name: "replay/fin-on-rts",
    },
    Transition {
        state: S::RWaitData,
        event: E::DupRts,
        guards: &[G::Retry],
        actions: &[A::CountDupEnvelope, A::ReplayCts],
        next: S::RWaitData,
        name: "replay/cts-on-rts",
    },
    Transition {
        state: S::Gone,
        event: E::DupRts,
        guards: &[G::Retry],
        actions: &[A::CountDupEnvelope],
        next: S::Gone,
        name: "replay/rts-unmatched",
    },
    // -- membership drain: the remote peer died ------------------------
    Transition {
        state: S::SWaitCts,
        event: E::PeerDead,
        guards: &[G::Retry],
        actions: &[A::DisarmTimer, A::AbortSend],
        next: S::Gone,
        name: "dead/swaitcts",
    },
    Transition {
        state: S::SStreaming,
        event: E::PeerDead,
        guards: &[G::Retry],
        actions: &[A::DisarmTimer, A::AbortSend],
        next: S::Gone,
        name: "dead/sstreaming",
    },
    Transition {
        state: S::SWaitFin,
        event: E::PeerDead,
        guards: &[G::Retry],
        actions: &[A::DisarmTimer, A::AbortSend],
        next: S::Gone,
        name: "dead/swaitfin",
    },
    Transition {
        state: S::RWaitData,
        event: E::PeerDead,
        guards: &[G::Retry],
        actions: &[A::DisarmTimer, A::AbortRecv],
        next: S::Gone,
        name: "dead/rwaitdata",
    },
    // A tombstone only exists to replay FINs at a sender that might
    // retransmit; a dead sender never will. Drop it without surfacing
    // anything — the receive completed long ago.
    Transition {
        state: S::RDone,
        event: E::PeerDead,
        guards: &[G::Retry],
        actions: &[],
        next: S::Gone,
        name: "dead/rdone",
    },
    // -- communicator revoke: the epoch was poisoned ---------------------
    // Mirrors the PeerDead drain row-for-row: every in-flight entry of a
    // revoked epoch is cancelled through the table, completions surface
    // as counted errors, and the conformance checker replays the same
    // `Aborted` phases. Only retry mode has a membership/recovery layer.
    Transition {
        state: S::SWaitCts,
        event: E::Revoked,
        guards: &[G::Retry],
        actions: &[A::DisarmTimer, A::AbortSend],
        next: S::Gone,
        name: "revoked/swaitcts",
    },
    Transition {
        state: S::SStreaming,
        event: E::Revoked,
        guards: &[G::Retry],
        actions: &[A::DisarmTimer, A::AbortSend],
        next: S::Gone,
        name: "revoked/sstreaming",
    },
    Transition {
        state: S::SWaitFin,
        event: E::Revoked,
        guards: &[G::Retry],
        actions: &[A::DisarmTimer, A::AbortSend],
        next: S::Gone,
        name: "revoked/swaitfin",
    },
    // The aborted inbound rendezvous leaves a tombstone: the sender may
    // not have learned the revoke yet and its in-flight DATA must keep
    // finding `RDone` (→ FIN replay telling it to stop), exactly like a
    // completed transfer — `Gone` is reserved for states DATA can never
    // legally reach.
    Transition {
        state: S::RWaitData,
        event: E::Revoked,
        guards: &[G::Retry],
        actions: &[A::DisarmTimer, A::AbortRecv, A::Tombstone],
        next: S::RDone,
        name: "revoked/rwaitdata",
    },
    // A tombstone of a revoked epoch replays FINs to nobody: the sender's
    // flow was cancelled by its own revoke quiesce. Drop it silently.
    Transition {
        state: S::RDone,
        event: E::Revoked,
        guards: &[G::Retry],
        actions: &[],
        next: S::RDone,
        name: "revoked/rdone",
    },
    // -- epoch hygiene: stale cross-epoch frames ------------------------
    // A collective frame from a superseded epoch (or a retired agreement
    // instance) never matches live state — the quiesce/advance purge ran
    // first — so it always finds `Gone`. The row counts it and stays
    // `Gone`: dropped, never a panic, never revived state.
    Transition {
        state: S::Gone,
        event: E::StaleEpoch,
        guards: &[G::Retry],
        actions: &[A::CountStaleEpoch],
        next: S::Gone,
        name: "stale/epoch",
    },
    // -- timers --------------------------------------------------------
    Transition {
        state: S::SWaitCts,
        event: E::SendTimeout,
        guards: &[G::Retry],
        actions: &[A::Backoff, A::ReplayRts],
        next: S::SWaitCts,
        name: "timer/rts",
    },
    Transition {
        state: S::SWaitFin,
        event: E::SendTimeout,
        guards: &[G::Retry],
        actions: &[A::Backoff, A::ReplayData],
        next: S::SWaitFin,
        name: "timer/data",
    },
    Transition {
        state: S::RWaitData,
        event: E::RecvTimeout,
        guards: &[G::Retry],
        actions: &[A::Backoff, A::ReplayCts],
        next: S::RWaitData,
        name: "timer/cts",
    },
];

/// Declared ignores — legal no-ops, all justified by retransmission
/// (without retry no frame is ever duplicated or replayed, so every
/// stray frame is a protocol error instead).
pub static IGNORES: &[Ignore] = &[
    Ignore {
        state: S::SStreaming,
        event: E::CtsRx,
        guards: &[G::Retry],
        defensive: false,
        name: "ignore/dup-cts-streaming",
    },
    Ignore {
        state: S::SWaitFin,
        event: E::CtsRx,
        guards: &[G::Retry],
        defensive: false,
        name: "ignore/dup-cts-waitfin",
    },
    Ignore {
        state: S::Gone,
        event: E::CtsRx,
        guards: &[G::Retry],
        defensive: false,
        name: "ignore/straggler-cts",
    },
    Ignore {
        state: S::Gone,
        event: E::FinRx,
        guards: &[G::Retry],
        defensive: false,
        name: "ignore/dup-fin",
    },
    Ignore {
        state: S::Gone,
        event: E::LastChunkSent,
        guards: &[G::Retry],
        defensive: false,
        name: "ignore/fin-beat-nic-completion",
    },
    // A death verdict can reach a flow whose local entry already
    // completed and left (e.g. the sender finished; the peer died while
    // only the remote side still had state). Nothing to drain.
    Ignore {
        state: S::Gone,
        event: E::PeerDead,
        guards: &[G::Retry],
        defensive: false,
        name: "ignore/dead-gone",
    },
    // Same shape for a revoke: one side of a flow can learn of the
    // revoke after its local entry already completed and left.
    Ignore {
        state: S::Gone,
        event: E::Revoked,
        guards: &[G::Retry],
        defensive: false,
        name: "ignore/revoked-gone",
    },
    // An in-flight DATA chunk can only exist after a CTS, a CTS only
    // after the inbound entry exists, and the entry only leaves via the
    // tombstone — so DATA should never find `Gone`. Tolerated as a drop
    // (the sender's FIN timer replays), but the explorer proves it
    // unreachable.
    Ignore {
        state: S::Gone,
        event: E::DataRx,
        guards: &[G::Retry],
        defensive: true,
        name: "ignore/data-before-reentry",
    },
];

/// The verdict of one [`step`] lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// A table row fired: run `actions`, move to `next`. `index` is the
    /// row's position in [`TABLE`] (coverage tracking).
    Step {
        index: usize,
        actions: &'static [Action],
        next: State,
    },
    /// A declared ignore matched: do nothing. `index` into [`IGNORES`].
    Ignore { index: usize, defensive: bool },
    /// No transition and no declared ignore: a malformed or stale frame.
    /// Adapters count it (`protocol_errors`) and drop the frame.
    Error,
}

/// Look up the unique classification of (state, event) under `ctx`.
///
/// [`validate_table`] proves at most one table row *or* one ignore can
/// match any (state, event, ctx); this scan relies on that.
pub fn step(state: State, event: Event, ctx: Ctx) -> Verdict {
    for (index, t) in TABLE.iter().enumerate() {
        if t.state == state && t.event == event && t.guards.iter().all(|g| g.holds(ctx)) {
            return Verdict::Step {
                index,
                actions: t.actions,
                next: t.next,
            };
        }
    }
    for (index, ig) in IGNORES.iter().enumerate() {
        if ig.state == state && ig.event == event && ig.guards.iter().all(|g| g.holds(ctx)) {
            return Verdict::Ignore {
                index,
                defensive: ig.defensive,
            };
        }
    }
    Verdict::Error
}

/// Every guard context, by exhaustive enumeration of the atom cube.
fn all_ctxs() -> impl Iterator<Item = Ctx> {
    (0u32..64).map(|bits| Ctx {
        retry: bits & 1 != 0,
        ack_mode: bits & 2 != 0,
        buffered: bits & 4 != 0,
        in_range: bits & 8 != 0,
        last: bits & 16 != 0,
        credit_fallback: bits & 32 != 0,
    })
}

/// Structural soundness of the table, checked exhaustively over the
/// guard cube:
///
/// * **determinism** — no (state, event, ctx) matches two table rows, or
///   a table row and an ignore;
/// * **satisfiability** — every row and ignore fires under at least one
///   ctx (no contradictory guard sets / dead rows).
///
/// Returns the list of violations (empty = sound). Asserted by the
/// explorer suite and cheap enough to run in debug adapters.
pub fn validate_table() -> Vec<String> {
    let mut problems = Vec::new();
    let mut row_sat = vec![false; TABLE.len()];
    let mut ig_sat = vec![false; IGNORES.len()];
    let states = [
        S::Gone,
        S::SWaitCts,
        S::SStreaming,
        S::SWaitFin,
        S::RWaitData,
        S::RDone,
    ];
    let events = [
        E::SendRdv,
        E::CtsRx,
        E::DataAckRx,
        E::LastChunkSent,
        E::FinRx,
        E::SendTimeout,
        E::RtsMatched,
        E::DataRx,
        E::DupRts,
        E::RecvTimeout,
        E::PeerDead,
        E::Revoked,
        E::StaleEpoch,
    ];
    for &state in &states {
        for &event in &events {
            for ctx in all_ctxs() {
                let rows: Vec<usize> = TABLE
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| {
                        t.state == state
                            && t.event == event
                            && t.guards.iter().all(|g| g.holds(ctx))
                    })
                    .map(|(i, _)| i)
                    .collect();
                let igs: Vec<usize> = IGNORES
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| {
                        g.state == state
                            && g.event == event
                            && g.guards.iter().all(|gg| gg.holds(ctx))
                    })
                    .map(|(i, _)| i)
                    .collect();
                if rows.len() > 1 {
                    problems.push(format!(
                        "ambiguous: {state:?} × {event:?} × {ctx:?} matches rows {:?}",
                        rows.iter().map(|&i| TABLE[i].name).collect::<Vec<_>>()
                    ));
                }
                if !rows.is_empty() && !igs.is_empty() {
                    problems.push(format!(
                        "conflict: {state:?} × {event:?} × {ctx:?} matches row {} and ignore {}",
                        TABLE[rows[0]].name, IGNORES[igs[0]].name
                    ));
                }
                if igs.len() > 1 {
                    problems.push(format!(
                        "ambiguous ignores: {state:?} × {event:?} × {ctx:?}: {:?}",
                        igs.iter().map(|&i| IGNORES[i].name).collect::<Vec<_>>()
                    ));
                }
                for i in rows {
                    row_sat[i] = true;
                }
                for i in igs {
                    ig_sat[i] = true;
                }
            }
        }
    }
    for (i, sat) in row_sat.iter().enumerate() {
        if !sat {
            problems.push(format!("unsatisfiable guards on row {}", TABLE[i].name));
        }
    }
    for (i, sat) in ig_sat.iter().enumerate() {
        if !sat {
            problems.push(format!("unsatisfiable guards on ignore {}", IGNORES[i].name));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sound() {
        let problems = validate_table();
        assert!(problems.is_empty(), "{problems:#?}");
    }

    #[test]
    fn core_happy_path_steps() {
        let ctx = Ctx {
            retry: true,
            in_range: true,
            ..Ctx::default()
        };
        let Verdict::Step { next, .. } = step(S::Gone, E::SendRdv, ctx) else {
            panic!("entry must step");
        };
        assert_eq!(next, S::SWaitCts);
        let Verdict::Step { next, .. } = step(S::SWaitCts, E::CtsRx, ctx) else {
            panic!("CTS must step");
        };
        assert_eq!(next, S::SStreaming);
        let Verdict::Step { next, .. } = step(S::SStreaming, E::LastChunkSent, ctx) else {
            panic!("last chunk must step");
        };
        assert_eq!(next, S::SWaitFin);
        let Verdict::Step { next, actions, .. } = step(S::SWaitFin, E::FinRx, ctx) else {
            panic!("FIN must step");
        };
        assert_eq!(next, S::Gone);
        assert!(actions.contains(&A::CompleteSend));
    }

    #[test]
    fn stray_frames_are_errors_without_retry() {
        let ctx = Ctx::default();
        assert_eq!(step(S::Gone, E::CtsRx, ctx), Verdict::Error);
        assert_eq!(step(S::Gone, E::DataRx, ctx), Verdict::Error);
        assert_eq!(step(S::Gone, E::FinRx, ctx), Verdict::Error);
        assert_eq!(step(S::Gone, E::DataAckRx, ctx), Verdict::Error);
    }

    #[test]
    fn out_of_range_chunk_is_an_error_even_live() {
        let ctx = Ctx {
            retry: true,
            in_range: false,
            ..Ctx::default()
        };
        assert_eq!(step(S::RWaitData, E::DataRx, ctx), Verdict::Error);
    }

    #[test]
    fn peer_death_drains_every_live_state() {
        let ctx = Ctx {
            retry: true,
            ..Ctx::default()
        };
        for (state, want) in [
            (S::SWaitCts, A::AbortSend),
            (S::SStreaming, A::AbortSend),
            (S::SWaitFin, A::AbortSend),
            (S::RWaitData, A::AbortRecv),
        ] {
            let Verdict::Step { actions, next, .. } = step(state, E::PeerDead, ctx) else {
                panic!("{state:?} × PeerDead must step");
            };
            assert_eq!(next, S::Gone, "{state:?} drains to Gone");
            assert!(actions.contains(&want), "{state:?} must {want:?}");
        }
        // Tombstones are dropped silently; Gone is a declared ignore.
        let Verdict::Step { actions, next, .. } = step(S::RDone, E::PeerDead, ctx) else {
            panic!("RDone × PeerDead must step");
        };
        assert_eq!(next, S::Gone);
        assert!(actions.is_empty(), "a tombstone drains without surfacing");
        assert!(matches!(
            step(S::Gone, E::PeerDead, ctx),
            Verdict::Ignore { defensive: false, .. }
        ));
        // Without retry there is no membership layer: stepping PeerDead
        // is a caller bug, classified as an error.
        assert_eq!(step(S::SWaitCts, E::PeerDead, Ctx::default()), Verdict::Error);
    }

    #[test]
    fn revoke_drains_every_live_state() {
        let ctx = Ctx {
            retry: true,
            ..Ctx::default()
        };
        for (state, want, end) in [
            (S::SWaitCts, A::AbortSend, S::Gone),
            (S::SStreaming, A::AbortSend, S::Gone),
            (S::SWaitFin, A::AbortSend, S::Gone),
            // The receiver tombstones so straggling DATA keeps finding
            // RDone (FIN replay), never Gone.
            (S::RWaitData, A::AbortRecv, S::RDone),
        ] {
            let Verdict::Step { actions, next, .. } = step(state, E::Revoked, ctx) else {
                panic!("{state:?} × Revoked must step");
            };
            assert_eq!(next, end, "{state:?} quiesces to {end:?}");
            assert!(actions.contains(&want), "{state:?} must {want:?}");
        }
        // A revoked tombstone stays a tombstone (it is keyed per peer and
        // reclaimed by the peer's own death); Gone is a declared ignore.
        let Verdict::Step { actions, next, .. } = step(S::RDone, E::Revoked, ctx) else {
            panic!("RDone × Revoked must step");
        };
        assert_eq!(next, S::RDone);
        assert!(actions.is_empty());
        assert!(matches!(
            step(S::Gone, E::Revoked, ctx),
            Verdict::Ignore { defensive: false, .. }
        ));
        // Without retry there is no recovery layer.
        assert_eq!(step(S::SWaitCts, E::Revoked, Ctx::default()), Verdict::Error);
    }

    #[test]
    fn stale_epoch_frames_are_counted_drops() {
        let ctx = Ctx {
            retry: true,
            ..Ctx::default()
        };
        let Verdict::Step { actions, next, .. } = step(S::Gone, E::StaleEpoch, ctx) else {
            panic!("Gone × StaleEpoch must step");
        };
        assert_eq!(next, S::Gone, "a stale frame revives nothing");
        assert_eq!(actions, [A::CountStaleEpoch]);
        // Stale classification only exists with the recovery layer armed.
        assert_eq!(step(S::Gone, E::StaleEpoch, Ctx::default()), Verdict::Error);
    }

    #[test]
    fn replayed_frames_are_tolerated_with_retry() {
        let ctx = Ctx {
            retry: true,
            ..Ctx::default()
        };
        assert!(matches!(
            step(S::Gone, E::CtsRx, ctx),
            Verdict::Ignore { defensive: false, .. }
        ));
        assert!(matches!(
            step(S::Gone, E::FinRx, ctx),
            Verdict::Ignore { defensive: false, .. }
        ));
        assert!(matches!(
            step(S::RDone, E::DataRx, ctx),
            Verdict::Step { .. }
        ));
    }
}
