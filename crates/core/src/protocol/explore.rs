//! # Bounded exhaustive exploration of the rendezvous table
//!
//! A small-model checker for [`super::TABLE`]: a handful of messages, a
//! network modelled as a bag of frames (delivery order free — reordering
//! is inherent), and budgeted fault operators (drop, duplicate, timer
//! fire). The explorer walks **every** reachable interleaving by DFS with
//! a visited-state memo and, on every edge, drives the delivered frame or
//! local happening through [`super::step`] — exactly the lookup the
//! runtime adapters perform.
//!
//! What a run proves for its configuration:
//!
//! * **no protocol errors** — no reachable (state, event, ctx) falls off
//!   the table (other than declared ignores);
//! * **no defensive firings** — rows declared unreachable stay so;
//! * **lifecycle soundness** — completions fire exactly once per side,
//!   and a receive only completes with every payload chunk assembled;
//! * **eventual completion** — every terminal state (no enabled moves)
//!   has both sides of every message complete and the net drained;
//! * **coverage** — which table rows and ignores fired, so a suite of
//!   configurations can assert there are *no unreachable table entries*.
//!
//! Soundness of the memo: violations and coverage are edge properties
//! and every enabled edge is executed (even into already-visited
//! states); terminal properties are checked per distinct state. Budgets
//! make the space finite; the drop budget is tied to the sender timeout
//! budget (a drop is only enabled while a recovery timer firing remains)
//! so exhausted-budget dead ends cannot masquerade as protocol bugs.

use std::collections::HashSet;

use super::{step, Action, Ctx, Event, State, Verdict, IGNORES, TABLE};

/// One modelled message: an independent rendezvous flow `src → dst`.
/// Ranks are descriptive (they name the 2–3 rank shape of a config);
/// flows do not otherwise interact — transport-level envelope ordering
/// across flows is the sequencing layer's concern, tested elsewhere.
#[derive(Clone, Copy, Debug)]
pub struct MsgCfg {
    pub src: u8,
    pub dst: u8,
    /// DATA chunks the payload splits into (1–3 keeps the model small).
    pub chunks: u8,
}

/// One bounded model configuration.
#[derive(Clone, Debug)]
pub struct ModelCfg {
    pub name: &'static str,
    pub msgs: Vec<MsgCfg>,
    /// Core retry mode (arms timers, FIN leg, replay rows).
    pub retry: bool,
    /// CH3 DataAck-throttled pipeline (implies `buffered`).
    pub ack_mode: bool,
    /// CH3 buffered semantics (sender completes on handoff).
    pub buffered: bool,
    /// Enter the rendezvous via the credit-exhaustion fallback guard.
    pub credit_fallback: bool,
    /// Per-message frame-drop budget (needs `retry` to recover).
    pub max_drops: u8,
    /// Which frame kinds may be duplicated (once per original frame).
    pub dup_rts: bool,
    pub dup_cts: bool,
    pub dup_data: bool,
    pub dup_fin: bool,
    /// Per-message timer-firing budgets.
    pub max_send_timeouts: u8,
    pub max_recv_timeouts: u8,
    /// Membership: either rank of a message may die (once per message) at
    /// any point after the send starts; the survivor side is driven
    /// through the `PeerDead` drain rows. Requires `retry` (membership
    /// rides the retransmission machinery) and core `!buffered` semantics.
    pub peer_death: bool,
    /// Communicator recovery: either side of a message may independently
    /// learn an epoch revoke (once per side) at any point, quiescing its
    /// machine through the `revoked/*` rows; envelopes reaching a revoked
    /// side are stale cross-epoch frames driven through `stale/epoch`.
    /// Requires `retry && !buffered` like `peer_death`.
    pub revoke: bool,
}

impl ModelCfg {
    /// A fault-free configuration skeleton.
    pub fn clean(name: &'static str, msgs: Vec<MsgCfg>) -> ModelCfg {
        ModelCfg {
            name,
            msgs,
            retry: false,
            ack_mode: false,
            buffered: false,
            credit_fallback: false,
            max_drops: 0,
            dup_rts: false,
            dup_cts: false,
            dup_data: false,
            dup_fin: false,
            max_send_timeouts: 0,
            max_recv_timeouts: 0,
            peer_death: false,
            revoke: false,
        }
    }

    fn faults_armed(&self) -> bool {
        self.max_drops > 0
            || self.dup_rts
            || self.dup_cts
            || self.dup_data
            || self.dup_fin
            || self.max_send_timeouts > 0
            || self.max_recv_timeouts > 0
            || self.peer_death
            || self.revoke
    }
}

/// Frames in flight. `Data` carries the chunk set it covers as a bitmask
/// (a timer replay covers the whole payload in one frame, exactly like
/// the runtime's offset-0 full replay).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum FrameKind {
    Rts,
    Cts,
    Data { mask: u8 },
    Fin,
    DataAck,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Frame {
    msg: u8,
    kind: FrameKind,
    /// Remaining duplications of this physical frame (copies carry 0).
    dup_left: u8,
}

/// Per-message model state.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct MsgSt {
    s: State,
    r: State,
    started: bool,
    posted: bool,
    /// The transport delivered an RTS with this flow's sequence number
    /// (so any further RTS is a duplicate).
    rts_delivered: bool,
    /// An RTS sits in the unexpected queue awaiting the post.
    unexpected_rts: bool,
    s_done: bool,
    r_done: bool,
    /// Receiver: chunk bitmask assembled so far.
    got: u8,
    /// Throttled sender: fragments sent so far.
    cursor: u8,
    /// Pipelined sender: final local NIC completion outstanding.
    pending_last: bool,
    s_timeouts: u8,
    r_timeouts: u8,
    drops: u8,
    /// Membership: the sender / receiver rank of this flow is dead. A
    /// dead side runs no moves and is exempt from terminal completion;
    /// its `done` may be a drain-abort rather than a success.
    s_dead: bool,
    r_dead: bool,
    /// Recovery: the sender / receiver rank learned the epoch revoke and
    /// quiesced this flow. The rank stays alive (frames still arrive and
    /// are classified stale); new posts/starts fail fast.
    s_revoked: bool,
    r_revoked: bool,
}

impl MsgSt {
    fn fresh() -> MsgSt {
        MsgSt {
            s: State::Gone,
            r: State::Gone,
            started: false,
            posted: false,
            rts_delivered: false,
            unexpected_rts: false,
            s_done: false,
            r_done: false,
            got: 0,
            cursor: 0,
            pending_last: false,
            s_timeouts: 0,
            r_timeouts: 0,
            drops: 0,
            s_dead: false,
            r_dead: false,
            s_revoked: false,
            r_revoked: false,
        }
    }
}

/// The full model state: per-message machines plus the frame bag,
/// canonicalized (sorted net) so the visited memo is order-insensitive.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Model {
    msgs: Vec<MsgSt>,
    net: Vec<Frame>,
}

/// One enabled move from a model state.
#[derive(Clone, Copy, Debug)]
enum Move {
    /// The application starts message `i`'s send.
    Start(u8),
    /// The application posts message `i`'s receive.
    Post(u8),
    /// Deliver `net[j]`.
    Deliver(usize),
    /// Drop `net[j]` (fault; budgeted, recovery reserved).
    Drop(usize),
    /// Duplicate `net[j]` (fault; per-frame budget).
    Dup(usize),
    /// Message `i`'s final DATA chunk clears the local NIC.
    LastSent(u8),
    /// Message `i`'s sender timer fires.
    SendTimeout(u8),
    /// Message `i`'s receiver timer fires.
    RecvTimeout(u8),
    /// Membership: message `i`'s sender (`true`) or receiver (`false`)
    /// rank dies. The wire eats the flow's in-flight frames and the
    /// survivor side steps `PeerDead` through the drain rows.
    Kill(u8, bool),
    /// Recovery: one side of message `i` (`true` = receiver) learns the
    /// epoch revoke and quiesces through the `revoked/*` rows. Each side
    /// learns independently, at most once, in any interleaving — the
    /// poison propagates peer-to-peer with no ordering guarantee.
    RevokeSide(u8, bool),
}

/// Exploration results for one configuration.
#[derive(Clone, Debug)]
pub struct Stats {
    pub name: &'static str,
    /// Distinct model states visited.
    pub states: u64,
    /// Moves executed — distinct one-step extensions of explored
    /// interleavings (every edge, including edges into already-visited
    /// states).
    pub edges: u64,
    /// Distinct terminal (move-free) states, all proven complete.
    pub terminals: u64,
    /// Table-row firing counts, indexed like [`TABLE`].
    pub fired_rows: Vec<u64>,
    /// Ignore firing counts, indexed like [`IGNORES`].
    pub fired_ignores: Vec<u64>,
}

impl Stats {
    fn new(name: &'static str) -> Stats {
        Stats {
            name,
            states: 0,
            edges: 0,
            terminals: 0,
            fired_rows: vec![0; TABLE.len()],
            fired_ignores: vec![0; IGNORES.len()],
        }
    }

    /// Merge another configuration's counts into this one (suite-level
    /// coverage).
    pub fn absorb(&mut self, other: &Stats) {
        self.states += other.states;
        self.edges += other.edges;
        self.terminals += other.terminals;
        for (a, b) in self.fired_rows.iter_mut().zip(&other.fired_rows) {
            *a += b;
        }
        for (a, b) in self.fired_ignores.iter_mut().zip(&other.fired_ignores) {
            *a += b;
        }
    }

    /// Names of table rows this exploration never fired.
    pub fn unreached_rows(&self) -> Vec<&'static str> {
        self.fired_rows
            .iter()
            .enumerate()
            .filter(|(_, &n)| n == 0)
            .map(|(i, _)| TABLE[i].name)
            .collect()
    }

    /// Names of non-defensive ignores this exploration never fired.
    pub fn unreached_ignores(&self) -> Vec<&'static str> {
        self.fired_ignores
            .iter()
            .enumerate()
            .filter(|(i, &n)| n == 0 && !IGNORES[*i].defensive)
            .map(|(i, _)| IGNORES[i].name)
            .collect()
    }
}

fn full_mask(chunks: u8) -> u8 {
    (1u16 << chunks) as u8 - 1
}

fn dup_budget(cfg: &ModelCfg, kind: FrameKind) -> u8 {
    let on = match kind {
        FrameKind::Rts => cfg.dup_rts,
        FrameKind::Cts => cfg.dup_cts,
        FrameKind::Data { .. } => cfg.dup_data,
        FrameKind::Fin => cfg.dup_fin,
        FrameKind::DataAck => false,
    };
    on as u8
}

/// Run the table lookup for message `i`, enforce the explorer-level
/// invariants, execute the emitted actions. `last`/`credit_fallback`
/// feed the guard ctx; `mask` is the chunk set a `DataRx` delivered.
fn fire(
    m: &mut Model,
    cfg: &ModelCfg,
    stats: &mut Stats,
    i: usize,
    event: Event,
    last: bool,
    mask: u8,
) -> Result<(), String> {
    let receiver_side = matches!(event, Event::RtsMatched | Event::DataRx | Event::DupRts | Event::RecvTimeout);
    debug_assert!(
        !matches!(event, Event::PeerDead | Event::Revoked | Event::StaleEpoch),
        "{event:?} has no intrinsic side; use fire_on"
    );
    fire_on(m, cfg, stats, i, event, receiver_side, last, mask)
}

/// [`fire`] with the acting side named explicitly — needed for
/// [`Event::PeerDead`], which is fired on whichever side survived.
#[allow(clippy::too_many_arguments)]
fn fire_on(
    m: &mut Model,
    cfg: &ModelCfg,
    stats: &mut Stats,
    i: usize,
    event: Event,
    receiver_side: bool,
    last: bool,
    mask: u8,
) -> Result<(), String> {
    let state = if receiver_side { m.msgs[i].r } else { m.msgs[i].s };
    let ctx = Ctx {
        retry: cfg.retry,
        ack_mode: cfg.ack_mode,
        buffered: cfg.buffered,
        in_range: true,
        last,
        credit_fallback: cfg.credit_fallback,
    };
    match step(state, event, ctx) {
        Verdict::Step { index, actions, next } => {
            stats.fired_rows[index] += 1;
            for &a in actions {
                exec(m, cfg, i, a, mask)?;
            }
            if receiver_side {
                m.msgs[i].r = next;
            } else {
                m.msgs[i].s = next;
            }
            Ok(())
        }
        Verdict::Ignore { index, defensive } => {
            if defensive {
                return Err(format!(
                    "defensive ignore `{}` fired: {state:?} × {event:?} reached in msg {i} of {:?}",
                    IGNORES[index].name, m
                ));
            }
            stats.fired_ignores[index] += 1;
            Ok(())
        }
        Verdict::Error => Err(format!(
            "protocol error: no transition for {state:?} × {event:?} × {ctx:?} (msg {i}) in {:?}",
            m
        )),
    }
}

/// Execute one emitted action against the abstract model. Timer actions
/// are no-ops here — timers are modelled as budgeted fault moves, not
/// clocks.
fn exec(m: &mut Model, cfg: &ModelCfg, i: usize, a: Action, mask: u8) -> Result<(), String> {
    let chunks = cfg.msgs[i].chunks;
    let push = |m: &mut Model, kind: FrameKind, dup: u8| {
        // Frames toward a dead rank are eaten by the wire (the fabric's
        // delivery-time node suppression); nothing enters the bag.
        let to_receiver = matches!(kind, FrameKind::Rts | FrameKind::Data { .. } | FrameKind::Fin);
        let dst_dead = if to_receiver { m.msgs[i].r_dead } else { m.msgs[i].s_dead };
        if dst_dead {
            return;
        }
        m.net.push(Frame {
            msg: i as u8,
            kind,
            dup_left: dup,
        });
    };
    match a {
        Action::SendRts => push(m, FrameKind::Rts, dup_budget(cfg, FrameKind::Rts)),
        Action::SendCts => push(m, FrameKind::Cts, dup_budget(cfg, FrameKind::Cts)),
        Action::SendFin => push(m, FrameKind::Fin, dup_budget(cfg, FrameKind::Fin)),
        Action::QueueData => {
            for c in 0..chunks {
                push(
                    m,
                    FrameKind::Data { mask: 1 << c },
                    dup_budget(cfg, FrameKind::Data { mask: 0 }),
                );
            }
            m.msgs[i].pending_last = true;
        }
        Action::SendAllData => {
            for c in 0..chunks {
                push(m, FrameKind::Data { mask: 1 << c }, 0);
            }
        }
        Action::SendNextFragment => {
            let c = m.msgs[i].cursor;
            debug_assert!(c < chunks, "fragment past the payload end");
            push(m, FrameKind::Data { mask: 1 << c }, 0);
            m.msgs[i].cursor = c + 1;
        }
        Action::ReplayRts => push(m, FrameKind::Rts, 0),
        Action::ReplayCts => push(m, FrameKind::Cts, 0),
        Action::ReplayFin => push(m, FrameKind::Fin, 0),
        Action::ReplayData => push(m, FrameKind::Data { mask: full_mask(chunks) }, 0),
        Action::SendDataAck => push(m, FrameKind::DataAck, 0),
        Action::CopyChunk => m.msgs[i].got |= mask,
        Action::CompleteSend => {
            if m.msgs[i].s_done {
                return Err(format!("send completion fired twice for msg {i}"));
            }
            m.msgs[i].s_done = true;
        }
        Action::CompleteRecv => {
            if m.msgs[i].r_done {
                return Err(format!("recv completion fired twice for msg {i}"));
            }
            if m.msgs[i].got != full_mask(chunks) {
                return Err(format!(
                    "recv completion with chunks {:#b}/{:#b} for msg {i}",
                    m.msgs[i].got,
                    full_mask(chunks)
                ));
            }
            m.msgs[i].r_done = true;
        }
        Action::AbortSend => {
            if m.msgs[i].s_done {
                return Err(format!("send abort after completion for msg {i}"));
            }
            // A drain-abort *is* the completion (no-cancel rule): the
            // request surfaces exactly once, as failed.
            m.msgs[i].s_done = true;
        }
        Action::AbortRecv => {
            if m.msgs[i].r_done {
                return Err(format!("recv abort after completion for msg {i}"));
            }
            m.msgs[i].r_done = true;
        }
        // Timers are budgeted moves; buffer allocation, tombstoning and
        // accounting have no model-visible effect beyond the state the
        // table already moved.
        Action::ArmRtsTimer
        | Action::ArmFinTimer
        | Action::ArmRecvTimer
        | Action::DisarmTimer
        | Action::BumpRecvTimer
        | Action::Backoff
        | Action::AllocLanding
        | Action::Tombstone
        | Action::CountDupData
        | Action::CountDupEnvelope
        | Action::CountStaleEpoch => {}
    }
    Ok(())
}

/// All moves enabled in `m`. Identical frames are deduplicated (equal
/// frames lead to equal successors).
fn enabled_moves(m: &Model, cfg: &ModelCfg) -> Vec<Move> {
    let mut moves = Vec::new();
    for (i, st) in m.msgs.iter().enumerate() {
        let iu = i as u8;
        if !st.started && !st.s_dead {
            moves.push(Move::Start(iu));
        }
        if !st.posted && !st.r_dead {
            moves.push(Move::Post(iu));
        }
        if st.pending_last && !st.s_dead {
            moves.push(Move::LastSent(iu));
        }
        if cfg.retry
            && !st.s_dead
            && matches!(st.s, State::SWaitCts | State::SWaitFin)
            && st.s_timeouts < cfg.max_send_timeouts
        {
            moves.push(Move::SendTimeout(iu));
        }
        if cfg.retry
            && !st.r_dead
            && st.r == State::RWaitData
            && st.r_timeouts < cfg.max_recv_timeouts
        {
            moves.push(Move::RecvTimeout(iu));
        }
        // One death per flow, any point after the send exists; either
        // rank may be the victim.
        if cfg.peer_death && st.started && !st.s_dead && !st.r_dead {
            moves.push(Move::Kill(iu, true));
            moves.push(Move::Kill(iu, false));
        }
        // Revoke: each live side learns the poison at most once, at any
        // point — before the start, mid-handshake, or after completion.
        // The move stays enabled until it fires, so a flow stranded by
        // the other side's quiesce always has the unsticking move left
        // (terminal states must be complete).
        if cfg.revoke && !st.s_dead && !st.s_revoked {
            moves.push(Move::RevokeSide(iu, false));
        }
        if cfg.revoke && !st.r_dead && !st.r_revoked {
            moves.push(Move::RevokeSide(iu, true));
        }
    }
    for (j, f) in m.net.iter().enumerate() {
        if m.net[..j].contains(f) {
            continue; // identical frame already enumerated
        }
        moves.push(Move::Deliver(j));
        let st = &m.msgs[f.msg as usize];
        // A drop reserves one future sender-timeout firing to recover,
        // so budget exhaustion can never strand a message (terminal
        // states must be complete).
        if cfg.retry
            && st.drops < cfg.max_drops
            && st.drops + st.s_timeouts < cfg.max_send_timeouts
        {
            moves.push(Move::Drop(j));
        }
        if f.dup_left > 0 {
            moves.push(Move::Dup(j));
        }
    }
    moves
}

/// Apply one move; returns the successor state or a violation.
fn apply(
    prev: &Model,
    cfg: &ModelCfg,
    stats: &mut Stats,
    mv: Move,
) -> Result<Model, String> {
    let mut m = prev.clone();
    match mv {
        Move::Start(i) => {
            let i = i as usize;
            m.msgs[i].started = true;
            if m.msgs[i].s_revoked {
                // A send posted on a revoked epoch fails fast above the
                // table with `Err(Revoked)` — no entry, no RTS.
                if m.msgs[i].s_done {
                    return Err(format!("fail-fast send after completion for msg {i}"));
                }
                m.msgs[i].s_done = true;
            } else {
                fire(&mut m, cfg, stats, i, Event::SendRdv, false, 0)?;
            }
        }
        Move::Post(i) => {
            let i = i as usize;
            m.msgs[i].posted = true;
            if m.msgs[i].r_revoked {
                // A receive posted on a revoked epoch fails fast with
                // `Err(Revoked)`, exactly like the dead-peer fail-fast.
                if m.msgs[i].r_done {
                    return Err(format!("fail-fast recv after completion for msg {i}"));
                }
                m.msgs[i].r_done = true;
            } else if m.msgs[i].s_dead {
                // Posting a receive from a peer already declared dead
                // fails fast above the table (no entry ever exists).
                if m.msgs[i].r_done {
                    return Err(format!("fail-fast recv after completion for msg {i}"));
                }
                m.msgs[i].r_done = true;
            } else if m.msgs[i].unexpected_rts {
                m.msgs[i].unexpected_rts = false;
                fire(&mut m, cfg, stats, i, Event::RtsMatched, false, 0)?;
            }
        }
        Move::LastSent(i) => {
            let i = i as usize;
            m.msgs[i].pending_last = false;
            fire(&mut m, cfg, stats, i, Event::LastChunkSent, false, 0)?;
        }
        Move::SendTimeout(i) => {
            let i = i as usize;
            m.msgs[i].s_timeouts += 1;
            fire(&mut m, cfg, stats, i, Event::SendTimeout, false, 0)?;
        }
        Move::RecvTimeout(i) => {
            let i = i as usize;
            m.msgs[i].r_timeouts += 1;
            fire(&mut m, cfg, stats, i, Event::RecvTimeout, false, 0)?;
        }
        Move::Kill(i, kill_sender) => {
            let i = i as usize;
            // The wire eats every in-flight frame of the flow: frames
            // from the dead rank are suppressed at delivery, frames
            // toward it no longer matter.
            m.net.retain(|f| f.msg != i as u8);
            if kill_sender {
                m.msgs[i].s_dead = true;
                // The dead rank's own machine is gone with the process.
                m.msgs[i].s = State::Gone;
                m.msgs[i].pending_last = false;
                // Drain purges the dead peer's parked unexpected RTS.
                m.msgs[i].unexpected_rts = false;
                // A posted receive whose RTS never arrived has no machine
                // to step; drain fails it directly (the runtime purges
                // posted recvs gated on the dead peer).
                if m.msgs[i].posted && m.msgs[i].r == State::Gone && !m.msgs[i].r_done {
                    m.msgs[i].r_done = true;
                }
            } else {
                m.msgs[i].r_dead = true;
                m.msgs[i].r = State::Gone;
            }
            // The survivor side steps the drain rows.
            fire_on(&mut m, cfg, stats, i, Event::PeerDead, kill_sender, false, 0)?;
        }
        Move::RevokeSide(i, receiver_side) => {
            let i = i as usize;
            if receiver_side {
                m.msgs[i].r_revoked = true;
                // The quiesce purges the epoch's unexpected queue (the
                // runtime counts each purged frame as stale); the frame
                // was already transport-delivered, so no table step.
                m.msgs[i].unexpected_rts = false;
                fire_on(&mut m, cfg, stats, i, Event::Revoked, true, false, 0)?;
                // A posted-but-unmatched receive has no machine to step;
                // the quiesce fails it directly with `Err(Revoked)`.
                if m.msgs[i].posted && m.msgs[i].r == State::Gone && !m.msgs[i].r_done {
                    m.msgs[i].r_done = true;
                }
            } else {
                m.msgs[i].s_revoked = true;
                // The aborted entry's NIC-completion callback finds
                // nothing (same as the drain).
                m.msgs[i].pending_last = false;
                fire_on(&mut m, cfg, stats, i, Event::Revoked, false, false, 0)?;
            }
        }
        Move::Drop(j) => {
            let f = m.net.remove(j);
            m.msgs[f.msg as usize].drops += 1;
        }
        Move::Dup(j) => {
            m.net[j].dup_left -= 1;
            let mut copy = m.net[j];
            copy.dup_left = 0;
            m.net.push(copy);
        }
        Move::Deliver(j) => {
            let f = m.net.remove(j);
            let i = f.msg as usize;
            match f.kind {
                FrameKind::Rts => {
                    if m.msgs[i].r_revoked && !m.msgs[i].rts_delivered {
                        // Fresh transport delivery at a revoked rank: the
                        // epoch-hygiene filter counts it stale and drops
                        // it before matching. It *is* delivered transport-
                        // wise (acks flow; replays classify as dups).
                        m.msgs[i].rts_delivered = true;
                        fire_on(&mut m, cfg, stats, i, Event::StaleEpoch, true, false, 0)?;
                    } else if !m.msgs[i].rts_delivered {
                        // Fresh transport delivery: match now or park in
                        // the unexpected queue until the post.
                        m.msgs[i].rts_delivered = true;
                        if m.msgs[i].posted {
                            fire(&mut m, cfg, stats, i, Event::RtsMatched, false, 0)?;
                        } else {
                            m.msgs[i].unexpected_rts = true;
                        }
                    } else {
                        fire(&mut m, cfg, stats, i, Event::DupRts, false, 0)?;
                    }
                }
                FrameKind::Cts => {
                    // Throttled entry: is the fragment about to go out
                    // the final one?
                    let last = cfg.ack_mode && m.msgs[i].cursor + 1 == cfg.msgs[i].chunks;
                    fire(&mut m, cfg, stats, i, Event::CtsRx, last, 0)?;
                }
                FrameKind::DataAck => {
                    let last = m.msgs[i].cursor + 1 == cfg.msgs[i].chunks;
                    fire(&mut m, cfg, stats, i, Event::DataAckRx, last, 0)?;
                }
                FrameKind::Data { mask } => {
                    let last = (m.msgs[i].got | mask) == full_mask(cfg.msgs[i].chunks);
                    fire(&mut m, cfg, stats, i, Event::DataRx, last, mask)?;
                }
                FrameKind::Fin => {
                    fire(&mut m, cfg, stats, i, Event::FinRx, false, 0)?;
                }
            }
        }
    }
    m.net.sort_unstable();
    Ok(m)
}

/// A terminal state (no enabled moves) must be fully resolved: both
/// sides of every message complete, nothing left in flight.
fn check_terminal(m: &Model, cfg: &ModelCfg) -> Result<(), String> {
    if !m.net.is_empty() {
        return Err(format!("terminal state with frames in flight: {m:?}"));
    }
    for (i, st) in m.msgs.iter().enumerate() {
        // A dead rank's own requests die with the process; every
        // *surviving* side must have completed — successfully or as a
        // counted drain-abort — with nothing leaked.
        let s_ok = st.s_done || st.s_dead;
        let r_ok = st.r_done || st.r_dead;
        if !(s_ok && r_ok) {
            return Err(format!(
                "terminal state with msg {i} incomplete (cfg `{}`): {st:?}",
                cfg.name
            ));
        }
    }
    Ok(())
}

/// Exhaustively explore one configuration. Returns the coverage and
/// size statistics, or the first violation found.
pub fn explore(cfg: &ModelCfg) -> Result<Stats, String> {
    assert!(
        cfg.retry || !cfg.faults_armed(),
        "model `{}`: faults without retry cannot complete",
        cfg.name
    );
    assert!(
        cfg.buffered || !cfg.ack_mode,
        "model `{}`: ack mode implies buffered semantics",
        cfg.name
    );
    assert!(
        !cfg.peer_death || (cfg.retry && !cfg.buffered),
        "model `{}`: membership drain requires core retry semantics",
        cfg.name
    );
    assert!(
        !cfg.revoke || (cfg.retry && !cfg.buffered),
        "model `{}`: revoke recovery requires core retry semantics",
        cfg.name
    );
    assert!(
        cfg.msgs.iter().all(|mc| (1..=6).contains(&mc.chunks)),
        "model `{}`: chunks per message must be 1..=6",
        cfg.name
    );
    let mut stats = Stats::new(cfg.name);
    let root = Model {
        msgs: cfg.msgs.iter().map(|_| MsgSt::fresh()).collect(),
        net: Vec::new(),
    };
    let mut visited: HashSet<Model> = HashSet::new();
    visited.insert(root.clone());
    stats.states = 1;
    let mut stack = vec![root];
    while let Some(m) = stack.pop() {
        let moves = enabled_moves(&m, cfg);
        if moves.is_empty() {
            stats.terminals += 1;
            check_terminal(&m, cfg)?;
            continue;
        }
        for mv in moves {
            stats.edges += 1;
            let next = apply(&m, cfg, &mut stats, mv)?;
            if visited.insert(next.clone()) {
                stats.states += 1;
                stack.push(next);
            }
        }
    }
    Ok(stats)
}

/// The standard configuration suite: every protocol variant the repo
/// implements, sized so the union covers the whole table while staying
/// well under the CI budget.
pub fn standard_suite() -> Vec<ModelCfg> {
    let m = |src, dst, chunks| MsgCfg { src, dst, chunks };
    vec![
        // Core pipelined, fault-free, no retry: the plain chunked path.
        ModelCfg::clean("clean-pipelined", vec![m(0, 1, 2), m(1, 0, 1)]),
        // Core pipelined entered via credit exhaustion (flow-control
        // degradation), no retry.
        ModelCfg {
            credit_fallback: true,
            ..ModelCfg::clean("clean-credit-fallback", vec![m(0, 1, 2)])
        },
        // CH3 buffered rendezvous (no ack throttle).
        ModelCfg {
            buffered: true,
            ..ModelCfg::clean("ch3-buffered", vec![m(0, 1, 2), m(1, 0, 2)])
        },
        // CH3 DataAck depth-1 pipeline; a 1-chunk message covers the
        // single-fragment completion row.
        ModelCfg {
            buffered: true,
            ack_mode: true,
            ..ModelCfg::clean("ch3-throttled", vec![m(0, 1, 3), m(1, 0, 1)])
        },
        // Retry mode, single flow, the full fault menu: drops of any
        // frame, duplicates of every class, spurious timers.
        ModelCfg {
            retry: true,
            max_drops: 1,
            dup_rts: true,
            dup_cts: true,
            dup_data: true,
            dup_fin: true,
            max_send_timeouts: 2,
            max_recv_timeouts: 1,
            ..ModelCfg::clean("retry-faults-1msg", vec![m(0, 1, 2)])
        },
        // Retry mode, two concurrent flows into one receiver (3-rank
        // shape). This config is about *cross-flow interleaving*, so the
        // per-flow fault menu stays minimal — fault depth is the 1-msg
        // config's job, and the full menu here explodes the product space
        // (~10M states) far past the CI budget.
        ModelCfg {
            retry: true,
            dup_rts: true,
            dup_fin: true,
            max_send_timeouts: 1,
            ..ModelCfg::clean("retry-faults-2msg", vec![m(0, 2, 2), m(1, 2, 1)])
        },
        // Membership drain: either rank of the flow may die at any
        // reachable protocol state; the survivor must abort cleanly via
        // the `dead/*` rows, with a light fault menu so deaths interleave
        // with retransmission and replay.
        ModelCfg {
            retry: true,
            peer_death: true,
            dup_rts: true,
            max_drops: 1,
            max_send_timeouts: 1,
            max_recv_timeouts: 1,
            ..ModelCfg::clean("retry-peer-death", vec![m(0, 1, 2)])
        },
        // Communicator revoke: either side of the flow may learn the
        // epoch poison at any reachable state. Quiesce runs the
        // `revoked/*` rows, a fresh envelope reaching a revoked rank
        // runs `stale/epoch`, a replayed one the Dup machinery — with a
        // light fault menu so revokes interleave with retransmission.
        ModelCfg {
            retry: true,
            revoke: true,
            dup_rts: true,
            max_drops: 1,
            max_send_timeouts: 1,
            max_recv_timeouts: 1,
            ..ModelCfg::clean("retry-revoke-epoch", vec![m(0, 1, 2)])
        },
    ]
}

/// Explore every configuration in `cfgs`, merge coverage, and enforce
/// the suite-level claims: table sound, every row reached, every
/// non-defensive ignore reached. Returns (per-config, merged) stats.
pub fn explore_suite(cfgs: &[ModelCfg]) -> Result<(Vec<Stats>, Stats), String> {
    let problems = super::validate_table();
    if !problems.is_empty() {
        return Err(format!("table validation failed: {problems:?}"));
    }
    let mut merged = Stats::new("suite");
    let mut per = Vec::new();
    for cfg in cfgs {
        let s = explore(cfg)?;
        merged.absorb(&s);
        per.push(s);
    }
    let unreached = merged.unreached_rows();
    if !unreached.is_empty() {
        return Err(format!("unreachable table rows: {unreached:?}"));
    }
    let unignored = merged.unreached_ignores();
    if !unignored.is_empty() {
        return Err(format!("unreached declared ignores: {unignored:?}"));
    }
    Ok((per, merged))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_pipelined_model_completes() {
        let s = explore(&ModelCfg::clean(
            "t",
            vec![MsgCfg { src: 0, dst: 1, chunks: 2 }],
        ))
        .expect("clean model");
        assert!(s.terminals > 0);
        assert!(s.edges > s.states.saturating_sub(1));
    }

    #[test]
    fn peer_death_model_reaches_every_drain_row() {
        let cfg = ModelCfg {
            retry: true,
            peer_death: true,
            dup_rts: true,
            max_drops: 1,
            max_send_timeouts: 1,
            max_recv_timeouts: 1,
            ..ModelCfg::clean("t", vec![MsgCfg { src: 0, dst: 1, chunks: 2 }])
        };
        let s = explore(&cfg).expect("peer-death model");
        let fired: Vec<&str> = TABLE
            .iter()
            .zip(&s.fired_rows)
            .filter(|(_, &n)| n > 0)
            .map(|(t, _)| t.name)
            .collect();
        for row in [
            "dead/swaitcts",
            "dead/sstreaming",
            "dead/swaitfin",
            "dead/rwaitdata",
            "dead/rdone",
        ] {
            assert!(fired.contains(&row), "missing {row} in {fired:?}");
        }
        let ignored: Vec<&str> = IGNORES
            .iter()
            .zip(&s.fired_ignores)
            .filter(|(_, &n)| n > 0)
            .map(|(g, _)| g.name)
            .collect();
        assert!(ignored.contains(&"ignore/dead-gone"), "{ignored:?}");
    }

    #[test]
    fn revoke_model_reaches_every_quiesce_row() {
        let cfg = ModelCfg {
            retry: true,
            revoke: true,
            dup_rts: true,
            max_drops: 1,
            max_send_timeouts: 1,
            max_recv_timeouts: 1,
            ..ModelCfg::clean("t", vec![MsgCfg { src: 0, dst: 1, chunks: 2 }])
        };
        let s = explore(&cfg).expect("revoke model");
        let fired: Vec<&str> = TABLE
            .iter()
            .zip(&s.fired_rows)
            .filter(|(_, &n)| n > 0)
            .map(|(t, _)| t.name)
            .collect();
        for row in [
            "revoked/swaitcts",
            "revoked/sstreaming",
            "revoked/swaitfin",
            "revoked/rwaitdata",
            "revoked/rdone",
            "stale/epoch",
        ] {
            assert!(fired.contains(&row), "missing {row} in {fired:?}");
        }
        let ignored: Vec<&str> = IGNORES
            .iter()
            .zip(&s.fired_ignores)
            .filter(|(_, &n)| n > 0)
            .map(|(g, _)| g.name)
            .collect();
        assert!(ignored.contains(&"ignore/revoked-gone"), "{ignored:?}");
    }

    #[test]
    fn faulty_model_reaches_replay_rows() {
        let cfg = ModelCfg {
            retry: true,
            max_drops: 1,
            dup_rts: true,
            dup_cts: true,
            dup_data: true,
            dup_fin: true,
            max_send_timeouts: 2,
            max_recv_timeouts: 1,
            ..ModelCfg::clean("t", vec![MsgCfg { src: 0, dst: 1, chunks: 2 }])
        };
        let s = explore(&cfg).expect("faulty model");
        let fired: Vec<&str> = TABLE
            .iter()
            .zip(&s.fired_rows)
            .filter(|(_, &n)| n > 0)
            .map(|(t, _)| t.name)
            .collect();
        assert!(fired.contains(&"replay/fin-on-data"), "{fired:?}");
        assert!(fired.contains(&"replay/cts-on-rts"), "{fired:?}");
        assert!(fired.contains(&"timer/rts"), "{fired:?}");
    }
}
