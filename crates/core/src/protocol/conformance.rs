//! # Trace conformance against the protocol table
//!
//! Replays a recorded obs span stream through [`super::TABLE`], turning
//! every traced run into a conformance test: each rendezvous-phase event
//! must correspond to a legal transition (or declared ignore) of the
//! table the small-model explorer proved sound. Installed as the
//! [`obs::Validator`] hook when [`obs::ObsConfig::conformance`] is set,
//! so every seed-sweep suite that runs with `ObsConfig::full()` checks
//! conformance incrementally as events are recorded; [`check_events`] is
//! the post-hoc form for trace-driven invariant tests.
//!
//! ## What the trace shows (and what it hides)
//!
//! The simulation is logically single-threaded, so the recorder's append
//! order respects global simulated time and events of one message arrive
//! in causal order. Core traces speak the *pipelined* dialect only
//! (`buffered`/`ack_mode` never hold — CH3's buffered rendezvous is
//! exercised by the explorer and CH3's own unit tests, not by obs
//! spans). One protocol event is locally invisible: the final DATA
//! chunk's NIC completion ([`super::Event::LastChunkSent`]) records no
//! phase. The checker infers it at its observable successors — a
//! `Retry { Data }` implies the sender reached `SWaitFin`, and a
//! no-retry `Completed { Send }` implies `sent/complete` fired — so a
//! sender FIN may legally validate against `fin/early` where the runtime
//! took `fin/confirmed`; both are table rows, and which one a trace
//! proves is irrelevant to conformance.
//!
//! Replayed wire events are tied 1:1 to their announcing `Retry` span
//! events with pending counters: a replayed `RtsTx`/`CtsTx`/
//! `DataChunkTx` without a preceding `Retry { Rts|Cts|Data }` on the
//! same key is a violation — exactly the duplicate-RTS replay invariant
//! the trace suite asserts.

use std::collections::HashMap;
use std::sync::Arc;

use obs::{Event as ObsEvent, MsgKey, Phase, RetryKind, Scope, Side};

use super::{step, Action, Ctx, Event, State, Verdict, IGNORES, TABLE};

/// Checker view of one message's rendezvous flow.
#[derive(Debug, Default)]
struct Flow {
    s: Option<State>,
    r: Option<State>,
    /// Announced payload length (from `RtsTx`).
    total: Option<u64>,
    /// Merged receiver coverage intervals.
    ranges: Vec<(u64, u64)>,
    /// The send stalled on eager credits before entering rendezvous.
    credit_stalled: bool,
    /// Outstanding announced replays awaiting their wire event.
    pending_rts_replay: u32,
    pending_cts_replay: u32,
    pending_data_replay: u32,
    /// The initial CTS wire event was consumed (replays need an
    /// announcement; the original does not).
    cts_sent: bool,
    /// The table emitted the completion action for this side.
    s_done: bool,
    r_done: bool,
    /// `Completed` phases consumed (exactly one per side).
    s_completed: bool,
    r_completed: bool,
}

impl Flow {
    fn sender(&self) -> State {
        self.s.unwrap_or(State::Gone)
    }
    fn receiver(&self) -> State {
        self.r.unwrap_or(State::Gone)
    }
    /// Did this flow take the rendezvous path at all?
    fn is_rdv(&self) -> bool {
        self.s.is_some() || self.r.is_some()
    }
}

/// Incremental trace-conformance checker for core (pipelined) traces.
pub struct TraceChecker {
    retry: bool,
    flows: HashMap<MsgKey, Flow>,
}

fn merge(ranges: &mut Vec<(u64, u64)>, start: u64, end: u64) {
    ranges.push((start, end));
    ranges.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
    for &(s, e) in ranges.iter() {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    *ranges = out;
}

fn covered(ranges: &[(u64, u64)], total: u64) -> bool {
    ranges.len() == 1 && ranges[0] == (0, total)
}

impl TraceChecker {
    pub fn new(retry: bool) -> TraceChecker {
        TraceChecker {
            retry,
            flows: HashMap::new(),
        }
    }

    fn ctx(retry: bool, flow: &Flow, in_range: bool, last: bool) -> Ctx {
        Ctx {
            retry,
            ack_mode: false,
            buffered: false,
            in_range,
            last,
            credit_fallback: flow.credit_stalled,
        }
    }

    /// Run one table lookup for `key`, apply it to the tracked side, and
    /// report a violation on `Error` or on a defensive ignore.
    fn apply(
        flow: &mut Flow,
        key: MsgKey,
        state: State,
        event: Event,
        ctx: Ctx,
        sender_side: bool,
    ) -> Result<(), String> {
        match step(state, event, ctx) {
            Verdict::Step { index, actions, next } => {
                if actions.contains(&Action::CompleteSend) || actions.contains(&Action::AbortSend)
                {
                    flow.s_done = true;
                }
                if actions.contains(&Action::CompleteRecv) || actions.contains(&Action::AbortRecv)
                {
                    flow.r_done = true;
                }
                if sender_side {
                    flow.s = Some(next);
                } else {
                    flow.r = Some(next);
                }
                let _ = TABLE[index].name;
                Ok(())
            }
            Verdict::Ignore { index, defensive } => {
                if defensive {
                    Err(format!(
                        "{key:?}: defensive ignore `{}` fired in a real trace ({state:?} × {event:?})",
                        IGNORES[index].name
                    ))
                } else {
                    Ok(())
                }
            }
            Verdict::Error => Err(format!(
                "{key:?}: no transition for {state:?} × {event:?} × {ctx:?}"
            )),
        }
    }

    /// Validate one recorded event. Engine events and eager-path phases
    /// pass through untouched.
    pub fn check(&mut self, ev: &ObsEvent) -> Result<(), String> {
        let Scope::Msg { key, phase } = ev.scope else {
            return Ok(());
        };
        let retry = self.retry;
        let flow = self.flows.entry(key).or_default();
        match phase {
            // Eager-path and bookkeeping phases carry no rendezvous
            // transition.
            Phase::SendPosted { .. }
            | Phase::RecvPosted
            | Phase::Matched { .. }
            | Phase::EagerTx { .. }
            | Phase::EagerRx
            | Phase::Reroute { .. }
            | Phase::Retry { kind: RetryKind::Eager } => Ok(()),
            Phase::RtsRx => {
                // The receiver's protocol entry happens at match time,
                // which can precede the CTS's wire transmission (the CTS
                // queues behind other traffic while the progress timer is
                // already armed and may fire) — so `RWaitData` entry is
                // anchored at the RTS's arrival, the earliest event that
                // can precede any receiver-side activity.
                if flow.r.is_none() {
                    let ctx = Self::ctx(retry, flow, false, false);
                    Self::apply(flow, key, State::Gone, Event::RtsMatched, ctx, false)
                } else {
                    Ok(())
                }
            }
            Phase::CreditStall => {
                flow.credit_stalled = true;
                Ok(())
            }
            Phase::RtsTx { len, .. } => match flow.sender() {
                State::Gone if flow.s.is_none() => {
                    flow.total = Some(len);
                    let ctx = Self::ctx(retry, flow, false, false);
                    Self::apply(flow, key, State::Gone, Event::SendRdv, ctx, true)
                }
                State::SWaitCts if flow.pending_rts_replay > 0 => {
                    flow.pending_rts_replay -= 1;
                    Ok(())
                }
                s => Err(format!(
                    "{key:?}: RtsTx with sender in {s:?} and no announced RTS replay"
                )),
            },
            Phase::Retry { kind: RetryKind::Rts } => {
                let ctx = Self::ctx(retry, flow, false, false);
                Self::apply(flow, key, flow.sender(), Event::SendTimeout, ctx, true)?;
                flow.pending_rts_replay += 1;
                Ok(())
            }
            Phase::Retry { kind: RetryKind::Data } => {
                // The FIN-wait timer can only be armed after the final
                // chunk cleared the NIC — infer the invisible
                // LastChunkSent if the trace hasn't shown it.
                if flow.sender() == State::SStreaming {
                    let ctx = Self::ctx(retry, flow, false, false);
                    Self::apply(flow, key, State::SStreaming, Event::LastChunkSent, ctx, true)?;
                }
                let ctx = Self::ctx(retry, flow, false, false);
                Self::apply(flow, key, flow.sender(), Event::SendTimeout, ctx, true)?;
                flow.pending_data_replay += 1;
                Ok(())
            }
            Phase::Retry { kind: RetryKind::Cts } => {
                // A CTS replay is announced both by the receiver's
                // progress timer and by a duplicate RTS on a live
                // rendezvous; the trace does not distinguish them, and
                // both are rows replaying from `RWaitData`.
                let ctx = Self::ctx(retry, flow, false, false);
                Self::apply(flow, key, flow.receiver(), Event::RecvTimeout, ctx, false)?;
                flow.pending_cts_replay += 1;
                Ok(())
            }
            Phase::CtsTx { .. } => {
                if !flow.cts_sent {
                    // The original CTS (the `SendCts` action's wire
                    // realization, however late it transmits).
                    flow.cts_sent = true;
                    if flow.r.is_none() {
                        let ctx = Self::ctx(retry, flow, false, false);
                        return Self::apply(flow, key, State::Gone, Event::RtsMatched, ctx, false);
                    }
                    return Ok(());
                }
                match flow.receiver() {
                    State::RWaitData if flow.pending_cts_replay > 0 => {
                        flow.pending_cts_replay -= 1;
                        Ok(())
                    }
                    r => Err(format!(
                        "{key:?}: CtsTx with receiver in {r:?} and no announced CTS replay"
                    )),
                }
            }
            Phase::CtsRx => {
                let ctx = Self::ctx(retry, flow, false, false);
                Self::apply(flow, key, flow.sender(), Event::CtsRx, ctx, true)
            }
            Phase::DataChunkTx { .. } => match flow.sender() {
                State::SStreaming => Ok(()),
                State::SWaitFin if flow.pending_data_replay > 0 => {
                    flow.pending_data_replay -= 1;
                    Ok(())
                }
                s => Err(format!(
                    "{key:?}: DataChunkTx with sender in {s:?} and no announced DATA replay"
                )),
            },
            Phase::DataChunkRx { offset, len } => {
                let state = flow.receiver();
                if state == State::RWaitData {
                    let total = flow.total;
                    let end = offset.checked_add(len);
                    let in_range = match (total, end) {
                        (Some(t), Some(e)) => e <= t,
                        _ => false,
                    };
                    let last = if in_range {
                        let mut probe = flow.ranges.clone();
                        merge(&mut probe, offset, end.unwrap_or(u64::MAX));
                        total.is_some_and(|t| covered(&probe, t))
                    } else {
                        false
                    };
                    let ctx = Self::ctx(retry, flow, in_range, last);
                    Self::apply(flow, key, state, Event::DataRx, ctx, false)?;
                    if in_range {
                        merge(&mut flow.ranges, offset, end.unwrap_or(u64::MAX));
                    }
                    Ok(())
                } else {
                    let ctx = Self::ctx(retry, flow, true, false);
                    Self::apply(flow, key, state, Event::DataRx, ctx, false)
                }
            }
            Phase::FinTx => {
                if retry && flow.receiver() == State::RDone {
                    Ok(())
                } else {
                    Err(format!(
                        "{key:?}: FinTx with receiver in {:?} (retry = {retry})",
                        flow.receiver()
                    ))
                }
            }
            Phase::FinRx => {
                let ctx = Self::ctx(retry, flow, false, false);
                Self::apply(flow, key, flow.sender(), Event::FinRx, ctx, true)
            }
            Phase::Completed { side: Side::Send } => {
                if !flow.is_rdv() {
                    return Ok(()); // eager completion
                }
                if flow.s_completed {
                    return Err(format!("{key:?}: send completed twice"));
                }
                if !retry && flow.sender() == State::SStreaming {
                    // Invisible NIC completion of the last chunk.
                    let ctx = Self::ctx(retry, flow, false, false);
                    Self::apply(flow, key, State::SStreaming, Event::LastChunkSent, ctx, true)?;
                }
                if !flow.s_done {
                    return Err(format!(
                        "{key:?}: send completed with sender in {:?} and no completing transition",
                        flow.sender()
                    ));
                }
                flow.s_completed = true;
                Ok(())
            }
            Phase::Aborted { side } => {
                // The drain protocol completed this request with an error
                // (its peer was declared dead). An eager-path abort has no
                // rendezvous machine to check; a rendezvous abort must be
                // a legal `PeerDead` transition of the surviving side.
                if !flow.is_rdv() {
                    return Ok(());
                }
                let sender_side = side == Side::Send;
                let state = if sender_side {
                    flow.sender()
                } else {
                    flow.receiver()
                };
                if state == State::Gone {
                    // The machine already wound down (e.g. the posted
                    // receive's RTS never arrived); the abort is pure
                    // request bookkeeping.
                    return Ok(());
                }
                let ctx = Self::ctx(retry, flow, false, false);
                Self::apply(flow, key, state, Event::PeerDead, ctx, sender_side)
            }
            Phase::Revoked { side } => {
                // An epoch quiesce completed this request with an error.
                // Unlike a peer-death abort the receiver tombstones
                // (`revoked/rwaitdata` → RDone), so a straggling DATA
                // chunk still validates against the FIN-replay row.
                if !flow.is_rdv() {
                    return Ok(());
                }
                let sender_side = side == Side::Send;
                let state = if sender_side {
                    flow.sender()
                } else {
                    flow.receiver()
                };
                if state == State::Gone {
                    // Pure request bookkeeping (fail-fast post, or the
                    // machine already wound down).
                    return Ok(());
                }
                let ctx = Self::ctx(retry, flow, false, false);
                Self::apply(flow, key, state, Event::Revoked, ctx, sender_side)
            }
            Phase::Completed { side: Side::Recv } => {
                if !flow.is_rdv() {
                    return Ok(());
                }
                if flow.r_completed {
                    return Err(format!("{key:?}: recv completed twice"));
                }
                if !flow.r_done {
                    return Err(format!(
                        "{key:?}: recv completed with receiver in {:?} and no completing transition",
                        flow.receiver()
                    ));
                }
                flow.r_completed = true;
                Ok(())
            }
        }
    }
}

/// Install a [`TraceChecker`] as `rec`'s conformance validator. A no-op
/// unless the recorder was configured with `conformance` — callers need
/// not branch.
pub fn install(rec: &Arc<obs::Recorder>, retry: bool) {
    if !rec.cfg().conformance {
        return;
    }
    let mut checker = TraceChecker::new(retry);
    rec.set_validator(Box::new(move |ev| checker.check(ev)));
}

/// Post-hoc conformance check of a full event stream (append order —
/// causal per message). Returns every violation, uncapped.
pub fn check_events(events: &[ObsEvent], retry: bool) -> Vec<String> {
    let mut checker = TraceChecker::new(retry);
    events
        .iter()
        .filter_map(|ev| checker.check(ev).err())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> MsgKey {
        MsgKey {
            src: 0,
            dst: 1,
            tag: 9,
            seq: 0,
        }
    }

    fn msg(t_ns: u64, phase: Phase) -> ObsEvent {
        ObsEvent {
            t_ns,
            rank: 0,
            scope: Scope::Msg { key: key(), phase },
        }
    }

    #[test]
    fn happy_rendezvous_trace_conforms() {
        let events = [
            msg(0, Phase::SendPosted { len: 64 }),
            msg(1, Phase::RtsTx { rail: 0, len: 64 }),
            msg(2, Phase::RtsRx),
            msg(3, Phase::Matched { unexpected: true }),
            msg(4, Phase::CtsTx { rail: 0 }),
            msg(5, Phase::CtsRx),
            msg(6, Phase::DataChunkTx { rail: 0, offset: 0, len: 32 }),
            msg(7, Phase::DataChunkTx { rail: 1, offset: 32, len: 32 }),
            msg(8, Phase::DataChunkRx { offset: 0, len: 32 }),
            msg(9, Phase::DataChunkRx { offset: 32, len: 32 }),
            msg(10, Phase::Completed { side: Side::Recv }),
            msg(11, Phase::Completed { side: Side::Send }),
        ];
        assert_eq!(check_events(&events, false), Vec::<String>::new());
    }

    #[test]
    fn retry_trace_with_fin_and_replay_conforms() {
        let events = [
            msg(1, Phase::RtsTx { rail: 0, len: 16 }),
            msg(2, Phase::Retry { kind: RetryKind::Rts }),
            msg(3, Phase::RtsTx { rail: 0, len: 16 }),
            msg(4, Phase::CtsTx { rail: 0 }),
            msg(5, Phase::Retry { kind: RetryKind::Cts }),
            msg(6, Phase::CtsTx { rail: 0 }),
            msg(7, Phase::CtsRx),
            msg(8, Phase::DataChunkTx { rail: 0, offset: 0, len: 16 }),
            msg(9, Phase::Retry { kind: RetryKind::Data }),
            msg(10, Phase::DataChunkTx { rail: 0, offset: 0, len: 16 }),
            msg(11, Phase::DataChunkRx { offset: 0, len: 16 }),
            msg(12, Phase::FinTx),
            msg(13, Phase::Completed { side: Side::Recv }),
            // Replayed DATA arrives at the tombstone, FIN is replayed.
            msg(14, Phase::DataChunkRx { offset: 0, len: 16 }),
            msg(15, Phase::FinTx),
            msg(16, Phase::FinRx),
            msg(17, Phase::Completed { side: Side::Send }),
            msg(18, Phase::FinRx), // duplicate FIN → declared ignore
        ];
        assert_eq!(check_events(&events, true), Vec::<String>::new());
    }

    #[test]
    fn unannounced_rts_replay_is_a_violation() {
        let events = [
            msg(1, Phase::RtsTx { rail: 0, len: 16 }),
            msg(2, Phase::RtsTx { rail: 0, len: 16 }), // no Retry{Rts} before it
        ];
        let v = check_events(&events, true);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("no announced RTS replay"), "{v:?}");
    }

    #[test]
    fn out_of_range_chunk_is_a_violation() {
        let events = [
            msg(1, Phase::RtsTx { rail: 0, len: 16 }),
            msg(2, Phase::CtsTx { rail: 0 }),
            msg(3, Phase::CtsRx),
            msg(4, Phase::DataChunkTx { rail: 0, offset: 0, len: 32 }),
            msg(5, Phase::DataChunkRx { offset: 0, len: 32 }),
        ];
        let v = check_events(&events, false);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("no transition"), "{v:?}");
    }

    #[test]
    fn stray_cts_without_retry_is_a_violation() {
        let events = [msg(1, Phase::CtsRx)];
        let v = check_events(&events, false);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn revoked_quiesce_tombstone_trace_conforms() {
        let events = [
            msg(1, Phase::RtsTx { rail: 0, len: 16 }),
            msg(2, Phase::RtsRx),
            msg(3, Phase::CtsTx { rail: 0 }),
            msg(4, Phase::CtsRx),
            msg(5, Phase::DataChunkTx { rail: 0, offset: 0, len: 16 }),
            // The epoch is revoked with the payload in flight: both sides
            // quiesce — the receiver tombstones (RDone), the sender winds
            // down (Gone).
            msg(6, Phase::Revoked { side: Side::Recv }),
            msg(7, Phase::Revoked { side: Side::Send }),
            // The in-flight chunk straggles in at the tombstone and earns
            // a FIN replay; the FIN finds the quiesced sender in Gone —
            // a declared ignore, not a violation.
            msg(8, Phase::DataChunkRx { offset: 0, len: 16 }),
            msg(9, Phase::FinTx),
            msg(10, Phase::FinRx),
        ];
        assert_eq!(check_events(&events, true), Vec::<String>::new());
    }

    #[test]
    fn eager_traffic_passes_untouched() {
        let events = [
            msg(0, Phase::SendPosted { len: 8 }),
            msg(1, Phase::EagerTx { rail: 0 }),
            msg(2, Phase::EagerRx),
            msg(3, Phase::Matched { unexpected: false }),
            msg(4, Phase::Completed { side: Side::Recv }),
            msg(5, Phase::Completed { side: Side::Send }),
        ];
        assert_eq!(check_events(&events, false), Vec::<String>::new());
    }
}
