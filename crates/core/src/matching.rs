//! NewMadeleine's internal tag-matching engine.
//!
//! "NewMadeleine maintains its own receive queues, performs tag matching
//! internally, and delivers messages directly to the user buffers" (§3.1.3).
//! This module holds the two queues of that sentence: the **posted-receive
//! queue** (receives waiting for a message) and the **unexpected queue**
//! (messages waiting for a receive), keyed by `(gate, tag)`.
//!
//! A secondary *arrival-ordered per-tag index* over the unexpected queue
//! supports the `probe by tag` operation the MPI_ANY_SOURCE machinery of
//! §3.2 needs: "every time Nemesis polls for incoming messages, we probe
//! NewMadeleine to check if a corresponding message has arrived".
//!
//! Receives are matched to arrivals strictly FIFO per `(gate, tag)`; the
//! engine asserts the sender-assigned sequence numbers confirm this.

use std::collections::{HashMap, VecDeque};

use simnet::NmBuf;

use crate::sr::RecvReqId;

/// A gate identifies the peer process; in this integration gates are global
/// MPI ranks.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct GateId(pub usize);

/// What arrived without a matching posted receive.
#[derive(Clone, Debug)]
pub enum Unexpected {
    /// A whole eager message (payload retained).
    Eager { seq: u64, data: NmBuf },
    /// A rendezvous announcement; the payload is still on the sender.
    Rts { seq: u64, rdv_id: u64, len: usize },
}

impl Unexpected {
    pub fn seq(&self) -> u64 {
        match self {
            Unexpected::Eager { seq, .. } | Unexpected::Rts { seq, .. } => *seq,
        }
    }
}

/// A stored unexpected message with its origin.
#[derive(Clone, Debug)]
pub struct UnexpectedEntry {
    pub gate: GateId,
    pub tag: u64,
    pub msg: Unexpected,
}

/// The matching engine.
#[derive(Default)]
pub struct MatchEngine {
    posted: HashMap<(GateId, u64), VecDeque<RecvReqId>>,
    /// Slab of unexpected entries; consumed entries become `None` and are
    /// skipped lazily by the indices.
    unexpected: Vec<Option<UnexpectedEntry>>,
    by_key: HashMap<(GateId, u64), VecDeque<usize>>,
    by_tag: HashMap<u64, VecDeque<usize>>,
    unexpected_live: usize,
    /// Debug check: last matched sequence number per (gate, tag).
    last_matched_seq: HashMap<(GateId, u64), u64>,
}

impl MatchEngine {
    pub fn new() -> MatchEngine {
        MatchEngine::default()
    }

    /// Post a receive for `(gate, tag)`. If an unexpected message is already
    /// queued it is consumed and returned — the caller completes the receive
    /// (eager) or starts the rendezvous (RTS) immediately. Otherwise the
    /// receive waits in the posted queue.
    pub fn post_recv(&mut self, gate: GateId, tag: u64, req: RecvReqId) -> Option<Unexpected> {
        if let Some(entry) = self.pop_unexpected_for(gate, tag) {
            self.check_order(gate, tag, entry.msg.seq());
            return Some(entry.msg);
        }
        self.posted.entry((gate, tag)).or_default().push_back(req);
        None
    }

    /// An eager or RTS message arrived from `gate` with `tag`. If a receive
    /// is posted, it is consumed and returned (the caller keeps the message
    /// payload); otherwise the message is stored as unexpected.
    pub fn arrived(&mut self, gate: GateId, tag: u64, msg: Unexpected) -> Option<RecvReqId> {
        if let Some(req) = self.try_match_arrival(gate, tag, msg.seq()) {
            return Some(req);
        }
        self.store_unexpected(gate, tag, msg);
        None
    }

    /// First phase of an arrival: pop a posted receive for `(gate, tag)` if
    /// one is waiting. `seq` feeds the FIFO debug check.
    pub fn try_match_arrival(&mut self, gate: GateId, tag: u64, seq: u64) -> Option<RecvReqId> {
        if let Some(queue) = self.posted.get_mut(&(gate, tag)) {
            if let Some(req) = queue.pop_front() {
                if queue.is_empty() {
                    self.posted.remove(&(gate, tag));
                }
                self.check_order(gate, tag, seq);
                return Some(req);
            }
        }
        None
    }

    /// Second phase of an arrival: no receive was posted, keep the message
    /// in the unexpected queue.
    pub fn store_unexpected(&mut self, gate: GateId, tag: u64, msg: Unexpected) {
        let idx = self.unexpected.len();
        self.unexpected.push(Some(UnexpectedEntry { gate, tag, msg }));
        self.by_key.entry((gate, tag)).or_default().push_back(idx);
        self.by_tag.entry(tag).or_default().push_back(idx);
        self.unexpected_live += 1;
    }

    /// Is an unexpected message from `(gate, tag)` queued? (Peek only.)
    pub fn probe(&self, gate: GateId, tag: u64) -> bool {
        self.peek_key(gate, tag).is_some()
    }

    /// The gate of the earliest-arrived unexpected message with `tag`, from
    /// any gate — the probe the ANY_SOURCE lists run on every poll (§3.2.2).
    pub fn probe_tag(&self, tag: u64) -> Option<GateId> {
        self.probe_tag_info(tag).map(|(g, _)| g)
    }

    /// Like [`MatchEngine::probe_tag`] but also reports the message's
    /// payload length (MPI_Iprobe needs a status).
    pub fn probe_tag_info(&self, tag: u64) -> Option<(GateId, usize)> {
        let deque = self.by_tag.get(&tag)?;
        for &idx in deque {
            if let Some(entry) = &self.unexpected[idx] {
                return Some((entry.gate, Self::msg_len(&entry.msg)));
            }
        }
        None
    }

    /// Payload length of the earliest unexpected message from `(gate, tag)`.
    pub fn probe_info(&self, gate: GateId, tag: u64) -> Option<usize> {
        let idx = self.peek_key(gate, tag)?;
        self.unexpected[idx]
            .as_ref()
            .map(|e| Self::msg_len(&e.msg))
    }

    fn msg_len(msg: &Unexpected) -> usize {
        match msg {
            Unexpected::Eager { data, .. } => data.len(),
            Unexpected::Rts { len, .. } => *len,
        }
    }

    /// Number of live unexpected messages (diagnostics).
    pub fn unexpected_len(&self) -> usize {
        self.unexpected_live
    }

    /// Number of posted receives still waiting (diagnostics).
    pub fn posted_len(&self) -> usize {
        self.posted.values().map(|q| q.len()).sum()
    }

    /// Gates with at least one posted receive waiting (sorted, deduped) —
    /// the peers this rank currently *expects inbound from*, which is the
    /// set the membership silence prober watches.
    pub fn posted_gates(&self) -> Vec<GateId> {
        let mut gates: Vec<GateId> = self
            .posted
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&(g, _), _)| g)
            .collect();
        gates.sort_unstable();
        gates.dedup();
        gates
    }

    /// Membership drain: remove every posted receive and unexpected
    /// message belonging to `gate`. Returns the orphaned receive requests
    /// (with their tags, so the caller can fail them) and the eager
    /// payload bytes dropped from the unexpected queue.
    pub fn purge_gate(&mut self, gate: GateId) -> (Vec<(RecvReqId, u64)>, usize) {
        let mut orphans: Vec<(RecvReqId, u64)> = Vec::new();
        let keys: Vec<(GateId, u64)> = self
            .posted
            .keys()
            .filter(|&&(g, _)| g == gate)
            .copied()
            .collect();
        let mut sorted = keys;
        sorted.sort_unstable();
        for key in sorted {
            if let Some(queue) = self.posted.remove(&key) {
                for req in queue {
                    orphans.push((req, key.1));
                }
            }
        }
        let mut dropped_bytes = 0usize;
        for entry in self.unexpected.iter_mut() {
            if entry.as_ref().is_some_and(|e| e.gate == gate) {
                let e = entry.take().expect("entry vanished");
                self.unexpected_live -= 1;
                if let Unexpected::Eager { data, .. } = &e.msg {
                    dropped_bytes += data.len();
                }
            }
        }
        // The by_key / by_tag indices skip dead slots lazily; drop the
        // gate's by_key deques outright so the map itself shrinks.
        self.by_key.retain(|&(g, _), _| g != gate);
        self.last_matched_seq.retain(|&(g, _), _| g != gate);
        (orphans, dropped_bytes)
    }

    /// Epoch quiesce: remove every posted receive and unexpected message
    /// whose *tag* satisfies `pred`, across all gates. Returns the orphaned
    /// receive requests (with gate and tag, so the caller can fail them),
    /// the number of unexpected entries dropped, and the eager payload
    /// bytes those entries held. The tag-predicate twin of
    /// [`MatchEngine::purge_gate`].
    pub fn purge_keys<F: Fn(u64) -> bool>(
        &mut self,
        pred: F,
    ) -> (Vec<(RecvReqId, GateId, u64)>, usize, usize) {
        let mut orphans: Vec<(RecvReqId, GateId, u64)> = Vec::new();
        let mut keys: Vec<(GateId, u64)> = self
            .posted
            .keys()
            .filter(|&&(_, tag)| pred(tag))
            .copied()
            .collect();
        keys.sort_unstable();
        for key in keys {
            if let Some(queue) = self.posted.remove(&key) {
                for req in queue {
                    orphans.push((req, key.0, key.1));
                }
            }
        }
        let mut dropped = 0usize;
        let mut dropped_bytes = 0usize;
        for entry in self.unexpected.iter_mut() {
            if entry.as_ref().is_some_and(|e| pred(e.tag)) {
                let e = entry.take().expect("entry vanished");
                self.unexpected_live -= 1;
                dropped += 1;
                if let Unexpected::Eager { data, .. } = &e.msg {
                    dropped_bytes += data.len();
                }
            }
        }
        // The by_tag index skips dead slots lazily; drop the matching
        // by_key deques and order checks so the maps themselves shrink.
        self.by_key.retain(|&(_, tag), _| !pred(tag));
        self.last_matched_seq.retain(|&(_, tag), _| !pred(tag));
        (orphans, dropped, dropped_bytes)
    }

    fn peek_key(&self, gate: GateId, tag: u64) -> Option<usize> {
        let deque = self.by_key.get(&(gate, tag))?;
        deque
            .iter()
            .copied()
            .find(|&idx| self.unexpected[idx].is_some())
    }

    fn pop_unexpected_for(&mut self, gate: GateId, tag: u64) -> Option<UnexpectedEntry> {
        let idx = self.peek_key(gate, tag)?;
        // Compact the by_key deque up to and including idx.
        if let Some(deque) = self.by_key.get_mut(&(gate, tag)) {
            while let Some(&front) = deque.front() {
                let dead = self.unexpected[front].is_none();
                if front == idx {
                    deque.pop_front();
                    break;
                } else if dead {
                    deque.pop_front();
                } else {
                    // Shouldn't happen: idx was the first live entry.
                    break;
                }
            }
        }
        let entry = self.unexpected[idx].take().expect("entry vanished");
        self.unexpected_live -= 1;
        // Lazily trim dead prefixes of the tag index.
        if let Some(tagq) = self.by_tag.get_mut(&entry.tag) {
            while let Some(&front) = tagq.front() {
                if self.unexpected[front].is_none() {
                    tagq.pop_front();
                } else {
                    break;
                }
            }
        }
        Some(entry)
    }

    /// FIFO-order sanity check on sender sequence numbers.
    fn check_order(&mut self, gate: GateId, tag: u64, seq: u64) {
        if let Some(prev) = self.last_matched_seq.insert((gate, tag), seq) {
            debug_assert!(
                seq > prev,
                "matching order violated on gate {gate:?} tag {tag}: seq {seq} after {prev}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eager(seq: u64) -> Unexpected {
        Unexpected::Eager {
            seq,
            data: NmBuf::from(vec![seq as u8]),
        }
    }

    #[test]
    fn posted_then_arrival_matches() {
        let mut m = MatchEngine::new();
        assert!(m.post_recv(GateId(2), 7, RecvReqId(0)).is_none());
        assert_eq!(m.posted_len(), 1);
        let hit = m.arrived(GateId(2), 7, eager(0));
        assert_eq!(hit, Some(RecvReqId(0)));
        assert_eq!(m.posted_len(), 0);
        assert_eq!(m.unexpected_len(), 0);
    }

    #[test]
    fn arrival_then_post_consumes_unexpected() {
        let mut m = MatchEngine::new();
        assert!(m.arrived(GateId(2), 7, eager(0)).is_none());
        assert_eq!(m.unexpected_len(), 1);
        match m.post_recv(GateId(2), 7, RecvReqId(0)) {
            Some(Unexpected::Eager { seq: 0, data }) => assert_eq!(&data[..], &[0]),
            other => panic!("expected eager, got {other:?}"),
        }
        assert_eq!(m.unexpected_len(), 0);
    }

    #[test]
    fn no_cross_tag_or_cross_gate_matching() {
        let mut m = MatchEngine::new();
        m.post_recv(GateId(1), 7, RecvReqId(0));
        // Different tag, same gate.
        assert!(m.arrived(GateId(1), 8, eager(0)).is_none());
        // Same tag, different gate.
        assert!(m.arrived(GateId(2), 7, eager(0)).is_none());
        assert_eq!(m.posted_len(), 1);
        assert_eq!(m.unexpected_len(), 2);
    }

    #[test]
    fn fifo_across_multiple_posts_and_arrivals() {
        let mut m = MatchEngine::new();
        m.post_recv(GateId(1), 7, RecvReqId(0));
        m.post_recv(GateId(1), 7, RecvReqId(1));
        assert_eq!(m.arrived(GateId(1), 7, eager(0)), Some(RecvReqId(0)));
        assert_eq!(m.arrived(GateId(1), 7, eager(1)), Some(RecvReqId(1)));
    }

    #[test]
    fn unexpected_consumed_in_arrival_order() {
        let mut m = MatchEngine::new();
        m.arrived(GateId(1), 7, eager(0));
        m.arrived(GateId(1), 7, eager(1));
        match m.post_recv(GateId(1), 7, RecvReqId(0)) {
            Some(u) => assert_eq!(u.seq(), 0),
            None => panic!("expected unexpected"),
        }
        match m.post_recv(GateId(1), 7, RecvReqId(1)) {
            Some(u) => assert_eq!(u.seq(), 1),
            None => panic!("expected unexpected"),
        }
    }

    #[test]
    fn probe_tag_returns_earliest_gate() {
        let mut m = MatchEngine::new();
        assert_eq!(m.probe_tag(7), None);
        m.arrived(GateId(3), 7, eager(0));
        m.arrived(GateId(1), 7, eager(0));
        // Gate 3's message arrived first.
        assert_eq!(m.probe_tag(7), Some(GateId(3)));
        // Consuming it reveals gate 1 as the next candidate.
        m.post_recv(GateId(3), 7, RecvReqId(0));
        assert_eq!(m.probe_tag(7), Some(GateId(1)));
        m.post_recv(GateId(1), 7, RecvReqId(1));
        assert_eq!(m.probe_tag(7), None);
    }

    #[test]
    fn probe_is_nondestructive() {
        let mut m = MatchEngine::new();
        m.arrived(GateId(1), 7, eager(0));
        assert!(m.probe(GateId(1), 7));
        assert!(m.probe(GateId(1), 7));
        assert!(!m.probe(GateId(1), 8));
        assert_eq!(m.unexpected_len(), 1);
    }

    #[test]
    fn rts_unexpected_is_probeable() {
        let mut m = MatchEngine::new();
        m.arrived(
            GateId(4),
            9,
            Unexpected::Rts {
                seq: 0,
                rdv_id: 11,
                len: 1 << 20,
            },
        );
        assert_eq!(m.probe_tag(9), Some(GateId(4)));
        match m.post_recv(GateId(4), 9, RecvReqId(0)) {
            Some(Unexpected::Rts { rdv_id: 11, len, .. }) => assert_eq!(len, 1 << 20),
            other => panic!("expected RTS, got {other:?}"),
        }
    }

    #[test]
    fn purge_keys_hits_only_matching_tags_across_gates() {
        let mut m = MatchEngine::new();
        m.post_recv(GateId(1), 100, RecvReqId(0));
        m.post_recv(GateId(2), 100, RecvReqId(1));
        m.post_recv(GateId(1), 7, RecvReqId(2));
        m.arrived(GateId(3), 100, eager(0));
        m.arrived(GateId(3), 7, eager(0));
        let (orphans, dropped, bytes) = m.purge_keys(|tag| tag == 100);
        assert_eq!(
            orphans,
            vec![
                (RecvReqId(0), GateId(1), 100),
                (RecvReqId(1), GateId(2), 100)
            ]
        );
        assert_eq!(dropped, 1);
        assert_eq!(bytes, 1);
        // The untouched tag keeps both its posted receive and its
        // unexpected message.
        assert_eq!(m.posted_len(), 1);
        assert_eq!(m.unexpected_len(), 1);
        assert!(m.probe(GateId(3), 7));
        assert!(!m.probe(GateId(3), 100));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "matching order violated")]
    fn out_of_order_seq_trips_debug_check() {
        let mut m = MatchEngine::new();
        m.post_recv(GateId(1), 7, RecvReqId(0));
        m.post_recv(GateId(1), 7, RecvReqId(1));
        m.arrived(GateId(1), 7, eager(5));
        m.arrived(GateId(1), 7, eager(3)); // going backwards
    }
}
