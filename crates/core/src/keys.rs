//! Communication-key layout shared by the core and the MPI layer.
//!
//! A key is the 64-bit tag carried on every wire envelope. The MPI layer
//! packs context, epoch, collective opcode, round and sequence into it; the
//! core treats it as opaque for matching but *does* crack it open for epoch
//! hygiene — a frame whose collective epoch predates the committed epoch is
//! stale and must be counted and dropped without reviving per-peer state
//! (DESIGN.md §13).
//!
//! Layout (most-significant first):
//!
//! ```text
//!   63..48  ctx     (16 bits)  0 = user point-to-point, 1 = collectives
//!   47..40  epoch   ( 8 bits)  communicator epoch (0 = the initial world)
//!   39..36  op      ( 4 bits)  collective opcode (OP_*)
//!   35..24  round   (12 bits)  protocol round inside one collective
//!   23..0   seq     (24 bits)  per-communicator collective sequence number
//! ```
//!
//! User-context keys only use `ctx` + low 32 tag bits; the epoch/op/round
//! fields are always zero there, so epoch filtering never touches them.

/// User point-to-point context (plain tags).
pub const USER_CTX: u16 = 0;
/// Collective context (epoch-scoped keys).
pub const COLL_CTX: u16 = 1;

/// Collective opcodes. 4 bits: 15 max.
pub const OP_BARRIER: u8 = 1;
pub const OP_BCAST: u8 = 2;
pub const OP_REDUCE: u8 = 3;
pub const OP_ALLTOALL: u8 = 4;
pub const OP_ALLGATHER: u8 = 5;
pub const OP_ALLTOALLV: u8 = 6;
pub const OP_TRYBAR: u8 = 7;
/// Fault-tolerant agreement (allowed to run inside a revoked epoch).
pub const OP_AGREE: u8 = 8;
/// Join-merge handshake (crosses epochs by design; always epoch 0 keys).
pub const OP_JOIN: u8 = 9;

/// Round value reserved for the agreement's DECIDED broadcast.
pub const ROUND_DECIDED: u16 = 0xFFF;

/// Build a user-context key from a plain tag.
pub fn user_key(tag: u32) -> u64 {
    ((USER_CTX as u64) << 48) | tag as u64
}

/// Build a collective key. Panics (debug) on field overflow — round is 12
/// bits, seq 24 bits, op 4 bits.
pub fn coll_key(epoch: u8, op: u8, round: u16, seq: u32) -> u64 {
    debug_assert!(op < 16, "collective opcode overflows 4 bits");
    debug_assert!(round < 4096, "collective round overflows 12 bits");
    debug_assert!(seq < (1 << 24), "collective seq overflows 24 bits");
    ((COLL_CTX as u64) << 48)
        | ((epoch as u64) << 40)
        | (((op & 0xF) as u64) << 36)
        | (((round & 0xFFF) as u64) << 24)
        | (seq & 0xFF_FFFF) as u64
}

/// Context field of a key.
pub fn ctx_of(key: u64) -> u16 {
    (key >> 48) as u16
}

/// Epoch field of a collective key.
pub fn epoch_of(key: u64) -> u8 {
    (key >> 40) as u8
}

/// Opcode field of a collective key.
pub fn op_of(key: u64) -> u8 {
    ((key >> 36) & 0xF) as u8
}

/// Round field of a collective key.
pub fn round_of(key: u64) -> u16 {
    ((key >> 24) & 0xFFF) as u16
}

/// Sequence field of a collective key.
pub fn seq_of(key: u64) -> u32 {
    (key & 0xFF_FFFF) as u32
}

/// The user-context tag carried in a [`user_key`].
pub fn user_tag_of(key: u64) -> u32 {
    (key & 0xffff_ffff) as u32
}

/// The *instance* of a collective key: the key with its round bits zeroed.
/// One collective operation (one epoch + op + seq triple) spans many
/// rounds; retirement filters match on the instance so every round frame —
/// including the DECIDED broadcast round — of a finished agreement is
/// caught by one entry.
pub fn instance_of(key: u64) -> u64 {
    key & !((0xFFFu64) << 24)
}

/// Is this a collective-context key?
pub fn is_coll(key: u64) -> bool {
    ctx_of(key) == COLL_CTX
}

/// Is this collective key exempt from epoch-staleness filtering?
/// Agreement runs *inside* revoked/superseded epochs by design, and the
/// join handshake deliberately crosses epochs on fixed epoch-0 keys.
pub fn epoch_exempt(key: u64) -> bool {
    matches!(op_of(key), OP_AGREE | OP_JOIN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_roundtrip() {
        let k = coll_key(3, OP_AGREE, 0x5A7, 0x00_1234);
        assert_eq!(ctx_of(k), COLL_CTX);
        assert_eq!(epoch_of(k), 3);
        assert_eq!(op_of(k), OP_AGREE);
        assert_eq!(round_of(k), 0x5A7);
        assert_eq!(seq_of(k), 0x00_1234);
        assert!(is_coll(k));
        assert!(epoch_exempt(k));
    }

    #[test]
    fn user_keys_are_disjoint_from_coll_keys() {
        let u = user_key(0xDEAD_BEEF);
        assert_eq!(ctx_of(u), USER_CTX);
        assert!(!is_coll(u));
        assert_eq!(user_tag_of(u), 0xDEAD_BEEF);
        // Even a zero-everything collective key differs in ctx.
        assert_ne!(u & (0xFFFF << 48), coll_key(0, OP_BARRIER, 0, 0) & (0xFFFF << 48));
    }

    #[test]
    fn instance_masks_only_round() {
        let a = coll_key(2, OP_AGREE, 7, 99);
        let b = coll_key(2, OP_AGREE, ROUND_DECIDED, 99);
        assert_eq!(instance_of(a), instance_of(b));
        assert_ne!(instance_of(a), instance_of(coll_key(2, OP_AGREE, 7, 100)));
        assert_ne!(instance_of(a), instance_of(coll_key(3, OP_AGREE, 7, 99)));
    }

    #[test]
    fn max_fields_do_not_collide() {
        let k = coll_key(255, 15, 4095, (1 << 24) - 1);
        assert_eq!(epoch_of(k), 255);
        assert_eq!(op_of(k), 15);
        assert_eq!(round_of(k), 4095);
        assert_eq!(seq_of(k), (1 << 24) - 1);
    }
}
