//! Contended-write-free protocol counters.
//!
//! [`StatsCells`] is the hot-path representation of [`NmStats`]: every
//! incrementable counter gets a constant index into an
//! [`obs::StripedCells`] slab, so a counter bump from any thread is one
//! `Relaxed` `fetch_add` on that thread's own cache lines — no shared
//! write contention, no lock. A [`StatsCells::snapshot`] merges the
//! per-thread slabs back into the plain [`NmStats`] struct that tests,
//! benchmarks and the fingerprint replay checker consume.
//!
//! Merge discipline (mirrors `obs::striped`):
//! - additive counters (`add`) merge by summation;
//! - high-water marks (`raise`, currently only `fc_peak_unex_bytes`)
//!   merge by maximum;
//! - gauges recomputed at snapshot time (`peer_entries`, rail-health and
//!   membership mirrors, the copy meter) are **not** stored here — the
//!   owner recomputes them in `NmCore::stats`, exactly as before.
//!
//! Under the single-threaded simulator only one stripe is ever touched,
//! so a snapshot is plainly the sequence of increments — bit-identical
//! to the old non-atomic field bumps, which is what keeps same-seed
//! replay fingerprints stable across this refactor.

use crate::core::NmStats;

/// Constant indices for every striped counter. Lower-case on purpose:
/// call sites read `stats.add(stat::eager_sends, 1)`, keeping the diff
/// from the old `stats.eager_sends += 1` form mechanical and greppable.
#[allow(non_upper_case_globals)]
pub mod stat {
    macro_rules! indices {
        ($($name:ident),+ $(,)?) => {
            indices!(@build 0usize; $($name),+);
        };
        (@build $idx:expr; $name:ident $(, $rest:ident)*) => {
            pub const $name: usize = $idx;
            indices!(@build $idx + 1; $($rest),*);
        };
        (@build $idx:expr;) => {
            /// Number of striped counters.
            pub const COUNT: usize = $idx;
        };
    }

    indices!(
        eager_sends,
        rdv_sends,
        packets_sent,
        aggregates_sent,
        frags_aggregated,
        data_chunks_sent,
        recv_completions,
        send_completions,
        eager_retries,
        rts_retries,
        cts_retries,
        data_retries,
        acks_sent,
        fins_sent,
        dup_envelopes,
        dup_data,
        protocol_errors,
        crc_drops,
        rerouted_bytes,
        fc_eager_admitted,
        fc_credit_stalls,
        fc_fallback_sends,
        fc_credits_returned,
        fc_credits_withheld,
        fc_peak_unex_bytes,
        membership_dead_peers,
        membership_aborted_sends,
        membership_aborted_recvs,
        membership_drained_entries,
        membership_stray_frames,
        membership_credits_released,
        membership_stale_epoch,
        revoked_epochs,
        revoked_ops,
    );
}

/// The striped counter bank behind [`NmStats`]. Shared-write-free on the
/// hot path; merged on read.
#[derive(Default)]
pub struct StatsCells {
    cells: obs::StripedCells<{ stat::COUNT }>,
}

impl StatsCells {
    pub fn new() -> StatsCells {
        StatsCells::default()
    }

    /// Bump an additive counter (see [`stat`] for indices).
    #[inline]
    pub fn add(&self, i: usize, n: u64) {
        self.cells.add(i, n);
    }

    /// Raise a high-water-mark counter to at least `v`.
    #[inline]
    pub fn raise(&self, i: usize, v: u64) {
        self.cells.raise(i, v);
    }

    /// Merged read of one additive counter.
    pub fn get(&self, i: usize) -> u64 {
        self.cells.sum(i)
    }

    /// Merged read of a high-water-mark counter (pairs with [`Self::raise`]).
    pub fn max_of(&self, i: usize) -> u64 {
        self.cells.max(i)
    }

    /// Merge every stripe into the plain snapshot struct. Gauges that the
    /// owner recomputes (`peer_entries`, rail health, membership
    /// transitions, the copy meter) are left at their defaults.
    pub fn snapshot(&self) -> NmStats {
        let c = &self.cells;
        NmStats {
            eager_sends: c.sum(stat::eager_sends),
            rdv_sends: c.sum(stat::rdv_sends),
            packets_sent: c.sum(stat::packets_sent),
            aggregates_sent: c.sum(stat::aggregates_sent),
            frags_aggregated: c.sum(stat::frags_aggregated),
            data_chunks_sent: c.sum(stat::data_chunks_sent),
            recv_completions: c.sum(stat::recv_completions),
            send_completions: c.sum(stat::send_completions),
            eager_retries: c.sum(stat::eager_retries),
            rts_retries: c.sum(stat::rts_retries),
            cts_retries: c.sum(stat::cts_retries),
            data_retries: c.sum(stat::data_retries),
            acks_sent: c.sum(stat::acks_sent),
            fins_sent: c.sum(stat::fins_sent),
            dup_envelopes: c.sum(stat::dup_envelopes),
            dup_data: c.sum(stat::dup_data),
            protocol_errors: c.sum(stat::protocol_errors),
            crc_drops: c.sum(stat::crc_drops),
            rail_transitions: 0,
            rerouted_bytes: c.sum(stat::rerouted_bytes),
            degraded_nanos: 0,
            probes_sent: 0,
            probe_acks: 0,
            fc_eager_admitted: c.sum(stat::fc_eager_admitted),
            fc_credit_stalls: c.sum(stat::fc_credit_stalls),
            fc_fallback_sends: c.sum(stat::fc_fallback_sends),
            fc_credits_returned: c.sum(stat::fc_credits_returned),
            fc_credits_withheld: c.sum(stat::fc_credits_withheld),
            fc_peak_unex_bytes: c.max(stat::fc_peak_unex_bytes),
            membership_transitions: 0,
            membership_dead_peers: c.sum(stat::membership_dead_peers),
            membership_aborted_sends: c.sum(stat::membership_aborted_sends),
            membership_aborted_recvs: c.sum(stat::membership_aborted_recvs),
            membership_drained_entries: c.sum(stat::membership_drained_entries),
            membership_stray_frames: c.sum(stat::membership_stray_frames),
            membership_credits_released: c.sum(stat::membership_credits_released),
            membership_stale_epoch: c.sum(stat::membership_stale_epoch),
            revoked_epochs: c.sum(stat::revoked_epochs),
            revoked_ops: c.sum(stat::revoked_ops),
            peer_entries: 0,
            copy: Default::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn indices_are_dense_and_distinct() {
        // The macro assigns 0..COUNT; spot-check the ends.
        assert_eq!(stat::eager_sends, 0);
        assert_eq!(stat::revoked_ops, stat::COUNT - 1);
    }

    #[test]
    fn snapshot_mirrors_increments() {
        let s = StatsCells::new();
        s.add(stat::eager_sends, 2);
        s.add(stat::rdv_sends, 1);
        s.add(stat::rerouted_bytes, 4096);
        s.raise(stat::fc_peak_unex_bytes, 100);
        s.raise(stat::fc_peak_unex_bytes, 40);
        let snap = s.snapshot();
        assert_eq!(snap.eager_sends, 2);
        assert_eq!(snap.rdv_sends, 1);
        assert_eq!(snap.rerouted_bytes, 4096);
        assert_eq!(snap.fc_peak_unex_bytes, 100);
        assert_eq!(snap.packets_sent, 0);
        assert_eq!(s.get(stat::eager_sends), 2);
    }

    #[test]
    fn concurrent_bumps_merge_exactly() {
        let s = Arc::new(StatsCells::new());
        let threads: Vec<_> = (0..4)
            .map(|k| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        s.add(stat::packets_sent, 1);
                        s.raise(stat::fc_peak_unex_bytes, k * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = s.snapshot();
        assert_eq!(snap.packets_sent, 4000);
        assert_eq!(snap.fc_peak_unex_bytes, 3999);
    }
}
