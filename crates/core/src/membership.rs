//! Per-peer liveness supervision — elastic membership.
//!
//! [`crate::railhealth`] answers "is this *rail* alive?"; this module
//! promotes those signals one level up to "is this *peer* alive?". The
//! distinction matters: a rail dying strands chunks that can reroute to
//! surviving rails, but a *node* dying strands every flow toward it on
//! every rail — the only correct response is to drain (abort the peer's
//! in-flight rendezvous through the protocol table, release its eager
//! credits, reclaim its lazily-populated map entries) and report clean
//! failures upward.
//!
//! ```text
//!      per-peer timeouts ≥ suspect_after      ≥ dead_after AND
//!                                             silence ≥ min_silence
//!   Up ─────────────────────────────▶ Suspect ───────────────────▶ Dead
//!    ▲                                  │                        (sticky)
//!    └──────── intact inbound ──────────┘
//! ```
//!
//! * Liveness is credited **only by intact inbound arrivals** (the PR-3
//!   lesson: crediting our own send attempts resurrects dead peers).
//! * A `Dead` verdict needs both a failure streak *and* a minimum inbound
//!   silence, so a slow-but-alive node that still gets the occasional
//!   frame through is never declared dead.
//! * Peers we only *receive* from (posted recvs, in-flight inbound
//!   rendezvous) generate no retransmission timeouts to attribute, so the
//!   supervisor probes them during silence; each unanswered probe
//!   interval counts as one failure.
//! * `Dead` is sticky — a rank id never rejoins a running job. (A *late
//!   join* is a peer we have never talked to, which starts `Up`.)
//!
//! Pure bookkeeping: no RNG, no wall clock — membership verdicts replay
//! bit-for-bit with the simulation.

use std::collections::BTreeMap;

use simnet::SimTime;

use crate::config::MembershipConfig;

/// Liveness verdict for one peer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PeerLiveness {
    Up,
    Suspect,
    Dead,
}

#[derive(Clone, Copy, Debug)]
struct Cell {
    state: PeerLiveness,
    /// Consecutive failures (retransmission timeouts or unanswered probe
    /// intervals) attributed to this peer.
    fail_streak: u32,
    /// Instant of the most recent intact inbound arrival (creation time
    /// until something arrives).
    last_inbound: SimTime,
    /// Earliest instant the silence prober may charge the next failure.
    next_probe_at: SimTime,
}

/// Mutable per-peer liveness table owned by the core (under its lock).
/// Lazily populated — idle peers cost nothing, matching the PR-7
/// O(active-flows) discipline.
#[derive(Debug)]
pub struct MembershipTable {
    cfg: MembershipConfig,
    cells: BTreeMap<usize, Cell>,
    transitions: u64,
    /// Verdict log: `(peer, detected_at, silence_nanos)` per Dead verdict,
    /// in verdict order — the detection-latency histogram's raw data.
    deaths: Vec<(usize, SimTime, u64)>,
    /// Transition edges not yet drained by the owner: `(peer, new state)`
    /// in transition order — the core turns these into obs spans.
    pending_events: Vec<(usize, PeerLiveness)>,
}

impl MembershipTable {
    pub fn new(cfg: MembershipConfig) -> MembershipTable {
        MembershipTable {
            cfg,
            cells: BTreeMap::new(),
            transitions: 0,
            deaths: Vec::new(),
            pending_events: Vec::new(),
        }
    }

    fn cell(&mut self, peer: usize, now: SimTime) -> &mut Cell {
        self.cells.entry(peer).or_insert(Cell {
            state: PeerLiveness::Up,
            fail_streak: 0,
            last_inbound: now,
            next_probe_at: now + self.cfg.probe_interval,
        })
    }

    pub fn state(&self, peer: usize) -> PeerLiveness {
        self.cells
            .get(&peer)
            .map(|c| c.state)
            .unwrap_or(PeerLiveness::Up)
    }

    pub fn is_dead(&self, peer: usize) -> bool {
        self.state(peer) == PeerLiveness::Dead
    }

    /// Total state-machine transitions so far (any edge).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Dead verdicts in verdict order: `(peer, detected_at, silence_ns)`
    /// where `silence_ns` is how long the peer had been inbound-silent
    /// when the verdict fired (the detection latency, as seen from this
    /// rank).
    pub fn deaths(&self) -> &[(usize, SimTime, u64)] {
        &self.deaths
    }

    /// Peers currently declared dead, ascending.
    pub fn dead_peers(&self) -> Vec<usize> {
        self.cells
            .iter()
            .filter(|(_, c)| c.state == PeerLiveness::Dead)
            .map(|(p, _)| *p)
            .collect()
    }

    fn set_state(&mut self, peer: usize, state: PeerLiveness, now: SimTime) {
        let cell = self.cells.get_mut(&peer).expect("cell exists");
        if cell.state != state {
            if state == PeerLiveness::Dead {
                let silence = (now - cell.last_inbound).as_nanos();
                self.deaths.push((peer, now, silence));
            }
            let cell = self.cells.get_mut(&peer).expect("cell exists");
            cell.state = state;
            self.transitions += 1;
            self.pending_events.push((peer, state));
        }
    }

    /// Drain transition edges recorded since the last call (the owner
    /// turns each into an obs span).
    pub fn take_transition_events(&mut self) -> Vec<(usize, PeerLiveness)> {
        std::mem::take(&mut self.pending_events)
    }

    /// An intact frame arrived from `peer`. The only way to earn liveness.
    /// Dead is sticky: stray frames from a drained peer must be filtered
    /// *before* this call (counted, not credited).
    pub fn record_inbound(&mut self, peer: usize, now: SimTime) {
        let interval = self.cfg.probe_interval;
        let cell = self.cell(peer, now);
        if cell.state == PeerLiveness::Dead {
            return;
        }
        cell.fail_streak = 0;
        cell.last_inbound = now;
        cell.next_probe_at = now + interval;
        if cell.state == PeerLiveness::Suspect {
            self.set_state(peer, PeerLiveness::Up, now);
        }
    }

    /// A retransmission timeout that was *armed* at `armed_at` fired at
    /// `now`. The attribution contract: a timeout only indicts the peer
    /// if the peer stayed inbound-silent for the whole armed window. If
    /// an intact frame arrived at or after `armed_at`, the peer proved
    /// itself alive *during* the window — the lost frame indicts the
    /// link (rail health handles that), not the node, and charging the
    /// node would let one unlucky flow indict a demonstrably live peer.
    /// Returns `true` on a fresh `Dead` verdict, like [`record_failure`].
    ///
    /// [`record_failure`]: MembershipTable::record_failure
    pub fn record_timeout(&mut self, peer: usize, armed_at: SimTime, now: SimTime) -> bool {
        let cell = self.cell(peer, now);
        if cell.state != PeerLiveness::Dead && cell.last_inbound >= armed_at {
            return false;
        }
        self.record_failure(peer, now)
    }

    /// A retransmission timeout was attributed to `peer` (any rail).
    /// Returns `true` when this failure produced a fresh `Dead` verdict —
    /// the caller must then run the drain protocol exactly once.
    pub fn record_failure(&mut self, peer: usize, now: SimTime) -> bool {
        let cfg = self.cfg;
        let cell = self.cell(peer, now);
        if cell.state == PeerLiveness::Dead {
            return false;
        }
        cell.fail_streak = cell.fail_streak.saturating_add(1);
        let streak = cell.fail_streak;
        let silence = now - cell.last_inbound;
        match cell.state {
            PeerLiveness::Up if streak >= cfg.suspect_after => {
                self.set_state(peer, PeerLiveness::Suspect, now);
                false
            }
            PeerLiveness::Suspect
                if streak >= cfg.dead_after && silence >= cfg.min_silence =>
            {
                self.set_state(peer, PeerLiveness::Dead, now);
                true
            }
            _ => false,
        }
    }

    /// Silence prober: for each peer in `expected` (peers we currently
    /// hold inbound expectations from — posted receives, inbound
    /// rendezvous), if its probe interval elapsed with no intact arrival,
    /// charge one failure and request a probe frame. Returns
    /// `(probes to send, fresh Dead verdicts)`.
    pub fn tick<I>(&mut self, now: SimTime, expected: I) -> (Vec<usize>, Vec<usize>)
    where
        I: IntoIterator<Item = usize>,
    {
        let interval = self.cfg.probe_interval;
        let mut probes = Vec::new();
        let mut dead = Vec::new();
        for peer in expected {
            let cell = self.cell(peer, now);
            if cell.state == PeerLiveness::Dead || now < cell.next_probe_at {
                continue;
            }
            cell.next_probe_at = now + interval;
            probes.push(peer);
            if self.record_failure(peer, now) {
                dead.push(peer);
            }
        }
        (probes, dead)
    }

    /// Force a `Dead` verdict (tests, upper-layer teardown). Returns
    /// `true` if the peer was not already dead.
    pub fn declare_dead(&mut self, peer: usize, now: SimTime) -> bool {
        self.cell(peer, now);
        if self.state(peer) == PeerLiveness::Dead {
            return false;
        }
        self.set_state(peer, PeerLiveness::Dead, now);
        true
    }

    /// One-line digest for `debug_state()` dumps.
    pub fn summary(&self) -> String {
        let dead = self.dead_peers();
        format!(
            "membership[tracked={} dead={:?} transitions={}]",
            self.cells.len(),
            dead,
            self.transitions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1_000)
    }

    fn table() -> MembershipTable {
        MembershipTable::new(MembershipConfig::default())
    }

    #[test]
    fn failures_walk_up_suspect_dead_with_silence() {
        let cfg = MembershipConfig::default();
        let mut m = table();
        // Seed the cell with an inbound so last_inbound is known.
        m.record_inbound(7, t(0));
        for i in 0..cfg.suspect_after {
            assert!(!m.record_failure(7, t(10 + i as u64)));
        }
        assert_eq!(m.state(7), PeerLiveness::Suspect);
        // Plenty of failures but not enough silence: still only Suspect.
        for i in 0..20 {
            assert!(!m.record_failure(7, t(20 + i)));
        }
        assert_eq!(m.state(7), PeerLiveness::Suspect, "min_silence gates Dead");
        // Past the silence threshold the next failure kills it.
        let late = SimTime::ZERO + cfg.min_silence + SimDuration::micros(1);
        assert!(m.record_failure(7, late));
        assert_eq!(m.state(7), PeerLiveness::Dead);
        assert!(m.is_dead(7));
        assert_eq!(m.deaths().len(), 1);
        let (peer, _, silence) = m.deaths()[0];
        assert_eq!(peer, 7);
        assert!(silence >= cfg.min_silence.as_nanos());
    }

    #[test]
    fn inbound_resets_streak_and_clears_suspect() {
        let mut m = table();
        m.record_inbound(3, t(0));
        for i in 0..6 {
            m.record_failure(3, t(10 + i));
        }
        assert_eq!(m.state(3), PeerLiveness::Suspect);
        m.record_inbound(3, t(100));
        assert_eq!(m.state(3), PeerLiveness::Up, "inbound is the only credit");
        // A slow node: failures interleaved with occasional arrivals never
        // reaches Dead.
        for i in 0..100u64 {
            m.record_failure(3, t(200 + 10 * i));
            if i % 8 == 7 {
                m.record_inbound(3, t(205 + 10 * i));
            }
        }
        assert_ne!(m.state(3), PeerLiveness::Dead);
    }

    #[test]
    fn dead_is_sticky() {
        let mut m = table();
        assert!(m.declare_dead(5, t(50)));
        assert!(!m.declare_dead(5, t(60)), "second verdict is a no-op");
        m.record_inbound(5, t(70));
        assert!(m.is_dead(5), "stray inbound must not resurrect a dead peer");
        assert!(!m.record_failure(5, t(80)));
        assert_eq!(m.transitions(), 1);
    }

    #[test]
    fn unknown_peer_is_up_and_costs_nothing() {
        let m = table();
        assert_eq!(m.state(99), PeerLiveness::Up);
        assert!(!m.is_dead(99));
        assert!(m.dead_peers().is_empty());
    }

    #[test]
    fn silence_prober_kills_a_receive_only_peer() {
        let cfg = MembershipConfig::default();
        let mut m = table();
        m.record_inbound(2, t(0));
        let mut probes_sent = 0;
        let mut dead_at = None;
        let step = cfg.probe_interval + SimDuration::nanos(1);
        let mut now = t(0);
        for _ in 0..40 {
            now += step;
            let (probes, dead) = m.tick(now, [2usize]);
            probes_sent += probes.len();
            if !dead.is_empty() {
                dead_at = Some(now);
                break;
            }
        }
        let died = dead_at.expect("silent expected peer must be declared dead");
        assert!(probes_sent >= cfg.dead_after as usize);
        assert!(died - t(0) >= cfg.min_silence);
        // The verdict is reported exactly once.
        let (_, dead) = m.tick(died + step, [2usize]);
        assert!(dead.is_empty());
    }

    #[test]
    fn prober_spares_a_peer_that_keeps_sending() {
        let cfg = MembershipConfig::default();
        let mut m = table();
        m.record_inbound(4, t(0));
        let mut now = t(0);
        for i in 0..100 {
            now += SimDuration::nanos(cfg.probe_interval.as_nanos() / 2);
            if i % 3 == 0 {
                m.record_inbound(4, now);
            }
            let (_, dead) = m.tick(now, [4usize]);
            assert!(dead.is_empty());
        }
        assert_eq!(m.state(4), PeerLiveness::Up);
    }

    #[test]
    fn timeout_armed_before_inbound_is_not_charged() {
        let mut m = table();
        m.record_inbound(6, t(0));
        // Timer armed at t=10, peer delivered a frame at t=15, timer
        // fired at t=30: the window overlapped proven liveness — no
        // charge, no matter how many such timeouts fire.
        m.record_inbound(6, t(15));
        for _ in 0..50 {
            assert!(!m.record_timeout(6, t(10), t(30)));
        }
        assert_eq!(m.state(6), PeerLiveness::Up, "live peer must not be indicted");
        // Windows armed *after* the last arrival charge normally.
        let cfg = MembershipConfig::default();
        for i in 0..cfg.suspect_after as u64 {
            assert!(!m.record_timeout(6, t(16 + 20 * i), t(36 + 20 * i)));
        }
        assert_eq!(m.state(6), PeerLiveness::Suspect);
    }

    #[test]
    fn timeout_attribution_matches_record_failure_when_silent() {
        let cfg = MembershipConfig::default();
        let mut m = table();
        m.record_inbound(8, t(0));
        let mut now = SimTime::ZERO + cfg.min_silence;
        let step = SimDuration::micros(5);
        let mut died = false;
        for _ in 0..(cfg.dead_after + 2) {
            let armed = now;
            now += step;
            if m.record_timeout(8, armed, now) {
                died = true;
            }
        }
        assert!(died, "a silent peer still walks to Dead via record_timeout");
        assert!(m.is_dead(8));
    }

    #[test]
    fn summary_mentions_dead_peers() {
        let mut m = table();
        m.declare_dead(9, t(1));
        let s = m.summary();
        assert!(s.contains("membership["), "{s}");
        assert!(s.contains("[9]"), "{s}");
    }
}
