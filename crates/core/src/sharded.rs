//! Per-gate sharded tag matching.
//!
//! The real-thread hot path wants tag matching without a single global
//! lock: traffic from different peers should match concurrently. This
//! module shards [`MatchEngine`](crate::matching::MatchEngine)'s two
//! queues **by source gate** — each gate gets its own posted/unexpected
//! queues behind its own small mutex — because MPI matching for a
//! directed receive only ever consults one `(gate, tag)` key, so gates
//! are independent by construction.
//!
//! The one operation that crosses gates is the ANY_SOURCE probe
//! (`probe_tag`): "which gate has the **earliest-arrived** unexpected
//! message with this tag?". The single-queue engine answered it with a
//! global arrival-ordered index; here every stored unexpected arrival is
//! stamped with a ticket from one global `AtomicU64`, and `probe_tag`
//! takes the minimum ticket across shards. Tickets are handed out in
//! arrival order, so the arbitration is exactly the old FIFO — a property
//! the differential test in `tests/matcher_differential.rs` drives with
//! recorded envelope streams.
//!
//! All methods take `&self`: shards use interior mutability, so the core
//! can keep calling through `inner.matching` while injector threads probe
//! concurrently.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::matching::{GateId, Unexpected};
use crate::sr::RecvReqId;

/// One gate's private matching state.
#[derive(Default)]
struct ShardState {
    /// Posted receives waiting, FIFO per tag.
    posted: HashMap<u64, VecDeque<RecvReqId>>,
    /// Unexpected messages waiting, FIFO per tag, each stamped with its
    /// global arrival ticket.
    unexpected: HashMap<u64, VecDeque<(u64, Unexpected)>>,
    /// Debug check: last matched sequence number per tag.
    last_matched_seq: HashMap<u64, u64>,
}

impl ShardState {
    fn check_order(&mut self, gate: GateId, tag: u64, seq: u64) {
        if let Some(prev) = self.last_matched_seq.insert(tag, seq) {
            debug_assert!(
                seq > prev,
                "matching order violated on gate {gate:?} tag {tag}: seq {seq} after {prev}"
            );
        }
        let _ = gate;
    }
}

/// The sharded matching engine. API mirrors
/// [`MatchEngine`](crate::matching::MatchEngine) (which remains as the
/// single-queue differential oracle), with `&self` receivers.
pub struct ShardedMatchEngine {
    /// Gate registry: rarely written (first contact, purges), read on
    /// every operation. `BTreeMap` so cross-shard scans iterate in a
    /// deterministic order.
    shards: RwLock<BTreeMap<GateId, Arc<Mutex<ShardState>>>>,
    /// Global arrival clock for ANY_SOURCE FIFO arbitration.
    next_ticket: AtomicU64,
    /// Live unexpected entries across all shards (kept O(1) readable).
    unexpected_live: AtomicUsize,
    /// Posted receives waiting across all shards.
    posted_live: AtomicUsize,
}

impl Default for ShardedMatchEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedMatchEngine {
    pub fn new() -> ShardedMatchEngine {
        ShardedMatchEngine {
            shards: RwLock::new(BTreeMap::new()),
            next_ticket: AtomicU64::new(0),
            unexpected_live: AtomicUsize::new(0),
            posted_live: AtomicUsize::new(0),
        }
    }

    /// The gate's shard, created on first use.
    fn shard(&self, gate: GateId) -> Arc<Mutex<ShardState>> {
        if let Some(s) = self.shards.read().get(&gate) {
            return Arc::clone(s);
        }
        Arc::clone(self.shards.write().entry(gate).or_default())
    }

    /// Post a receive for `(gate, tag)`; consumes and returns a queued
    /// unexpected message if one is waiting.
    pub fn post_recv(&self, gate: GateId, tag: u64, req: RecvReqId) -> Option<Unexpected> {
        let shard = self.shard(gate);
        let mut st = shard.lock();
        if let Some(q) = st.unexpected.get_mut(&tag) {
            if let Some((_, msg)) = q.pop_front() {
                if q.is_empty() {
                    st.unexpected.remove(&tag);
                }
                self.unexpected_live.fetch_sub(1, Ordering::Relaxed);
                st.check_order(gate, tag, msg.seq());
                return Some(msg);
            }
        }
        st.posted.entry(tag).or_default().push_back(req);
        self.posted_live.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// An arrival from `(gate, tag)`: match a posted receive or store the
    /// message unexpected.
    pub fn arrived(&self, gate: GateId, tag: u64, msg: Unexpected) -> Option<RecvReqId> {
        if let Some(req) = self.try_match_arrival(gate, tag, msg.seq()) {
            return Some(req);
        }
        self.store_unexpected(gate, tag, msg);
        None
    }

    /// First phase of an arrival: pop a posted receive if one is waiting.
    pub fn try_match_arrival(&self, gate: GateId, tag: u64, seq: u64) -> Option<RecvReqId> {
        let shard = self.shard(gate);
        let mut st = shard.lock();
        if let Some(q) = st.posted.get_mut(&tag) {
            if let Some(req) = q.pop_front() {
                if q.is_empty() {
                    st.posted.remove(&tag);
                }
                self.posted_live.fetch_sub(1, Ordering::Relaxed);
                st.check_order(gate, tag, seq);
                return Some(req);
            }
        }
        None
    }

    /// Second phase of an arrival: keep the message in the gate's
    /// unexpected queue, stamped with the global arrival ticket.
    pub fn store_unexpected(&self, gate: GateId, tag: u64, msg: Unexpected) {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard(gate);
        let mut st = shard.lock();
        st.unexpected.entry(tag).or_default().push_back((ticket, msg));
        self.unexpected_live.fetch_add(1, Ordering::Relaxed);
    }

    /// Is an unexpected message from `(gate, tag)` queued? (Peek only.)
    pub fn probe(&self, gate: GateId, tag: u64) -> bool {
        let shard = self.shard(gate);
        let st = shard.lock();
        st.unexpected.get(&tag).is_some_and(|q| !q.is_empty())
    }

    /// The gate of the earliest-arrived unexpected message with `tag`
    /// across every gate: minimum arrival ticket across shards.
    pub fn probe_tag(&self, tag: u64) -> Option<GateId> {
        self.probe_tag_info(tag).map(|(g, _)| g)
    }

    /// Like [`ShardedMatchEngine::probe_tag`] with the payload length.
    pub fn probe_tag_info(&self, tag: u64) -> Option<(GateId, usize)> {
        let shards = self.shards.read();
        let mut best: Option<(u64, GateId, usize)> = None;
        for (&gate, shard) in shards.iter() {
            let st = shard.lock();
            if let Some((ticket, msg)) = st.unexpected.get(&tag).and_then(|q| q.front()) {
                if best.is_none_or(|(t, _, _)| *ticket < t) {
                    best = Some((*ticket, gate, Self::msg_len(msg)));
                }
            }
        }
        best.map(|(_, g, len)| (g, len))
    }

    /// Payload length of the earliest unexpected message from `(gate, tag)`.
    pub fn probe_info(&self, gate: GateId, tag: u64) -> Option<usize> {
        let shard = self.shard(gate);
        let st = shard.lock();
        st.unexpected
            .get(&tag)
            .and_then(|q| q.front())
            .map(|(_, msg)| Self::msg_len(msg))
    }

    fn msg_len(msg: &Unexpected) -> usize {
        match msg {
            Unexpected::Eager { data, .. } => data.len(),
            Unexpected::Rts { len, .. } => *len,
        }
    }

    /// Number of live unexpected messages (diagnostics).
    pub fn unexpected_len(&self) -> usize {
        self.unexpected_live.load(Ordering::Relaxed)
    }

    /// Number of posted receives still waiting (diagnostics).
    pub fn posted_len(&self) -> usize {
        self.posted_live.load(Ordering::Relaxed)
    }

    /// Gates with at least one posted receive waiting (sorted, deduped).
    pub fn posted_gates(&self) -> Vec<GateId> {
        let shards = self.shards.read();
        shards
            .iter()
            .filter(|(_, shard)| shard.lock().posted.values().any(|q| !q.is_empty()))
            .map(|(&g, _)| g)
            .collect()
    }

    /// Membership drain: remove every posted receive and unexpected
    /// message belonging to `gate`. Returns the orphaned receives (with
    /// tags) and the eager payload bytes dropped.
    pub fn purge_gate(&self, gate: GateId) -> (Vec<(RecvReqId, u64)>, usize) {
        let shard = {
            let mut shards = self.shards.write();
            shards.remove(&gate)
        };
        let Some(shard) = shard else {
            return (Vec::new(), 0);
        };
        let mut st = shard.lock();
        let mut orphans: Vec<(RecvReqId, u64)> = Vec::new();
        let mut tags: Vec<u64> = st.posted.keys().copied().collect();
        tags.sort_unstable();
        for tag in tags {
            if let Some(q) = st.posted.remove(&tag) {
                self.posted_live.fetch_sub(q.len(), Ordering::Relaxed);
                for req in q {
                    orphans.push((req, tag));
                }
            }
        }
        let mut dropped_bytes = 0usize;
        for (_, q) in st.unexpected.drain() {
            self.unexpected_live.fetch_sub(q.len(), Ordering::Relaxed);
            for (_, msg) in q {
                if let Unexpected::Eager { data, .. } = &msg {
                    dropped_bytes += data.len();
                }
            }
        }
        st.last_matched_seq.clear();
        (orphans, dropped_bytes)
    }

    /// Epoch quiesce: remove every posted receive and unexpected message
    /// whose *tag* satisfies `pred`, across all gates. Orphans are
    /// returned in `(gate, tag)` order, matching the single-queue engine.
    pub fn purge_keys<F: Fn(u64) -> bool>(
        &self,
        pred: F,
    ) -> (Vec<(RecvReqId, GateId, u64)>, usize, usize) {
        let shards = self.shards.read();
        let mut orphans: Vec<(RecvReqId, GateId, u64)> = Vec::new();
        let mut dropped = 0usize;
        let mut dropped_bytes = 0usize;
        // BTreeMap iteration gives ascending gates; tags sorted per gate,
        // so the orphan list comes out in global (gate, tag) order.
        for (&gate, shard) in shards.iter() {
            let mut st = shard.lock();
            let mut tags: Vec<u64> = st.posted.keys().copied().filter(|&t| pred(t)).collect();
            tags.sort_unstable();
            for tag in tags {
                if let Some(q) = st.posted.remove(&tag) {
                    self.posted_live.fetch_sub(q.len(), Ordering::Relaxed);
                    for req in q {
                        orphans.push((req, gate, tag));
                    }
                }
            }
            let doomed: Vec<u64> = st.unexpected.keys().copied().filter(|&t| pred(t)).collect();
            for tag in doomed {
                if let Some(q) = st.unexpected.remove(&tag) {
                    self.unexpected_live.fetch_sub(q.len(), Ordering::Relaxed);
                    dropped += q.len();
                    for (_, msg) in q {
                        if let Unexpected::Eager { data, .. } = &msg {
                            dropped_bytes += data.len();
                        }
                    }
                }
            }
            st.last_matched_seq.retain(|&tag, _| !pred(tag));
        }
        (orphans, dropped, dropped_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::NmBuf;

    fn eager(seq: u64) -> Unexpected {
        Unexpected::Eager {
            seq,
            data: NmBuf::from(vec![seq as u8]),
        }
    }

    #[test]
    fn any_source_arbitration_is_global_fifo() {
        let m = ShardedMatchEngine::new();
        m.arrived(GateId(3), 7, eager(0));
        m.arrived(GateId(1), 7, eager(0));
        // Gate 3's arrival holds the lower ticket.
        assert_eq!(m.probe_tag(7), Some(GateId(3)));
        m.post_recv(GateId(3), 7, RecvReqId(0));
        assert_eq!(m.probe_tag(7), Some(GateId(1)));
        m.post_recv(GateId(1), 7, RecvReqId(1));
        assert_eq!(m.probe_tag(7), None);
    }

    #[test]
    fn shards_do_not_cross_match() {
        let m = ShardedMatchEngine::new();
        m.post_recv(GateId(1), 7, RecvReqId(0));
        assert!(m.arrived(GateId(1), 8, eager(0)).is_none());
        assert!(m.arrived(GateId(2), 7, eager(0)).is_none());
        assert_eq!(m.posted_len(), 1);
        assert_eq!(m.unexpected_len(), 2);
    }

    #[test]
    fn purge_gate_reports_orphans_and_bytes() {
        let m = ShardedMatchEngine::new();
        m.post_recv(GateId(1), 9, RecvReqId(0));
        m.post_recv(GateId(1), 3, RecvReqId(1));
        m.arrived(GateId(1), 5, eager(0));
        m.arrived(GateId(2), 5, eager(0));
        let (orphans, bytes) = m.purge_gate(GateId(1));
        // Tag-sorted, like the single-queue engine's key sort.
        assert_eq!(orphans, vec![(RecvReqId(1), 3), (RecvReqId(0), 9)]);
        assert_eq!(bytes, 1);
        assert_eq!(m.posted_len(), 0);
        assert_eq!(m.unexpected_len(), 1);
        assert!(m.probe(GateId(2), 5));
    }

    #[test]
    fn purge_keys_spans_gates_in_order() {
        let m = ShardedMatchEngine::new();
        m.post_recv(GateId(2), 100, RecvReqId(1));
        m.post_recv(GateId(1), 100, RecvReqId(0));
        m.post_recv(GateId(1), 7, RecvReqId(2));
        m.arrived(GateId(3), 100, eager(0));
        let (orphans, dropped, bytes) = m.purge_keys(|t| t == 100);
        assert_eq!(
            orphans,
            vec![
                (RecvReqId(0), GateId(1), 100),
                (RecvReqId(1), GateId(2), 100)
            ]
        );
        assert_eq!((dropped, bytes), (1, 1));
        assert_eq!(m.posted_len(), 1);
    }
}
