//! Lock-free eager credit pools.
//!
//! Flow control charges every eager send one credit from the destination
//! gate's pool. On the single-threaded simulator path that pool used to be
//! a plain `HashMap<usize, u32>` inside the core's big mutex; the
//! real-thread front end wants to admit sends *without* taking that mutex,
//! so the pool is now a [`CreditPool`] — one `AtomicU32` per gate, CAS
//! acquire / clamped-CAS release — shared by `Arc` between the locked core
//! and any injector threads. The [`CreditBank`] is the per-gate registry:
//! lazily populated on first contact (preserving the O(active-flows)
//! peer-state accounting), drained when a peer dies.
//!
//! Conservation invariant (model-checked in `tests/loom_queue.rs`): with
//! capacity `C`, at all times `available + in_flight == C` — acquires and
//! releases never mint or leak a credit, and a release can never push the
//! pool above `C`.

use std::collections::HashMap;
use std::sync::Arc;

#[cfg(loom)]
use loom::sync::atomic::{AtomicU32, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicU32, Ordering};

/// One gate's eager credit pool: lock-free acquire/release against a fixed
/// capacity.
#[derive(Debug)]
pub struct CreditPool {
    avail: AtomicU32,
    cap: u32,
}

impl CreditPool {
    /// A full pool of `cap` credits.
    pub fn new(cap: u32) -> CreditPool {
        CreditPool {
            avail: AtomicU32::new(cap),
            cap,
        }
    }

    /// Take one credit; `false` when the pool is empty (the caller demotes
    /// the send to the rendezvous path).
    pub fn try_acquire(&self) -> bool {
        let mut cur = self.avail.load(Ordering::Acquire);
        loop {
            if cur == 0 {
                return false;
            }
            match self.avail.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Return `n` credits, clamped to capacity. Credits are only minted by
    /// our own sends, so a return that would overflow the pool indicates a
    /// protocol bug — asserted in debug builds, clamped in release.
    pub fn release(&self, n: u32) {
        let mut cur = self.avail.load(Ordering::Acquire);
        loop {
            debug_assert!(cur + n <= self.cap, "credit return overflows the pool");
            let next = cur.saturating_add(n).min(self.cap);
            match self
                .avail
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Credits currently available.
    pub fn available(&self) -> u32 {
        self.avail.load(Ordering::Acquire)
    }

    /// The pool's fixed capacity.
    pub fn capacity(&self) -> u32 {
        self.cap
    }
}

/// Per-gate registry of [`CreditPool`]s, lazily seeded at `cap` credits on
/// first contact with a gate. The registry itself is touched rarely (first
/// contact, drains, snapshots); the hot-path acquire/release goes through
/// the per-gate atomics.
#[derive(Debug, Default)]
pub struct CreditBank {
    cap: u32,
    pools: parking_lot::Mutex<HashMap<usize, Arc<CreditPool>>>,
}

impl CreditBank {
    /// A bank whose pools start full at `cap` credits.
    pub fn new(cap: u32) -> CreditBank {
        CreditBank {
            cap,
            pools: parking_lot::Mutex::new(HashMap::new()),
        }
    }

    /// The gate's pool, created full on first use. The returned `Arc` can
    /// be cached by injector threads to skip the registry lock entirely.
    pub fn pool(&self, gate: usize) -> Arc<CreditPool> {
        Arc::clone(
            self.pools
                .lock()
                .entry(gate)
                .or_insert_with(|| Arc::new(CreditPool::new(self.cap))),
        )
    }

    /// Take one credit from `gate`'s pool (creating the pool if this is
    /// first contact, mirroring the old lazy `HashMap::entry` seeding —
    /// a failed admission still materializes the peer entry).
    pub fn try_acquire(&self, gate: usize) -> bool {
        self.pool(gate).try_acquire()
    }

    /// Return `n` credits to `gate`'s pool, clamped to capacity.
    pub fn release(&self, gate: usize, n: u32) {
        self.pool(gate).release(n);
    }

    /// Drop `gate`'s pool (peer drain), returning the credits that were
    /// still available in it — the caller computes how many were in flight.
    pub fn remove(&self, gate: usize) -> Option<u32> {
        self.pools
            .lock()
            .remove(&gate)
            .map(|p| p.available())
    }

    /// Does `gate` have a materialized pool? (Peer-entry accounting.)
    pub fn contains(&self, gate: usize) -> bool {
        self.pools.lock().contains_key(&gate)
    }

    /// Number of materialized pools. (Peer-entry accounting.)
    pub fn len(&self) -> usize {
        self.pools.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.pools.lock().is_empty()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn acquire_exhausts_then_stalls() {
        let bank = CreditBank::new(2);
        assert!(bank.try_acquire(7));
        assert!(bank.try_acquire(7));
        assert!(!bank.try_acquire(7));
        bank.release(7, 1);
        assert!(bank.try_acquire(7));
    }

    #[test]
    fn failed_admission_still_materializes_the_peer_entry() {
        let bank = CreditBank::new(0);
        assert!(!bank.try_acquire(3));
        assert!(bank.contains(3));
        assert_eq!(bank.len(), 1);
    }

    #[test]
    fn release_clamps_at_capacity() {
        let pool = CreditPool::new(4);
        assert!(pool.try_acquire());
        // Returning more than was taken clamps (debug_assert in debug
        // builds guards the protocol; release builds clamp).
        pool.release(1);
        assert_eq!(pool.available(), 4);
    }

    #[test]
    fn remove_reports_remaining_credits() {
        let bank = CreditBank::new(8);
        assert!(bank.try_acquire(1));
        assert!(bank.try_acquire(1));
        assert_eq!(bank.remove(1), Some(6));
        assert_eq!(bank.remove(1), None);
        assert!(!bank.contains(1));
    }

    #[test]
    fn concurrent_acquire_release_conserves_credits() {
        let pool = Arc::new(CreditPool::new(4));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let mut held = 0u32;
                    for _ in 0..10_000 {
                        if pool.try_acquire() {
                            held += 1;
                        } else if held > 0 {
                            pool.release(1);
                            held -= 1;
                        }
                    }
                    while held > 0 {
                        pool.release(1);
                        held -= 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(pool.available(), 4);
    }
}
