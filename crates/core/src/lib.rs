//! # nmad — the NewMadeleine communication scheduling engine
//!
//! This crate is the paper's primary contribution: a reimplementation of the
//! NewMadeleine communication library (Aumage, Brunet, Furmento, Namyst —
//! the paper's reference [3]) as integrated into MPICH2.
//!
//! NewMadeleine's defining idea (§2.2): *"it works with the network's
//! activity. When a network is already fulfilled with communication
//! requests, NewMadeleine keeps a window of packets to send. Thus, when a
//! network becomes idle, it has the possibility to apply optimizations on
//! the accumulated communication requests before submitting them."*
//!
//! Concretely:
//!
//! * Sends become *packet wrappers* queued per destination **gate**
//!   ([`pack`]); nothing touches the NIC until a rail is idle.
//! * A pluggable [`strategy`] decides, each time a rail is idle, what to
//!   submit: the front packet ([`strategy::StratDefault`]), an aggregate of
//!   several small packets ([`strategy::StratAggreg`]), or size-proportional
//!   chunks across every rail of a (possibly heterogeneous) multirail
//!   configuration ([`strategy::StratSplitBalanced`]).
//! * The multirail split ratio comes from **network sampling** ([`sampling`]):
//!   each rail's latency/bandwidth profile is measured at startup and chunk
//!   sizes are solved so all rails finish together (the paper's reference
//!   [4]).
//! * Tag matching — posted-receive and unexpected queues — lives *inside*
//!   the library ([`matching`]), which is exactly why the MPICH2 integration
//!   bypasses CH3's own matching for inter-node traffic (§3.1.3).
//! * An internal eager / rendezvous protocol ([`core`]): large messages do
//!   RTS → CTS → DATA inside NewMadeleine, so the CH3 rendezvous would be a
//!   redundant nested handshake (§2.1.3, Fig. 2).
//! * The send/receive interface ([`sr`]): `sr_isend` / `sr_irecv` /
//!   `sr_test` / completion polling, with an *upper-layer cookie* per
//!   request — the mutual CH3↔NewMadeleine request pointers of §3.1.1.
//!
//! Request **cancellation is deliberately unsupported** (§2.2.1: "Any
//! request that has been previously posted has to be completed at some
//! point"). The entire MPI_ANY_SOURCE machinery of §3.2 exists because of
//! this; the API simply has no cancel entry point, and a test pins that
//! down.
//!
//! The library is purely functional with respect to time: all software
//! costs are charged by the MPI layer above (single calibration point, see
//! `mpi-ch3::costs`), while wire timing comes from the `simnet` fabric the
//! core is bound to.

// Data-path crate: every payload clone must be a metered zero-copy share
// (`NmBuf::share`/`slice`) or carry an ownership-constraint comment.
#![warn(clippy::redundant_clone)]

pub mod config;
pub mod core;
pub mod credit;
pub mod keys;
pub mod matching;
pub mod membership;
pub mod pack;
pub mod protocol;
pub mod railhealth;
pub mod sampling;
pub mod sharded;
pub mod sr;
pub mod stats;
pub mod strategy;
pub mod wire;

pub use crate::core::{NmCore, NmNet, NmStats};
pub use config::{FlowConfig, MembershipConfig, NmConfig, RetryConfig, StrategyKind};
pub use matching::GateId;
pub use membership::{MembershipTable, PeerLiveness};
pub use railhealth::{RailHealth, RailHealthTable};
pub use sampling::LinkProfile;
pub use sr::{NmCompletion, RecvReqId, SendReqId};
pub use wire::{NmWire, WirePayload, WIRE_HEADER_BYTES};
