//! Packet wrappers — the unit of work in the submission window.
//!
//! An `sr_isend` does not touch the NIC: it appends a [`PacketWrapper`] to
//! the destination gate's pending queue (the *window*). Strategies consume
//! the window whenever a rail is idle and turn wrappers into wire packets —
//! possibly several wrappers into one packet (aggregation) or one wrapper
//! into several packets (multirail split).

use simnet::{NmBuf, SimTime};

use crate::sr::SendReqId;

/// Identifier of a packet wrapper (unique per core instance).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PwId(pub u64);

/// What a wrapper carries.
#[derive(Clone, Debug)]
pub enum PwBody {
    /// A whole small message; completes `send_req` once on the wire.
    Eager {
        tag: u64,
        seq: u64,
        send_req: SendReqId,
    },
    /// Rendezvous request-to-send (control).
    Rts {
        tag: u64,
        seq: u64,
        rdv_id: u64,
        len: usize,
    },
    /// Rendezvous clear-to-send (control).
    Cts { rdv_id: u64 },
    /// Rendezvous payload; the only body a strategy may split.
    Data { rdv_id: u64, offset: usize },
}

/// One pending unit in a gate's submission window.
#[derive(Clone, Debug)]
pub struct PacketWrapper {
    pub id: PwId,
    /// Destination rank (gate).
    pub dst: usize,
    pub body: PwBody,
    pub data: NmBuf,
    /// When the wrapper entered the window (diagnostics / fairness).
    pub enqueued_at: SimTime,
}

impl PacketWrapper {
    /// May this wrapper be coalesced with neighbours into one aggregate?
    /// Only plain eager messages aggregate; control packets keep their own
    /// packet so the receiver reacts to them with minimum latency, and
    /// rendezvous data is already scheduled in bulk.
    pub fn can_aggregate(&self) -> bool {
        matches!(self.body, PwBody::Eager { .. })
    }

    /// May this wrapper be split into chunks across rails?
    pub fn can_split(&self) -> bool {
        matches!(self.body, PwBody::Data { .. })
    }

    /// Payload length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pw(body: PwBody, len: usize) -> PacketWrapper {
        PacketWrapper {
            id: PwId(0),
            dst: 1,
            body,
            data: NmBuf::from(vec![0u8; len]),
            enqueued_at: SimTime::ZERO,
        }
    }

    #[test]
    fn aggregation_and_split_eligibility() {
        let eager = pw(
            PwBody::Eager {
                tag: 0,
                seq: 0,
                send_req: SendReqId(0),
            },
            64,
        );
        assert!(eager.can_aggregate());
        assert!(!eager.can_split());

        let rts = pw(
            PwBody::Rts {
                tag: 0,
                seq: 0,
                rdv_id: 1,
                len: 1 << 20,
            },
            0,
        );
        assert!(!rts.can_aggregate());
        assert!(!rts.can_split());

        let data = pw(
            PwBody::Data {
                rdv_id: 1,
                offset: 0,
            },
            1 << 20,
        );
        assert!(!data.can_aggregate());
        assert!(data.can_split());
        assert_eq!(data.len(), 1 << 20);
        assert!(!data.is_empty());
    }
}
