//! Network sampling and the adaptive multirail split ratio.
//!
//! §2.2: "A network sampling mechanism is used to compute an adaptive split
//! ratio tailored to fit each available networks' abilities." In the real
//! library each driver is benchmarked at startup and the resulting
//! transfer-time curves stored; here the "benchmark" probes the simulator's
//! NIC model (which is noise-free, so two probe sizes recover the exact
//! affine curve — the same information the real sampling files contain).
//!
//! The split solves for chunk sizes such that **all rails finish at the same
//! time**: with profiles `tᵢ(s) = latᵢ + s/bwᵢ` and total size `S`, the
//! common finish time is
//!
//! ```text
//! T = (S + Σᵢ bwᵢ·latᵢ) / Σᵢ bwᵢ        chunkᵢ = bwᵢ·(T − latᵢ)
//! ```
//!
//! Rails whose latency exceeds `T` get nothing (they would only slow the
//! message down); the solve is repeated on the remaining rails.

use simnet::{NicModel, SimDuration};

/// An affine transfer-time profile for one rail: `t(s) = latency + s/bw`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkProfile {
    pub latency: SimDuration,
    /// Bytes per second.
    pub bandwidth_bps: f64,
}

impl LinkProfile {
    /// Sample a NIC model the way the startup sampling run measures real
    /// hardware: probe two sizes, fit the affine curve.
    pub fn sample(model: &NicModel) -> LinkProfile {
        let probe_small = model.transfer_time(0);
        let big = 1 << 20;
        let probe_big = model.transfer_time(big);
        let slope_ns_per_byte =
            (probe_big.as_nanos() - probe_small.as_nanos()) as f64 / big as f64;
        LinkProfile {
            latency: probe_small,
            bandwidth_bps: if slope_ns_per_byte > 0.0 {
                1e9 / slope_ns_per_byte
            } else {
                f64::INFINITY
            },
        }
    }

    /// Predicted one-way transfer time for `bytes`.
    pub fn predict(&self, bytes: usize) -> SimDuration {
        self.latency + SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bps)
    }
}

/// Compute the equal-finish-time split of `size` bytes over `profiles`.
/// Returns one chunk length per rail (zeros allowed); chunks sum to `size`.
pub fn split_sizes(size: usize, profiles: &[LinkProfile]) -> Vec<usize> {
    split_sizes_weighted(size, profiles, &vec![1.0; profiles.len()], 1)
}

/// Health-aware variant of [`split_sizes`]: each rail's bandwidth is scaled
/// by its scheduling `weight` (0 excludes the rail entirely — a `Down` or
/// `Probing` rail must carry zero payload), and any nonzero chunk smaller
/// than `min_chunk` is folded into the largest chunk (per-chunk header and
/// handoff costs would dominate below it). Chunks always sum to `size`.
///
/// If every weight is zero (no usable rail — the caller should not split at
/// all, but stay total), the weights are ignored and the plain profile
/// split is returned.
pub fn split_sizes_weighted(
    size: usize,
    profiles: &[LinkProfile],
    weights: &[f64],
    min_chunk: usize,
) -> Vec<usize> {
    assert!(!profiles.is_empty(), "split over zero rails");
    assert_eq!(profiles.len(), weights.len(), "one weight per rail");
    let all_dead = weights.iter().all(|&w| w <= 0.0);
    let effective: Vec<LinkProfile> = profiles
        .iter()
        .zip(weights)
        .map(|(p, &w)| LinkProfile {
            latency: p.latency,
            bandwidth_bps: p.bandwidth_bps * if all_dead { 1.0 } else { w.max(0.0) },
        })
        .collect();
    let usable = |i: usize| all_dead || weights[i] > 0.0;
    if effective.len() == 1 {
        return vec![size];
    }
    if (0..effective.len()).filter(|&i| usable(i)).count() == 1 {
        let mut chunks = vec![0usize; effective.len()];
        chunks[(0..effective.len()).find(|&i| usable(i)).unwrap()] = size;
        return chunks;
    }
    let mut chunks = solve_equal_finish(size, &effective, &|i| usable(i));
    enforce_min_chunk(&mut chunks, min_chunk);
    chunks
}

/// Fold nonzero chunks below `min_chunk` into the largest chunk.
fn enforce_min_chunk(chunks: &mut [usize], min_chunk: usize) {
    if min_chunk <= 1 {
        return;
    }
    loop {
        let Some(small) = chunks
            .iter()
            .position(|&c| c > 0 && c < min_chunk)
        else {
            return;
        };
        let largest = chunks
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != small)
            .max_by_key(|&(_, &c)| c)
            .map(|(i, _)| i);
        match largest {
            Some(big) if chunks[big] > 0 => {
                chunks[big] += chunks[small];
                chunks[small] = 0;
            }
            // Nothing else carries bytes: the "small" chunk is the whole
            // message, leave it.
            _ => return,
        }
    }
}

/// The equal-finish-time solve over the rails `usable` admits.
fn solve_equal_finish(
    size: usize,
    profiles: &[LinkProfile],
    usable: &dyn Fn(usize) -> bool,
) -> Vec<usize> {
    // Iteratively drop rails whose latency exceeds the common finish time.
    let mut active: Vec<bool> = (0..profiles.len()).map(usable).collect();
    loop {
        let sum_bw: f64 = profiles
            .iter()
            .zip(&active)
            .filter(|(_, &a)| a)
            .map(|(p, _)| p.bandwidth_bps)
            .sum();
        let sum_bw_lat: f64 = profiles
            .iter()
            .zip(&active)
            .filter(|(_, &a)| a)
            .map(|(p, _)| p.bandwidth_bps * p.latency.as_secs_f64())
            .sum();
        let t = (size as f64 + sum_bw_lat) / sum_bw; // seconds
        let mut dropped = false;
        for (i, p) in profiles.iter().enumerate() {
            if active[i] && p.latency.as_secs_f64() >= t {
                active[i] = false;
                dropped = true;
            }
        }
        if !dropped {
            // Assign chunks; fix rounding on the fastest active rail.
            let mut chunks = vec![0usize; profiles.len()];
            let mut assigned = 0usize;
            let mut best = None::<usize>;
            for (i, p) in profiles.iter().enumerate() {
                if !active[i] {
                    continue;
                }
                let c = (p.bandwidth_bps * (t - p.latency.as_secs_f64()))
                    .max(0.0)
                    .floor() as usize;
                let c = c.min(size - assigned);
                chunks[i] = c;
                assigned += c;
                if best.is_none_or(|b: usize| {
                    profiles[i].bandwidth_bps > profiles[b].bandwidth_bps
                }) {
                    best = Some(i);
                }
            }
            if assigned < size {
                chunks[best.expect("at least one active rail")] += size - assigned;
            }
            return chunks;
        }
        if active.iter().all(|&a| !a) {
            // Degenerate: give everything to the lowest-latency usable rail.
            let mut chunks = vec![0usize; profiles.len()];
            let best = profiles
                .iter()
                .enumerate()
                .filter(|&(i, _)| usable(i))
                .min_by_key(|(_, p)| p.latency)
                .map(|(i, _)| i)
                .unwrap();
            chunks[best] = size;
            return chunks;
        }
    }
}

/// Index of the rail with the lowest predicted completion time for `bytes`.
pub fn fastest_rail(bytes: usize, profiles: &[LinkProfile]) -> usize {
    profiles
        .iter()
        .enumerate()
        .min_by_key(|(_, p)| p.predict(bytes))
        .map(|(i, _)| i)
        .expect("fastest_rail over zero rails")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prof(lat_ns: u64, bw_mbps: f64) -> LinkProfile {
        LinkProfile {
            latency: SimDuration::nanos(lat_ns),
            bandwidth_bps: bw_mbps * 1024.0 * 1024.0,
        }
    }

    #[test]
    fn sampling_recovers_model() {
        let m = NicModel::connectx_ib();
        let p = LinkProfile::sample(&m);
        // The sampled zero-byte time includes the per-packet handoff cost —
        // exactly what a real sampling run would measure.
        assert_eq!(p.latency, m.send_overhead + m.latency);
        let rel = (p.bandwidth_bps - m.bandwidth_bps).abs() / m.bandwidth_bps;
        assert!(rel < 0.01, "bandwidth off by {rel}");
    }

    #[test]
    fn equal_rails_split_in_half() {
        let p = prof(1_000, 1000.0);
        let chunks = split_sizes(1 << 20, &[p, p]);
        assert_eq!(chunks.iter().sum::<usize>(), 1 << 20);
        let diff = chunks[0] as i64 - chunks[1] as i64;
        assert!(diff.abs() < 1024, "chunks {chunks:?} not balanced");
    }

    #[test]
    fn faster_rail_gets_proportionally_more() {
        // 2:1 bandwidth ratio, equal latency -> ~2:1 chunks.
        let a = prof(1_000, 2000.0);
        let b = prof(1_000, 1000.0);
        let size = 3 << 20;
        let chunks = split_sizes(size, &[a, b]);
        assert_eq!(chunks.iter().sum::<usize>(), size);
        let ratio = chunks[0] as f64 / chunks[1] as f64;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn equal_finish_times() {
        let a = prof(1_200, 1250.0);
        let b = prof(1_500, 1100.0);
        let size = 8 << 20;
        let chunks = split_sizes(size, &[a, b]);
        let ta = a.predict(chunks[0]);
        let tb = b.predict(chunks[1]);
        let diff = ta.as_nanos() as i64 - tb.as_nanos() as i64;
        assert!(diff.abs() < 100, "finish times differ: {ta:?} vs {tb:?}");
    }

    #[test]
    fn tiny_message_goes_to_single_low_latency_rail() {
        // Size so small the slow rail's latency exceeds the finish time.
        let fast = prof(500, 1000.0);
        let slow = prof(50_000, 4000.0);
        let chunks = split_sizes(64, &[fast, slow]);
        assert_eq!(chunks, vec![64, 0]);
    }

    #[test]
    fn split_is_exact_partition() {
        let a = prof(1_200, 1250.0);
        let b = prof(1_500, 1100.0);
        for &size in &[1usize, 100, 4096, 65_537, (4 << 20) + 3] {
            let chunks = split_sizes(size, &[a, b]);
            assert_eq!(chunks.iter().sum::<usize>(), size, "size {size}");
        }
    }

    #[test]
    fn single_rail_gets_everything() {
        assert_eq!(split_sizes(12345, &[prof(1, 1.0)]), vec![12345]);
    }

    #[test]
    fn zero_weight_rail_gets_nothing() {
        let a = prof(1_200, 1250.0);
        let b = prof(1_500, 1100.0);
        let size = 8 << 20;
        let chunks = split_sizes_weighted(size, &[a, b], &[1.0, 0.0], 4096);
        assert_eq!(chunks, vec![size, 0], "down rail must carry zero bytes");
        let chunks = split_sizes_weighted(size, &[a, b], &[0.0, 1.0], 4096);
        assert_eq!(chunks, vec![0, size]);
    }

    #[test]
    fn ramp_weight_shrinks_a_rails_share() {
        let p = prof(1_000, 1000.0);
        let size = 4 << 20;
        let healthy = split_sizes_weighted(size, &[p, p], &[1.0, 1.0], 1);
        let ramping = split_sizes_weighted(size, &[p, p], &[1.0, 0.25], 1);
        assert_eq!(ramping.iter().sum::<usize>(), size);
        assert!(
            ramping[1] < healthy[1] / 2,
            "quarter-weight rail got {} vs healthy {}",
            ramping[1],
            healthy[1]
        );
        assert!(ramping[1] > 0, "ramping rail still participates");
    }

    #[test]
    fn all_zero_weights_fall_back_to_plain_split() {
        let a = prof(1_200, 1250.0);
        let b = prof(1_500, 1100.0);
        let size = 8 << 20;
        assert_eq!(
            split_sizes_weighted(size, &[a, b], &[0.0, 0.0], 1),
            split_sizes(size, &[a, b])
        );
    }

    #[test]
    fn min_chunk_folds_slivers_into_largest() {
        let fast = prof(1_000, 4000.0);
        let slow = prof(1_000, 100.0);
        // Pick a size where the slow rail's share lands under min_chunk.
        let size = 200_000;
        let raw = split_sizes(size, &[fast, slow]);
        assert!(raw[1] > 0 && raw[1] < 8 * 1024, "premise: sliver {raw:?}");
        let folded = split_sizes_weighted(size, &[fast, slow], &[1.0, 1.0], 8 * 1024);
        assert_eq!(folded, vec![size, 0]);
        assert_eq!(folded.iter().sum::<usize>(), size);
    }

    #[test]
    fn weighted_split_matches_unweighted_at_full_weight() {
        let a = prof(1_200, 1250.0);
        let b = prof(1_500, 1100.0);
        for &size in &[1usize, 4096, 65_537, 4 << 20] {
            assert_eq!(
                split_sizes_weighted(size, &[a, b], &[1.0, 1.0], 1),
                split_sizes(size, &[a, b]),
                "size {size}"
            );
        }
    }

    #[test]
    fn fastest_rail_depends_on_size() {
        // Low-latency low-bandwidth vs high-latency high-bandwidth.
        let lat_rail = prof(500, 100.0);
        let bw_rail = prof(5_000, 10_000.0);
        assert_eq!(fastest_rail(1, &[lat_rail, bw_rail]), 0);
        assert_eq!(fastest_rail(10 << 20, &[lat_rail, bw_rail]), 1);
    }
}
