//! The multirail split strategy.
//!
//! Implements the behaviour Fig. 5 measures: "choose the fastest network
//! for small messages … and distribute the message chunks across the
//! multiple networks in case of large messages", with chunk sizes from the
//! sampling-based equal-finish-time solve so that "NewMadeleine is able to
//! balance the load according to each network's performance when they
//! differ" (§4.1.1).
//!
//! Also aggregates consecutive small sends opportunistically (the real
//! library composes strategies; `split_balanced` here subsumes the
//! aggregation rule so multirail runs still benefit from coalescing).

use std::collections::VecDeque;

use simnet::NmBuf;

use crate::config::NmConfig;
use crate::pack::{PacketWrapper, PwBody};
use crate::sampling::{split_sizes_weighted, LinkProfile};

use super::{pick_single_rail, schedulable_rails, RailState, Strategy, Submission};

#[derive(Default)]
pub struct StratSplitBalanced;

impl StratSplitBalanced {
    pub fn new() -> StratSplitBalanced {
        StratSplitBalanced
    }
}

impl Strategy for StratSplitBalanced {
    fn name(&self) -> &'static str {
        "split_balanced"
    }

    fn try_and_commit(
        &mut self,
        cfg: &NmConfig,
        pending: &mut VecDeque<PacketWrapper>,
        rails: &mut [RailState],
    ) -> Vec<Submission> {
        let mut out = Vec::new();
        loop {
            if !rails.iter().any(|r| r.idle) {
                return out;
            }
            let front = match pending.front() {
                Some(f) => f,
                None => return out,
            };
            // Splits go over healthy rails only: Down/Probing rails get
            // zero bytes, a ramping (recently re-admitted) rail gets a
            // weight-shrunk share.
            let usable = schedulable_rails(rails);
            if front.can_split() && front.len() >= cfg.multirail_threshold && usable.len() > 1 {
                // Large rendezvous data: split across every usable idle rail.
                let pw = pending.pop_front().unwrap();
                let profiles: Vec<LinkProfile> =
                    usable.iter().map(|&i| rails[i].profile).collect();
                let weights: Vec<f64> = usable.iter().map(|&i| rails[i].weight).collect();
                let chunks =
                    split_sizes_weighted(pw.len(), &profiles, &weights, cfg.min_split_chunk);
                let (rdv_id, base) = match pw.body {
                    PwBody::Data { rdv_id, offset } => (rdv_id, offset),
                    _ => unreachable!("can_split implies Data"),
                };
                let mut off = 0usize;
                for (k, &rail) in usable.iter().enumerate() {
                    let len = chunks[k];
                    if len == 0 {
                        continue;
                    }
                    let chunk = PacketWrapper {
                        id: pw.id,
                        dst: pw.dst,
                        body: PwBody::Data {
                            rdv_id,
                            offset: base + off,
                        },
                        data: pw.data.slice(off..off + len),
                        enqueued_at: pw.enqueued_at,
                    };
                    off += len;
                    rails[rail].idle = false;
                    out.push(Submission {
                        rail,
                        pws: vec![chunk],
                    });
                }
                debug_assert_eq!(off, pw.data.len(), "split must cover the payload");
                continue;
            }
            // Small (or single-usable-rail) case: fastest healthy idle rail
            // for the front packet, aggregating a prefix of small eager
            // sends. Falls back to an unhealthy rail rather than stalling.
            let len = front.len();
            let Some(rail) = pick_single_rail(rails, len) else {
                return out;
            };
            let first = pending.pop_front().unwrap();
            let mut pws = vec![first];
            if pws[0].can_aggregate() {
                let mut bytes = pws[0].len();
                while pws.len() < cfg.max_aggreg_count {
                    match pending.front() {
                        Some(next)
                            if next.can_aggregate()
                                && bytes + next.len() <= cfg.max_aggreg_bytes =>
                        {
                            bytes += next.len();
                            pws.push(pending.pop_front().unwrap());
                        }
                        _ => break,
                    }
                }
            }
            rails[rail].idle = false;
            out.push(Submission { rail, pws });
        }
    }
}

/// Build a zero-copy chunk view (used by tests to validate slicing).
#[allow(dead_code)]
fn slice_chunk(data: &NmBuf, off: usize, len: usize) -> NmBuf {
    data.slice(off..off + len)
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::super::Strategy;
    use super::*;

    #[test]
    fn small_message_takes_fastest_rail_only() {
        let mut s = StratSplitBalanced::new();
        let mut pending: VecDeque<_> = vec![eager_pw(0, 64)].into();
        let mut rs = rails(2);
        let subs = s.try_and_commit(&cfg(), &mut pending, &mut rs);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].rail, 0, "rail 0 is the low-latency rail");
        assert!(!rs[0].idle);
        assert!(rs[1].idle);
    }

    #[test]
    fn large_data_splits_across_both_rails() {
        let mut s = StratSplitBalanced::new();
        let size = 4 << 20;
        let mut pending: VecDeque<_> = vec![data_pw(0, 7, size)].into();
        let mut rs = rails(2);
        let subs = s.try_and_commit(&cfg(), &mut pending, &mut rs);
        assert_eq!(subs.len(), 2, "one chunk per rail");
        let total: usize = subs.iter().map(|s| s.pws[0].len()).sum();
        assert_eq!(total, size);
        // Offsets partition the payload contiguously.
        let mut chunks: Vec<(usize, usize)> = subs
            .iter()
            .map(|s| match s.pws[0].body {
                PwBody::Data { offset, .. } => (offset, s.pws[0].len()),
                _ => panic!("not data"),
            })
            .collect();
        chunks.sort_unstable();
        assert_eq!(chunks[0].0, 0);
        assert_eq!(chunks[0].0 + chunks[0].1, chunks[1].0);
        // The faster rail (0) gets the bigger chunk.
        let rail0_len = subs.iter().find(|s| s.rail == 0).unwrap().pws[0].len();
        let rail1_len = subs.iter().find(|s| s.rail == 1).unwrap().pws[0].len();
        assert!(rail0_len > rail1_len);
    }

    #[test]
    fn below_threshold_data_stays_single_rail() {
        let mut s = StratSplitBalanced::new();
        let c = cfg(); // multirail_threshold = 32K
        let mut pending: VecDeque<_> = vec![data_pw(0, 7, 16 * 1024)].into();
        let mut rs = rails(2);
        let subs = s.try_and_commit(&c, &mut pending, &mut rs);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].pws[0].len(), 16 * 1024);
    }

    #[test]
    fn single_idle_rail_disables_split() {
        let mut s = StratSplitBalanced::new();
        let mut pending: VecDeque<_> = vec![data_pw(0, 7, 4 << 20)].into();
        let mut rs = rails(2);
        rs[1].idle = false;
        let subs = s.try_and_commit(&cfg(), &mut pending, &mut rs);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].rail, 0);
        assert_eq!(subs[0].pws[0].len(), 4 << 20);
    }

    #[test]
    fn aggregates_small_prefix_like_aggreg() {
        let mut s = StratSplitBalanced::new();
        let mut pending: VecDeque<_> = (0..4).map(|i| eager_pw(i, 100)).collect();
        let mut rs = rails(2);
        let subs = s.try_and_commit(&cfg(), &mut pending, &mut rs);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].pws.len(), 4);
    }

    #[test]
    fn drains_queue_across_rails_until_all_busy() {
        let mut s = StratSplitBalanced::new();
        // Two large-ish eager messages: first takes rail 0, second rail 1
        // (both rails end up busy), third stays queued.
        let mut pending: VecDeque<_> = (0..3).map(|i| eager_pw(i, 12_000)).collect();
        let mut rs = rails(2);
        let subs = s.try_and_commit(&cfg(), &mut pending, &mut rs);
        assert_eq!(subs.len(), 2);
        assert_eq!(pending.len(), 1);
        assert!(!rs[0].idle && !rs[1].idle);
        // 12 KB exceeds the aggregate byte budget, so no coalescing.
        assert!(subs.iter().all(|s| s.pws.len() == 1));
    }

    #[test]
    fn down_rail_excluded_from_split() {
        use crate::railhealth::RailHealth;
        let mut s = StratSplitBalanced::new();
        let size = 4 << 20;
        let mut pending: VecDeque<_> = vec![data_pw(0, 7, size)].into();
        let mut rs = rails_with_health(2, 1, RailHealth::Down);
        let subs = s.try_and_commit(&cfg(), &mut pending, &mut rs);
        assert_eq!(subs.len(), 1, "split collapses onto the survivor");
        assert_eq!(subs[0].rail, 0);
        assert_eq!(subs[0].pws[0].len(), size, "every byte still goes out");
    }

    #[test]
    fn small_message_prefers_up_over_suspect() {
        use crate::railhealth::RailHealth;
        let mut s = StratSplitBalanced::new();
        let mut pending: VecDeque<_> = vec![eager_pw(0, 64)].into();
        // Rail 0 is faster but Suspect: the packet should take the slower
        // but fully healthy rail 1.
        let mut rs = rails_with_health(2, 0, RailHealth::Suspect);
        let subs = s.try_and_commit(&cfg(), &mut pending, &mut rs);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].rail, 1);
    }

    #[test]
    fn all_rails_down_still_makes_progress() {
        use crate::railhealth::RailHealth;
        let mut s = StratSplitBalanced::new();
        let mut pending: VecDeque<_> = vec![eager_pw(0, 64)].into();
        let mut rs = rails_with_health(2, 0, RailHealth::Down);
        rs[1].health = RailHealth::Down;
        rs[1].weight = 0.0;
        let subs = s.try_and_commit(&cfg(), &mut pending, &mut rs);
        assert_eq!(subs.len(), 1, "traffic never stalls on health alone");
    }

    #[test]
    fn all_rails_busy_accumulates_window() {
        let mut s = StratSplitBalanced::new();
        let mut pending: VecDeque<_> = vec![eager_pw(0, 64)].into();
        let mut rs = rails(2);
        rs[0].idle = false;
        rs[1].idle = false;
        assert!(s.try_and_commit(&cfg(), &mut pending, &mut rs).is_empty());
        assert_eq!(pending.len(), 1);
    }
}
