//! Scheduling strategies — the "sophisticated strategies for sending
//! messages" of the abstract.
//!
//! A strategy is consulted whenever the core tries to move packet wrappers
//! from a gate's submission window onto NICs. It sees the window and the
//! momentary rail states (idle/busy + sampled profile) and returns
//! submissions; the core executes them. Strategies are pure decision
//! procedures, which keeps them unit-testable in isolation.
//!
//! ## Ordering contract
//!
//! Strategies may reorder *across* gates (the core calls them per gate) and
//! may pick different rails for successive packets; envelope packets
//! (eager/RTS) carry sequence numbers and the receiving core reorders, so
//! correctness never depends on strategy behaviour. Within one submission,
//! aggregated fragments must preserve window order (asserted by tests).

mod aggreg;
mod split_balanced;
mod split_equal;
mod strat_default;

pub use aggreg::StratAggreg;
pub use split_balanced::StratSplitBalanced;
pub use split_equal::StratSplitEqual;
pub use strat_default::StratDefault;

use std::collections::VecDeque;

use crate::config::{NmConfig, StrategyKind};
use crate::pack::PacketWrapper;
use crate::sampling::LinkProfile;

/// Momentary state of one rail as the strategy sees it. The strategy marks
/// rails busy as it assigns packets so a single pass over several gates
/// cannot double-book a rail.
#[derive(Clone, Copy, Debug)]
pub struct RailState {
    pub idle: bool,
    pub profile: LinkProfile,
}

/// One wire packet to emit: `pws` is a single wrapper, or several
/// aggregatable wrappers coalesced into one transfer.
#[derive(Debug)]
pub struct Submission {
    pub rail: usize,
    pub pws: Vec<PacketWrapper>,
}

/// The strategy contract: "called when a driver becomes idle, may aggregate
/// several pending packet wrappers into one transfer or split one wrapper
/// across rails".
pub trait Strategy: Send {
    fn name(&self) -> &'static str;

    /// Consume whatever the strategy decides to send now from `pending`
    /// (the gate's window) given `rails`; mark used rails busy in `rails`.
    fn try_and_commit(
        &mut self,
        cfg: &NmConfig,
        pending: &mut VecDeque<PacketWrapper>,
        rails: &mut [RailState],
    ) -> Vec<Submission>;
}

/// Instantiate the strategy selected by the configuration.
pub fn make(kind: StrategyKind) -> Box<dyn Strategy> {
    match kind {
        StrategyKind::Default => Box::new(StratDefault::new()),
        StrategyKind::Aggreg => Box::new(StratAggreg::new()),
        StrategyKind::SplitBalanced => Box::new(StratSplitBalanced::new()),
        StrategyKind::SplitEqual => Box::new(StratSplitEqual::new()),
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::pack::{PwBody, PwId};
    use crate::sr::SendReqId;
    use simnet::{NmBuf, SimDuration, SimTime};

    pub fn eager_pw(id: u64, len: usize) -> PacketWrapper {
        PacketWrapper {
            id: PwId(id),
            dst: 1,
            body: PwBody::Eager {
                tag: 1,
                seq: id,
                send_req: SendReqId(id as u32),
            },
            data: NmBuf::from(vec![id as u8; len]),
            enqueued_at: SimTime::ZERO,
        }
    }

    pub fn data_pw(id: u64, rdv_id: u64, len: usize) -> PacketWrapper {
        PacketWrapper {
            id: PwId(id),
            dst: 1,
            body: PwBody::Data { rdv_id, offset: 0 },
            data: NmBuf::from(vec![0u8; len]),
            enqueued_at: SimTime::ZERO,
        }
    }

    pub fn rails(n: usize) -> Vec<RailState> {
        // Rail 0 is the fastest (IB-like), later rails slightly slower.
        (0..n)
            .map(|i| RailState {
                idle: true,
                profile: LinkProfile {
                    latency: SimDuration::nanos(1_200 + 300 * i as u64),
                    bandwidth_bps: (1250.0 - 150.0 * i as f64) * 1024.0 * 1024.0,
                },
            })
            .collect()
    }

    pub fn cfg() -> NmConfig {
        NmConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_each_kind() {
        assert_eq!(make(StrategyKind::Default).name(), "default");
        assert_eq!(make(StrategyKind::Aggreg).name(), "aggreg");
        assert_eq!(make(StrategyKind::SplitBalanced).name(), "split_balanced");
    }
}
