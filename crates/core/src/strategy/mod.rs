//! Scheduling strategies — the "sophisticated strategies for sending
//! messages" of the abstract.
//!
//! A strategy is consulted whenever the core tries to move packet wrappers
//! from a gate's submission window onto NICs. It sees the window and the
//! momentary rail states (idle/busy + sampled profile) and returns
//! submissions; the core executes them. Strategies are pure decision
//! procedures, which keeps them unit-testable in isolation.
//!
//! ## Ordering contract
//!
//! Strategies may reorder *across* gates (the core calls them per gate) and
//! may pick different rails for successive packets; envelope packets
//! (eager/RTS) carry sequence numbers and the receiving core reorders, so
//! correctness never depends on strategy behaviour. Within one submission,
//! aggregated fragments must preserve window order (asserted by tests).

mod aggreg;
mod split_balanced;
mod split_equal;
mod strat_default;

pub use aggreg::StratAggreg;
pub use split_balanced::StratSplitBalanced;
pub use split_equal::StratSplitEqual;
pub use strat_default::StratDefault;

use std::collections::VecDeque;

use crate::config::{NmConfig, StrategyKind};
use crate::pack::PacketWrapper;
use crate::railhealth::RailHealth;
use crate::sampling::{fastest_rail, LinkProfile};

/// Momentary state of one rail as the strategy sees it. The strategy marks
/// rails busy as it assigns packets so a single pass over several gates
/// cannot double-book a rail.
#[derive(Clone, Copy, Debug)]
pub struct RailState {
    pub idle: bool,
    pub profile: LinkProfile,
    /// Live health from the rail-health state machine (`Up` when health
    /// tracking is off).
    pub health: RailHealth,
    /// Scheduling weight: 1.0 for a healthy rail, 0.0 for `Down`/`Probing`
    /// ones, ramping back up after re-admission. Splits renormalize over
    /// it; a zero-weight rail gets no payload bytes.
    pub weight: f64,
}

impl RailState {
    /// May the strategy hand this rail payload traffic right now?
    pub fn schedulable(&self) -> bool {
        self.idle && self.health.usable() && self.weight > 0.0
    }
}

/// Rails a strategy may split payload across: idle, usable, weighted.
pub(crate) fn schedulable_rails(rails: &[RailState]) -> Vec<usize> {
    (0..rails.len()).filter(|&i| rails[i].schedulable()).collect()
}

/// Single-rail choice with a progress guarantee: the fastest idle `Up`
/// rail, else the fastest idle still-usable (`Suspect`) one, else the
/// fastest idle rail of any state — with every rail unhealthy the traffic
/// still goes out (the retry layer owns recovery; stalling here would turn
/// a degraded fabric into a livelock).
pub(crate) fn pick_single_rail(rails: &[RailState], bytes: usize) -> Option<usize> {
    let idle: Vec<usize> = (0..rails.len()).filter(|&i| rails[i].idle).collect();
    if idle.is_empty() {
        return None;
    }
    let up: Vec<usize> = idle
        .iter()
        .copied()
        .filter(|&i| rails[i].health == RailHealth::Up && rails[i].weight > 0.0)
        .collect();
    let cand = if !up.is_empty() {
        up
    } else {
        let usable: Vec<usize> = idle
            .iter()
            .copied()
            .filter(|&i| rails[i].health.usable())
            .collect();
        if !usable.is_empty() {
            usable
        } else {
            idle
        }
    };
    let profiles: Vec<LinkProfile> = cand.iter().map(|&i| rails[i].profile).collect();
    Some(cand[fastest_rail(bytes, &profiles)])
}

/// Lowest-index schedulable rail, falling back to the lowest-index idle
/// rail — the single-rail strategies' (default/aggreg) rail choice.
pub(crate) fn first_usable_rail(rails: &[RailState]) -> Option<usize> {
    rails
        .iter()
        .position(RailState::schedulable)
        .or_else(|| rails.iter().position(|r| r.idle))
}

/// One wire packet to emit: `pws` is a single wrapper, or several
/// aggregatable wrappers coalesced into one transfer.
#[derive(Debug)]
pub struct Submission {
    pub rail: usize,
    pub pws: Vec<PacketWrapper>,
}

/// The strategy contract: "called when a driver becomes idle, may aggregate
/// several pending packet wrappers into one transfer or split one wrapper
/// across rails".
pub trait Strategy: Send {
    fn name(&self) -> &'static str;

    /// Consume whatever the strategy decides to send now from `pending`
    /// (the gate's window) given `rails`; mark used rails busy in `rails`.
    fn try_and_commit(
        &mut self,
        cfg: &NmConfig,
        pending: &mut VecDeque<PacketWrapper>,
        rails: &mut [RailState],
    ) -> Vec<Submission>;
}

/// Instantiate the strategy selected by the configuration.
pub fn make(kind: StrategyKind) -> Box<dyn Strategy> {
    match kind {
        StrategyKind::Default => Box::new(StratDefault::new()),
        StrategyKind::Aggreg => Box::new(StratAggreg::new()),
        StrategyKind::SplitBalanced => Box::new(StratSplitBalanced::new()),
        StrategyKind::SplitEqual => Box::new(StratSplitEqual::new()),
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::pack::{PwBody, PwId};
    use crate::sr::SendReqId;
    use simnet::{NmBuf, SimDuration, SimTime};

    pub fn eager_pw(id: u64, len: usize) -> PacketWrapper {
        PacketWrapper {
            id: PwId(id),
            dst: 1,
            body: PwBody::Eager {
                tag: 1,
                seq: id,
                send_req: SendReqId(id as u32),
            },
            data: NmBuf::from(vec![id as u8; len]),
            enqueued_at: SimTime::ZERO,
        }
    }

    pub fn data_pw(id: u64, rdv_id: u64, len: usize) -> PacketWrapper {
        PacketWrapper {
            id: PwId(id),
            dst: 1,
            body: PwBody::Data { rdv_id, offset: 0 },
            data: NmBuf::from(vec![0u8; len]),
            enqueued_at: SimTime::ZERO,
        }
    }

    pub fn rails(n: usize) -> Vec<RailState> {
        // Rail 0 is the fastest (IB-like), later rails slightly slower.
        (0..n)
            .map(|i| RailState {
                idle: true,
                profile: LinkProfile {
                    latency: SimDuration::nanos(1_200 + 300 * i as u64),
                    bandwidth_bps: (1250.0 - 150.0 * i as f64) * 1024.0 * 1024.0,
                },
                health: RailHealth::Up,
                weight: 1.0,
            })
            .collect()
    }

    /// `rails(n)` with one rail forced into a health state (weight follows:
    /// 0 unless the state is usable).
    pub fn rails_with_health(n: usize, rail: usize, health: RailHealth) -> Vec<RailState> {
        let mut rs = rails(n);
        rs[rail].health = health;
        rs[rail].weight = if health.usable() { 1.0 } else { 0.0 };
        rs
    }

    pub fn cfg() -> NmConfig {
        NmConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_each_kind() {
        assert_eq!(make(StrategyKind::Default).name(), "default");
        assert_eq!(make(StrategyKind::Aggreg).name(), "aggreg");
        assert_eq!(make(StrategyKind::SplitBalanced).name(), "split_balanced");
    }
}
