//! The aggregation strategy.
//!
//! "When a network becomes idle, it has the possibility to apply
//! optimizations on the accumulated communication requests before
//! submitting them … such strategies may use, for instance, reordering
//! techniques or messages aggregation" (§2.2).
//!
//! While the rail is busy, small sends to the same gate pile up in the
//! window; when the rail frees, a *prefix* of consecutive aggregatable
//! wrappers is coalesced into a single wire packet (bounded by
//! [`crate::config::NmConfig::max_aggreg_bytes`] / `max_aggreg_count`),
//! trading one NIC latency for a few subheader bytes per message.
//! Non-aggregatable packets (control, rendezvous data) break the run and go
//! out alone, preserving window order.

use std::collections::VecDeque;

use crate::config::NmConfig;
use crate::pack::PacketWrapper;

use super::{first_usable_rail, RailState, Strategy, Submission};

#[derive(Default)]
pub struct StratAggreg;

impl StratAggreg {
    pub fn new() -> StratAggreg {
        StratAggreg
    }
}

impl Strategy for StratAggreg {
    fn name(&self) -> &'static str {
        "aggreg"
    }

    fn try_and_commit(
        &mut self,
        cfg: &NmConfig,
        pending: &mut VecDeque<PacketWrapper>,
        rails: &mut [RailState],
    ) -> Vec<Submission> {
        let mut out = Vec::new();
        // Primary healthy rail (failover: next usable index when the
        // first is demoted; any idle rail when everything is unhealthy).
        let rail = match first_usable_rail(rails) {
            Some(r) => r,
            None => return out,
        };
        let first = match pending.pop_front() {
            Some(pw) => pw,
            None => return out,
        };
        let mut pws = vec![first];
        if pws[0].can_aggregate() {
            let mut bytes = pws[0].len();
            while pws.len() < cfg.max_aggreg_count {
                match pending.front() {
                    Some(next)
                        if next.can_aggregate()
                            && bytes + next.len() <= cfg.max_aggreg_bytes =>
                    {
                        bytes += next.len();
                        pws.push(pending.pop_front().unwrap());
                    }
                    _ => break,
                }
            }
        }
        rails[rail].idle = false;
        out.push(Submission { rail, pws });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::super::Strategy;
    use super::*;
    use crate::pack::PwBody;

    #[test]
    fn aggregates_consecutive_small_sends() {
        let mut s = StratAggreg::new();
        let mut pending: VecDeque<_> =
            (0..5).map(|i| eager_pw(i, 100)).collect();
        let mut rs = rails(1);
        let subs = s.try_and_commit(&cfg(), &mut pending, &mut rs);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].pws.len(), 5, "all five coalesce into one packet");
        // Window order preserved inside the aggregate.
        let ids: Vec<u64> = subs[0].pws.iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert!(pending.is_empty());
    }

    #[test]
    fn respects_byte_budget() {
        let mut s = StratAggreg::new();
        let c = cfg(); // max_aggreg_bytes = 8192
        let mut pending: VecDeque<_> = (0..4).map(|i| eager_pw(i, 3000)).collect();
        let mut rs = rails(1);
        let subs = s.try_and_commit(&c, &mut pending, &mut rs);
        // 3000+3000 fits; +3000 would exceed 8192.
        assert_eq!(subs[0].pws.len(), 2);
        assert_eq!(pending.len(), 2);
    }

    #[test]
    fn respects_count_budget() {
        let mut s = StratAggreg::new();
        let c = cfg(); // max_aggreg_count = 16
        let mut pending: VecDeque<_> = (0..20).map(|i| eager_pw(i, 1)).collect();
        let mut rs = rails(1);
        let subs = s.try_and_commit(&c, &mut pending, &mut rs);
        assert_eq!(subs[0].pws.len(), 16);
        assert_eq!(pending.len(), 4);
    }

    #[test]
    fn control_packet_breaks_the_run() {
        let mut s = StratAggreg::new();
        let mut pending: VecDeque<_> = VecDeque::new();
        pending.push_back(eager_pw(0, 10));
        let mut rts = eager_pw(1, 0);
        rts.body = PwBody::Rts {
            tag: 1,
            seq: 1,
            rdv_id: 9,
            len: 1 << 20,
        };
        pending.push_back(rts);
        pending.push_back(eager_pw(2, 10));
        let mut rs = rails(1);
        let subs = s.try_and_commit(&cfg(), &mut pending, &mut rs);
        // Only the first eager goes out; the RTS stops the aggregation run.
        assert_eq!(subs[0].pws.len(), 1);
        assert_eq!(pending.len(), 2);
    }

    #[test]
    fn lone_control_packet_goes_out_alone() {
        let mut s = StratAggreg::new();
        let mut pending: VecDeque<_> = VecDeque::new();
        let mut cts = eager_pw(0, 0);
        cts.body = PwBody::Cts { rdv_id: 3 };
        pending.push_back(cts);
        pending.push_back(eager_pw(1, 10));
        let mut rs = rails(1);
        let subs = s.try_and_commit(&cfg(), &mut pending, &mut rs);
        assert_eq!(subs[0].pws.len(), 1);
        assert!(matches!(subs[0].pws[0].body, PwBody::Cts { .. }));
    }

    #[test]
    fn busy_rail_accumulates_window() {
        let mut s = StratAggreg::new();
        let mut pending: VecDeque<_> = (0..3).map(|i| eager_pw(i, 10)).collect();
        let mut rs = rails(1);
        rs[0].idle = false;
        assert!(s.try_and_commit(&cfg(), &mut pending, &mut rs).is_empty());
        assert_eq!(pending.len(), 3, "window keeps accumulating");
    }
}
