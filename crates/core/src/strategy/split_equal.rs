//! Ablation strategy: multirail splitting with a **fixed 50/50 ratio**
//! instead of the sampled equal-finish-time solve.
//!
//! Exists to quantify the value of the paper's sampling mechanism (§2.2,
//! reference [4]): on heterogeneous rails the naive split finishes when
//! the *slower* rail finishes, wasting the fast rail's tail. The
//! `ablations` bench binary compares the two.

use std::collections::VecDeque;

use crate::config::NmConfig;
use crate::pack::{PacketWrapper, PwBody};

use super::{pick_single_rail, schedulable_rails, RailState, Strategy, Submission};

#[derive(Default)]
pub struct StratSplitEqual;

impl StratSplitEqual {
    pub fn new() -> StratSplitEqual {
        StratSplitEqual
    }
}

impl Strategy for StratSplitEqual {
    fn name(&self) -> &'static str {
        "split_equal"
    }

    fn try_and_commit(
        &mut self,
        cfg: &NmConfig,
        pending: &mut VecDeque<PacketWrapper>,
        rails: &mut [RailState],
    ) -> Vec<Submission> {
        let mut out = Vec::new();
        loop {
            if !rails.iter().any(|r| r.idle) {
                return out;
            }
            let front = match pending.front() {
                Some(f) => f,
                None => return out,
            };
            // Same survivor filtering as split_balanced so the ablation
            // isolates the ratio choice, not the failover behaviour.
            let usable = schedulable_rails(rails);
            if front.can_split() && front.len() >= cfg.multirail_threshold && usable.len() > 1 {
                let pw = pending.pop_front().unwrap();
                let (rdv_id, base) = match pw.body {
                    PwBody::Data { rdv_id, offset } => (rdv_id, offset),
                    _ => unreachable!("can_split implies Data"),
                };
                // Equal shares, remainder to the last usable rail.
                let share = pw.len() / usable.len();
                let mut off = 0usize;
                for (k, &rail) in usable.iter().enumerate() {
                    let len = if k + 1 == usable.len() {
                        pw.len() - off
                    } else {
                        share
                    };
                    if len == 0 {
                        continue;
                    }
                    let chunk = PacketWrapper {
                        id: pw.id,
                        dst: pw.dst,
                        body: PwBody::Data {
                            rdv_id,
                            offset: base + off,
                        },
                        data: pw.data.slice(off..off + len),
                        enqueued_at: pw.enqueued_at,
                    };
                    off += len;
                    rails[rail].idle = false;
                    out.push(Submission {
                        rail,
                        pws: vec![chunk],
                    });
                }
                continue;
            }
            // Small messages: same policy as split_balanced (fastest
            // healthy idle rail) so the ablation isolates the ratio choice.
            let len = front.len();
            let Some(rail) = pick_single_rail(rails, len) else {
                return out;
            };
            let pw = pending.pop_front().unwrap();
            rails[rail].idle = false;
            out.push(Submission {
                rail,
                pws: vec![pw],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::super::Strategy;
    use super::*;

    #[test]
    fn splits_exactly_in_half_regardless_of_profiles() {
        let mut s = StratSplitEqual::new();
        let size = 4 << 20;
        let mut pending: VecDeque<_> = vec![data_pw(0, 7, size)].into();
        let mut rs = rails(2); // rail 0 is faster
        let subs = s.try_and_commit(&cfg(), &mut pending, &mut rs);
        assert_eq!(subs.len(), 2);
        let lens: Vec<usize> = subs.iter().map(|s| s.pws[0].len()).collect();
        assert_eq!(lens[0], size / 2);
        assert_eq!(lens[1], size - size / 2);
    }

    #[test]
    fn small_messages_still_take_fastest_rail() {
        let mut s = StratSplitEqual::new();
        let mut pending: VecDeque<_> = vec![eager_pw(0, 64)].into();
        let mut rs = rails(2);
        let subs = s.try_and_commit(&cfg(), &mut pending, &mut rs);
        assert_eq!(subs[0].rail, 0);
    }

    #[test]
    fn down_rail_collapses_split_onto_survivor() {
        use crate::railhealth::RailHealth;
        let mut s = StratSplitEqual::new();
        let size = 4 << 20;
        let mut pending: VecDeque<_> = vec![data_pw(0, 7, size)].into();
        let mut rs = rails_with_health(2, 0, RailHealth::Down);
        let subs = s.try_and_commit(&cfg(), &mut pending, &mut rs);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].rail, 1);
        assert_eq!(subs[0].pws[0].len(), size);
    }
}
