//! The default strategy: strict FIFO, one packet per idle pass, always on
//! the primary rail. No aggregation, no splitting — the reference point the
//! optimizing strategies are measured against (and the right choice for a
//! single-rail configuration when the workload has no burstiness).

use std::collections::VecDeque;

use crate::config::NmConfig;
use crate::pack::PacketWrapper;

use super::{first_usable_rail, RailState, Strategy, Submission};

#[derive(Default)]
pub struct StratDefault;

impl StratDefault {
    pub fn new() -> StratDefault {
        StratDefault
    }
}

impl Strategy for StratDefault {
    fn name(&self) -> &'static str {
        "default"
    }

    fn try_and_commit(
        &mut self,
        _cfg: &NmConfig,
        pending: &mut VecDeque<PacketWrapper>,
        rails: &mut [RailState],
    ) -> Vec<Submission> {
        let mut out = Vec::new();
        // One packet per pass on the primary (lowest-index) healthy rail;
        // with every rail unhealthy, fall back to the first idle one so
        // traffic keeps flowing for the retry layer to repair.
        if let Some(rail) = first_usable_rail(rails) {
            if let Some(pw) = pending.pop_front() {
                rails[rail].idle = false;
                out.push(Submission {
                    rail,
                    pws: vec![pw],
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::super::Strategy;
    use super::*;

    #[test]
    fn submits_front_packet_when_idle() {
        let mut s = StratDefault::new();
        let mut pending: VecDeque<_> = vec![eager_pw(0, 10), eager_pw(1, 10)].into();
        let mut rs = rails(2);
        let subs = s.try_and_commit(&cfg(), &mut pending, &mut rs);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].rail, 0);
        assert_eq!(subs[0].pws.len(), 1);
        assert_eq!(subs[0].pws[0].id.0, 0);
        assert_eq!(pending.len(), 1);
        assert!(!rs[0].idle, "primary rail must be marked busy");
        assert!(rs[1].idle, "default never touches secondary rails");
    }

    #[test]
    fn holds_window_when_rail_busy() {
        let mut s = StratDefault::new();
        let mut pending: VecDeque<_> = vec![eager_pw(0, 10)].into();
        let mut rs = rails(1);
        rs[0].idle = false;
        let subs = s.try_and_commit(&cfg(), &mut pending, &mut rs);
        assert!(subs.is_empty());
        assert_eq!(pending.len(), 1, "packet stays in the window");
    }

    #[test]
    fn empty_window_is_a_noop() {
        let mut s = StratDefault::new();
        let mut pending: VecDeque<PacketWrapper> = VecDeque::new();
        let mut rs = rails(1);
        assert!(s.try_and_commit(&cfg(), &mut pending, &mut rs).is_empty());
        assert!(rs[0].idle);
    }
}
