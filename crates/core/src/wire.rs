//! NewMadeleine's wire packet format.
//!
//! Every fabric transfer carries one [`NmWire`]. The header fields are kept
//! as struct members (the simulation shares an address space) but their
//! modelled wire size — [`WIRE_HEADER_BYTES`] per packet plus
//! [`AGG_SUBHEADER_BYTES`] per aggregated fragment — is charged to the NIC,
//! so aggregation trades per-packet latency against extra header bytes the
//! way the real library does.

use simnet::NmBuf;

/// Modelled size of the packet header on the wire.
pub const WIRE_HEADER_BYTES: usize = 32;

/// Modelled per-fragment subheader inside an aggregate packet.
pub const AGG_SUBHEADER_BYTES: usize = 16;

/// One eager fragment inside an aggregate packet.
#[derive(Clone, Debug)]
pub struct EagerFrag {
    pub tag: u64,
    pub seq: u64,
    pub data: NmBuf,
}

/// Payload variants of a wire packet.
#[derive(Clone, Debug)]
pub enum WirePayload {
    /// A whole small message.
    Eager { tag: u64, seq: u64, data: NmBuf },
    /// Several small messages to the same gate coalesced into one NIC
    /// transfer by the aggregation strategy.
    Aggregate(Vec<EagerFrag>),
    /// Rendezvous request-to-send: announces a large message.
    Rts {
        tag: u64,
        seq: u64,
        rdv_id: u64,
        len: usize,
    },
    /// Rendezvous clear-to-send: the receiver is ready for `rdv_id`.
    Cts { rdv_id: u64 },
    /// A chunk of rendezvous data (multirail transfers produce several,
    /// one per rail, with distinct offsets).
    Data {
        rdv_id: u64,
        offset: usize,
        data: NmBuf,
    },
    /// Retry mode only — cumulative acknowledgement for one (src, tag)
    /// envelope flow: every sequence number below `next` has arrived.
    Ack { tag: u64, next: u64 },
    /// Retry mode only — the receiver finished assembling `rdv_id`; the
    /// sender may release the payload and complete the send.
    RdvFin { rdv_id: u64 },
}

impl WirePayload {
    /// Duplicate this payload without copying payload bytes: data-bearing
    /// variants share their [`NmBuf`] (a metered refcount bump), control
    /// variants are plain field copies. Retransmission queues use this so
    /// keeping a packet around for replay never clones the payload.
    pub fn share(&self) -> WirePayload {
        match self {
            WirePayload::Eager { tag, seq, data } => WirePayload::Eager {
                tag: *tag,
                seq: *seq,
                data: data.share(),
            },
            WirePayload::Aggregate(frags) => WirePayload::Aggregate(
                frags
                    .iter()
                    .map(|f| EagerFrag {
                        tag: f.tag,
                        seq: f.seq,
                        data: f.data.share(),
                    })
                    .collect(),
            ),
            WirePayload::Rts { tag, seq, rdv_id, len } => WirePayload::Rts {
                tag: *tag,
                seq: *seq,
                rdv_id: *rdv_id,
                len: *len,
            },
            WirePayload::Cts { rdv_id } => WirePayload::Cts { rdv_id: *rdv_id },
            WirePayload::Data { rdv_id, offset, data } => WirePayload::Data {
                rdv_id: *rdv_id,
                offset: *offset,
                data: data.share(),
            },
            WirePayload::Ack { tag, next } => WirePayload::Ack {
                tag: *tag,
                next: *next,
            },
            WirePayload::RdvFin { rdv_id } => WirePayload::RdvFin { rdv_id: *rdv_id },
        }
    }
}

/// A packet as it crosses the fabric.
#[derive(Clone, Debug)]
pub struct NmWire {
    /// Sender's global rank (identifies the gate at the receiver).
    pub src_rank: usize,
    /// Receiver's global rank (the node sink demultiplexes on this).
    pub dst_rank: usize,
    pub payload: WirePayload,
}

impl NmWire {
    /// Total modelled wire size: header + payload bytes.
    pub fn wire_bytes(&self) -> usize {
        WIRE_HEADER_BYTES
            + match &self.payload {
                WirePayload::Eager { data, .. } => data.len(),
                WirePayload::Aggregate(frags) => frags
                    .iter()
                    .map(|f| AGG_SUBHEADER_BYTES + f.data.len())
                    .sum(),
                WirePayload::Rts { .. } => 16,
                WirePayload::Cts { .. } => 8,
                WirePayload::Data { data, .. } => 8 + data.len(),
                WirePayload::Ack { .. } => 16,
                WirePayload::RdvFin { .. } => 8,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eager_wire_size_is_header_plus_payload() {
        let w = NmWire {
            src_rank: 0,
            dst_rank: 1,
            payload: WirePayload::Eager {
                tag: 1,
                seq: 0,
                data: NmBuf::from(vec![0u8; 100]),
            },
        };
        assert_eq!(w.wire_bytes(), WIRE_HEADER_BYTES + 100);
    }

    #[test]
    fn aggregate_charges_subheaders() {
        let frag = |n: usize| EagerFrag {
            tag: 0,
            seq: 0,
            data: NmBuf::from(vec![0u8; n]),
        };
        let w = NmWire {
            src_rank: 0,
            dst_rank: 1,
            payload: WirePayload::Aggregate(vec![frag(10), frag(20)]),
        };
        assert_eq!(
            w.wire_bytes(),
            WIRE_HEADER_BYTES + 2 * AGG_SUBHEADER_BYTES + 30
        );
    }

    #[test]
    fn control_packets_are_small() {
        let rts = NmWire {
            src_rank: 0,
            dst_rank: 1,
            payload: WirePayload::Rts {
                tag: 0,
                seq: 0,
                rdv_id: 1,
                len: 1 << 20,
            },
        };
        let cts = NmWire {
            src_rank: 1,
            dst_rank: 0,
            payload: WirePayload::Cts { rdv_id: 1 },
        };
        assert!(rts.wire_bytes() <= 64);
        assert!(cts.wire_bytes() <= 64);
    }
}
