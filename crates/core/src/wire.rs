//! NewMadeleine's wire packet format.
//!
//! Every fabric transfer carries one [`NmWire`]. The header fields are kept
//! as struct members (the simulation shares an address space) but their
//! modelled wire size — [`WIRE_HEADER_BYTES`] per packet plus
//! [`AGG_SUBHEADER_BYTES`] per aggregated fragment — is charged to the NIC,
//! so aggregation trades per-packet latency against extra header bytes the
//! way the real library does.

use simnet::NmBuf;

/// Modelled size of the packet header on the wire.
pub const WIRE_HEADER_BYTES: usize = 32;

/// Modelled per-fragment subheader inside an aggregate packet.
pub const AGG_SUBHEADER_BYTES: usize = 16;

/// One eager fragment inside an aggregate packet.
#[derive(Clone, Debug)]
pub struct EagerFrag {
    pub tag: u64,
    pub seq: u64,
    pub data: NmBuf,
}

/// Payload variants of a wire packet.
#[derive(Clone, Debug)]
pub enum WirePayload {
    /// A whole small message.
    Eager { tag: u64, seq: u64, data: NmBuf },
    /// Several small messages to the same gate coalesced into one NIC
    /// transfer by the aggregation strategy.
    Aggregate(Vec<EagerFrag>),
    /// Rendezvous request-to-send: announces a large message.
    Rts {
        tag: u64,
        seq: u64,
        rdv_id: u64,
        len: usize,
    },
    /// Rendezvous clear-to-send: the receiver is ready for `rdv_id`.
    Cts { rdv_id: u64 },
    /// A chunk of rendezvous data (multirail transfers produce several,
    /// one per rail, with distinct offsets).
    Data {
        rdv_id: u64,
        offset: usize,
        data: NmBuf,
    },
    /// Retry mode only — cumulative acknowledgement for one (src, tag)
    /// envelope flow: every sequence number below `next` has arrived.
    /// With flow control armed, `credits` piggybacks eager credit returns
    /// earned on this gate (0 when flow control is off or nothing is
    /// owed); it rides in header padding, so the wire size is unchanged.
    Ack { tag: u64, next: u64, credits: u32 },
    /// Flow control only — standalone eager credit return for one gate,
    /// sent on the express channel when no ack is going that way anyway.
    Credit { credits: u32 },
    /// Retry mode only — the receiver finished assembling `rdv_id`; the
    /// sender may release the payload and complete the send.
    RdvFin { rdv_id: u64 },
    /// Rail-health probe: a tiny packet sent on a `Probing` rail to test
    /// whether the link came back. `rail` names the probed rail so the
    /// answer can be pinned to the same wire.
    Probe { rail: usize, seq: u64 },
    /// Answer to a [`WirePayload::Probe`], echoed on the probed rail.
    ProbeAck { rail: usize, seq: u64 },
    /// Communicator-recovery poison (DESIGN.md §13): the sender has
    /// revoked communicator epoch `epoch`. Sticky and idempotent like a
    /// death verdict — the first receipt quiesces the epoch's pending
    /// operations with counted errors and re-broadcasts; replays are
    /// counted no-ops.
    Revoke { epoch: u32 },
}

impl WirePayload {
    /// Duplicate this payload without copying payload bytes: data-bearing
    /// variants share their [`NmBuf`] (a metered refcount bump), control
    /// variants are plain field copies. Retransmission queues use this so
    /// keeping a packet around for replay never clones the payload.
    pub fn share(&self) -> WirePayload {
        match self {
            WirePayload::Eager { tag, seq, data } => WirePayload::Eager {
                tag: *tag,
                seq: *seq,
                data: data.share(),
            },
            WirePayload::Aggregate(frags) => WirePayload::Aggregate(
                frags
                    .iter()
                    .map(|f| EagerFrag {
                        tag: f.tag,
                        seq: f.seq,
                        data: f.data.share(),
                    })
                    .collect(),
            ),
            WirePayload::Rts { tag, seq, rdv_id, len } => WirePayload::Rts {
                tag: *tag,
                seq: *seq,
                rdv_id: *rdv_id,
                len: *len,
            },
            WirePayload::Cts { rdv_id } => WirePayload::Cts { rdv_id: *rdv_id },
            WirePayload::Data { rdv_id, offset, data } => WirePayload::Data {
                rdv_id: *rdv_id,
                offset: *offset,
                data: data.share(),
            },
            WirePayload::Ack { tag, next, credits } => WirePayload::Ack {
                tag: *tag,
                next: *next,
                credits: *credits,
            },
            WirePayload::Credit { credits } => WirePayload::Credit {
                credits: *credits,
            },
            WirePayload::RdvFin { rdv_id } => WirePayload::RdvFin { rdv_id: *rdv_id },
            WirePayload::Probe { rail, seq } => WirePayload::Probe {
                rail: *rail,
                seq: *seq,
            },
            WirePayload::ProbeAck { rail, seq } => WirePayload::ProbeAck {
                rail: *rail,
                seq: *seq,
            },
            WirePayload::Revoke { epoch } => WirePayload::Revoke { epoch: *epoch },
        }
    }
}

/// A packet as it crosses the fabric.
#[derive(Clone, Debug)]
pub struct NmWire {
    /// Sender's global rank (identifies the gate at the receiver).
    pub src_rank: usize,
    /// Receiver's global rank (the node sink demultiplexes on this).
    pub dst_rank: usize,
    pub payload: WirePayload,
    /// End-to-end checksum over ranks, payload header fields and payload
    /// bytes, computed by [`NmWire::new`] at the sender and verified at
    /// delivery ([`NmWire::crc_ok`]). Its wire cost is part of
    /// [`WIRE_HEADER_BYTES`].
    pub crc: u64,
}

impl NmWire {
    /// Build a packet and seal it with the end-to-end checksum.
    pub fn new(src_rank: usize, dst_rank: usize, payload: WirePayload) -> NmWire {
        let crc = compute_crc(src_rank, dst_rank, &payload);
        NmWire {
            src_rank,
            dst_rank,
            payload,
            crc,
        }
    }

    /// Verify the checksum against the packet's current content. `false`
    /// means the wire corrupted the frame: the receiver must discard it
    /// exactly like a dropped packet (the retry layer will retransmit).
    pub fn crc_ok(&self) -> bool {
        self.crc == compute_crc(self.src_rank, self.dst_rank, &self.payload)
    }

    /// Total modelled wire size: header + payload bytes.
    pub fn wire_bytes(&self) -> usize {
        WIRE_HEADER_BYTES
            + match &self.payload {
                WirePayload::Eager { data, .. } => data.len(),
                WirePayload::Aggregate(frags) => frags
                    .iter()
                    .map(|f| AGG_SUBHEADER_BYTES + f.data.len())
                    .sum(),
                WirePayload::Rts { .. } => 16,
                WirePayload::Cts { .. } => 8,
                WirePayload::Data { data, .. } => 8 + data.len(),
                WirePayload::Ack { .. } => 16,
                WirePayload::Credit { .. } => 8,
                WirePayload::RdvFin { .. } => 8,
                WirePayload::Probe { .. } => 16,
                WirePayload::ProbeAck { .. } => 16,
                WirePayload::Revoke { .. } => 8,
            }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Incremental FNV-1a folding 8 bytes per step (payloads reach megabytes;
/// byte-at-a-time hashing would dominate simulated-transfer setup cost).
struct WireCrc(u64);

impl WireCrc {
    fn new() -> WireCrc {
        WireCrc(FNV_OFFSET)
    }

    fn word(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(FNV_PRIME);
    }

    fn bytes(&mut self, b: &[u8]) {
        self.word(b.len() as u64);
        let mut chunks = b.chunks_exact(8);
        for c in &mut chunks {
            self.word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.word(u64::from_le_bytes(tail));
        }
    }
}

fn compute_crc(src_rank: usize, dst_rank: usize, payload: &WirePayload) -> u64 {
    let mut h = WireCrc::new();
    h.word(src_rank as u64);
    h.word(dst_rank as u64);
    match payload {
        WirePayload::Eager { tag, seq, data } => {
            h.word(1);
            h.word(*tag);
            h.word(*seq);
            h.bytes(data.as_slice());
        }
        WirePayload::Aggregate(frags) => {
            h.word(2);
            h.word(frags.len() as u64);
            for f in frags {
                h.word(f.tag);
                h.word(f.seq);
                h.bytes(f.data.as_slice());
            }
        }
        WirePayload::Rts { tag, seq, rdv_id, len } => {
            h.word(3);
            h.word(*tag);
            h.word(*seq);
            h.word(*rdv_id);
            h.word(*len as u64);
        }
        WirePayload::Cts { rdv_id } => {
            h.word(4);
            h.word(*rdv_id);
        }
        WirePayload::Data { rdv_id, offset, data } => {
            h.word(5);
            h.word(*rdv_id);
            h.word(*offset as u64);
            h.bytes(data.as_slice());
        }
        WirePayload::Ack { tag, next, credits } => {
            h.word(6);
            h.word(*tag);
            h.word(*next);
            h.word(*credits as u64);
        }
        WirePayload::Credit { credits } => {
            h.word(10);
            h.word(*credits as u64);
        }
        WirePayload::RdvFin { rdv_id } => {
            h.word(7);
            h.word(*rdv_id);
        }
        WirePayload::Probe { rail, seq } => {
            h.word(8);
            h.word(*rail as u64);
            h.word(*seq);
        }
        WirePayload::ProbeAck { rail, seq } => {
            h.word(9);
            h.word(*rail as u64);
            h.word(*seq);
        }
        WirePayload::Revoke { epoch } => {
            h.word(11);
            h.word(*epoch as u64);
        }
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eager_wire_size_is_header_plus_payload() {
        let w = NmWire::new(
            0,
            1,
            WirePayload::Eager {
                tag: 1,
                seq: 0,
                data: NmBuf::from(vec![0u8; 100]),
            },
        );
        assert_eq!(w.wire_bytes(), WIRE_HEADER_BYTES + 100);
    }

    #[test]
    fn aggregate_charges_subheaders() {
        let frag = |n: usize| EagerFrag {
            tag: 0,
            seq: 0,
            data: NmBuf::from(vec![0u8; n]),
        };
        let w = NmWire::new(0, 1, WirePayload::Aggregate(vec![frag(10), frag(20)]));
        assert_eq!(
            w.wire_bytes(),
            WIRE_HEADER_BYTES + 2 * AGG_SUBHEADER_BYTES + 30
        );
    }

    #[test]
    fn control_packets_are_small() {
        let rts = NmWire::new(
            0,
            1,
            WirePayload::Rts {
                tag: 0,
                seq: 0,
                rdv_id: 1,
                len: 1 << 20,
            },
        );
        let cts = NmWire::new(1, 0, WirePayload::Cts { rdv_id: 1 });
        let probe = NmWire::new(0, 1, WirePayload::Probe { rail: 1, seq: 3 });
        let credit = NmWire::new(1, 0, WirePayload::Credit { credits: 4 });
        assert!(rts.wire_bytes() <= 64);
        assert!(cts.wire_bytes() <= 64);
        assert!(probe.wire_bytes() <= 64);
        assert!(credit.wire_bytes() <= 64);
    }

    #[test]
    fn crc_seals_header_and_payload() {
        let mk = |byte: u8| {
            NmWire::new(
                0,
                1,
                WirePayload::Eager {
                    tag: 7,
                    seq: 3,
                    data: NmBuf::from(vec![byte; 1000]),
                },
            )
        };
        let w = mk(0xAB);
        assert!(w.crc_ok());
        // Any header or payload change breaks the seal.
        let mut tampered = w.clone();
        tampered.src_rank = 2;
        assert!(!tampered.crc_ok());
        assert_ne!(mk(0xAB).crc, mk(0xAC).crc, "payload bytes are covered");
        // The simulated corruption model flips the stored CRC rather than
        // mutating shared payload bytes; that too must fail verification.
        let mut flipped = w;
        flipped.crc ^= 1;
        assert!(!flipped.crc_ok());
    }

    #[test]
    fn crc_distinguishes_variants_and_fields() {
        let a = NmWire::new(0, 1, WirePayload::Cts { rdv_id: 9 });
        let b = NmWire::new(0, 1, WirePayload::RdvFin { rdv_id: 9 });
        assert_ne!(a.crc, b.crc, "same fields, different variant");
        let c = NmWire::new(0, 1, WirePayload::Probe { rail: 0, seq: 1 });
        let d = NmWire::new(0, 1, WirePayload::ProbeAck { rail: 0, seq: 1 });
        assert_ne!(c.crc, d.crc);
        // The revoke poison is sealed and variant-distinct too.
        let r1 = NmWire::new(0, 1, WirePayload::Revoke { epoch: 1 });
        let r2 = NmWire::new(0, 1, WirePayload::Revoke { epoch: 2 });
        assert_ne!(r1.crc, r2.crc, "epoch field is covered");
        assert!(r1.wire_bytes() <= 64, "revoke rides the express lane");
        // The piggybacked credit count is sealed too.
        let e = NmWire::new(0, 1, WirePayload::Ack { tag: 1, next: 2, credits: 0 });
        let f = NmWire::new(0, 1, WirePayload::Ack { tag: 1, next: 2, credits: 3 });
        assert_ne!(e.crc, f.crc, "credit field is covered");
        // share() preserves the payload identity, so the CRC still holds.
        let shared = NmWire {
            payload: a.payload.share(),
            ..a
        };
        assert!(shared.crc_ok());
    }
}
