//! NewMadeleine configuration: strategy selection and protocol thresholds.

use simnet::SimDuration;

/// Which scheduling strategy the core runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StrategyKind {
    /// FIFO submission, no optimization — the reference point.
    Default,
    /// Coalesce consecutive small sends to the same gate into one NIC
    /// transfer while the NIC is busy.
    Aggreg,
    /// Multirail: small messages on the fastest rail, large messages split
    /// across all rails with the sampled equal-finish-time ratio.
    SplitBalanced,
    /// Ablation variant of [`StrategyKind::SplitBalanced`]: a fixed 50/50
    /// split, ignoring the sampling — quantifies what the adaptive ratio
    /// buys on heterogeneous rails.
    SplitEqual,
}

/// Transport-level reliability: timeout / retransmit / backoff for
/// envelopes (eager + RTS), the CTS handshake half, and rendezvous data.
/// Required whenever the fabric runs a fault plan that drops packets;
/// `None` (the default) keeps the happy-path protocol — packet counts,
/// wire traffic, timings — byte-identical to the calibrated model.
#[derive(Clone, Copy, Debug)]
pub struct RetryConfig {
    /// Initial retransmission timeout.
    pub timeout: SimDuration,
    /// Multiplier applied to a packet's timeout after each retransmission.
    pub backoff: u32,
    /// Ceiling on the per-packet backed-off timeout.
    pub max_timeout: SimDuration,
    /// Retransmission attempts before the core declares the link dead.
    pub max_attempts: u32,
    /// Rail-health hysteresis: consecutive retransmission timeouts on one
    /// rail before it is demoted `Up → Suspect`. Kept above 1 so a single
    /// misattributed timeout (a multi-rail rendezvous can't always name
    /// the guilty rail) never demotes a healthy rail.
    pub suspect_after: u32,
    /// Consecutive timeouts before a `Suspect` rail is declared `Down`
    /// and its traffic rerouted to survivors.
    pub down_after: u32,
    /// How often a `Down` rail is probed for recovery (`Down → Probing`).
    pub probe_interval: SimDuration,
    /// Probe acknowledgements required to re-admit a rail (`Probing → Up`).
    pub probe_successes: u32,
    /// Re-admission ramp: a recovered rail's scheduling weight climbs from
    /// 25 % back to 100 % linearly over this window, so a flapping link
    /// can't immediately re-capture half of every split.
    pub ramp: SimDuration,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            timeout: SimDuration::micros(80),
            backoff: 2,
            max_timeout: SimDuration::millis(1),
            max_attempts: 64,
            suspect_after: 2,
            down_after: 4,
            probe_interval: SimDuration::micros(500),
            probe_successes: 2,
            ramp: SimDuration::millis(1),
        }
    }
}

/// Receiver-managed credit-based eager flow control (overload
/// protection). Every eager send consumes one credit from the sender's
/// per-gate pool; the receiver returns credits as the messages are
/// consumed, piggybacked on ctrl frames over the express channel. A
/// sender whose pool is empty degrades gracefully: the message takes the
/// rendezvous path (RTS/CTS is natural backpressure — data only moves
/// once the receiver posted), it never blocks and never drops.
///
/// The receiver additionally bounds its unexpected-queue memory with
/// high/low-water hysteresis on `unex_bytes_cap`: while its buffered
/// unexpected eager bytes sit above `high_water`, earned credit returns
/// are withheld (every sender's pool drains and eager traffic degrades to
/// rendezvous); they are released in a batch once consumption pulls the
/// queue back below `low_water`. `None` (the default) keeps the
/// happy-path wire behaviour byte-identical to the calibrated model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowConfig {
    /// Eager sends in flight (sent, credit not yet returned) allowed per
    /// destination gate before the sender falls back to rendezvous. The
    /// pools make `peers × eager_credits × eager_threshold` a hard
    /// ceiling on any receiver's unexpected eager bytes.
    pub eager_credits: u32,
    /// Target ceiling on unexpected eager bytes buffered by one receiver
    /// (all gates together). Size the pools so
    /// `peers × eager_credits × eager_threshold ≤ unex_bytes_cap` and the
    /// cap is a hard bound; the hysteresis marks below keep a slow
    /// consumer from being refilled against while it drains.
    pub unex_bytes_cap: usize,
    /// Withhold credit returns while the receiver's unexpected bytes
    /// exceed this mark (≤ `unex_bytes_cap`).
    pub high_water: usize,
    /// Release withheld credits once the unexpected bytes drain below
    /// this mark (≤ `high_water`).
    pub low_water: usize,
}

impl Default for FlowConfig {
    fn default() -> Self {
        // 16 credits × the 16 KB default eager threshold = 256 KB of
        // eager data in flight per peer; cap at that, start throttling at
        // half and refill below a quarter.
        FlowConfig {
            eager_credits: 16,
            unex_bytes_cap: 256 * 1024,
            high_water: 128 * 1024,
            low_water: 64 * 1024,
        }
    }
}

impl FlowConfig {
    /// A pool sized so `credits × eager_threshold` never exceeds the cap
    /// (with hysteresis marks at 1/2 and 1/4 of it).
    pub fn bounded(eager_credits: u32, unex_bytes_cap: usize) -> FlowConfig {
        FlowConfig {
            eager_credits,
            unex_bytes_cap,
            high_water: unex_bytes_cap / 2,
            low_water: unex_bytes_cap / 4,
        }
    }
}

/// Elastic membership: per-*peer* liveness promotion on top of the
/// per-rail health machinery. When armed, repeated retransmission
/// timeouts toward one peer (on any rail) walk that peer
/// `Up → Suspect → Dead`; a `Dead` verdict triggers the drain protocol —
/// in-flight rendezvous with the peer are aborted through the protocol
/// table (`Event::PeerDead` rows), its eager credits released, and every
/// lazily-populated per-peer map entry reclaimed. Liveness is credited
/// only by intact inbound arrivals, and a `Dead` verdict additionally
/// requires `min_silence` of inbound silence, so a merely slow or briefly
/// hung node is never declared dead. `None` (the default) keeps the
/// PR-3 behaviour: exhausting `max_attempts` panics the rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MembershipConfig {
    /// Consecutive per-peer retransmission timeouts before `Up → Suspect`.
    pub suspect_after: u32,
    /// Consecutive per-peer timeouts before `Suspect → Dead` (subject to
    /// `min_silence`). `Dead` is sticky: a departed rank never rejoins
    /// under the same rank id.
    pub dead_after: u32,
    /// A peer is only declared `Dead` if nothing intact has arrived from
    /// it for at least this long — the inbound-credited hysteresis that
    /// protects slow-but-alive nodes.
    pub min_silence: SimDuration,
    /// While we hold posted receives or in-flight rendezvous *from* a
    /// silent peer (i.e. we expect inbound but have no outbound retries to
    /// attribute failures from), probe it at this cadence; each unanswered
    /// probe interval counts as one failure.
    pub probe_interval: SimDuration,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        // Stacked on the default RetryConfig (80µs initial timeout, ×2
        // backoff, 1ms cap): 12 consecutive timeouts ≈ 5ms of proven
        // outbound silence before a Dead verdict, far above any transient
        // stall the rail-health layer tolerates.
        MembershipConfig {
            suspect_after: 4,
            dead_after: 12,
            min_silence: SimDuration::millis(2),
            probe_interval: SimDuration::micros(400),
        }
    }
}

/// Tunables of one NewMadeleine instance.
#[derive(Clone, Copy, Debug)]
pub struct NmConfig {
    pub strategy: StrategyKind,
    /// Messages up to this size go eager; larger ones use the internal
    /// rendezvous (RTS/CTS/DATA).
    pub eager_threshold: usize,
    /// Below this size a rendezvous DATA transfer stays on a single rail
    /// even under the split strategy (split overhead would dominate).
    pub multirail_threshold: usize,
    /// Aggregation: stop coalescing when the aggregate reaches this size…
    pub max_aggreg_bytes: usize,
    /// …or this many fragments.
    pub max_aggreg_count: usize,
    /// Transport-level retransmission (fault-tolerant mode). `None` keeps
    /// the exact happy-path wire behaviour.
    pub retry: Option<RetryConfig>,
    /// Smallest chunk a renormalized multirail split may assign to one
    /// rail; anything smaller is folded into the largest chunk (per-chunk
    /// header and handoff costs would dominate below this).
    pub min_split_chunk: usize,
    /// Credit-based eager flow control (overload protection). `None`
    /// keeps the exact happy-path wire behaviour.
    pub flow: Option<FlowConfig>,
    /// Elastic membership (node-death detection + drain). Requires
    /// `retry` to be armed (verdicts are fed by retransmission timeouts);
    /// `None` keeps the PR-3 link-presumed-dead panic.
    pub membership: Option<MembershipConfig>,
}

impl Default for NmConfig {
    fn default() -> Self {
        NmConfig {
            strategy: StrategyKind::SplitBalanced,
            eager_threshold: 16 * 1024,
            multirail_threshold: 32 * 1024,
            max_aggreg_bytes: 8 * 1024,
            max_aggreg_count: 16,
            retry: None,
            min_split_chunk: 4 * 1024,
            flow: None,
            membership: None,
        }
    }
}

impl NmConfig {
    pub fn with_strategy(strategy: StrategyKind) -> NmConfig {
        NmConfig {
            strategy,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_thresholds() {
        let c = NmConfig::default();
        // Fig. 7(a) treats 4K/16K as eager, Fig. 7(b) treats 16K+ as
        // rendezvous: the boundary is 16 KB inclusive.
        assert_eq!(c.eager_threshold, 16 * 1024);
        assert_eq!(c.strategy, StrategyKind::SplitBalanced);
    }

    #[test]
    fn with_strategy_overrides_only_strategy() {
        let c = NmConfig::with_strategy(StrategyKind::Aggreg);
        assert_eq!(c.strategy, StrategyKind::Aggreg);
        assert_eq!(c.eager_threshold, NmConfig::default().eager_threshold);
    }

    #[test]
    fn flow_control_is_off_by_default() {
        assert!(NmConfig::default().flow.is_none());
    }

    #[test]
    fn membership_is_off_by_default_and_orders_its_thresholds() {
        assert!(NmConfig::default().membership.is_none());
        let m = MembershipConfig::default();
        assert!(m.suspect_after < m.dead_after);
        assert!(m.min_silence > SimDuration::ZERO);
        assert!(m.probe_interval > SimDuration::ZERO);
    }

    #[test]
    fn bounded_flow_config_orders_its_marks() {
        let f = FlowConfig::bounded(4, 128 * 1024);
        assert_eq!(f.unex_bytes_cap, 128 * 1024);
        assert!(f.low_water <= f.high_water);
        assert!(f.high_water <= f.unex_bytes_cap);
        let d = FlowConfig::default();
        assert!(d.low_water <= d.high_water && d.high_water <= d.unex_bytes_cap);
        // The default pool is a hard bound against the default eager
        // threshold: credits × threshold = cap.
        assert_eq!(
            d.eager_credits as usize * NmConfig::default().eager_threshold,
            d.unex_bytes_cap
        );
    }
}
