//! Per-rail liveness state machine — degraded-mode multirail.
//!
//! The sampling-driven multirail split (Fig. 5) trusts the boot-time
//! [`crate::sampling::LinkProfile`] forever; a rail that dies mid-job would
//! strand every chunk scheduled onto it until the retry layer retransmitted
//! them into the same dead port. This module gives the core a live opinion
//! per rail:
//!
//! ```text
//!        retry timeouts ≥ suspect_after        ≥ down_after
//!   Up ───────────────────────────────▶ Suspect ───────────▶ Down
//!    ▲                                    │                   │ probe_interval
//!    │ probe acks ≥ probe_successes       │ ack/success       ▼
//!    └──────────────────────────── Probing ◀─────────────────┘
//!                     ▲                 │ probe timeout
//!                     └─────────────────┘
//! ```
//!
//! * **Up** — full scheduling weight (ramped after a recovery, see
//!   [`RetryConfig::ramp`]).
//! * **Suspect** — still scheduled (the hysteresis absorbs misattributed
//!   timeouts: a multi-rail rendezvous cannot always name the guilty rail),
//!   one more failure streak away from demotion.
//! * **Down** — zero weight; queued and in-flight traffic is re-dispatched
//!   to survivors by the retry sweep.
//! * **Probing** — zero data weight, but low-rate [`crate::wire::WirePayload::Probe`]
//!   packets test the link; enough acks re-admit it.
//!
//! All thresholds live in [`RetryConfig`]; the table is pure bookkeeping
//! (no RNG, no wall clock), so health decisions replay bit-for-bit with the
//! simulation.

use simnet::SimTime;

use crate::config::RetryConfig;

/// Liveness verdict for one rail.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RailHealth {
    Up,
    Suspect,
    Down,
    Probing,
}

impl RailHealth {
    /// May the strategies schedule payload onto this rail?
    pub fn usable(self) -> bool {
        matches!(self, RailHealth::Up | RailHealth::Suspect)
    }
}

#[derive(Clone, Copy, Debug)]
struct Cell {
    state: RailHealth,
    /// Consecutive retransmission timeouts attributed to this rail.
    fail_streak: u32,
    /// Consecutive probe acks while `Probing`.
    probe_ok: u32,
    /// Sequence number of the most recent probe (acks must echo it).
    probe_seq: u64,
    /// While `Probing`: give up and fall back to `Down` at this instant.
    probe_deadline: Option<SimTime>,
    /// While `Down`/`Probing`: earliest instant to emit the next probe.
    next_probe_at: Option<SimTime>,
    /// Instant of re-admission (`Probing → Up`), for the weight ramp.
    readmitted_at: Option<SimTime>,
    /// Degraded-time accounting watermark.
    accounted_to: SimTime,
}

/// Mutable per-rail health table owned by the core (under its lock).
#[derive(Debug)]
pub struct RailHealthTable {
    cfg: RetryConfig,
    cells: Vec<Cell>,
    transitions: u64,
    probes_sent: u64,
    probe_acks: u64,
    degraded_nanos: u64,
}

impl RailHealthTable {
    pub fn new(cfg: RetryConfig, rails: usize) -> RailHealthTable {
        RailHealthTable {
            cfg,
            cells: vec![
                Cell {
                    state: RailHealth::Up,
                    fail_streak: 0,
                    probe_ok: 0,
                    probe_seq: 0,
                    probe_deadline: None,
                    next_probe_at: None,
                    readmitted_at: None,
                    accounted_to: SimTime::ZERO,
                };
                rails
            ],
            transitions: 0,
            probes_sent: 0,
            probe_acks: 0,
            degraded_nanos: 0,
        }
    }

    pub fn num_rails(&self) -> usize {
        self.cells.len()
    }

    pub fn state(&self, rail: usize) -> RailHealth {
        self.cells.get(rail).map(|c| c.state).unwrap_or(RailHealth::Up)
    }

    /// Total state-machine transitions so far (any edge).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Probes emitted / probe acks accepted.
    pub fn probe_counts(&self) -> (u64, u64) {
        (self.probes_sent, self.probe_acks)
    }

    /// Cumulative rail-nanoseconds spent in a non-`Up` state, accounted up
    /// to each rail's last event (advance with [`RailHealthTable::tick`]).
    pub fn degraded_nanos(&self) -> u64 {
        self.degraded_nanos
    }

    /// Bring the degraded-time account for `rail` up to `now`.
    fn accrue(&mut self, rail: usize, now: SimTime) {
        let cell = &mut self.cells[rail];
        if now > cell.accounted_to {
            if cell.state != RailHealth::Up {
                self.degraded_nanos += (now - cell.accounted_to).as_nanos();
            }
            cell.accounted_to = now;
        }
    }

    fn set_state(&mut self, rail: usize, state: RailHealth, now: SimTime) {
        self.accrue(rail, now);
        let cell = &mut self.cells[rail];
        if cell.state != state {
            cell.state = state;
            self.transitions += 1;
        }
    }

    /// A retransmission timeout was attributed to `rail`.
    pub fn record_failure(&mut self, rail: usize, now: SimTime) {
        if rail >= self.cells.len() {
            return;
        }
        self.accrue(rail, now);
        let cfg = self.cfg;
        let cell = &mut self.cells[rail];
        cell.fail_streak = cell.fail_streak.saturating_add(1);
        let streak = cell.fail_streak;
        match cell.state {
            RailHealth::Up if streak >= cfg.suspect_after => {
                self.set_state(rail, RailHealth::Suspect, now);
            }
            RailHealth::Suspect if streak >= cfg.down_after => {
                self.set_state(rail, RailHealth::Down, now);
                let cell = &mut self.cells[rail];
                cell.next_probe_at = Some(now + cfg.probe_interval);
                cell.probe_ok = 0;
            }
            RailHealth::Probing => {
                // A data retransmission died on a rail we were probing (a
                // retry beat the reroute). Treat it as a failed probe round.
                self.set_state(rail, RailHealth::Down, now);
                let cell = &mut self.cells[rail];
                cell.next_probe_at = Some(now + cfg.probe_interval);
                cell.probe_deadline = None;
                cell.probe_ok = 0;
            }
            _ => {}
        }
    }

    /// An ack/CTS/FIN arrived crediting `rail` with a live round trip.
    pub fn record_success(&mut self, rail: usize, now: SimTime) {
        if rail >= self.cells.len() {
            return;
        }
        self.accrue(rail, now);
        let cell = &mut self.cells[rail];
        cell.fail_streak = 0;
        if cell.state == RailHealth::Suspect {
            self.set_state(rail, RailHealth::Up, now);
        }
    }

    /// A probe ack for `(rail, seq)` arrived. Stale sequence numbers (from
    /// a probe round that already timed out) are ignored.
    pub fn record_probe_ack(&mut self, rail: usize, seq: u64, now: SimTime) {
        if rail >= self.cells.len() {
            return;
        }
        self.accrue(rail, now);
        let cfg = self.cfg;
        let cell = &mut self.cells[rail];
        if cell.state != RailHealth::Probing || cell.probe_seq != seq {
            return;
        }
        self.probe_acks += 1;
        let cell = &mut self.cells[rail];
        cell.probe_ok += 1;
        cell.probe_deadline = None;
        if cell.probe_ok >= cfg.probe_successes {
            cell.fail_streak = 0;
            cell.next_probe_at = None;
            cell.readmitted_at = Some(now);
            self.set_state(rail, RailHealth::Up, now);
        } else {
            // Ask for the next probe immediately; pacing comes from the
            // probe round trip itself.
            cell.next_probe_at = Some(now);
        }
    }

    /// Drive the timers: start probe rounds on `Down` rails whose interval
    /// elapsed, expire unanswered probes, and advance degraded-time
    /// accounting. Returns the `(rail, seq)` probes to put on the wire.
    pub fn tick(&mut self, now: SimTime) -> Vec<(usize, u64)> {
        let cfg = self.cfg;
        let mut probes = Vec::new();
        for rail in 0..self.cells.len() {
            self.accrue(rail, now);
            let cell = &mut self.cells[rail];
            match cell.state {
                RailHealth::Down if cell.next_probe_at.is_some_and(|t| t <= now) => {
                    self.set_state(rail, RailHealth::Probing, now);
                    let cell = &mut self.cells[rail];
                    cell.probe_ok = 0;
                    cell.probe_seq += 1;
                    cell.probe_deadline = Some(now + cfg.probe_timeout());
                    cell.next_probe_at = None;
                    self.probes_sent += 1;
                    probes.push((rail, self.cells[rail].probe_seq));
                }
                RailHealth::Probing => {
                    if cell.probe_deadline.is_some_and(|t| t <= now) {
                        // Probe went unanswered: the rail is still dead.
                        self.set_state(rail, RailHealth::Down, now);
                        let cell = &mut self.cells[rail];
                        cell.probe_deadline = None;
                        cell.probe_ok = 0;
                        cell.next_probe_at = Some(now + cfg.probe_interval);
                    } else if cell.next_probe_at.is_some_and(|t| t <= now) {
                        // Mid-round follow-up probe (previous one acked).
                        cell.probe_seq += 1;
                        cell.probe_deadline = Some(now + cfg.probe_timeout());
                        cell.next_probe_at = None;
                        self.probes_sent += 1;
                        probes.push((rail, cell.probe_seq));
                    }
                }
                _ => {}
            }
        }
        probes
    }

    /// Scheduling weight of `rail` at `now`: 0 for `Down`/`Probing`, full
    /// for `Suspect` and established `Up`, ramping 0.25 → 1.0 over
    /// [`RetryConfig::ramp`] after a re-admission.
    pub fn weight(&self, rail: usize, now: SimTime) -> f64 {
        let Some(cell) = self.cells.get(rail) else {
            return 1.0;
        };
        match cell.state {
            RailHealth::Down | RailHealth::Probing => 0.0,
            RailHealth::Suspect => 1.0,
            RailHealth::Up => match cell.readmitted_at {
                Some(at) if now < at + self.cfg.ramp => {
                    let frac = (now - at).as_nanos() as f64
                        / self.cfg.ramp.as_nanos().max(1) as f64;
                    0.25 + 0.75 * frac
                }
                _ => 1.0,
            },
        }
    }

    /// One-line digest for `debug_state()` dumps.
    pub fn summary(&self) -> String {
        let states: Vec<String> = self
            .cells
            .iter()
            .map(|c| format!("{:?}", c.state))
            .collect();
        format!(
            "failover[rails={} transitions={} probes={}/{} degraded={}ns]",
            states.join(","),
            self.transitions,
            self.probe_acks,
            self.probes_sent,
            self.degraded_nanos
        )
    }
}

impl RetryConfig {
    /// How long a probe may go unanswered before its round fails. Derived
    /// rather than configured: a probe round trip is bounded by the same
    /// worst-case backoff the data path tolerates.
    fn probe_timeout(&self) -> simnet::SimDuration {
        self.max_timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimDuration;

    fn table(rails: usize) -> RailHealthTable {
        RailHealthTable::new(RetryConfig::default(), rails)
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1_000)
    }

    #[test]
    fn failures_walk_up_suspect_down() {
        let mut h = table(2);
        assert_eq!(h.state(1), RailHealth::Up);
        h.record_failure(1, t(10));
        assert_eq!(h.state(1), RailHealth::Up, "one timeout is hysteresis");
        h.record_failure(1, t(20));
        assert_eq!(h.state(1), RailHealth::Suspect);
        h.record_failure(1, t(30));
        assert_eq!(h.state(1), RailHealth::Suspect);
        h.record_failure(1, t(40));
        assert_eq!(h.state(1), RailHealth::Down);
        assert_eq!(h.state(0), RailHealth::Up, "rail 0 untouched");
        assert_eq!(h.transitions(), 2);
        assert_eq!(h.weight(1, t(41)), 0.0);
        assert_eq!(h.weight(0, t(41)), 1.0);
    }

    #[test]
    fn success_resets_streak_and_clears_suspect() {
        let mut h = table(1);
        h.record_failure(0, t(10));
        h.record_failure(0, t(20));
        assert_eq!(h.state(0), RailHealth::Suspect);
        h.record_success(0, t(25));
        assert_eq!(h.state(0), RailHealth::Up);
        // Streak restarted: two more failures only reach Suspect again.
        h.record_failure(0, t(30));
        h.record_failure(0, t(40));
        assert_eq!(h.state(0), RailHealth::Suspect);
    }

    #[test]
    fn misattributed_timeouts_never_demote_with_interleaved_successes() {
        let mut h = table(2);
        for i in 0..50 {
            h.record_failure(0, t(10 * i));
            h.record_success(0, t(10 * i + 5));
        }
        assert_eq!(h.state(0), RailHealth::Up);
        assert_eq!(h.transitions(), 0);
    }

    fn drive_down(h: &mut RailHealthTable, rail: usize, at: SimTime) {
        for _ in 0..4 {
            h.record_failure(rail, at);
        }
        assert_eq!(h.state(rail), RailHealth::Down);
    }

    #[test]
    fn down_rail_probes_and_recovers() {
        let cfg = RetryConfig::default();
        let mut h = table(2);
        drive_down(&mut h, 1, t(100));
        // Before the probe interval: nothing to send.
        assert!(h.tick(t(100) + SimDuration::micros(1)).is_empty());
        // After it: one probe round starts.
        let when = t(100) + cfg.probe_interval + SimDuration::nanos(10);
        let probes = h.tick(when);
        assert_eq!(probes.len(), 1);
        let (rail, seq) = probes[0];
        assert_eq!(rail, 1);
        assert_eq!(h.state(1), RailHealth::Probing);
        assert_eq!(h.weight(1, when), 0.0, "probing carries no payload");
        // First ack: not yet re-admitted (probe_successes = 2)…
        h.record_probe_ack(1, seq, when + SimDuration::micros(3));
        assert_eq!(h.state(1), RailHealth::Probing);
        // …the follow-up probe goes out and its ack completes recovery.
        let probes = h.tick(when + SimDuration::micros(4));
        assert_eq!(probes.len(), 1);
        let back_at = when + SimDuration::micros(7);
        h.record_probe_ack(1, probes[0].1, back_at);
        assert_eq!(h.state(1), RailHealth::Up);
        assert_eq!(h.probe_counts(), (2, 2));
        // Ramp: reduced weight right after recovery, full after `ramp`.
        let w0 = h.weight(1, back_at);
        assert!((0.2..0.5).contains(&w0), "fresh weight {w0}");
        let w1 = h.weight(1, back_at + cfg.ramp);
        assert_eq!(w1, 1.0);
    }

    #[test]
    fn unanswered_probe_falls_back_to_down() {
        let cfg = RetryConfig::default();
        let mut h = table(1);
        drive_down(&mut h, 0, t(0));
        let start = SimTime::ZERO + cfg.probe_interval + SimDuration::nanos(1);
        let probes = h.tick(start);
        assert_eq!(probes.len(), 1);
        let seq = probes[0].1;
        // No ack; past the probe timeout the rail is Down again.
        let expired = start + cfg.max_timeout + SimDuration::nanos(1);
        assert!(h.tick(expired).is_empty());
        assert_eq!(h.state(0), RailHealth::Down);
        // A stale ack from the dead round is ignored.
        h.record_probe_ack(0, seq, expired + SimDuration::nanos(5));
        assert_eq!(h.state(0), RailHealth::Down);
        // The next interval starts a fresh round with a new seq.
        let probes = h.tick(expired + cfg.probe_interval);
        assert_eq!(probes.len(), 1);
        assert_ne!(probes[0].1, seq);
    }

    #[test]
    fn degraded_time_accumulates_only_while_not_up() {
        let mut h = table(2);
        h.tick(t(50));
        assert_eq!(h.degraded_nanos(), 0);
        drive_down(&mut h, 1, t(50));
        h.tick(t(150));
        let d = h.degraded_nanos();
        assert_eq!(d, 100_000, "100µs of one down rail");
        h.tick(t(150));
        assert_eq!(h.degraded_nanos(), d, "no double counting");
    }

    #[test]
    fn out_of_range_rail_is_ignored() {
        let mut h = table(1);
        h.record_failure(7, t(1));
        h.record_success(7, t(2));
        h.record_probe_ack(7, 0, t(3));
        assert_eq!(h.state(7), RailHealth::Up);
        assert_eq!(h.weight(7, t(4)), 1.0);
        assert_eq!(h.transitions(), 0);
    }

    #[test]
    fn summary_mentions_states_and_counters() {
        let mut h = table(2);
        drive_down(&mut h, 1, t(0));
        let s = h.summary();
        assert!(s.contains("failover["), "{s}");
        assert!(s.contains("Up,Down"), "{s}");
        assert!(s.contains("transitions=2"), "{s}");
    }
}
