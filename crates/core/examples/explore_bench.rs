//! Per-configuration sizing of the model-explorer standard suite
//! (E18 source data): `cargo run --release -p nmad --example explore_bench`.

use std::time::Instant;

use nmad::protocol::explore;

fn main() {
    for cfg in explore::standard_suite() {
        let t = Instant::now();
        match explore::explore(&cfg) {
            Ok(s) => println!(
                "{:<24} states={:>9} edges={:>10} terminals={:>8}  {:.2?}",
                s.name,
                s.states,
                s.edges,
                s.terminals,
                t.elapsed()
            ),
            Err(e) => println!("{:<24} VIOLATION after {:.2?}: {e}", cfg.name, t.elapsed()),
        }
    }
}
