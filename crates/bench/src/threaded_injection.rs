//! E22: multi-producer injection-rate measurement for the real-thread
//! hot path (`mpi_ch3::threaded`).
//!
//! One *point* = a fixed total message count pushed through the stack by
//! N producer threads (N ∈ {1, 4, 16} in the recorded trajectory), all
//! other knobs held constant. Throughput is end-to-end injection rate;
//! latency percentiles are exact (one enqueue-to-delivery sample per
//! message, nearest-rank percentile over the sorted set).
//!
//! The recorded numbers live in `BENCH_10.json` (trajectory format, see
//! [`render_bench10_json`]); the `perf_gate` binary re-measures the same
//! points and fails CI on a >10% throughput regression against the
//! checked-in trajectory.

use mpi_ch3::{run_threaded, ThreadedConfig};

/// One measured point of the injection trajectory.
#[derive(Clone, Copy, Debug)]
pub struct InjectionPoint {
    pub producers: usize,
    pub vcs: usize,
    pub total_msgs: u64,
    pub msgs_per_sec: f64,
    pub p50_ns: u64,
    pub p99_ns: u64,
}

/// The producer counts every trajectory records.
pub const PRODUCER_SWEEP: [usize; 3] = [1, 4, 16];

/// Total in-flight cell budget, split evenly across producers. Holding
/// the *offered load* constant (rather than per-producer windows) keeps
/// the latency comparison meaningful: otherwise 16 producers simply queue
/// 16× more messages and Little's law inflates p99 by exactly that.
pub const TOTAL_WINDOW: usize = 64;

/// Stack shape held constant across the sweep (so the only moving part
/// is producer parallelism).
pub fn sweep_config(producers: usize, total_msgs: u64) -> ThreadedConfig {
    ThreadedConfig {
        producers,
        vcs: 4,
        window: (TOTAL_WINDOW / producers).max(2),
        msgs_per_producer: total_msgs / producers as u64,
        payload_bytes: 256,
        rdv_every: 8,
        eager_credits: 32,
    }
}

/// Measure one point: warm up once, then keep the best of `reps`
/// measured runs (the usual throughput-benchmark discipline — the best
/// run is the one least perturbed by unrelated scheduling noise).
pub fn measure_point(producers: usize, total_msgs: u64, reps: usize) -> InjectionPoint {
    let cfg = sweep_config(producers, total_msgs);
    // Warmup: first run pays lazy init (thread spawn paths, allocator).
    let _ = run_threaded(sweep_config(producers, total_msgs / 4));
    let mut best: Option<InjectionPoint> = None;
    for _ in 0..reps.max(1) {
        let r = run_threaded(cfg);
        assert_eq!(r.fifo_violations, 0, "perf run violated FIFO");
        assert!(r.credit_intact, "perf run leaked credits");
        let point = InjectionPoint {
            producers,
            vcs: cfg.vcs,
            total_msgs: r.total_msgs,
            msgs_per_sec: r.throughput_msgs_per_sec,
            p50_ns: r.p50_ns(),
            p99_ns: r.p99_ns(),
        };
        if best.is_none_or(|b| point.msgs_per_sec > b.msgs_per_sec) {
            best = Some(point);
        }
    }
    best.unwrap()
}

/// The full recorded sweep.
pub fn injection_sweep(total_msgs: u64, reps: usize) -> Vec<InjectionPoint> {
    PRODUCER_SWEEP
        .iter()
        .map(|&p| measure_point(p, total_msgs, reps))
        .collect()
}

/// Render the E22 trajectory JSON (the `BENCH_10.json` schema). All
/// BENCH_*.json files share this shape: an `experiment` id plus a
/// `trajectory` array of points the perf gate walks.
pub fn render_bench10_json(points: &[InjectionPoint]) -> String {
    let base = points
        .iter()
        .find(|p| p.producers == 1)
        .copied()
        .unwrap_or(points[0]);
    let wide = points
        .iter()
        .copied()
        .max_by_key(|p| p.producers)
        .unwrap();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"experiment\": \"E22-threaded-injection\",\n");
    s.push_str("  \"build\": \"release\",\n");
    // Host parallelism is part of the record: with one core, the
    // widest-point ratio measures contention *resilience* (threads cost
    // little), not parallel speedup (impossible without parallel
    // hardware). See EXPERIMENTS.md E22.
    s.push_str(&format!("  \"host_cores\": {cores},\n"));
    s.push_str(&format!(
        "  \"stack\": {{\"vcs\": 4, \"total_window\": {TOTAL_WINDOW}, \"payload_bytes\": 256, \"rdv_every\": 8, \"eager_credits\": 32}},\n"
    ));
    s.push_str("  \"trajectory\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"producers\": {}, \"vcs\": {}, \"total_msgs\": {}, \"msgs_per_sec\": {:.0}, \"p50_ns\": {}, \"p99_ns\": {}}}{}\n",
            p.producers,
            p.vcs,
            p.total_msgs,
            p.msgs_per_sec,
            p.p50_ns,
            p.p99_ns,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"scaling\": {{\"wide_producers\": {}, \"wide_over_1p_throughput\": {:.3}, \"wide_over_1p_p99\": {:.3}}}\n",
        wide.producers,
        wide.msgs_per_sec / base.msgs_per_sec,
        wide.p99_ns as f64 / base.p99_ns.max(1) as f64
    ));
    s.push_str("}\n");
    s
}

/// Extract every numeric value stored under `"key":` in a JSON document,
/// in document order. The BENCH_*.json files are our own flat emissions,
/// so a scanning extractor (no vendored JSON parser exists) is exact on
/// them; it is NOT a general JSON parser.
pub fn json_numbers(doc: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = doc;
    while let Some(pos) = rest.find(&needle) {
        rest = &rest[pos + needle.len()..];
        let trimmed = rest.trim_start();
        let end = trimmed
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
            .unwrap_or(trimmed.len());
        if let Ok(v) = trimmed[..end].parse::<f64>() {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_extract_round_trip() {
        let points = vec![
            InjectionPoint {
                producers: 1,
                vcs: 4,
                total_msgs: 1000,
                msgs_per_sec: 123456.0,
                p50_ns: 800,
                p99_ns: 9000,
            },
            InjectionPoint {
                producers: 16,
                vcs: 4,
                total_msgs: 1000,
                msgs_per_sec: 654321.0,
                p50_ns: 2000,
                p99_ns: 30000,
            },
        ];
        let doc = render_bench10_json(&points);
        assert_eq!(json_numbers(&doc, "producers"), vec![1.0, 16.0]);
        assert_eq!(json_numbers(&doc, "msgs_per_sec"), vec![123456.0, 654321.0]);
        assert_eq!(json_numbers(&doc, "p99_ns"), vec![9000.0, 30000.0]);
        assert_eq!(json_numbers(&doc, "wide_producers"), vec![16.0]);
        let scaling = json_numbers(&doc, "wide_over_1p_throughput");
        assert!((scaling[0] - 654321.0 / 123456.0).abs() < 0.01);
    }

    #[test]
    fn tiny_sweep_produces_sane_points() {
        let p = measure_point(2, 2_000, 1);
        assert_eq!(p.total_msgs, 2_000);
        assert!(p.msgs_per_sec > 0.0);
        assert!(p.p99_ns >= p.p50_ns);
    }
}
