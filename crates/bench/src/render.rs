//! Text rendering of experiment results, in the shape of the paper's
//! figures.

use nasbench::NasResult;

use crate::experiments::{BreakdownRow, HandshakeRow, OverlapPoint};

/// Render Fig. 7-style overlap points as a table: rows = sizes, columns =
/// stacks.
pub fn overlap_table(points: &[OverlapPoint], caption: &str) -> String {
    let mut stacks: Vec<String> = Vec::new();
    let mut sizes: Vec<usize> = Vec::new();
    for p in points {
        if !stacks.contains(&p.stack) {
            stacks.push(p.stack.clone());
        }
        if !sizes.contains(&p.bytes) {
            sizes.push(p.bytes);
        }
    }
    sizes.sort_unstable();
    let mut out = format!("# {caption}\n");
    out.push_str(&format!("{:>10}", "size"));
    for s in &stacks {
        out.push_str(&format!("  {s:>28}"));
    }
    out.push('\n');
    for &size in &sizes {
        out.push_str(&format!("{:>10}", simnet::stats::human_bytes(size)));
        for s in &stacks {
            match points
                .iter()
                .find(|p| p.bytes == size && &p.stack == s)
            {
                Some(p) => out.push_str(&format!("  {:>26.1}us", p.sending_time_us)),
                None => out.push_str(&format!("  {:>28}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Render one Fig. 8 panel: rows = kernels, columns = stacks; unpublished
/// cells marked.
pub fn nas_table(results: &[(NasResult, bool)], caption: &str) -> String {
    let mut stacks: Vec<String> = Vec::new();
    let mut kernels: Vec<&'static str> = Vec::new();
    for (r, _) in results {
        if !stacks.contains(&r.stack) {
            stacks.push(r.stack.clone());
        }
        if !kernels.contains(&r.kernel.name()) {
            kernels.push(r.kernel.name());
        }
    }
    let mut out = format!("# {caption} (execution time, seconds)\n");
    out.push_str(&format!("{:>8}", "kernel"));
    for s in &stacks {
        out.push_str(&format!("  {s:>26}"));
    }
    out.push('\n');
    for k in &kernels {
        out.push_str(&format!("{k:>8}"));
        for s in &stacks {
            match results
                .iter()
                .find(|(r, _)| r.kernel.name() == *k && &r.stack == s)
            {
                Some((r, published)) => {
                    let mark = if *published { "" } else { "*" };
                    out.push_str(&format!("  {:>25.1}{}", r.time_s, mark));
                }
                None => out.push_str(&format!("  {:>26}", "n/a")),
            }
        }
        out.push('\n');
    }
    out.push_str("(* = cell absent from the published figure — the paper's\n");
    out.push_str("   PIOMan build deadlocked there; ours runs it.)\n");
    out
}

/// Render the Fig. 2 ablation rows.
pub fn handshake_table(rows: &[HandshakeRow]) -> String {
    let mut out = String::from(
        "# E10 (Fig. 2 ablation): one large transfer, bypass vs nested netmod\n",
    );
    out.push_str(&format!(
        "{:>10}  {:>16}  {:>16}  {:>10}\n",
        "size", "bypass (us)", "netmod (us)", "penalty"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>10}  {:>16.1}  {:>16.1}  {:>9.1}%\n",
            simnet::stats::human_bytes(r.bytes),
            r.direct_us,
            r.netmod_us,
            (r.netmod_us / r.direct_us - 1.0) * 100.0
        ));
    }
    out
}

/// Render the §4.1.1 latency-breakdown table.
pub fn breakdown_table(rows: &[BreakdownRow]) -> String {
    let mut out =
        String::from("# E11: one-way small-message latency breakdown over IB\n");
    out.push_str(&format!(
        "{:<40}  {:>10}  {:>12}\n",
        "layer", "paper (us)", "measured (us)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<40}  {:>10.1}  {:>12.2}\n",
            r.layer, r.paper_us, r.measured_us
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_table_renders_grid() {
        let pts = vec![
            OverlapPoint {
                stack: "A".into(),
                bytes: 4096,
                sending_time_us: 25.0,
            },
            OverlapPoint {
                stack: "B".into(),
                bytes: 4096,
                sending_time_us: 21.0,
            },
        ];
        let t = overlap_table(&pts, "test");
        assert!(t.contains("4K"));
        assert!(t.contains("25.0us"));
        assert!(t.contains("21.0us"));
    }

    #[test]
    fn handshake_table_shows_penalty() {
        let rows = vec![HandshakeRow {
            bytes: 1 << 20,
            direct_us: 100.0,
            netmod_us: 110.0,
        }];
        let t = handshake_table(&rows);
        assert!(t.contains("10.0%"));
    }

    #[test]
    fn breakdown_table_lists_layers() {
        let rows = vec![BreakdownRow {
            layer: "x",
            paper_us: 1.2,
            measured_us: 1.21,
        }];
        let t = breakdown_table(&rows);
        assert!(t.contains("1.2"));
        assert!(t.contains("1.21"));
    }
}
