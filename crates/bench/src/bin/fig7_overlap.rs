//! E7/E8 — regenerate Fig. 7: asynchronous progression — overlapping
//! communication with computation for eager (MX, 20 µs compute) and
//! rendezvous (IB, 400 µs compute) messages.
//!
//! Usage: `fig7_overlap [eager|rendezvous]` (default: both).

use bench_harness::render::overlap_table;
use bench_harness::{fig7_eager, fig7_rendezvous};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_default();
    if arg.is_empty() || arg == "eager" {
        let pts = fig7_eager();
        println!(
            "{}",
            overlap_table(
                &pts,
                "Fig. 7(a): overlapping eager messages over Myrinet MX (20us compute)"
            )
        );
    }
    if arg.is_empty() || arg == "rendezvous" {
        let pts = fig7_rendezvous();
        println!(
            "{}",
            overlap_table(
                &pts,
                "Fig. 7(b): rendezvous progression over InfiniBand (400us compute)"
            )
        );
    }
}
