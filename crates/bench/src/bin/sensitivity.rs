//! Sensitivity analysis: do the reproduced figure *shapes* survive timing
//! noise? The deterministic NIC models get ±5 % per-transfer jitter
//! (seeded, still reproducible) and the headline comparisons are re-run.
//!
//! The claims under test are ordinal — who is faster, does multirail beat
//! the best single rail, does PIOMan overlap — so they should be robust to
//! noise far larger than real NIC variance.

use std::sync::Arc;

use parking_lot::Mutex;
use simnet::{Cluster, JitterModel, Placement, SimDuration, SimTime};

use bench_harness::RAIL_IB;
use mpi_ch3::stack::{run_mpi, StackConfig};
use mpi_ch3::{MpiHandle, Src};

/// The pt2pt testbed with ±`pct` jitter on both NICs.
fn jittery_cluster(pct: f64, seed: u64) -> Cluster {
    let mut c = Cluster::xeon_pair();
    for rail in &mut c.rails {
        rail.jitter = Some(JitterModel { pct, seed });
    }
    c
}

fn one_way_us(cluster: &Cluster, cfg: &StackConfig, bytes: usize, iters: usize) -> f64 {
    let placement = Placement::one_per_node(2, cluster);
    let out = Arc::new(Mutex::new(0.0));
    let o2 = Arc::clone(&out);
    run_mpi(
        cluster,
        &placement,
        cfg,
        2,
        Arc::new(move |mpi: MpiHandle| {
            let payload = vec![0u8; bytes];
            if mpi.rank() == 0 {
                mpi.send(1, 1, &payload);
                mpi.recv(Src::Rank(1), 1);
                let t0 = mpi.now();
                for _ in 0..iters {
                    mpi.send(1, 1, &payload);
                    mpi.recv(Src::Rank(1), 1);
                }
                *o2.lock() = (mpi.now() - t0).as_micros_f64() / (2 * iters) as f64;
            } else {
                mpi.recv(Src::Rank(0), 1);
                mpi.send(0, 1, &payload);
                for _ in 0..iters {
                    mpi.recv(Src::Rank(0), 1);
                    mpi.send(0, 1, &payload);
                }
            }
        }),
    );
    let v = *out.lock();
    v
}

fn multirail_bw_time(cluster: &Cluster, multirail: bool) -> f64 {
    let cfg = if multirail {
        StackConfig::mpich2_nmad(false)
    } else {
        StackConfig::mpich2_nmad_rail(RAIL_IB, false)
    };
    let placement = Placement::one_per_node(2, cluster);
    let done = Arc::new(Mutex::new(SimTime::ZERO));
    let d2 = Arc::clone(&done);
    run_mpi(
        cluster,
        &placement,
        &cfg,
        2,
        Arc::new(move |mpi: MpiHandle| {
            if mpi.rank() == 0 {
                mpi.send(1, 1, &vec![0u8; 16 << 20]);
            } else {
                mpi.recv(Src::Rank(0), 1);
                *d2.lock() = mpi.now();
            }
        }),
    );
    let t = done.lock().as_micros_f64();
    t
}

fn main() {
    println!("## Sensitivity: headline claims under +/-5% NIC timing jitter");
    for seed in [1u64, 2, 3] {
        let c = jittery_cluster(0.05, seed);
        let mva = one_way_us(&c, &baselines::mvapich2(RAIL_IB), 4, 30);
        let omp = one_way_us(&c, &baselines::openmpi(RAIL_IB), 4, 30);
        let nmad = one_way_us(&c, &StackConfig::mpich2_nmad_rail(RAIL_IB, false), 4, 30);
        let single = multirail_bw_time(&c, false);
        let multi = multirail_bw_time(&c, true);
        let piom_gap = {
            let base = one_way_us(&c, &StackConfig::mpich2_nmad_rail(RAIL_IB, false), 4, 20);
            let piom = one_way_us(&c, &StackConfig::mpich2_nmad_rail(RAIL_IB, true), 4, 20);
            piom - base
        };
        println!("seed {seed}:");
        println!("  latency: MVAPICH2 {mva:.2}us < OpenMPI {omp:.2}us < NMad {nmad:.2}us  [{}]",
            if mva < omp && omp < nmad { "ordering holds" } else { "ORDERING BROKE" });
        println!(
            "  16MB: single-rail {single:.0}us vs multirail {multi:.0}us (speedup {:.2}x)  [{}]",
            single / multi,
            if multi < single { "multirail wins" } else { "MULTIRAIL LOST" }
        );
        println!("  PIOMan latency overhead {piom_gap:.2}us  [{}]",
            if (1.4..3.0).contains(&piom_gap) { "~2us holds" } else { "DRIFTED" });
    }
    let _ = SimDuration::ZERO;
}
