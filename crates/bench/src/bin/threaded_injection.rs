//! E22: record the multi-producer injection trajectory (`BENCH_10.json`).
//!
//! ```sh
//! cargo run --release -p bench-harness --bin threaded_injection            # print
//! cargo run --release -p bench-harness --bin threaded_injection -- BENCH_10.json
//! ```
//!
//! With a path argument the JSON is also written there (the checked-in
//! baseline the CI perf gate compares against).

use bench_harness::threaded_injection::{injection_sweep, render_bench10_json};

fn main() {
    let total_msgs: u64 = std::env::var("INJECTION_MSGS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48_000);
    let reps: usize = std::env::var("INJECTION_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    eprintln!("measuring injection trajectory ({total_msgs} msgs/point, best of {reps})...");
    let points = injection_sweep(total_msgs, reps);
    for p in &points {
        eprintln!(
            "  {:>2} producers: {:>9.0} msgs/s  p50 {:>7} ns  p99 {:>8} ns",
            p.producers, p.msgs_per_sec, p.p50_ns, p.p99_ns
        );
    }
    let doc = render_bench10_json(&points);
    print!("{doc}");
    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, &doc).expect("failed to write trajectory");
        eprintln!("wrote {path}");
    }
}
