//! E11 — the latency-breakdown narration of §4.1.1 as a table: raw
//! hardware 1.2 µs → NewMadeleine 1.8 µs → MPICH2-NewMadeleine 2.1 µs →
//! +300 ns with MPI_ANY_SOURCE.

use bench_harness::latency_breakdown;
use bench_harness::render::breakdown_table;

fn main() {
    let rows = latency_breakdown();
    println!("{}", breakdown_table(&rows));
}
