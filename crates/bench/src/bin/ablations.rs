//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Aggregation** — burst completion time with the `default` vs
//!    `aggreg` strategy (the submission-window idea of §2.2).
//! 2. **Sampled split ratio** — large-transfer time with the sampled
//!    equal-finish split vs a naive 50/50 on heterogeneous rails
//!    (reference [4]'s contribution).
//! 3. **Eager/rendezvous threshold** — mid-size message latency across
//!    threshold settings.
//! 4. **PIOMan detection method** — rendezvous overlap quality with
//!    idle-core polling vs timer-driven detection at several periods
//!    (§2.2.2's "most appropriate detection method" choice).

use std::sync::Arc;

use parking_lot::Mutex;
use piom::{DetectionMethod, PiomConfig};
use simnet::{Cluster, Placement, SimDuration, SimTime};

use bench_harness::sending_time;
use mpi_ch3::stack::{run_mpi, InterNode, StackConfig};
use mpi_ch3::{MpiHandle, Src};
use nmad::StrategyKind;

fn main() {
    aggregation();
    split_ratio();
    eager_threshold();
    pioman_detection();
}

/// Burst of small same-destination sends: measure when the SENDER is free
/// (all send requests complete — buffers reusable, NIC handed everything)
/// and when the last message is delivered.
fn burst_time(strategy: StrategyKind, count: usize, bytes: usize) -> (f64, f64, u64) {
    let cluster = Cluster::xeon_pair();
    let placement = Placement::one_per_node(2, &cluster);
    let mut cfg = StackConfig::mpich2_nmad_rail(0, false);
    cfg.inter = InterNode::NmadDirect {
        strategy,
        rails: Some(vec![0]),
    };
    let done = Arc::new(Mutex::new(SimTime::ZERO));
    let sender_free = Arc::new(Mutex::new(SimTime::ZERO));
    let d2 = Arc::clone(&done);
    let s2 = Arc::clone(&sender_free);
    let out = run_mpi(
        &cluster,
        &placement,
        &cfg,
        2,
        Arc::new(move |mpi: MpiHandle| {
            if mpi.rank() == 0 {
                let payload = vec![7u8; bytes];
                let reqs: Vec<_> =
                    (0..count).map(|_| mpi.isend(1, 1, &payload)).collect();
                mpi.waitall(&reqs);
                *s2.lock() = mpi.now();
                mpi.recv(Src::Rank(1), 2);
            } else {
                for _ in 0..count {
                    mpi.recv(Src::Rank(0), 1);
                }
                *d2.lock() = mpi.now();
                mpi.send(0, 2, b"done");
            }
        }),
    );
    let free_us = sender_free.lock().as_micros_f64();
    let done_us = done.lock().as_micros_f64();
    (free_us, done_us, out.nm_stats[0].packets_sent)
}

fn aggregation() {
    println!("## Ablation 1: aggregation strategy on a 32 x 256B burst");
    println!(
        "{:<12} {:>15} {:>14} {:>10}",
        "strategy", "sender-free(us)", "delivered(us)", "packets"
    );
    for (name, kind) in [
        ("default", StrategyKind::Default),
        ("aggreg", StrategyKind::Aggreg),
    ] {
        let (free, t, packets) = burst_time(kind, 32, 256);
        println!("{name:<12} {free:>15.1} {t:>14.1} {packets:>10}");
    }
    println!(
        "(aggregation's win is on the SENDER and the NIC: the window\n\
         coalesces into a few packets, so send requests complete sooner and\n\
         the NIC serves far fewer transactions — the resource contention\n\
         §1 worries about when all cores send at once. Delivery of the\n\
         last message can be slightly later: one big packet cannot overlap\n\
         receive-side processing with remaining wire time.)\n"
    );
}

/// One large transfer under a given multirail strategy.
fn transfer_time(strategy: StrategyKind, bytes: usize) -> f64 {
    let cluster = Cluster::xeon_pair(); // IB (1250 MB/s) + MX (1100 MB/s)
    let placement = Placement::one_per_node(2, &cluster);
    let mut cfg = StackConfig::mpich2_nmad(false);
    cfg.inter = InterNode::NmadDirect {
        strategy,
        rails: None,
    };
    let done = Arc::new(Mutex::new(SimTime::ZERO));
    let d2 = Arc::clone(&done);
    run_mpi(
        &cluster,
        &placement,
        &cfg,
        2,
        Arc::new(move |mpi: MpiHandle| {
            if mpi.rank() == 0 {
                mpi.send(1, 1, &vec![1u8; bytes]);
            } else {
                mpi.recv(Src::Rank(0), 1);
                *d2.lock() = mpi.now();
            }
        }),
    );
    let t = done.lock().as_micros_f64();
    t
}

fn split_ratio() {
    println!("## Ablation 2: sampled split ratio vs naive 50/50 (16MB, IB+MX)");
    let sampled = transfer_time(StrategyKind::SplitBalanced, 16 << 20);
    let equal = transfer_time(StrategyKind::SplitEqual, 16 << 20);
    println!("  sampled equal-finish split: {sampled:>9.0} us");
    println!("  naive 50/50 split:          {equal:>9.0} us");
    println!(
        "  sampling saves {:.1}% (the 50/50 split waits for the slower rail)\n",
        (equal / sampled - 1.0) * 100.0
    );
}

fn eager_threshold() {
    println!("## Ablation 3: eager/rendezvous threshold, 24KB messages over IB");
    println!("{:>10} {:>14}", "threshold", "one-way(us)");
    let cluster = Cluster::xeon_pair();
    let placement = Placement::one_per_node(2, &cluster);
    for threshold in [4 * 1024usize, 16 * 1024, 64 * 1024] {
        let mut cfg = StackConfig::mpich2_nmad_rail(0, false);
        cfg.nm.eager_threshold = threshold;
        let done = Arc::new(Mutex::new(0.0));
        let d2 = Arc::clone(&done);
        run_mpi(
            &cluster,
            &placement,
            &cfg,
            2,
            Arc::new(move |mpi: MpiHandle| {
                let payload = vec![0u8; 24 * 1024];
                if mpi.rank() == 0 {
                    mpi.send(1, 1, &payload);
                    mpi.recv(Src::Rank(1), 1);
                    let t0 = mpi.now();
                    for _ in 0..10 {
                        mpi.send(1, 1, &payload);
                        mpi.recv(Src::Rank(1), 1);
                    }
                    *d2.lock() = (mpi.now() - t0).as_micros_f64() / 20.0;
                } else {
                    mpi.recv(Src::Rank(0), 1);
                    mpi.send(0, 1, &payload);
                    for _ in 0..10 {
                        mpi.recv(Src::Rank(0), 1);
                        mpi.send(0, 1, &payload);
                    }
                }
            }),
        );
        println!("{:>9}K {:>14.1}", threshold / 1024, *done.lock());
    }
    println!(
        "(below the threshold the 24KB message goes eager — one wire trip;\n\
         above it pays the RTS/CTS round trip but frees the sender buffer\n\
         obligations; the paper fixes it at 16KB)\n"
    );
}

fn pioman_detection() {
    println!("## Ablation 4: PIOMan detection method (1MB rendezvous, 400us compute)");
    println!("{:<28} {:>14}", "method", "sending(us)");
    let cases: Vec<(String, Option<PiomConfig>)> = vec![
        ("app polling (no PIOMan)".into(), None),
        (
            "idle-core polling".into(),
            Some(PiomConfig::default()),
        ),
        (
            "timer-driven, 10us".into(),
            Some(PiomConfig {
                method: DetectionMethod::TimerDriven(SimDuration::micros(10)),
                ..PiomConfig::default()
            }),
        ),
        (
            "timer-driven, 100us".into(),
            Some(PiomConfig {
                method: DetectionMethod::TimerDriven(SimDuration::micros(100)),
                ..PiomConfig::default()
            }),
        ),
    ];
    for (name, piom) in cases {
        let mut cfg = StackConfig::mpich2_nmad_rail(0, piom.is_some());
        cfg.pioman = piom;
        let t = sending_time(&cfg, 1 << 20, SimDuration::micros(400));
        println!("{name:<28} {t:>14.0}");
    }
    println!(
        "(idle-core polling reacts at the sync cost; coarse timers delay\n\
         every handshake step by up to a period — the \"most appropriate\n\
         detection method\" choice of §2.2.2)"
    );
}
