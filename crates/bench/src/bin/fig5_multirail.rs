//! E3/E4 — regenerate Fig. 5: heterogeneous multirail (Myri-10G + IB)
//! latency and bandwidth vs the single-rail configurations.
//!
//! Usage: `fig5_multirail [latency|bandwidth]` (default: both).

use bench_harness::fig5;
use netpipe::NetpipeOptions;
use simnet::stats::{bandwidth_table, latency_table};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_default();
    if arg.is_empty() || arg == "latency" {
        println!("== Fig. 5(a): multirail latency ==");
        let series = fig5(&NetpipeOptions::latency());
        println!("{}", latency_table(&series));
    }
    if arg.is_empty() || arg == "bandwidth" {
        println!("== Fig. 5(b): multirail bandwidth ==");
        let series = fig5(&NetpipeOptions::bandwidth());
        println!("{}", bandwidth_table(&series));
    }
}
