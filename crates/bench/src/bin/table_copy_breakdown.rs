//! E14 — per-message copy breakdown, by integration and message size.
//!
//! The CopyMeter threaded through every layer (MPI boundary → CH3 →
//! NewMadeleine → fabric) counts each physical memcpy of payload bytes and
//! each zero-copy share. This table prints the per-message totals for the
//! paper's bypass integration (§3.1) against the legacy netmod tunnel
//! (§2.1.3): the tunnel pays the module-queue encode copy of Fig. 2 on
//! every frame, the bypass path pays exactly the MPI-boundary copy-in plus
//! the receive-side reassembly, independent of chunking.

use std::sync::Arc;

use mpi_ch3::stack::{run_mpi, StackConfig};
use mpi_ch3::{MpiHandle, Src};
use simnet::{Cluster, CopySnapshot, Placement};

/// Rank 0 sends `count` messages of `len` bytes to rank 1; returns the
/// job-wide copy totals.
fn measure(cfg: &StackConfig, count: usize, len: usize) -> CopySnapshot {
    let cluster = Cluster::xeon_pair();
    let placement = Placement::one_per_node(2, &cluster);
    let outcome = run_mpi(
        &cluster,
        &placement,
        cfg,
        2,
        Arc::new(move |mpi: MpiHandle| {
            if mpi.rank() == 0 {
                let payload = vec![0x42u8; len];
                for round in 0..count {
                    mpi.send(1, round as u32, &payload);
                }
            } else {
                for round in 0..count {
                    let (data, _) = mpi.recv(Src::Rank(0), round as u32);
                    assert_eq!(data.len(), len);
                }
            }
            mpi.barrier();
        }),
    );
    outcome.copy
}

/// Per-message copy counters: a `count`-message run minus the 0-message
/// baseline (startup barrier traffic), divided by `count`.
fn per_message(cfg: &StackConfig, count: usize, len: usize) -> (f64, f64, f64, f64) {
    let base = measure(cfg, 0, len);
    let full = measure(cfg, count, len);
    let d = full.since(&base);
    let n = count as f64;
    (
        d.memcpy_calls as f64 / n,
        d.bytes_copied as f64 / n,
        d.allocations as f64 / n,
        d.slice_refs as f64 / n,
    )
}

fn main() {
    const COUNT: usize = 8;
    let sizes: [(&str, usize); 3] = [
        ("4 KiB (eager)", 4 * 1024),
        ("64 KiB (rendezvous)", 64 * 1024),
        ("1 MiB (rendezvous)", 1024 * 1024),
    ];
    let stacks: [(&str, StackConfig); 2] = [
        ("MPICH2-NMad bypass (§3.1)", StackConfig::mpich2_nmad(false)),
        ("NMad netmod tunnel (§2.1.3)", StackConfig::mpich2_nmad_netmod(0)),
    ];

    println!("E14 — per-message copy breakdown ({COUNT} messages per cell)");
    println!();
    println!(
        "| {:<27} | {:<19} | {:>7} | {:>12} | {:>6} | {:>6} |",
        "stack", "message size", "memcpy", "bytes copied", "allocs", "shares"
    );
    println!("|{:-<29}|{:-<21}|{:-<9}|{:-<14}|{:-<8}|{:-<8}|", "", "", "", "", "", "");
    for (stack_name, cfg) in &stacks {
        for (size_name, len) in &sizes {
            let (memcpy, bytes, allocs, shares) = per_message(cfg, COUNT, *len);
            println!(
                "| {:<27} | {:<19} | {:>7.1} | {:>12.0} | {:>6.1} | {:>6.1} |",
                stack_name, size_name, memcpy, bytes, allocs, shares
            );
        }
    }
    println!();
    println!(
        "memcpy/bytes = physical copies of payload bytes; shares = zero-copy\n\
         refcount bumps. The tunnel's extra memcpys per message are the\n\
         module-queue encode copies of Fig. 2; the bypass path stays at the\n\
         MPI-boundary copy-in plus receive-side reassembly."
    );
}
