//! E9 — regenerate Fig. 8: NAS parallel benchmarks for the four stacks at
//! 8/9, 16, 32/36 and 64 processes.
//!
//! Usage: `fig8_nas [--class A|B|C] [--procs N] [--kernel NAME] [--full]`
//!
//! * default class: C (the published panel)
//! * default procs: all four panels
//! * `--full`: also run the cells the published figure omits (the paper's
//!   PIOMan build deadlocked on 64 procs and on MG/LU; ours doesn't).

use bench_harness::fig8_panel;
use bench_harness::render::nas_table;
use nasbench::{Class, Kernel};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut class = Class::C;
    let mut procs_list = vec![8usize, 16, 32, 64];
    let mut kernels: Vec<Kernel> = Kernel::ALL.to_vec();
    let mut full = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--class" => {
                i += 1;
                class = match args[i].as_str() {
                    "A" => Class::A,
                    "B" => Class::B,
                    "C" => Class::C,
                    other => panic!("unknown class {other}"),
                };
            }
            "--procs" => {
                i += 1;
                procs_list = vec![args[i].parse().expect("procs must be a number")];
            }
            "--kernel" => {
                i += 1;
                let want = args[i].to_uppercase();
                kernels = Kernel::ALL
                    .into_iter()
                    .filter(|k| k.name() == want)
                    .collect();
                assert!(!kernels.is_empty(), "unknown kernel {want}");
            }
            "--full" => full = true,
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }
    for &procs in &procs_list {
        let results = fig8_panel(class, procs, &kernels, full);
        // BT/SP substitute square counts (8→9, 32→36), as in the paper's
        // panel titles.
        let label = match procs {
            8 => "8/9".to_string(),
            32 => "32/36".to_string(),
            other => other.to_string(),
        };
        let caption = format!(
            "Fig. 8: NAS class {} at {} processes",
            class.name(),
            label
        );
        println!("{}", nas_table(&results, &caption));
    }
}
