//! E10 — the Fig. 2 ablation: what the nested rendezvous handshake of the
//! plain netmod integration costs vs the CH3 bypass (§2.1.3 / §3.1).

use bench_harness::fig2_handshake;
use bench_harness::render::handshake_table;

fn main() {
    let sizes = [
        64 * 1024usize,
        256 * 1024,
        1024 * 1024,
        4 * 1024 * 1024,
    ];
    let rows = fig2_handshake(&sizes);
    println!("{}", handshake_table(&rows));
}
