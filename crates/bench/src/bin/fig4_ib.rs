//! E1/E2 — regenerate Fig. 4: InfiniBand latency and bandwidth
//! comparisons (MVAPICH2, Open MPI, MPICH2-NewMadeleine, w/ ANY_SOURCE).
//!
//! Usage: `fig4_ib [latency|bandwidth]` (default: both).

use bench_harness::{fig4_bandwidth, fig4_latency};
use netpipe::NetpipeOptions;
use simnet::stats::{bandwidth_table, latency_table};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_default();
    if arg.is_empty() || arg == "latency" {
        println!("== Fig. 4(a): latency over InfiniBand ==");
        let series = fig4_latency(&NetpipeOptions::latency());
        println!("{}", latency_table(&series));
    }
    if arg.is_empty() || arg == "bandwidth" {
        println!("== Fig. 4(b): bandwidth over InfiniBand ==");
        let series = fig4_bandwidth(&NetpipeOptions::bandwidth());
        println!("{}", bandwidth_table(&series));
    }
}
