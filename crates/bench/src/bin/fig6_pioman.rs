//! E5/E6 — regenerate Fig. 6: PIOMan's raw latency overhead over shared
//! memory and over Myrinet MX.
//!
//! Usage: `fig6_pioman [shm|mx]` (default: both).

use bench_harness::{fig6_mx, fig6_shm};
use netpipe::NetpipeOptions;
use simnet::stats::latency_table;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_default();
    if arg.is_empty() || arg == "shm" {
        println!("== Fig. 6(a): latency over shared memory ==");
        let series = fig6_shm(&NetpipeOptions::latency());
        println!("{}", latency_table(&series));
    }
    if arg.is_empty() || arg == "mx" {
        println!("== Fig. 6(b): latency over Myrinet MX ==");
        let series = fig6_mx(&NetpipeOptions::latency());
        println!("{}", latency_table(&series));
    }
}
